GO ?= go

.PHONY: check build vet test fmt bench bench-sim bench-smoke sim-smoke chaos-smoke scrub-smoke bootstorm-smoke scale-smoke

# check is the CI gate: build, vet, race-enabled tests, gofmt cleanliness
# (fails listing the offending files), the short-seed chaos suite, the
# short-seed integrity/scrub suite, the short-seed boot-storm suite and the
# sharded-router scale suite.
check: build vet test fmt chaos-smoke scrub-smoke bootstorm-smoke scale-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race -timeout 30m ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem

# bench-sim measures the DES kernel hot paths (event queue, process switch,
# timers, resources) with allocation counts; results/simbench.txt holds the
# before/after snapshot of the scheduler rewrite.
bench-sim:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 300ms ./internal/sim/

# bench-smoke compiles and runs every microbenchmark exactly once. It is a
# CI gate against benchmarks rotting (build or runtime failures), not a
# performance measurement; use `make bench` or `make bench-sim` for numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkVMRun|BenchmarkCompile' -benchtime 1x ./internal/ebpf/
	$(GO) test -run '^$$' -bench 'BenchmarkClassifierSuite' -benchtime 1x ./internal/storfn/
	$(GO) test -run '^$$' -bench 'BenchmarkRouterHop' -benchtime 1x ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkArbiter' -benchtime 1x ./internal/qos/
	$(GO) test -run '^$$' -bench 'BenchmarkClone|BenchmarkCow' -benchtime 1x ./internal/cow/
	$(GO) test -run '^$$' -bench 'BenchmarkShardDispatch' -benchtime 1x ./internal/shard/
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/sim/

# sim-smoke is the DES-kernel gate: the scheduler and harness under the
# race detector (property tests against the reference heap included), plus
# the golden-CSV determinism check — every experiment with a checked-in
# quick-mode golden must render byte-identical output.
sim-smoke:
	$(GO) test -race -timeout 30m ./internal/sim/... ./internal/harness/...
	$(GO) test -run 'TestGoldenCSVs|TestShardedMatchesSerial|TestParallelMatchesSerial' ./internal/harness/

# chaos-smoke runs the UIF supervision suite under the race detector: the
# watchdog/reconcile unit tests, the per-function crash/wedge recovery
# tests and the short-seed end-to-end chaos experiment.
chaos-smoke:
	$(GO) test -race -run 'TestWatchdog|TestBackoff|TestHealthy|TestClassifierHotSwap' ./internal/supervise/ ./internal/nvmeof/
	$(GO) test -race -run 'TestSupervised' ./internal/storfn/
	$(GO) test -race -run 'TestChaos' ./internal/harness/

# scrub-smoke runs the end-to-end data-integrity suite under the race
# detector: PI domain/corrupting-store unit tests and the short-seed
# scrub experiment (detection, replica repair, quarantine, determinism,
# QoS contract under active scrub).
scrub-smoke:
	$(GO) test -race ./internal/integrity/
	$(GO) test -race -run 'TestScrub' ./internal/harness/

# scale-smoke runs the sharded-router suite under the race detector: the
# lock-free MPSC ring and static-verdict unit tests, the fleet placement /
# promotion-fence / per-shard QoS-merge tests, and the scale experiment's
# any-workers determinism and near-linear-scaling shape checks.
scale-smoke:
	$(GO) test -race ./internal/shard/... ./internal/ebpf/
	$(GO) test -race -run 'TestScale' ./internal/harness/

# bootstorm-smoke runs the snapshot/clone suite under the race detector:
# the cow layer's model-based and property tests, the stack-level clone
# round trip through the router fast path, and the small-fleet boot-storm
# experiment (shared-vs-flat table, clone-cost flatness, determinism).
bootstorm-smoke:
	$(GO) test -race ./internal/cow/
	$(GO) test -race -run 'TestClone' ./internal/stack/
	$(GO) test -race -short -run 'TestBootStorm' ./internal/harness/
