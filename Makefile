GO ?= go

.PHONY: check build vet test fmt bench

# check is the CI gate: build, vet, race-enabled tests, and gofmt
# cleanliness (fails listing the offending files).
check: build vet test fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem
