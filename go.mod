module nvmetro

go 1.24
