// Quickstart: bring up a simulated host, attach a VM to an NVMetro virtual
// NVMe controller, and do guest I/O through the fast path.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvmetro"
	"nvmetro/internal/vm"
)

func main() {
	// A deterministic testbed: 12-core host, one simulated NVMe SSD.
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()

	// One VM with 2 vCPUs and 64 MiB of guest memory, attached to the whole
	// device through NVMetro (virtual queues + eBPF-routed fast path).
	guest := sys.NewVM(2, 64<<20)
	disk := sys.AttachNVMetro(guest, sys.WholeDisk())

	// Run a guest program: write a block, read it back, check integrity.
	ok := sys.Run(10*nvmetro.Second, func(p *nvmetro.Proc) {
		data := bytes.Repeat([]byte("nvmetro!"), 512) // 4 KiB
		base, pages, err := guest.Mem.AllocBuffer(uint32(len(data)))
		if err != nil {
			log.Fatal(err)
		}
		guest.Mem.WriteAt(data, base)

		w := &nvmetro.Req{Op: vm.OpWrite, LBA: 2048, Blocks: 8, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), w); !st.OK() {
			log.Fatalf("write failed: %v", st)
		}
		fmt.Printf("wrote 4 KiB at LBA 2048 in %v\n", w.Latency())

		guest.Mem.WriteAt(make([]byte, len(data)), base) // scrub buffer
		r := &nvmetro.Req{Op: vm.OpRead, LBA: 2048, Blocks: 8, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), r); !st.OK() {
			log.Fatalf("read failed: %v", st)
		}
		got := make([]byte, len(data))
		guest.Mem.ReadAt(got, base)
		if !bytes.Equal(got, data) {
			log.Fatal("data mismatch")
		}
		fmt.Printf("read it back in %v — data verified\n", r.Latency())
	})
	if !ok {
		log.Fatal("guest program did not finish")
	}

	// Then benchmark the same disk with the fio-equivalent harness.
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: 4096, QD: 32,
		Warmup: 2 * nvmetro.Millisecond, Duration: 20 * nvmetro.Millisecond,
	}, disk.Targets(2))
	fmt.Printf("fio 4K randread qd32 x2 jobs: %.1f kIOPS, p50=%.1fus, cpu=%.2f cores\n",
		res.KIOPS(), float64(res.Lat.Median())/1e3, res.CPUCores)
}
