// Customrouting: write your own eBPF classifier. This one implements a
// policy the paper's framework makes trivial but fixed stacks cannot
// express: a per-VM *read-only window* — reads pass to the fast path with
// LBA translation, writes to the first half of the partition are allowed,
// and writes to the protected second half are rejected with AccessDenied.
// The policy map can be updated live, without touching the VM.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvmetro"
	"nvmetro/internal/core"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/stack"
	"nvmetro/internal/vm"
)

// The classifier source. Context layout: hook@0, error@4, cmd@32
// (opcode at 32, SLBA at 72, CDW12 at 80). Map cfg[0] = {start u64,
// blocks u64}; map policy[0] = {writableBlocks u64}.
const src = `
; read-anywhere / write-below-watermark policy
	mov   r9, r1
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]        ; partition start
	ldxdw r7, [r0+8]        ; partition blocks
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, policy
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r8, [r0+0]        ; writable watermark (blocks)
	ldxb  r3, [r9+32]       ; opcode
	jeq   r3, 0, passthru   ; flush
	ldxdw r4, [r9+72]       ; slba
	ldxw  r5, [r9+80]
	and   r5, 0xffff
	add   r5, 1
	add   r5, r4            ; end lba
	jgt   r5, r7, oob
	jne   r3, 1, translate  ; only writes face the watermark
	jgt   r5, r8, denied    ; write beyond the writable window
translate:
	add   r4, r6
	stxdw [r9+72], r4       ; direct mediation: rewrite LBA
passthru:
	mov   r0, 0x410000      ; SEND_HQ | WILL_COMPLETE_HQ
	exit
denied:
	mov   r0, 0x2000186     ; COMPLETE | AccessDenied (sct=1, sc=0x86)
	exit
oob:
	mov   r0, 0x2000080     ; COMPLETE | LBAOutOfRange
	exit
internal:
	mov   r0, 0x2000006
	exit
`

func main() {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()

	guest := sys.NewVM(1, 32<<20)
	part := sys.CarveDisk(2)[1] // give the VM the second half of the disk

	// Build maps: the standard partition config plus our policy map.
	cfgMap := nvmetro.NewConfigMap(part)
	policy := ebpf.NewArrayMap(8, 1)
	policy.SetU64(0, 0, part.Blocks/2) // first half writable

	prog, err := nvmetro.AssembleClassifier(src, "read-only-window",
		map[string]ebpf.Map{"cfg": cfgMap, "policy": policy})
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	if err := nvmetro.VerifyClassifier(prog); err != nil {
		log.Fatalf("verifier rejected our classifier: %v", err)
	}
	fmt.Printf("custom classifier assembled (%d insns) and verified\n", len(prog.Insns))

	// Attach NVMetro and install the custom classifier on the controller.
	sol := stack.NewNVMetro(sys.Host)
	var ctrl *core.Controller
	solDisk := sol.Provision(guest, part)
	// Reach the controller through the router the solution built: the
	// Provision call attached exactly one VM.
	ctrl = findController(sol, guest)
	if err := ctrl.LoadClassifier(prog); err != nil {
		log.Fatal(err)
	}

	watermark := part.Blocks / 2
	ok := sys.Run(10*nvmetro.Second, func(p *nvmetro.Proc) {
		buf := bytes.Repeat([]byte{1}, 512)
		base, pages, _ := guest.Mem.AllocBuffer(512)
		guest.Mem.WriteAt(buf, base)
		try := func(op vm.Op, lba uint64) string {
			r := &nvmetro.Req{Op: op, LBA: lba, Blocks: 1, Buf: base, BufPages: pages}
			return vm.SubmitAndWait(p, solDisk, guest.VCPU(0), r).String()
		}
		fmt.Printf("write LBA 100        (writable half):  %s\n", try(vm.OpWrite, 100))
		fmt.Printf("write LBA %d (protected half): %s\n", watermark+100, try(vm.OpWrite, watermark+100))
		fmt.Printf("read  LBA %d (protected half): %s\n", watermark+100, try(vm.OpRead, watermark+100))

		// Live policy update: widen the writable window — no VM restart.
		policy.SetU64(0, 0, part.Blocks)
		fmt.Println("policy map updated live: whole partition now writable")
		fmt.Printf("write LBA %d (was protected):  %s\n", watermark+100, try(vm.OpWrite, watermark+100))
	})
	if !ok {
		log.Fatal("did not finish")
	}
}

// findController retrieves the controller the solution attached for v.
func findController(sol *stack.NVMetro, v *nvmetro.VM) *core.Controller {
	return sol.ControllerFor(v)
}
