// Caching: the classifier-steered host block cache. An eBPF classifier
// counts read heat per LBA bucket on the fast path; once a bucket goes
// hot, its reads divert to a caching UIF that serves them from host
// memory — no device round trip. Writes always pass through the UIF's
// invalidation window, so a cached block can never be read back stale.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvmetro"
	"nvmetro/internal/vm"
)

func main() {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()

	guest := sys.NewVM(2, 64<<20)
	cp := nvmetro.DefaultCacheParams() // 16 MiB ARC, hot on the 2nd access
	disk, cacher := sys.AttachCached(guest, sys.WholeDisk(), cp)

	data := bytes.Repeat([]byte("hot block! "), 400)[:4096]
	ok := sys.Run(10*nvmetro.Second, func(p *nvmetro.Proc) {
		base, pages, err := guest.Mem.AllocBuffer(uint32(len(data)))
		if err != nil {
			log.Fatal(err)
		}
		guest.Mem.WriteAt(data, base)
		do := func(op vm.Op, lba uint64) *nvmetro.Req {
			r := &nvmetro.Req{Op: op, LBA: lba, Blocks: 8, Buf: base, BufPages: pages}
			if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), r); !st.OK() {
				log.Fatalf("%v @%d: %v", op, lba, st)
			}
			return r
		}
		do(vm.OpWrite, 2048)

		// A never-written bucket: the 1st read is cold and the device fast
		// path serves it; the 2nd crosses the hot threshold and the UIF
		// fills the cache from the backend; from the 3rd on it's a
		// host-memory hit.
		fmt.Printf("read 1 (cold, fast path): %v\n", do(vm.OpRead, 4096).Latency())
		fmt.Printf("read 2 (hot, cache fill): %v\n", do(vm.OpRead, 4096).Latency())
		fmt.Printf("read 3 (cache hit):       %v\n", do(vm.OpRead, 4096).Latency())

		// The written bucket: write-through already installed the data, so
		// the moment it goes hot its reads hit without ever filling.
		do(vm.OpRead, 2048) // heat 1: fast path
		fmt.Printf("re-read after write (hit, no fill): %v\n", do(vm.OpRead, 2048).Latency())

		// Coherence: overwrite the cached block, then read it back. The
		// write invalidates (and, write-through, re-installs) the entry;
		// the old bytes are unreachable from the moment the write lands.
		fresh := bytes.Repeat([]byte("NEW! "), 1024)[:4096]
		guest.Mem.WriteAt(fresh, base)
		do(vm.OpWrite, 2048)
		guest.Mem.WriteAt(make([]byte, len(fresh)), base)
		do(vm.OpRead, 2048)
		got := make([]byte, len(fresh))
		guest.Mem.ReadAt(got, base)
		if !bytes.Equal(got, fresh) {
			log.Fatal("stale read after overwrite — cache incoherent!")
		}
		fmt.Println("overwrite then re-read: fresh data (coherent)")
	})
	if !ok {
		log.Fatal("did not finish")
	}
	fmt.Printf("cache stats: %v\n", cacher.Cache())
	fmt.Printf("UIF stats: hits=%d fills=%d writes=%d\n",
		cacher.ReqHits, cacher.ReqFills, cacher.ReqWrites)

	// Benchmark: zipf-skewed re-reads — the cache's sweet spot.
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: 4096, QD: 8, Zipf: 1.2,
		WorkSet: 4 << 20,
		Warmup:  2 * nvmetro.Millisecond, Duration: 20 * nvmetro.Millisecond,
	}, disk.Targets(2))
	fmt.Printf("zipf 4K randread qd8: %.1f kIOPS, p50=%.1fus, hit ratio %.0f%%\n",
		res.KIOPS(), float64(res.Lat.Median())/1e3, cacher.Cache().HitRatio()*100)
}
