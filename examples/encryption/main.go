// Encryption: the paper's transparent data-encryption storage function.
// An eBPF classifier routes reads device-then-UIF (decrypt) and hands
// writes to the UIF, which encrypts with XTS-AES and persists ciphertext
// itself. The guest sees plaintext; the device never does.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvmetro"
	"nvmetro/internal/vm"
)

func main() {
	cfg := nvmetro.Defaults() // BackingMem: the device keeps real contents
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	key := bytes.Repeat([]byte{0xA5, 0x5A}, 32) // 512-bit XTS key
	guest := sys.NewVM(2, 64<<20)
	disk := sys.AttachEncrypted(guest, sys.WholeDisk(), key, false /* useSGX */)

	secret := bytes.Repeat([]byte("TOP-SECRET! "), 256) // 3 KiB, padded to blocks
	secret = secret[:2560]                              // 5 blocks

	ok := sys.Run(10*nvmetro.Second, func(p *nvmetro.Proc) {
		base, pages, err := guest.Mem.AllocBuffer(uint32(len(secret)))
		if err != nil {
			log.Fatal(err)
		}
		guest.Mem.WriteAt(secret, base)
		w := &nvmetro.Req{Op: vm.OpWrite, LBA: 100, Blocks: 5, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), w); !st.OK() {
			log.Fatalf("write: %v", st)
		}
		fmt.Println("guest wrote 5 blocks of plaintext")

		// Peek at the physical device: it must hold ciphertext.
		raw := make([]byte, len(secret))
		sys.DeviceUnderTest().Namespace(1).Store.ReadBlocks(100, raw)
		if bytes.Contains(raw, []byte("TOP-SECRET")) {
			log.Fatal("SECURITY FAILURE: plaintext on the device!")
		}
		fmt.Printf("device holds ciphertext: % x ...\n", raw[:16])

		// The guest reads transparent plaintext back.
		got := make([]byte, len(secret))
		r := &nvmetro.Req{Op: vm.OpRead, LBA: 100, Blocks: 5, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), r); !st.OK() {
			log.Fatalf("read: %v", st)
		}
		guest.Mem.ReadAt(got, base)
		if !bytes.Equal(got, secret) {
			log.Fatal("decryption mismatch")
		}
		fmt.Println("guest read plaintext back — transparent encryption works")
	})
	if !ok {
		log.Fatal("did not finish")
	}

	// Benchmark the encrypted disk.
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.SeqWrite, BlockSize: 16 << 10, QD: 32,
		Warmup: 2 * nvmetro.Millisecond, Duration: 20 * nvmetro.Millisecond,
	}, disk.Targets(2))
	fmt.Printf("encrypted 16K seqwrite qd32: %.1f kIOPS (%.0f MB/s), cpu=%.2f cores\n",
		res.KIOPS(), res.MBps(), res.CPUCores)
}
