// Replication: the paper's live disk-replication storage function. The
// classifier serves reads from the local (primary) drive and multicasts
// writes to both the primary fast path and a UIF that forwards them over a
// simulated NVMe-oF fabric to a remote secondary drive. Mirroring is
// synchronous: a write completes only when both drives have it.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvmetro"
	"nvmetro/internal/vm"
)

func main() {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()

	remote := sys.NewRemoteHost(4)
	guest := sys.NewVM(2, 64<<20)
	disk := sys.AttachReplicated(guest, sys.WholeDisk(), remote)

	payload := bytes.Repeat([]byte{0xC0, 0xDE}, 2048) // 4 KiB
	ok := sys.Run(10*nvmetro.Second, func(p *nvmetro.Proc) {
		base, pages, err := guest.Mem.AllocBuffer(uint32(len(payload)))
		if err != nil {
			log.Fatal(err)
		}
		guest.Mem.WriteAt(payload, base)
		w := &nvmetro.Req{Op: vm.OpWrite, LBA: 500, Blocks: 8, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), w); !st.OK() {
			log.Fatalf("write: %v", st)
		}
		fmt.Printf("mirrored write completed in %v (waits for BOTH drives)\n", w.Latency())

		// Verify both replicas.
		got := make([]byte, len(payload))
		sys.DeviceUnderTest().Namespace(1).Store.ReadBlocks(500, got)
		if !bytes.Equal(got, payload) {
			log.Fatal("primary replica missing data")
		}
		remote.Dev.Namespace(1).Store.ReadBlocks(500, got)
		if !bytes.Equal(got, payload) {
			log.Fatal("secondary replica missing data")
		}
		fmt.Println("primary and secondary drives both hold the data")

		// Reads are served locally — no fabric round trip.
		r := &nvmetro.Req{Op: vm.OpRead, LBA: 500, Blocks: 8, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), r); !st.OK() {
			log.Fatalf("read: %v", st)
		}
		fmt.Printf("local read completed in %v (no remote hop)\n", r.Latency())
		fmt.Printf("fabric traffic so far: %v\n", remote.Link)
	})
	if !ok {
		log.Fatal("did not finish")
	}

	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRW, BlockSize: 4096, QD: 16,
		Warmup: 2 * nvmetro.Millisecond, Duration: 20 * nvmetro.Millisecond,
	}, disk.Targets(2))
	fmt.Printf("mirrored 4K randrw qd16: %.1f kIOPS, p99=%.1fus\n",
		res.KIOPS(), float64(res.Lat.P99())/1e3)
}
