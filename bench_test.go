package nvmetro_test

// One testing.B benchmark per paper artifact (Table I/II, Figures 3-13),
// driving the same harness as cmd/nvmetro-bench in quick mode. b.N controls
// repetition; each iteration regenerates the artifact from scratch. Run
//
//	go test -bench=. -benchmem
//
// to exercise every experiment, or -bench=BenchmarkFig7 for one.

import (
	"testing"

	"nvmetro"
	"nvmetro/internal/core"
	"nvmetro/internal/harness"
	"nvmetro/internal/stack"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	// A fixed seed keeps iterations i>0 hitting the harness's in-process
	// result cache, so expensive grids are computed once per `go test`
	// invocation regardless of b.N.
	for i := 0; i < b.N; i++ {
		tables := e.Run(harness.Options{Quick: true, Seed: 1})
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no data", id)
		}
	}
}

func BenchmarkTable1LoC(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFig3Throughput(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4Latency(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5Scalability(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6YCSB(b *testing.B)             { benchExperiment(b, "fig6") }
func BenchmarkFig7Encryption(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8EncryptionYCSB(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9Replication(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10ReplicationYCSB(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11CPUBasic(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12CPUEncryption(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13CPUReplication(b *testing.B)  { benchExperiment(b, "fig13") }

// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblationFastPathLatency measures one NVMetro fast-path request
// end to end (guest submit -> classifier -> device -> completion), the
// number the router's per-request costs sum to.
func BenchmarkAblationFastPathLatency(b *testing.B) {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()
	guest := sys.NewVM(1, 32<<20)
	disk := sys.AttachNVMetro(guest, sys.WholeDisk())
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: 512, QD: 1,
		Warmup: 1 * nvmetro.Millisecond, Duration: nvmetro.Duration(b.N) * 100 * nvmetro.Microsecond,
	}, disk.Targets(1))
	b.ReportMetric(float64(res.Lat.Median())/1e3, "virt-us/op")
	b.ReportMetric(res.KIOPS(), "virt-kIOPS")
}

// BenchmarkAblationSharedVsPerVMWorker compares router worker sharing
// (Fig. 5's configuration) against per-VM workers at 4 VMs.
func BenchmarkAblationSharedVsPerVMWorker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := harness.Get("fig5")
		tabs := e.Run(harness.Options{Quick: true, Seed: 1})
		if len(tabs[0].Rows) == 0 {
			b.Fatal("no data")
		}
	}
}

// BenchmarkExperimentListing keeps the registry itself cheap.
func BenchmarkExperimentListing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(nvmetro.Experiments()) < 13 {
			b.Fatal("missing experiments")
		}
	}
}

// BenchmarkAblationInterpretedVsNativeClassifier quantifies the cost of
// running policies in the sandboxed eBPF interpreter versus a compiled-in
// classifier (the `repro_why` concern: fast-path interpretation overhead).
func BenchmarkAblationInterpretedVsNativeClassifier(b *testing.B) {
	run := func(native bool) float64 {
		sys := nvmetro.NewSystem(nvmetro.Defaults())
		defer sys.Close()
		guest := sys.NewVM(2, 64<<20)
		sol := stack.NewNVMetro(sys.Host)
		disk := sol.Provision(guest, sys.WholeDisk())
		if native {
			sol.ControllerFor(guest).SetNativeClassifier(func(ctx []byte) uint64 {
				return core.ActSendHQ | core.ActWillCompleteHQ
			})
		}
		res := sys.RunFIO(nvmetro.FIOConfig{
			Mode: nvmetro.RandRead, BlockSize: 512, QD: 128,
			Warmup: nvmetro.Millisecond, Duration: 8 * nvmetro.Millisecond,
		}, []nvmetro.FIOTarget{{Disk: disk, VM: guest, VCPU: guest.VCPU(0)}, {Disk: disk, VM: guest, VCPU: guest.VCPU(1)}})
		return res.KIOPS()
	}
	var interp, native float64
	for i := 0; i < b.N; i++ {
		interp = run(false)
		native = run(true)
	}
	b.ReportMetric(interp, "interp-kIOPS")
	b.ReportMetric(native, "native-kIOPS")
}
