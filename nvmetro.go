// Package nvmetro is the public API of the NVMetro reproduction: a flexible
// NVMe request-routing framework for virtual machines (Tu Dinh Ngoc et al.,
// IPDPS 2024), built as a deterministic full-system simulation.
//
// The package wraps the internal subsystems behind a small facade:
//
//	sys := nvmetro.NewSystem(nvmetro.Defaults())
//	vm1 := sys.NewVM(4, 64<<20)
//	disk := sys.AttachNVMetro(vm1, sys.WholeDisk())
//	res := sys.RunFIO(nvmetro.FIOConfig{...}, disk.Targets(1))
//
// Storage functions (transparent encryption, live replication) attach with
// one call, custom eBPF classifiers can be assembled from text and loaded
// live, and every table/figure of the paper's evaluation can be regenerated
// through RunExperiment.
package nvmetro

import (
	"fmt"
	"io"

	"nvmetro/internal/core"
	"nvmetro/internal/cow"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/fault"
	"nvmetro/internal/fio"
	"nvmetro/internal/harness"
	"nvmetro/internal/integrity"
	"nvmetro/internal/metrics"
	"nvmetro/internal/qos"
	"nvmetro/internal/shard"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/supervise"
	"nvmetro/internal/vm"
)

// Re-exported core types. The aliases make the internal packages' documented
// types reachable through the public API.
type (
	// Env is the discrete-event simulation environment.
	Env = sim.Env
	// Proc is a simulated process (guest program, host thread, ...).
	Proc = sim.Proc
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
	// Time is an absolute virtual timestamp.
	Time = sim.Time

	// VM is a virtual machine with guest memory and vCPUs.
	VM = vm.VM
	// Disk is the guest-visible asynchronous block device.
	Disk = vm.Disk
	// Req is one guest block request.
	Req = vm.Req

	// Controller is NVMetro's virtual NVMe controller for one VM.
	Controller = core.Controller
	// Router is the NVMetro I/O router.
	Router = core.Router
	// NotifyQueues is the notify-path endpoint consumed by UIFs.
	NotifyQueues = core.NotifyQueues

	// Program is a verified-or-not eBPF classifier program.
	Program = ebpf.Program
	// ClassifierBuilder assembles classifiers from Go.
	ClassifierBuilder = ebpf.Builder

	// Device is the simulated NVMe SSD.
	Device = device.Device
	// Partition is an LBA window of a namespace.
	Partition = device.Partition

	// FIOConfig configures a fio-equivalent run.
	FIOConfig = fio.Config
	// FIOResult carries throughput, latency and CPU results.
	FIOResult = fio.Result
	// FIOTarget places one fio job.
	FIOTarget = fio.Target
	// FIOGroup pairs targets with their own workload for mixed runs.
	FIOGroup = fio.Group

	// QoSConfig tunes the router's WFQ arbiter.
	QoSConfig = qos.Config
	// QoSTenantConfig is one tenant's contract (weight, rate caps, SLO).
	QoSTenantConfig = qos.TenantConfig
	// QoSTenantSnapshot is a point-in-time view of one tenant's QoS state.
	QoSTenantSnapshot = qos.TenantSnapshot
	// SharedNVMetro is the shared-worker NVMetro solution handle, used for
	// multi-tenant setups (QoS arbitration, Fig. 5 scaling).
	SharedNVMetro = stack.NVMetro
	// ShardFleet is the per-core sharded dispatch fleet: per-shard tenant
	// ownership, lock-free completion fan-in and adaptive path promotion.
	ShardFleet = shard.Fleet
	// ShardInfo is a point-in-time view of one shard's tenant assignment,
	// promotion state and inbox depths.
	ShardInfo = core.ShardInfo

	// SupervisePolicy tunes the UIF watchdog and restart behaviour.
	SupervisePolicy = supervise.Policy
	// Supervisor watches one storage function's UIF attachment: detection,
	// reconciliation, degraded routing and supervised restarts.
	Supervisor = supervise.Supervisor
	// FaultPlan is a deterministic per-site fault schedule (media errors,
	// fabric outages, UIF crashes/wedges).
	FaultPlan = fault.Plan
	// FaultInjector is one site's armed view of a FaultPlan.
	FaultInjector = fault.Injector
	// CounterSet is an insertion-ordered bag of named counters.
	CounterSet = metrics.CounterSet

	// Store is the simulated SSD's backing byte store.
	Store = device.Store
	// MemStore is the content-keeping backing store (required for
	// data-integrity work).
	MemStore = device.MemStore
	// ScrubConfig tunes the background integrity scrubber (pacing, chunking,
	// recheck window).
	ScrubConfig = integrity.ScrubConfig
	// Scrubber is the background scrub engine of a protected attachment.
	Scrubber = integrity.Scrubber
	// IntegrityDomain holds per-block protection info (CRC + generation)
	// and the quarantine set for one protected attachment.
	IntegrityDomain = integrity.Domain
	// CorruptingStore wraps a Store with deterministic silent-corruption
	// injection (bit rot, torn/misdirected/lost writes).
	CorruptingStore = integrity.CorruptingStore
	// Resyncer drives dirty-region replica resynchronization.
	Resyncer = storfn.Resyncer

	// GoldenImage is a sealed master image plus the content-addressed chunk
	// index its clones share (snapshot/clone layer).
	GoldenImage = stack.GoldenImage
	// CowStore is one clone's writable copy-on-write view over the golden
	// image's layer chain.
	CowStore = cow.Store
	// CowLayer is one immutable sealed snapshot delta.
	CowLayer = cow.Layer
)

// Convenient duration units (virtual time).
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// fio workload modes.
const (
	RandRead  = fio.RandRead
	RandWrite = fio.RandWrite
	RandRW    = fio.RandRW
	SeqRead   = fio.SeqRead
	SeqWrite  = fio.SeqWrite
	SeqRW     = fio.SeqRW
)

// Config configures a System.
type Config struct {
	// Seed makes the whole simulation deterministic.
	Seed int64
	// Cores is the host core count (the paper's server has 12).
	Cores int
	// GuestCores are reserved for vCPUs.
	GuestCores int
	// Backing selects how the simulated SSD stores data: BackingMem keeps
	// full contents (required for data-integrity work), BackingNull is the
	// cheapest for pure benchmarking.
	Backing device.BackingMode
	// Store, when non-nil, overrides Backing with an explicit backing store
	// — e.g. a CorruptingStore for silent-corruption experiments.
	Store Store
	// Params exposes every calibration constant.
	Params stack.Params
}

// Defaults returns the calibrated testbed configuration.
func Defaults() Config {
	return Config{
		Seed:       1,
		Cores:      12,
		GuestCores: 4,
		Backing:    device.BackingMem,
		Params:     stack.DefaultParams(),
	}
}

// System is a complete simulated testbed: host machine, NVMe device and
// the NVMetro router, ready to attach VMs and storage functions.
type System struct {
	Env  *sim.Env
	Host *stack.Host
	cfg  Config
}

// NewSystem builds a testbed.
func NewSystem(cfg Config) *System {
	env := sim.New(cfg.Seed)
	backing := cfg.Store
	if backing == nil {
		backing = device.NewStore(cfg.Backing, cfg.Params.Device.BlockSize())
	}
	h := stack.NewHost(env, cfg.Cores, cfg.GuestCores, cfg.Params, backing)
	return &System{Env: env, Host: h, cfg: cfg}
}

// Close releases all simulated processes.
func (s *System) Close() { s.Env.Close() }

// DeviceUnderTest returns the host's NVMe device.
func (s *System) DeviceUnderTest() *Device { return s.Host.Dev }

// WholeDisk returns a partition covering the device's first namespace.
func (s *System) WholeDisk() Partition { return device.WholeNamespace(s.Host.Dev, 1) }

// CarveDisk splits the namespace into n equal partitions.
func (s *System) CarveDisk(n int) []Partition { return device.Carve(s.Host.Dev, 1, n) }

// NewVM creates a VM with the given vCPU count and memory size.
func (s *System) NewVM(vcpus int, memBytes uint64) *VM {
	return s.Host.NewVM(vcpus, memBytes)
}

// AttachedDisk couples a provisioned disk with its VM for workload helpers.
type AttachedDisk struct {
	VM   *VM
	Disk Disk
	Ctrl *Controller // nil for non-NVMetro solutions
}

// Targets builds fio job placements on the first n vCPUs.
func (d *AttachedDisk) Targets(n int) []FIOTarget {
	var out []FIOTarget
	for i := 0; i < n; i++ {
		out = append(out, FIOTarget{Disk: d.Disk, VM: d.VM, VCPU: d.VM.VCPU(i % d.VM.NumVCPUs())})
	}
	return out
}

// AttachNVMetro gives the VM an NVMetro virtual controller over part, with
// the default fast-path classifier (partition-confining when part is a true
// partition).
func (s *System) AttachNVMetro(v *VM, part Partition) *AttachedDisk {
	sol := stack.NewNVMetro(s.Host)
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}
}

// AttachEncrypted provisions an NVMetro disk with the transparent
// XTS-AES encryption storage function (classifier + UIF). Set useSGX for
// the enclave-backed variant.
func (s *System) AttachEncrypted(v *VM, part Partition, key []byte, useSGX bool) *AttachedDisk {
	sol := stack.NewNVMetro(s.Host).WithEncryption(key, useSGX)
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}
}

// RemoteHost is a second machine reachable over a simulated NVMe-oF fabric.
type RemoteHost = stack.RemoteHost

// NewRemoteHost creates the remote machine for replication setups, with its
// own CPU, NVMe drive and fabric link back to this host.
func (s *System) NewRemoteHost(cores int) *RemoteHost {
	mode := s.cfg.Backing
	return stack.NewRemoteHost(s.Env, cores, s.cfg.Params.Device, device.NewStore(mode, s.cfg.Params.Device.BlockSize()))
}

// AttachReplicated provisions an NVMetro disk with the live-replication
// storage function: reads local, writes mirrored synchronously to remote.
func (s *System) AttachReplicated(v *VM, part Partition, remote *RemoteHost) *AttachedDisk {
	sol := stack.NewNVMetro(s.Host).WithReplication(remote.Secondary())
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}
}

// CacheParams configures the classifier-steered host block cache storage
// function (classifier heat threshold plus internal/cache sizing).
type CacheParams = storfn.CacheParams

// Cacher is the cache UIF: per-request stats, the block cache and the
// classifier's heat map.
type Cacher = storfn.Cacher

// DefaultCacheParams returns the calibrated cache configuration.
func DefaultCacheParams() CacheParams { return storfn.DefaultCacheParams() }

// AttachCached provisions an NVMetro disk with the host block cache storage
// function: an eBPF classifier counts per-bucket read heat and steers hot
// reads to a caching UIF, while every write passes through the UIF's
// invalidation window so cached blocks can never go stale. The returned
// Cacher exposes hit/miss statistics and the cache itself.
func (s *System) AttachCached(v *VM, part Partition, cp CacheParams) (*AttachedDisk, *Cacher) {
	sol := stack.NewNVMetro(s.Host).WithCache(cp)
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}, sol.CacherFor(v)
}

// DefaultSupervisePolicy returns the calibrated UIF watchdog policy.
func DefaultSupervisePolicy() SupervisePolicy { return supervise.DefaultPolicy() }

// NewFaultPlan creates a deterministic fault schedule; arm sites on it
// (e.g. WithUIFCrash) and hand per-site injectors to a Supervisor.
func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// AttachEncryptedSupervised is AttachEncrypted under UIF supervision: the
// returned Supervisor detects a crashed or wedged encryptor, fail-stops
// routing (never plaintext) and restarts it under backoff.
func (s *System) AttachEncryptedSupervised(v *VM, part Partition, key []byte, pol SupervisePolicy) (*AttachedDisk, *Supervisor) {
	sol := stack.NewNVMetro(s.Host).WithEncryption(key, false).WithSupervision(pol)
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}, sol.SupervisorFor(v)
}

// AttachCachedSupervised is AttachCached under UIF supervision: on failure
// the cache is bypassed (reads fall back to the device) and the restarted
// generation begins cold, so no stale block can ever be served.
func (s *System) AttachCachedSupervised(v *VM, part Partition, cp CacheParams, pol SupervisePolicy) (*AttachedDisk, *Supervisor) {
	sol := stack.NewNVMetro(s.Host).WithCache(cp).WithSupervision(pol)
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}, sol.SupervisorFor(v)
}

// AttachReplicatedSupervised is AttachReplicated under UIF supervision: on
// failure writes continue primary-only with dirty-region tracking and the
// mirror resynchronizes after the restart.
func (s *System) AttachReplicatedSupervised(v *VM, part Partition, remote *RemoteHost, pol SupervisePolicy) (*AttachedDisk, *Supervisor) {
	sol := stack.NewNVMetro(s.Host).WithReplication(remote.Secondary()).WithSupervision(pol)
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk}, sol.SupervisorFor(v)
}

// DefaultScrubConfig returns the calibrated background-scrub policy.
func DefaultScrubConfig() ScrubConfig { return integrity.DefaultScrubConfig() }

// NewMemStore creates a content-keeping backing store for integrity work.
func NewMemStore(blockSize uint32) *MemStore { return device.NewMemStore(blockSize) }

// NewCorruptingStore wraps inner with deterministic silent-corruption
// injection driven by the plan's rules for the given site. blocks bounds
// where misdirected writes may land.
func NewCorruptingStore(inner Store, plan *FaultPlan, site string, blockSize uint32, blocks uint64) *CorruptingStore {
	return integrity.NewCorruptingStore(inner, plan, site, blockSize, blocks)
}

// ProtectedDisk bundles an integrity-protected attachment's handles: the
// disk plus its protection-info domain, background scrubber and (for
// replicated attachments) the resync engine.
type ProtectedDisk struct {
	*AttachedDisk
	Scrubber *Scrubber
	Domain   *IntegrityDomain
	Resyncer *Resyncer // nil without replication
}

// AttachProtected provisions an NVMetro disk with end-to-end block
// protection info: writes are stamped at the mediation point, reads are
// verified at every trust boundary, and the returned Scrubber cross-
// checks stored content in the background, quarantining damage it cannot
// repair (no replica to repair from).
func (s *System) AttachProtected(v *VM, part Partition, cfg ScrubConfig) *ProtectedDisk {
	sol := stack.NewNVMetro(s.Host).WithIntegrity(cfg)
	disk := sol.Provision(v, part)
	return &ProtectedDisk{
		AttachedDisk: &AttachedDisk{VM: v, Disk: disk, Ctrl: sol.ControllerFor(v)},
		Scrubber:     sol.ScrubberFor(v),
		Domain:       sol.IntegrityDomainFor(v),
	}
}

// AttachReplicatedProtected is AttachProtected over the live-replication
// storage function: the scrubber additionally cross-checks primary
// against replica and repairs damaged primary blocks from the in-sync
// mirror via targeted resync.
func (s *System) AttachReplicatedProtected(v *VM, part Partition, remote *RemoteHost, cfg ScrubConfig) *ProtectedDisk {
	sol := stack.NewNVMetro(s.Host).WithReplication(remote.Secondary()).WithIntegrity(cfg)
	disk := sol.Provision(v, part)
	return &ProtectedDisk{
		AttachedDisk: &AttachedDisk{VM: v, Disk: disk, Ctrl: sol.ControllerFor(v)},
		Scrubber:     sol.ScrubberFor(v),
		Domain:       sol.IntegrityDomainFor(v),
		Resyncer:     sol.ResyncerFor(v),
	}
}

// NewGoldenImage creates an empty golden image of blocks logical blocks on
// the host device's block size. cacheChunks > 0 fronts the shared chunk
// index with a content-addressed cache (one cache line per unique chunk,
// shared by every clone). Load content through Image.Master(), then Seal.
func (s *System) NewGoldenImage(blocks, cacheChunks uint64) *GoldenImage {
	return stack.NewGoldenImage(s.Host, blocks, cacheChunks)
}

// ClonedDisk bundles one tenant's clone: the attached disk plus the CoW
// store backing its private namespace.
type ClonedDisk struct {
	*AttachedDisk
	Store *CowStore
}

// AttachCloned clones the golden image onto a fresh device namespace and
// provisions v over it with an NVMetro controller. The clone copies no
// data: reads resolve through the image's shared layer chain (and shared
// content cache, when configured), and the tenant's first write to any
// chunk breaks exactly that chunk private.
func (s *System) AttachCloned(v *VM, img *GoldenImage) *ClonedDisk {
	sol := stack.NewNVMetro(s.Host).WithSnapshots(img)
	disk := sol.CloneFrom(v)
	return &ClonedDisk{
		AttachedDisk: &AttachedDisk{VM: v, Disk: disk, Ctrl: sol.ControllerFor(v)},
		Store:        sol.CloneStoreFor(v),
	}
}

// AttachClonedProtected is AttachCloned with end-to-end protection info:
// stamps and guards are per-clone (each clone has its own domain and
// quarantine set, so one tenant's damage never leaks into another's view),
// and PI generations survive CoW breaks because the break happens below
// the stamped guest boundary.
func (s *System) AttachClonedProtected(v *VM, img *GoldenImage, cfg ScrubConfig) (*ClonedDisk, *IntegrityDomain) {
	sol := stack.NewNVMetro(s.Host).WithSnapshots(img).WithIntegrity(cfg)
	disk := sol.CloneFrom(v)
	return &ClonedDisk{
		AttachedDisk: &AttachedDisk{VM: v, Disk: disk, Ctrl: sol.ControllerFor(v)},
		Store:        sol.CloneStoreFor(v),
	}, sol.IntegrityDomainFor(v)
}

// Baseline names accepted by AttachBaseline.
const (
	BaselineMDev        = "mdev"
	BaselinePassthrough = "passthrough"
	BaselineQEMU        = "qemu"
	BaselineVhostSCSI   = "vhost-scsi"
	BaselineSPDK        = "spdk"
)

// AttachBaseline provisions one of the paper's comparison stacks.
func (s *System) AttachBaseline(name string, v *VM, part Partition) (*AttachedDisk, error) {
	var sol stack.Solution
	switch name {
	case BaselineMDev:
		sol = stack.NewMDev(s.Host)
	case BaselinePassthrough:
		sol = stack.NewPassthrough(s.Host)
	case BaselineQEMU:
		sol = stack.NewQEMU(s.Host)
	case BaselineVhostSCSI:
		sol = stack.NewVhostSCSI(s.Host)
	case BaselineSPDK:
		sol = stack.NewSPDK(s.Host)
	default:
		return nil, fmt.Errorf("nvmetro: unknown baseline %q", name)
	}
	return &AttachedDisk{VM: v, Disk: sol.Provision(v, part)}, nil
}

// NewNVMetroShared creates a shared-worker NVMetro solution: one router
// with the given worker count serving every VM provisioned through it. Use
// AttachShared to provision disks, and WithQoS on the returned handle to
// arbitrate the shared worker between tenants.
func (s *System) NewNVMetroShared(workers int) *SharedNVMetro {
	return stack.NewNVMetroShared(s.Host, workers)
}

// AttachShared provisions an NVMetro disk for v on the given shared
// solution.
func (s *System) AttachShared(sol *SharedNVMetro, v *VM, part Partition) *AttachedDisk {
	disk := sol.Provision(v, part)
	return &AttachedDisk{VM: v, Disk: disk, Ctrl: sol.ControllerFor(v)}
}

// NewNVMetroSharded creates the per-core sharded NVMetro solution: a fleet
// of dispatch shards (one host thread each) with least-loaded tenant
// placement and adaptive path promotion enabled. Provision disks with
// AttachShared; inspect the fleet through the handle's Fleet method.
func (s *System) NewNVMetroSharded(shards int) *SharedNVMetro {
	return stack.NewNVMetroSharded(s.Host, shards)
}

// AddNamespace creates a fresh namespace of the given size (in device
// blocks) on the device under test and returns a partition covering it.
// Per-tenant whole namespaces are the sharded fleet's promotable layout:
// they keep the default, statically-provable fast-path classifier.
func (s *System) AddNamespace(blocks uint64) Partition {
	dev := s.Host.Dev
	nsid := dev.NextNSID()
	dev.AddNamespace(nsid, blocks, device.NewStore(s.cfg.Backing, s.cfg.Params.Device.BlockSize()))
	return device.WholeNamespace(dev, nsid)
}

// DefaultClassifier returns the always-fast-path classifier every NVMetro
// controller boots with. Its verdict is statically provable, so tenants
// running it are eligible for path promotion.
func DefaultClassifier() *Program { return core.DefaultClassifier() }

// PartitionClassifier returns the partition-confining classifier for part.
// Its verdict depends on map state, so loading it demotes a promoted
// tenant (the hot-swap fence).
func PartitionClassifier(part Partition) *Program {
	prog, _ := storfn.PartitionClassifier(part)
	return prog
}

// BootProfile returns the read-mostly boot-storm workload: shared zipfian
// offsets over a common image extent, a small write fraction.
func BootProfile(warmup, duration Duration) FIOConfig {
	return fio.BootProfile(warmup, duration)
}

// RunFIO executes a fio-equivalent workload and returns its results. It
// drives the simulation itself; call from normal (non-process) context.
func (s *System) RunFIO(cfg FIOConfig, targets []FIOTarget) FIOResult {
	return fio.Run(s.Env, s.Host.CPU, targets, cfg)
}

// RunFIOMixed executes several differently-configured workload groups
// concurrently over one shared measurement window (see fio.RunMixed).
func (s *System) RunFIOMixed(groups []FIOGroup) []FIOResult {
	return fio.RunMixed(s.Env, s.Host.CPU, groups)
}

// Run executes fn as a simulated guest program and drives the simulation
// until it finishes (or the virtual deadline passes). It reports whether fn
// completed.
func (s *System) Run(deadline Duration, fn func(p *Proc)) bool {
	done := false
	s.Env.Go("user", func(p *sim.Proc) {
		fn(p)
		done = true
		s.Env.Stop()
	})
	s.Env.RunUntil(s.Env.Now().Add(deadline))
	return done
}

// AssembleClassifier assembles eBPF classifier source text (see
// internal/ebpf's assembler syntax) with the given named maps.
func AssembleClassifier(src, name string, maps map[string]ebpf.Map) (*Program, error) {
	return ebpf.Assemble(src, name, maps, nil)
}

// NewConfigMap creates the standard partition config map (entry 0 holds
// {startLBA u64, blocks u64}) used by the shipped classifiers.
func NewConfigMap(part Partition) *ebpf.ArrayMap {
	return core.NewPartitionConfigMap(part)
}

// VerifyClassifier runs the router's verifier over a program.
func VerifyClassifier(p *Program) error { return core.NewVerifier().Verify(p) }

// Experiments lists the reproducible paper artifacts (tables and figures).
func Experiments() []string {
	var ids []string
	for _, e := range harness.List() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment regenerates one paper table/figure, writing rendered tables
// to w. quick trims the grid for fast runs.
func RunExperiment(id string, quick bool, seed int64, w io.Writer) error {
	e, ok := harness.Get(id)
	if !ok {
		return fmt.Errorf("nvmetro: unknown experiment %q (have %v)", id, Experiments())
	}
	for _, tab := range e.Run(harness.Options{Quick: quick, Seed: seed}) {
		tab.Fprint(w)
	}
	return nil
}
