// nvmetro-bench regenerates the paper's evaluation artifacts: every table
// and figure of Section V, rendered as text tables (and optionally CSV).
//
// Usage:
//
//	nvmetro-bench -list
//	nvmetro-bench -run fig3,fig4
//	nvmetro-bench -run all -quick
//	nvmetro-bench -run fig6 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nvmetro/internal/harness"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "thin grids and short windows")
		seed    = flag.Int64("seed", 1, "simulation seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		workers = flag.Int("workers", 0, "concurrent grid points (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("Available experiments (paper artifacts):")
		for _, e := range harness.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *runIDs == "" {
			fmt.Println("\nRun with -run <id>[,<id>...] or -run all")
		}
		return
	}

	var ids []string
	if *runIDs == "all" {
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Printf("--- running %s: %s ---\n", e.ID, e.Title)
		tables := e.Run(opts)
		for _, tab := range tables {
			tab.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				path := filepath.Join(*csvDir, tab.ID+".csv")
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("(csv written to %s)\n", path)
			}
		}
		fmt.Printf("--- %s done in %v (wall clock) ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
