// nvmetro-bench regenerates the paper's evaluation artifacts: every table
// and figure of Section V, rendered as text tables (and optionally CSV).
//
// Usage:
//
//	nvmetro-bench -list
//	nvmetro-bench -run fig3,fig4
//	nvmetro-bench -run all -quick
//	nvmetro-bench -run fig6 -csv out/
//	nvmetro-bench -run fig5 -quick -cpuprofile fig5.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"nvmetro/internal/harness"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "thin grids and short windows")
		seed    = flag.Int64("seed", 1, "simulation seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		workers = flag.Int("workers", 0, "concurrent grid points (0 = GOMAXPROCS, 1 = serial); output is identical either way")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (samples labeled per experiment)")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		traceF  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("Available experiments (paper artifacts):")
		for _, e := range harness.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *runIDs == "" {
			fmt.Println("\nRun with -run <id>[,<id>...] or -run all")
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // flush accumulated allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	var ids []string
	if *runIDs == "all" {
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Printf("--- running %s: %s ---\n", e.ID, e.Title)
		var tables []*harness.Table
		// Label the profile samples so `pprof -tagfocus experiment=fig5`
		// isolates one experiment out of a multi-ID run.
		pprof.Do(context.Background(), pprof.Labels("experiment", e.ID), func(context.Context) {
			tables = e.Run(opts)
		})
		for _, tab := range tables {
			tab.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fatal(err)
				}
				path := filepath.Join(*csvDir, tab.ID+".csv")
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("(csv written to %s)\n", path)
			}
		}
		fmt.Printf("--- %s done in %v (wall clock) ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
