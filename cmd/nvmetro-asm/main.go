// nvmetro-asm assembles, verifies and disassembles NVMetro eBPF classifier
// programs.
//
// Usage:
//
//	nvmetro-asm -builtin                 # list the shipped classifiers
//	nvmetro-asm -dump encryptor          # print a shipped classifier's source
//	nvmetro-asm my-classifier.s          # assemble + verify + disassemble
//	nvmetro-asm -hex my-classifier.s     # also print the encoded bytecode
//	nvmetro-asm -compile my-classifier.s # also print the compiled op stream
//
// Programs referencing `ldmap rX, cfg` are assembled against the standard
// partition config map (one 16-byte entry).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"nvmetro/internal/core"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/storfn"
)

func main() {
	var (
		builtin  = flag.Bool("builtin", false, "list built-in classifiers")
		dump     = flag.String("dump", "", "print a built-in classifier's source")
		hexOut   = flag.Bool("hex", false, "print encoded bytecode")
		compiled = flag.Bool("compile", false, "print the pre-decoded op stream of the compiled execution tier")
	)
	flag.Parse()

	srcs := storfn.ClassifierSources()
	if *builtin {
		var names []string
		for n := range srcs {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("Built-in classifiers:")
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
		return
	}
	if *dump != "" {
		src, ok := srcs[*dump]
		if !ok {
			fmt.Fprintf(os.Stderr, "no built-in classifier %q\n", *dump)
			os.Exit(1)
		}
		fmt.Print(src)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nvmetro-asm [-hex] <file.s> | -builtin | -dump <name>")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Provide a default array map (one 16-byte entry) for every map name
	// the source references, so any classifier assembles standalone.
	maps := map[string]ebpf.Map{}
	for _, line := range strings.Split(string(src), "\n") {
		f := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(f) >= 3 && strings.ToLower(f[0]) == "ldmap" {
			if _, ok := maps[f[2]]; !ok {
				maps[f[2]] = ebpf.NewArrayMap(core.CfgValueSize, 1)
			}
		}
	}
	prog, err := ebpf.Assemble(string(src), flag.Arg(0), maps, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "assemble: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("assembled %d instructions\n", len(prog.Insns))

	if err := core.NewVerifier().Verify(prog); err != nil {
		fmt.Fprintf(os.Stderr, "VERIFIER REJECTED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("verifier: OK (safe to attach)")
	fmt.Println("\ndisassembly:")
	fmt.Print(ebpf.Disassemble(prog))
	if *compiled {
		cp, err := ebpf.Compile(prog, core.NewVerifier())
		if err != nil {
			fmt.Fprintf(os.Stderr, "compile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ncompiled op stream (%d ops from %d instructions):\n", cp.NumOps(), len(prog.Insns))
		fmt.Print(cp.Dump())
	}
	if *hexOut {
		fmt.Printf("\nbytecode (%d bytes):\n", len(prog.Encode()))
		code := prog.Encode()
		for i := 0; i < len(code); i += ebpf.InsnSize {
			fmt.Printf("  %04d: % x\n", i/ebpf.InsnSize, code[i:i+ebpf.InsnSize])
		}
	}
}
