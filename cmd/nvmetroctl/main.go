// nvmetroctl demonstrates NVMetro's control plane: it brings up a simulated
// host, attaches VMs with virtual NVMe controllers, installs a storage
// function (classifier + UIF) and drives a short workload, then reports
// router statistics — the administrator's view of the system.
//
// Usage:
//
//	nvmetroctl -vms 2 -function encryption -duration 20ms
//	nvmetroctl -function replication
//	nvmetroctl -function none -mode randwrite
//	nvmetroctl qos [-vms 3] [-duration 20ms]
//	nvmetroctl chaos [-function encryption] [-fault crash] [-duration 20ms]
//	nvmetroctl scrub [-fault bitrot] [-replica=false] [-duration 20ms]
//	nvmetroctl snap [-vms 8] [-image 16] [-duration 20ms]
//	nvmetroctl shard [-vms 8] [-shards 2] [-duration 20ms] [-swap=false]
//
// The shard subcommand brings up the per-core sharded dispatch fleet:
// tenants spread least-loaded over the shards, each on its own whole
// namespace so the statically-provable default classifier promotes them to
// the direct SQ→HSQ mapping. After the workload it dumps the fleet view —
// per-shard tenant assignment, promotion tier, MPSC inbox depths — and,
// with -swap, hot-swaps vm0's classifier to demonstrate the demotion fence
// and the deferred re-promotion.
//
// The snap subcommand seals a golden image, clones one namespace per
// tenant VM from it, drives the read-mostly boot-storm profile and dumps
// the snapshot/clone view: the sealed layer chain with per-layer refcounts,
// shared-index dedup and cache counters, and per-tenant CoW-break and
// divergence state.
//
// The qos subcommand brings up multiple tenants with different QoS
// contracts on one shared router worker, drives a contended workload and
// dumps the arbiter state: per-tenant weights, token-bucket levels and SLO
// attainment.
//
// The scrub subcommand attaches a PI-protected (optionally replicated)
// disk over a silently-corrupting backing store, runs a workload, drives
// the background scrubber to convergence and dumps the integrity view:
// verification counters per trust boundary, detections, repairs and
// quarantined ranges.
//
// The chaos subcommand runs a storage function under UIF supervision,
// injects a crash or wedge into its UIF mid-workload and dumps the
// supervisor's view: detection, reconciliation verdicts, degraded time and
// restarts, plus the fault injector's fire counts.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nvmetro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "qos" {
		qosCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scrub" {
		scrubCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "snap" {
		snapCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		shardCmd(os.Args[2:])
		return
	}
	var (
		nvms     = flag.Int("vms", 2, "number of VMs to attach")
		function = flag.String("function", "none", "storage function: none | encryption | sgx | replication")
		mode     = flag.String("mode", "randread", "workload: randread | randwrite | seqread | seqwrite")
		dur      = flag.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		qd       = flag.Int("qd", 32, "queue depth")
		bs       = flag.Int("bs", 4096, "block size")
	)
	flag.Parse()

	var fioMode = map[string]int{"randread": 0, "randwrite": 1, "seqread": 3, "seqwrite": 4}
	mnum, ok := fioMode[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := nvmetro.Defaults()
	cfg.GuestCores = *nvms // one vCPU per VM in this demo
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	fmt.Printf("host: %d cores, device %q\n", cfg.Cores, sys.DeviceUnderTest().Identify().Model)

	var remote *nvmetro.RemoteHost
	if *function == "replication" {
		remote = sys.NewRemoteHost(4)
		fmt.Println("remote host attached over NVMe-oF fabric")
	}

	parts := sys.CarveDisk(*nvms)
	var disks []*nvmetro.AttachedDisk
	for i := 0; i < *nvms; i++ {
		v := sys.NewVM(1, 32<<20)
		var d *nvmetro.AttachedDisk
		switch *function {
		case "encryption":
			d = sys.AttachEncrypted(v, parts[i], bytes.Repeat([]byte{0x42}, 64), false)
		case "sgx":
			d = sys.AttachEncrypted(v, parts[i], bytes.Repeat([]byte{0x42}, 64), true)
		case "replication":
			d = sys.AttachReplicated(v, parts[i], remote)
		default:
			d = sys.AttachNVMetro(v, parts[i])
		}
		disks = append(disks, d)
		fmt.Printf("vm%d: virtual NVMe controller attached over partition [%d, +%d blocks), function=%s\n",
			i, parts[i].Start, parts[i].Blocks, *function)
	}

	var targets []nvmetro.FIOTarget
	for _, d := range disks {
		targets = append(targets, d.Targets(1)...)
	}
	fc := nvmetro.FIOConfig{
		BlockSize: uint32(*bs),
		QD:        *qd,
		Warmup:    2 * nvmetro.Millisecond,
		Duration:  nvmetro.Duration(dur.Nanoseconds()),
	}
	switch mnum {
	case 0:
		fc.Mode = nvmetro.RandRead
	case 1:
		fc.Mode = nvmetro.RandWrite
	case 3:
		fc.Mode = nvmetro.SeqRead
	case 4:
		fc.Mode = nvmetro.SeqWrite
	}

	fmt.Printf("\nrunning %s bs=%d qd=%d over %d VM(s)...\n", *mode, *bs, *qd, *nvms)
	res := sys.RunFIO(fc, targets)
	fmt.Printf("\nresults: %.1f kIOPS, %.1f MB/s, p50=%.1fus p99=%.1fus\n",
		res.KIOPS(), res.MBps(), float64(res.Lat.Median())/1e3, float64(res.Lat.P99())/1e3)
	fmt.Printf("whole-system CPU: %.2f cores busy\n", res.CPUCores)
	for _, tag := range res.CPU.Tags() {
		fmt.Printf("  %-16s %8.3f core-seconds/sec\n", tag, float64(res.CPU.ByTag[tag])/float64(res.CPU.Window))
	}
	if res.Errors > 0 {
		fmt.Printf("I/O errors: %d\n", res.Errors)
		os.Exit(1)
	}
}

// shardCmd is the `nvmetroctl shard` subcommand: a sharded-fleet demo and
// state dump — per-shard tenant assignment, promotion tier and MPSC inbox
// depths, plus an optional live demotion/re-promotion episode.
func shardCmd(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	var (
		nvms   = fs.Int("vms", 8, "number of tenant VMs")
		shards = fs.Int("shards", 0, "dispatch shards (0 = one per 4 VMs, min 2)")
		dur    = fs.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		qd     = fs.Int("qd", 4, "queue depth per tenant")
		bs     = fs.Int("bs", 4096, "block size")
		seed   = fs.Int64("seed", 1, "simulation seed")
		swap   = fs.Bool("swap", true, "hot-swap vm0's classifier after the run (demotion fence demo)")
	)
	fs.Parse(args)

	n := *shards
	if n <= 0 {
		n = (*nvms + 3) / 4
		if n < 2 {
			n = 2
		}
	}
	cfg := nvmetro.Defaults()
	cfg.Seed = *seed
	cfg.GuestCores = *nvms
	cfg.Cores = *nvms + n + 2 // one core per shard plus slack
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	sol := sys.NewNVMetroSharded(n)
	fmt.Printf("host: %d cores, %d dispatch shards, path promotion enabled\n", cfg.Cores, n)

	var disks []*nvmetro.AttachedDisk
	var targets []nvmetro.FIOTarget
	for i := 0; i < *nvms; i++ {
		v := sys.NewVM(1, 32<<20)
		part := sys.AddNamespace(1 << 18) // whole namespace: promotable layout
		d := sys.AttachShared(sol, v, part)
		disks = append(disks, d)
		targets = append(targets, d.Targets(1)...)
		fmt.Printf("vm%d: whole namespace %d, shard %d\n", i, part.NSID, d.Ctrl.WorkerID())
	}

	fmt.Printf("\nrunning randread bs=%d qd=%d over %d tenant(s)...\n", *bs, *qd, *nvms)
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: uint32(*bs), QD: *qd,
		Warmup: 2 * nvmetro.Millisecond, Duration: nvmetro.Duration(dur.Nanoseconds()),
	}, targets)
	fmt.Printf("results: %.1f kIOPS, p50=%.1fus p99=%.1fus, guest errors=%d\n\n",
		res.KIOPS(), float64(res.Lat.Median())/1e3, float64(res.Lat.P99())/1e3, res.Errors)
	fmt.Print(sol.Fleet().Dump())

	if !*swap {
		return
	}
	// The demotion fence, live: installing a map-dependent classifier on a
	// promoted tenant must demote it synchronously — before the new program
	// can see a single command — and restoring a provably-constant program
	// re-promotes through the shard's control inbox.
	vc := disks[0].Ctrl
	prog := nvmetro.PartitionClassifier(vc.Partition())
	fmt.Println("\nhot-swap: loading the partition classifier on vm0 (unprovable verdict)...")
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
	fmt.Printf("vm0 promoted=%v (demoted synchronously, fence closed)\n", vc.Promoted())
	sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: uint32(*bs), QD: *qd,
		Warmup: nvmetro.Millisecond, Duration: 4 * nvmetro.Millisecond,
	}, targets)
	fmt.Println("\nrestoring the default classifier on vm0...")
	if err := vc.LoadClassifier(nvmetro.DefaultClassifier()); err != nil {
		panic(err)
	}
	sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: uint32(*bs), QD: *qd,
		Warmup: nvmetro.Millisecond, Duration: 4 * nvmetro.Millisecond,
	}, targets)
	fmt.Printf("vm0 promoted=%v (re-promoted through the control inbox)\n\n", vc.Promoted())
	fmt.Print(sol.Fleet().Dump())
}

// chaosCmd is the `nvmetroctl chaos` subcommand: run one supervised
// storage function, kill or wedge its UIF mid-workload, report recovery.
func chaosCmd(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		function = fs.String("function", "encryption", "supervised storage function: encryption | cache | replication")
		kind     = fs.String("fault", "crash", "injected UIF fault: crash | wedge")
		dur      = fs.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		qd       = fs.Int("qd", 8, "queue depth")
		seed     = fs.Int64("seed", 1, "simulation + fault-plan seed")
	)
	fs.Parse(args)

	cfg := nvmetro.Defaults()
	cfg.Seed = *seed
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	pol := nvmetro.DefaultSupervisePolicy()
	pol.Seed = *seed
	v := sys.NewVM(1, 32<<20)
	part := sys.WholeDisk()
	var (
		disk *nvmetro.AttachedDisk
		sup  *nvmetro.Supervisor
		site string
	)
	switch *function {
	case "encryption":
		disk, sup = sys.AttachEncryptedSupervised(v, part, bytes.Repeat([]byte{0x42}, 64), pol)
		site = "uif-encryptor"
	case "cache":
		disk, sup = sys.AttachCachedSupervised(v, part, nvmetro.DefaultCacheParams(), pol)
		site = "uif-cacher"
	case "replication":
		disk, sup = sys.AttachReplicatedSupervised(v, part, sys.NewRemoteHost(4), pol)
		site = "uif-replicator"
	default:
		fmt.Fprintf(os.Stderr, "unknown function %q\n", *function)
		os.Exit(2)
	}

	plan := nvmetro.NewFaultPlan(*seed)
	switch *kind {
	case "crash":
		plan.WithUIFCrash(0.002, 1)
	case "wedge":
		plan.WithUIFWedge(0.002, 1, 2*nvmetro.Millisecond)
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *kind)
		os.Exit(2)
	}
	inj := plan.Injector(site)
	sup.SetFaultInjector(inj)

	fmt.Printf("host: %d cores, %s UIF under supervision, injecting a %s mid-workload\n",
		cfg.Cores, *function, *kind)
	fc := nvmetro.FIOConfig{
		Mode: nvmetro.RandRW, BlockSize: 4096, QD: *qd,
		Warmup: 2 * nvmetro.Millisecond, Duration: nvmetro.Duration(dur.Nanoseconds()),
		WorkSet: 4 << 20, Zipf: 1.2,
	}
	res := sys.RunFIO(fc, disk.Targets(1))
	fmt.Printf("\nresults: %.1f kIOPS, p50=%.1fus p99=%.1fus, guest errors=%d\n",
		res.KIOPS(), float64(res.Lat.Median())/1e3, float64(res.Lat.P99())/1e3, res.Errors)

	fmt.Printf("\nsupervisor: %s\n", sup)
	var cs nvmetro.CounterSet
	sup.Collect(&cs)
	inj.Collect(&cs)
	fmt.Println("counters:")
	for _, name := range cs.Names() {
		fmt.Printf("  %-32s %d\n", name, cs.Get(name))
	}
	if sup.Detections == 0 {
		fmt.Println("\nno fault fired inside the window; try a longer -duration")
	}
}

// scrubCmd is the `nvmetroctl scrub` subcommand: run a PI-protected
// (optionally replicated) disk over a silently-corrupting store, scrub to
// convergence and dump the integrity state.
func scrubCmd(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	var (
		kind    = fs.String("fault", "bitrot", "silent corruption: none | bitrot | torn | misdirected | lost")
		replica = fs.Bool("replica", true, "mirror writes to a remote host (the repair source)")
		dur     = fs.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		seed    = fs.Int64("seed", 1, "simulation + fault-plan seed")
	)
	fs.Parse(args)

	// The corruption plan drives the backing store below the device model:
	// damage is invisible until a verifying boundary reads it back.
	const workBlocks = 8192 // 4 MiB working set in 512 B device blocks
	plan := nvmetro.NewFaultPlan(*seed)
	switch *kind {
	case "none":
	case "bitrot":
		plan.WithBitRot(0.002, 8)
	case "torn":
		plan.WithTornWrites(0.002, 8)
	case "misdirected":
		plan.WithMisdirectedWrites(0.002, 8)
	case "lost":
		plan.WithLostWrites(0.002, 8)
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *kind)
		os.Exit(2)
	}

	cfg := nvmetro.Defaults()
	cfg.Seed = *seed
	cfg.GuestCores = 1
	cstore := nvmetro.NewCorruptingStore(
		nvmetro.NewMemStore(cfg.Params.Device.BlockSize()), plan, "store",
		cfg.Params.Device.BlockSize(), workBlocks)
	cfg.Store = cstore
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	v := sys.NewVM(1, 32<<20)
	var pd *nvmetro.ProtectedDisk
	if *replica {
		remote := sys.NewRemoteHost(4)
		pd = sys.AttachReplicatedProtected(v, sys.WholeDisk(), remote, nvmetro.DefaultScrubConfig())
		fmt.Println("remote mirror attached over NVMe-oF fabric (repair source)")
	} else {
		pd = sys.AttachProtected(v, sys.WholeDisk(), nvmetro.DefaultScrubConfig())
		fmt.Println("no replica: unrepairable damage will be quarantined")
	}

	fmt.Printf("running randrw over a %d-block working set, fault=%s, scrub active...\n",
		workBlocks, *kind)
	pd.Scrubber.Start()
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRW, BlockSize: 4096, QD: 8,
		Warmup: 2 * nvmetro.Millisecond, Duration: nvmetro.Duration(dur.Nanoseconds()),
		WorkSet: 4 << 20, Zipf: 1.2,
	}, pd.Targets(1))
	pd.Scrubber.Stop()

	// Drive scrub (and resync repair) to convergence after the workload.
	for i := 0; i < 4; i++ {
		target := pd.Scrubber.Passes + 1
		pd.Scrubber.Trigger()
		for pd.Scrubber.Passes < target {
			sys.Env.RunUntil(sys.Env.Now().Add(nvmetro.Millisecond))
		}
		sys.Env.RunUntil(sys.Env.Now().Add(5 * nvmetro.Millisecond))
	}

	fmt.Printf("\nresults: %.1f kIOPS, p50=%.1fus p99=%.1fus, guest errors=%d\n",
		res.KIOPS(), float64(res.Lat.Median())/1e3, float64(res.Lat.P99())/1e3, res.Errors)
	fmt.Printf("\ninjected: bitrot=%d torn=%d misdirected=%d lost=%d\n",
		cstore.BitRots, cstore.TornWrites, cstore.Misdirected, cstore.LostWrites)

	var cs nvmetro.CounterSet
	pd.Domain.Collect(&cs)
	pd.Scrubber.Collect(&cs)
	var inlineBad uint64
	for _, name := range cs.Names() {
		if strings.HasSuffix(name, ".bad") {
			inlineBad += cs.Get(name)
		}
	}
	if pd.Scrubber.Detected {
		fmt.Printf("first detection at t=%v\n", pd.Scrubber.FirstDetectAt)
	} else if inlineBad > 0 {
		fmt.Printf("corruption caught inline by a verification boundary (%d bad blocks) before the scrubber reached it\n", inlineBad)
	} else if *kind != "none" {
		fmt.Println("no corruption detected inside the window; try a longer -duration")
	}
	fmt.Println("\nintegrity counters:")
	for _, name := range cs.Names() {
		fmt.Printf("  %-32s %d\n", name, cs.Get(name))
	}
	if qr := pd.Domain.QuarantineRanges(); len(qr) > 0 {
		fmt.Println("\nquarantined ranges (guest reads fail with a media error):")
		for _, r := range qr {
			fmt.Printf("  [%d, +%d blocks)\n", r.LBA, r.Blocks)
		}
	}
}

// snapCmd is the `nvmetroctl snap` subcommand: golden-image clones under a
// boot-storm workload, then the operator view of the snapshot layer.
func snapCmd(args []string) {
	fs := flag.NewFlagSet("snap", flag.ExitOnError)
	var (
		nvms  = fs.Int("vms", 8, "number of tenant VMs cloned from the image")
		image = fs.Int("image", 16, "golden image size in MiB")
		dur   = fs.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		seed  = fs.Int64("seed", 1, "simulation seed")
	)
	fs.Parse(args)

	cfg := nvmetro.Defaults()
	cfg.Seed = *seed
	cfg.GuestCores = *nvms
	cfg.Cores = *nvms + 8
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	bs := cfg.Params.Device.BlockSize()
	blocks := uint64(*image) << 20 / uint64(bs)
	img := sys.NewGoldenImage(blocks, blocks/128) // cache ~ half the image's chunks
	payload := make([]byte, blocks*uint64(bs))
	for i := range payload {
		payload[i] = byte(i*131 + i>>9)
	}
	img.Master().WriteBlocks(0, payload)
	img.Seal()
	fmt.Printf("host: %d cores; golden image %d MiB sealed (%d chunks, base CRC %08x)\n",
		cfg.Cores, *image, img.Index().Chunks(), img.BaseCRC())

	var disks []*nvmetro.ClonedDisk
	var targets []nvmetro.FIOTarget
	for i := 0; i < *nvms; i++ {
		v := sys.NewVM(1, 16<<20)
		d := sys.AttachCloned(v, img)
		disks = append(disks, d)
		targets = append(targets, d.Targets(1)...)
		fmt.Printf("vm%d: cloned namespace %d attached (0 chunks copied)\n",
			i, d.Ctrl.Partition().NSID)
	}

	fc := nvmetro.BootProfile(2*nvmetro.Millisecond, nvmetro.Duration(dur.Nanoseconds()))
	fc.WorkSet = uint64(*image) << 20
	fmt.Printf("\nrunning boot profile (read-mostly shared zipf) over %d clone(s)...\n", *nvms)
	res := sys.RunFIO(fc, targets)
	fmt.Printf("\nresults: %.1f kIOPS, p50=%.1fus p99=%.1fus, guest errors=%d\n",
		res.KIOPS(), float64(res.Lat.Median())/1e3, float64(res.Lat.P99())/1e3, res.Errors)

	fmt.Println("\nlayer chain (bottom to top):")
	fmt.Printf("  %-6s %8s %10s %6s %10s\n", "seq", "chunks", "whiteouts", "refs", "crc")
	for _, li := range img.Master().LayerInfos() {
		fmt.Printf("  %-6d %8d %10d %6d   %08x\n", li.Seq, li.Chunks, li.Whiteouts, li.Refs, li.CRC)
	}

	var cs nvmetro.CounterSet
	img.Collect(&cs)
	var breaks, diverged uint64
	for i, d := range disks {
		d.Store.Collect(fmt.Sprintf("cow.vm%d.", i), &cs)
		breaks += d.Store.CowBreaks
		if d.Store.DivergenceCRC() != 0 {
			diverged++
		}
	}
	fmt.Printf("\ntenants: %d/%d diverged from the image, %d CoW breaks, base CRC still %08x\n",
		diverged, uint64(*nvms), breaks, img.BaseCRC())
	fmt.Println("\nsnapshot counters:")
	for _, name := range cs.Names() {
		fmt.Printf("  %-32s %d\n", name, cs.Get(name))
	}
}

// qosCmd is the `nvmetroctl qos` subcommand: a multi-tenant QoS demo and
// state dump.
func qosCmd(args []string) {
	fs := flag.NewFlagSet("qos", flag.ExitOnError)
	var (
		nvms = fs.Int("vms", 3, "number of tenant VMs (contracts cycle gold/silver/best-effort)")
		dur  = fs.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		qd   = fs.Int("qd", 32, "queue depth per tenant")
		bs   = fs.Int("bs", 4096, "block size")
	)
	fs.Parse(args)

	cfg := nvmetro.Defaults()
	cfg.GuestCores = *nvms
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	sol := sys.NewNVMetroShared(1).WithQoS(nvmetro.QoSConfig{})
	fmt.Printf("host: %d cores, one shared router worker, WFQ arbiter enabled\n", cfg.Cores)

	contracts := []struct {
		label string
		tc    nvmetro.QoSTenantConfig
	}{
		{"gold", nvmetro.QoSTenantConfig{Weight: 4, SLOTargetP99: 2 * nvmetro.Millisecond}},
		{"silver", nvmetro.QoSTenantConfig{Weight: 2, IOPS: 20000, BurstOps: 64}},
		{"best-effort", nvmetro.QoSTenantConfig{Weight: 1, BestEffort: true}},
	}

	parts := sys.CarveDisk(*nvms)
	var targets []nvmetro.FIOTarget
	for i := 0; i < *nvms; i++ {
		v := sys.NewVM(1, 32<<20)
		d := sys.AttachShared(sol, v, parts[i])
		c := contracts[i%len(contracts)]
		sol.SetQoS(v, c.tc)
		targets = append(targets, d.Targets(1)...)
		fmt.Printf("vm%d: %s contract %+v\n", i, c.label, c.tc)
	}

	fmt.Printf("\nrunning randread bs=%d qd=%d over %d tenant(s)...\n\n", *bs, *qd, *nvms)
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandRead, BlockSize: uint32(*bs), QD: *qd,
		Warmup: 2 * nvmetro.Millisecond, Duration: nvmetro.Duration(dur.Nanoseconds()),
	}, targets)
	fmt.Printf("aggregate: %.1f kIOPS, %.1f MB/s\n\n", res.KIOPS(), res.MBps())

	printQoSTable(sol.QoSArbiter().Snapshot(sys.Env.Now()))
}

// printQoSTable renders per-tenant arbiter state as an aligned table.
func printQoSTable(snaps []nvmetro.QoSTenantSnapshot) {
	fmt.Printf("%-8s %6s %4s %4s %9s %8s %8s %9s %9s %8s %9s %8s %10s\n",
		"tenant", "weight", "BE", "shed", "IOPS", "ops-lvl", "byt-lvl",
		"admitted", "throttled", "deferred", "p99(us)", "SLO(us)", "attainment")
	for _, t := range snaps {
		slo := "-"
		if t.SLOTarget > 0 {
			slo = fmt.Sprintf("%.0f", float64(t.SLOTarget)/1e3)
		}
		fmt.Printf("%-8s %6.1f %4v %4v %9.0f %7.0f%% %7.0f%% %9d %9d %8d %9.1f %8s %9.0f%%\n",
			t.Name, t.Weight, t.BestEffort, t.Shed,
			t.IOPS, t.OpsLevel*100, t.BytLevel*100,
			t.Admitted, t.Throttled, t.Deferred,
			float64(t.P99)/1e3, slo, t.Attainment()*100)
	}
}
