// nvmetroctl demonstrates NVMetro's control plane: it brings up a simulated
// host, attaches VMs with virtual NVMe controllers, installs a storage
// function (classifier + UIF) and drives a short workload, then reports
// router statistics — the administrator's view of the system.
//
// Usage:
//
//	nvmetroctl -vms 2 -function encryption -duration 20ms
//	nvmetroctl -function replication
//	nvmetroctl -function none -mode randwrite
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"nvmetro"
)

func main() {
	var (
		nvms     = flag.Int("vms", 2, "number of VMs to attach")
		function = flag.String("function", "none", "storage function: none | encryption | sgx | replication")
		mode     = flag.String("mode", "randread", "workload: randread | randwrite | seqread | seqwrite")
		dur      = flag.Duration("duration", 20*time.Millisecond, "virtual measurement window")
		qd       = flag.Int("qd", 32, "queue depth")
		bs       = flag.Int("bs", 4096, "block size")
	)
	flag.Parse()

	var fioMode = map[string]int{"randread": 0, "randwrite": 1, "seqread": 3, "seqwrite": 4}
	mnum, ok := fioMode[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := nvmetro.Defaults()
	cfg.GuestCores = *nvms // one vCPU per VM in this demo
	sys := nvmetro.NewSystem(cfg)
	defer sys.Close()

	fmt.Printf("host: %d cores, device %q\n", cfg.Cores, sys.DeviceUnderTest().Identify().Model)

	var remote *nvmetro.RemoteHost
	if *function == "replication" {
		remote = sys.NewRemoteHost(4)
		fmt.Println("remote host attached over NVMe-oF fabric")
	}

	parts := sys.CarveDisk(*nvms)
	var disks []*nvmetro.AttachedDisk
	for i := 0; i < *nvms; i++ {
		v := sys.NewVM(1, 32<<20)
		var d *nvmetro.AttachedDisk
		switch *function {
		case "encryption":
			d = sys.AttachEncrypted(v, parts[i], bytes.Repeat([]byte{0x42}, 64), false)
		case "sgx":
			d = sys.AttachEncrypted(v, parts[i], bytes.Repeat([]byte{0x42}, 64), true)
		case "replication":
			d = sys.AttachReplicated(v, parts[i], remote)
		default:
			d = sys.AttachNVMetro(v, parts[i])
		}
		disks = append(disks, d)
		fmt.Printf("vm%d: virtual NVMe controller attached over partition [%d, +%d blocks), function=%s\n",
			i, parts[i].Start, parts[i].Blocks, *function)
	}

	var targets []nvmetro.FIOTarget
	for _, d := range disks {
		targets = append(targets, d.Targets(1)...)
	}
	fc := nvmetro.FIOConfig{
		BlockSize: uint32(*bs),
		QD:        *qd,
		Warmup:    2 * nvmetro.Millisecond,
		Duration:  nvmetro.Duration(dur.Nanoseconds()),
	}
	switch mnum {
	case 0:
		fc.Mode = nvmetro.RandRead
	case 1:
		fc.Mode = nvmetro.RandWrite
	case 3:
		fc.Mode = nvmetro.SeqRead
	case 4:
		fc.Mode = nvmetro.SeqWrite
	}

	fmt.Printf("\nrunning %s bs=%d qd=%d over %d VM(s)...\n", *mode, *bs, *qd, *nvms)
	res := sys.RunFIO(fc, targets)
	fmt.Printf("\nresults: %.1f kIOPS, %.1f MB/s, p50=%.1fus p99=%.1fus\n",
		res.KIOPS(), res.MBps(), float64(res.Lat.Median())/1e3, float64(res.Lat.P99())/1e3)
	fmt.Printf("whole-system CPU: %.2f cores busy\n", res.CPUCores)
	for _, tag := range res.CPU.Tags() {
		fmt.Printf("  %-16s %8.3f core-seconds/sec\n", tag, float64(res.CPU.ByTag[tag])/float64(res.CPU.Window))
	}
	if res.Errors > 0 {
		fmt.Printf("I/O errors: %d\n", res.Errors)
		os.Exit(1)
	}
}
