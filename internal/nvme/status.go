package nvme

import "fmt"

// Status is the 15-bit NVMe completion status: status code type in bits
// [10:8] (of the 15-bit field, i.e. SCT) and status code in bits [7:0].
type Status uint16

// Status code types.
const (
	SCTGeneric  Status = 0x0 << 8
	SCTSpecific Status = 0x1 << 8
	SCTMedia    Status = 0x2 << 8
	SCTPath     Status = 0x3 << 8
	SCTVendor   Status = 0x7 << 8
)

// Generic status codes.
const (
	SCSuccess        Status = 0x00
	SCInvalidOpcode  Status = 0x01
	SCInvalidField   Status = 0x02
	SCIDConflict     Status = 0x03
	SCDataXferError  Status = 0x04
	SCInternal       Status = 0x06
	SCAbortRequested Status = 0x07
	SCInvalidNS      Status = 0x0B
	SCCapExceeded    Status = 0x81
	SCLBAOutOfRange  Status = 0x80
	SCNSNotReady     Status = 0x82
	SCAccessDenied   Status = SCTSpecific | 0x86
)

// Media error status codes.
const (
	SCWriteFault       Status = SCTMedia | 0x80
	SCUnrecoveredRead  Status = SCTMedia | 0x81
	SCGuardCheck       Status = SCTMedia | 0x82
	SCRefTagCheck      Status = SCTMedia | 0x84
	SCCompareFailure   Status = SCTMedia | 0x85
	SCDeallocatedRange Status = SCTMedia | 0x87
)

// Path-related status codes.
const (
	// SCPathError reports an internal path error: the fabric lost the
	// command (or its response) and every retry was exhausted.
	SCPathError Status = SCTPath | 0x00
)

// OK reports whether the status is success.
func (s Status) OK() bool { return s == SCSuccess }

// SCT returns the status code type.
func (s Status) SCT() uint8 { return uint8(s >> 8 & 0x7) }

// SC returns the status code within the type.
func (s Status) SC() uint8 { return uint8(s) }

func (s Status) String() string {
	if s.OK() {
		return "OK"
	}
	switch s {
	case SCInvalidOpcode:
		return "InvalidOpcode"
	case SCInvalidField:
		return "InvalidField"
	case SCInvalidNS:
		return "InvalidNamespace"
	case SCLBAOutOfRange:
		return "LBAOutOfRange"
	case SCInternal:
		return "InternalError"
	case SCWriteFault:
		return "WriteFault"
	case SCUnrecoveredRead:
		return "UnrecoveredReadError"
	case SCGuardCheck:
		return "GuardCheckError"
	case SCRefTagCheck:
		return "RefTagCheckError"
	case SCCompareFailure:
		return "CompareFailure"
	case SCAccessDenied:
		return "AccessDenied"
	case SCPathError:
		return "PathError"
	}
	return fmt.Sprintf("Status(sct=%d,sc=%#02x)", s.SCT(), s.SC())
}

// Error lets a Status be used where an error is expected.
func (s Status) Error() string { return "nvme: " + s.String() }

// StatusOf converts an error into a Status: nil maps to success, a Status
// passes through, anything else maps to an internal error.
func StatusOf(err error) Status {
	if err == nil {
		return SCSuccess
	}
	if s, ok := err.(Status); ok {
		return s
	}
	return SCInternal
}
