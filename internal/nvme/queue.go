package nvme

import "fmt"

// SQ is an NVMe submission queue ring. The producer (host/guest driver)
// owns the tail; the consumer (controller/router) owns the head. In the
// simulation the queue lives in shared memory, and consumers poll Tail —
// this is exactly the MDev-NVMe/NVMetro shadow-doorbell model where no trap
// is taken on submission.
type SQ struct {
	ID   uint16
	buf  []byte
	size uint32
	head uint32
	tail uint32
}

// NewSQ creates a submission queue with the given entry count (power of two
// not required; one slot is kept unused to distinguish full from empty).
func NewSQ(id uint16, entries uint32) *SQ {
	if entries < 2 {
		panic("nvme: SQ needs at least 2 entries")
	}
	return &SQ{ID: id, buf: make([]byte, entries*CommandSize), size: entries}
}

// Size returns the entry count.
func (q *SQ) Size() uint32 { return q.size }

// Head returns the consumer index.
func (q *SQ) Head() uint32 { return q.head }

// Tail returns the producer index (the shadow doorbell value).
func (q *SQ) Tail() uint32 { return q.tail }

// Len returns the number of occupied entries.
func (q *SQ) Len() uint32 { return (q.tail + q.size - q.head) % q.size }

// Full reports whether a Push would fail.
func (q *SQ) Full() bool { return (q.tail+1)%q.size == q.head }

// Empty reports whether the queue has no entries.
func (q *SQ) Empty() bool { return q.head == q.tail }

// Push enqueues a command, reporting false when the ring is full.
func (q *SQ) Push(c *Command) bool {
	if q.Full() {
		return false
	}
	copy(q.buf[q.tail*CommandSize:], c[:])
	q.tail = (q.tail + 1) % q.size
	return true
}

// Peek copies the oldest command into c without consuming it, reporting
// false when empty. The router's QoS gate uses this to learn a command's
// cost (payload size) before deciding whether to admit it — a denied
// command stays in the ring and backpressures the producer.
func (q *SQ) Peek(c *Command) bool {
	if q.Empty() {
		return false
	}
	copy(c[:], q.buf[q.head*CommandSize:])
	return true
}

// Pop dequeues the oldest command into c, reporting false when empty.
func (q *SQ) Pop(c *Command) bool {
	if q.Empty() {
		return false
	}
	copy(c[:], q.buf[q.head*CommandSize:])
	q.head = (q.head + 1) % q.size
	return true
}

func (q *SQ) String() string {
	return fmt.Sprintf("SQ%d{%d/%d}", q.ID, q.Len(), q.size)
}

// CQ is an NVMe completion queue ring with the phase-tag protocol: the
// producer writes entries whose phase bit flips every ring wrap, so the
// consumer can detect new entries without a producer-updated index —
// the basis of interrupt-free busy polling.
type CQ struct {
	ID       uint16
	buf      []byte
	size     uint32
	head     uint32 // consumer index (doorbell)
	tail     uint32 // producer index
	prodPh   bool   // phase the producer writes
	consPh   bool   // phase the consumer expects
	OnPost   func() // optional notification hook (interrupt model); nil = polled
	IRQCoal  uint32 // entries posted since last notification
	notifyHi uint32 // coalescing threshold (0 = notify every entry)
}

// NewCQ creates a completion queue with the given entry count.
func NewCQ(id uint16, entries uint32) *CQ {
	if entries < 2 {
		panic("nvme: CQ needs at least 2 entries")
	}
	return &CQ{ID: id, buf: make([]byte, entries*CompletionSize), size: entries, prodPh: true, consPh: true}
}

// Size returns the entry count.
func (q *CQ) Size() uint32 { return q.size }

// Len returns the number of unconsumed entries.
func (q *CQ) Len() uint32 { return (q.tail + q.size - q.head) % q.size }

// Full reports whether a Push would overrun the consumer.
func (q *CQ) Full() bool { return (q.tail+1)%q.size == q.head }

// Push posts a completion entry; the producer stamps the current phase.
// It reports false if the queue is full (a fatal condition for a real
// controller, surfaced to callers so they can assert on it).
func (q *CQ) Push(e *Completion) bool {
	if q.Full() {
		return false
	}
	var entry Completion
	copy(entry[:], e[:])
	entry.SetPhase(q.prodPh)
	copy(q.buf[q.tail*CompletionSize:], entry[:])
	q.tail = (q.tail + 1) % q.size
	if q.tail == 0 {
		q.prodPh = !q.prodPh
	}
	if q.OnPost != nil {
		q.IRQCoal++
		if q.IRQCoal > q.notifyHi {
			q.IRQCoal = 0
			q.OnPost()
		}
	}
	return true
}

// Peek reports whether a new entry is visible to the consumer (phase match)
// without consuming it.
func (q *CQ) Peek() bool {
	var e Completion
	copy(e[:], q.buf[q.head*CompletionSize:])
	return e.Phase() == q.consPh && q.head != q.tail
}

// Pop consumes the next completion entry, reporting false when none is
// visible. Popping advances the consumer head (the CQ doorbell).
func (q *CQ) Pop(e *Completion) bool {
	copy(e[:], q.buf[q.head*CompletionSize:])
	if e.Phase() != q.consPh || q.head == q.tail {
		return false
	}
	q.head = (q.head + 1) % q.size
	if q.head == 0 {
		q.consPh = !q.consPh
	}
	return true
}

func (q *CQ) String() string {
	return fmt.Sprintf("CQ%d{%d/%d}", q.ID, q.Len(), q.size)
}

// Post is a convenience for building and pushing a completion.
func (q *CQ) Post(cid, sqid uint16, sqhd uint32, status Status, result uint32) bool {
	var e Completion
	e.SetCID(cid)
	e.SetSQID(sqid)
	e.SetSQHD(uint16(sqhd))
	e.SetStatus(status)
	e.SetResult(result)
	return q.Push(&e)
}

// QueuePair couples a submission queue with its completion queue. NVMe
// allows N:1 SQ:CQ mappings; QueuePair is the common 1:1 case used by the
// router's per-path queues.
type QueuePair struct {
	SQ *SQ
	CQ *CQ
}

// NewQueuePair creates a 1:1 SQ/CQ pair with the same depth and ID.
func NewQueuePair(id uint16, entries uint32) *QueuePair {
	return &QueuePair{SQ: NewSQ(id, entries), CQ: NewCQ(id, entries)}
}
