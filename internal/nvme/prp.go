package nvme

import (
	"errors"
	"fmt"
)

// Memory is the DMA view of a guest's physical memory. Implementations are
// provided by package guestmem; the device model, router and UIF framework
// all move data through this interface, mirroring how the real system reads
// scatter-gather data pages directly from VM memory without copies.
type Memory interface {
	// ReadAt copies len(p) bytes from guest physical address addr.
	ReadAt(p []byte, addr uint64) error
	// WriteAt copies len(p) bytes to guest physical address addr.
	WriteAt(p []byte, addr uint64) error
}

// Segment is one contiguous piece of a data buffer in guest memory.
type Segment struct {
	Addr uint64
	Len  uint32
}

// ErrBadPRP reports a malformed PRP chain.
var ErrBadPRP = errors.New("nvme: malformed PRP")

// maxPRPList bounds PRP list walks (1 MiB transfers at 4 KiB pages).
const maxPRPList = 512

// WalkPRP resolves a command's PRP1/PRP2 pair into guest memory segments
// covering nbytes, following the NVMe PRP rules:
//
//   - PRP1 points at the first page and may carry a page offset;
//   - if the transfer fits the first page, PRP2 is ignored;
//   - if it extends into exactly one more page, PRP2 points at it (offset 0);
//   - otherwise PRP2 points at a PRP list: packed little-endian 8-byte page
//     pointers in guest memory, whose last entry chains to a further list
//     when the transfer needs more entries than one list page holds.
func WalkPRP(mem Memory, prp1, prp2 uint64, nbytes uint32) ([]Segment, error) {
	if nbytes == 0 {
		return nil, nil
	}
	var segs []Segment
	first := uint32(PageSize - prp1%PageSize) // bytes available in first page
	if first >= nbytes {
		return []Segment{{Addr: prp1, Len: nbytes}}, nil
	}
	segs = append(segs, Segment{Addr: prp1, Len: first})
	rem := nbytes - first

	if rem <= PageSize {
		if prp2 == 0 || prp2%PageSize != 0 {
			return nil, fmt.Errorf("%w: PRP2 %#x not page aligned", ErrBadPRP, prp2)
		}
		return append(segs, Segment{Addr: prp2, Len: rem}), nil
	}

	// PRP2 is a pointer to a PRP list.
	listAddr := prp2
	if listAddr == 0 || listAddr%8 != 0 {
		return nil, fmt.Errorf("%w: PRP list pointer %#x", ErrBadPRP, listAddr)
	}
	entry := make([]byte, 8)
	entriesInPage := func(addr uint64) int { return int((PageSize - addr%PageSize) / 8) }
	avail := entriesInPage(listAddr)
	for n := 0; rem > 0; n++ {
		if n >= maxPRPList {
			return nil, fmt.Errorf("%w: list too long", ErrBadPRP)
		}
		if err := mem.ReadAt(entry, listAddr); err != nil {
			return nil, err
		}
		ptr := leU64(entry)
		// The last entry of a full list page chains to the next list page
		// if more entries are still needed.
		if avail == 1 && rem > PageSize {
			if ptr == 0 || ptr%PageSize != 0 {
				return nil, fmt.Errorf("%w: chain pointer %#x", ErrBadPRP, ptr)
			}
			listAddr = ptr
			avail = entriesInPage(listAddr)
			continue
		}
		if ptr == 0 || ptr%PageSize != 0 {
			return nil, fmt.Errorf("%w: list entry %#x", ErrBadPRP, ptr)
		}
		l := uint32(PageSize)
		if rem < l {
			l = rem
		}
		segs = append(segs, Segment{Addr: ptr, Len: l})
		rem -= l
		listAddr += 8
		avail--
	}
	return segs, nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// BuildPRP constructs PRP1/PRP2 for a transfer over the given page-aligned
// data pages (each PageSize long except possibly the last). When more than
// two pages are needed, list pages are allocated via alloc and the list is
// written into guest memory. It returns the PRP pair.
func BuildPRP(mem Memory, pages []uint64, alloc func() uint64) (prp1, prp2 uint64, err error) {
	switch len(pages) {
	case 0:
		return 0, 0, nil
	case 1:
		return pages[0], 0, nil
	case 2:
		return pages[0], pages[1], nil
	}
	prp1 = pages[0]
	rest := pages[1:]
	listAddr := alloc()
	prp2 = listAddr
	buf := make([]byte, 8)
	perPage := PageSize / 8
	for i := 0; i < len(rest); {
		slot := listAddr
		n := perPage
		if len(rest)-i > n {
			n-- // reserve last slot for the chain pointer
		} else {
			n = len(rest) - i
		}
		for j := 0; j < n; j++ {
			putU64(buf, rest[i+j])
			if err := mem.WriteAt(buf, slot+uint64(j*8)); err != nil {
				return 0, 0, err
			}
		}
		i += n
		if i < len(rest) {
			next := alloc()
			putU64(buf, next)
			if err := mem.WriteAt(buf, slot+uint64((perPage-1)*8)); err != nil {
				return 0, 0, err
			}
			listAddr = next
		}
	}
	return prp1, prp2, nil
}

// TotalLen sums segment lengths.
func TotalLen(segs []Segment) uint32 {
	var n uint32
	for _, s := range segs {
		n += s.Len
	}
	return n
}

// ReadSegments copies the segments' contents from guest memory into one
// contiguous buffer.
func ReadSegments(mem Memory, segs []Segment, buf []byte) error {
	off := uint32(0)
	for _, s := range segs {
		if err := mem.ReadAt(buf[off:off+s.Len], s.Addr); err != nil {
			return err
		}
		off += s.Len
	}
	return nil
}

// WriteSegments copies buf into the segments in guest memory.
func WriteSegments(mem Memory, segs []Segment, buf []byte) error {
	off := uint32(0)
	for _, s := range segs {
		if err := mem.WriteAt(buf[off:off+s.Len], s.Addr); err != nil {
			return err
		}
		off += s.Len
	}
	return nil
}
