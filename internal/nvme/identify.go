package nvme

import "encoding/binary"

// IdentifyPageSize is the size of identify data structures.
const IdentifyPageSize = 4096

// CNS values for the Identify command (CDW10[7:0]).
const (
	CNSNamespace  uint32 = 0x00
	CNSController uint32 = 0x01
	CNSActiveNS   uint32 = 0x02
)

// ControllerInfo is the subset of the Identify Controller data structure
// that the virtual controller exposes to guests.
type ControllerInfo struct {
	VID      uint16 // PCI vendor ID
	Serial   string // 20 chars
	Model    string // 40 chars
	Firmware string // 8 chars
	NN       uint32 // number of namespaces
	MaxXfer  uint8  // MDTS, as a power-of-two multiple of the page size
	SQES     uint8  // submission queue entry size (log2), 6 for 64B
	CQES     uint8  // completion queue entry size (log2), 4 for 16B
}

// Marshal encodes the structure at the spec-defined offsets of a 4 KiB
// identify page.
func (c ControllerInfo) Marshal() []byte {
	p := make([]byte, IdentifyPageSize)
	binary.LittleEndian.PutUint16(p[0:2], c.VID)
	padCopy(p[4:24], c.Serial)
	padCopy(p[24:64], c.Model)
	padCopy(p[64:72], c.Firmware)
	p[77] = c.MaxXfer
	p[512] = c.SQES<<4 | c.SQES
	p[513] = c.CQES<<4 | c.CQES
	binary.LittleEndian.PutUint32(p[516:520], c.NN)
	return p
}

// ParseControllerInfo decodes an identify controller page.
func ParseControllerInfo(p []byte) ControllerInfo {
	return ControllerInfo{
		VID:      binary.LittleEndian.Uint16(p[0:2]),
		Serial:   trimPad(p[4:24]),
		Model:    trimPad(p[24:64]),
		Firmware: trimPad(p[64:72]),
		MaxXfer:  p[77],
		SQES:     p[512] & 0xf,
		CQES:     p[513] & 0xf,
		NN:       binary.LittleEndian.Uint32(p[516:520]),
	}
}

// NamespaceInfo is the subset of Identify Namespace the stack uses.
type NamespaceInfo struct {
	Size     uint64 // NSZE, in logical blocks
	Capacity uint64 // NCAP
	Used     uint64 // NUSE
	LBAShift uint8  // log2 of the LBA data size (9 = 512B, 12 = 4K)
}

// BlockSize returns the logical block size in bytes.
func (n NamespaceInfo) BlockSize() uint32 { return 1 << n.LBAShift }

// Bytes returns the namespace size in bytes.
func (n NamespaceInfo) Bytes() uint64 { return n.Size << n.LBAShift }

// Marshal encodes the namespace page (single LBA format, FLBAS=0).
func (n NamespaceInfo) Marshal() []byte {
	p := make([]byte, IdentifyPageSize)
	binary.LittleEndian.PutUint64(p[0:8], n.Size)
	binary.LittleEndian.PutUint64(p[8:16], n.Capacity)
	binary.LittleEndian.PutUint64(p[16:24], n.Used)
	p[25] = 0 // NLBAF: one format
	p[26] = 0 // FLBAS: format 0
	// LBAF0 at offset 128: MS[15:0] LBADS[23:16] RP[25:24].
	p[130] = n.LBAShift
	return p
}

// ParseNamespaceInfo decodes an identify namespace page.
func ParseNamespaceInfo(p []byte) NamespaceInfo {
	return NamespaceInfo{
		Size:     binary.LittleEndian.Uint64(p[0:8]),
		Capacity: binary.LittleEndian.Uint64(p[8:16]),
		Used:     binary.LittleEndian.Uint64(p[16:24]),
		LBAShift: p[130],
	}
}

func padCopy(dst []byte, s string) {
	for i := range dst {
		dst[i] = ' '
	}
	copy(dst, s)
}

func trimPad(b []byte) string {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == 0) {
		end--
	}
	return string(b[:end])
}
