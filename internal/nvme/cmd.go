// Package nvme implements the subset of the NVM Express protocol that
// NVMetro mediates: 64-byte submission commands, 16-byte completions with
// phase bits, submission/completion ring queues, PRP data pointers and the
// identify structures used by the admin command set.
//
// Commands are kept in wire format ([64]byte, little-endian) because both
// the queue rings and the eBPF classifiers operate on raw command memory,
// exactly as in the paper (classifiers perform "direct mediation" by
// rewriting command bytes, e.g. LBA translation).
package nvme

import (
	"encoding/binary"
	"fmt"
)

// CommandSize is the size of a submission queue entry in bytes.
const CommandSize = 64

// CompletionSize is the size of a completion queue entry in bytes.
const CompletionSize = 16

// PageSize is the memory page size assumed by the PRP mechanism (CC.MPS=0).
const PageSize = 4096

// I/O (NVM command set) opcodes.
const (
	OpFlush       uint8 = 0x00
	OpWrite       uint8 = 0x01
	OpRead        uint8 = 0x02
	OpWriteUncorr uint8 = 0x04
	OpCompare     uint8 = 0x05
	OpWriteZeroes uint8 = 0x08
	OpDSM         uint8 = 0x09 // dataset management (TRIM)

	// OpVendorStart is the first vendor-specific I/O opcode. NVMetro can
	// pass vendor commands straight to hardware when the classifier allows.
	OpVendorStart uint8 = 0x80
)

// Admin opcodes.
const (
	AdminDeleteSQ   uint8 = 0x00
	AdminCreateSQ   uint8 = 0x01
	AdminGetLogPage uint8 = 0x02
	AdminDeleteCQ   uint8 = 0x04
	AdminCreateCQ   uint8 = 0x05
	AdminIdentify   uint8 = 0x06
	AdminAbort      uint8 = 0x08
	AdminSetFeature uint8 = 0x09
	AdminGetFeature uint8 = 0x0A
)

// Command is one 64-byte NVMe submission queue entry in wire format.
//
// Layout (little-endian):
//
//	DW0  : opcode[7:0] flags[15:8] cid[31:16]
//	DW1  : nsid
//	DW2-3: reserved
//	DW4-5: mptr
//	DW6-7: prp1
//	DW8-9: prp2
//	DW10..15: command-specific
type Command [CommandSize]byte

// Opcode returns the command opcode.
func (c *Command) Opcode() uint8 { return c[0] }

// SetOpcode sets the command opcode.
func (c *Command) SetOpcode(op uint8) { c[0] = op }

// Flags returns FUSE/PSDT flags.
func (c *Command) Flags() uint8 { return c[1] }

// CID returns the command identifier (unique within a queue).
func (c *Command) CID() uint16 { return binary.LittleEndian.Uint16(c[2:4]) }

// SetCID sets the command identifier.
func (c *Command) SetCID(cid uint16) { binary.LittleEndian.PutUint16(c[2:4], cid) }

// NSID returns the namespace ID.
func (c *Command) NSID() uint32 { return binary.LittleEndian.Uint32(c[4:8]) }

// SetNSID sets the namespace ID.
func (c *Command) SetNSID(ns uint32) { binary.LittleEndian.PutUint32(c[4:8], ns) }

// PRP1 returns the first PRP entry of the data pointer.
func (c *Command) PRP1() uint64 { return binary.LittleEndian.Uint64(c[24:32]) }

// SetPRP1 sets the first PRP entry.
func (c *Command) SetPRP1(v uint64) { binary.LittleEndian.PutUint64(c[24:32], v) }

// PRP2 returns the second PRP entry (second page or PRP-list pointer).
func (c *Command) PRP2() uint64 { return binary.LittleEndian.Uint64(c[32:40]) }

// SetPRP2 sets the second PRP entry.
func (c *Command) SetPRP2(v uint64) { binary.LittleEndian.PutUint64(c[32:40], v) }

// CDW returns command dword n (10..15 are the command-specific dwords).
func (c *Command) CDW(n int) uint32 { return binary.LittleEndian.Uint32(c[n*4 : n*4+4]) }

// SetCDW sets command dword n.
func (c *Command) SetCDW(n int, v uint32) { binary.LittleEndian.PutUint32(c[n*4:n*4+4], v) }

// SLBA returns the starting LBA of a read/write/compare command (CDW10-11).
func (c *Command) SLBA() uint64 { return binary.LittleEndian.Uint64(c[40:48]) }

// SetSLBA sets the starting LBA.
func (c *Command) SetSLBA(lba uint64) { binary.LittleEndian.PutUint64(c[40:48], lba) }

// NLB returns the 0-based number of logical blocks (CDW12[15:0]); the
// transfer length is NLB()+1 blocks.
func (c *Command) NLB() uint16 { return uint16(c.CDW(12)) }

// SetNLB sets the 0-based number of logical blocks.
func (c *Command) SetNLB(n uint16) {
	v := c.CDW(12)
	c.SetCDW(12, v&0xffff0000|uint32(n))
}

// Blocks returns the 1-based block count of an I/O command.
func (c *Command) Blocks() uint32 { return uint32(c.NLB()) + 1 }

// IsIO reports whether the opcode moves user data (read/write family).
func (c *Command) IsIO() bool {
	switch c.Opcode() {
	case OpRead, OpWrite, OpCompare, OpWriteZeroes, OpWriteUncorr:
		return true
	}
	return false
}

func (c *Command) String() string {
	return fmt.Sprintf("cmd{op=%#02x cid=%d nsid=%d slba=%d nlb=%d}",
		c.Opcode(), c.CID(), c.NSID(), c.SLBA(), c.NLB())
}

// NewRW builds a read or write command.
func NewRW(op uint8, cid uint16, nsid uint32, slba uint64, blocks uint32, prp1, prp2 uint64) Command {
	var c Command
	c.SetOpcode(op)
	c.SetCID(cid)
	c.SetNSID(nsid)
	c.SetSLBA(slba)
	c.SetNLB(uint16(blocks - 1))
	c.SetPRP1(prp1)
	c.SetPRP2(prp2)
	return c
}

// NewFlush builds a flush command.
func NewFlush(cid uint16, nsid uint32) Command {
	var c Command
	c.SetOpcode(OpFlush)
	c.SetCID(cid)
	c.SetNSID(nsid)
	return c
}

// Completion is one 16-byte NVMe completion queue entry.
//
// Layout: DW0 result, DW1 reserved, DW2 sqhd[15:0] sqid[31:16],
// DW3 cid[15:0] phase[16] status[31:17].
type Completion [CompletionSize]byte

// Result returns command-specific result DW0.
func (e *Completion) Result() uint32 { return binary.LittleEndian.Uint32(e[0:4]) }

// SetResult sets DW0.
func (e *Completion) SetResult(v uint32) { binary.LittleEndian.PutUint32(e[0:4], v) }

// SQHD returns the submission queue head pointer echoed by the controller.
func (e *Completion) SQHD() uint16 { return binary.LittleEndian.Uint16(e[8:10]) }

// SetSQHD sets the echoed SQ head.
func (e *Completion) SetSQHD(v uint16) { binary.LittleEndian.PutUint16(e[8:10], v) }

// SQID returns the submission queue this completion belongs to.
func (e *Completion) SQID() uint16 { return binary.LittleEndian.Uint16(e[10:12]) }

// SetSQID sets the submission queue ID.
func (e *Completion) SetSQID(v uint16) { binary.LittleEndian.PutUint16(e[10:12], v) }

// CID returns the completed command's identifier.
func (e *Completion) CID() uint16 { return binary.LittleEndian.Uint16(e[12:14]) }

// SetCID sets the command identifier.
func (e *Completion) SetCID(v uint16) { binary.LittleEndian.PutUint16(e[12:14], v) }

// Phase returns the phase tag bit.
func (e *Completion) Phase() bool { return e[14]&1 != 0 }

// SetPhase sets the phase tag bit.
func (e *Completion) SetPhase(p bool) {
	if p {
		e[14] |= 1
	} else {
		e[14] &^= 1
	}
}

// Status returns the 15-bit status field (SCT<<8 | SC packed per spec).
func (e *Completion) Status() Status {
	return Status(binary.LittleEndian.Uint16(e[14:16]) >> 1)
}

// SetStatus sets the status field, preserving the phase bit.
func (e *Completion) SetStatus(s Status) {
	v := binary.LittleEndian.Uint16(e[14:16])
	v = v&1 | uint16(s)<<1
	binary.LittleEndian.PutUint16(e[14:16], v)
}

func (e *Completion) String() string {
	return fmt.Sprintf("cqe{cid=%d sqid=%d status=%v phase=%v}", e.CID(), e.SQID(), e.Status(), e.Phase())
}
