package nvme

import (
	"bytes"
	"testing"
	"testing/quick"

	"nvmetro/internal/guestmem"
)

func TestCommandFieldRoundTrip(t *testing.T) {
	c := NewRW(OpWrite, 0x1234, 7, 0xdeadbeefcafe, 16, 0x1000, 0x2000)
	if c.Opcode() != OpWrite || c.CID() != 0x1234 || c.NSID() != 7 {
		t.Fatalf("header fields: %v", &c)
	}
	if c.SLBA() != 0xdeadbeefcafe || c.Blocks() != 16 || c.NLB() != 15 {
		t.Fatalf("lba fields: %v", &c)
	}
	if c.PRP1() != 0x1000 || c.PRP2() != 0x2000 {
		t.Fatal("prp fields")
	}
	if !c.IsIO() {
		t.Fatal("write is IO")
	}
	f := NewFlush(1, 1)
	if f.IsIO() {
		t.Fatal("flush is not IO")
	}
}

func TestCommandFieldProperty(t *testing.T) {
	f := func(cid uint16, nsid uint32, slba uint64, nlb uint16) bool {
		var c Command
		c.SetCID(cid)
		c.SetNSID(nsid)
		c.SetSLBA(slba)
		c.SetNLB(nlb)
		return c.CID() == cid && c.NSID() == nsid && c.SLBA() == slba && c.NLB() == nlb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionStatusPreservesPhase(t *testing.T) {
	var e Completion
	e.SetPhase(true)
	e.SetStatus(SCLBAOutOfRange)
	if !e.Phase() || e.Status() != SCLBAOutOfRange {
		t.Fatalf("phase=%v status=%v", e.Phase(), e.Status())
	}
	e.SetStatus(SCSuccess)
	if !e.Phase() {
		t.Fatal("SetStatus cleared phase")
	}
	e.SetPhase(false)
	if e.Status() != SCSuccess {
		t.Fatal("SetPhase clobbered status")
	}
}

func TestStatusCodes(t *testing.T) {
	if !SCSuccess.OK() || SCInternal.OK() {
		t.Fatal("OK()")
	}
	if SCWriteFault.SCT() != 2 || SCWriteFault.SC() != 0x80 {
		t.Fatalf("write fault sct=%d sc=%#x", SCWriteFault.SCT(), SCWriteFault.SC())
	}
	if StatusOf(nil) != SCSuccess || StatusOf(SCInvalidNS) != SCInvalidNS {
		t.Fatal("StatusOf")
	}
	if StatusOf(ErrBadPRP) != SCInternal {
		t.Fatal("StatusOf generic error")
	}
}

func TestSQPushPopFIFO(t *testing.T) {
	q := NewSQ(1, 8)
	for i := uint16(0); i < 7; i++ {
		c := NewRW(OpRead, i, 1, uint64(i), 1, 0, 0)
		if !q.Push(&c) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full at size-1 entries")
	}
	c := NewRW(OpRead, 99, 1, 0, 1, 0, 0)
	if q.Push(&c) {
		t.Fatal("push into full queue succeeded")
	}
	for i := uint16(0); i < 7; i++ {
		var got Command
		if !q.Pop(&got) || got.CID() != i {
			t.Fatalf("pop %d: got %v", i, &got)
		}
	}
	if !q.Empty() {
		t.Fatal("should be empty")
	}
}

func TestSQWrapAround(t *testing.T) {
	q := NewSQ(1, 4)
	var c, got Command
	for round := 0; round < 10; round++ {
		c.SetCID(uint16(round))
		if !q.Push(&c) {
			t.Fatalf("round %d push", round)
		}
		if !q.Pop(&got) || got.CID() != uint16(round) {
			t.Fatalf("round %d pop cid %d", round, got.CID())
		}
	}
}

func TestCQPhaseProtocolOverWraps(t *testing.T) {
	q := NewCQ(1, 4)
	var e Completion
	for i := 0; i < 25; i++ {
		if q.Peek() {
			t.Fatalf("iter %d: phantom entry", i)
		}
		if !q.Post(uint16(i), 1, 0, SCSuccess, 0) {
			t.Fatalf("iter %d: post failed", i)
		}
		if !q.Peek() || !q.Pop(&e) {
			t.Fatalf("iter %d: pop failed", i)
		}
		if e.CID() != uint16(i) || !e.Status().OK() {
			t.Fatalf("iter %d: %v", i, &e)
		}
	}
}

func TestCQFullDetection(t *testing.T) {
	q := NewCQ(1, 4)
	for i := 0; i < 3; i++ {
		if !q.Post(uint16(i), 1, 0, SCSuccess, 0) {
			t.Fatalf("post %d", i)
		}
	}
	if q.Post(9, 1, 0, SCSuccess, 0) {
		t.Fatal("post into full CQ succeeded")
	}
	var e Completion
	for i := 0; i < 3; i++ {
		if !q.Pop(&e) || e.CID() != uint16(i) {
			t.Fatalf("pop %d: %v", i, &e)
		}
	}
	if q.Pop(&e) {
		t.Fatal("pop from empty")
	}
}

func TestCQNotificationCoalescing(t *testing.T) {
	q := NewCQ(1, 64)
	fired := 0
	q.OnPost = func() { fired++ }
	for i := 0; i < 5; i++ {
		q.Post(uint16(i), 1, 0, SCSuccess, 0)
	}
	if fired != 5 {
		t.Fatalf("uncoalesced: fired %d", fired)
	}
}

func TestWalkPRPSinglePage(t *testing.T) {
	mem := guestmem.New(1 << 20)
	segs, err := WalkPRP(mem, 0x3000, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != (Segment{0x3000, 512}) {
		t.Fatalf("segs %v", segs)
	}
	// Offset within page, still fits.
	segs, err = WalkPRP(mem, 0x3200, 0, 512)
	if err != nil || len(segs) != 1 || segs[0].Len != 512 {
		t.Fatalf("segs %v err %v", segs, err)
	}
}

func TestWalkPRPTwoPages(t *testing.T) {
	mem := guestmem.New(1 << 20)
	segs, err := WalkPRP(mem, 0x3800, 0x5000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != (Segment{0x3800, 2048}) || segs[1] != (Segment{0x5000, 2048}) {
		t.Fatalf("segs %v", segs)
	}
}

func TestBuildWalkPRPRoundTrip(t *testing.T) {
	mem := guestmem.New(16 << 20)
	for _, npages := range []int{1, 2, 3, 8, 33, 513} {
		var pages []uint64
		for i := 0; i < npages; i++ {
			pages = append(pages, mem.MustAllocPages(1))
		}
		alloc := func() uint64 { return mem.MustAllocPages(1) }
		prp1, prp2, err := BuildPRP(mem, pages, alloc)
		if err != nil {
			t.Fatalf("npages=%d: %v", npages, err)
		}
		nbytes := uint32(npages * PageSize)
		segs, err := WalkPRP(mem, prp1, prp2, nbytes)
		if err != nil {
			t.Fatalf("npages=%d: walk: %v", npages, err)
		}
		if TotalLen(segs) != nbytes {
			t.Fatalf("npages=%d: total %d != %d", npages, TotalLen(segs), nbytes)
		}
		for i, s := range segs {
			if s.Addr != pages[i] {
				t.Fatalf("npages=%d seg %d: addr %#x want %#x", npages, i, s.Addr, pages[i])
			}
		}
	}
}

func TestReadWriteSegments(t *testing.T) {
	mem := guestmem.New(1 << 20)
	segs := []Segment{{0x1000, 100}, {0x5000, 200}, {0x9f00, 56}}
	src := make([]byte, 356)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := WriteSegments(mem, segs, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 356)
	if err := ReadSegments(mem, segs, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("segment round trip mismatch")
	}
}

func TestIdentifyControllerRoundTrip(t *testing.T) {
	in := ControllerInfo{VID: 0x1b36, Serial: "NVMETRO0001", Model: "NVMetro Virtual Controller", Firmware: "1.0", NN: 4, MaxXfer: 5, SQES: 6, CQES: 4}
	out := ParseControllerInfo(in.Marshal())
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestIdentifyNamespaceRoundTrip(t *testing.T) {
	in := NamespaceInfo{Size: 1 << 30, Capacity: 1 << 30, Used: 42, LBAShift: 9}
	out := ParseNamespaceInfo(in.Marshal())
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if out.BlockSize() != 512 || out.Bytes() != 512<<30 {
		t.Fatal("derived sizes")
	}
}

func BenchmarkSQPushPop(b *testing.B) {
	q := NewSQ(1, 1024)
	c := NewRW(OpRead, 1, 1, 0, 8, 0x1000, 0)
	var got Command
	for i := 0; i < b.N; i++ {
		q.Push(&c)
		q.Pop(&got)
	}
}

func BenchmarkWalkPRP128K(b *testing.B) {
	mem := guestmem.New(16 << 20)
	var pages []uint64
	for i := 0; i < 32; i++ {
		pages = append(pages, mem.MustAllocPages(1))
	}
	prp1, prp2, _ := BuildPRP(mem, pages, func() uint64 { return mem.MustAllocPages(1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WalkPRP(mem, prp1, prp2, 128<<10); err != nil {
			b.Fatal(err)
		}
	}
}
