package sgx_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/sgx"
	"nvmetro/internal/sim"
	"nvmetro/internal/xts"
)

func run(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	env.Go("test", func(p *sim.Proc) { fn(p); ok = true; env.Stop() })
	env.RunUntil(sim.Time(10 * sim.Second))
	if !ok {
		t.Fatal("did not finish")
	}
	env.Close()
}

var key = bytes.Repeat([]byte{0x77}, 64)

func TestSwitchlessCryptMatchesXTS(t *testing.T) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	e, err := sgx.Launch(env, cpu, key, sgx.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	caller := cpu.ThreadOn(0, "caller")
	run(t, env, func(p *sim.Proc) {
		src := bytes.Repeat([]byte{0xc3}, 1024)
		dst := make([]byte, 1024)
		done := sim.NewCond(env)
		finished := false
		e.SubmitSwitchless(p, caller, &sgx.Job{
			Op: sgx.OpEncrypt, Dst: dst, Src: src, Sector: 33, SectorSize: 512,
			Done: func(err error) {
				if err != nil {
					t.Error(err)
				}
				finished = true
				done.Signal(nil)
			},
		})
		for !finished {
			done.Wait()
		}
		want := make([]byte, 1024)
		xts.Must(key).EncryptBlocks(want, src, 33, 512)
		if !bytes.Equal(dst, want) {
			t.Fatal("enclave ciphertext differs from XTS reference")
		}
	})
	if e.Switchless != 1 || e.ECalls != 0 {
		t.Fatalf("stats switchless=%d ecalls=%d", e.Switchless, e.ECalls)
	}
}

func TestECallPaysTransitionCost(t *testing.T) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	costs := sgx.DefaultCosts()
	e, _ := sgx.Launch(env, cpu, key, costs)
	caller := cpu.ThreadOn(0, "caller")
	run(t, env, func(p *sim.Proc) {
		buf := make([]byte, 512)
		start := p.Now()
		if err := e.ECallCrypt(p, caller, &sgx.Job{Op: sgx.OpEncrypt, Dst: buf, Src: buf, Sector: 0, SectorSize: 512}); err != nil {
			t.Fatal(err)
		}
		if el := p.Now().Sub(start); el < costs.ECall {
			t.Fatalf("ECALL took %v, below the transition cost %v", el, costs.ECall)
		}
	})
	if e.ECalls != 1 {
		t.Fatal("ecall not counted")
	}
}

func TestSwitchlessWorkerParksAfterIdle(t *testing.T) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	e, _ := sgx.Launch(env, cpu, key, sgx.DefaultCosts())
	caller := cpu.ThreadOn(0, "caller")
	run(t, env, func(p *sim.Proc) {
		// One job wakes the worker; then it spins IdlePark and sleeps.
		buf := make([]byte, 512)
		done := false
		cond := sim.NewCond(env)
		e.SubmitSwitchless(p, caller, &sgx.Job{Op: sgx.OpDecrypt, Dst: buf, Src: buf, Sector: 0, SectorSize: 512,
			Done: func(error) { done = true; cond.Signal(nil) }})
		for !done {
			cond.Wait()
		}
		spinBefore := e.SpinTime
		p.Sleep(10 * sim.Millisecond)
		extraSpin := e.SpinTime - spinBefore
		if extraSpin > 200*sim.Microsecond {
			t.Fatalf("switchless worker spun %v while idle; parking broken", extraSpin)
		}
	})
}

func TestLaunchRejectsBadKey(t *testing.T) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 2)
	if _, err := sgx.Launch(env, cpu, make([]byte, 10), sgx.DefaultCosts()); err == nil {
		t.Fatal("bad key accepted")
	}
	env.Close()
}
