// Package sgx simulates the Intel SGX enclave runtime used by the paper's
// SGX encryption UIF: a sealed key that never leaves the enclave, expensive
// synchronous ECALLs, and a "switchless" call path where a dedicated
// enclave worker thread polls a shared request queue so steady-state
// operations avoid the enclave transition cost entirely — at the price of
// one busy thread.
package sgx

import (
	"errors"

	"nvmetro/internal/sim"
	"nvmetro/internal/xts"
)

// Costs models SGX transition and execution overheads (EENTER/EEXIT are on
// the order of ~8k cycles; enclave memory encryption slows bulk crypto).
type Costs struct {
	ECall         sim.Duration // synchronous enclave transition round trip
	SwitchlessSub sim.Duration // host-side cost to post a switchless call
	CryptRate     float64      // bytes/sec of XTS inside the enclave
	SpinQuantum   sim.Duration // switchless worker poll interval
	IdlePark      sim.Duration // spin this long on empty queue before sleeping
}

// DefaultCosts returns the calibrated SGX model: enclave crypto at ~85% of
// native AES-NI throughput, 8 µs ECALLs, sub-microsecond switchless posts.
func DefaultCosts() Costs {
	return Costs{
		ECall:         8 * sim.Microsecond,
		SwitchlessSub: 400 * sim.Nanosecond,
		CryptRate:     2.0e9,
		SpinQuantum:   500 * sim.Nanosecond,
		IdlePark:      100 * sim.Microsecond,
	}
}

// Op selects the enclave crypto operation.
type Op uint8

// Operations.
const (
	OpEncrypt Op = iota
	OpDecrypt
)

// Job is one switchless crypto request: process Data (sector-sized blocks
// starting at Sector) and call Done.
type Job struct {
	Op         Op
	Dst, Src   []byte
	Sector     uint64
	SectorSize int
	Done       func(error)
}

// Enclave holds the sealed cipher key and runs the switchless worker.
type Enclave struct {
	env    *sim.Env
	costs  Costs
	cipher *xts.Cipher // key material lives only here
	queue  []*Job
	wake   *sim.Cond
	th     *sim.Thread

	// Stats
	ECalls, Switchless uint64
	SpinTime           sim.Duration
}

// ErrNotInitialized reports use before key provisioning.
var ErrNotInitialized = errors.New("sgx: enclave key not provisioned")

// Launch creates the enclave with its switchless worker thread on cpu.
// The key is provisioned at launch (standing in for sealed-key unwrap).
func Launch(env *sim.Env, cpu *sim.CPU, key []byte, costs Costs) (*Enclave, error) {
	cipher, err := xts.New(key)
	if err != nil {
		return nil, err
	}
	e := &Enclave{env: env, costs: costs, cipher: cipher, wake: sim.NewCond(env), th: cpu.NewThread("sgx-switchless")}
	env.Go("sgx-switchless", e.worker)
	return e, nil
}

// ECallCrypt performs a synchronous, transition-paying crypto call
// (used for rare control operations; data-path calls go switchless).
func (e *Enclave) ECallCrypt(p *sim.Proc, caller *sim.Thread, job *Job) error {
	e.ECalls++
	caller.Exec(p, e.costs.ECall)
	caller.Exec(p, e.cryptCost(len(job.Src)))
	return e.crypt(job)
}

// SubmitSwitchless posts a job to the enclave worker; Done runs in enclave
// worker context when finished. The host thread pays only the tiny post
// cost.
func (e *Enclave) SubmitSwitchless(p *sim.Proc, caller *sim.Thread, job *Job) {
	caller.Exec(p, e.costs.SwitchlessSub)
	e.Switchless++
	e.queue = append(e.queue, job)
	e.wake.Signal(nil)
}

func (e *Enclave) cryptCost(n int) sim.Duration {
	return sim.Duration(float64(n) / e.costs.CryptRate * 1e9)
}

func (e *Enclave) crypt(job *Job) error {
	var err error
	if job.Op == OpEncrypt {
		err = e.cipher.EncryptBlocks(job.Dst, job.Src, job.Sector, job.SectorSize)
	} else {
		err = e.cipher.DecryptBlocks(job.Dst, job.Src, job.Sector, job.SectorSize)
	}
	return err
}

// worker is the switchless thread: it spins on the call queue (burning CPU,
// visible in the evaluation's CPU figures) and parks after a long idle.
func (e *Enclave) worker(p *sim.Proc) {
	var idle sim.Duration
	for {
		if len(e.queue) == 0 {
			if idle >= e.costs.IdlePark {
				e.wake.Wait()
				idle = 0
				continue
			}
			e.th.Exec(p, e.costs.SpinQuantum)
			e.SpinTime += e.costs.SpinQuantum
			idle += e.costs.SpinQuantum
			continue
		}
		idle = 0
		job := e.queue[0]
		e.queue = e.queue[1:]
		e.th.Exec(p, e.cryptCost(len(job.Src)))
		err := e.crypt(job)
		job.Done(err)
	}
}
