// Package sim implements a deterministic, process-based discrete-event
// simulation (DES) kernel. It is the time substrate for the whole NVMetro
// reproduction: every host thread, vCPU, device and fabric link runs as a
// simulated process on a virtual clock.
//
// The model follows SimPy-style process interaction: processes are ordinary
// goroutines, but the scheduler hands out a single run token, so exactly one
// process executes at any instant. All cross-process interaction goes through
// sim primitives (Sleep, Cond, Resource, events), which makes simulations
// deterministic given a seed and free of data races by construction.
//
// The scheduler is built for throughput: events live by value in a tiered
// timer wheel (see queue.go), so Sleep/At/After are allocation-free in
// steady state; same-instant callback batches dispatch in a tight loop
// without touching the run token; and the run token travels directly from
// the yielding process to the next runnable one — a single channel
// rendezvous per switch, or none at all when a process's own timer is the
// next event. Event dispatch order is the exact (t, seq) total order of the
// original heap scheduler, so traces are bit-identical.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
)

// growStack forces one stack growth at worker-goroutine birth, while the
// stack is still empty and the copy is nearly free. Because the yielding
// goroutine itself runs the dispatch loop (baton passing), scheduler frames
// stack on top of arbitrarily deep user code; without the pre-grow, every
// process goroutine pays several stack doublings — each copying a deep live
// stack — as soon as it parks (runtime.copystack showed up at ~16% of a
// full fig5 sweep). Workers are pooled (see workerLoop), so the cost is
// paid once per pool slot, not once per process.
//
//go:noinline
func growStack() {
	var pad [8 << 10]byte
	runtime.KeepAlive(&pad)
}

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// maxTime is the run limit used by Run (no bound).
const maxTime = Time(1<<63 - 1)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two timestamps.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string     { return fmt.Sprintf("%.3fus", float64(t)/1e3) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Seconds returns the duration in seconds as a float.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// ErrStopped is the panic value delivered to a parked process when the
// environment is closed. Process bodies should not recover from it.
var ErrStopped = errors.New("sim: environment closed")

// Env is a simulation environment: a virtual clock plus a tiered event
// queue. It is not safe for concurrent use from multiple OS threads; all
// access must come from the goroutine currently holding the run token (the
// Run caller or the running simulated process).
type Env struct {
	now   Time
	seq   uint64
	q     queue
	limit Time // dispatch bound of the run in progress

	idle      chan struct{} // hands the run token back to Run/Close
	cur       *Proc
	procs     []*Proc // every spawned, unfinished process (Close needs them)
	procsDead int
	live      int
	closed    bool
	fail      any // panic value captured from a process or callback
	stopped   bool
	rng       *rand.Rand
	tokFree   []*waitTok // free list for wait tokens
	pool      []*worker  // idle worker goroutines awaiting a process
	procFree  []*Proc    // retired Procs with no queue references, reusable
}

// New creates an environment whose random source is seeded with seed.
func New(seed int64) *Env {
	return &Env{
		idle:  make(chan struct{}),
		limit: maxTime,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from simulated processes (or between Run calls) so that draws
// happen in a deterministic order.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Live reports the number of processes that have been spawned and have not
// yet finished.
func (e *Env) Live() int { return e.live }

// QueueLen reports the number of queued events, including lazily-cancelled
// ones not yet reclaimed (see QueueDead).
func (e *Env) QueueLen() int { return e.q.size }

// QueueDead reports the number of queued events known to be dead: cancelled
// timeouts and wakes for finished processes. They are skipped at dispatch
// and compacted away once they exceed half the queue.
func (e *Env) QueueDead() int { return e.q.dead }

func (e *Env) push(t Time, p *Proc, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	if p != nil {
		p.wakes++
	}
	e.q.push(e.now, event{t: t, seq: e.seq, p: p, fn: fn})
	e.maybeCompact()
}

// pushTimer schedules a cancellable timeout: when it pops unfired, it fires
// tok and re-queues a wake for tok.p (the two-step wake preserves the exact
// event ordering of the callback-based implementation it replaces). If tok
// is fired early by a signal, the queued event is lazily cancelled.
func (e *Env) pushTimer(t Time, tok *waitTok) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	tok.hasTimer = true
	tok.p.wakes++
	e.q.push(e.now, event{t: t, seq: e.seq, p: tok.p, tok: tok})
	e.maybeCompact()
}

// cancelTimer accounts for a pending timeout whose token just fired by
// signal: the queued event is now dead and waits for lazy reclamation.
func (e *Env) cancelTimer(tok *waitTok) {
	tok.p.wakes--
	e.q.dead++
}

// compactMinDead is the floor below which lazy deletions are never worth a
// compaction sweep, regardless of the dead/live ratio.
const compactMinDead = 64

func (e *Env) maybeCompact() {
	if e.q.dead >= compactMinDead && e.q.dead*2 > e.q.size {
		e.q.compact()
	}
}

// At schedules fn to run in scheduler context at time t. fn must not block
// on simulation primitives; it may signal conditions and spawn processes.
func (e *Env) At(t Time, fn func()) {
	e.push(t, nil, fn)
}

// After schedules fn to run d from now (see At).
func (e *Env) After(d Duration, fn func()) {
	e.push(e.now.Add(d), nil, fn)
}

// Proc is a simulated process. Its methods must be called from the process's
// own goroutine while it holds the run token.
//
// A Proc is a fresh identity per Go call — queued wakes reference it, and a
// stale wake for a finished Proc must stay dead — but the goroutine running
// it is a pooled worker whose (already grown) stack and resume channel are
// recycled across processes.
type Proc struct {
	env    *Env
	name   string
	resume chan bool // run token entry (the worker's channel); value: stop flag
	w      *worker
	idx    int // position in env.procs
	done   bool
	wakes  int // queued events targeting this process
}

// worker is one pooled process goroutine. While idle it blocks on ch with
// p == nil; Go assigns p/body and the scheduler's next send on ch starts
// the body. p and body are only written while the worker is parked and only
// read after the wake-up receive, so the handoff is race-free.
type worker struct {
	ch   chan bool
	p    *Proc
	body func(*Proc)
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process. The body starts at the current virtual time,
// after the currently running process yields. Safe to call from process
// context, callback context, or before Run.
//
// The process runs on a pooled worker goroutine when one is idle, so
// spawn-heavy workloads (one process per device command) pay neither a
// goroutine launch nor the one-time stack pre-grow per process.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go after Close")
	}
	var w *worker
	if n := len(e.pool); n > 0 {
		w = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		w = &worker{ch: make(chan bool)}
		go e.workerLoop(w)
	}
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
		p.name, p.resume, p.w, p.done, p.wakes = name, w.ch, w, false, 0
	} else {
		p = &Proc{env: e, name: name, resume: w.ch, w: w}
	}
	w.p = p
	w.body = body
	e.live++
	e.addProc(p)
	e.push(e.now, p, nil)
	return p
}

// addProc registers p for Close, compacting finished entries when they
// dominate the list.
func (e *Env) addProc(p *Proc) {
	if e.procsDead >= 64 && e.procsDead*2 > len(e.procs) {
		w := 0
		for _, q := range e.procs {
			if !q.done {
				e.procs[w] = q
				q.idx = w
				w++
			}
		}
		for z := w; z < len(e.procs); z++ {
			e.procs[z] = nil
		}
		e.procs = e.procs[:w]
		e.procsDead = 0
	}
	p.idx = len(e.procs)
	e.procs = append(e.procs, p)
}

// removeProc drops p from the registry by swapping in the last entry.
// Registry order only matters to Close's teardown sweep, not to simulation
// results.
func (e *Env) removeProc(p *Proc) {
	last := len(e.procs) - 1
	q := e.procs[last]
	e.procs[p.idx] = q
	q.idx = p.idx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// workerLoop is the body of a pooled process goroutine. Each iteration runs
// one process to completion, retires it, and keeps the simulation moving:
// the worker returns itself to the pool, then continues the dispatch loop
// and hands the run token straight to the next runnable process, bouncing
// through the Run goroutine only when the queue drains, the environment
// closes, or a failure must propagate. The worker exits on Close/failure;
// otherwise it parks on its channel awaiting the next assignment.
func (e *Env) workerLoop(w *worker) {
	growStack()
	fused := false
	for {
		if !fused {
			if stop := <-w.ch; stop {
				// Close: either an assigned process that never started
				// (retire it unrun) or an idle pool worker being drained.
				p := w.p
				w.p, w.body = nil, nil
				if p == nil {
					return
				}
				e.retire(p, nil)
				e.idle <- struct{}{}
				return
			}
		}
		fused = false
		p, body := w.p, w.body
		w.p, w.body = nil, nil
		e.retire(p, e.execBody(p, body))
		if e.closed || e.fail != nil {
			e.idle <- struct{}{}
			return
		}
		// Pool before dispatching so a callback that spawns can reuse this
		// worker immediately.
		e.pool = append(e.pool, w)
		next := e.dispatchSafe()
		if next == nil {
			e.idle <- struct{}{}
			continue // stay pooled; a later Go will resume us
		}
		e.cur = next
		if next.w == w {
			// A dispatch callback assigned our own next process: run it
			// inline rather than deadlock on a self-send.
			fused = true
			continue
		}
		next.resume <- false
	}
}

// execBody runs a process body, returning the panic value that terminated it
// (nil for a clean return, errStopSentinel when Close unwound it in park).
func (e *Env) execBody(p *Proc, body func(*Proc)) (r any) {
	defer func() { r = recover() }()
	body(p)
	return nil
}

// retire marks a process finished and records a non-sentinel panic for the
// Run caller to re-raise, so test output points at the process body. A
// process with no outstanding wakes has no queue or token references left,
// so its Proc can be recycled by a later Go — except during Close, whose
// sweep over e.procs must not see entries move.
func (e *Env) retire(p *Proc, r any) {
	p.done = true
	e.live--
	e.cur = nil
	e.q.dead += p.wakes // any leftover wakes for p are now dead
	if r != nil && r != errStopSentinel {
		e.fail = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
	}
	if p.wakes == 0 && !e.closed {
		e.removeProc(p)
		e.procFree = append(e.procFree, p)
	} else {
		e.procsDead++
	}
}

var errStopSentinel = errors.New("sim: stop")

// park blocks the calling process until the scheduler resumes it. Callers
// must have arranged a wake-up (event or condition) beforehand. The parking
// process itself runs the dispatch loop: if its own wake-up is the next
// process event, it simply keeps running (no goroutine switch); otherwise
// it hands the run token directly to the next runnable process.
func (p *Proc) park() {
	e := p.env
	next := e.dispatchSafe()
	if next == p {
		e.cur = p
		return // fused self-resume: no channel operations
	}
	if next != nil {
		e.cur = next
		next.resume <- false
	} else {
		e.idle <- struct{}{}
	}
	if stop := <-p.resume; stop {
		panic(errStopSentinel)
	}
	e.cur = p
}

// Sleep suspends the process for d virtual time. Negative or zero d yields
// the token and resumes at the current time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.push(p.env.now.Add(d), p, nil)
	p.park()
}

// Yield gives other runnable processes scheduled at the current instant a
// chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// dispatch pops and runs events in (t, seq) order until a process must be
// resumed or the queue is exhausted up to the run limit. Callback events and
// timer firings run inline in the calling goroutine, so same-instant
// callback batches never touch the run token. Returns the process to hand
// the run token to (which may be the caller itself — it should just keep
// running), or nil when the run is over (drained, limit, or Stop).
func (e *Env) dispatch() *Proc {
	e.cur = nil
	q := &e.q
	for !e.stopped {
		ev, ok := q.next(e.limit)
		if !ok {
			return nil
		}
		e.now = ev.t
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if tok := ev.tok; tok != nil {
			ev.p.wakes--
			if tok.fired {
				q.dead-- // cancelled timeout, lazily reclaimed
				continue
			}
			tok.fired = true
			e.push(e.now, ev.p, nil) // timeout: two-step wake (see pushTimer)
			continue
		}
		p := ev.p
		p.wakes--
		if p.done {
			q.dead-- // stale wake for a finished process
			continue
		}
		return p
	}
	return nil
}

// dispatchSafe is dispatch for process-context callers: a panic out of a
// callback (or a bad schedule) is captured and re-raised from the Run
// caller, as it would be if the callback had run on the Run goroutine.
func (e *Env) dispatchSafe() (next *Proc) {
	defer func() {
		if r := recover(); r != nil {
			e.fail = r
			next = nil
		}
	}()
	return e.dispatch()
}

// runLoop drives dispatch from the Run caller's goroutine, parking while
// simulated processes pass the run token among themselves.
func (e *Env) runLoop() Time {
	for {
		p := e.dispatch()
		if p == nil {
			e.cur = nil
			return e.now
		}
		e.cur = p
		p.resume <- false
		<-e.idle
		e.cur = nil
		if e.fail != nil {
			f := e.fail
			e.fail = nil
			panic(f)
		}
	}
}

// Run processes events until the queue is empty (all processes are either
// finished or parked with no pending wake-up) or Stop is called. It returns
// the final time.
func (e *Env) Run() Time {
	e.stopped = false
	e.limit = maxTime
	return e.runLoop()
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t. It returns early if Stop is called.
func (e *Env) RunUntil(t Time) {
	e.stopped = false
	e.limit = t
	e.runLoop()
	if e.now < t && !e.stopped {
		e.now = t
	}
	e.limit = maxTime
}

// Stop makes the in-progress Run or RunUntil return after the current event.
// Callable from process or callback context.
func (e *Env) Stop() { e.stopped = true }

// Close terminates every parked process by delivering a stop panic, releasing
// their goroutines. The environment must not be used afterwards.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for i := 0; i < len(e.procs); i++ {
		p := e.procs[i]
		if p.done {
			continue
		}
		// Every unfinished process is blocked on its resume channel —
		// parked, or assigned to a worker and not yet started.
		p.resume <- true
		<-e.idle
	}
	// Idle pooled workers have no process assigned; a stop send makes them
	// exit without touching the idle channel.
	for _, w := range e.pool {
		w.ch <- true
	}
	e.pool = nil
	e.procs = nil
	e.procsDead = 0
	e.fail = nil
	e.q.clear()
}

// current returns the running process, panicking if called outside one.
func (e *Env) current() *Proc {
	if e.cur == nil {
		panic("sim: blocking primitive called outside process context")
	}
	return e.cur
}

// getTok takes a wait token from the free list (or allocates one).
func (e *Env) getTok(p *Proc) *waitTok {
	if n := len(e.tokFree); n > 0 {
		tok := e.tokFree[n-1]
		e.tokFree[n-1] = nil
		e.tokFree = e.tokFree[:n-1]
		*tok = waitTok{p: p}
		return tok
	}
	return &waitTok{p: p}
}

// putTok recycles a consumed wait token. Tokens that armed a timeout are
// never recycled: the queued timer event (and possibly a stale waiter-list
// slot) may still reference them.
func (e *Env) putTok(tok *waitTok) {
	if tok.hasTimer {
		return
	}
	tok.val = nil
	e.tokFree = append(e.tokFree, tok)
}
