// Package sim implements a deterministic, process-based discrete-event
// simulation (DES) kernel. It is the time substrate for the whole NVMetro
// reproduction: every host thread, vCPU, device and fabric link runs as a
// simulated process on a virtual clock.
//
// The model follows SimPy-style process interaction: processes are ordinary
// goroutines, but the scheduler hands out a single run token, so exactly one
// process executes at any instant. All cross-process interaction goes through
// sim primitives (Sleep, Cond, Resource, events), which makes simulations
// deterministic given a seed and free of data races by construction.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
)

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two timestamps.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string     { return fmt.Sprintf("%.3fus", float64(t)/1e3) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Seconds returns the duration in seconds as a float.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// ErrStopped is the panic value delivered to a parked process when the
// environment is closed. Process bodies should not recover from it.
var ErrStopped = errors.New("sim: environment closed")

type event struct {
	t   Time
	seq uint64
	// Exactly one of p / fn is set: wake a parked process, or run a
	// callback in scheduler context (callbacks must not block).
	p  *Proc
	fn func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) Peek() *event { return h[0] }

// Env is a simulation environment: a virtual clock plus an event queue.
// It is not safe for concurrent use from multiple OS threads; all access
// must come from the scheduler goroutine or from simulated processes.
type Env struct {
	now     Time
	seq     uint64
	heap    eventHeap
	yield   chan struct{}
	cur     *Proc
	parked  map[*Proc]struct{}
	live    int
	closed  bool
	fail    any // panic value captured from a process
	stopped bool
	rng     *rand.Rand
}

// New creates an environment whose random source is seeded with seed.
func New(seed int64) *Env {
	return &Env{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from simulated processes (or between Run calls) so that draws
// happen in a deterministic order.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Live reports the number of processes that have been spawned and have not
// yet finished.
func (e *Env) Live() int { return e.live }

func (e *Env) push(t Time, p *Proc, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	ev := &event{t: t, seq: e.seq, p: p, fn: fn}
	heap.Push(&e.heap, ev)
	return ev
}

// At schedules fn to run in scheduler context at time t. fn must not block
// on simulation primitives; it may signal conditions and spawn processes.
func (e *Env) At(t Time, fn func()) {
	e.push(t, nil, fn)
}

// After schedules fn to run d from now (see At).
func (e *Env) After(d Duration, fn func()) {
	e.push(e.now.Add(d), nil, fn)
}

// Proc is a simulated process. Its methods must be called from the process's
// own goroutine while it holds the run token.
type Proc struct {
	env    *Env
	name   string
	resume chan bool // value: stop flag
	done   bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process. The body starts at the current virtual time,
// after the currently running process yields. Safe to call from process
// context, callback context, or before Run.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go after Close")
	}
	p := &Proc{env: e, name: name, resume: make(chan bool)}
	e.live++
	go func() {
		defer func() {
			p.done = true
			e.live--
			if r := recover(); r != nil && r != errStopSentinel {
				// Keep the failure for the scheduler to re-panic with,
				// so test output points at the process body.
				e.fail = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			e.yield <- struct{}{}
		}()
		if stop := <-p.resume; stop {
			panic(errStopSentinel)
		}
		body(p)
	}()
	e.push(e.now, p, nil)
	return p
}

var errStopSentinel = errors.New("sim: stop")

// park blocks the calling process until the scheduler resumes it.
// Callers must have arranged a wake-up (event or condition) beforehand.
func (p *Proc) park() {
	e := p.env
	e.parked[p] = struct{}{}
	e.yield <- struct{}{}
	if stop := <-p.resume; stop {
		panic(errStopSentinel)
	}
}

// Sleep suspends the process for d virtual time. Negative or zero d yields
// the token and resumes at the current time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.push(p.env.now.Add(d), p, nil)
	p.park()
}

// Yield gives other runnable processes scheduled at the current instant a
// chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

func (e *Env) dispatch(ev *event) {
	e.now = ev.t
	if ev.fn != nil {
		ev.fn()
		return
	}
	p := ev.p
	if p.done {
		return // stale wake for a finished process
	}
	delete(e.parked, p)
	e.cur = p
	p.resume <- false
	<-e.yield
	e.cur = nil
	if e.fail != nil {
		f := e.fail
		e.fail = nil
		panic(f)
	}
}

// Run processes events until the queue is empty (all processes are either
// finished or parked with no pending wake-up) or Stop is called. It returns
// the final time.
func (e *Env) Run() Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		e.dispatch(heap.Pop(&e.heap).(*event))
	}
	return e.now
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t. It returns early if Stop is called.
func (e *Env) RunUntil(t Time) {
	e.stopped = false
	for len(e.heap) > 0 && e.heap.Peek().t <= t && !e.stopped {
		e.dispatch(heap.Pop(&e.heap).(*event))
	}
	if e.now < t && !e.stopped {
		e.now = t
	}
}

// Stop makes the in-progress Run or RunUntil return after the current event.
// Callable from process or callback context.
func (e *Env) Stop() { e.stopped = true }

// Close terminates every parked process by delivering a stop panic, releasing
// their goroutines. The environment must not be used afterwards.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	stop := func(p *Proc) {
		if p.done {
			return
		}
		delete(e.parked, p)
		p.resume <- true
		<-e.yield
	}
	// Spawned-but-not-yet-started processes only appear as heap events.
	for _, ev := range e.heap {
		if ev.p != nil {
			stop(ev.p)
		}
	}
	for len(e.parked) > 0 {
		for p := range e.parked {
			stop(p)
		}
	}
	e.heap = nil
}

// cur returns the running process, panicking if called outside one.
func (e *Env) current() *Proc {
	if e.cur == nil {
		panic("sim: blocking primitive called outside process context")
	}
	return e.cur
}
