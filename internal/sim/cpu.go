package sim

import "sort"

// Core is a simulated CPU core: unit-capacity FIFO resource plus per-tag
// busy-time accounting. Tags identify who consumed the time (e.g. "guest",
// "router", "uif", "kernel"), feeding the whole-system CPU figures.
type Core struct {
	env  *Env
	ID   int
	res  *Resource
	busy map[string]Duration
}

// Exec occupies the core for d and accounts the time under tag. The calling
// process waits FIFO if the core is busy.
func (c *Core) Exec(p *Proc, tag string, d Duration) {
	c.res.Acquire()
	p.Sleep(d)
	c.res.Release()
	c.busy[tag] += d
}

// TryExec occupies the core only if it is currently idle, reporting success.
func (c *Core) TryExec(p *Proc, tag string, d Duration) bool {
	if !c.res.TryAcquire() {
		return false
	}
	p.Sleep(d)
	c.res.Release()
	c.busy[tag] += d
	return true
}

// Busy returns total busy time accumulated on the core.
func (c *Core) Busy() Duration {
	var t Duration
	for _, d := range c.busy {
		t += d
	}
	return t
}

// CPU is a set of cores with round-robin assignment for thread placement.
type CPU struct {
	env   *Env
	cores []*Core
	next  int
}

// NewCPU creates n cores.
func NewCPU(env *Env, n int) *CPU {
	c := &CPU{env: env}
	for i := 0; i < n; i++ {
		c.cores = append(c.cores, &Core{env: env, ID: i, res: NewResource(env, 1), busy: make(map[string]Duration)})
	}
	return c
}

// NumCores returns the core count.
func (c *CPU) NumCores() int { return len(c.cores) }

// Core returns core i.
func (c *CPU) Core(i int) *Core { return c.cores[i] }

// NextCore returns cores round-robin; used to spread threads.
func (c *CPU) NextCore() *Core {
	core := c.cores[c.next%len(c.cores)]
	c.next++
	return core
}

// CPUSnapshot captures per-tag busy time at one instant.
type CPUSnapshot struct {
	at   Time
	busy map[string]Duration
}

// Snapshot captures the current accounting state.
func (c *CPU) Snapshot() CPUSnapshot {
	s := CPUSnapshot{at: c.env.now, busy: make(map[string]Duration)}
	for _, core := range c.cores {
		for tag, d := range core.busy {
			s.busy[tag] += d
		}
	}
	return s
}

// CPUUsage is busy time per tag over a measurement window.
type CPUUsage struct {
	Window Duration
	ByTag  map[string]Duration
}

// Total returns the summed busy time across tags.
func (u CPUUsage) Total() Duration {
	var t Duration
	for _, d := range u.ByTag {
		t += d
	}
	return t
}

// Cores returns average busy cores over the window (total busy / window).
func (u CPUUsage) Cores() float64 {
	if u.Window <= 0 {
		return 0
	}
	return float64(u.Total()) / float64(u.Window)
}

// Tags returns the tag names sorted for stable output.
func (u CPUUsage) Tags() []string {
	tags := make([]string, 0, len(u.ByTag))
	for t := range u.ByTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// Since returns usage accumulated since the snapshot.
func (c *CPU) Since(s CPUSnapshot) CPUUsage {
	cur := c.Snapshot()
	u := CPUUsage{Window: cur.at.Sub(s.at), ByTag: make(map[string]Duration)}
	for tag, d := range cur.busy {
		if delta := d - s.busy[tag]; delta > 0 {
			u.ByTag[tag] = delta
		}
	}
	return u
}

// Thread is a simulated OS thread (or vCPU) pinned to one core with a fixed
// accounting tag.
type Thread struct {
	Core *Core
	Tag  string
}

// NewThread pins a new thread on the next core round-robin.
func (c *CPU) NewThread(tag string) *Thread {
	return &Thread{Core: c.NextCore(), Tag: tag}
}

// ThreadOn pins a thread to a specific core.
func (c *CPU) ThreadOn(i int, tag string) *Thread {
	return &Thread{Core: c.cores[i], Tag: tag}
}

// Exec runs d of work on the thread's core, accounted under the thread tag.
func (t *Thread) Exec(p *Proc, d Duration) { t.Core.Exec(p, t.Tag, d) }
