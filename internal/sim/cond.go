package sim

// waitTok represents one parked wait. A token fires exactly once — either by
// a signal or by a timeout — which makes Signal/WaitTimeout races impossible.
// Tokens are pooled on the environment: the waiter recycles its token after
// resuming, unless a timeout event may still reference it.
type waitTok struct {
	p        *Proc
	fired    bool
	signaled bool
	hasTimer bool // a queued timeout event references this token
	val      any  // optional payload handed over by Signal
}

// Cond is a FIFO condition variable for simulated processes. Unlike
// sync.Cond there is no associated lock: only one process runs at a time,
// so checking the predicate and calling Wait is already atomic.
type Cond struct {
	env     *Env
	waiters []*waitTok
	head    int // index of the first live waiter; storage before it is consumed
}

// NewCond returns a condition bound to env.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Waiters reports how many processes are currently parked on the condition.
func (c *Cond) Waiters() int {
	n := 0
	for _, t := range c.waiters[c.head:] {
		if !t.fired {
			n++
		}
	}
	return n
}

// Wait parks the calling process until Signal or Broadcast wakes it.
// It returns the value passed to Signal (nil for Broadcast).
func (c *Cond) Wait() any {
	p := c.env.current()
	tok := c.env.getTok(p)
	c.waiters = append(c.waiters, tok)
	p.park()
	val := tok.val
	c.env.putTok(tok) // fired tokens are popped from waiters before the wake
	return val
}

// WaitTimeout parks the calling process until signaled or until d elapses.
// It reports whether the wake-up was a signal, and the signal value if so.
// The timeout is a first-class timer event: if the signal wins, the queued
// event is lazily cancelled instead of surviving as a dead callback.
func (c *Cond) WaitTimeout(d Duration) (any, bool) {
	p := c.env.current()
	tok := c.env.getTok(p)
	c.waiters = append(c.waiters, tok)
	c.env.pushTimer(c.env.now.Add(d), tok)
	p.park()
	return tok.val, tok.signaled
}

// pop removes and returns the first unfired waiter, or nil. Consumed slots
// advance head; the backing array is reused once the queue drains, so a
// steady wait/signal cycle never reallocates.
func (c *Cond) pop() *waitTok {
	for c.head < len(c.waiters) {
		tok := c.waiters[c.head]
		c.waiters[c.head] = nil
		c.head++
		if !tok.fired {
			if c.head == len(c.waiters) {
				c.waiters = c.waiters[:0]
				c.head = 0
			}
			return tok
		}
	}
	c.waiters = c.waiters[:0]
	c.head = 0
	return nil
}

// Signal wakes the longest-waiting process, handing it val. It reports
// whether a waiter was woken. Safe from both process and callback context.
func (c *Cond) Signal(val any) bool {
	tok := c.pop()
	if tok == nil {
		return false
	}
	c.fire(tok, val)
	return true
}

// Broadcast wakes every parked process.
func (c *Cond) Broadcast() {
	for {
		tok := c.pop()
		if tok == nil {
			return
		}
		c.fire(tok, nil)
	}
}

// fire marks tok signaled, cancels its pending timeout if any, and queues
// the wake for its process.
func (c *Cond) fire(tok *waitTok, val any) {
	tok.fired = true
	tok.signaled = true
	tok.val = val
	if tok.hasTimer {
		c.env.cancelTimer(tok)
	}
	c.env.push(c.env.now, tok.p, nil)
}
