package sim

// waitTok represents one parked wait. A token fires exactly once — either by
// a signal or by a timeout — which makes Signal/WaitTimeout races impossible.
type waitTok struct {
	p        *Proc
	fired    bool
	signaled bool
	val      any // optional payload handed over by Signal
}

// Cond is a FIFO condition variable for simulated processes. Unlike
// sync.Cond there is no associated lock: only one process runs at a time,
// so checking the predicate and calling Wait is already atomic.
type Cond struct {
	env     *Env
	waiters []*waitTok
}

// NewCond returns a condition bound to env.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Waiters reports how many processes are currently parked on the condition.
func (c *Cond) Waiters() int {
	n := 0
	for _, t := range c.waiters {
		if !t.fired {
			n++
		}
	}
	return n
}

// Wait parks the calling process until Signal or Broadcast wakes it.
// It returns the value passed to Signal (nil for Broadcast).
func (c *Cond) Wait() any {
	p := c.env.current()
	tok := &waitTok{p: p}
	c.waiters = append(c.waiters, tok)
	p.park()
	return tok.val
}

// WaitTimeout parks the calling process until signaled or until d elapses.
// It reports whether the wake-up was a signal, and the signal value if so.
func (c *Cond) WaitTimeout(d Duration) (any, bool) {
	p := c.env.current()
	tok := &waitTok{p: p}
	c.waiters = append(c.waiters, tok)
	c.env.After(d, func() {
		if !tok.fired {
			tok.fired = true
			c.env.push(c.env.now, tok.p, nil)
		}
	})
	p.park()
	return tok.val, tok.signaled
}

// pop removes and returns the first unfired waiter, or nil.
func (c *Cond) pop() *waitTok {
	for len(c.waiters) > 0 {
		tok := c.waiters[0]
		c.waiters = c.waiters[1:]
		if !tok.fired {
			return tok
		}
	}
	return nil
}

// Signal wakes the longest-waiting process, handing it val. It reports
// whether a waiter was woken. Safe from both process and callback context.
func (c *Cond) Signal(val any) bool {
	tok := c.pop()
	if tok == nil {
		return false
	}
	tok.fired = true
	tok.signaled = true
	tok.val = val
	c.env.push(c.env.now, tok.p, nil)
	return true
}

// Broadcast wakes every parked process.
func (c *Cond) Broadcast() {
	for {
		tok := c.pop()
		if tok == nil {
			return
		}
		tok.fired = true
		tok.signaled = true
		c.env.push(c.env.now, tok.p, nil)
	}
}
