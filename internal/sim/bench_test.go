package sim

import (
	"fmt"
	"testing"
)

// The benchmark suite measures the scheduler hot paths that dominate harness
// wall clock: timer push/pop (Sleep, After), process switching (park/resume
// rendezvous), same-instant callback batches, and mixed multi-process
// workloads shaped like the router/device loops. Run with -benchmem: the
// steady-state paths must report 0 allocs/op.

// BenchmarkSleepWake is the single-process timer path: every event resumes
// the process that is already running the dispatch loop (fused self-resume;
// no goroutine switch at all in the new core).
func BenchmarkSleepWake(b *testing.B) {
	env := New(1)
	env.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkAfterCallback is the pure callback path: same-instant-adjacent fn
// events dispatched in a tight loop without touching the run token.
func BenchmarkAfterCallback(b *testing.B) {
	env := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.After(Microsecond, tick)
		}
	}
	env.After(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
	if n != b.N {
		b.Fatalf("ran %d callbacks, want %d", n, b.N)
	}
}

// BenchmarkCondPingPong is the two-process switch path: every event hands
// the run token to the other goroutine (one channel rendezvous per switch in
// the new core, two in the old one).
func BenchmarkCondPingPong(b *testing.B) {
	env := New(1)
	c1, c2 := NewCond(env), NewCond(env)
	env.Go("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c1.Wait()
			c2.Signal(nil)
		}
	})
	env.Go("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c1.Signal(nil)
			c2.Wait()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkManyProcsStaggered is the harness-shaped workload: many processes
// with staggered timers, so the queue holds a steady population and almost
// every dispatch switches processes.
func BenchmarkManyProcsStaggered(b *testing.B) {
	for _, procs := range []int{16, 256} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			env := New(1)
			per := b.N / procs
			for i := 0; i < procs; i++ {
				i := i
				env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
					p.Sleep(Duration(i) * 37 * Nanosecond)
					for k := 0; k < per; k++ {
						p.Sleep(Duration(1+(i+k)%7) * Microsecond)
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			env.Run()
		})
	}
}

// BenchmarkSameInstantStorm schedules bursts of callbacks at one instant —
// the multicast completion / broadcast wake shape.
func BenchmarkSameInstantStorm(b *testing.B) {
	const burst = 64
	env := New(1)
	n := 0
	var arm func()
	arm = func() {
		for i := 0; i < burst; i++ {
			env.After(Microsecond, func() { n++ })
		}
		if n+burst < b.N {
			env.After(Microsecond, arm)
		}
	}
	env.After(Microsecond, arm)
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkFarTimers pushes timers beyond the wheel window so every event
// takes the overflow-heap path and migrates into the wheel as time advances.
func BenchmarkFarTimers(b *testing.B) {
	env := New(1)
	env.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(120 * Microsecond) // beyond the 16 us near-future window
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkResourceHandoff measures the contended FIFO resource path
// (simulated core scheduling): acquire, hold, release, direct handoff.
func BenchmarkResourceHandoff(b *testing.B) {
	env := New(1)
	r := NewResource(env, 1)
	const workers = 4
	per := b.N / workers
	for w := 0; w < workers; w++ {
		env.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < per; i++ {
				r.Acquire()
				p.Sleep(100 * Nanosecond)
				r.Release()
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkWaitTimeoutSignaled measures the timeout-armed wait where the
// signal always wins — the adaptive-poller shape. The timeout event is
// lazily cancelled and must not accumulate in the queue.
func BenchmarkWaitTimeoutSignaled(b *testing.B) {
	env := New(1)
	c := NewCond(env)
	env.Go("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.WaitTimeout(100 * Microsecond)
		}
	})
	env.Go("signaler", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
			c.Signal(nil)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}
