package sim

import (
	"fmt"
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := New(1)
	var woke Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	end := env.Run()
	if woke != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5us", woke)
	}
	if end != woke {
		t.Fatalf("end time %v != wake time %v", end, woke)
	}
}

func TestEventOrderingFIFOAtSameTime(t *testing.T) {
	env := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := New(1)
	var at Time
	env.After(3*Microsecond, func() { at = env.Now() })
	env.Run()
	if at != Time(3*Microsecond) {
		t.Fatalf("callback at %v", at)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	env := New(1)
	ticks := 0
	env.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			ticks++
		}
	})
	env.RunUntil(Time(10 * Microsecond))
	if ticks != 10 {
		t.Fatalf("got %d ticks, want 10", ticks)
	}
	if env.Now() != Time(10*Microsecond) {
		t.Fatalf("now=%v", env.Now())
	}
	env.Close()
}

func TestCondSignalWakesFIFO(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		env.Go(name, func(p *Proc) {
			c.Wait()
			order = append(order, name)
		})
	}
	env.Go("signaler", func(p *Proc) {
		p.Sleep(Microsecond)
		for i := 0; i < 3; i++ {
			c.Signal(nil)
		}
	})
	env.Run()
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("wake order %v", order)
	}
}

func TestCondSignalValue(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	var got any
	env.Go("waiter", func(p *Proc) { got = c.Wait() })
	env.Go("signaler", func(p *Proc) { c.Signal(42) })
	env.Run()
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	var signaled bool
	var at Time
	env.Go("waiter", func(p *Proc) {
		_, signaled = c.WaitTimeout(5 * Microsecond)
		at = p.Now()
	})
	env.Run()
	if signaled {
		t.Fatal("should have timed out")
	}
	if at != Time(5*Microsecond) {
		t.Fatalf("timed out at %v", at)
	}
	// Late Signal after timeout must not wake anyone or panic.
	if c.Signal(nil) {
		t.Fatal("signal found a stale waiter")
	}
}

func TestCondWaitTimeoutSignaledFirst(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	var signaled bool
	var at Time
	env.Go("waiter", func(p *Proc) {
		_, signaled = c.WaitTimeout(100 * Microsecond)
		at = p.Now()
	})
	env.Go("signaler", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		c.Signal(nil)
	})
	env.Run()
	if !signaled || at != Time(2*Microsecond) {
		t.Fatalf("signaled=%v at=%v", signaled, at)
	}
}

func TestCondBroadcast(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	woke := 0
	for i := 0; i < 5; i++ {
		env.Go("w", func(p *Proc) { c.Wait(); woke++ })
	}
	env.Go("b", func(p *Proc) { p.Sleep(1); c.Broadcast() })
	env.Run()
	if woke != 5 {
		t.Fatalf("woke %d", woke)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	env := New(1)
	r := NewResource(env, 1)
	var maxConc, conc int
	for i := 0; i < 4; i++ {
		env.Go("u", func(p *Proc) {
			r.Acquire()
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			p.Sleep(10 * Microsecond)
			conc--
			r.Release()
		})
	}
	end := env.Run()
	if maxConc != 1 {
		t.Fatalf("max concurrency %d", maxConc)
	}
	if end != Time(40*Microsecond) {
		t.Fatalf("serialized end time %v", end)
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	env := New(1)
	r := NewResource(env, 4)
	for i := 0; i < 8; i++ {
		env.Go("u", func(p *Proc) { r.Use(p, 10*Microsecond) })
	}
	if end := env.Run(); end != Time(20*Microsecond) {
		t.Fatalf("end %v, want 20us (two waves of four)", end)
	}
}

func TestResourceFIFOHandoff(t *testing.T) {
	env := New(1)
	r := NewResource(env, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("u", func(p *Proc) {
			r.Acquire()
			order = append(order, i)
			p.Sleep(Microsecond)
			r.Release()
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestCoreAccounting(t *testing.T) {
	env := New(1)
	cpu := NewCPU(env, 2)
	th0 := cpu.ThreadOn(0, "a")
	th1 := cpu.ThreadOn(1, "b")
	snap := cpu.Snapshot()
	env.Go("a", func(p *Proc) { th0.Exec(p, 30*Microsecond) })
	env.Go("b", func(p *Proc) { th1.Exec(p, 10*Microsecond) })
	env.RunUntil(Time(100 * Microsecond))
	u := cpu.Since(snap)
	if u.ByTag["a"] != 30*Microsecond || u.ByTag["b"] != 10*Microsecond {
		t.Fatalf("usage %v", u.ByTag)
	}
	if got := u.Cores(); got < 0.39 || got > 0.41 {
		t.Fatalf("avg cores %f, want 0.4", got)
	}
}

func TestCoreContentionSerializes(t *testing.T) {
	env := New(1)
	cpu := NewCPU(env, 1)
	core := cpu.Core(0)
	var end1, end2 Time
	env.Go("a", func(p *Proc) { core.Exec(p, "x", 10*Microsecond); end1 = p.Now() })
	env.Go("b", func(p *Proc) { core.Exec(p, "y", 10*Microsecond); end2 = p.Now() })
	env.Run()
	if end1 != Time(10*Microsecond) || end2 != Time(20*Microsecond) {
		t.Fatalf("ends %v %v", end1, end2)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		env := New(42)
		c := NewCond(env)
		var log []Time
		for i := 0; i < 20; i++ {
			env.Go("w", func(p *Proc) {
				d := Duration(env.Rand().Intn(1000)) * Nanosecond
				p.Sleep(d)
				log = append(log, p.Now())
				if env.Rand().Intn(2) == 0 {
					c.Signal(nil)
				} else {
					c.WaitTimeout(Duration(env.Rand().Intn(500)))
				}
			})
		}
		env.Run()
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic:\n%v\n%v", a, b)
	}
}

func TestCloseReleasesParkedProcesses(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) { c.Wait() })
	}
	env.Go("s", func(p *Proc) { p.Sleep(Second) })
	env.RunUntil(Time(Microsecond))
	if env.Live() != 4 {
		t.Fatalf("live %d", env.Live())
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("live after close %d", env.Live())
	}
}

func TestCloseNeverStartedProcess(t *testing.T) {
	env := New(1)
	env.Go("never", func(p *Proc) { t.Error("body must not run") })
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("live %d", env.Live())
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	env := New(1)
	env.Go("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	env.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	env := New(1)
	env.Go("p", func(p *Proc) { p.Sleep(10) })
	env.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	env.At(Time(5), func() {})
}

func TestNestedSpawn(t *testing.T) {
	env := New(1)
	depth := 0
	var spawn func(p *Proc)
	spawn = func(p *Proc) {
		depth++
		if depth < 5 {
			p.Env().Go("child", spawn)
		}
	}
	env.Go("root", spawn)
	env.Run()
	if depth != 5 {
		t.Fatalf("depth %d", depth)
	}
}

func TestYieldInterleaving(t *testing.T) {
	env := New(1)
	var log []string
	env.Go("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	env.Go("b", func(p *Proc) {
		log = append(log, "b1")
	})
	env.Run()
	if fmt.Sprint(log) != "[a1 b1 a2]" {
		t.Fatalf("log %v", log)
	}
}
