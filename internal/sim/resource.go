package sim

// Resource is a counted resource with FIFO admission, in the style of a
// semaphore. It models anything with finite concurrent capacity: CPU cores,
// device channels, a serialized bus.
type Resource struct {
	env   *Env
	cap   int
	inUse int
	q     []*waitTok
	head  int // index of the first live waiter; storage before it is consumed
}

// NewResource returns a resource with the given capacity.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, cap: capacity}
}

// Cap returns the capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int {
	n := 0
	for _, t := range r.q[r.head:] {
		if !t.fired {
			n++
		}
	}
	return n
}

// TryAcquire acquires a unit without blocking, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && r.head == len(r.q) {
		r.inUse++
		return true
	}
	return false
}

// Acquire blocks the calling process until a unit is available. Units are
// granted in FIFO order; releases hand ownership directly to the head
// waiter, so late arrivals cannot barge.
func (r *Resource) Acquire() {
	if r.TryAcquire() {
		return
	}
	p := r.env.current()
	tok := r.env.getTok(p)
	r.q = append(r.q, tok)
	p.park()
	// Ownership was transferred by Release; inUse already accounts for us,
	// and Release popped the token, so it can be recycled.
	r.env.putTok(tok)
}

// Release returns a unit, waking the head waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	for r.head < len(r.q) {
		tok := r.q[r.head]
		r.q[r.head] = nil
		r.head++
		if tok.fired {
			continue
		}
		if r.head == len(r.q) {
			r.q = r.q[:0]
			r.head = 0
		}
		tok.fired = true
		tok.signaled = true
		// Hand the unit over without decrementing inUse.
		r.env.push(r.env.now, tok.p, nil)
		return
	}
	r.q = r.q[:0]
	r.head = 0
	r.inUse--
}

// Use acquires a unit, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire()
	p.Sleep(d)
	r.Release()
}
