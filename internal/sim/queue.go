package sim

import (
	"math/bits"
	"slices"
)

// The event queue is the scheduler's hot data structure. The seed
// implementation was a container/heap of *event: one heap allocation per
// scheduled event, interface boxing on every push/pop, and O(log n)
// comparisons per operation. This version stores events by value in three
// tiers, ordered strictly by (t, seq) exactly like the old heap:
//
//   - cur: the same-instant batch — every queued event at exactly the
//     current virtual time, in seq (push) order. Dispatch is a pointer bump.
//   - wheel: near-future buckets of 64 ns covering a ~131 us window from
//     the window base — wide enough that device-latency timers (tens of
//     microseconds) file straight into a bucket instead of staging through
//     the overflow heap. A bucket is sorted once, when it becomes the
//     active bucket ("slot"); pushes that land below the active bucket's
//     end are merged into the slot by binary insertion.
//   - over: a value-based 4-ary min-heap for everything beyond the window.
//     When the wheel drains, the window is rebased at the heap's minimum and
//     the near span migrates into the buckets (each event migrates at most
//     once).
//
// All backing arrays are reused across batches, so steady-state push/pop
// performs no allocations. Cancelled timers and wakes for finished
// processes are deleted lazily: they are counted in dead and skipped at
// dispatch, and the tiers are compacted in place when dead events exceed
// half the queue.
const (
	slotBits  = 6                           // 64 ns per near-future bucket
	slotGrain = Time(1) << slotBits         // bucket width
	wheelBits = 11                          // 2048 buckets
	wheelSize = 1 << wheelBits              // bucket count
	wheelSpan = Time(wheelSize) << slotBits // ~131 us near-future window
)

type event struct {
	t   Time
	seq uint64
	// Exactly one behavior applies: run fn in scheduler context, fire tok
	// (a cancellable timeout), or wake the parked process p. Timer events
	// carry both tok and p (= tok.p).
	p   *Proc
	fn  func()
	tok *waitTok
}

// less is the scheduler's total order: time, then push sequence.
func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

type queue struct {
	cur      []event // events at exactly the current instant, dispatch order
	curHead  int
	slot     []event // sorted (t, seq) events below slotEnd (active bucket)
	slotHead int
	slotEnd  Time // exclusive upper bound of the active slot's coverage

	winBase   Time // window start, multiple of slotGrain
	bucketIdx int  // next bucket index to scan (buckets below are empty)
	wheelN    int  // events currently held in buckets
	buckets   [wheelSize][]event
	occ       [wheelSize / 64]uint64 // bucket occupancy bitmap

	over overflowHeap // t >= winBase+wheelSpan

	size int // total queued events, including dead ones
	dead int // lazily-cancelled events still occupying a tier
}

// push files ev into the tier matching its timestamp. now is the current
// virtual time; ev.t >= now has already been checked by the caller.
func (q *queue) push(now Time, ev event) {
	q.size++
	switch {
	case ev.t == now:
		q.cur = append(q.cur, ev)
	case ev.t < q.slotEnd:
		q.slotInsert(ev)
	case ev.t < q.winBase+wheelSpan:
		i := int((ev.t - q.winBase) >> slotBits)
		if len(q.buckets[i]) == 0 {
			q.occ[i>>6] |= 1 << uint(i&63)
		}
		q.buckets[i] = append(q.buckets[i], ev)
		q.wheelN++
	default:
		q.over.push(ev)
	}
}

// slotInsert merges ev into the sorted active slot by binary insertion.
// Only the unconsumed tail (from slotHead) is searched; ev sorts after
// everything already dispatched because its time is in the future.
func (q *queue) slotInsert(ev event) {
	s := q.slot
	lo, hi := q.slotHead, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(s[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.slot = append(q.slot, event{})
	copy(q.slot[lo+1:], q.slot[lo:])
	q.slot[lo] = ev
}

// next consumes and returns the earliest event if its time is <= limit.
func (q *queue) next(limit Time) (event, bool) {
	for {
		if q.curHead < len(q.cur) {
			ev := q.cur[q.curHead]
			if ev.t > limit {
				return event{}, false
			}
			q.cur[q.curHead] = event{} // release fn/tok references
			q.curHead++
			if q.curHead == len(q.cur) {
				// Reset eagerly so a same-instant push/pop chain (ping-pong
				// at one timestamp) reuses the batch buffer instead of
				// growing it without bound.
				q.cur = q.cur[:0]
				q.curHead = 0
			}
			q.size--
			return ev, true
		}
		q.cur = q.cur[:0]
		q.curHead = 0
		if !q.promote(limit) {
			return event{}, false
		}
	}
}

// promote refills cur with the next instant's batch: the maximal run of
// equal-time events at the queue's minimum, in seq order. It reports false
// when the queue is empty or the next event lies beyond limit.
func (q *queue) promote(limit Time) bool {
	for q.slotHead >= len(q.slot) {
		q.slot = q.slot[:0]
		q.slotHead = 0
		switch {
		case q.wheelN > 0:
			i := q.nextOccupied(q.bucketIdx)
			if i < 0 {
				panic("sim: wheel occupancy corrupt")
			}
			b := q.buckets[i]
			q.slot = append(q.slot, b...)
			for j := range b {
				b[j] = event{}
			}
			q.buckets[i] = b[:0]
			q.occ[i>>6] &^= 1 << uint(i&63)
			q.wheelN -= len(q.slot)
			q.bucketIdx = i + 1
			q.slotEnd = q.winBase + Time(i+1)<<slotBits
			sortEvents(q.slot)
		case q.over.len() > 0:
			// Rebase the window at the overflow minimum and migrate the
			// near span into the buckets.
			q.winBase = q.over.min().t &^ (slotGrain - 1)
			q.bucketIdx = 0
			q.slotEnd = q.winBase
			end := q.winBase + wheelSpan
			for q.over.len() > 0 && q.over.min().t < end {
				ev := q.over.pop()
				i := int((ev.t - q.winBase) >> slotBits)
				if len(q.buckets[i]) == 0 {
					q.occ[i>>6] |= 1 << uint(i&63)
				}
				q.buckets[i] = append(q.buckets[i], ev)
				q.wheelN++
			}
		default:
			return false
		}
	}
	t := q.slot[q.slotHead].t
	if t > limit {
		return false
	}
	for q.slotHead < len(q.slot) && q.slot[q.slotHead].t == t {
		q.cur = append(q.cur, q.slot[q.slotHead])
		q.slot[q.slotHead] = event{}
		q.slotHead++
	}
	return true
}

// nextOccupied returns the first occupied bucket index at or after from,
// or -1.
func (q *queue) nextOccupied(from int) int {
	if from >= wheelSize {
		return -1
	}
	w := from >> 6
	b := q.occ[w] &^ (1<<uint(from&63) - 1)
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w++
		if w >= len(q.occ) {
			return -1
		}
		b = q.occ[w]
	}
}

func sortEvents(s []event) {
	slices.SortFunc(s, func(a, b event) int {
		if a.t != b.t {
			if a.t < b.t {
				return -1
			}
			return 1
		}
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
}

// deadEvent reports whether ev was lazily cancelled: a timeout whose token
// already fired, or a wake for a process that has finished.
func deadEvent(ev event) bool {
	if ev.tok != nil && ev.tok.fired {
		return true
	}
	return ev.fn == nil && ev.tok == nil && ev.p != nil && ev.p.done
}

// compact removes lazily-deleted events from every tier in place,
// preserving order. Called when dead events exceed half the queue.
func (q *queue) compact() {
	filter := func(s []event, head int) []event {
		w := head
		for r := head; r < len(s); r++ {
			if !deadEvent(s[r]) {
				s[w] = s[r]
				w++
			}
		}
		for z := w; z < len(s); z++ {
			s[z] = event{}
		}
		return s[:w]
	}
	q.cur = filter(q.cur, q.curHead)
	q.slot = filter(q.slot, q.slotHead)
	q.wheelN = 0
	for i := range q.buckets {
		if len(q.buckets[i]) == 0 {
			continue
		}
		q.buckets[i] = filter(q.buckets[i], 0)
		if len(q.buckets[i]) == 0 {
			q.occ[i>>6] &^= 1 << uint(i&63)
		}
		q.wheelN += len(q.buckets[i])
	}
	q.over = overflowHeap(filter([]event(q.over), 0))
	q.over.init()
	q.size = (len(q.cur) - q.curHead) + (len(q.slot) - q.slotHead) + q.wheelN + q.over.len()
	q.dead = 0
}

// clear drops every queued event (environment shutdown).
func (q *queue) clear() {
	*q = queue{}
}

// overflowHeap is a value-based 4-ary min-heap ordered by (t, seq). Four
// children per node halve the tree depth of a binary heap and keep sift
// loops within one or two cache lines of events.
type overflowHeap []event

func (h overflowHeap) len() int   { return len(h) }
func (h overflowHeap) min() event { return h[0] }

func (h *overflowHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *overflowHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	*h = s
	s.siftDown(0)
	return top
}

func (h overflowHeap) siftDown(i int) {
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if less(h[k], h[m]) {
				m = k
			}
		}
		if !less(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// init re-establishes the heap property after bulk edits (compaction).
func (h overflowHeap) init() {
	for i := (len(h) - 2) >> 2; i >= 0; i-- {
		h.siftDown(i)
	}
}
