package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the seed implementation's event queue: a container/heap ordered
// by (t, seq). The property tests drive it in lockstep with the tiered queue
// and require identical dispatch order, including RunUntil limit boundaries.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

func (h *refHeap) next(limit Time) (event, bool) {
	if len(*h) == 0 || (*h)[0].t > limit {
		return event{}, false
	}
	return heap.Pop(h).(event), true
}

// popBoth pops one event from both queues under the same limit and fails the
// test on any divergence. It reports whether an event was produced.
func popBoth(t *testing.T, q *queue, ref *refHeap, now *Time, limit Time) bool {
	t.Helper()
	got, okGot := q.next(limit)
	want, okWant := ref.next(limit)
	if okGot != okWant {
		t.Fatalf("availability diverged at limit %d: queue=%v ref=%v", limit, okGot, okWant)
	}
	if !okGot {
		return false
	}
	if got.t != want.t || got.seq != want.seq {
		t.Fatalf("dispatch order diverged: queue=(t=%d seq=%d) ref=(t=%d seq=%d)",
			got.t, got.seq, want.t, want.seq)
	}
	if got.t < *now {
		t.Fatalf("time went backwards: %d -> %d", *now, got.t)
	}
	*now = got.t
	return true
}

// TestQueueMatchesHeapRandom drives random interleaved pushes and pops
// through both implementations. Timestamps are drawn from mixed scales so
// events land in every tier: the same-instant batch, the active slot, the
// wheel buckets, and the overflow heap.
func TestQueueMatchesHeapRandom(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var q queue
		var ref refHeap
		var now Time
		var seq uint64
		push := func(dt Time) {
			ev := event{t: now + dt, seq: seq}
			seq++
			q.push(now, ev)
			heap.Push(&ref, ev)
		}
		// Offsets spanning same-instant (0), slot/wheel range, and far
		// overflow; weighted toward the near tiers where ordering is subtle.
		randDT := func() Time {
			switch rng.Intn(10) {
			case 0, 1, 2:
				return 0
			case 3, 4, 5:
				return Time(rng.Intn(64)) // within one bucket grain
			case 6, 7:
				return Time(rng.Intn(int(wheelSpan)))
			case 8:
				return wheelSpan + Time(rng.Intn(1<<20))
			default:
				return Time(rng.Intn(1 << 40))
			}
		}
		for step := 0; step < 4000; step++ {
			if rng.Intn(3) > 0 || q.size == 0 {
				push(randDT())
			} else {
				popBoth(t, &q, &ref, &now, maxTime)
			}
		}
		for popBoth(t, &q, &ref, &now, maxTime) {
		}
		if q.size != 0 || len(ref) != 0 {
			t.Fatalf("trial %d: residual events queue=%d ref=%d", trial, q.size, len(ref))
		}
	}
}

// TestQueueMatchesHeapSameInstantStorm floods a single instant with bursts,
// interleaving pushes at the current time with drains — the pattern produced
// by Broadcast and zero-delay handoff chains. FIFO (seq) order within the
// instant must match the heap exactly.
func TestQueueMatchesHeapSameInstantStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q queue
	var ref refHeap
	var now Time
	var seq uint64
	for round := 0; round < 300; round++ {
		burst := 1 + rng.Intn(64)
		for i := 0; i < burst; i++ {
			dt := Time(0)
			if rng.Intn(4) == 0 {
				dt = Time(1 + rng.Intn(128))
			}
			ev := event{t: now + dt, seq: seq}
			seq++
			q.push(now, ev)
			heap.Push(&ref, ev)
		}
		drains := rng.Intn(burst + 1)
		for i := 0; i < drains; i++ {
			if !popBoth(t, &q, &ref, &now, maxTime) {
				break
			}
		}
	}
	for popBoth(t, &q, &ref, &now, maxTime) {
	}
}

// TestQueueMatchesHeapLimitBoundaries replays RunUntil semantics: drain up
// to a limit, verify both queues refuse events beyond it, then advance the
// limit and continue. Limits are chosen to land exactly on, just before,
// and just after queued timestamps.
func TestQueueMatchesHeapLimitBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var q queue
	var ref refHeap
	var now Time
	var seq uint64
	var stamps []Time
	for i := 0; i < 500; i++ {
		dt := Time(rng.Intn(int(wheelSpan) * 2))
		ev := event{t: dt, seq: seq}
		seq++
		q.push(0, ev)
		heap.Push(&ref, ev)
		stamps = append(stamps, dt)
	}
	limit := Time(0)
	for i := 0; q.size > 0; i++ {
		st := stamps[rng.Intn(len(stamps))]
		switch i % 3 {
		case 0:
			limit = st
		case 1:
			limit = st + 1
		default:
			if st > 0 {
				limit = st - 1
			}
		}
		if limit < now {
			limit = now
		}
		for popBoth(t, &q, &ref, &now, limit) {
		}
		// Both must agree that nothing at or below the limit remains.
		if _, ok := ref.next(limit); ok {
			t.Fatal("reference still had an admissible event after drain")
		}
		if i > 10000 {
			limit = maxTime
		}
	}
}

// TestQueueCompaction checks the lazy-deletion accounting: cancelled
// timeouts pile up as dead events and a compaction sweep reclaims them once
// they exceed half the queue.
func TestQueueCompaction(t *testing.T) {
	env := New(1)
	c := NewCond(env)
	const waiters = 300
	done := 0
	env.Go("signaler", func(p *Proc) {
		for i := 0; i < waiters; i++ {
			env.Go("w", func(p *Proc) {
				// Long timeout that is always beaten by the signal: the
				// queued timer event dies lazily.
				if _, ok := c.WaitTimeout(Second); !ok {
					t.Error("timeout fired unexpectedly")
				}
				done++
			})
		}
		p.Sleep(Microsecond)
		for i := 0; i < waiters; i++ {
			c.Signal(nil)
			p.Sleep(Nanosecond)
		}
	})
	env.Go("watch", func(p *Proc) {
		for i := 0; i < waiters; i++ {
			p.Sleep(Microsecond)
			if d, n := env.QueueDead(), env.QueueLen(); d > n/2+compactMinDead {
				t.Errorf("dead events %d exceed half of queue %d without compaction", d, n)
			}
		}
	})
	env.Run()
	if done != waiters {
		t.Fatalf("only %d/%d waiters signaled", done, waiters)
	}
	if env.QueueDead() != 0 || env.QueueLen() != 0 {
		t.Fatalf("residual events: len=%d dead=%d", env.QueueLen(), env.QueueDead())
	}
}
