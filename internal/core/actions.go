// Package core implements NVMetro itself: the virtual NVMe controller
// exposed to each VM (VSQ/VCQ queue shadowing), the I/O router with its
// routing table and iterative routing engine, eBPF classifier invocation
// with direct mediation, the three I/O paths (fast, kernel, notify), and
// the shared, adaptively-parked router worker threads.
package core

import (
	"encoding/binary"

	"nvmetro/internal/ebpf"
)

// Classifier hook points: the stages of a request's lifecycle at which the
// I/O classifier is invoked. HookVSQ fires when a new request arrives from
// the guest; the CQ hooks fire when a previously-routed hop completes, if
// the classifier installed them.
const (
	HookVSQ = 0 // new request from the VM
	HookHCQ = 1 // fast-path (hardware) completion
	HookNCQ = 2 // notify-path (UIF) completion
	HookKCQ = 3 // kernel-path completion
)

// Classifier context layout. The classifier receives a pointer to this
// window in r1; the command block is writable ("direct mediation"), and two
// scratch quadwords persist across hook invocations of the same request.
const (
	CtxOffHook     = 0  // u32: current hook
	CtxOffError    = 4  // u32: NVMe status of the completed hop (CQ hooks)
	CtxOffVMID     = 8  // u32: VM identifier
	CtxOffQID      = 12 // u32: virtual queue ID
	CtxOffScratch0 = 16 // u64: request-scoped scratch
	CtxOffScratch1 = 24 // u64: request-scoped scratch
	CtxOffCmd      = 32 // 64 bytes: the NVMe command (writable)
	CtxSize        = 96
)

// Classifier return value: the low 16 bits carry an NVMe status (used with
// ActComplete), the high bits are routing action flags.
const (
	// Routing targets ("send to queue").
	ActSendHQ = 1 << 16 // fast path: underlying device queues
	ActSendNQ = 1 << 17 // notify path: userspace I/O function
	ActSendKQ = 1 << 18 // kernel path: host block layer

	// Hook installation: invoke the classifier again when the hop completes.
	ActHookHCQ = 1 << 19
	ActHookNCQ = 1 << 20
	ActHookKCQ = 1 << 21

	// Automatic completion: finish the request to the VM when the hop
	// completes (when several are set, the request completes after all
	// such hops finish — synchronous multicast, e.g. mirrored writes).
	ActWillCompleteHQ = 1 << 22
	ActWillCompleteNQ = 1 << 23
	ActWillCompleteKQ = 1 << 24

	// Immediate completion with the status in the low 16 bits.
	ActComplete = 1 << 25

	// Documentary flag from the paper's listings: a hook implies waiting,
	// so the router accepts and ignores it.
	ActWaitForHook = 1 << 26

	// ActStatusMask extracts the NVMe status from an action word.
	ActStatusMask = 0xffff
)

// DefaultClassifier returns the "dummy" classifier from the paper's basic
// evaluation: every request goes straight to the fast path and completes
// when the device finishes.
func DefaultClassifier() *ebpf.Program {
	return ebpf.NewBuilder().
		MovImm64(ebpf.R0, ActSendHQ|ActWillCompleteHQ).
		Exit().
		MustProgram("default-fastpath")
}

// NewVerifier returns the verifier configuration a router uses to admit
// classifiers.
func NewVerifier() *ebpf.Verifier {
	return &ebpf.Verifier{CtxSize: CtxSize}
}

// ctxBuf is the reusable classification context buffer.
type ctxBuf [CtxSize]byte

func (c *ctxBuf) set(hook, errStatus, vmID, qid uint32, scratch0, scratch1 uint64, cmd []byte) {
	binary.LittleEndian.PutUint32(c[CtxOffHook:], hook)
	binary.LittleEndian.PutUint32(c[CtxOffError:], errStatus)
	binary.LittleEndian.PutUint32(c[CtxOffVMID:], vmID)
	binary.LittleEndian.PutUint32(c[CtxOffQID:], qid)
	binary.LittleEndian.PutUint64(c[CtxOffScratch0:], scratch0)
	binary.LittleEndian.PutUint64(c[CtxOffScratch1:], scratch1)
	copy(c[CtxOffCmd:], cmd)
}

func (c *ctxBuf) scratch() (uint64, uint64) {
	return binary.LittleEndian.Uint64(c[CtxOffScratch0:]), binary.LittleEndian.Uint64(c[CtxOffScratch1:])
}
