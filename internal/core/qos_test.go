package core_test

import (
	"fmt"
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

// TestQoSHelperRangeMatchesClasses pins the ebpf helper's class range to
// qos.NumClasses: tagging the last class succeeds, tagging one past it is
// rejected. If either constant drifts, this fails.
func TestQoSHelperRangeMatchesClasses(t *testing.T) {
	run := func(class int32) uint64 {
		p := ebpf.NewBuilder().
			MovImm(ebpf.R1, class).
			Call(ebpf.HelperQoSSetClass).
			Exit().
			MustProgram("range")
		ret, err := ebpf.NewVM(nil).Run(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ret
	}
	if run(qos.NumClasses-1) != 0 {
		t.Fatal("last class rejected: helper range below qos.NumClasses")
	}
	if run(qos.NumClasses) != ^uint64(0) {
		t.Fatal("class past the end accepted: helper range above qos.NumClasses")
	}
}

// pump spawns qd submitter processes that issue count sequential 512 B
// writes each, and returns a wait function for the test process.
func pump(r *rig, v *vm.VM, disk *vm.NVMeDisk, qd, count int) func() {
	done := 0
	cond := sim.NewCond(r.env)
	for i := 0; i < qd; i++ {
		i := i
		r.env.Go(fmt.Sprintf("pump-%d-%d", v.ID, i), func(p *sim.Proc) {
			buf := make([]byte, 512)
			for n := 0; n < count; n++ {
				if st := doIO(p, v, disk, vm.OpWrite, uint64((i*count+n)%64), buf); !st.OK() {
					panic(fmt.Sprintf("pump io failed: %v", st))
				}
			}
			done++
			cond.Signal(nil)
		})
	}
	return func() {
		for done < qd {
			cond.Wait()
		}
	}
}

// TestQoSThrottleBackpressure checks token-bucket throttling end to end:
// a rate-limited tenant's commands are paced without a single drop, and
// the worker keeps polling (no park deadlock) while commands sit
// throttled in the shadowed SQ.
func TestQoSThrottleBackpressure(t *testing.T) {
	r := newRig(1)
	r.router.EnableQoS(qos.Config{})
	v, vc, disk := r.addVM(0, device.WholeNamespace(r.dev, 1))
	vc.SetQoS(qos.TenantConfig{IOPS: 5000, BurstOps: 1})

	const qd, count = 4, 50
	var elapsed sim.Duration
	r.run(t, func(p *sim.Proc) {
		start := p.Now()
		pump(r, v, disk, qd, count)()
		elapsed = p.Now().Sub(start)
	})

	ten := vc.Tenant()
	if ten.Admitted != qd*count {
		t.Fatalf("admitted %d, want %d (throttling must never drop)", ten.Admitted, qd*count)
	}
	if ten.Throttled == 0 {
		t.Fatal("bucket never throttled")
	}
	// 200 ops at 5000 IOPS need ≥ ~40 ms; without throttling this rig
	// finishes in a few ms.
	if min := 30 * sim.Millisecond; elapsed < min {
		t.Fatalf("elapsed %v, want >= %v (rate limit not enforced)", elapsed, min)
	}
	if r.router.QoS().Snapshot(r.env.Now())[0].P99 == 0 {
		t.Fatal("no latency recorded for SLO tracking")
	}
}

// TestQoSClassTagging checks the classifier→arbiter class plumbing on
// both execution tiers: a class-tagging classifier maps writes to the
// bulk class via the policy map, and the tenant's per-class counters
// reflect it.
func TestQoSClassTagging(t *testing.T) {
	r := newRig(1)
	r.router.EnableQoS(qos.Config{})
	v, vc, disk := r.addVM(0, device.WholeNamespace(r.dev, 1))

	prog, _, classMap := storfn.QoSClassClassifier(vc.Partition())
	core.SetOpcodeClass(classMap, nvme.OpWrite, qos.ClassBulk)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}

	io := func(p *sim.Proc, op vm.Op) {
		buf := make([]byte, 512)
		if st := doIO(p, v, disk, op, 3, buf); !st.OK() {
			t.Fatalf("%v failed: %v", op, st)
		}
	}
	r.run(t, func(p *sim.Proc) {
		// Compiled tier.
		io(p, vm.OpWrite)
		io(p, vm.OpRead)
		// Interpreter tier must tag identically.
		vc.SetInterpreted(true)
		io(p, vm.OpWrite)
		io(p, vm.OpRead)
		// Retune the policy live through the map: writes become scavenger.
		core.SetOpcodeClass(classMap, nvme.OpWrite, qos.ClassScavenger)
		io(p, vm.OpWrite)
	})

	ten := vc.Tenant()
	if got := ten.PerClass[qos.ClassBulk]; got != 2 {
		t.Fatalf("bulk count = %d, want 2 (one per tier)", got)
	}
	if got := ten.PerClass[qos.ClassDefault]; got != 2 {
		t.Fatalf("default count = %d, want 2 (reads untagged)", got)
	}
	if got := ten.PerClass[qos.ClassScavenger]; got != 1 {
		t.Fatalf("scavenger count = %d, want 1 (live retune)", got)
	}
}

// TestQoSWeightedShareUnderContention drives two tenants with unequal
// weights through one shared worker and a deliberately slow classifier
// cost, making the router the bottleneck; the admitted share must track
// the 3:1 weights.
func TestQoSWeightedShareUnderContention(t *testing.T) {
	r := newRig(1)
	r.router.EnableQoS(qos.Config{})
	parts := device.Carve(r.dev, 1, 2)
	v1, vc1, d1 := r.addVM(1, parts[0])
	v2, vc2, d2 := r.addVM(2, parts[1])
	p1, _ := storfn.PartitionClassifier(parts[0])
	p2, _ := storfn.PartitionClassifier(parts[1])
	if err := vc1.LoadClassifier(p1); err != nil {
		t.Fatal(err)
	}
	if err := vc2.LoadClassifier(p2); err != nil {
		t.Fatal(err)
	}
	vc1.SetQoS(qos.TenantConfig{Weight: 3})
	vc2.SetQoS(qos.TenantConfig{Weight: 1})

	const qd, count = 8, 100
	r.run(t, func(p *sim.Proc) {
		w1 := pump(r, v1, d1, qd, count)
		w2 := pump(r, v2, d2, qd, count)
		w1()
		w2()
	})
	// Both finish everything; fairness shows in service interleaving, so
	// compare virtual finish tags instead: equal total service means the
	// weight-1 tenant's virtual time advanced ~3x further.
	t1, t2 := vc1.Tenant(), vc2.Tenant()
	if t1.Admitted != qd*count || t2.Admitted != qd*count {
		t.Fatalf("admitted %d/%d, want %d each", t1.Admitted, t2.Admitted, qd*count)
	}
	snaps := r.router.QoS().Snapshot(r.env.Now())
	if snaps[0].Weight != 3 || snaps[1].Weight != 1 {
		t.Fatalf("snapshot weights %v/%v", snaps[0].Weight, snaps[1].Weight)
	}
}
