package core

import (
	"encoding/binary"

	"nvmetro/internal/nvme"
)

// This file implements the virtual controller's admin command surface.
// The paper's compatibility criterion is that "all VMs supporting NVMe work
// with NVMetro by default without guest modifications": a real guest driver
// probes the controller with admin Identify / Get Features / Set Features
// before creating I/O queues. The router services these locally — admin
// commands never reach the physical device.

// Feature IDs (subset).
const (
	FeatNumQueues  uint32 = 0x07
	FeatIRQCoalesc uint32 = 0x08
)

// maxQueuesAdvertised is what Set Features (Number of Queues) grants.
const maxQueuesAdvertised = 64

// HandleAdmin services one admin command against guest memory, returning
// the completion status and result dword. Identify writes its 4 KiB page to
// the command's PRP1.
func (vc *Controller) HandleAdmin(cmd *nvme.Command, mem nvme.Memory) (nvme.Status, uint32) {
	switch cmd.Opcode() {
	case nvme.AdminIdentify:
		return vc.adminIdentify(cmd, mem)
	case nvme.AdminGetFeature:
		return vc.adminGetFeatures(cmd)
	case nvme.AdminSetFeature:
		return vc.adminSetFeatures(cmd)
	case nvme.AdminCreateSQ, nvme.AdminCreateCQ, nvme.AdminDeleteSQ, nvme.AdminDeleteCQ:
		// Queue lifecycle goes through the in-memory CreateQP interface in
		// this implementation; a guest issuing raw queue-management
		// commands gets a clean error rather than silence.
		return nvme.SCInvalidField, 0
	case nvme.AdminAbort:
		// No speculative abort support: report "not found" per spec
		// semantics (bit 0 of DW0 set).
		return nvme.SCSuccess, 1
	case nvme.AdminGetLogPage:
		// Serve an empty log page of the requested size.
		nbytes := (cmd.CDW(10)>>16 + 1) * 4
		if nbytes > nvme.IdentifyPageSize {
			nbytes = nvme.IdentifyPageSize
		}
		if err := mem.WriteAt(make([]byte, nbytes), cmd.PRP1()); err != nil {
			return nvme.SCDataXferError, 0
		}
		return nvme.SCSuccess, 0
	}
	return nvme.SCInvalidOpcode, 0
}

func (vc *Controller) adminIdentify(cmd *nvme.Command, mem nvme.Memory) (nvme.Status, uint32) {
	cns := cmd.CDW(10) & 0xff
	var page []byte
	switch cns {
	case nvme.CNSController:
		page = vc.IdentifyController().Marshal()
	case nvme.CNSNamespace:
		if cmd.NSID() != 1 {
			return nvme.SCInvalidNS, 0
		}
		page = vc.part.Info().Marshal()
	case nvme.CNSActiveNS:
		page = make([]byte, nvme.IdentifyPageSize)
		binary.LittleEndian.PutUint32(page[0:4], 1) // single active NSID
	default:
		return nvme.SCInvalidField, 0
	}
	if err := mem.WriteAt(page, cmd.PRP1()); err != nil {
		return nvme.SCDataXferError, 0
	}
	return nvme.SCSuccess, 0
}

func (vc *Controller) adminGetFeatures(cmd *nvme.Command) (nvme.Status, uint32) {
	switch cmd.CDW(10) & 0xff {
	case FeatNumQueues:
		n := uint32(maxQueuesAdvertised - 1)
		return nvme.SCSuccess, n<<16 | n // NCQA | NSQA (0-based)
	case FeatIRQCoalesc:
		return nvme.SCSuccess, 0
	}
	return nvme.SCInvalidField, 0
}

func (vc *Controller) adminSetFeatures(cmd *nvme.Command) (nvme.Status, uint32) {
	switch cmd.CDW(10) & 0xff {
	case FeatNumQueues:
		req := cmd.CDW(11)
		nsq := req & 0xffff
		ncq := req >> 16
		if nsq > maxQueuesAdvertised-1 {
			nsq = maxQueuesAdvertised - 1
		}
		if ncq > maxQueuesAdvertised-1 {
			ncq = maxQueuesAdvertised - 1
		}
		return nvme.SCSuccess, ncq<<16 | nsq
	case FeatIRQCoalesc:
		return nvme.SCSuccess, 0
	}
	return nvme.SCInvalidField, 0
}
