package core

import (
	"fmt"

	"nvmetro/internal/sim"

	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/vm"
)

// target indexes the three I/O paths.
type target int

const (
	targetHQ target = iota
	targetNQ
	targetKQ
	numTargets
)

func hookFor(t target) uint32 {
	switch t {
	case targetHQ:
		return HookHCQ
	case targetNQ:
		return HookNCQ
	default:
		return HookKCQ
	}
}

// disposition records what happens when a routed hop completes.
type disposition uint8

const (
	dispNone     disposition = iota // fire and forget
	dispHook                        // invoke the classifier again
	dispComplete                    // counts toward guest completion
)

// request is one routing-table entry: the state of a guest command as it
// traverses hops ("iterative routing").
type request struct {
	vq     *vqState
	gcid   uint16
	cmd    nvme.Command
	s0, s1 uint64 // classifier scratch, persists across hooks

	t0      sim.Time // admission time, for QoS latency tracking
	qosBase float64  // base service units charged at admission

	pending   int         // outstanding hops of any disposition
	waiters   int         // outstanding dispComplete hops
	status    nvme.Status // first error seen on any hop
	completed bool        // guest completion posted
	stamped   bool        // guard-stamped write, tracked in activeWrites
}

// hop is one dispatched leg of a request. Dispositions are tracked per hop
// (not per target): a classifier may legally send to the same target in
// overlapping rounds, and each leg's completion must consume exactly its
// own disposition.
type hop struct {
	req  *request
	disp disposition
}

// vqState is one virtual queue pair and its shadowing host queue pair.
type vqState struct {
	vc         *Controller
	qid        uint16
	vsq        *nvme.SQ
	vcq        *nvme.CQ
	hqp        *nvme.QueuePair
	irq        func()
	htags      []hop
	htagSeq    []uint64 // dispatch epoch per tag, guards stale deadline entries
	freeHTags  []uint16
	pendingVCQ []nvme.Completion

	dispatchSeq uint64
	deadlines   []hqDeadline // FIFO: uniform deadlines, submission order
	lostHTags   []lostTag    // FIFO: quarantined tags awaiting completion
}

// hqDeadline is one armed fast-path deadline.
type hqDeadline struct {
	cid uint16
	seq uint64
	at  sim.Time
}

// lostTag is one quarantined host tag.
type lostTag struct {
	cid   uint16
	since sim.Time
}

// releaseLost frees cid if it is quarantined (its late completion arrived).
func (vq *vqState) releaseLost(cid uint16) {
	for i, lt := range vq.lostHTags {
		if lt.cid == cid {
			vq.lostHTags = append(vq.lostHTags[:i], vq.lostHTags[i+1:]...)
			vq.freeHTags = append(vq.freeHTags, cid)
			return
		}
	}
}

// expireDeadlines pops overdue fast-path hops — quarantining their tags —
// and recycles quarantined tags past the reclaim window. It returns the
// aborted hops for the worker to fail with SCAbortRequested.
func (vq *vqState) expireDeadlines(r *Router) []hop {
	if r.FastPathDeadline <= 0 {
		return nil
	}
	now := r.env.Now()
	var aborted []hop
	for len(vq.deadlines) > 0 && vq.deadlines[0].at <= now {
		ent := vq.deadlines[0]
		vq.deadlines = vq.deadlines[1:]
		if vq.htagSeq[ent.cid] != ent.seq || vq.htags[ent.cid].req == nil {
			continue // hop already completed (tag free or reassigned)
		}
		h := vq.htags[ent.cid]
		vq.htags[ent.cid] = hop{}
		vq.lostHTags = append(vq.lostHTags, lostTag{cid: ent.cid, since: now})
		r.HQTimeouts++
		aborted = append(aborted, h)
	}
	for len(vq.lostHTags) > 0 && now.Sub(vq.lostHTags[0].since) >= r.HTagReclaim {
		lt := vq.lostHTags[0]
		vq.lostHTags = vq.lostHTags[1:]
		vq.freeHTags = append(vq.freeHTags, lt.cid)
		r.HTagsReclaimed++
	}
	return aborted
}

// Controller is the virtual NVMe controller NVMetro exposes to one VM,
// attached to a partition of a host NVMe device. It implements vm.Port, so
// any NVMe-speaking guest works unmodified, and carries the per-VM
// classifier, notify queues and kernel target.
type Controller struct {
	router   *Router
	w        *worker
	vm       *vm.VM
	part     device.Partition
	restrict bool

	prog   *ebpf.Program
	cprog  *ebpf.CompiledProgram
	interp bool // run the reference interpreter instead of the compiled tier
	native NativeClassifier
	cvm    *ebpf.VM
	ctx    ctxBuf

	// Adaptive path promotion: when static analysis proves the loaded
	// classifier always returns the pure fast-path verdict, the tenant's
	// hop collapses to a direct SQ→HSQ mapping and classifier execution is
	// elided entirely. promoted flips synchronously on demotion (the
	// hot-swap fence) and via the worker's control inbox on promotion.
	staticRet    uint64 // proven constant verdict (valid when staticOK)
	staticOK     bool
	promoted     bool
	promoPending bool // a promotion grant is already in the control inbox

	vqs      []*vqState
	nextQID  uint16
	nq       *NotifyQueues
	ntags    map[uint16]ntagEntry
	nextNTag uint16
	kt       KernelTarget

	retry       []func()
	outstanding int
	tenant      *qos.Tenant // arbiter state, nil until Router.EnableQoS

	guard        BlockGuard
	guardShift   uint8
	activeWrites []*request     // stamped writes in flight (see guardAdmit)
	guardReads   []*request     // guarded reads in flight (see retireRead)
	recentWrites []settledRange // settled writes still racing in-flight reads
}

// settledRange is a stamped write that completed while guarded reads were
// outstanding: a read admitted before at may legitimately carry the
// previous generation, so verification stands down for it.
type settledRange struct {
	lba, blocks uint64
	at          sim.Time
}

// BlockGuard is the per-device protection-info surface the controller
// stamps guest writes into and verifies guest reads against (satisfied by
// *integrity.Guard). core cannot import integrity — the uif package
// imports core — so the dependency is inverted through this interface.
type BlockGuard interface {
	Stamp(lba uint64, data []byte)
	Verify(lba uint64, data []byte) bool
	Quarantined(lba, blocks uint64) bool
}

// SetGuard installs end-to-end protection info on this controller (nil
// detaches): guest writes are stamped at admission — after classification,
// when the SLBA is device-absolute — and guest read completions are
// verified before posting, so wrong data can never reach the guest with an
// OK status no matter which path served it.
func (vc *Controller) SetGuard(g BlockGuard) {
	vc.guard = g
	vc.guardShift = vc.part.Dev.Params().LBAShift
}

// Attach creates a virtual controller for v over part, served by one of the
// router's workers (round-robin). The controller starts with the default
// fast-path classifier; Restrict left enabled confines fast-path commands
// to the partition.
func (r *Router) Attach(v *vm.VM, part device.Partition) *Controller {
	return r.AttachWorker(len(r.allControllers())%len(r.workers), v, part)
}

// AttachWorker creates a virtual controller served by the given worker
// (shard) — tenant placement policy belongs to the caller (package shard
// balances by load; Attach round-robins).
func (r *Router) AttachWorker(i int, v *vm.VM, part device.Partition) *Controller {
	w := r.workers[i]
	vc := &Controller{
		router:   r,
		w:        w,
		vm:       v,
		part:     part,
		restrict: true,
		cvm:      ebpf.NewVM(nil),
		ntags:    make(map[uint16]ntagEntry),
	}
	if err := vc.LoadClassifier(DefaultClassifier()); err != nil {
		panic(fmt.Sprintf("core: default classifier rejected: %v", err))
	}
	if r.qosEnabled() {
		vc.registerTenant()
	}
	w.vcs = append(w.vcs, vc)
	return vc
}

func (r *Router) allControllers() []*Controller {
	var out []*Controller
	for _, w := range r.workers {
		out = append(out, w.vcs...)
	}
	return out
}

// VM returns the attached VM.
func (vc *Controller) VM() *vm.VM { return vc.vm }

// Router returns the router servicing this controller (for policy tuning
// and error-counter inspection).
func (vc *Controller) Router() *Router { return vc.router }

// Outstanding returns the number of guest commands accepted but not yet
// completed — zero once every submission has produced a VCQ entry.
func (vc *Controller) Outstanding() int { return vc.outstanding }

// Partition returns the backing partition.
func (vc *Controller) Partition() device.Partition { return vc.part }

// SetRestrict toggles router-enforced LBA confinement of fast-path commands
// to the partition (defense in depth on top of classifier mediation).
func (vc *Controller) SetRestrict(on bool) { vc.restrict = on }

// LoadClassifier verifies, compiles and installs a classifier; it can be
// swapped at any time without disturbing in-flight requests ("install,
// migrate and remove storage functions on the fly"). Classifiers execute on
// the compiled tier (the kernel-JIT analogue); the interpreter remains
// available via SetInterpreted for differential testing.
func (vc *Controller) LoadClassifier(p *ebpf.Program) error {
	cp, err := ebpf.Compile(p, NewVerifier())
	if err != nil {
		return fmt.Errorf("core: classifier rejected: %w", err)
	}
	vc.prog = p
	vc.cprog = cp
	vc.staticRet, vc.staticOK = cp.StaticVerdict()
	vc.refreshPromotion()
	return nil
}

// SetInterpreted selects the reference interpreter over the compiled tier
// (for differential testing; virtual routing cost is identical either way).
func (vc *Controller) SetInterpreted(on bool) {
	vc.interp = on
	vc.refreshPromotion()
}

// classifyCost returns the virtual CPU cost of one classification under the
// currently installed classifier kind.
func (vc *Controller) classifyCost(c RouterCosts) sim.Duration {
	if vc.native != nil {
		return c.ClassifyNat
	}
	return c.Classify
}

// NativeClassifier is a compiled-in classification function with the same
// contract as an eBPF classifier (writable context in, action word out) but
// without interpretation or sandboxing. It exists for the ablation study of
// classifier execution cost; production policies should stay in verified
// eBPF, which is the paper's isolation argument.
type NativeClassifier func(ctx []byte) uint64

// SetNativeClassifier installs fn in place of the eBPF program (nil
// restores the eBPF classifier).
func (vc *Controller) SetNativeClassifier(fn NativeClassifier) {
	vc.native = fn
	vc.refreshPromotion()
}

// promotable reports whether the controller currently qualifies for the
// direct SQ→HSQ tier: promotion enabled on the router, an eBPF classifier
// on the compiled tier (native and interpreted classifiers are opaque to
// the static analysis), no UIF attached (a notify consumer implies the
// verdict is about to matter), and a proven constant verdict equal to the
// pure fast-path action word.
func (vc *Controller) promotable() bool {
	return vc.router.promote && vc.staticOK && vc.native == nil && !vc.interp &&
		vc.nq == nil && vc.staticRet == uint64(ActSendHQ|ActWillCompleteHQ)
}

// refreshPromotion re-evaluates the controller's dispatch tier after any
// event that can change the verdict (LoadClassifier, AttachUIF/DetachUIF,
// SetNativeClassifier, SetInterpreted, EnablePromotion).
//
// Demotion is synchronous — this is the hot-swap fence: by the time
// LoadClassifier returns, no command admitted afterwards can bypass the
// new classifier. Promotion is deferred through the worker's control
// inbox so the grant lands between poll rounds, never mid-gather, exactly
// like a supervision reconcile.
func (vc *Controller) refreshPromotion() {
	if vc.promoted && !vc.promotable() {
		vc.promoted = false
		vc.router.Demotions++
		return
	}
	if !vc.promoted && vc.promotable() && !vc.promoPending {
		vc.promoPending = true
		vc.w.post(func() {
			vc.promoPending = false
			if !vc.promoted && vc.promotable() {
				vc.promoted = true
				vc.router.Promotions++
			}
		})
	}
}

// Promoted reports whether the controller currently dispatches guest
// commands via the direct SQ→HSQ mapping (classifier execution elided).
func (vc *Controller) Promoted() bool { return vc.promoted }

// StaticVerdict returns the classifier's statically proven constant
// verdict, when the analysis holds (control-plane/diagnostics surface).
func (vc *Controller) StaticVerdict() (uint64, bool) { return vc.staticRet, vc.staticOK }

// WorkerID returns the index of the router worker (shard) serving this
// controller.
func (vc *Controller) WorkerID() int { return vc.w.id }

// SetKernelTarget installs the kernel-path backend.
func (vc *Controller) SetKernelTarget(kt KernelTarget) { vc.kt = kt }

// --- vm.Port implementation -------------------------------------------

// Namespace implements vm.Port: the guest sees the partition as a
// whole namespace.
func (vc *Controller) Namespace() nvme.NamespaceInfo { return vc.part.Info() }

// IdentifyController returns the virtual controller's identify page,
// implementing the admin Identify command surface.
func (vc *Controller) IdentifyController() nvme.ControllerInfo {
	return nvme.ControllerInfo{
		VID: 0x1b36, Serial: fmt.Sprintf("NVMETRO%08d", vc.vm.ID),
		Model: "NVMetro Virtual NVMe Controller", Firmware: "1.0",
		NN: 1, MaxXfer: 5, SQES: 6, CQES: 4,
	}
}

// CreateQP implements vm.Port: allocates a VSQ/VCQ pair plus the shadowing
// host queue pair on the device.
func (vc *Controller) CreateQP(depth uint32) *nvme.QueuePair {
	vc.nextQID++
	vq := &vqState{
		vc:      vc,
		qid:     vc.nextQID,
		vsq:     nvme.NewSQ(vc.nextQID, depth),
		vcq:     nvme.NewCQ(vc.nextQID, depth),
		hqp:     vc.part.Dev.CreateQueuePair(depth, vc.vm.Mem),
		htags:   make([]hop, depth),
		htagSeq: make([]uint64, depth),
	}
	for i := uint32(0); i < depth; i++ {
		vq.freeHTags = append(vq.freeHTags, uint16(i))
	}
	vc.vqs = append(vc.vqs, vq)
	return &nvme.QueuePair{SQ: vq.vsq, CQ: vq.vcq}
}

// Ring implements vm.Port. Mediated doorbells live in shared memory, so a
// ring is free for the guest; it only serves as a wake-up hint for a worker
// that parked itself during inactivity.
func (vc *Controller) Ring(qid uint16) { vc.w.hint() }

// SetIRQ implements vm.Port. An unknown qid is a guest configuration error
// (reachable from guest input), so it is counted and ignored rather than
// panicking the host.
func (vc *Controller) SetIRQ(qid uint16, fn func()) {
	for _, vq := range vc.vqs {
		if vq.qid == qid {
			vq.irq = fn
			return
		}
	}
	vc.router.BadQIDs++
}

// --- classification and routing ----------------------------------------

// classifyAndRoute invokes the classifier for req at the given hook and
// applies the returned actions. Runs in worker effect context.
func (w *worker) classifyAndRoute(req *request, hook uint32, errStatus nvme.Status) {
	vc := req.vq.vc
	w.r.Classifications++
	vc.ctx.set(hook, uint32(errStatus), uint32(vc.vm.ID), uint32(req.vq.qid), req.s0, req.s1, req.cmd[:])
	var ret uint64
	if vc.native != nil {
		ret = vc.native(vc.ctx[:])
		if hook == HookVSQ {
			// Native classifiers cannot tag a class; charge the default.
			w.chargeClass(req, qos.ClassDefault)
		}
	} else {
		var err error
		if vc.cprog != nil && !vc.interp {
			ret, err = vc.cvm.RunCompiled(vc.cprog, vc.ctx[:])
		} else {
			ret, err = vc.cvm.Run(vc.prog, vc.ctx[:])
		}
		if err != nil {
			// A faulting classifier fails the request rather than the
			// host — the isolation property eBPF buys us.
			w.completeReq(req, nvme.SCInternal)
			return
		}
		if hook == HookVSQ {
			// The qos_set_class helper tagged the command's scheduling
			// class (0 when untagged); settle the class-multiplier delta
			// against the tenant's admission charge.
			w.chargeClass(req, qos.Class(vc.cvm.QoSClass))
		}
	}
	// Direct mediation: copy back the (possibly rewritten) command and
	// scratch space.
	copy(req.cmd[:], vc.ctx[CtxOffCmd:])
	req.s0, req.s1 = vc.ctx.scratch()

	actions := ret
	if actions&ActComplete != 0 {
		w.r.Immediate++
		w.completeReq(req, nvme.Status(actions&ActStatusMask))
		return
	}

	if hook == HookVSQ && vc.guard != nil && !w.guardAdmit(req) {
		return
	}

	dispOf := func(sendBit, hookBit, compBit uint64) (disposition, bool) {
		if actions&sendBit == 0 {
			return dispNone, false
		}
		switch {
		case actions&hookBit != 0:
			return dispHook, true
		case actions&compBit != 0:
			return dispComplete, true
		}
		return dispNone, true
	}

	type send struct {
		fn func(hop)
		h  hop
	}
	var sends []send
	if d, ok := dispOf(ActSendHQ, ActHookHCQ, ActWillCompleteHQ); ok {
		sends = append(sends, send{w.dispatchHQ, hop{req, d}})
	}
	if d, ok := dispOf(ActSendNQ, ActHookNCQ, ActWillCompleteNQ); ok {
		sends = append(sends, send{w.dispatchNQ, hop{req, d}})
	}
	if d, ok := dispOf(ActSendKQ, ActHookKCQ, ActWillCompleteKQ); ok {
		sends = append(sends, send{w.dispatchKQ, hop{req, d}})
	}
	if len(sends) == 0 {
		// No action at all: a buggy classifier must not wedge the guest.
		w.completeReq(req, nvme.SCInternal)
		return
	}
	for _, s := range sends {
		req.pending++
		if s.h.disp == dispComplete {
			req.waiters++
		}
	}
	for _, s := range sends {
		s.fn(s.h)
	}
}

// directDispatch is the promoted tier's dispatch: the classifier's verdict
// is a proven constant equal to ActSendHQ|ActWillCompleteHQ and the
// program is pure (no ctx writes, no map mutation, no class tagging), so
// the command maps SQ→HSQ directly with no classifier execution, no ctx
// marshalling and no copy-back. Everything downstream of classification —
// restriction, guard admission, tag allocation, deadlines, backpressure —
// is shared with the routed tier via dispatchHQ. Runs in worker effect
// context.
func (w *worker) directDispatch(req *request) {
	vc := req.vq.vc
	if !vc.promoted {
		// Demoted between gather and effect (the hot-swap fence closed
		// mid-round): the new classifier decides. The elided classify
		// charge is not retrofitted — a one-round transition artifact.
		w.classifyAndRoute(req, HookVSQ, 0)
		return
	}
	w.r.PromotedOps++
	// A pure classifier cannot invoke qos_set_class; the admission charge
	// settles at the default class, as it would after execution.
	w.chargeClass(req, qos.ClassDefault)
	if vc.guard != nil && !w.guardAdmit(req) {
		return
	}
	req.pending++
	req.waiters++
	w.dispatchHQ(hop{req, dispComplete})
}

// guardAdmit runs the protection-info admission step for a routed guest
// command (the classifier has run, so the SLBA is device-absolute):
// writes are stamped from the guest payload before dispatch, and reads of
// quarantined ranges are refused with a media error before touching any
// backend. Returns false when the request was completed here.
func (w *worker) guardAdmit(req *request) bool {
	vc := req.vq.vc
	lba, blocks := req.cmd.SLBA(), uint64(req.cmd.Blocks())
	switch req.cmd.Opcode() {
	case nvme.OpRead:
		if vc.guard.Quarantined(lba, blocks) {
			w.r.QuarantinedReads++
			w.completeReq(req, nvme.SCUnrecoveredRead)
			return false
		}
		vc.guardReads = append(vc.guardReads, req)
	case nvme.OpWrite:
		nbytes := uint32(blocks) << vc.guardShift
		segs, err := nvme.WalkPRP(vc.vm.Mem, req.cmd.PRP1(), req.cmd.PRP2(), nbytes)
		if err != nil {
			return true // unmappable payload: the data path reports it
		}
		buf := make([]byte, nbytes)
		if err := nvme.ReadSegments(vc.vm.Mem, segs, buf); err != nil {
			return true
		}
		vc.guard.Stamp(lba, buf)
		req.stamped = true
		vc.activeWrites = append(vc.activeWrites, req)
	case nvme.OpWriteZeroes:
		vc.guard.Stamp(lba, make([]byte, blocks<<vc.guardShift))
		req.stamped = true
		vc.activeWrites = append(vc.activeWrites, req)
	}
	return true
}

// writeInFlight reports whether any stamped guest write overlapping
// [lba, lba+blocks) is still outstanding. While one is, the backing store
// may legitimately hold either generation, so read verification stands
// down — the scrubber's recheck protocol covers the window instead.
func (vc *Controller) writeInFlight(lba, blocks uint64) bool {
	for _, wr := range vc.activeWrites {
		wlba, wblocks := wr.cmd.SLBA(), uint64(wr.cmd.Blocks())
		if lba < wlba+wblocks && wlba < lba+blocks {
			return true
		}
	}
	return false
}

// settleWrite retires a stamped write from the active set. While guarded
// reads remain in flight, the write's extent is remembered with its
// settle time: a read admitted before it settled raced it and may carry
// either generation.
func (vc *Controller) settleWrite(req *request, now sim.Time) {
	for i, wr := range vc.activeWrites {
		if wr == req {
			vc.activeWrites = append(vc.activeWrites[:i], vc.activeWrites[i+1:]...)
			break
		}
	}
	if len(vc.guardReads) > 0 {
		vc.recentWrites = append(vc.recentWrites,
			settledRange{lba: req.cmd.SLBA(), blocks: uint64(req.cmd.Blocks()), at: now})
	}
}

// retireRead removes a completed guarded read from the in-flight set and
// reports whether a stamped write overlapping it settled during its
// lifetime (verification must stand down — the read may legitimately
// carry the pre-write generation). Settled extents no read can race
// anymore are dropped.
func (vc *Controller) retireRead(req *request) bool {
	for i, rd := range vc.guardReads {
		if rd == req {
			vc.guardReads = append(vc.guardReads[:i], vc.guardReads[i+1:]...)
			break
		}
	}
	raced := false
	lba, blocks := req.cmd.SLBA(), uint64(req.cmd.Blocks())
	for _, sw := range vc.recentWrites {
		if sw.at >= req.t0 && lba < sw.lba+sw.blocks && sw.lba < lba+blocks {
			raced = true
			break
		}
	}
	minT0 := sim.Time(0)
	for i, rd := range vc.guardReads {
		if i == 0 || rd.t0 < minT0 {
			minT0 = rd.t0
		}
	}
	if len(vc.guardReads) == 0 {
		vc.recentWrites = vc.recentWrites[:0]
	} else {
		kept := vc.recentWrites[:0]
		for _, sw := range vc.recentWrites {
			if sw.at >= minT0 {
				kept = append(kept, sw)
			}
		}
		vc.recentWrites = kept
	}
	return raced
}

// verifyGuestRead checks a successfully completed guest read's payload —
// already landed in guest memory by whichever path served it — against
// the protection info. This is the single boundary every read crosses, so
// a verification failure here is the last line: the guest gets a guard
// error, never silently wrong data.
func (w *worker) verifyGuestRead(req *request) nvme.Status {
	vc := req.vq.vc
	lba, blocks := req.cmd.SLBA(), uint64(req.cmd.Blocks())
	if vc.writeInFlight(lba, blocks) {
		return nvme.SCSuccess
	}
	nbytes := uint32(blocks) << vc.guardShift
	segs, err := nvme.WalkPRP(vc.vm.Mem, req.cmd.PRP1(), req.cmd.PRP2(), nbytes)
	if err != nil {
		return nvme.SCSuccess
	}
	buf := make([]byte, nbytes)
	if err := nvme.ReadSegments(vc.vm.Mem, segs, buf); err != nil {
		return nvme.SCSuccess
	}
	if !vc.guard.Verify(lba, buf) {
		w.r.GuardErrors++
		return nvme.SCGuardCheck
	}
	return nvme.SCSuccess
}

// finishHop handles completion of one routed hop.
func (w *worker) finishHop(h hop, t target, status nvme.Status) {
	req := h.req
	req.pending--
	if !status.OK() {
		(*w.r.pathErrors(t))++
		if req.status.OK() {
			req.status = status
		}
	}
	switch h.disp {
	case dispHook:
		w.classifyAndRoute(req, hookFor(t), status)
	case dispComplete:
		req.waiters--
		if req.waiters == 0 {
			st := req.status
			if st.OK() {
				st = status
			}
			w.completeReq(req, st)
		}
	}
	w.maybeRelease(req)
}

// completeReq posts the guest completion (once) and releases the entry when
// no hops remain outstanding.
func (w *worker) completeReq(req *request, status nvme.Status) {
	if req.completed {
		return
	}
	req.completed = true
	vc := req.vq.vc
	if req.stamped {
		vc.settleWrite(req, w.r.env.Now())
	}
	if vc.guard != nil && req.cmd.Opcode() == nvme.OpRead {
		raced := vc.retireRead(req)
		if status.OK() && !raced {
			status = w.verifyGuestRead(req)
		}
	}
	if !status.OK() {
		w.r.GuestErrors++
	}
	if ten := req.vq.vc.tenant; ten != nil {
		w.qos.ObserveLatency(ten, w.r.env.Now().Sub(req.t0))
	}
	var e nvme.Completion
	e.SetCID(req.gcid)
	e.SetSQID(req.vq.qid)
	e.SetSQHD(uint16(req.vq.vsq.Head()))
	e.SetStatus(status)
	req.vq.pendingVCQ = append(req.vq.pendingVCQ, e)
	w.maybeRelease(req)
}

func (w *worker) maybeRelease(req *request) {
	if !req.completed && req.pending == 0 {
		// Every leg has finished but nothing completed the request: the
		// classifier orphaned it with fire-and-forget-only routing. Fail
		// it to the guest rather than wedging — a buggy classifier must
		// cost at most its own VM's request, never the router.
		w.completeReq(req, nvme.SCInternal)
		return
	}
	if req.completed && req.pending == 0 {
		req.vq.vc.outstanding--
		if req.vq.vc.outstanding < 0 {
			panic("core: outstanding underflow")
		}
		// Mark released so double release is caught in tests.
		req.pending = -1
	}
}

// --- per-path dispatch ---------------------------------------------------

// dispatchHQ forwards the request's command to the shadowing host queue.
func (w *worker) dispatchHQ(h hop) {
	req := h.req
	vq := req.vq
	vc := vq.vc
	w.r.FastPath++
	if vc.restrict && req.cmd.IsIO() {
		lba := req.cmd.SLBA()
		blocks := uint64(req.cmd.Blocks())
		if lba < vc.part.Start || lba+blocks > vc.part.Start+vc.part.Blocks {
			w.finishHop(h, targetHQ, nvme.SCLBAOutOfRange)
			return
		}
	}
	if len(vq.freeHTags) == 0 || vq.hqp.SQ.Full() {
		w.r.Backpressure++
		vc.retry = append(vc.retry, func() { w.dispatchHQ(h) })
		return
	}
	htag := vq.freeHTags[len(vq.freeHTags)-1]
	vq.freeHTags = vq.freeHTags[:len(vq.freeHTags)-1]
	vq.htags[htag] = h
	cmd := req.cmd
	cmd.SetCID(htag)
	// The guest driver always addresses NSID 1 of its virtual controller;
	// the attachment's partition says which device namespace that maps to
	// (clone namespaces sit at NSID >= 2).
	cmd.SetNSID(vc.part.NSID)
	if !vq.hqp.SQ.Push(&cmd) {
		// Backpressure, not a panic: undo the tag grab and retry on the
		// next worker iteration, exactly like the full-before-check case.
		vq.htags[htag] = hop{}
		vq.freeHTags = append(vq.freeHTags, htag)
		w.r.Backpressure++
		vc.retry = append(vc.retry, func() { w.dispatchHQ(h) })
		return
	}
	vq.dispatchSeq++
	vq.htagSeq[htag] = vq.dispatchSeq
	if dl := w.r.FastPathDeadline; dl > 0 {
		vq.deadlines = append(vq.deadlines, hqDeadline{cid: htag, seq: vq.dispatchSeq, at: w.r.env.Now().Add(dl)})
	}
	vc.part.Dev.Ring(vq.hqp.SQ.ID)
}

// dispatchNQ exports the request to the attached UIF via the notify queues.
func (w *worker) dispatchNQ(h hop) {
	req := h.req
	vc := req.vq.vc
	w.r.NotifyPath++
	if vc.nq == nil {
		w.finishHop(h, targetNQ, nvme.SCInternal)
		return
	}
	if vc.nq.nsq.Full() {
		w.r.Backpressure++
		vc.retry = append(vc.retry, func() { w.dispatchNQ(h) })
		return
	}
	vc.nextNTag++
	tag := vc.nextNTag
	vc.ntags[tag] = ntagEntry{h: h, at: w.r.env.Now()}
	cmd := req.cmd
	cmd.SetCID(tag)
	if !vc.nq.nsq.Push(&cmd) {
		// Backpressure, not a panic: drop the tag and retry later.
		delete(vc.ntags, tag)
		w.r.Backpressure++
		vc.retry = append(vc.retry, func() { w.dispatchNQ(h) })
		return
	}
	vc.nq.notify()
}

// ntagEntry is one in-flight notify-path hop, timestamped at dispatch so
// the supervision watchdog can enforce NSQ residency deadlines.
type ntagEntry struct {
	h  hop
	at sim.Time
}

// takeNTag claims the hop for a notify completion tag.
func (vc *Controller) takeNTag(tag uint16) (hop, bool) {
	ent, ok := vc.ntags[tag]
	delete(vc.ntags, tag)
	return ent.h, ok
}

// NotifyInFlight returns the number of notify-path hops dispatched and not
// yet completed — commands resident in the NSQ or being serviced by the
// attached UIF. Watchdog-side API.
func (vc *Controller) NotifyInFlight() int { return len(vc.ntags) }

// OldestNotifyAge returns how long the oldest in-flight notify-path hop
// has been outstanding at now (0 when none are in flight). Watchdog-side
// API: a healthy UIF bounds this by its service time, so an age beyond
// the residency deadline means the commands are stranded.
func (vc *Controller) OldestNotifyAge(now sim.Time) sim.Duration {
	var oldest sim.Duration
	for _, ent := range vc.ntags {
		if age := now.Sub(ent.at); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// dispatchKQ sends the request down the host kernel block layer.
func (w *worker) dispatchKQ(h hop) {
	vc := h.req.vq.vc
	w.r.KernelPath++
	if vc.kt == nil {
		w.finishHop(h, targetKQ, nvme.SCInternal)
		return
	}
	vc.kt.Submit(h.req.cmd, vc.vm.Mem, func(st nvme.Status) {
		// The block layer completes on its own context; fan the completion
		// into the owning shard through the lock-free inbox.
		w.comps.Push(func() { w.finishHop(h, targetKQ, st) })
		w.hint()
	})
}

// encode helpers used by classifier config maps (documented layout for the
// standard partition-translation config entry).
const (
	// CfgPartStart and CfgPartBlocks are u64 offsets in config map entry 0.
	CfgPartStart  = 0
	CfgPartBlocks = 8
	CfgValueSize  = 16
)

// NewPartitionConfigMap builds the standard config map for LBA-translating
// classifiers: entry 0 holds the partition start LBA and size.
func NewPartitionConfigMap(part device.Partition) *ebpf.ArrayMap {
	m := ebpf.NewArrayMap(CfgValueSize, 1)
	m.SetU64(0, CfgPartStart, part.Start)
	m.SetU64(0, CfgPartBlocks, part.Blocks)
	return m
}

var _ vm.Port = (*Controller)(nil)

// DebugState renders the controller's routing-table state for diagnostics
// (exposed to the control plane and tests).
func (vc *Controller) DebugState() string {
	s := fmt.Sprintf("outstanding=%d ntags=%d retry=%d workerAsleep=%v comps=%d ctrl=%d",
		vc.outstanding, len(vc.ntags), len(vc.retry), vc.w.asleep, vc.w.comps.Len(), vc.w.ctrl.Len())
	if vc.nq != nil {
		s += fmt.Sprintf(" nsq=%d ncq=%d", vc.nq.nsq.Len(), vc.nq.ncq.Len())
	}
	for _, vq := range vc.vqs {
		s += fmt.Sprintf(" [q%d vsq=%d hsq=%d hcq=%d pendVCQ=%d freeHTags=%d]",
			vq.qid, vq.vsq.Len(), vq.hqp.SQ.Len(), vq.hqp.CQ.Len(), len(vq.pendingVCQ), len(vq.freeHTags))
	}
	return s
}
