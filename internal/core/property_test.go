package core_test

import (
	"math/rand"
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// TestRouterLivenessUnderArbitraryClassifiers is the router's core safety
// property: whatever (well-formed) routing decision a classifier emits —
// any combination of targets, hooks, completion modes, multicast, immediate
// completion, nested hook chains — every guest request eventually completes
// and no routing-table state leaks. A wedged or double-completed request
// panics or times out the test.
func TestRouterLivenessUnderArbitraryClassifiers(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		r := newRig(1)
		part := device.WholeNamespace(r.dev, 1)
		v, vc, disk := r.addVM(0, part)
		u := attachFakeUIF(r.env, vc)
		u.delay = 20 * sim.Microsecond
		kt := &fakeKernelTarget{env: r.env, delay: 15 * sim.Microsecond}
		vc.SetKernelTarget(kt)

		depth := 0
		vc.SetNativeClassifier(func(ctx []byte) uint64 {
			// On re-entry via a hook, either complete or fan out again
			// (bounded so chains terminate).
			hook := uint32(ctx[core.CtxOffHook])
			if hook != core.HookVSQ {
				depth++
			}
			if hook != core.HookVSQ && (depth%3 == 0 || rng.Intn(2) == 0) {
				return core.ActComplete // status OK
			}
			var act uint64
			// Pick 1..3 targets with random dispositions.
			targets := []struct{ send, hook, comp uint64 }{
				{core.ActSendHQ, core.ActHookHCQ, core.ActWillCompleteHQ},
				{core.ActSendNQ, core.ActHookNCQ, core.ActWillCompleteNQ},
				{core.ActSendKQ, core.ActHookKCQ, core.ActWillCompleteKQ},
			}
			picked := 0
			for _, tg := range targets {
				if rng.Intn(2) == 0 {
					continue
				}
				picked++
				act |= tg.send
				switch rng.Intn(3) {
				case 0:
					if hook == core.HookVSQ { // keep hook chains shallow
						act |= tg.hook
					} else {
						act |= tg.comp
					}
				case 1:
					act |= tg.comp
				default:
					// fire-and-forget leg
				}
			}
			if picked == 0 {
				// Nothing sent: either complete explicitly or return a
				// no-op word (the router must fail it cleanly, not hang).
				if rng.Intn(2) == 0 {
					return core.ActComplete
				}
				return 0
			}
			// Ensure at least one leg completes the request so it is not
			// purely fire-and-forget.
			if act&(core.ActWillCompleteHQ|core.ActWillCompleteNQ|core.ActWillCompleteKQ|
				core.ActHookHCQ|core.ActHookNCQ|core.ActHookKCQ) == 0 {
				act |= core.ActWillCompleteHQ
				act |= core.ActSendHQ
			}
			return act
		})

		completed := 0
		r.run(t, func(p *sim.Proc) {
			base, pages, _ := v.Mem.AllocBuffer(512)
			done := sim.NewCond(r.env)
			for i := 0; i < 200; i++ {
				op := vm.OpRead
				if rng.Intn(2) == 0 {
					op = vm.OpWrite
				}
				req := &vm.Req{Op: op, LBA: uint64(rng.Intn(4096)), Blocks: 1, Buf: base, BufPages: pages,
					OnDone: func(*vm.Req) { done.Signal(nil) }}
				disk.Submit(p, v.VCPU(0), req)
				deadline := p.Now().Add(100 * sim.Millisecond)
				for !req.Done() && p.Now() < deadline {
					done.WaitTimeout(10 * sim.Millisecond)
				}
				if !req.Done() {
					t.Fatalf("seed %d: request %d (%v) wedged; %s", seed, i, req.Op, vc.DebugState())
				}
				// Status may legitimately be an error (no-op classifier
				// word), but the request must COMPLETE either way.
				completed++
			}
		})
		if completed != 200 {
			t.Fatalf("seed %d: only %d/200 requests completed", seed, completed)
		}
		_ = nvme.SCSuccess
	}
}
