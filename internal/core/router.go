package core

import (
	"fmt"

	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/shard/ring"
	"nvmetro/internal/sim"
)

// RouterCosts models the per-operation CPU cost of the router data plane.
// Values reflect a lean kernel module: a few hundred nanoseconds per queue
// scan and per dispatched request, with the eBPF interpreter dominating the
// classification step.
type RouterCosts struct {
	PollVQ      sim.Duration // scanning one virtual queue set per iteration
	Classify    sim.Duration // one classifier invocation
	ClassifyNat sim.Duration // one native (compiled) classifier invocation
	DispatchHQ  sim.Duration // forward to hardware queue + doorbell
	DispatchNQ  sim.Duration // forward to notify queue + UIF wake
	DispatchKQ  sim.Duration // translate and submit to the block layer
	CompleteVCQ sim.Duration // post one VCQ entry
	IRQInject   sim.Duration // virtual interrupt injection per batch
}

// DefaultRouterCosts returns the calibrated cost model.
func DefaultRouterCosts() RouterCosts {
	return RouterCosts{
		PollVQ:      250 * sim.Nanosecond,
		Classify:    300 * sim.Nanosecond,
		ClassifyNat: 80 * sim.Nanosecond,
		DispatchHQ:  250 * sim.Nanosecond,
		DispatchNQ:  350 * sim.Nanosecond,
		DispatchKQ:  600 * sim.Nanosecond,
		CompleteVCQ: 250 * sim.Nanosecond,
		IRQInject:   1200 * sim.Nanosecond,
	}
}

// KernelTarget is the kernel I/O path: anything that can service a
// translated NVMe command through the host block layer (package blockdev
// provides the implementation over bios and device-mapper tables).
type KernelTarget interface {
	// Submit services cmd against guest memory mem and calls done with the
	// final status. done runs in an arbitrary simulation context and must
	// not block.
	Submit(cmd nvme.Command, mem nvme.Memory, done func(nvme.Status))
}

// Router is the NVMetro I/O router: a set of worker threads ("shards"),
// shared round-robin between the attached VMs' virtual controllers, that
// poll virtual submission queues and the completion queues of every I/O
// path. Each worker owns its tenants exclusively — their queues, QoS
// arbiter state and promotion decisions — so workers never contend;
// cross-shard traffic (kernel completions, control posts) enters through
// each worker's lock-free MPSC inboxes.
type Router struct {
	env     *sim.Env
	costs   RouterCosts
	workers []*worker

	// promote enables the adaptive path-promotion tier: tenants whose
	// classifier has a proven static fast-path verdict collapse to a
	// direct SQ→HSQ mapping. Off by default — the single-loop evaluation
	// setups measure classifier execution, promotion would elide it.
	promote bool

	// FastPathDeadline bounds how long a fast-path hop may stay in flight
	// before the router aborts it back to the guest (0 disables). The
	// default sits far above any legitimate device queueing delay; fault
	// experiments tighten it. HTagReclaim is the quarantine window before
	// a timed-out host tag may be reused.
	FastPathDeadline sim.Duration
	HTagReclaim      sim.Duration

	// Stats
	Classifications uint64
	FastPath        uint64
	NotifyPath      uint64
	KernelPath      uint64
	Immediate       uint64

	// Error accounting, per path and guest-visible.
	FastPathErrors   uint64 // non-OK fast-path hop completions
	NotifyPathErrors uint64 // non-OK notify-path hop completions
	KernelPathErrors uint64 // non-OK kernel-path hop completions
	GuestErrors      uint64 // non-OK completions posted to guest VCQs
	StaleComps       uint64 // fast-path completions with no live host tag
	HQTimeouts       uint64 // fast-path hops aborted at their deadline
	HTagsReclaimed   uint64 // quarantined host tags recycled without a completion
	Backpressure     uint64 // dispatches deferred because a queue was full
	BadQIDs          uint64 // guest operations naming an unknown queue
	NotifyReconciled uint64 // notify hops completed by supervision reconcile
	NotifyRequeued   uint64 // notify hops requeued through the classifier
	GuardErrors      uint64 // guest reads failing protection-info verification
	QuarantinedReads uint64 // guest reads refused on quarantined ranges

	// Path-promotion accounting.
	Promotions  uint64 // routed→direct transitions granted
	Demotions   uint64 // direct→routed transitions (classifier hot-swap fences)
	PromotedOps uint64 // guest commands dispatched via the direct mapping
}

// NewRouter creates a router with one worker per given host thread.
// The paper's main evaluations use one worker per VM; the scalability
// evaluation shares a single worker across all VMs.
func NewRouter(env *sim.Env, costs RouterCosts, threads []*sim.Thread) *Router {
	r := &Router{
		env:              env,
		costs:            costs,
		FastPathDeadline: 100 * sim.Millisecond,
		HTagReclaim:      200 * sim.Millisecond,
	}
	for i, th := range threads {
		w := &worker{
			r: r, id: i, thread: th, wake: sim.NewCond(env),
			comps: ring.New(), ctrl: ring.New(),
		}
		r.workers = append(r.workers, w)
		env.Go(fmt.Sprintf("router-w%d", i), w.run)
	}
	return r
}

// EnablePromotion turns on the adaptive path-promotion tier and
// re-evaluates every attached tenant against the current promotion
// criteria. Tenants whose classifier carries a proven constant fast-path
// verdict collapse to the direct SQ→HSQ mapping on their next round.
func (r *Router) EnablePromotion() {
	r.promote = true
	for _, w := range r.workers {
		for _, vc := range w.vcs {
			vc.refreshPromotion()
		}
	}
}

// PromotionEnabled reports whether the promotion tier is active.
func (r *Router) PromotionEnabled() bool { return r.promote }

// pathErrors returns the per-path error counter for target t.
func (r *Router) pathErrors(t target) *uint64 {
	switch t {
	case targetHQ:
		return &r.FastPathErrors
	case targetNQ:
		return &r.NotifyPathErrors
	default:
		return &r.KernelPathErrors
	}
}

// Workers returns the number of worker threads.
func (r *Router) Workers() int { return len(r.workers) }

// ShardInfo is a diagnostic snapshot of one router worker (shard):
// tenant assignment, per-tenant promotion state and inbox depths.
type ShardInfo struct {
	ID        int
	Asleep    bool
	VMs       []int  // attached VM IDs, attach order
	Promoted  []bool // parallel to VMs: direct-mapping tenants
	CompDepth int    // kernel-completion MPSC inbox depth
	CtrlDepth int    // control-plane MPSC inbox depth
	QoS       bool   // per-shard arbiter installed
}

// ShardInfos snapshots every worker for the control plane.
func (r *Router) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(r.workers))
	for i, w := range r.workers {
		si := ShardInfo{
			ID:        w.id,
			Asleep:    w.asleep,
			CompDepth: w.comps.Len(),
			CtrlDepth: w.ctrl.Len(),
			QoS:       w.qos != nil,
		}
		for _, vc := range w.vcs {
			si.VMs = append(si.VMs, vc.vm.ID)
			si.Promoted = append(si.Promoted, vc.promoted)
		}
		out[i] = si
	}
	return out
}

// worker is one router polling thread — a shard. It owns its tenants'
// queues and QoS arbiter exclusively; the only state other contexts may
// touch are the two MPSC inboxes and the parked flag behind the wake cond.
type worker struct {
	r      *Router
	id     int
	thread *sim.Thread
	wake   *sim.Cond
	vcs    []*Controller
	qos    *qos.Arbiter // nil until EnableQoS; per-shard arbiter state
	comps  *ring.MPSC   // kernel-path completion fan-in
	ctrl   *ring.MPSC   // control-plane posts (reconcile, promotion fences)
	asleep bool
}

// hint wakes the worker if it parked itself due to inactivity.
func (w *worker) hint() {
	if w.asleep {
		w.asleep = false
		w.wake.Signal(nil)
	}
}

// post queues fn to run as a routing effect on the worker's next
// iteration — the external-work channel the supervision subsystem uses to
// run reconciliation in worker context, where completions and retries are
// flushed in the same round. Safe from any simulation context; with real
// shard threads the MPSC makes it safe from any thread.
func (w *worker) post(fn func()) {
	w.ctrl.Push(fn)
	w.hint()
}

// run is the worker main loop: a two-phase poll (gather work, charge CPU,
// apply effects) with adaptive parking when every attached VM is idle.
func (w *worker) run(p *sim.Proc) {
	c := w.r.costs
	for {
		var work sim.Duration
		outstanding := 0

		// Phase 1: gather. Data-structure work happens instantly; the CPU
		// time it represents is charged in phase 2 before effects land.
		var effects []func()

		// Kernel-path completions fan in from other contexts through the
		// lock-free inbox; drain what is visible this round.
		w.comps.Drain(func(fn func()) {
			work += c.PollVQ
			effects = append(effects, fn)
		})

		for _, vc := range w.vcs {
			work += c.PollVQ
			outstanding += vc.outstanding
			// Notify-path completions (one NCQ per controller).
			if vc.nq != nil {
				var e nvme.Completion
				for vc.nq.ncq.Pop(&e) {
					h, ok := vc.takeNTag(e.CID())
					if !ok {
						continue
					}
					st := e.Status()
					effects = append(effects, func() { w.finishHop(h, targetNQ, st) })
				}
			}
			for _, vq := range vc.vqs {
				// New guest submissions (the arbitrated pass below handles
				// these when QoS is enabled).
				if w.qos == nil {
					var cmd nvme.Command
					for vq.vsq.Pop(&cmd) {
						vc.outstanding++
						outstanding++
						req := &request{vq: vq, gcid: cmd.CID(), cmd: cmd, t0: w.r.env.Now()}
						if vc.promoted {
							// Promoted tenant: the classifier's verdict is a
							// proven constant, so the hop maps SQ→HSQ
							// directly — no classifier charge, no execution.
							effects = append(effects, func() { w.directDispatch(req) })
						} else {
							work += vc.classifyCost(c)
							effects = append(effects, func() { w.classifyAndRoute(req, HookVSQ, 0) })
						}
					}
				}
				// Fast-path completions.
				var e nvme.Completion
				for vq.hqp.CQ.Pop(&e) {
					cid := e.CID()
					h := vq.htags[cid]
					if h.req == nil {
						// No live host tag: the late completion of a hop
						// the deadline sweep already aborted. Count it
						// (silent drops would hide injected faults) and
						// release the quarantined tag.
						w.r.StaleComps++
						vq.releaseLost(cid)
						continue
					}
					vq.htags[cid] = hop{}
					vq.freeHTags = append(vq.freeHTags, cid)
					st := e.Status()
					effects = append(effects, func() { w.finishHop(h, targetHQ, st) })
				}
				// Deadline sweep: abort fast-path hops that outlived their
				// deadline and recycle quarantined tags whose completion
				// never arrived.
				for _, h := range vq.expireDeadlines(w.r) {
					h := h
					effects = append(effects, func() { w.finishHop(h, targetHQ, nvme.SCAbortRequested) })
				}
			}
		}

		// Externally posted work (supervision reconciliation, promotion
		// fences) runs after the per-controller gather so NCQ completions
		// consumed above cannot race the reconcile sweep within the round.
		w.ctrl.Drain(func(fn func()) {
			work += c.PollVQ
			effects = append(effects, fn)
		})

		// Arbitrated admission pass: WFQ + token buckets + admission
		// control decide which VSQ heads enter this round. Commands left
		// throttled in their rings are backlog the worker must keep
		// polling for (time must advance for buckets to refill).
		backlog := 0
		if w.qos != nil {
			var admitted int
			admitted, backlog = w.gatherQoS(&effects, &work)
			outstanding += admitted
		}

		if len(effects) == 0 {
			if outstanding == 0 && backlog == 0 {
				// Nothing in flight anywhere: park until a doorbell hint,
				// kernel completion or UIF notification arrives. This is
				// the "stop polling during inactivity" behaviour.
				w.asleep = true
				w.wake.Wait()
				continue
			}
			// Busy-poll while requests are in flight or throttled.
			w.thread.Exec(p, work)
			continue
		}

		// Phase 2: charge the CPU for this batch.
		w.thread.Exec(p, work)

		// Phase 3: apply routing effects and post completions.
		for _, fn := range effects {
			fn()
		}
		w.flushCompletions(p)
		w.flushRetries(p)
	}
}

// flushCompletions posts queued VCQ entries and injects interrupts.
func (w *worker) flushCompletions(p *sim.Proc) {
	c := w.r.costs
	for _, vc := range w.vcs {
		for _, vq := range vc.vqs {
			if len(vq.pendingVCQ) == 0 {
				continue
			}
			var cost sim.Duration
			n := 0
			for _, pc := range vq.pendingVCQ {
				if !vq.vcq.Push(&pc) {
					break
				}
				n++
				cost += c.CompleteVCQ
			}
			vq.pendingVCQ = vq.pendingVCQ[n:]
			if n > 0 {
				cost += c.IRQInject
				w.thread.Exec(p, cost)
				if vq.irq != nil {
					vq.irq()
				}
			}
		}
	}
}

// flushRetries re-attempts dispatches that found a full HSQ/NSQ earlier.
func (w *worker) flushRetries(p *sim.Proc) {
	for _, vc := range w.vcs {
		if len(vc.retry) == 0 {
			continue
		}
		pending := vc.retry
		vc.retry = nil
		for _, fn := range pending {
			fn()
		}
	}
}
