package core

import (
	"fmt"

	"nvmetro/internal/ebpf"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
)

// QoS integration: when an arbiter is installed, the router workers stop
// draining shadowed submission queues unconditionally and instead run an
// arbitrated admission pass per poll round (gatherQoS). Commands denied by
// a token bucket or the admission controller stay in their VSQ — the guest
// driver blocks on the full ring, so throttling backpressures end to end
// without drops.

// EnableQoS installs a WFQ arbiter per router worker. Each shard
// arbitrates only among its own tenants — tenant state never crosses a
// shard boundary — and fleet-wide views merge the per-shard snapshots
// (QoSSnapshot/CollectQoS). Controllers already attached are registered
// as tenants with default (unlimited, weight-1) contracts; controllers
// attached later register automatically. Returns the first worker's
// arbiter (the whole arbiter when the router has a single worker, as the
// shared-stack evaluation setups do). Calling EnableQoS twice returns the
// existing arbiter.
func (r *Router) EnableQoS(cfg qos.Config) *qos.Arbiter {
	if !r.qosEnabled() {
		for _, w := range r.workers {
			w.qos = qos.NewArbiter(cfg)
		}
		for _, vc := range r.allControllers() {
			vc.registerTenant()
		}
	}
	return r.workers[0].qos
}

// qosEnabled reports whether EnableQoS has run.
func (r *Router) qosEnabled() bool { return r.workers[0].qos != nil }

// QoS returns the first worker's arbiter (nil when QoS is disabled).
// Routers with one worker — every shared-stack evaluation setup — have
// exactly one arbiter, so this is the complete QoS state there. Sharded
// fleets use QoSSnapshot/CollectQoS for the merged view.
func (r *Router) QoS() *qos.Arbiter { return r.workers[0].qos }

// QoSArbiters returns every per-shard arbiter (nil when QoS is disabled).
func (r *Router) QoSArbiters() []*qos.Arbiter {
	if !r.qosEnabled() {
		return nil
	}
	out := make([]*qos.Arbiter, len(r.workers))
	for i, w := range r.workers {
		out[i] = w.qos
	}
	return out
}

// QoSSnapshot merges the per-shard arbiter snapshots into one fleet-wide
// view. Tenants are disjoint across shards (a controller registers only
// with its owning worker's arbiter), so concatenation is the merge.
func (r *Router) QoSSnapshot(now sim.Time) []qos.TenantSnapshot {
	var out []qos.TenantSnapshot
	for _, w := range r.workers {
		if w.qos != nil {
			out = append(out, w.qos.Snapshot(now)...)
		}
	}
	return out
}

// CollectQoS folds every per-shard arbiter's counters into cs.
func (r *Router) CollectQoS(cs *metrics.CounterSet) {
	for _, w := range r.workers {
		if w.qos != nil {
			w.qos.Collect(cs)
		}
	}
}

// registerTenant enrolls the controller with its owning shard's arbiter.
func (vc *Controller) registerTenant() {
	vc.tenant = vc.w.qos.AddTenant(fmt.Sprintf("vm%d", vc.vm.ID), qos.TenantConfig{})
}

// SetQoS replaces the controller's QoS contract in place (weight, rate
// limits, SLO target). Requires EnableQoS on the router first.
func (vc *Controller) SetQoS(cfg qos.TenantConfig) {
	if vc.w.qos == nil {
		panic("core: SetQoS requires Router.EnableQoS")
	}
	vc.w.qos.Configure(vc.tenant, cfg)
}

// Tenant returns the controller's arbiter state (nil when QoS is
// disabled).
func (vc *Controller) Tenant() *qos.Tenant { return vc.tenant }

// cmdBytes is the payload size the arbiter charges for a command;
// non-I/O commands charge the one-unit minimum.
func cmdBytes(vq *vqState, cmd *nvme.Command) int {
	if !cmd.IsIO() {
		return 0
	}
	return int(uint64(cmd.Blocks()) * uint64(vq.vc.part.BlockSize()))
}

// qosAdmitBatch bounds how many commands one poll round may admit. The
// worker charges a whole round's CPU before any effect lands, so an
// unbounded round would serialize a deep backlog ahead of a freshly
// admitted command and erase the arbiter's interleaving; a small batch is
// the WFQ pacing granularity.
const qosAdmitBatch = 8

// gatherQoS is the arbitrated submission pass: repeatedly scan every
// attached VSQ head, pick the eligible tenant with the smallest virtual
// start tag, and admit its command, until no head is eligible or the
// round's batch is full. Returns the number of commands admitted and the
// backlog left behind in the rings (the worker must keep busy-polling
// while backlog remains, so simulated time advances and buckets refill —
// parking would deadlock the guest against a bucket that can never
// refill).
func (w *worker) gatherQoS(effects *[]func(), work *sim.Duration) (admitted, backlog int) {
	q := w.qos
	now := w.r.env.Now()
	q.Tick(now)
	var cmd nvme.Command
	firstScan := true
	for admitted < qosAdmitBatch {
		var best *vqState
		var bestCmd nvme.Command
		var bestBytes int
		for _, vc := range w.vcs {
			for _, vq := range vc.vqs {
				if !vq.vsq.Peek(&cmd) {
					continue
				}
				nb := cmdBytes(vq, &cmd)
				// Only the round's first scan feeds the Throttled/Deferred
				// counters: later scans revisit the same heads, and counting
				// them again would tally scan attempts, not deferred
				// commands.
				if firstScan {
					if !q.Eligible(vc.tenant, nb, now) {
						continue
					}
				} else if !q.Admissible(vc.tenant, nb, now) {
					continue
				}
				if best == nil || q.Before(vc.tenant, best.vc.tenant) {
					best, bestCmd, bestBytes = vq, cmd, nb
				}
			}
		}
		firstScan = false
		if best == nil {
			break
		}
		best.vsq.Pop(&bestCmd) // consume the admitted head
		vc := best.vc
		vc.outstanding++
		admitted++
		base := q.Serve(vc.tenant, bestBytes, now)
		req := &request{vq: best, gcid: bestCmd.CID(), cmd: bestCmd, t0: now, qosBase: base}
		if vc.promoted {
			*effects = append(*effects, func() { w.directDispatch(req) })
		} else {
			*work += vc.classifyCost(w.r.costs)
			*effects = append(*effects, func() { w.classifyAndRoute(req, HookVSQ, 0) })
		}
	}
	for _, vc := range w.vcs {
		for _, vq := range vc.vqs {
			backlog += int(vq.vsq.Len())
		}
	}
	return admitted, backlog
}

// chargeClass applies the classifier-tagged scheduling class to the
// request's admission charge; runs right after the HookVSQ classification.
func (w *worker) chargeClass(req *request, class qos.Class) {
	if ten := req.vq.vc.tenant; ten != nil {
		w.qos.ChargeClass(ten, req.qosBase, class)
	}
}

// NewQoSClassMap builds the standard per-opcode class policy map for
// class-tagging classifiers: the entry index is the NVMe opcode and the
// first byte of the value is the qos.Class to tag. All opcodes default to
// ClassDefault; SetOpcodeClass installs exceptions.
func NewQoSClassMap() *ebpf.ArrayMap {
	return ebpf.NewArrayMap(8, 256)
}

// SetOpcodeClass installs a class policy for one opcode in a map built by
// NewQoSClassMap.
func SetOpcodeClass(m *ebpf.ArrayMap, op uint8, class qos.Class) {
	m.SetU64(int(op), 0, uint64(class))
}
