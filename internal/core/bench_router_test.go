package core_test

import (
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// BenchmarkRouterHop measures host wall-clock per guest I/O driven through
// the full router fast path (VSQ poll, classification, HQ dispatch, HCQ
// completion) with the classifier on each execution tier. Virtual-time
// behaviour is identical across tiers; this benchmark tracks the
// simulator's own overhead, which the compiled tier exists to cut.
func BenchmarkRouterHop(b *testing.B) {
	for _, tier := range []string{"compiled", "interpreter"} {
		b.Run(tier, func(b *testing.B) {
			r := newRig(1)
			v, vc, disk := r.addVM(1, device.WholeNamespace(r.dev, 1))
			vc.SetInterpreted(tier == "interpreter")
			base, pages, err := v.Mem.AllocBuffer(4096)
			if err != nil {
				b.Fatal(err)
			}
			done := false
			r.env.Go("bench", func(p *sim.Proc) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req := &vm.Req{Op: vm.OpRead, LBA: uint64(i%1024) * 8, Blocks: 8, Buf: base, BufPages: pages}
					if st := vm.SubmitAndWait(p, disk, v.VCPU(0), req); !st.OK() {
						b.Fatalf("io %d failed: %v", i, st)
					}
				}
				b.StopTimer()
				done = true
				r.env.Stop()
			})
			r.env.RunUntil(sim.Time(1 << 62))
			if !done {
				b.Fatal("benchmark did not finish")
			}
		})
	}
}
