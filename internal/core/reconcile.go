package core

import (
	"sort"

	"nvmetro/internal/nvme"
)

// ReconcileAction is the per-command verdict of a supervision reconcile
// sweep over the in-flight notify hops of a failed UIF.
type ReconcileAction int

// Reconcile actions.
const (
	// ReconcileComplete finishes the hop with the decision's status: the
	// storage function declared the command's effect already durable (the
	// other mirror leg carries the data) or wants the guest to retry (a
	// retryable status, chosen when no safe fallback exists).
	ReconcileComplete ReconcileAction = iota
	// ReconcileRequeue re-dispatches the already-mediated command on the
	// fast path and retires the notify hop. Only safe for functions whose
	// commands are idempotent and semantically equivalent on the fast
	// path (a write-through cache, a read-side accelerator) — never for
	// functions that transform data (encryption).
	ReconcileRequeue
)

// ReconcileDecision is one reconcile verdict.
type ReconcileDecision struct {
	Action ReconcileAction
	Status nvme.Status // ReconcileComplete's completion status
}

// ReconcileNotify sweeps every in-flight notify-path hop through decide
// and retires it: the recovery step after the attached UIF crashed or
// wedged, when the commands it was servicing would otherwise be stranded
// forever. The sweep runs as a routing effect on the controller's worker
// (completions and retries flush in the same round); decide is called
// once per hop in dispatch order, and done (optional) receives the number
// of hops reconciled. Safe from any simulation context.
//
// Hops of requests that already completed to the guest are retired
// without consulting decide — there is nothing left to decide. Hook-
// disposition hops are completed (never requeued): replaying a
// classifier continuation out of context could re-trigger routing.
func (vc *Controller) ReconcileNotify(decide func(cmd nvme.Command) ReconcileDecision, done func(n int)) {
	vc.w.post(func() {
		type swept struct {
			tag uint16
			ent ntagEntry
		}
		ents := make([]swept, 0, len(vc.ntags))
		for tag, ent := range vc.ntags {
			ents = append(ents, swept{tag, ent})
		}
		// Dispatch order, tag-broken: map iteration must not leak
		// nondeterminism into completion order.
		sort.Slice(ents, func(i, j int) bool {
			if ents[i].ent.at != ents[j].ent.at {
				return ents[i].ent.at < ents[j].ent.at
			}
			return ents[i].tag < ents[j].tag
		})
		w := vc.w
		for _, s := range ents {
			delete(vc.ntags, s.tag)
			h := s.ent.h
			req := h.req
			if req.completed {
				w.r.NotifyReconciled++
				w.finishHop(h, targetNQ, nvme.SCSuccess)
				continue
			}
			d := decide(req.cmd)
			if d.Action == ReconcileRequeue && h.disp != dispHook {
				w.r.NotifyRequeued++
				nh := hop{req: req, disp: dispComplete}
				req.pending++
				req.waiters++
				w.dispatchHQ(nh)
				w.finishHop(h, targetNQ, nvme.SCSuccess)
				continue
			}
			w.r.NotifyReconciled++
			w.finishHop(h, targetNQ, d.Status)
		}
		if done != nil {
			done(len(ents))
		}
	})
}
