package core

import (
	"nvmetro/internal/nvme"
)

// NotifyQueues is the notify-path endpoint: a submission/completion queue
// pair shared between the router and one userspace I/O function. In the
// real system these rings are mmap()ed file descriptors; here they are the
// same ring structures, with wake-up callbacks standing in for epoll.
//
// The router pushes mediated commands (CID field = notify tag) to the NSQ;
// the UIF pops them, processes request data directly in the VM's memory,
// and pushes a status to the NCQ.
type NotifyQueues struct {
	vc  *Controller
	nsq *nvme.SQ
	ncq *nvme.CQ

	// OnNotify is installed by the UIF framework; the router calls it when
	// new commands are queued (edge-triggered, like an eventfd).
	OnNotify func()
}

// AttachUIF creates the notify queues for this controller with the given
// depth. One attachment per controller; calling again replaces it (the
// "migrate storage functions on the fly" path).
func (vc *Controller) AttachUIF(depth uint32) *NotifyQueues {
	nq := &NotifyQueues{
		vc:  vc,
		nsq: nvme.NewSQ(0, depth),
		ncq: nvme.NewCQ(0, depth),
	}
	vc.nq = nq
	// A notify consumer means the classifier's verdict is about to matter
	// (the usual next step is loading an NQ-routing program): fence the
	// direct mapping now, synchronously, like a classifier hot-swap.
	vc.refreshPromotion()
	return nq
}

// DetachUIF removes the notify attachment.
func (vc *Controller) DetachUIF() {
	vc.nq = nil
	vc.refreshPromotion()
}

func (nq *NotifyQueues) notify() {
	if nq.OnNotify != nil {
		nq.OnNotify()
	}
}

// Mem returns the VM's memory, which the UIF maps to read and write request
// data pages in place (zero-copy, as in the paper).
func (nq *NotifyQueues) Mem() nvme.Memory { return nq.vc.vm.Mem }

// BlockShift returns log2 of the device block size, needed by UIFs to
// interpret command LBA fields.
func (nq *NotifyQueues) BlockShift() uint8 { return nq.vc.part.Dev.Params().LBAShift }

// VMID identifies the VM this attachment serves (UIF processes can serve
// several VMs at once).
func (nq *NotifyQueues) VMID() int { return nq.vc.vm.ID }

// Pop retrieves the next exported command; the returned tag must be passed
// back to Complete. UIF-side API.
func (nq *NotifyQueues) Pop(cmd *nvme.Command) (tag uint16, ok bool) {
	if !nq.nsq.Pop(cmd) {
		return 0, false
	}
	return cmd.CID(), true
}

// Pending reports how many exported commands are waiting.
func (nq *NotifyQueues) Pending() uint32 { return nq.nsq.Len() }

// Complete posts the UIF's result for a tag and nudges the router worker.
// UIF-side API.
func (nq *NotifyQueues) Complete(tag uint16, status nvme.Status) bool {
	if !nq.ncq.Post(tag, 0, 0, status, 0) {
		return false
	}
	nq.vc.w.hint()
	return true
}

// hintRouter is exposed for UIF frameworks that batch completions.
func (nq *NotifyQueues) hintRouter() { nq.vc.w.hint() }
