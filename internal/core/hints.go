package core

import (
	"encoding/binary"

	"nvmetro/internal/ebpf"
)

// HotHints wraps the cache classifier's heat map: LBA-bucket keys to access
// counts, bumped by the classifier on every read and consulted to decide
// whether a read is hot enough for the notify-path cache UIF. The host side
// uses this wrapper to inspect heat and to pre-seed or retire buckets from
// the control plane without touching eBPF byte encoding at call sites.
//
// Keys are little-endian uint64 bucket numbers (LBA >> bucketShift), values
// little-endian uint64 counts — the exact layout the classifier's
// map_lookup_elem/map_update_elem calls operate on.
type HotHints struct {
	m           *ebpf.HashMap
	bucketShift uint8
}

// NewHotHints builds a heat map with room for maxBuckets tracked buckets.
func NewHotHints(bucketShift uint8, maxBuckets int) *HotHints {
	return &HotHints{m: ebpf.NewHashMap(8, 8, maxBuckets), bucketShift: bucketShift}
}

// Map exposes the underlying eBPF map for classifier wiring.
func (h *HotHints) Map() *ebpf.HashMap { return h.m }

// BucketShift returns log2 of the blocks-per-bucket granularity.
func (h *HotHints) BucketShift() uint8 { return h.bucketShift }

// Bucket maps an LBA to its bucket number.
func (h *HotHints) Bucket(lba uint64) uint64 { return lba >> h.bucketShift }

func u64key(v uint64) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], v)
	return k[:]
}

// Heat returns the access count recorded for lba's bucket.
func (h *HotHints) Heat(lba uint64) uint64 {
	v := h.m.Lookup(u64key(h.Bucket(lba)))
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// SetHot forces lba's bucket to the given count — the control-plane override
// to pre-warm a region (count at or above the classifier threshold) or cool
// it (count below).
func (h *HotHints) SetHot(lba uint64, count uint64) {
	var val [8]byte
	binary.LittleEndian.PutUint64(val[:], count)
	// A full map keeps its existing buckets, matching classifier behavior.
	_ = h.m.Update(u64key(h.Bucket(lba)), val[:])
}

// Forget drops lba's bucket so its heat accumulates from zero again, e.g.
// after the cached range was evicted or invalidated.
func (h *HotHints) Forget(lba uint64) { h.m.Delete(u64key(h.Bucket(lba))) }

// Buckets returns the number of tracked buckets.
func (h *HotHints) Buckets() int { return h.m.Len() }
