package core_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

// rig is a single-host test bench: device, router, VMs with NVMetro disks.
type rig struct {
	env    *sim.Env
	cpu    *sim.CPU
	dev    *device.Device
	router *core.Router
	store  *device.MemStore
}

func newRig(workers int) *rig {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 16)
	store := device.NewMemStore(512)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, store)
	var threads []*sim.Thread
	for i := 0; i < workers; i++ {
		threads = append(threads, cpu.ThreadOn(8+i, "router"))
	}
	return &rig{env: env, cpu: cpu, dev: dev, store: store,
		router: core.NewRouter(env, core.DefaultRouterCosts(), threads)}
}

// addVM attaches a VM over the given partition and returns its disk.
func (r *rig) addVM(id int, part device.Partition) (*vm.VM, *core.Controller, *vm.NVMeDisk) {
	v := vm.New(r.env, id, r.cpu, id, 1, 32<<20, vm.DefaultVirtCosts())
	vc := r.router.Attach(v, part)
	disk := vm.NewNVMeDisk(v, vc, 64, vm.DefaultDriverCosts())
	return v, vc, disk
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	r.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; r.env.Stop() })
	r.env.RunUntil(sim.Time(60 * sim.Second))
	if !ok {
		t.Fatal("test did not finish in simulated time")
	}
}

func doIO(p *sim.Proc, v *vm.VM, disk *vm.NVMeDisk, op vm.Op, lba uint64, data []byte) nvme.Status {
	base, pages, err := v.Mem.AllocBuffer(uint32(len(data)))
	if err != nil {
		panic(err)
	}
	if op == vm.OpWrite {
		v.Mem.WriteAt(data, base)
	}
	r := &vm.Req{Op: op, LBA: lba, Blocks: uint32(len(data)) / 512, Buf: base, BufPages: pages}
	st := vm.SubmitAndWait(p, disk, v.VCPU(0), r)
	if op == vm.OpRead && st.OK() {
		v.Mem.ReadAt(data, base)
	}
	return st
}

func TestFastPathRoundTrip(t *testing.T) {
	r := newRig(1)
	v, _, disk := r.addVM(0, device.WholeNamespace(r.dev, 1))
	r.run(t, func(p *sim.Proc) {
		src := bytes.Repeat([]byte{0xaa, 0x55}, 2048)
		if st := doIO(p, v, disk, vm.OpWrite, 10, src); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		got := make([]byte, 4096)
		if st := doIO(p, v, disk, vm.OpRead, 10, got); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(src, got) {
			t.Fatal("data mismatch through NVMetro fast path")
		}
	})
	if r.router.FastPath == 0 || r.router.Classifications == 0 {
		t.Fatal("router did not classify/route")
	}
}

func TestPartitionTranslationAndIsolation(t *testing.T) {
	r := newRig(1)
	parts := device.Carve(r.dev, 1, 4)
	v1, vc1, d1 := r.addVM(1, parts[1])
	v2, vc2, d2 := r.addVM(2, parts[2])
	p1, _ := storfn.PartitionClassifier(parts[1])
	p2, _ := storfn.PartitionClassifier(parts[2])
	if err := vc1.LoadClassifier(p1); err != nil {
		t.Fatal(err)
	}
	if err := vc2.LoadClassifier(p2); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		a := bytes.Repeat([]byte{0x11}, 512)
		b := bytes.Repeat([]byte{0x22}, 512)
		if st := doIO(p, v1, d1, vm.OpWrite, 5, a); !st.OK() {
			t.Fatalf("vm1 write: %v", st)
		}
		if st := doIO(p, v2, d2, vm.OpWrite, 5, b); !st.OK() {
			t.Fatalf("vm2 write: %v", st)
		}
		// Same guest LBA, different device locations.
		got := make([]byte, 512)
		if st := doIO(p, v1, d1, vm.OpRead, 5, got); !st.OK() || !bytes.Equal(got, a) {
			t.Fatalf("vm1 readback: %v", st)
		}
		if st := doIO(p, v2, d2, vm.OpRead, 5, got); !st.OK() || !bytes.Equal(got, b) {
			t.Fatalf("vm2 readback: %v", st)
		}
		// Device-level check: data landed at translated LBAs.
		r.store.ReadBlocks(parts[1].Start+5, got)
		if !bytes.Equal(got, a) {
			t.Fatal("vm1 data not at translated LBA")
		}
		// Out-of-partition access is rejected by the classifier.
		if st := doIO(p, v1, d1, vm.OpRead, parts[1].Blocks-1+2, make([]byte, 1024)); st != nvme.SCLBAOutOfRange {
			t.Fatalf("oob status: %v", st)
		}
	})
}

// fakeUIF polls the notify queues and completes everything successfully,
// recording what it saw.
type fakeUIF struct {
	nq     *core.NotifyQueues
	seen   []nvme.Command
	status nvme.Status
	delay  sim.Duration
}

func attachFakeUIF(env *sim.Env, vc *core.Controller) *fakeUIF {
	return attachFakeUIFDepth(env, vc, 256)
}

// attachFakeUIFDepth is attachFakeUIF with a caller-chosen notify queue
// depth; backpressure tests use shallow queues to force NSQ-full retries.
func attachFakeUIFDepth(env *sim.Env, vc *core.Controller, depth uint32) *fakeUIF {
	u := &fakeUIF{nq: vc.AttachUIF(depth)}
	wake := sim.NewCond(env)
	u.nq.OnNotify = func() { wake.Signal(nil) }
	env.Go("fake-uif", func(p *sim.Proc) {
		var cmd nvme.Command
		for {
			tag, ok := u.nq.Pop(&cmd)
			if !ok {
				wake.Wait()
				continue
			}
			u.seen = append(u.seen, cmd)
			if u.delay > 0 {
				p.Sleep(u.delay)
			}
			u.nq.Complete(tag, u.status)
		}
	})
	return u
}

func TestNotifyPathEncryptorRouting(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.EncryptorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	u := attachFakeUIF(r.env, vc)
	r.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{7}, 512)
		if st := doIO(p, v, disk, vm.OpWrite, 3, data); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// Writes go only to the UIF (it persists ciphertext itself).
		if len(u.seen) != 1 || u.seen[0].Opcode() != nvme.OpWrite {
			t.Fatalf("UIF saw %v", u.seen)
		}
		devWrites := r.dev.Writes
		if devWrites != 0 {
			t.Fatalf("device saw %d writes; encryptor writes bypass HQ", devWrites)
		}
		// Reads hit the device first, then the UIF (decrypt hook).
		if st := doIO(p, v, disk, vm.OpRead, 3, data); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if len(u.seen) != 2 || u.seen[1].Opcode() != nvme.OpRead {
			t.Fatalf("UIF saw %v", u.seen)
		}
		if r.dev.Reads != 1 {
			t.Fatalf("device reads %d, want 1", r.dev.Reads)
		}
	})
	if r.router.NotifyPath != 2 {
		t.Fatalf("notify path count %d", r.router.NotifyPath)
	}
}

func TestMulticastSynchronousMirror(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.ReplicatorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	u := attachFakeUIF(r.env, vc)
	u.delay = 500 * sim.Microsecond // remote write is slow
	r.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{9}, 512)
		start := p.Now()
		if st := doIO(p, v, disk, vm.OpWrite, 4, data); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		elapsed := p.Now().Sub(start)
		// Completion must wait for the slower (remote) leg.
		if elapsed < u.delay {
			t.Fatalf("write completed in %v, before remote leg (%v)", elapsed, u.delay)
		}
		if len(u.seen) != 1 || r.dev.Writes != 1 {
			t.Fatalf("uif=%d dev=%d; both legs must receive the write", len(u.seen), r.dev.Writes)
		}
		// Reads are served locally only.
		if st := doIO(p, v, disk, vm.OpRead, 4, data); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if len(u.seen) != 1 {
			t.Fatal("read leaked to UIF")
		}
	})
}

func TestUIFErrorPropagates(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.EncryptorClassifier(part)
	vc.LoadClassifier(prog)
	u := attachFakeUIF(r.env, vc)
	u.status = nvme.SCInternal
	r.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 0, make([]byte, 512)); st != nvme.SCInternal {
			t.Fatalf("status %v, want internal error from UIF", st)
		}
	})
}

func TestNotifyWithoutUIFFails(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.EncryptorClassifier(part)
	vc.LoadClassifier(prog)
	r.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 0, make([]byte, 512)); st != nvme.SCInternal {
			t.Fatalf("status %v", st)
		}
	})
}

// fakeKernelTarget completes commands after a fixed delay.
type fakeKernelTarget struct {
	env   *sim.Env
	delay sim.Duration
	count int
}

func (k *fakeKernelTarget) Submit(cmd nvme.Command, mem nvme.Memory, done func(nvme.Status)) {
	k.count++
	k.env.After(k.delay, func() { done(nvme.SCSuccess) })
}

func TestKernelPath(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	kt := &fakeKernelTarget{env: r.env, delay: 30 * sim.Microsecond}
	vc.SetKernelTarget(kt)
	prog := ebpf.NewBuilder().
		MovImm64(ebpf.R0, core.ActSendKQ|core.ActWillCompleteKQ).
		Exit().MustProgram("kernel-only")
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 0, make([]byte, 512)); !st.OK() {
			t.Fatalf("kernel write: %v", st)
		}
	})
	if kt.count != 1 || r.router.KernelPath != 1 {
		t.Fatalf("kernel path not used: %d/%d", kt.count, r.router.KernelPath)
	}
}

func TestRestrictRejectsUntranslatedOOB(t *testing.T) {
	r := newRig(1)
	parts := device.Carve(r.dev, 1, 2)
	// Default classifier does NOT translate; restrict must catch guest
	// LBAs below the partition start.
	v, _, disk := r.addVM(0, parts[1])
	r.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 0, make([]byte, 512)); st != nvme.SCLBAOutOfRange {
			t.Fatalf("restrict: %v", st)
		}
	})
}

func TestClassifierRejectedByVerifier(t *testing.T) {
	r := newRig(1)
	_, vc, _ := r.addVM(0, device.WholeNamespace(r.dev, 1))
	bad := ebpf.NewBuilder().
		Load(ebpf.SizeW, ebpf.R0, ebpf.R1, core.CtxSize). // out of ctx bounds
		Exit().MustProgram("bad")
	if err := vc.LoadClassifier(bad); err == nil {
		t.Fatal("verifier must reject out-of-bounds classifier")
	}
}

func TestLiveClassifierSwap(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	u := attachFakeUIF(r.env, vc)
	r.run(t, func(p *sim.Proc) {
		// Phase 1: default classifier, fast path.
		if st := doIO(p, v, disk, vm.OpWrite, 0, make([]byte, 512)); !st.OK() {
			t.Fatal(st)
		}
		if len(u.seen) != 0 {
			t.Fatal("UIF used before swap")
		}
		// Phase 2: swap in the encryptor without restarting anything.
		prog, _ := storfn.EncryptorClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			t.Fatal(err)
		}
		if st := doIO(p, v, disk, vm.OpWrite, 0, make([]byte, 512)); !st.OK() {
			t.Fatal(st)
		}
		if len(u.seen) != 1 {
			t.Fatal("UIF not used after live swap")
		}
	})
}

func TestSharedWorkerManyVMs(t *testing.T) {
	r := newRig(1) // single worker serves all VMs (Fig. 5 setup)
	parts := device.Carve(r.dev, 1, 4)
	type gv struct {
		v    *vm.VM
		d    *vm.NVMeDisk
		done bool
	}
	var vms []*gv
	for i := 0; i < 4; i++ {
		v, vc, d := r.addVM(i, parts[i])
		prog, _ := storfn.PartitionClassifier(parts[i])
		if err := vc.LoadClassifier(prog); err != nil {
			t.Fatal(err)
		}
		vms = append(vms, &gv{v: v, d: d})
	}
	for _, g := range vms {
		g := g
		r.env.Go("load", func(p *sim.Proc) {
			data := make([]byte, 512)
			for i := 0; i < 50; i++ {
				if st := doIO(p, g.v, g.d, vm.OpWrite, uint64(i), data); !st.OK() {
					t.Errorf("vm write: %v", st)
					break
				}
			}
			g.done = true
		})
	}
	r.env.RunUntil(sim.Time(5 * sim.Second))
	for i, g := range vms {
		if !g.done {
			t.Fatalf("vm %d starved under shared worker", i)
		}
	}
	r.env.Close()
}

func TestWorkerParksWhenIdle(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, _, disk := r.addVM(0, part)
	var busyDuring, busyIdle sim.Duration
	r.run(t, func(p *sim.Proc) {
		snap := r.cpu.Snapshot()
		for i := 0; i < 20; i++ {
			doIO(p, v, disk, vm.OpRead, uint64(i), make([]byte, 512))
		}
		busyDuring = r.cpu.Since(snap).ByTag["router"]
		snap = r.cpu.Snapshot()
		p.Sleep(10 * sim.Millisecond) // idle period
		busyIdle = r.cpu.Since(snap).ByTag["router"]
	})
	if busyDuring == 0 {
		t.Fatal("router burned no CPU under load")
	}
	if busyIdle > busyDuring/10 {
		t.Fatalf("router burned %v while idle (vs %v under load); parking broken", busyIdle, busyDuring)
	}
}

func TestRouterLatencyFastPath(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, _, disk := r.addVM(0, part)
	r.run(t, func(p *sim.Proc) {
		var total sim.Duration
		const n = 50
		data := make([]byte, 512)
		for i := 0; i < n; i++ {
			start := p.Now()
			if st := doIO(p, v, disk, vm.OpRead, uint64(i), data); !st.OK() {
				t.Fatal(st)
			}
			total += p.Now().Sub(start)
		}
		avg := total / n
		// Device ~80us + router overhead a few us: expect 80-92us.
		if avg < 78*sim.Microsecond || avg > 95*sim.Microsecond {
			t.Fatalf("QD1 fast-path latency %v", avg)
		}
	})
}
