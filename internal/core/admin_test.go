package core_test

import (
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
)

// adminRig builds a controller without running workloads.
func adminRig(t *testing.T) (*rig, *core.Controller) {
	t.Helper()
	r := newRig(1)
	_, vc, _ := r.addVM(0, device.Carve(r.dev, 1, 4)[2])
	return r, vc
}

func adminCmd(op uint8, cdw10 uint32, nsid uint32, prp1 uint64) nvme.Command {
	var c nvme.Command
	c.SetOpcode(op)
	c.SetNSID(nsid)
	c.SetCDW(10, cdw10)
	c.SetPRP1(prp1)
	return c
}

func TestAdminIdentifyController(t *testing.T) {
	r, vc := adminRig(t)
	defer r.env.Close()
	mem := vc.VM().Mem
	page := mem.MustAllocPages(1)
	cmd := adminCmd(nvme.AdminIdentify, nvme.CNSController, 0, page)
	st, _ := vc.HandleAdmin(&cmd, mem)
	if !st.OK() {
		t.Fatalf("identify: %v", st)
	}
	buf := make([]byte, nvme.IdentifyPageSize)
	mem.ReadAt(buf, page)
	info := nvme.ParseControllerInfo(buf)
	if info.Model != "NVMetro Virtual NVMe Controller" || info.SQES != 6 || info.CQES != 4 {
		t.Fatalf("controller info %+v", info)
	}
}

func TestAdminIdentifyNamespaceReflectsPartition(t *testing.T) {
	r, vc := adminRig(t)
	defer r.env.Close()
	mem := vc.VM().Mem
	page := mem.MustAllocPages(1)
	cmd := adminCmd(nvme.AdminIdentify, nvme.CNSNamespace, 1, page)
	st, _ := vc.HandleAdmin(&cmd, mem)
	if !st.OK() {
		t.Fatalf("identify ns: %v", st)
	}
	buf := make([]byte, nvme.IdentifyPageSize)
	mem.ReadAt(buf, page)
	info := nvme.ParseNamespaceInfo(buf)
	if info.Size != vc.Partition().Blocks {
		t.Fatalf("guest sees %d blocks, partition has %d", info.Size, vc.Partition().Blocks)
	}
	// Wrong NSID fails cleanly.
	bad := adminCmd(nvme.AdminIdentify, nvme.CNSNamespace, 9, page)
	if st, _ := vc.HandleAdmin(&bad, mem); st != nvme.SCInvalidNS {
		t.Fatalf("bad nsid: %v", st)
	}
}

func TestAdminFeatures(t *testing.T) {
	r, vc := adminRig(t)
	defer r.env.Close()
	mem := vc.VM().Mem
	// Set Features: Number of Queues — grant is clamped.
	set := adminCmd(nvme.AdminSetFeature, core.FeatNumQueues, 0, 0)
	set.SetCDW(11, 0xffff_ffff)
	st, res := vc.HandleAdmin(&set, mem)
	if !st.OK() || res&0xffff != 63 || res>>16 != 63 {
		t.Fatalf("set features: %v result %#x", st, res)
	}
	get := adminCmd(nvme.AdminGetFeature, core.FeatNumQueues, 0, 0)
	st, res = vc.HandleAdmin(&get, mem)
	if !st.OK() || res&0xffff != 63 {
		t.Fatalf("get features: %v %#x", st, res)
	}
	unknown := adminCmd(nvme.AdminGetFeature, 0x7f, 0, 0)
	if st, _ := vc.HandleAdmin(&unknown, mem); st != nvme.SCInvalidField {
		t.Fatalf("unknown feature: %v", st)
	}
}

func TestAdminMiscCommands(t *testing.T) {
	r, vc := adminRig(t)
	defer r.env.Close()
	mem := vc.VM().Mem
	page := mem.MustAllocPages(1)

	log := adminCmd(nvme.AdminGetLogPage, 0x3f<<16|0x01, 0, page)
	if st, _ := vc.HandleAdmin(&log, mem); !st.OK() {
		t.Fatalf("get log page: %v", st)
	}
	abort := adminCmd(nvme.AdminAbort, 0, 0, 0)
	if st, res := vc.HandleAdmin(&abort, mem); !st.OK() || res&1 != 1 {
		t.Fatalf("abort: %v %d", st, res)
	}
	// Raw queue management is steered to the in-memory API.
	csq := adminCmd(nvme.AdminCreateSQ, 0, 0, 0)
	if st, _ := vc.HandleAdmin(&csq, mem); st != nvme.SCInvalidField {
		t.Fatalf("create sq: %v", st)
	}
	var vendor nvme.Command
	vendor.SetOpcode(0xc0)
	if st, _ := vc.HandleAdmin(&vendor, mem); st != nvme.SCInvalidOpcode {
		t.Fatalf("vendor admin: %v", st)
	}
}
