package core_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

func TestMulticastManyLargeWrites(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.ReplicatorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	u := attachFakeUIF(r.env, vc)
	u.delay = 30 * sim.Microsecond
	r.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{9}, 8192)
		for i := 0; i < 40; i++ {
			if st := doIO(p, v, disk, vm.OpWrite, uint64(i)*16, data); !st.OK() {
				t.Fatalf("write %d: %v", i, st)
			}
		}
	})
	if len(u.seen) != 40 || r.dev.Writes != 40 {
		t.Fatalf("uif=%d dev=%d", len(u.seen), r.dev.Writes)
	}
}
