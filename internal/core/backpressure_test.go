package core_test

import (
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
)

// These tests hold the notify queues at a shallow depth with a slow UIF
// consumer so the router's dispatchNQ path hits NSQ-full on most rounds and
// must defer through the retry list. Every command still has to complete
// exactly once with its correct generation-stamped CID (a mismatched tag
// would either panic the guest driver on an idle CID or show up as a stale
// completion), and the worker must keep making progress rather than stall
// (r.run fails the test if simulated time runs out).

// TestNotifyBackpressureSustained drives 200 concurrent writes through a
// notify-only classifier into a depth-4 NSQ.
func TestNotifyBackpressureSustained(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.EncryptorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	u := attachFakeUIFDepth(r.env, vc, 4)
	u.delay = 20 * sim.Microsecond

	const qd, count = 8, 25
	r.run(t, func(p *sim.Proc) {
		pump(r, v, disk, qd, count)()
	})

	if len(u.seen) != qd*count {
		t.Fatalf("UIF saw %d commands, want %d (each exactly once)", len(u.seen), qd*count)
	}
	for i, c := range u.seen {
		if c.Opcode() != nvme.OpWrite {
			t.Fatalf("seen[%d] opcode %#x, want write", i, c.Opcode())
		}
	}
	if r.router.Backpressure == 0 {
		t.Fatal("depth-4 NSQ under 8-deep load never reported backpressure")
	}
	if r.router.StaleComps != 0 {
		t.Fatalf("%d stale completions: retries broke tag bookkeeping", r.router.StaleComps)
	}
	if r.router.GuestErrors != 0 {
		t.Fatalf("%d guest-visible errors under backpressure", r.router.GuestErrors)
	}
	// NotifyPath counts dispatch attempts, so sustained pressure shows as
	// many more attempts than commands.
	if r.router.NotifyPath <= qd*count {
		t.Fatalf("notify path attempts %d, want > %d (no retries happened)", r.router.NotifyPath, qd*count)
	}
}

// TestMulticastBackpressureSustained runs the two-leg replicator under the
// same NSQ pressure: the fast-path leg keeps completing while the notify
// leg backs up, and the joined completion must still be correct for every
// command.
func TestMulticastBackpressureSustained(t *testing.T) {
	r := newRig(1)
	part := device.WholeNamespace(r.dev, 1)
	v, vc, disk := r.addVM(0, part)
	prog, _ := storfn.ReplicatorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	u := attachFakeUIFDepth(r.env, vc, 4)
	u.delay = 20 * sim.Microsecond

	const qd, count = 8, 25
	var elapsed sim.Duration
	r.run(t, func(p *sim.Proc) {
		start := p.Now()
		pump(r, v, disk, qd, count)()
		elapsed = p.Now().Sub(start)
	})

	if len(u.seen) != qd*count {
		t.Fatalf("UIF saw %d commands, want %d (each exactly once)", len(u.seen), qd*count)
	}
	if got := r.dev.Writes; got != qd*count {
		t.Fatalf("device saw %d writes, want %d (local leg must not be dropped)", got, qd*count)
	}
	// The single UIF consumer serializes the remote legs, so the run cannot
	// finish faster than the consumer drains it; finishing at all within
	// r.run's deadline is the no-stall check.
	if min := sim.Duration(qd*count) * u.delay; elapsed < min {
		t.Fatalf("elapsed %v < %v: completions did not wait for the remote leg", elapsed, min)
	}
	if r.router.Backpressure == 0 {
		t.Fatal("depth-4 NSQ under 8-deep load never reported backpressure")
	}
	if r.router.StaleComps != 0 {
		t.Fatalf("%d stale completions: retries broke tag bookkeeping", r.router.StaleComps)
	}
	if r.router.GuestErrors != 0 {
		t.Fatalf("%d guest-visible errors under backpressure", r.router.GuestErrors)
	}
}
