package core

import "testing"

func TestHotHintsHeatAndBuckets(t *testing.T) {
	h := NewHotHints(3, 16) // 8-block buckets
	if h.Heat(0) != 0 {
		t.Fatal("untracked bucket should read 0")
	}
	h.SetHot(5, 7) // bucket 0
	if h.Heat(0) != 7 || h.Heat(7) != 7 {
		t.Fatal("all LBAs of a bucket share its heat")
	}
	if h.Heat(8) != 0 {
		t.Fatal("next bucket must be independent")
	}
	if h.Bucket(17) != 2 {
		t.Fatalf("bucket(17)=%d, want 2", h.Bucket(17))
	}
	h.SetHot(16, 3)
	if h.Buckets() != 2 {
		t.Fatalf("buckets=%d, want 2", h.Buckets())
	}
	h.Forget(5)
	if h.Heat(0) != 0 || h.Buckets() != 1 {
		t.Fatal("forget did not drop the bucket")
	}
}

func TestHotHintsFullMapKeepsExisting(t *testing.T) {
	h := NewHotHints(0, 2)
	h.SetHot(1, 5)
	h.SetHot(2, 5)
	h.SetHot(3, 9) // map full: dropped, like the classifier's update
	if h.Heat(3) != 0 {
		t.Fatal("full map admitted a new bucket")
	}
	h.SetHot(1, 9) // existing bucket still updatable
	if h.Heat(1) != 9 {
		t.Fatal("full map refused an existing-bucket update")
	}
}
