package fio_test

import (
	"testing"

	"nvmetro/internal/fio"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// instantDisk completes every request after a fixed virtual latency without
// touching a device — isolating the generator's own behaviour.
type instantDisk struct {
	env     *sim.Env
	latency sim.Duration
	reads   int
	writes  int
	lbas    []uint64
}

func (d *instantDisk) BlockSize() uint32 { return 512 }
func (d *instantDisk) Blocks() uint64    { return 1 << 30 }
func (d *instantDisk) Submit(p *sim.Proc, vcpu *sim.Thread, r *vm.Req) {
	r.Submitted = p.Now()
	if r.Op == vm.OpRead {
		d.reads++
	} else {
		d.writes++
	}
	d.lbas = append(d.lbas, r.LBA)
	d.env.After(d.latency, func() { r.Complete(d.env, nvme.SCSuccess) })
}

func bed() (*sim.Env, *sim.CPU, *vm.VM) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	v := vm.New(env, 0, cpu, 0, 2, 256<<20, vm.DefaultVirtCosts())
	return env, cpu, v
}

func TestClosedLoopThroughputMatchesLatency(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 100 * sim.Microsecond}
	r := fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1, Warmup: sim.Millisecond, Duration: 50 * sim.Millisecond})
	// QD1 at 100us/IO: ~10k IOPS.
	if got := r.IOPS(); got < 9000 || got > 10100 {
		t.Fatalf("QD1 IOPS %f, want ~10000", got)
	}
	if med := r.Lat.Median(); med < 99000 || med > 110000 {
		t.Fatalf("median %d, want ~100us", med)
	}
}

func TestQDScalesThroughput(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 100 * sim.Microsecond}
	r := fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 16, Warmup: sim.Millisecond, Duration: 20 * sim.Millisecond})
	if got := r.IOPS(); got < 140000 {
		t.Fatalf("QD16 IOPS %f, want ~160k", got)
	}
}

func TestRateLimitedMode(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 20 * sim.Microsecond}
	r := fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 8, RateIOPS: 10000,
			Warmup: sim.Millisecond, Duration: 50 * sim.Millisecond})
	if got := r.IOPS(); got < 9000 || got > 11000 {
		t.Fatalf("rate-limited IOPS %f, want ~10000", got)
	}
	// Latency must reflect service time, not the rate interval.
	if med := r.Lat.Median(); med > 30000 {
		t.Fatalf("median %d at open-loop rate, want ~20us", med)
	}
}

func TestMixedModeSplitsOps(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRW, BlockSize: 512, QD: 4, Warmup: 0, Duration: 20 * sim.Millisecond})
	total := d.reads + d.writes
	frac := float64(d.reads) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction %.2f, want ~0.5", frac)
	}
}

func TestSequentialModeAdvances(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.SeqRead, BlockSize: 4096, QD: 1, Warmup: 0, Duration: 5 * sim.Millisecond})
	if len(d.lbas) < 10 {
		t.Fatal("too few ops")
	}
	for i := 1; i < 10; i++ {
		if d.lbas[i] != d.lbas[i-1]+8 {
			t.Fatalf("not sequential at %d: %d -> %d", i, d.lbas[i-1], d.lbas[i])
		}
	}
}

func TestJobsGetDisjointRegions(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	d2 := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	fio.Run(env, cpu, []fio.Target{
		{Disk: d, VM: v, VCPU: v.VCPU(0)},
		{Disk: d2, VM: v, VCPU: v.VCPU(1)},
	}, fio.Config{Mode: fio.SeqWrite, BlockSize: 4096, QD: 1, Warmup: 0, Duration: 2 * sim.Millisecond})
	if d.lbas[0] == d2.lbas[0] {
		t.Fatal("jobs share a region start")
	}
}

func TestWorkSetBoundsOffsets(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 5 * sim.Microsecond}
	ws := uint64(1 << 20) // 1 MiB = 2048 blocks
	fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 4, WorkSet: ws,
			Warmup: 0, Duration: 5 * sim.Millisecond})
	for _, lba := range d.lbas {
		if lba >= ws/512 {
			t.Fatalf("offset %d beyond working set", lba)
		}
	}
}

func TestZipfSkewsOffsets(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 5 * sim.Microsecond}
	ws := uint64(4 << 20) // 8192 blocks
	fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 8, WorkSet: ws, Zipf: 1.2,
			Warmup: 0, Duration: 10 * sim.Millisecond})
	if len(d.lbas) < 1000 {
		t.Fatalf("only %d IOs issued", len(d.lbas))
	}
	// A zipf(1.2) stream concentrates mass at low slots: a large share of
	// all accesses must land in the first 1% of the region, and none may
	// escape it.
	hot, total := 0, 0
	for _, lba := range d.lbas {
		if lba >= ws/512 {
			t.Fatalf("offset %d beyond working set", lba)
		}
		total++
		if lba < ws/512/100 {
			hot++
		}
	}
	if frac := float64(hot) / float64(total); frac < 0.5 {
		t.Fatalf("zipf skew too weak: %.2f of accesses in the hottest 1%%", frac)
	}
}

func TestSharedOffsetsOverlapRegions(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	d2 := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	fio.Run(env, cpu, []fio.Target{
		{Disk: d, VM: v, VCPU: v.VCPU(0)},
		{Disk: d2, VM: v, VCPU: v.VCPU(1)},
	}, fio.Config{Mode: fio.SeqRead, BlockSize: 4096, QD: 1, SharedOffsets: true,
		Warmup: 0, Duration: 2 * sim.Millisecond})
	// Both jobs walk the same guest offsets of their own disks: identical
	// region starts, unlike the disjoint default.
	if d.lbas[0] != d2.lbas[0] {
		t.Fatalf("shared-offset jobs diverge at start: %d vs %d", d.lbas[0], d2.lbas[0])
	}
}

func TestWritePctSkewsMix(t *testing.T) {
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}},
		fio.Config{Mode: fio.RandRW, BlockSize: 512, QD: 4, WritePct: 5,
			Warmup: 0, Duration: 20 * sim.Millisecond})
	total := d.reads + d.writes
	frac := float64(d.writes) / float64(total)
	if frac < 0.01 || frac > 0.12 {
		t.Fatalf("write fraction %.3f, want ~0.05", frac)
	}
	if d.writes == 0 {
		t.Fatal("no writes at all")
	}
}

func TestBootProfileShape(t *testing.T) {
	cfg := fio.BootProfile(0, 10*sim.Millisecond)
	if !cfg.SharedOffsets || cfg.WritePct == 0 || cfg.Zipf <= 1 {
		t.Fatalf("boot profile misshapen: %+v", cfg)
	}
	env, cpu, v := bed()
	defer env.Close()
	d := &instantDisk{env: env, latency: 10 * sim.Microsecond}
	fio.Run(env, cpu, []fio.Target{{Disk: d, VM: v, VCPU: v.VCPU(0)}}, cfg)
	if d.reads == 0 || d.reads < d.writes {
		t.Fatalf("boot profile not read-mostly: %d reads / %d writes", d.reads, d.writes)
	}
}
