// Package fio reproduces the fio benchmark harness used in the paper's
// evaluation: random/sequential read/write/mixed workloads at configurable
// block sizes, queue depths and job counts, in closed-loop (throughput) or
// fixed-rate (latency) mode, with warmup, latency histograms and CPU
// accounting over the measurement window.
package fio

import (
	"fmt"
	"math/rand"

	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// Mode is the workload pattern (fio's rw= parameter).
type Mode int

// Workload modes, matching Table II of the paper.
const (
	RandRead Mode = iota
	RandWrite
	RandRW
	SeqRead
	SeqWrite
	SeqRW
)

func (m Mode) String() string {
	switch m {
	case RandRead:
		return "RR"
	case RandWrite:
		return "RW"
	case RandRW:
		return "RRW"
	case SeqRead:
		return "SR"
	case SeqWrite:
		return "SW"
	case SeqRW:
		return "SRW"
	}
	return "?"
}

// Random reports whether offsets are random.
func (m Mode) Random() bool { return m <= RandRW }

// Config is one benchmark configuration.
type Config struct {
	Mode      Mode
	BlockSize uint32       // bytes per I/O
	QD        int          // iodepth per job
	RateIOPS  int          // fixed submission rate per job (0 = closed loop)
	Warmup    sim.Duration // discarded ramp-up
	Duration  sim.Duration // measurement window
	WorkSet   uint64       // bytes of device addressed per job (0 = 1 GiB)
	// Zipf skews random offsets with a zipfian distribution of parameter
	// s (> 1; fio's random_distribution=zipf:s). 0 keeps uniform offsets.
	// Low slot numbers are hottest, so the hot set sits at region start.
	Zipf float64
	// SharedOffsets makes every job address the same region (the first
	// WorkSet bytes of its disk) instead of splitting the region between
	// jobs — the boot-storm shape, where each tenant's disk is a clone of
	// one image and tenants read the same guest offsets.
	SharedOffsets bool
	// WritePct overrides the read/write split of the RandRW/SeqRW modes:
	// the percentage of operations that are writes (0 keeps the default
	// 50/50; RandRead/RandWrite-style modes ignore it).
	WritePct int
}

// BootProfile is the read-mostly boot-storm workload: every tenant walks
// the same guest offsets of its cloned image with a zipfian hot set (boot
// files), a small fraction of writes (logs, state) providing the CoW
// divergence, at 4 KiB with a modest queue depth.
func BootProfile(warmup, duration sim.Duration) Config {
	return Config{
		Mode:          RandRW,
		BlockSize:     4096,
		QD:            4,
		Warmup:        warmup,
		Duration:      duration,
		Zipf:          1.2,
		SharedOffsets: true,
		WritePct:      5,
	}
}

func (c Config) String() string {
	return fmt.Sprintf("bs=%d %v qd=%d", c.BlockSize, c.Mode, c.QD)
}

// Target is one fio job's placement: a disk as seen by a VM's vCPU.
type Target struct {
	Disk vm.Disk
	VM   *vm.VM
	VCPU *sim.Thread
}

// Result aggregates a run.
type Result struct {
	metrics.Summary
	CPU     sim.CPUUsage
	PerJob  []metrics.Summary
	Errors  uint64
	Configs Config
}

// job is one fio worker.
type job struct {
	cfg      Config
	t        Target
	env      *sim.Env
	idx      int
	regionLB uint64 // region start, in blocks
	regionNB uint64 // region size, in blocks
	seqCur   uint64
	zipf     *rand.Zipf

	inflight int
	comp     *sim.Cond
	measFrom sim.Time
	measTo   sim.Time

	ops    metrics.Counter
	bytes  metrics.Counter
	errors metrics.Counter
	lat    *metrics.Histogram

	bufs  []uint64
	pages [][]uint64
	stop  bool
}

// Run executes cfg with one job per target, returning aggregate results.
// It must be called from outside process context (it drives env itself).
func Run(env *sim.Env, cpu *sim.CPU, targets []Target, cfg Config) Result {
	return RunMixed(env, cpu, []Group{{Targets: targets, Cfg: cfg}})[0]
}

// Group pairs one set of targets with its own workload configuration for a
// mixed run (e.g. a rate-gated latency-probe victim alongside a closed-loop
// aggressor).
type Group struct {
	Name    string
	Targets []Target
	Cfg     Config
}

// RunMixed executes several groups concurrently over one shared measurement
// window and returns one aggregate Result per group, in order. The warmup
// and duration are taken from the first group's config and applied to all;
// the CPU usage reported is the whole host's over the window, identical in
// every Result. Jobs within a group split the addressable region between
// themselves; groups are expected to target disjoint disks.
func RunMixed(env *sim.Env, cpu *sim.CPU, groups []Group) []Result {
	start := env.Now()
	measFrom := start.Add(groups[0].Cfg.Warmup)
	measTo := measFrom.Add(groups[0].Cfg.Duration)
	window := groups[0].Cfg.Duration

	idx := 0
	jobsPer := make([][]*job, len(groups))
	for gi := range groups {
		cfg := groups[gi].Cfg
		if cfg.WorkSet == 0 {
			cfg.WorkSet = 1 << 30
		}
		targets := groups[gi].Targets
		for i, t := range targets {
			blocksPer := cfg.WorkSet / uint64(t.Disk.BlockSize())
			total := t.Disk.Blocks()
			regionLB := uint64(i) * blocksPer
			if cfg.SharedOffsets {
				// Every job addresses the same leading extent of its own
				// disk (tenant disks are clones of one image).
				if blocksPer > total {
					blocksPer = total
				}
				regionLB = 0
			} else if blocksPer*uint64(len(targets)) > total {
				blocksPer = total / uint64(len(targets))
				regionLB = uint64(i) * blocksPer
			}
			j := &job{
				cfg: cfg, t: t, env: env, idx: idx,
				regionLB: regionLB,
				regionNB: blocksPer,
				comp:     sim.NewCond(env),
				measFrom: measFrom,
				measTo:   measTo,
				lat:      metrics.NewHistogram(),
			}
			// Preallocate one guest buffer per queue slot.
			for s := 0; s < cfg.QD; s++ {
				base, pages, err := t.VM.Mem.AllocBuffer(cfg.BlockSize)
				if err != nil {
					panic(err)
				}
				// Non-zero payload so encryption paths work on real data.
				fill := make([]byte, cfg.BlockSize)
				for k := range fill {
					fill[k] = byte(k*7 + i + s)
				}
				t.VM.Mem.WriteAt(fill, base)
				j.bufs = append(j.bufs, base)
				j.pages = append(j.pages, pages)
			}
			jobsPer[gi] = append(jobsPer[gi], j)
			env.Go(fmt.Sprintf("fio-job%d", idx), j.run)
			idx++
		}
	}

	env.RunUntil(measFrom)
	snap := cpu.Snapshot()
	env.RunUntil(measTo)
	usage := cpu.Since(snap)

	out := make([]Result, len(groups))
	for gi, jobs := range jobsPer {
		res := Result{Configs: groups[gi].Cfg, CPU: usage}
		res.Lat = metrics.NewHistogram()
		res.WindowSec = window.Seconds()
		for _, j := range jobs {
			j.stop = true
			s := metrics.Summary{Ops: j.ops.Value(), Bytes: j.bytes.Value(), WindowSec: window.Seconds(), Lat: j.lat}
			res.PerJob = append(res.PerJob, s)
			res.Ops += s.Ops
			res.Bytes += s.Bytes
			res.Errors += j.errors.Value()
			res.Lat.Merge(j.lat)
		}
		res.CPUCores = res.CPU.Cores()
		out[gi] = res
	}
	return out
}

// nextLBA picks the next I/O location, in disk blocks.
func (j *job) nextLBA(blocks uint32) uint64 {
	if j.regionNB <= uint64(blocks) {
		return j.regionLB
	}
	if j.cfg.Mode.Random() {
		slots := j.regionNB / uint64(blocks)
		if j.cfg.Zipf > 1 {
			if j.zipf == nil {
				j.zipf = rand.NewZipf(j.env.Rand(), j.cfg.Zipf, 1, slots-1)
			}
			return j.regionLB + j.zipf.Uint64()*uint64(blocks)
		}
		return j.regionLB + uint64(j.env.Rand().Int63n(int64(slots)))*uint64(blocks)
	}
	lba := j.regionLB + j.seqCur
	j.seqCur += uint64(blocks)
	if j.seqCur+uint64(blocks) > j.regionNB {
		j.seqCur = 0
	}
	return lba
}

// nextOp picks read or write according to the mode.
func (j *job) nextOp() vm.Op {
	switch j.cfg.Mode {
	case RandRead, SeqRead:
		return vm.OpRead
	case RandWrite, SeqWrite:
		return vm.OpWrite
	default:
		if pct := j.cfg.WritePct; pct > 0 {
			if j.env.Rand().Intn(100) < pct {
				return vm.OpWrite
			}
			return vm.OpRead
		}
		if j.env.Rand().Intn(2) == 0 {
			return vm.OpRead
		}
		return vm.OpWrite
	}
}

func (j *job) run(p *sim.Proc) {
	bs := j.t.Disk.BlockSize()
	blocks := j.cfg.BlockSize / bs
	if blocks == 0 {
		blocks = 1
	}
	var interval sim.Duration
	if j.cfg.RateIOPS > 0 {
		interval = sim.Duration(int64(sim.Second) / int64(j.cfg.RateIOPS))
	}
	nextAt := p.Now()
	slots := make([]int, 0, j.cfg.QD)
	for s := 0; s < j.cfg.QD; s++ {
		slots = append(slots, s)
	}

	for !j.stop {
		// Submit while a slot is free (and the rate gate is open).
		for len(slots) > 0 && !j.stop {
			if interval > 0 && p.Now() < nextAt {
				break
			}
			slot := slots[len(slots)-1]
			slots = slots[:len(slots)-1]
			nextAt = nextAt.Add(interval)
			if interval > 0 && nextAt < p.Now() {
				nextAt = p.Now() // do not accumulate missed slots
			}
			r := &vm.Req{
				Op:       j.nextOp(),
				LBA:      j.nextLBA(blocks),
				Blocks:   blocks,
				Buf:      j.bufs[slot],
				BufPages: j.pages[slot],
			}
			r.OnDone = func(done *vm.Req) {
				slots = append(slots, slot)
				if done.Completed > j.measFrom && done.Completed <= j.measTo {
					if done.Status.OK() {
						j.ops.Inc()
						j.bytes.Add(uint64(j.cfg.BlockSize))
						j.lat.Record(int64(done.Latency()))
					} else {
						j.errors.Inc()
					}
				}
				j.comp.Signal(nil)
			}
			j.t.Disk.Submit(p, j.t.VCPU, r)
		}
		// Wait for a completion or the next rate slot.
		if interval > 0 && len(slots) > 0 {
			wait := nextAt.Sub(p.Now())
			if wait > 0 {
				j.comp.WaitTimeout(wait)
			}
		} else {
			j.comp.Wait()
		}
	}
}
