package nvmeof_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
)

func remoteBed() (*sim.Env, *sim.Thread, *nvmeof.Initiator, *device.MemStore, *nvmeof.Link) {
	env := sim.New(1)
	localCPU := sim.NewCPU(env, 2)
	remoteCPU := sim.NewCPU(env, 2)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	store := device.NewMemStore(512)
	dev := device.New(env, p, store)
	bdev := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(dev, 1), remoteCPU, 1, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(env)
	tgt := nvmeof.NewTarget(env, bdev, remoteCPU)
	return env, localCPU.ThreadOn(0, "host"), nvmeof.NewInitiator(env, link, tgt), store, link
}

func runP(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	env.Go("test", func(p *sim.Proc) { fn(p); ok = true; env.Stop() })
	env.RunUntil(sim.Time(30 * sim.Second))
	if !ok {
		t.Fatal("did not finish")
	}
	env.Close()
}

func bioWait(p *sim.Proc, th *sim.Thread, d blockdev.BlockDevice, b *blockdev.Bio) nvme.Status {
	c := sim.NewCond(p.Env())
	var st nvme.Status
	done := false
	b.OnDone = func(s nvme.Status) { st = s; done = true; c.Signal(nil) }
	d.SubmitBio(p, th, b)
	for !done {
		c.Wait()
	}
	return st
}

func TestRemoteWriteReadIntegrity(t *testing.T) {
	env, th, init, store, _ := remoteBed()
	runP(t, env, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0x42, 0x24}, 1024)
		if st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 77, Data: append([]byte{}, data...)}); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// The bytes physically landed on the remote store.
		got := make([]byte, len(data))
		store.ReadBlocks(77, got)
		if !bytes.Equal(got, data) {
			t.Fatal("remote store missing data")
		}
		// Read back across the fabric.
		buf := make([]byte, len(data))
		if st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioRead, Sector: 77, Data: buf}); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(buf, data) {
			t.Fatal("remote read mismatch")
		}
	})
}

func TestFabricAddsLatency(t *testing.T) {
	env, th, init, _, _ := remoteBed()
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 0, Data: make([]byte, 512)})
		el := p.Now().Sub(start)
		// Remote write >= device write (~26us) + 2x link latency (10us).
		if el < 35*sim.Microsecond {
			t.Fatalf("remote write in %v, fabric latency missing", el)
		}
	})
}

func TestLinkSerializesBandwidth(t *testing.T) {
	env := sim.New(1)
	link := nvmeof.NewLink(env, 0, 1e9) // 1 GB/s, zero latency
	var done []sim.Time
	// Two 1 MB messages back to back: second must wait for the first.
	link.Send(nvmeof.DirToTarget, 1<<20, func() { done = append(done, env.Now()) })
	link.Send(nvmeof.DirToTarget, 1<<20, func() { done = append(done, env.Now()) })
	env.Run()
	if len(done) != 2 {
		t.Fatal("messages lost")
	}
	first := float64(done[0]) / 1e6  // ms
	second := float64(done[1]) / 1e6 // ms
	if first < 1.0 || second < 2.0 {
		t.Fatalf("serialization broken: %v %v ms", first, second)
	}
	if link.Bytes[nvmeof.DirToTarget] != 2<<20 {
		t.Fatal("byte accounting")
	}
	env.Close()
}

func TestDirectionsIndependent(t *testing.T) {
	env := sim.New(1)
	link := nvmeof.NewLink(env, 0, 1e9)
	var aT, bT sim.Time
	link.Send(nvmeof.DirToTarget, 1<<20, func() { aT = env.Now() })
	link.Send(nvmeof.DirToHost, 1<<20, func() { bT = env.Now() })
	env.Run()
	// Full duplex: both finish at ~1ms, not serialized.
	if aT != bT {
		t.Fatalf("directions interfered: %v vs %v", aT, bT)
	}
	env.Close()
}

func TestConcurrentRemoteIOs(t *testing.T) {
	env, th, init, _, _ := remoteBed()
	runP(t, env, func(p *sim.Proc) {
		const n = 32
		doneCnt := 0
		c := sim.NewCond(env)
		start := p.Now()
		for i := 0; i < n; i++ {
			b := &blockdev.Bio{Op: blockdev.BioWrite, Sector: uint64(i) * 8, Data: make([]byte, 4096)}
			b.OnDone = func(st nvme.Status) {
				if !st.OK() {
					t.Errorf("status %v", st)
				}
				doneCnt++
				c.Signal(nil)
			}
			init.SubmitBio(p, th, b)
		}
		for doneCnt < n {
			c.Wait()
		}
		el := p.Now().Sub(start)
		// Pipelined: far less than n x single-request latency (~45us).
		if el > sim.Duration(n)*45*sim.Microsecond/2 {
			t.Fatalf("no pipelining across the fabric: %v for %d IOs", el, n)
		}
	})
}
