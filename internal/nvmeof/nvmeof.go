// Package nvmeof simulates NVMe over Fabrics for the replication use case:
// an RDMA-class link (latency + bandwidth), a target on the remote host
// that services capsules against its local NVMe device, and an initiator
// that exposes the remote namespace as a host block device. The paper's
// setup — "two hosts connected using NVMe over Infiniband" — maps to one
// Link between two simulated hosts.
package nvmeof

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Link is a full-duplex fabric link with an analytic serialization model:
// each direction is a channel whose next-free time advances by size/BW per
// message, plus a propagation latency.
type Link struct {
	env     *sim.Env
	Latency sim.Duration
	BW      float64 // bytes/sec per direction
	nextTx  [2]sim.Time

	// Stats
	Messages [2]uint64
	Bytes    [2]uint64
}

// Directions.
const (
	DirToTarget = 0
	DirToHost   = 1
)

// NewLink creates a link. Defaults approximate FDR Infiniband: ~5 µs
// one-way latency, ~6 GB/s per direction.
func NewLink(env *sim.Env, latency sim.Duration, bw float64) *Link {
	return &Link{env: env, Latency: latency, BW: bw}
}

// DefaultLink returns the calibrated Infiniband-class link.
func DefaultLink(env *sim.Env) *Link {
	return NewLink(env, 5*sim.Microsecond, 6e9)
}

// Send delivers fn after the message of size bytes crosses the link in
// direction dir, honoring serialization and propagation delay.
func (l *Link) Send(dir int, size int, fn func()) {
	now := l.env.Now()
	depart := l.nextTx[dir]
	if depart < now {
		depart = now
	}
	txDone := depart.Add(sim.Duration(float64(size) / l.BW * 1e9))
	l.nextTx[dir] = txDone
	l.Messages[dir]++
	l.Bytes[dir] += uint64(size)
	l.env.At(txDone.Add(l.Latency), fn)
}

// capsuleHeader approximates the NVMe-oF capsule overhead in bytes.
const capsuleHeader = 72

// Target is the remote host's NVMe-oF target: a worker thread that services
// incoming capsules against the remote block device.
type Target struct {
	env   *sim.Env
	bdev  blockdev.BlockDevice
	th    *sim.Thread
	queue []capsule
	wake  *sim.Cond
	// PerCmd is the target-side processing cost per capsule.
	PerCmd sim.Duration

	Served uint64
}

type capsule struct {
	op     blockdev.BioOp
	sector uint64
	data   []byte
	nsect  uint32
	reply  func(nvme.Status, []byte)
}

// NewTarget starts a target over bdev using a thread on the remote CPU.
func NewTarget(env *sim.Env, bdev blockdev.BlockDevice, remoteCPU *sim.CPU) *Target {
	t := &Target{env: env, bdev: bdev, th: remoteCPU.NewThread("nvmeof-tgt"), wake: sim.NewCond(env), PerCmd: 2 * sim.Microsecond}
	env.Go("nvmeof-target", t.run)
	return t
}

func (t *Target) run(p *sim.Proc) {
	for {
		if len(t.queue) == 0 {
			t.wake.Wait()
			continue
		}
		c := t.queue[0]
		t.queue = t.queue[1:]
		t.th.Exec(p, t.PerCmd)
		t.Served++
		bio := &blockdev.Bio{Op: c.op, Sector: c.sector, Data: c.data, NSect: c.nsect}
		reply := c.reply
		data := c.data
		isRead := c.op == blockdev.BioRead
		bio.OnDone = func(st nvme.Status) {
			if isRead {
				reply(st, data)
			} else {
				reply(st, nil)
			}
		}
		t.bdev.SubmitBio(p, t.th, bio)
	}
}

// Initiator exposes the remote namespace as a local BlockDevice.
type Initiator struct {
	env  *sim.Env
	link *Link
	tgt  *Target
	// PerCmd is the host-side submission cost (RDMA post + completion).
	PerCmd sim.Duration

	Sent uint64
}

// NewInitiator connects to tgt over link.
func NewInitiator(env *sim.Env, link *Link, tgt *Target) *Initiator {
	return &Initiator{env: env, link: link, tgt: tgt, PerCmd: 1500 * sim.Nanosecond}
}

// NumSectors implements BlockDevice.
func (i *Initiator) NumSectors() uint64 { return i.tgt.bdev.NumSectors() }

// SubmitBio implements BlockDevice: the bio crosses the fabric as a
// capsule, is serviced remotely, and the response (with data for reads)
// crosses back.
func (i *Initiator) SubmitBio(p *sim.Proc, th *sim.Thread, b *blockdev.Bio) {
	th.Exec(p, i.PerCmd)
	i.Sent++
	size := capsuleHeader
	var payload []byte
	if b.Op == blockdev.BioWrite {
		// In-capsule data (RDMA write); copy because the caller may reuse
		// its buffer after completion.
		payload = append([]byte(nil), b.Data...)
		size += len(payload)
	} else if b.Op == blockdev.BioRead {
		payload = make([]byte, len(b.Data))
	}
	done := b.OnDone
	dst := b.Data
	op, sector, nsect := b.Op, b.Sector, b.NSect
	i.link.Send(DirToTarget, size, func() {
		i.tgt.queue = append(i.tgt.queue, capsule{
			op: op, sector: sector, data: payload, nsect: nsect,
			reply: func(st nvme.Status, rdata []byte) {
				rsize := capsuleHeader
				if op == blockdev.BioRead {
					rsize += len(rdata)
				}
				i.link.Send(DirToHost, rsize, func() {
					if op == blockdev.BioRead && st.OK() {
						copy(dst, rdata)
					}
					done(st)
				})
			},
		})
		i.tgt.wake.Signal(nil)
	})
}

func (l *Link) String() string {
	return fmt.Sprintf("link{lat=%v bw=%.1fGB/s tx=%d/%d}", l.Latency, l.BW/1e9, l.Messages[0], l.Messages[1])
}
