// Package nvmeof simulates NVMe over Fabrics for the replication use case:
// an RDMA-class link (latency + bandwidth), a target on the remote host
// that services capsules against its local NVMe device, and an initiator
// that exposes the remote namespace as a host block device. The paper's
// setup — "two hosts connected using NVMe over Infiniband" — maps to one
// Link between two simulated hosts.
package nvmeof

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/fault"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Link is a full-duplex fabric link with an analytic serialization model:
// each direction is a channel whose next-free time advances by size/BW per
// message, plus a propagation latency.
type Link struct {
	env     *sim.Env
	Latency sim.Duration
	BW      float64 // bytes/sec per direction
	nextTx  [2]sim.Time
	outages []fault.Outage
	onUp    []func()

	// Stats
	Messages [2]uint64
	Bytes    [2]uint64
	Drops    [2]uint64 // messages lost to outage windows
	Outages  uint64    // scheduled outage windows
}

// Directions.
const (
	DirToTarget = 0
	DirToHost   = 1
)

// NewLink creates a link. Defaults approximate FDR Infiniband: ~5 µs
// one-way latency, ~6 GB/s per direction.
func NewLink(env *sim.Env, latency sim.Duration, bw float64) *Link {
	return &Link{env: env, Latency: latency, BW: bw}
}

// DefaultLink returns the calibrated Infiniband-class link.
func DefaultLink(env *sim.Env) *Link {
	return NewLink(env, 5*sim.Microsecond, 6e9)
}

// ScheduleOutage declares the link down for [at, at+dur): messages whose
// transmission or arrival falls inside the window are silently lost. When
// the window closes, registered OnUp callbacks fire so initiators can
// requeue in-flight commands.
func (l *Link) ScheduleOutage(at sim.Time, dur sim.Duration) {
	l.outages = append(l.outages, fault.Outage{At: at, Dur: dur})
	l.Outages++
	l.env.At(at.Add(dur), func() {
		for _, fn := range l.onUp {
			fn()
		}
	})
}

// ApplyPlan schedules every outage in the fault plan on this link.
func (l *Link) ApplyPlan(p *fault.Plan) {
	if p == nil {
		return
	}
	for _, o := range p.Outages() {
		l.ScheduleOutage(o.At, o.Dur)
	}
}

// OnUp registers a callback invoked (in scheduler context) each time an
// outage window closes.
func (l *Link) OnUp(fn func()) { l.onUp = append(l.onUp, fn) }

// down reports whether the link is in an outage window at time t.
func (l *Link) down(t sim.Time) bool {
	for _, o := range l.outages {
		if t >= o.At && t < o.At.Add(o.Dur) {
			return true
		}
	}
	return false
}

// Send delivers fn after the message of size bytes crosses the link in
// direction dir, honoring serialization and propagation delay. A message
// that departs or arrives during an outage window is dropped: fn never
// runs, and recovery is the sender's responsibility.
func (l *Link) Send(dir int, size int, fn func()) {
	now := l.env.Now()
	depart := l.nextTx[dir]
	if depart < now {
		depart = now
	}
	txDone := depart.Add(sim.Duration(float64(size) / l.BW * 1e9))
	l.nextTx[dir] = txDone
	l.Messages[dir]++
	l.Bytes[dir] += uint64(size)
	arrive := txDone.Add(l.Latency)
	if l.down(depart) || l.down(arrive) {
		l.Drops[dir]++
		return
	}
	l.env.At(arrive, fn)
}

// capsuleHeader approximates the NVMe-oF capsule overhead in bytes.
const capsuleHeader = 72

// Target is the remote host's NVMe-oF target: a worker thread that services
// incoming capsules against the remote block device.
type Target struct {
	env   *sim.Env
	bdev  blockdev.BlockDevice
	th    *sim.Thread
	queue []capsule
	wake  *sim.Cond
	// PerCmd is the target-side processing cost per capsule.
	PerCmd sim.Duration

	Served uint64
}

type capsule struct {
	op     blockdev.BioOp
	sector uint64
	data   []byte
	nsect  uint32
	reply  func(nvme.Status, []byte)
}

// NewTarget starts a target over bdev using a thread on the remote CPU.
func NewTarget(env *sim.Env, bdev blockdev.BlockDevice, remoteCPU *sim.CPU) *Target {
	t := &Target{env: env, bdev: bdev, th: remoteCPU.NewThread("nvmeof-tgt"), wake: sim.NewCond(env), PerCmd: 2 * sim.Microsecond}
	env.Go("nvmeof-target", t.run)
	return t
}

func (t *Target) run(p *sim.Proc) {
	for {
		if len(t.queue) == 0 {
			t.wake.Wait()
			continue
		}
		c := t.queue[0]
		t.queue = t.queue[1:]
		t.th.Exec(p, t.PerCmd)
		t.Served++
		bio := &blockdev.Bio{Op: c.op, Sector: c.sector, Data: c.data, NSect: c.nsect}
		reply := c.reply
		data := c.data
		isRead := c.op == blockdev.BioRead
		bio.OnDone = func(st nvme.Status) {
			if isRead {
				reply(st, data)
			} else {
				reply(st, nil)
			}
		}
		t.bdev.SubmitBio(p, t.th, bio)
	}
}

// InitiatorRecovery is the initiator's command-recovery policy.
type InitiatorRecovery struct {
	Timeout    sim.Duration // per-attempt response deadline
	MaxRetries int          // resends before the command fails with SCPathError
	Backoff    sim.Duration // first retry delay; doubles per attempt
	// BackoffCap bounds the doubled delay (0 = uncapped): without it, deep
	// retry ladders overshoot the outage end by most of a doubled period.
	BackoffCap sim.Duration
	// Jitter spreads each delay by a ± fraction in [0, 1), drawn from the
	// environment's seeded stream — resends of commands that timed out
	// together stop hammering the recovered target in one burst.
	Jitter float64
}

// DefaultInitiatorRecovery returns a policy tolerant of deep target queues:
// a command only times out if the fabric genuinely lost it.
func DefaultInitiatorRecovery() InitiatorRecovery {
	return InitiatorRecovery{
		Timeout:    50 * sim.Millisecond,
		MaxRetries: 4,
		Backoff:    100 * sim.Microsecond,
		BackoffCap: 5 * sim.Millisecond,
		Jitter:     0.25,
	}
}

// ofPending is one in-flight command on the initiator.
type ofPending struct {
	op      blockdev.BioOp
	sector  uint64
	nsect   uint32
	payload []byte // in-capsule write data or read-reply scratch
	dst     []byte // read destination in the caller's buffer
	done    func(nvme.Status)
	size    int // request capsule size
	attempt int
	fin     bool
}

// Initiator exposes the remote namespace as a local BlockDevice. It keeps
// an in-flight command table: a command whose response does not arrive
// within the recovery timeout is resent with exponential backoff, commands
// in flight when an outage ends are requeued immediately, and a command
// that exhausts its retries completes with SCPathError.
type Initiator struct {
	env  *sim.Env
	link *Link
	tgt  *Target
	// PerCmd is the host-side submission cost (RDMA post + completion).
	PerCmd sim.Duration
	rec    InitiatorRecovery
	pend   []*ofPending // FIFO; deterministic requeue order
	onUp   []func()     // upper-layer reconnect hooks (e.g. resync triggers)

	// Stats
	Sent           uint64
	Retries        uint64 // resends after a per-attempt timeout
	Requeues       uint64 // resends triggered by link recovery
	Reconnects     uint64 // outage-end events observed
	Failures       uint64 // commands failed with SCPathError
	StaleResponses uint64 // responses for a superseded or finished attempt
	GuardErrors    uint64 // read replies failing protection-info verification

	verifier ReadVerifier
}

// ReadVerifier checks read replies against per-block protection info at
// the initiator's receive boundary (satisfied by *integrity.SectorGuard).
type ReadVerifier interface {
	VerifySectors(sector uint64, data []byte) bool
}

// NewInitiator connects to tgt over link.
func NewInitiator(env *sim.Env, link *Link, tgt *Target) *Initiator {
	i := &Initiator{env: env, link: link, tgt: tgt, PerCmd: 1500 * sim.Nanosecond, rec: DefaultInitiatorRecovery()}
	link.OnUp(i.onLinkUp)
	return i
}

// SetVerifier installs a protection-info verifier on the read receive
// path (nil detaches).
func (i *Initiator) SetVerifier(v ReadVerifier) { i.verifier = v }

// Validate rejects policies that would silently misbehave rather than
// recover: retrying a negative number of times or arming negative timers.
func (rec InitiatorRecovery) Validate() error {
	if rec.MaxRetries < 0 {
		return fmt.Errorf("nvmeof: negative MaxRetries %d", rec.MaxRetries)
	}
	if rec.Timeout < 0 {
		return fmt.Errorf("nvmeof: negative Timeout %v", rec.Timeout)
	}
	if rec.Backoff < 0 {
		return fmt.Errorf("nvmeof: negative Backoff %v", rec.Backoff)
	}
	if rec.BackoffCap < 0 {
		return fmt.Errorf("nvmeof: negative BackoffCap %v", rec.BackoffCap)
	}
	if rec.Jitter < 0 || rec.Jitter >= 1 {
		return fmt.Errorf("nvmeof: Jitter must be in [0,1), got %g", rec.Jitter)
	}
	return nil
}

// SetRecovery replaces the recovery policy (call before traffic starts).
// Invalid policies are rejected and the previous policy stays active.
func (i *Initiator) SetRecovery(rec InitiatorRecovery) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	i.rec = rec
	return nil
}

// Recovery returns the active recovery policy.
func (i *Initiator) Recovery() InitiatorRecovery { return i.rec }

// OnReconnect registers fn to run each time an outage window closes,
// *after* the initiator has requeued its own in-flight commands — so a
// resync engine triggered from here sees a fabric that already carries
// the requeued foreground traffic.
func (i *Initiator) OnReconnect(fn func()) { i.onUp = append(i.onUp, fn) }

// NumSectors implements BlockDevice.
func (i *Initiator) NumSectors() uint64 { return i.tgt.bdev.NumSectors() }

// SubmitBio implements BlockDevice: the bio crosses the fabric as a
// capsule, is serviced remotely, and the response (with data for reads)
// crosses back.
func (i *Initiator) SubmitBio(p *sim.Proc, th *sim.Thread, b *blockdev.Bio) {
	th.Exec(p, i.PerCmd)
	i.Sent++
	pe := &ofPending{op: b.Op, sector: b.Sector, nsect: b.NSect, dst: b.Data, done: b.OnDone, size: capsuleHeader}
	if b.Op == blockdev.BioWrite {
		// In-capsule data (RDMA write); copy because the caller may reuse
		// its buffer after completion.
		pe.payload = append([]byte(nil), b.Data...)
		pe.size += len(pe.payload)
	} else if b.Op == blockdev.BioRead {
		pe.payload = make([]byte, len(b.Data))
	}
	i.pend = append(i.pend, pe)
	i.send(pe)
}

// send transmits one attempt of pe and arms its response deadline.
func (i *Initiator) send(pe *ofPending) {
	pe.attempt++
	attempt := pe.attempt
	i.link.Send(DirToTarget, pe.size, func() {
		i.tgt.queue = append(i.tgt.queue, capsule{
			op: pe.op, sector: pe.sector, data: pe.payload, nsect: pe.nsect,
			reply: func(st nvme.Status, rdata []byte) {
				rsize := capsuleHeader
				if pe.op == blockdev.BioRead {
					rsize += len(rdata)
				}
				i.link.Send(DirToHost, rsize, func() {
					i.complete(pe, attempt, st, rdata)
				})
			},
		})
		i.tgt.wake.Signal(nil)
	})
	if i.rec.Timeout > 0 {
		i.env.After(i.rec.Timeout, func() {
			if !pe.fin && pe.attempt == attempt {
				i.onTimeout(pe)
			}
		})
	}
}

// complete finishes pe on a response for the given attempt. Responses for
// an earlier attempt (the resend raced an in-flight original) or for an
// already-finished command are counted and dropped.
func (i *Initiator) complete(pe *ofPending, attempt int, st nvme.Status, rdata []byte) {
	if pe.fin || pe.attempt != attempt {
		i.StaleResponses++
		return
	}
	i.finish(pe, st, rdata)
}

func (i *Initiator) finish(pe *ofPending, st nvme.Status, rdata []byte) {
	pe.fin = true
	i.unqueue(pe)
	if pe.op == blockdev.BioRead && st.OK() {
		copy(pe.dst, rdata)
		if i.verifier != nil && !i.verifier.VerifySectors(pe.sector, pe.dst) {
			// The fabric delivered data the protection info disowns:
			// report a guard error. The payload stays in the caller's
			// buffer for diagnosing layers (the scrubber).
			i.GuardErrors++
			st = nvme.SCGuardCheck
		}
	}
	pe.done(st)
}

// unqueue removes pe from the pending FIFO, preserving order.
func (i *Initiator) unqueue(pe *ofPending) {
	for n, q := range i.pend {
		if q == pe {
			i.pend = append(i.pend[:n], i.pend[n+1:]...)
			return
		}
	}
}

// onTimeout handles a lost attempt: resend with capped, jittered
// exponential backoff, or fail the command once retries are exhausted.
func (i *Initiator) onTimeout(pe *ofPending) {
	if pe.attempt > i.rec.MaxRetries {
		i.Failures++
		i.finish(pe, nvme.SCPathError, nil)
		return
	}
	attempt := pe.attempt
	i.env.After(i.backoffDelay(attempt), func() {
		if !pe.fin && pe.attempt == attempt {
			i.Retries++
			i.send(pe)
		}
	})
}

// backoffDelay computes the delay before resending attempt+1: Backoff
// doubled per prior attempt, clamped to BackoffCap, spread by ±Jitter.
func (i *Initiator) backoffDelay(attempt int) sim.Duration {
	d := i.rec.Backoff
	for n := 1; n < attempt; n++ {
		d *= 2
		if i.rec.BackoffCap > 0 && d >= i.rec.BackoffCap {
			break
		}
	}
	if i.rec.BackoffCap > 0 && d > i.rec.BackoffCap {
		d = i.rec.BackoffCap
	}
	if j := i.rec.Jitter; j > 0 && d > 0 {
		d = sim.Duration(float64(d) * (1 + j*(2*i.env.Rand().Float64()-1)))
	}
	return d
}

// onLinkUp requeues every in-flight command as soon as an outage window
// closes, rather than waiting for each command's timeout to expire.
func (i *Initiator) onLinkUp() {
	i.Reconnects++
	requeue := append([]*ofPending(nil), i.pend...)
	for _, pe := range requeue {
		if pe.fin {
			continue
		}
		i.Requeues++
		i.send(pe)
	}
	for _, fn := range i.onUp {
		fn()
	}
}

func (l *Link) String() string {
	return fmt.Sprintf("link{lat=%v bw=%.1fGB/s tx=%d/%d}", l.Latency, l.BW/1e9, l.Messages[0], l.Messages[1])
}
