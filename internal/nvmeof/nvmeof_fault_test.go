package nvmeof_test

import (
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
)

// A capsule lost to an outage is requeued as soon as the link recovers —
// well before the per-attempt timeout would fire.
func TestOutageRequeuesOnLinkUp(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, sim.Millisecond)
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if !st.OK() {
			t.Fatalf("write: %v", st)
		}
		el := p.Now().Sub(start)
		if el < sim.Millisecond {
			t.Fatalf("completed in %v, before the outage ended", el)
		}
		if el > 10*sim.Millisecond {
			t.Fatalf("completed in %v: waited for a timeout instead of the link-up requeue", el)
		}
	})
	if link.Drops[nvmeof.DirToTarget] != 1 {
		t.Fatalf("link drops: %d", link.Drops[nvmeof.DirToTarget])
	}
	if init.Reconnects != 1 || init.Requeues != 1 {
		t.Fatalf("reconnects=%d requeues=%d, want 1/1", init.Reconnects, init.Requeues)
	}
	if init.Failures != 0 {
		t.Fatalf("failures=%d", init.Failures)
	}
}

// During a long outage, bounded retries exhaust and the command fails with
// PathError rather than hanging until the link returns.
func TestOutageExhaustsRetries(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, 10*sim.Millisecond)
	init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    100 * sim.Microsecond,
		MaxRetries: 2,
		Backoff:    10 * sim.Microsecond,
	})
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if st != nvme.SCPathError {
			t.Fatalf("status %v, want PathError", st)
		}
		if el := p.Now().Sub(start); el > 2*sim.Millisecond {
			t.Fatalf("failed only after %v; should fail fast", el)
		}
	})
	if init.Retries != 2 || init.Failures != 1 {
		t.Fatalf("retries=%d failures=%d, want 2/1", init.Retries, init.Failures)
	}
}

// A response that arrives after its attempt was superseded by a resend is
// counted stale and dropped; the resend's response completes the command
// exactly once.
func TestLateResponseCountedStale(t *testing.T) {
	env, th, init, _, _ := remoteBed()
	// Timeout below the fabric round trip: the original response is still
	// in flight when the resend goes out.
	init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    20 * sim.Microsecond,
		MaxRetries: 5,
		Backoff:    10 * sim.Microsecond,
	})
	completions := 0
	runP(t, env, func(p *sim.Proc) {
		c := sim.NewCond(env)
		b := &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)}
		b.OnDone = func(st nvme.Status) {
			if !st.OK() {
				t.Errorf("status %v", st)
			}
			completions++
			c.Signal(nil)
		}
		init.SubmitBio(p, th, b)
		for completions == 0 {
			c.Wait()
		}
		// Give any duplicate responses time to surface.
		p.Sleep(5 * sim.Millisecond)
	})
	if completions != 1 {
		t.Fatalf("bio completed %d times", completions)
	}
	if init.StaleResponses == 0 {
		t.Fatal("expected the original late response to be counted stale")
	}
	if init.Retries == 0 {
		t.Fatal("expected at least one timeout-driven resend")
	}
}
