package nvmeof_test

import (
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
)

// A capsule lost to an outage is requeued as soon as the link recovers —
// well before the per-attempt timeout would fire.
func TestOutageRequeuesOnLinkUp(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, sim.Millisecond)
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if !st.OK() {
			t.Fatalf("write: %v", st)
		}
		el := p.Now().Sub(start)
		if el < sim.Millisecond {
			t.Fatalf("completed in %v, before the outage ended", el)
		}
		if el > 10*sim.Millisecond {
			t.Fatalf("completed in %v: waited for a timeout instead of the link-up requeue", el)
		}
	})
	if link.Drops[nvmeof.DirToTarget] != 1 {
		t.Fatalf("link drops: %d", link.Drops[nvmeof.DirToTarget])
	}
	if init.Reconnects != 1 || init.Requeues != 1 {
		t.Fatalf("reconnects=%d requeues=%d, want 1/1", init.Reconnects, init.Requeues)
	}
	if init.Failures != 0 {
		t.Fatalf("failures=%d", init.Failures)
	}
}

// During a long outage, bounded retries exhaust and the command fails with
// PathError rather than hanging until the link returns.
func TestOutageExhaustsRetries(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, 10*sim.Millisecond)
	init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    100 * sim.Microsecond,
		MaxRetries: 2,
		Backoff:    10 * sim.Microsecond,
	})
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if st != nvme.SCPathError {
			t.Fatalf("status %v, want PathError", st)
		}
		if el := p.Now().Sub(start); el > 2*sim.Millisecond {
			t.Fatalf("failed only after %v; should fail fast", el)
		}
	})
	if init.Retries != 2 || init.Failures != 1 {
		t.Fatalf("retries=%d failures=%d, want 2/1", init.Retries, init.Failures)
	}
}

// A response that arrives after its attempt was superseded by a resend is
// counted stale and dropped; the resend's response completes the command
// exactly once.
func TestLateResponseCountedStale(t *testing.T) {
	env, th, init, _, _ := remoteBed()
	// Timeout below the fabric round trip: the original response is still
	// in flight when the resend goes out.
	init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    20 * sim.Microsecond,
		MaxRetries: 5,
		Backoff:    10 * sim.Microsecond,
	})
	completions := 0
	runP(t, env, func(p *sim.Proc) {
		c := sim.NewCond(env)
		b := &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)}
		b.OnDone = func(st nvme.Status) {
			if !st.OK() {
				t.Errorf("status %v", st)
			}
			completions++
			c.Signal(nil)
		}
		init.SubmitBio(p, th, b)
		for completions == 0 {
			c.Wait()
		}
		// Give any duplicate responses time to surface.
		p.Sleep(5 * sim.Millisecond)
	})
	if completions != 1 {
		t.Fatalf("bio completed %d times", completions)
	}
	if init.StaleResponses == 0 {
		t.Fatal("expected the original late response to be counted stale")
	}
	if init.Retries == 0 {
		t.Fatal("expected at least one timeout-driven resend")
	}
}

// Overlapping outage windows: the first window's link-up fires while the
// second window is already active, so its requeue is dropped too; only
// the second link-up completes the command.
func TestOverlappingOutagesRequeueTwice(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, 5*sim.Millisecond)
	link.ScheduleOutage(sim.Time(0).Add(3*sim.Millisecond), 5*sim.Millisecond) // closes at 8 ms
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if !st.OK() {
			t.Fatalf("write: %v", st)
		}
		el := p.Now().Sub(start)
		if el < 8*sim.Millisecond {
			t.Fatalf("completed in %v, inside the merged outage", el)
		}
		if el > 15*sim.Millisecond {
			t.Fatalf("completed in %v: waited for a timeout instead of the second link-up", el)
		}
	})
	if init.Reconnects != 2 || init.Requeues != 2 {
		t.Fatalf("reconnects=%d requeues=%d, want 2/2", init.Reconnects, init.Requeues)
	}
	if init.Failures != 0 {
		t.Fatalf("failures=%d", init.Failures)
	}
	if link.Drops[nvmeof.DirToTarget] != 2 {
		t.Fatalf("drops=%d, want 2 (original + first requeue)", link.Drops[nvmeof.DirToTarget])
	}
}

// Adjacent (back-to-back) outage windows: the first window's link-up
// coincides with the second window's start, so the requeued capsule
// departs into a down link and is dropped; the command completes after
// the second window closes. The first OnUp firing while commands are
// still unresendable must not double-complete or fail anything.
func TestAdjacentOutagesRequeueTwice(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, 4*sim.Millisecond)
	link.ScheduleOutage(sim.Time(0).Add(4*sim.Millisecond), 4*sim.Millisecond)
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if !st.OK() {
			t.Fatalf("write: %v", st)
		}
		if el := p.Now().Sub(start); el < 8*sim.Millisecond || el > 15*sim.Millisecond {
			t.Fatalf("completed in %v, want just after the 8 ms mark", el)
		}
	})
	if init.Reconnects != 2 || init.Requeues != 2 {
		t.Fatalf("reconnects=%d requeues=%d, want 2/2", init.Reconnects, init.Requeues)
	}
	if init.Failures != 0 {
		t.Fatalf("failures=%d", init.Failures)
	}
}

// A link-up callback firing while a command sits in its resend backoff:
// the requeue resends immediately (bumping the attempt), and the stale
// backoff timer must notice the superseded attempt and not resend again.
func TestLinkUpPreemptsPendingResend(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, sim.Millisecond)
	// Timeout fires at 300 µs, arming a 4 ms backoff that is still
	// pending when the link comes back at 1 ms.
	if err := init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    300 * sim.Microsecond,
		MaxRetries: 5,
		Backoff:    4 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	completions := 0
	runP(t, env, func(p *sim.Proc) {
		c := sim.NewCond(env)
		b := &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)}
		b.OnDone = func(st nvme.Status) {
			if !st.OK() {
				t.Errorf("status %v", st)
			}
			completions++
			c.Signal(nil)
		}
		init.SubmitBio(p, th, b)
		start := p.Now()
		for completions == 0 {
			c.Wait()
		}
		if el := p.Now().Sub(start); el < sim.Millisecond || el > 3*sim.Millisecond {
			t.Fatalf("completed in %v, want just after the 1 ms link-up", el)
		}
		// Let the stale backoff timer (due at ~4.3 ms) fire and prove
		// itself harmless.
		p.Sleep(10 * sim.Millisecond)
	})
	if completions != 1 {
		t.Fatalf("bio completed %d times", completions)
	}
	if init.Requeues != 1 {
		t.Fatalf("requeues=%d, want 1", init.Requeues)
	}
	if init.Retries != 0 {
		t.Fatalf("retries=%d: the superseded backoff still resent", init.Retries)
	}
}

// A link-up firing while timeout-driven resends are mid-flight: every
// attempt during the outage is dropped, the requeue after link-up
// completes the command exactly once.
func TestLinkUpAfterRepeatedResends(t *testing.T) {
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, sim.Millisecond)
	if err := init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    150 * sim.Microsecond,
		MaxRetries: 20,
		Backoff:    50 * sim.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	completions := 0
	runP(t, env, func(p *sim.Proc) {
		c := sim.NewCond(env)
		b := &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)}
		b.OnDone = func(st nvme.Status) {
			if !st.OK() {
				t.Errorf("status %v", st)
			}
			completions++
			c.Signal(nil)
		}
		init.SubmitBio(p, th, b)
		for completions == 0 {
			c.Wait()
		}
		p.Sleep(10 * sim.Millisecond)
	})
	if completions != 1 {
		t.Fatalf("bio completed %d times", completions)
	}
	if init.Retries < 2 {
		t.Fatalf("retries=%d, want several timeout-driven resends during the outage", init.Retries)
	}
	if init.Requeues != 1 || init.Failures != 0 {
		t.Fatalf("requeues=%d failures=%d, want 1/0", init.Requeues, init.Failures)
	}
}

// Install-time validation of the initiator's recovery policy.
func TestInitiatorRecoveryValidation(t *testing.T) {
	env, _, init, _, _ := remoteBed()
	defer env.Close()
	old := init.Recovery()
	if err := init.SetRecovery(nvmeof.InitiatorRecovery{Timeout: sim.Millisecond, MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
	if err := init.SetRecovery(nvmeof.InitiatorRecovery{Timeout: -sim.Millisecond}); err == nil {
		t.Fatal("negative Timeout accepted")
	}
	if err := init.SetRecovery(nvmeof.InitiatorRecovery{Timeout: sim.Millisecond, Backoff: -1}); err == nil {
		t.Fatal("negative Backoff accepted")
	}
	if init.Recovery() != old {
		t.Fatal("rejected policy replaced the active one")
	}
}
