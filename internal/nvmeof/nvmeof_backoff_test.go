package nvmeof_test

import (
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
)

// outageRecovery submits one write at t=0 into a 4 ms outage and returns
// the completion latency plus the number of timeout-driven resends burned
// during the outage.
func outageRecovery(t *testing.T, rec nvmeof.InitiatorRecovery) (sim.Duration, uint64) {
	t.Helper()
	env, th, init, _, link := remoteBed()
	link.ScheduleOutage(0, 4*sim.Millisecond)
	if err := init.SetRecovery(rec); err != nil {
		t.Fatal(err)
	}
	var lag sim.Duration
	runP(t, env, func(p *sim.Proc) {
		start := p.Now()
		if st := bioWait(p, th, init, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)}); !st.OK() {
			t.Fatalf("write across outage: %v", st)
		}
		lag = p.Now().Sub(start)
		p.Sleep(10 * sim.Millisecond) // let any superseded backoff timers fire harmlessly
	})
	return lag, init.Retries
}

// Capped jittered exponential backoff must not regress outage recovery
// time: the link-up requeue preempts whatever resend is pending, so
// recovery stays pinned to the outage end — while the exponential ladder
// burns strictly fewer futile resends into the dead link than a constant
// resend interval does.
func TestBackoffDoesNotRegressOutageRecovery(t *testing.T) {
	constant := nvmeof.InitiatorRecovery{
		Timeout:    200 * sim.Microsecond,
		MaxRetries: 64,
		Backoff:    100 * sim.Microsecond,
		BackoffCap: 100 * sim.Microsecond, // cap at the base: constant interval
	}
	exp := nvmeof.InitiatorRecovery{
		Timeout:    200 * sim.Microsecond,
		MaxRetries: 64,
		Backoff:    100 * sim.Microsecond,
		BackoffCap: 800 * sim.Microsecond,
		Jitter:     0.25,
	}
	constLag, constRetries := outageRecovery(t, constant)
	expLag, expRetries := outageRecovery(t, exp)

	// Recovery is link-up-driven for both: the exponential ladder may add
	// at most scheduling noise, never an extra backoff period.
	if expLag > constLag+100*sim.Microsecond {
		t.Fatalf("exponential backoff regressed recovery: %v vs %v constant", expLag, constLag)
	}
	// And it must actually thin the futile resend storm.
	if expRetries >= constRetries {
		t.Fatalf("exponential backoff did not reduce futile resends: %d vs %d constant", expRetries, constRetries)
	}
	if constRetries == 0 {
		t.Fatal("constant-backoff control burned no resends; outage setup broken")
	}
}

// The jittered delay stream is deterministic per seed and stays within
// the configured cap (+ jitter fraction).
func TestBackoffDeterministicAndCapped(t *testing.T) {
	rec := nvmeof.InitiatorRecovery{
		Timeout:    100 * sim.Microsecond,
		MaxRetries: 32,
		Backoff:    50 * sim.Microsecond,
		BackoffCap: 400 * sim.Microsecond,
		Jitter:     0.25,
	}
	run := func() (sim.Duration, uint64) { return outageRecovery(t, rec) }
	lagA, retriesA := run()
	lagB, retriesB := run()
	if lagA != lagB || retriesA != retriesB {
		t.Fatalf("same seed diverged: lag %v/%v retries %d/%d", lagA, lagB, retriesA, retriesB)
	}
	// 4 ms outage, ladder 50,100,200,400,400,… (+25% jitter) after a
	// 100 µs timeout each: at least 7 resend attempts always fit.
	if retriesA < 7 {
		t.Fatalf("suspiciously few resends (%d); backoff exceeding its cap?", retriesA)
	}
}

// StaleResponses keeps counting across generations of resends: responses
// to attempts superseded by a later resend are dropped, never double-
// completed. (Guards the resend path against the backoff refactor.)
func TestBackoffSupersededResponsesDropped(t *testing.T) {
	env, th, init, store, link := remoteBed()
	link.ScheduleOutage(0, 2*sim.Millisecond)
	if err := init.SetRecovery(nvmeof.InitiatorRecovery{
		Timeout:    150 * sim.Microsecond,
		MaxRetries: 32,
		Backoff:    100 * sim.Microsecond,
		BackoffCap: 300 * sim.Microsecond,
		Jitter:     0.2,
	}); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	completions := 0
	runP(t, env, func(p *sim.Proc) {
		c := sim.NewCond(env)
		b := &blockdev.Bio{Op: blockdev.BioWrite, Sector: 16, Data: append([]byte(nil), data...)}
		b.OnDone = func(st nvme.Status) {
			if !st.OK() {
				t.Errorf("status %v", st)
			}
			completions++
			c.Signal(nil)
		}
		init.SubmitBio(p, th, b)
		for completions == 0 {
			c.Wait()
		}
		p.Sleep(10 * sim.Millisecond)
	})
	if completions != 1 {
		t.Fatalf("bio completed %d times under resend backoff", completions)
	}
	got := make([]byte, 4096)
	store.ReadBlocks(16, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatal("write landed corrupted after resend storm")
		}
	}
}
