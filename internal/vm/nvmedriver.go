package vm

import (
	"fmt"

	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Port is what the guest NVMe driver plugs into: a virtual or physical NVMe
// controller exposing queue pairs. Implementations are the passthrough
// device binding, MDev-NVMe, and NVMetro's virtual controller.
type Port interface {
	// Namespace geometry seen by the guest.
	Namespace() nvme.NamespaceInfo
	// CreateQP allocates an I/O queue pair of the given depth. The returned
	// queues live in memory shared between guest and controller.
	CreateQP(depth uint32) *nvme.QueuePair
	// Ring is the submission doorbell for a queue. For mediated,
	// shadow-doorbell controllers it may be a no-op (the host polls).
	Ring(qid uint16)
	// SetIRQ registers the guest's completion interrupt callback for a
	// queue. The port is responsible for modeling delivery cost and delay;
	// fn runs in callback context (non-blocking).
	SetIRQ(qid uint16, fn func())
}

// DriverCosts models the guest NVMe driver's per-command CPU costs
// (block layer + driver submission path, and per-CQE completion handling).
type DriverCosts struct {
	Submit   sim.Duration
	Complete sim.Duration
}

// DefaultDriverCosts returns the calibrated guest driver cost model.
func DefaultDriverCosts() DriverCosts {
	return DriverCosts{Submit: 800 * sim.Nanosecond, Complete: 700 * sim.Nanosecond}
}

// qpState is a per-queue-pair driver context: tag allocation, outstanding
// request tracking and the completion handler.
type qpState struct {
	qp        *nvme.QueuePair
	vcpu      *sim.Thread
	reqs      []*Req     // by CID
	listPages [][]uint64 // preallocated PRP list pages by CID
	free      []uint16   // free CIDs
	slotCond  *sim.Cond  // waiters for a free slot
	irqCond   *sim.Cond  // completion notification
}

// NVMeDisk is the guest NVMe driver: it implements Disk on top of a Port,
// with one queue pair per vCPU (NVMe's lockless per-CPU queue model).
type NVMeDisk struct {
	vm    *VM
	port  Port
	costs DriverCosts
	info  nvme.NamespaceInfo
	qps   map[*sim.Thread]*qpState
	order []*qpState
}

// NewNVMeDisk initializes the driver: creates one queue pair of the given
// depth per vCPU and starts the completion handlers.
func NewNVMeDisk(v *VM, port Port, depth uint32, costs DriverCosts) *NVMeDisk {
	d := &NVMeDisk{vm: v, port: port, costs: costs, info: port.Namespace(), qps: make(map[*sim.Thread]*qpState)}
	for i := 0; i < v.NumVCPUs(); i++ {
		vcpu := v.VCPU(i)
		st := &qpState{
			qp:       port.CreateQP(depth),
			vcpu:     vcpu,
			reqs:     make([]*Req, depth),
			slotCond: sim.NewCond(v.Env),
			irqCond:  sim.NewCond(v.Env),
		}
		st.listPages = make([][]uint64, depth)
		for cid := uint16(0); cid < uint16(depth); cid++ {
			st.free = append(st.free, cid)
			// One PRP list page per slot supports transfers to 2 MiB.
			st.listPages[cid] = []uint64{v.Mem.MustAllocPages(1)}
		}
		port.SetIRQ(st.qp.SQ.ID, func() { st.irqCond.Signal(nil) })
		d.qps[vcpu] = st
		d.order = append(d.order, st)
		v.Env.Go(fmt.Sprintf("vm%d/nvme-irq-q%d", v.ID, st.qp.SQ.ID), func(p *sim.Proc) { d.completionLoop(p, st) })
	}
	return d
}

// BlockSize implements Disk.
func (d *NVMeDisk) BlockSize() uint32 { return d.info.BlockSize() }

// Blocks implements Disk.
func (d *NVMeDisk) Blocks() uint64 { return d.info.Size }

func (d *NVMeDisk) qpFor(vcpu *sim.Thread) *qpState {
	if st := d.qps[vcpu]; st != nil {
		return st
	}
	// Foreign thread (e.g. host-side test): use the first queue.
	return d.order[0]
}

// Submit implements Disk. It builds the NVMe command (including the PRP
// chain written into guest memory), pushes it to the per-vCPU submission
// queue and rings the doorbell. If the queue or tag space is full the
// calling process waits — matching a guest block layer with a bounded
// device queue.
func (d *NVMeDisk) Submit(p *sim.Proc, vcpu *sim.Thread, r *Req) {
	st := d.qpFor(vcpu)
	r.Submitted = p.Now()
	vcpu.Exec(p, d.costs.Submit)

	for len(st.free) == 0 || st.qp.SQ.Full() {
		st.slotCond.Wait()
	}
	cid := st.free[len(st.free)-1]
	st.free = st.free[:len(st.free)-1]
	st.reqs[cid] = r

	var cmd nvme.Command
	switch r.Op {
	case OpFlush:
		cmd = nvme.NewFlush(cid, 1)
	case OpTrim:
		cmd = nvme.Command{}
		cmd.SetOpcode(nvme.OpDSM)
		cmd.SetCID(cid)
		cmd.SetNSID(1)
		cmd.SetSLBA(r.LBA)
		cmd.SetNLB(uint16(r.Blocks - 1))
	default:
		op := nvme.OpRead
		if r.Op == OpWrite {
			op = nvme.OpWrite
		}
		lp := st.listPages[cid]
		li := 0
		alloc := func() uint64 {
			if li >= len(lp) {
				panic("vm: transfer exceeds preallocated PRP list pages")
			}
			a := lp[li]
			li++
			return a
		}
		prp1, prp2, err := nvme.BuildPRP(d.vm.Mem, r.BufPages, alloc)
		if err != nil {
			panic(err)
		}
		cmd = nvme.NewRW(op, cid, 1, r.LBA, r.Blocks, prp1, prp2)
	}

	if !st.qp.SQ.Push(&cmd) {
		panic("vm: SQ full after slot reservation")
	}
	d.port.Ring(st.qp.SQ.ID)
}

func (d *NVMeDisk) completionLoop(p *sim.Proc, st *qpState) {
	var e nvme.Completion
	for {
		st.irqCond.Wait()
		// Interrupt handler entry on the owning vCPU.
		st.vcpu.Exec(p, d.vm.Costs.GuestIRQ)
		for st.qp.CQ.Pop(&e) {
			st.vcpu.Exec(p, d.costs.Complete)
			cid := e.CID()
			r := st.reqs[cid]
			if r == nil {
				panic(fmt.Sprintf("vm: completion for idle cid %d", cid))
			}
			st.reqs[cid] = nil
			st.free = append(st.free, cid)
			st.slotCond.Signal(nil)
			r.Complete(d.vm.Env, e.Status())
		}
	}
}
