// Package vm models the virtual machine side of the system: guest memory,
// vCPUs pinned to simulated host cores, the cost of VM exits and interrupt
// injection, and the guest-visible asynchronous block device interface that
// every storage stack (NVMetro, MDev, passthrough, QEMU, vhost, SPDK)
// implements.
package vm

import (
	"fmt"

	"nvmetro/internal/guestmem"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// VirtCosts is the virtualization cost model. Values approximate published
// KVM microbenchmarks on Ivy Bridge-class hardware: a full trap-and-emulate
// round trip is a few microseconds; injecting a virtual interrupt into a
// running guest costs on the order of a microsecond of hypervisor work plus
// guest-side handler time; forwarding a physical device interrupt through
// the host into the guest (passthrough without posted interrupts) is the
// most expensive delivery path.
type VirtCosts struct {
	VMExit       sim.Duration // trap-and-emulate round trip on the vCPU
	IRQInject    sim.Duration // hypervisor work to inject a virtual IRQ
	GuestIRQ     sim.Duration // guest interrupt handler entry/exit
	HWIRQForward sim.Duration // physical IRQ -> host -> guest forwarding
}

// DefaultVirtCosts returns the calibrated cost model.
func DefaultVirtCosts() VirtCosts {
	return VirtCosts{
		VMExit:       4 * sim.Microsecond,
		IRQInject:    1200 * sim.Nanosecond,
		GuestIRQ:     1500 * sim.Nanosecond,
		HWIRQForward: 13 * sim.Microsecond,
	}
}

// VM is one virtual machine: memory plus vCPU threads on host cores.
type VM struct {
	ID    int
	Env   *sim.Env
	Mem   *guestmem.Memory
	Costs VirtCosts
	vcpus []*sim.Thread
	next  int
}

// New creates a VM with memBytes of guest memory and vcpus vCPU threads
// pinned to consecutive host cores starting at firstCore.
func New(env *sim.Env, id int, cpu *sim.CPU, firstCore, vcpus int, memBytes uint64, costs VirtCosts) *VM {
	v := &VM{ID: id, Env: env, Mem: guestmem.New(memBytes), Costs: costs}
	for i := 0; i < vcpus; i++ {
		v.vcpus = append(v.vcpus, cpu.ThreadOn(firstCore+i, fmt.Sprintf("vm%d/guest", id)))
	}
	return v
}

// NumVCPUs returns the vCPU count.
func (v *VM) NumVCPUs() int { return len(v.vcpus) }

// VCPU returns vCPU i.
func (v *VM) VCPU(i int) *sim.Thread { return v.vcpus[i] }

// NextVCPU assigns vCPUs round-robin (for placing workload jobs).
func (v *VM) NextVCPU() *sim.Thread {
	t := v.vcpus[v.next%len(v.vcpus)]
	v.next++
	return t
}

// Op is a guest block operation type.
type Op uint8

// Guest block operations.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
	OpTrim
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	case OpTrim:
		return "trim"
	}
	return "?"
}

// Req is one asynchronous guest block request. Buffers live in guest
// memory; BufPages lists the page-aligned data pages (as handed out by
// guestmem.AllocBuffer) so drivers can build PRPs or descriptor chains
// without copying.
type Req struct {
	Op       Op
	LBA      uint64 // in disk logical blocks
	Blocks   uint32 // transfer length in logical blocks
	Buf      uint64 // guest-physical buffer base
	BufPages []uint64

	Status    nvme.Status
	Submitted sim.Time
	Completed sim.Time

	// OnDone, when set, runs in completion context (it must not block on
	// sim primitives; signaling conditions is fine).
	OnDone func(*Req)

	done bool
	cond *sim.Cond
}

// Bytes returns the transfer size for a disk with the given block size.
func (r *Req) Bytes(blockSize uint32) uint32 { return r.Blocks * blockSize }

// Complete marks the request done. Drivers call it exactly once.
func (r *Req) Complete(env *sim.Env, status nvme.Status) {
	if r.done {
		panic("vm: request completed twice")
	}
	r.done = true
	r.Status = status
	r.Completed = env.Now()
	if r.cond != nil {
		r.cond.Signal(nil)
	}
	if r.OnDone != nil {
		r.OnDone(r)
	}
}

// Done reports whether the request has completed.
func (r *Req) Done() bool { return r.done }

// Wait parks the calling process until the request completes.
func (r *Req) Wait(env *sim.Env) {
	if r.done {
		return
	}
	if r.cond == nil {
		r.cond = sim.NewCond(env)
	}
	r.Wait2()
}

// Wait2 is the internal wait (cond must exist).
func (r *Req) Wait2() {
	for !r.done {
		r.cond.Wait()
	}
}

// Latency returns the request's completion latency.
func (r *Req) Latency() sim.Duration { return r.Completed.Sub(r.Submitted) }

// Disk is the guest-visible asynchronous block device. Submit must be
// called from a simulated guest process; the driver charges guest-side
// submission costs to the given vCPU thread and completes the request
// (including guest-side completion costs) asynchronously.
type Disk interface {
	BlockSize() uint32
	Blocks() uint64
	Submit(p *sim.Proc, vcpu *sim.Thread, r *Req)
}

// SubmitAndWait is a synchronous convenience around Disk.Submit.
func SubmitAndWait(p *sim.Proc, d Disk, vcpu *sim.Thread, r *Req) nvme.Status {
	r.cond = sim.NewCond(p.Env())
	d.Submit(p, vcpu, r)
	r.Wait(p.Env())
	return r.Status
}
