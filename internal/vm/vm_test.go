package vm

import (
	"bytes"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// rawPort binds the guest driver straight to the simulated device with
// hardware-interrupt forwarding — a minimal passthrough used to test the
// driver in isolation.
type rawPort struct {
	env *sim.Env
	dev *device.Device
	v   *VM
}

func (rp *rawPort) Namespace() nvme.NamespaceInfo { return rp.dev.Namespace(1).Info }
func (rp *rawPort) CreateQP(depth uint32) *nvme.QueuePair {
	return rp.dev.CreateQueuePair(depth, rp.v.Mem)
}
func (rp *rawPort) Ring(qid uint16) { rp.dev.Ring(qid) }
func (rp *rawPort) SetIRQ(qid uint16, fn func()) {
	qp := findQP(rp.dev, qid)
	cost := rp.v.Costs.HWIRQForward
	qp.CQ.OnPost = func() { rp.env.After(cost, fn) }
}

// findQP digs the queue pair back out of the device for test wiring.
var qpRegistry = map[*device.Device]map[uint16]*nvme.QueuePair{}

func findQP(d *device.Device, qid uint16) *nvme.QueuePair { return qpRegistry[d][qid] }

type registeringPort struct{ rawPort }

func (rp *registeringPort) CreateQP(depth uint32) *nvme.QueuePair {
	qp := rp.dev.CreateQueuePair(depth, rp.v.Mem)
	if qpRegistry[rp.dev] == nil {
		qpRegistry[rp.dev] = map[uint16]*nvme.QueuePair{}
	}
	qpRegistry[rp.dev][qp.SQ.ID] = qp
	return qp
}

func newTestVM(t *testing.T, store device.Store) (*sim.Env, *VM, *NVMeDisk) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 8)
	dev := device.New(env, device.Default970EvoPlus(), store)
	v := New(env, 0, cpu, 0, 2, 64<<20, DefaultVirtCosts())
	port := &registeringPort{rawPort{env: env, dev: dev, v: v}}
	disk := NewNVMeDisk(v, port, 64, DefaultDriverCosts())
	return env, v, disk
}

func run(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	env.Go("test", func(p *sim.Proc) { fn(p); ok = true; env.Stop() })
	env.RunUntil(sim.Time(30 * sim.Second))
	if !ok {
		t.Fatal("test body did not finish in simulated time")
	}
}

func TestNVMeDiskReadWrite(t *testing.T) {
	env, v, disk := newTestVM(t, device.NewMemStore(512))
	run(t, env, func(p *sim.Proc) {
		base, pages, err := v.Mem.AllocBuffer(4096)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0x77}, 4096)
		v.Mem.WriteAt(data, base)
		w := &Req{Op: OpWrite, LBA: 64, Blocks: 8, Buf: base, BufPages: pages}
		if st := SubmitAndWait(p, disk, v.VCPU(0), w); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		v.Mem.WriteAt(make([]byte, 4096), base)
		r := &Req{Op: OpRead, LBA: 64, Blocks: 8, Buf: base, BufPages: pages}
		if st := SubmitAndWait(p, disk, v.VCPU(0), r); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		got := make([]byte, 4096)
		v.Mem.ReadAt(got, base)
		if !bytes.Equal(data, got) {
			t.Fatal("round trip mismatch")
		}
		if r.Latency() <= 0 {
			t.Fatal("latency not recorded")
		}
	})
}

func TestNVMeDiskQueueDepthParallelism(t *testing.T) {
	env, v, disk := newTestVM(t, device.NullStore{})
	run(t, env, func(p *sim.Proc) {
		base, pages, _ := v.Mem.AllocBuffer(512)
		// 32 concurrent reads should take far less than 32x QD1 latency.
		start := p.Now()
		reqs := make([]*Req, 32)
		done := sim.NewCond(env)
		remaining := len(reqs)
		for i := range reqs {
			reqs[i] = &Req{Op: OpRead, LBA: uint64(i), Blocks: 1, Buf: base, BufPages: pages,
				OnDone: func(*Req) { remaining--; done.Signal(nil) }}
			disk.Submit(p, v.VCPU(0), reqs[i])
		}
		for remaining > 0 {
			done.Wait()
		}
		elapsed := p.Now().Sub(start)
		if elapsed > sim.Duration(32*80)*sim.Microsecond/4 {
			t.Fatalf("32 parallel reads took %v; device parallelism not exploited", elapsed)
		}
		for _, r := range reqs {
			if !r.Status.OK() {
				t.Fatalf("status %v", r.Status)
			}
		}
	})
}

func TestNVMeDiskSlotExhaustionBlocks(t *testing.T) {
	env, v, disk := newTestVM(t, device.NullStore{})
	run(t, env, func(p *sim.Proc) {
		base, pages, _ := v.Mem.AllocBuffer(512)
		var completed int
		// Submit 3x the queue depth; all must eventually complete.
		for i := 0; i < 192; i++ {
			r := &Req{Op: OpRead, LBA: uint64(i), Blocks: 1, Buf: base, BufPages: pages,
				OnDone: func(*Req) { completed++ }}
			disk.Submit(p, v.VCPU(0), r)
		}
		for completed < 192 {
			p.Sleep(100 * sim.Microsecond)
		}
	})
}

func TestNVMeDiskPerVCPUQueues(t *testing.T) {
	env, v, disk := newTestVM(t, device.NullStore{})
	if len(disk.order) != 2 {
		t.Fatalf("expected 2 queue pairs for 2 vCPUs, got %d", len(disk.order))
	}
	run(t, env, func(p *sim.Proc) {
		base, pages, _ := v.Mem.AllocBuffer(512)
		r0 := &Req{Op: OpRead, LBA: 0, Blocks: 1, Buf: base, BufPages: pages}
		r1 := &Req{Op: OpRead, LBA: 1, Blocks: 1, Buf: base, BufPages: pages}
		if st := SubmitAndWait(p, disk, v.VCPU(0), r0); !st.OK() {
			t.Fatal(st)
		}
		if st := SubmitAndWait(p, disk, v.VCPU(1), r1); !st.OK() {
			t.Fatal(st)
		}
	})
	if disk.order[0].qp.SQ.ID == disk.order[1].qp.SQ.ID {
		t.Fatal("vCPUs share a queue pair")
	}
}

func TestFlushAndTrim(t *testing.T) {
	env, v, disk := newTestVM(t, device.NewMemStore(512))
	run(t, env, func(p *sim.Proc) {
		f := &Req{Op: OpFlush}
		if st := SubmitAndWait(p, disk, v.VCPU(0), f); !st.OK() {
			t.Fatalf("flush: %v", st)
		}
		tr := &Req{Op: OpTrim, LBA: 0, Blocks: 8}
		if st := SubmitAndWait(p, disk, v.VCPU(0), tr); !st.OK() {
			t.Fatalf("trim: %v", st)
		}
	})
}

func TestGuestCPUAccounting(t *testing.T) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	dev := device.New(env, device.Default970EvoPlus(), device.NullStore{})
	v := New(env, 3, cpu, 0, 1, 16<<20, DefaultVirtCosts())
	port := &registeringPort{rawPort{env: env, dev: dev, v: v}}
	disk := NewNVMeDisk(v, port, 32, DefaultDriverCosts())
	snap := cpu.Snapshot()
	run(t, env, func(p *sim.Proc) {
		base, pages, _ := v.Mem.AllocBuffer(512)
		for i := 0; i < 10; i++ {
			r := &Req{Op: OpRead, LBA: uint64(i), Blocks: 1, Buf: base, BufPages: pages}
			SubmitAndWait(p, disk, v.VCPU(0), r)
		}
	})
	u := cpu.Since(snap)
	if u.ByTag["vm3/guest"] <= 0 {
		t.Fatalf("no guest CPU accounted: %v", u.ByTag)
	}
}
