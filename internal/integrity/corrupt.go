package integrity

import (
	"hash/fnv"
	"math/rand"

	"nvmetro/internal/device"
	"nvmetro/internal/fault"
)

// CorruptingStore wraps a device.Store and injects silent data corruption
// below the device model: every store operation draws a decision from its
// own fault-injector site, so a fixed plan seed yields a fixed corruption
// trace regardless of what the device's completion-path injector does.
//
// Corruption is silent by construction — the wrapped operation still
// "succeeds" and the device completes the command OK. What each kind
// persists:
//
//   - BitRot fires on a read: one pseudo-random bit of the read range is
//     flipped in the backing store (the rot is persistent, not transient)
//     and the corrupted data is returned.
//   - TornWrite persists only the first half of the payload; the tail
//     keeps its old content (a power cut mid-transfer).
//   - MisdirectedWrite lands the payload at a pseudo-random wrong LBA,
//     leaving the addressed blocks stale and clobbering an unrelated
//     range.
//   - LostWrite acknowledges the write without persisting anything.
type CorruptingStore struct {
	inner     device.Store
	inj       *fault.Injector
	geo       *rand.Rand // corruption geometry (bit position, wrong LBA)
	blockSize uint32
	blocks    uint64 // capacity, for picking misdirect targets

	// Stats
	BitRots     uint64
	TornWrites  uint64
	Misdirected uint64
	LostWrites  uint64
}

// NewCorruptingStore wraps inner with corruption drawn from plan at the
// given injection site. The geometry stream (which bit, which wrong LBA)
// is seeded from (plan seed, site) independently of the decision stream,
// so adding rules never shifts where existing corruptions land.
func NewCorruptingStore(inner device.Store, plan *fault.Plan, site string, blockSize uint32, blocks uint64) *CorruptingStore {
	h := fnv.New64a()
	h.Write([]byte(site + "/geometry"))
	return &CorruptingStore{
		inner:     inner,
		inj:       plan.Injector(site),
		geo:       rand.New(rand.NewSource(plan.Seed ^ int64(h.Sum64()))),
		blockSize: blockSize,
		blocks:    blocks,
	}
}

// Inner returns the wrapped store (for content fingerprinting).
func (s *CorruptingStore) Inner() device.Store { return s.inner }

// Injector returns the store's fault injector (for counter export).
func (s *CorruptingStore) Injector() *fault.Injector { return s.inj }

// ReadBlocks reads from the wrapped store, possibly rotting a bit first.
func (s *CorruptingStore) ReadBlocks(lba uint64, buf []byte) {
	if d := s.inj.Decide(fault.ClassRead); d.HasCorrupt && d.Corrupt == fault.BitRot && len(buf) > 0 {
		s.BitRots++
		bit := s.geo.Intn(len(buf) * 8)
		// Persist the flip: read the victim block, rot it, write it back.
		victim := lba + uint64(bit/8)/uint64(s.blockSize)
		blk := make([]byte, s.blockSize)
		s.inner.ReadBlocks(victim, blk)
		inBlk := bit - int(victim-lba)*int(s.blockSize)*8
		blk[inBlk/8] ^= 1 << (inBlk % 8)
		s.inner.WriteBlocks(victim, blk)
	}
	s.inner.ReadBlocks(lba, buf)
}

// WriteBlocks writes to the wrapped store, possibly tearing, misdirecting
// or losing the write.
func (s *CorruptingStore) WriteBlocks(lba uint64, buf []byte) {
	d := s.inj.Decide(fault.ClassWrite)
	if !d.HasCorrupt {
		s.inner.WriteBlocks(lba, buf)
		return
	}
	switch d.Corrupt {
	case fault.TornWrite:
		s.TornWrites++
		bs := int(s.blockSize)
		if cut := len(buf) / 2 / bs * bs; cut > 0 {
			s.inner.WriteBlocks(lba, buf[:cut])
		} else {
			// Single-block write: tear inside the block — new head,
			// old tail.
			blk := make([]byte, bs)
			s.inner.ReadBlocks(lba, blk)
			copy(blk, buf[:bs/2])
			s.inner.WriteBlocks(lba, blk)
		}
	case fault.MisdirectedWrite:
		s.Misdirected++
		nb := uint64(len(buf)) / uint64(s.blockSize)
		wrong := lba
		if s.blocks > nb {
			for tries := 0; tries < 8; tries++ {
				wrong = uint64(s.geo.Int63n(int64(s.blocks - nb + 1)))
				if wrong+nb <= lba || wrong >= lba+nb {
					break
				}
			}
		}
		s.inner.WriteBlocks(wrong, buf)
	case fault.LostWrite:
		s.LostWrites++
	default:
		s.inner.WriteBlocks(lba, buf)
	}
}

// TrimBlocks passes through.
func (s *CorruptingStore) TrimBlocks(lba uint64, blocks uint32) {
	s.inner.TrimBlocks(lba, blocks)
}
