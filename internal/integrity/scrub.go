package integrity

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
)

// ScrubConfig tunes the background scrubber.
type ScrubConfig struct {
	// Rate is the token refill rate of the scrubber's QoS bucket, in
	// service-cost units per second. Scrub bytes are charged at the
	// scavenger-class multiplier, so the actual scrub bandwidth is
	// Rate / qos.DefaultClassCost(qos.ClassScavenger). Must be positive.
	Rate float64
	// Burst is the bucket depth in cost units (0: two chunks' worth).
	Burst float64
	// ChunkBlocks is the scrub read granule in device blocks (0: 256).
	ChunkBlocks uint64
	// Interval is the pause between passes in continuous mode (0: 5ms).
	Interval sim.Duration
	// Recheck is how long a suspect block is allowed to settle before the
	// confirming re-read — it filters the benign race where a guest write
	// has been stamped but its device write has not landed yet. Should
	// exceed the device's write service time (0: 200µs).
	Recheck sim.Duration
}

// DefaultScrubConfig returns a moderate policy: ~100 MB/s of actual
// scrub bandwidth at the scavenger multiplier, 128 KiB chunks.
func DefaultScrubConfig() ScrubConfig {
	return ScrubConfig{Rate: 100e6 * qos.DefaultClassCost(qos.ClassScavenger), ChunkBlocks: 256}
}

func (c ScrubConfig) withDefaults(shift uint8) (ScrubConfig, error) {
	if c.Rate <= 0 {
		return c, fmt.Errorf("integrity: scrub rate must be positive, got %g", c.Rate)
	}
	if c.ChunkBlocks == 0 {
		c.ChunkBlocks = 256
	}
	if c.Burst <= 0 {
		c.Burst = 2 * float64(c.ChunkBlocks<<shift) * qos.DefaultClassCost(qos.ClassScavenger)
	}
	if c.Interval <= 0 {
		c.Interval = 5 * sim.Millisecond
	}
	if c.Recheck <= 0 {
		c.Recheck = 200 * sim.Microsecond
	}
	return c, nil
}

// CacheInvalidator drops cached copies of repaired or quarantined ranges
// (satisfied by cache.Cache).
type CacheInvalidator interface {
	Invalidate(lba, blocks uint64)
}

// Scrubber is the background integrity worker: it walks the domain's
// stamped extents, cross-checks primary (and, when a mirror is attached,
// replica) content against the PI table, and repairs what it can —
// primary damage is rewritten from a verified replica copy, replica
// damage is handed to the Resyncer as targeted dirty regions, and blocks
// with no good copy anywhere are quarantined so guest reads fail honestly
// instead of returning wrong data.
//
// Pacing reuses the QoS token-bucket primitive charged at the
// scavenger-class cost multiplier, so scrub I/O is shaped like any other
// background-class work instead of by a bespoke limiter.
//
// A suspect block is never condemned on one read: the PI is stamped at
// admission, before the device write lands, so a scrub read can race a
// legitimate in-flight write. Suspects settle for cfg.Recheck and are
// re-read; only a block that still mismatches is treated as corrupt.
type Scrubber struct {
	env     *sim.Env
	dom     *Domain
	primary blockdev.BlockDevice
	th      *sim.Thread
	cfg     ScrubConfig
	shift   uint8

	rep    *storfn.Replicator
	resync *storfn.Resyncer
	att    *uif.Attachment
	cache  CacheInvalidator

	bucket *qos.Bucket
	cost   float64

	kick       *sim.Cond
	ioDone     *sim.Cond
	pending    bool
	continuous bool
	running    bool
	divergence bool

	// Detection latency: the first confirmed-corrupt block of the run.
	Detected      bool
	FirstDetectAt sim.Time

	// Stats
	Passes           uint64 // completed scrub passes
	ScrubbedBlocks   uint64 // blocks read and checked against PI
	Suspects         uint64 // first-read mismatches sent to recheck
	Races            uint64 // suspects that settled clean (in-flight writes)
	DetectedBlocks   uint64 // confirmed corrupt primary blocks
	RepairedBlocks   uint64 // primary blocks rewritten from the replica
	ReplicaBad       uint64 // confirmed corrupt replica blocks (resync repairs)
	QuarantineEvents uint64 // blocks quarantined (no good copy available)
	Errors           uint64 // scrub-leg I/O failures (fail-stop, skipped)
}

// NewScrubber creates a scrubber over the primary leg of a domain.
// blockShift is log2 of the device block size; th is the CPU thread scrub
// I/O submission is charged to.
func NewScrubber(env *sim.Env, dom *Domain, primary blockdev.BlockDevice, th *sim.Thread, blockShift uint8, cfg ScrubConfig) (*Scrubber, error) {
	cfg, err := cfg.withDefaults(blockShift)
	if err != nil {
		return nil, err
	}
	s := &Scrubber{
		env: env, dom: dom, primary: primary, th: th, cfg: cfg, shift: blockShift,
		bucket: qos.NewBucket(cfg.Rate, cfg.Burst),
		cost:   qos.DefaultClassCost(qos.ClassScavenger),
		kick:   sim.NewCond(env), ioDone: sim.NewCond(env),
	}
	env.Go("integrity-scrub", s.run)
	return s, nil
}

// Config returns the active scrub policy.
func (s *Scrubber) Config() ScrubConfig { return s.cfg }

// SetReplica attaches the mirror leg: rep/resync drive targeted repair of
// replica divergence, att is the uif ring the replica is reached through.
func (s *Scrubber) SetReplica(rep *storfn.Replicator, rs *storfn.Resyncer, att *uif.Attachment) {
	s.rep, s.resync, s.att = rep, rs, att
}

// SetAttachment repoints the replica leg at a new uif attachment
// generation (supervisor restart).
func (s *Scrubber) SetAttachment(att *uif.Attachment) {
	if s.att != nil {
		s.att = att
	}
}

// SetCache registers the cache to invalidate on repair or quarantine.
func (s *Scrubber) SetCache(c CacheInvalidator) { s.cache = c }

// Trigger schedules one scrub pass.
func (s *Scrubber) Trigger() {
	s.pending = true
	s.kick.Signal(nil)
}

// Start begins continuous scrubbing: passes separated by cfg.Interval.
func (s *Scrubber) Start() {
	s.continuous = true
	s.Trigger()
}

// Stop ends continuous mode after the current pass.
func (s *Scrubber) Stop() { s.continuous = false }

// Running reports whether a pass is in progress.
func (s *Scrubber) Running() bool { return s.running }

func (s *Scrubber) run(p *sim.Proc) {
	for {
		for !s.pending {
			s.kick.Wait()
		}
		s.pending = false
		s.running = true
		s.pass(p)
		s.running = false
		if s.continuous {
			p.Sleep(s.cfg.Interval)
			s.pending = true
		}
	}
}

// pass walks every stamped extent once, then hands accumulated replica
// divergence to the resync engine.
func (s *Scrubber) pass(p *sim.Proc) {
	for _, r := range s.dom.StampedRanges() {
		for off := uint64(0); off < r.Blocks; {
			n := r.Blocks - off
			if n > s.cfg.ChunkBlocks {
				n = s.cfg.ChunkBlocks
			}
			s.scrubChunk(p, r.LBA+off, n)
			off += n
		}
	}
	s.Passes++
	if s.divergence && s.resync != nil {
		s.divergence = false
		s.resync.Trigger()
	}
}

// scrubChunk reads one chunk from the primary (and replica, when
// attached), checks every block against PI, and sends mismatches to the
// recheck protocol. A guard-check status from a verifying lower layer is
// a detection signal, not an I/O error: the payload was still delivered.
func (s *Scrubber) scrubChunk(p *sim.Proc, lba, blocks uint64) {
	nbytes := blocks << s.shift
	s.throttle(p, nbytes)
	pbuf := make([]byte, nbytes)
	if st := s.primaryIO(p, blockdev.BioRead, lba, pbuf); !st.OK() && st != nvme.SCGuardCheck {
		s.Errors++
		return
	}
	var sbuf []byte
	if s.att != nil {
		s.throttle(p, nbytes)
		sbuf = make([]byte, nbytes)
		if st := s.secondaryIO(p, blockdev.BioRead, lba, sbuf); !st.OK() && st != nvme.SCGuardCheck {
			s.Errors++
			sbuf = nil
		}
	}
	bs := uint64(s.dom.blockSize)
	var suspects []uint64
	for i := uint64(0); i < blocks; i++ {
		s.ScrubbedBlocks++
		ok := s.dom.VerifyBlock(lba+i, pbuf[i*bs:(i+1)*bs])
		if ok && sbuf != nil {
			ok = s.dom.VerifyBlock(lba+i, sbuf[i*bs:(i+1)*bs])
		}
		if !ok {
			suspects = append(suspects, lba+i)
		} else if s.dom.Quarantined(lba+i, 1) {
			// The block verifies on every leg again (a racing guest write
			// landed after the quarantine decision): it is safe to serve.
			s.dom.Unquarantine(lba+i, 1)
		}
	}
	if len(suspects) == 0 {
		return
	}
	s.Suspects += uint64(len(suspects))
	p.Sleep(s.cfg.Recheck)
	for _, sl := range suspects {
		s.recheck(p, sl)
	}
}

// recheck re-reads one settled suspect block on both legs and acts on
// what is still wrong: repair the primary from a verified replica copy,
// re-dirty a diverged replica for the resync engine, or quarantine when
// no good copy exists.
func (s *Scrubber) recheck(p *sim.Proc, lba uint64) {
	bs := uint64(s.dom.blockSize)
	s.throttle(p, bs)
	pblk := make([]byte, bs)
	if st := s.primaryIO(p, blockdev.BioRead, lba, pblk); !st.OK() && st != nvme.SCGuardCheck {
		s.Errors++
		return
	}
	pGood := s.dom.VerifyBlock(lba, pblk)
	var sblk []byte
	sGood := false
	if s.att != nil {
		s.throttle(p, bs)
		sblk = make([]byte, bs)
		if st := s.secondaryIO(p, blockdev.BioRead, lba, sblk); st.OK() || st == nvme.SCGuardCheck {
			sGood = s.dom.VerifyBlock(lba, sblk)
		} else {
			s.Errors++
			sblk = nil
		}
	}
	if pGood && (sblk == nil || sGood) {
		s.Races++ // an in-flight guest write; nothing is wrong
		return
	}
	if !s.Detected {
		s.Detected, s.FirstDetectAt = true, p.Now()
	}
	if !pGood {
		s.DetectedBlocks++
		if sGood {
			// The replica copy matches PI: rewrite the primary block.
			s.throttle(p, bs)
			if st := s.primaryIO(p, blockdev.BioWrite, lba, sblk); st.OK() {
				s.RepairedBlocks++
				s.dom.Unquarantine(lba, 1)
				if s.cache != nil {
					s.cache.Invalidate(lba, 1)
				}
				return
			}
			s.Errors++
		}
		// No good copy anywhere: quarantine so guest reads fail with a
		// media error instead of serving wrong data. A later pass can
		// still repair and lift the quarantine if the replica recovers.
		s.QuarantineEvents++
		s.dom.Quarantine(lba, 1)
		if s.cache != nil {
			s.cache.Invalidate(lba, 1)
		}
		return
	}
	// Primary good, replica diverged: targeted resync repairs it.
	s.ReplicaBad++
	if s.resync != nil {
		s.resync.NoteDivergence(lba, 1)
		s.divergence = true
	} else if s.rep != nil {
		s.rep.Dirty.Add(lba, 1)
	}
}

// throttle charges nbytes of scrub traffic at the scavenger cost
// multiplier against the QoS bucket, sleeping out any deficit.
func (s *Scrubber) throttle(p *sim.Proc, nbytes uint64) {
	cost := float64(nbytes) * s.cost
	for !s.bucket.Take(cost, p.Now()) {
		p.Sleep(s.bucket.WaitTime(cost, p.Now()))
	}
}

// sector converts a device LBA to a 512-byte sector.
func (s *Scrubber) sector(lba uint64) uint64 {
	return lba << s.shift / blockdev.SectorSize
}

// primaryIO performs one synchronous bio against the primary leg.
func (s *Scrubber) primaryIO(p *sim.Proc, op blockdev.BioOp, lba uint64, buf []byte) nvme.Status {
	var st nvme.Status
	done := false
	bio := &blockdev.Bio{Op: op, Sector: s.sector(lba), Data: buf}
	bio.OnDone = func(v nvme.Status) {
		st, done = v, true
		s.ioDone.Signal(nil)
	}
	s.primary.SubmitBio(p, s.th, bio)
	for !done {
		s.ioDone.Wait()
	}
	return st
}

// secondaryIO performs one synchronous I/O against the replica leg
// through the mirror's uif backend ring.
func (s *Scrubber) secondaryIO(p *sim.Proc, op blockdev.BioOp, lba uint64, buf []byte) nvme.Status {
	var st nvme.Status
	done := false
	s.att.SubmitBackendIO(op, s.sector(lba), buf, func(_ *sim.Proc, _ *sim.Thread, v nvme.Status) {
		st, done = v, true
		s.ioDone.Signal(nil)
	})
	for !done {
		s.ioDone.Wait()
	}
	return st
}

// Domain returns the protection-info domain this scrubber verifies.
func (s *Scrubber) Domain() *Domain { return s.dom }

// Collect folds the scrub counters into cs under the "scrub." prefix.
func (s *Scrubber) Collect(cs *metrics.CounterSet) {
	cs.Add("scrub.passes", s.Passes)
	cs.Add("scrub.blocks", s.ScrubbedBlocks)
	cs.Add("scrub.suspects", s.Suspects)
	cs.Add("scrub.races", s.Races)
	cs.Add("scrub.detected", s.DetectedBlocks)
	cs.Add("scrub.repaired", s.RepairedBlocks)
	cs.Add("scrub.replica_bad", s.ReplicaBad)
	cs.Add("scrub.quarantined", s.QuarantineEvents)
	cs.Add("scrub.errors", s.Errors)
}
