// Package integrity implements end-to-end data integrity for the NVMetro
// data path: per-block protection information (PI) stamped on the write
// path at the mediation point and verified at every trust boundary, a
// quarantine set that turns unrepairable silent corruption into honest
// media errors, and a rate-limited background scrubber that cross-checks
// PI and primary-vs-replica content and repairs divergence through the
// resync engine.
//
// The design is the software analogue of NVMe end-to-end protection
// (T10 PI): the router is the one component every guest I/O traverses, so
// stamping there and verifying at each hop bounds where corruption can
// hide. A PI record carries the block's payload CRC plus a generation tag
// (which write stamped it) — CRC mismatch detects bit rot, torn writes
// and misdirected overwrites; a stale generation with a matching old CRC
// is how lost writes on one mirror leg show up during a scrub
// cross-check.
package integrity

import (
	"fmt"
	"hash/crc32"
	"math/bits"
	"sort"

	"nvmetro/internal/metrics"
	"nvmetro/internal/storfn"
)

// Record is the protection information for one logical block.
type Record struct {
	CRC uint32 // payload CRC32 (IEEE), same polynomial as MemStore.ContentCRC
	Gen uint64 // generation of the stamping write (monotonic per domain)
}

// Domain is the PI table for one mediated device: the authoritative
// expected content of every stamped block, shared by every boundary guard
// on the device's primary and replica paths (a mirror's legs hold the
// same logical bytes, so they share one expectation). It also owns the
// quarantine set: ranges whose content is known bad and unrepairable,
// which must fail guest reads instead of returning wrong data.
//
// The domain is driven synchronously from simulation processes under the
// run token, so — like the rest of the stack — it needs no locking and
// evolves deterministically from the I/O sequence.
type Domain struct {
	blockSize uint32
	shift     uint8
	gen       uint64
	pi        map[uint64]Record
	quar      storfn.DirtyRegions

	guards []*Guard
}

// NewDomain creates a PI domain for the given logical block size, which
// must be a power of two.
func NewDomain(blockSize uint32) (*Domain, error) {
	if blockSize == 0 || bits.OnesCount32(blockSize) != 1 {
		return nil, fmt.Errorf("integrity: block size %d not a power of two", blockSize)
	}
	return &Domain{
		blockSize: blockSize,
		shift:     uint8(bits.TrailingZeros32(blockSize)),
		pi:        make(map[uint64]Record),
	}, nil
}

// BlockSize returns the domain's logical block size in bytes.
func (d *Domain) BlockSize() uint32 { return d.blockSize }

// Guard creates a named boundary guard sharing this domain's PI table.
// The name keys the guard's counters in Collect.
func (d *Domain) Guard(name string) *Guard {
	g := &Guard{d: d, name: name}
	d.guards = append(d.guards, g)
	return g
}

// Stamp records PI for the blocks of data starting at lba. All blocks of
// one stamp share a generation. A full overwrite supersedes whatever was
// there before, so stamping also lifts any quarantine on the range: the
// old bad content is gone.
func (d *Domain) Stamp(lba uint64, data []byte) {
	d.gen++
	bs := int(d.blockSize)
	blocks := uint64(len(data) / bs)
	for i := uint64(0); i < blocks; i++ {
		off := int(i) * bs
		d.pi[lba+i] = Record{CRC: crc32.ChecksumIEEE(data[off : off+bs]), Gen: d.gen}
	}
	d.quar.Remove(lba, blocks)
}

// Record returns the PI record for one block.
func (d *Domain) Record(lba uint64) (Record, bool) {
	r, ok := d.pi[lba]
	return r, ok
}

// Verify checks the blocks of data starting at lba against their PI
// records. Blocks without a record pass: unstamped means unprotected
// (never written through the mediation point), not wrong.
func (d *Domain) Verify(lba uint64, data []byte) bool {
	bs := int(d.blockSize)
	for i := 0; i+bs <= len(data); i += bs {
		if r, ok := d.pi[lba]; ok && r.CRC != crc32.ChecksumIEEE(data[i:i+bs]) {
			return false
		}
		lba++
	}
	return true
}

// VerifyBlock checks a single block's payload against its record.
func (d *Domain) VerifyBlock(lba uint64, block []byte) bool {
	r, ok := d.pi[lba]
	return !ok || r.CRC == crc32.ChecksumIEEE(block)
}

// Stamped returns the number of blocks holding PI records.
func (d *Domain) Stamped() uint64 { return uint64(len(d.pi)) }

// StampedRanges returns the stamped extents, sorted and coalesced — the
// scrubber's walk list. Only stamped blocks can be scrubbed: an unstamped
// block has no expectation to check against.
func (d *Domain) StampedRanges() []storfn.Range {
	lbas := make([]uint64, 0, len(d.pi))
	for lba := range d.pi {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	var out []storfn.Range
	for _, lba := range lbas {
		if n := len(out); n > 0 && out[n-1].LBA+out[n-1].Blocks == lba {
			out[n-1].Blocks++
			continue
		}
		out = append(out, storfn.Range{LBA: lba, Blocks: 1})
	}
	return out
}

// Quarantine marks [lba, lba+blocks) unrepairable: guest reads covering
// any part of it must fail with a media error instead of serving data
// that cannot be trusted.
func (d *Domain) Quarantine(lba, blocks uint64) { d.quar.Add(lba, blocks) }

// Unquarantine lifts the quarantine on [lba, lba+blocks).
func (d *Domain) Unquarantine(lba, blocks uint64) { d.quar.Remove(lba, blocks) }

// Quarantined reports whether any block of [lba, lba+blocks) is
// quarantined.
func (d *Domain) Quarantined(lba, blocks uint64) bool {
	for i := uint64(0); i < blocks; i++ {
		if d.quar.Contains(lba + i) {
			return true
		}
	}
	return false
}

// QuarantinedBlocks returns the total number of quarantined blocks.
func (d *Domain) QuarantinedBlocks() uint64 { return d.quar.Blocks() }

// QuarantineRanges returns the quarantined extents in LBA order.
func (d *Domain) QuarantineRanges() []storfn.Range { return d.quar.Ranges() }

// Collect exports the domain's gauges and every guard's counters under
// the "pi." prefix, guards sorted by name for a stable schema.
func (d *Domain) Collect(cs *metrics.CounterSet) {
	cs.Add("pi.stamped", d.Stamped())
	cs.Add("pi.quarantined", d.QuarantinedBlocks())
	names := make([]string, len(d.guards))
	byName := make(map[string]*Guard, len(d.guards))
	for i, g := range d.guards {
		names[i] = g.name
		byName[g.name] = g
	}
	sort.Strings(names)
	for _, n := range names {
		g := byName[n]
		cs.Add("pi."+n+".stamped", g.Stamped)
		cs.Add("pi."+n+".ok", g.OK)
		cs.Add("pi."+n+".bad", g.Bad)
	}
}

// Guard is one trust boundary's view of a domain: Verify/Stamp plus
// per-boundary counters, so a failed check is attributable to the hop
// that caught it (blockdev completion, cache fill, replica receive, ...).
type Guard struct {
	d    *Domain
	name string

	Stamped uint64 // blocks stamped through this guard
	OK      uint64 // verified blocks that passed
	Bad     uint64 // verified blocks that failed
}

// Name returns the boundary name.
func (g *Guard) Name() string { return g.name }

// Domain returns the guard's PI domain.
func (g *Guard) Domain() *Domain { return g.d }

// Stamp records PI for data at lba through this boundary.
func (g *Guard) Stamp(lba uint64, data []byte) {
	if g == nil {
		return
	}
	g.Stamped += uint64(len(data)) >> g.d.shift
	g.d.Stamp(lba, data)
}

// Verify checks data at lba against the domain, counting per block.
func (g *Guard) Verify(lba uint64, data []byte) bool {
	if g == nil {
		return true
	}
	bs := int(g.d.blockSize)
	ok := true
	for i := 0; i+bs <= len(data); i += bs {
		if g.d.VerifyBlock(lba, data[i:i+bs]) {
			g.OK++
		} else {
			g.Bad++
			ok = false
		}
		lba++
	}
	return ok
}

// Quarantined reports whether any block of the range is quarantined.
func (g *Guard) Quarantined(lba, blocks uint64) bool {
	if g == nil {
		return false
	}
	return g.d.Quarantined(lba, blocks)
}

// SectorGuard adapts a guard to a sector-addressed boundary (blockdev
// Bios, NVMe-oF captures): it translates a 512-byte sector number into
// the device-absolute LBA the domain is keyed by. Partial-block extents
// (possible only when the device block size exceeds the sector size and
// the I/O is misaligned) pass unverified rather than guessing.
type SectorGuard struct {
	G    *Guard
	Base uint64 // device-absolute LBA of sector 0
	Size uint32 // bytes per sector (blockdev.SectorSize)
}

// VerifySectors checks data at the given sector against the guard's
// domain.
func (s *SectorGuard) VerifySectors(sector uint64, data []byte) bool {
	if s == nil || s.G == nil {
		return true
	}
	off := sector * uint64(s.Size)
	if off&uint64(s.G.d.blockSize-1) != 0 {
		return true
	}
	return s.G.Verify(s.Base+(off>>s.G.d.shift), data)
}
