package integrity

import (
	"bytes"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/fault"
	"nvmetro/internal/metrics"
)

const bs = 4096

func fill(b byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestDomainStampVerify(t *testing.T) {
	d, err := NewDomain(bs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(3000); err == nil {
		t.Fatal("non-power-of-two block size accepted")
	}

	data := append(fill(0xAA, bs), fill(0xBB, bs)...)
	d.Stamp(10, data)
	if got := d.Stamped(); got != 2 {
		t.Fatalf("Stamped() = %d, want 2", got)
	}
	if !d.Verify(10, data) {
		t.Fatal("freshly stamped data does not verify")
	}
	if !d.VerifyBlock(11, data[bs:]) {
		t.Fatal("second block does not verify")
	}

	// Corrupt one byte: that block must fail, the other must pass.
	bad := append([]byte(nil), data...)
	bad[bs+7] ^= 0x40
	if d.Verify(10, bad) {
		t.Fatal("corrupted data verifies")
	}
	if !d.VerifyBlock(10, bad[:bs]) {
		t.Fatal("untouched block fails")
	}
	if d.VerifyBlock(11, bad[bs:]) {
		t.Fatal("corrupted block verifies")
	}

	// Unstamped blocks pass: no expectation, no verdict.
	if !d.Verify(1000, bad) {
		t.Fatal("unstamped range fails verification")
	}

	// Re-stamping advances the generation and replaces the expectation.
	r0, _ := d.Record(11)
	d.Stamp(11, bad[bs:])
	r1, ok := d.Record(11)
	if !ok || r1.Gen <= r0.Gen {
		t.Fatalf("generation did not advance: %d -> %d", r0.Gen, r1.Gen)
	}
	if !d.VerifyBlock(11, bad[bs:]) {
		t.Fatal("re-stamped block does not verify")
	}
}

func TestDomainStampedRanges(t *testing.T) {
	d, _ := NewDomain(bs)
	blk := fill(1, bs)
	for _, lba := range []uint64{7, 5, 6, 20, 100, 101} {
		d.Stamp(lba, blk)
	}
	got := d.StampedRanges()
	want := []struct{ lba, blocks uint64 }{{5, 3}, {20, 1}, {100, 2}}
	if len(got) != len(want) {
		t.Fatalf("StampedRanges() = %v, want 3 ranges", got)
	}
	for i, w := range want {
		if got[i].LBA != w.lba || got[i].Blocks != w.blocks {
			t.Fatalf("range %d = {%d,%d}, want {%d,%d}", i, got[i].LBA, got[i].Blocks, w.lba, w.blocks)
		}
	}
}

func TestDomainQuarantine(t *testing.T) {
	d, _ := NewDomain(bs)
	d.Quarantine(10, 4)
	if !d.Quarantined(12, 1) || !d.Quarantined(8, 3) {
		t.Fatal("quarantined range not detected")
	}
	if d.Quarantined(14, 2) || d.Quarantined(0, 10) {
		t.Fatal("clean range reported quarantined")
	}
	if got := d.QuarantinedBlocks(); got != 4 {
		t.Fatalf("QuarantinedBlocks() = %d, want 4", got)
	}
	d.Unquarantine(11, 1)
	if d.Quarantined(11, 1) || !d.Quarantined(10, 1) || !d.Quarantined(12, 2) {
		t.Fatal("partial unquarantine wrong")
	}
	// A full overwrite through Stamp lifts the quarantine: the bad
	// content is gone.
	d.Stamp(12, fill(9, 2*bs))
	if d.Quarantined(12, 2) {
		t.Fatal("stamp did not lift quarantine")
	}
	if !d.Quarantined(10, 1) {
		t.Fatal("stamp lifted quarantine outside its range")
	}
}

func TestGuardCounters(t *testing.T) {
	d, _ := NewDomain(bs)
	g := d.Guard("test")
	data := fill(3, 2*bs)
	g.Stamp(5, data)
	if g.Stamped != 2 {
		t.Fatalf("Stamped = %d, want 2", g.Stamped)
	}
	if !g.Verify(5, data) || g.OK != 2 || g.Bad != 0 {
		t.Fatalf("clean verify: OK=%d Bad=%d", g.OK, g.Bad)
	}
	data[0] ^= 1
	if g.Verify(5, data) || g.Bad != 1 || g.OK != 3 {
		t.Fatalf("dirty verify: OK=%d Bad=%d", g.OK, g.Bad)
	}

	// nil guard is a no-op pass-through.
	var nilG *Guard
	nilG.Stamp(0, data)
	if !nilG.Verify(0, data) || nilG.Quarantined(0, 1) {
		t.Fatal("nil guard not permissive")
	}

	var cs metrics.CounterSet
	d.Collect(&cs)
	names := cs.Names()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, k := range []string{"pi.stamped", "pi.test.stamped", "pi.test.ok", "pi.test.bad"} {
		if !have[k] {
			t.Fatalf("Collect missing %q", k)
		}
	}
	if cs.Get("pi.test.bad") != 1 {
		t.Fatalf("pi.test.bad = %d, want 1", cs.Get("pi.test.bad"))
	}
}

func TestSectorGuard(t *testing.T) {
	d, _ := NewDomain(bs)
	g := d.Guard("sector")
	data := fill(7, bs)
	d.Stamp(40, data) // device-absolute LBA 40

	sg := &SectorGuard{G: g, Base: 0, Size: 512}
	sector := uint64(40) * (bs / 512)
	if !sg.VerifySectors(sector, data) {
		t.Fatal("aligned sector read fails")
	}
	data[0] ^= 1
	if sg.VerifySectors(sector, data) {
		t.Fatal("corrupt sector read passes")
	}
	// Misaligned extents pass unverified rather than guessing.
	if !sg.VerifySectors(sector+1, data[:512]) {
		t.Fatal("misaligned extent did not pass")
	}
	// nil receiver and nil guard are permissive.
	var nilSG *SectorGuard
	if !nilSG.VerifySectors(0, data) || !(&SectorGuard{}).VerifySectors(0, data) {
		t.Fatal("nil sector guard not permissive")
	}
}

// newCorrupting builds a CorruptingStore over a fresh MemStore seeded with
// recognizable content in blocks [0, blocks).
func newCorrupting(t *testing.T, plan *fault.Plan, blocks uint64) (*CorruptingStore, *device.MemStore) {
	t.Helper()
	mem := device.NewMemStore(bs)
	for i := uint64(0); i < blocks; i++ {
		mem.WriteBlocks(i, fill(byte(i+1), bs))
	}
	return NewCorruptingStore(mem, plan, "store", bs, blocks), mem
}

func TestCorruptingStoreBitRot(t *testing.T) {
	plan := fault.NewPlan(42).WithRule(fault.Rule{Kind: fault.BitRot, Rate: 1, Limit: 1})
	cs, mem := newCorrupting(t, plan, 8)

	buf := make([]byte, 2*bs)
	cs.ReadBlocks(2, buf)
	if cs.BitRots != 1 {
		t.Fatalf("BitRots = %d, want 1", cs.BitRots)
	}
	// Exactly one bit of the read range differs from the pristine content.
	diff := 0
	for i, b := range buf {
		want := byte(2 + 1 + i/bs)
		for x := b ^ want; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flips in returned data = %d, want 1", diff)
	}
	// The rot is persistent: a direct read of the backing store sees it too.
	raw := make([]byte, 2*bs)
	mem.ReadBlocks(2, raw)
	if !bytes.Equal(raw, buf) {
		t.Fatal("bit rot not persisted to backing store")
	}
}

func TestCorruptingStoreTornWrite(t *testing.T) {
	plan := fault.NewPlan(7).WithRule(fault.Rule{Kind: fault.TornWrite, Rate: 1, Limit: 2})
	cs, mem := newCorrupting(t, plan, 8)

	// Multi-block tear: first half lands, tail keeps old content.
	cs.WriteBlocks(0, fill(0xEE, 4*bs))
	got := make([]byte, 4*bs)
	mem.ReadBlocks(0, got)
	if !bytes.Equal(got[:2*bs], fill(0xEE, 2*bs)) {
		t.Fatal("torn write head not persisted")
	}
	if bytes.Equal(got[2*bs:3*bs], fill(0xEE, bs)) {
		t.Fatal("torn write tail was persisted")
	}

	// Single-block tear: new head, old tail inside the block.
	cs.WriteBlocks(6, fill(0xDD, bs))
	blk := make([]byte, bs)
	mem.ReadBlocks(6, blk)
	if !bytes.Equal(blk[:bs/2], fill(0xDD, bs/2)) || !bytes.Equal(blk[bs/2:], fill(7, bs/2)) {
		t.Fatal("intra-block tear wrong")
	}
	if cs.TornWrites != 2 {
		t.Fatalf("TornWrites = %d, want 2", cs.TornWrites)
	}
}

func TestCorruptingStoreMisdirectedAndLost(t *testing.T) {
	// Both rules fire on the first write (draws consume limits even when
	// first-corruption-wins picks the earlier rule), so LostWrite needs a
	// second firing for the second write.
	plan := fault.NewPlan(11).
		WithRule(fault.Rule{Kind: fault.MisdirectedWrite, Rate: 1, Limit: 1}).
		WithRule(fault.Rule{Kind: fault.LostWrite, Rate: 1, Limit: 2})
	cs, mem := newCorrupting(t, plan, 64)

	// First write is misdirected: the addressed block stays stale and some
	// other block receives the payload.
	cs.WriteBlocks(3, fill(0xCC, bs))
	blk := make([]byte, bs)
	mem.ReadBlocks(3, blk)
	if bytes.Equal(blk, fill(0xCC, bs)) {
		t.Fatal("misdirected write landed at the addressed LBA")
	}
	landed := false
	for i := uint64(0); i < 64; i++ {
		mem.ReadBlocks(i, blk)
		if bytes.Equal(blk, fill(0xCC, bs)) {
			landed = true
			break
		}
	}
	if !landed {
		t.Fatal("misdirected payload landed nowhere")
	}

	// Second write is lost: acknowledged, nothing persisted.
	cs.WriteBlocks(5, fill(0x99, bs))
	mem.ReadBlocks(5, blk)
	if bytes.Equal(blk, fill(0x99, bs)) {
		t.Fatal("lost write was persisted")
	}
	if cs.Misdirected != 1 || cs.LostWrites != 1 {
		t.Fatalf("Misdirected=%d LostWrites=%d, want 1/1", cs.Misdirected, cs.LostWrites)
	}

	// Later writes pass through untouched once the limits are exhausted.
	cs.WriteBlocks(9, fill(0x55, bs))
	mem.ReadBlocks(9, blk)
	if !bytes.Equal(blk, fill(0x55, bs)) {
		t.Fatal("post-limit write did not pass through")
	}
}

func TestCorruptingStoreDeterminism(t *testing.T) {
	run := func() uint32 {
		plan := fault.NewPlan(99).
			WithRule(fault.Rule{Kind: fault.BitRot, Rate: 0.5, Limit: 3}).
			WithRule(fault.Rule{Kind: fault.MisdirectedWrite, Rate: 0.5, Limit: 2})
		cs, mem := newCorrupting(t, plan, 32)
		buf := make([]byte, bs)
		for i := 0; i < 20; i++ {
			cs.WriteBlocks(uint64(i%32), fill(byte(i), bs))
			cs.ReadBlocks(uint64((i*7)%32), buf)
		}
		return mem.ContentCRC()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverge: %08x vs %08x", a, b)
	}
}
