package qos

import (
	"fmt"

	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
)

// Arbiter is a virtual-time weighted fair queueing (start-time fair
// queueing) scheduler over tenants. The router worker consults it before
// popping a command from a tenant's shadowed SQ:
//
//	a.Tick(now)                      // once per poll round
//	if a.Eligible(t, bytes, now) {   // buckets + admission control
//	    if best == nil || a.Before(t, best) { best = t }
//	}
//	...
//	a.Serve(best, bytes, now)        // consume tokens, advance tags
//
// Commands that are not admitted simply stay in their SQ; the guest's
// driver blocks on a full ring, so throttling backpressures end to end
// instead of dropping.
//
// Virtual time follows SFQ: a command's start tag is max(V, F_tenant),
// its finish tag start + cost/weight, and V advances to the served start
// tag. Costs are payload-proportional service units scaled by the
// command's class multiplier; the class is only known after the
// classifier runs, so Serve charges the base cost and ChargeClass applies
// the multiplier delta retroactively to the tenant's finish tag.
type Arbiter struct {
	cfg     Config
	tenants []*Tenant
	vtime   float64 // global virtual time

	overloaded bool // an SLO tenant missed its target last window
	cleanRuns  int  // consecutive windows with all SLOs met
	Sheds      uint64
	Restores   uint64
}

// NewArbiter creates an arbiter with the given tuning.
func NewArbiter(cfg Config) *Arbiter {
	return &Arbiter{cfg: cfg.withDefaults()}
}

// Config returns the arbiter's tuning after defaulting.
func (a *Arbiter) Config() Config { return a.cfg }

// AddTenant registers a tenant. Tenants joining late start at the
// current virtual time so they cannot claim service for their absence.
func (a *Arbiter) AddTenant(name string, cfg TenantConfig) *Tenant {
	t := &Tenant{
		name:   name,
		finish: a.vtime,
		lat:    metrics.NewHistogram(),
		winLat: metrics.NewHistogram(),
	}
	win := int64(a.cfg.Window)
	t.rateOps = metrics.NewRate(win, a.cfg.RateAlpha)
	t.rateBytes = metrics.NewRate(win, a.cfg.RateAlpha)
	a.tenants = append(a.tenants, t)
	a.Configure(t, cfg)
	return t
}

// Configure replaces t's contract in place — weight, rate limits, SLO
// target — preserving its scheduling position and statistics. Fresh
// buckets start full (a reconfigured tenant gets its new burst).
func (a *Arbiter) Configure(t *Tenant, cfg TenantConfig) {
	w := cfg.Weight
	if w <= 0 {
		w = 1
	}
	t.cfg = cfg
	t.weight = w
	t.ops, t.bytes = nil, nil
	if cfg.IOPS > 0 {
		burst := cfg.BurstOps
		if burst <= 0 {
			burst = cfg.IOPS / 10
		}
		t.ops = NewBucket(cfg.IOPS, burst)
	}
	if cfg.BytesPerSec > 0 {
		burst := cfg.BurstBytes
		if burst <= 0 {
			burst = cfg.BytesPerSec / 10
		}
		t.bytes = NewBucket(cfg.BytesPerSec, burst)
	}
	if t.finish < a.vtime {
		t.finish = a.vtime
	}
}

// Tenants returns the registered tenants in registration order.
func (a *Arbiter) Tenants() []*Tenant { return a.tenants }

// cost converts a payload size to base service units.
func (a *Arbiter) cost(bytes int) float64 {
	c := float64(bytes) / a.cfg.BytesPerUnit
	if c < 1 {
		c = 1
	}
	return c
}

// Eligible reports whether tenant t may admit a command of the given
// payload size at now: it must not be shed by the admission controller,
// and both token buckets must cover the command. Ineligibility updates
// the tenant's Throttled/Deferred counters so backpressure is visible;
// callers that rescan the same queue head within one poll round should
// use Admissible on the rescans so each deferred command counts once per
// round, not once per scan.
func (a *Arbiter) Eligible(t *Tenant, bytes int, now sim.Time) bool {
	if t.shed {
		t.Deferred++
		return false
	}
	if !t.ops.Has(1, now) || !t.bytes.Has(float64(bytes), now) {
		t.Throttled++
		return false
	}
	return true
}

// Admissible is Eligible without the counter side effects, for repeated
// scans of a queue head already counted this poll round.
func (a *Arbiter) Admissible(t *Tenant, bytes int, now sim.Time) bool {
	return !t.shed && t.ops.Has(1, now) && t.bytes.Has(float64(bytes), now)
}

// start returns t's virtual start tag for its next command.
func (a *Arbiter) start(t *Tenant) float64 {
	if t.finish > a.vtime {
		return t.finish
	}
	return a.vtime
}

// Before reports whether t should be served ahead of u (smaller start
// tag wins; ties go to the earlier-registered tenant via the caller's
// scan order, so Before is strict).
func (a *Arbiter) Before(t, u *Tenant) bool {
	return a.start(t) < a.start(u)
}

// Serve admits one command of the given payload size for t: consumes its
// tokens, advances the tenant finish tag and global virtual time, and
// feeds the rate gauges. Returns the base cost charged (for a later
// ChargeClass adjustment).
func (a *Arbiter) Serve(t *Tenant, bytes int, now sim.Time) float64 {
	t.ops.Take(1, now)
	t.bytes.Take(float64(bytes), now)
	s := a.start(t)
	c := a.cost(bytes)
	t.finish = s + c/t.weight
	a.vtime = s
	t.Admitted++
	t.rateOps.Observe(1, int64(now))
	t.rateBytes.Observe(float64(bytes), int64(now))
	return c
}

// ChargeClass applies a command's class cost multiplier retroactively:
// Serve charged baseCost at class-default weighting, and the classifier
// only tags the class afterwards, so the finish tag is adjusted by the
// multiplier delta. A latency-class command refunds service, a bulk or
// scavenger command charges extra, pushing the tenant's next start tag
// out in proportion.
func (a *Arbiter) ChargeClass(t *Tenant, baseCost float64, class Class) {
	if class >= NumClasses {
		class = ClassDefault
	}
	t.PerClass[class]++
	mul := a.cfg.ClassCost[class]
	if mul == 1 {
		return
	}
	t.finish += baseCost * (mul - 1) / t.weight
	if t.finish < a.vtime {
		t.finish = a.vtime
	}
}

// ObserveLatency records a completed command's submit-to-complete latency
// for SLO tracking.
func (a *Arbiter) ObserveLatency(t *Tenant, d sim.Duration) {
	t.lat.Record(int64(d))
	t.winLat.Record(int64(d))
}

// Tick drives SLO windows and the admission controller; the router calls
// it once per poll round. When any non-best-effort tenant's windowed p99
// exceeds its target, all best-effort tenants are shed; after
// RecoverWindows consecutive clean windows they are restored.
func (a *Arbiter) Tick(now sim.Time) {
	rolled, missed := false, false
	for _, t := range a.tenants {
		if t.winEnd == 0 {
			t.winEnd = now + sim.Time(a.cfg.Window)
			continue
		}
		if now < t.winEnd {
			continue
		}
		// Roll the tenant's SLO window (possibly several at once after an
		// idle stretch — empty windows count as met).
		for now >= t.winEnd {
			if t.cfg.SLOTargetP99 > 0 && !t.cfg.BestEffort {
				rolled = true
				if t.winLat.Count() > 0 && sim.Duration(t.winLat.Quantile(0.99)) > t.cfg.SLOTargetP99 {
					t.missed++
					missed = true
				} else {
					t.met++
				}
			}
			t.winLat.Reset()
			t.winEnd += sim.Time(a.cfg.Window)
		}
	}
	if !rolled {
		return
	}
	if missed {
		a.overloaded = true
		a.cleanRuns = 0
		for _, t := range a.tenants {
			if t.cfg.BestEffort && !t.shed {
				t.shed = true
				a.Sheds++
			}
		}
		return
	}
	if a.overloaded {
		a.cleanRuns++
		if a.cleanRuns >= a.cfg.RecoverWindows {
			a.overloaded = false
			a.cleanRuns = 0
			for _, t := range a.tenants {
				if t.shed {
					t.shed = false
					a.Restores++
				}
			}
		}
	}
}

// Overloaded reports whether the admission controller is currently in
// the shedding state.
func (a *Arbiter) Overloaded() bool { return a.overloaded }

// TenantSnapshot is a point-in-time view of one tenant's QoS state.
type TenantSnapshot struct {
	Name       string
	Weight     float64
	BestEffort bool
	Shed       bool

	IOPS     float64 // smoothed admitted ops/s
	BytesPS  float64 // smoothed admitted bytes/s
	OpsLevel float64 // ops bucket fill fraction [0,1]
	BytLevel float64 // bytes bucket fill fraction [0,1]

	P99       sim.Duration // cumulative p99 latency
	SLOTarget sim.Duration
	SLOMet    uint64 // windows meeting the target
	SLOMissed uint64

	Admitted  uint64
	Throttled uint64
	Deferred  uint64
	PerClass  [NumClasses]uint64
}

// Attainment returns the fraction of SLO windows that met the target,
// or 1 when no windows have completed.
func (s TenantSnapshot) Attainment() float64 {
	if n := s.SLOMet + s.SLOMissed; n > 0 {
		return float64(s.SLOMet) / float64(n)
	}
	return 1
}

// Snapshot captures every tenant's state at now, in registration order.
func (a *Arbiter) Snapshot(now sim.Time) []TenantSnapshot {
	out := make([]TenantSnapshot, 0, len(a.tenants))
	for _, t := range a.tenants {
		out = append(out, TenantSnapshot{
			Name:       t.name,
			Weight:     t.weight,
			BestEffort: t.cfg.BestEffort,
			Shed:       t.shed,
			IOPS:       t.rateOps.PerSec(int64(now)),
			BytesPS:    t.rateBytes.PerSec(int64(now)),
			OpsLevel:   t.ops.Level(now),
			BytLevel:   t.bytes.Level(now),
			P99:        sim.Duration(t.lat.Quantile(0.99)),
			SLOTarget:  t.cfg.SLOTargetP99,
			SLOMet:     t.met,
			SLOMissed:  t.missed,
			Admitted:   t.Admitted,
			Throttled:  t.Throttled,
			Deferred:   t.Deferred,
			PerClass:   t.PerClass,
		})
	}
	return out
}

// Collect exports the arbiter's counters into cs for determinism
// fingerprints and the ctl surface.
func (a *Arbiter) Collect(cs *metrics.CounterSet) {
	cs.Add("qos_sheds", a.Sheds)
	cs.Add("qos_restores", a.Restores)
	for _, t := range a.tenants {
		p := "qos_" + t.name + "_"
		cs.Add(p+"admitted", t.Admitted)
		cs.Add(p+"throttled", t.Throttled)
		cs.Add(p+"deferred", t.Deferred)
		for c := Class(0); c < NumClasses; c++ {
			cs.Add(fmt.Sprintf("%sclass_%s", p, c), t.PerClass[c])
		}
	}
}
