package qos

import (
	"math"
	"math/rand"
	"testing"

	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
)

func TestBucketRefillAndTake(t *testing.T) {
	b := NewBucket(1000, 100) // 1000/s, burst 100
	now := sim.Time(0)
	if !b.Take(100, now) {
		t.Fatal("full bucket refused its burst")
	}
	if b.Take(1, now) {
		t.Fatal("empty bucket granted a token")
	}
	// 50 ms -> 50 tokens.
	now = sim.Time(50 * sim.Millisecond)
	if !b.Has(50, now) || b.Has(51, now) {
		t.Fatalf("refill wrong: level=%.2f", b.Level(now))
	}
	// Refill never exceeds burst.
	now = sim.Time(10 * sim.Second)
	if got := b.Level(now); got != 1 {
		t.Fatalf("level after long idle = %.2f, want 1", got)
	}
}

// TestBucketOversizedCharge checks that a charge larger than the bucket's
// capacity is admitted when the bucket is full and paced via a token
// deficit — not stalled forever (the burst can never cover it, so
// requiring tokens >= n would deadlock the tenant's queue head).
func TestBucketOversizedCharge(t *testing.T) {
	b := NewBucket(1000, 100) // 1000/s, burst 100
	now := sim.Time(0)
	if !b.Has(250, now) {
		t.Fatal("full bucket must admit an oversized charge")
	}
	if !b.Take(250, now) {
		t.Fatal("full bucket refused an oversized charge")
	}
	if b.Level(now) != 0 {
		t.Fatalf("level during deficit = %.2f, want 0", b.Level(now))
	}
	// The deficit is 150 tokens; the next 1-token command must wait until
	// it is repaid: 151 tokens accrue in 151 ms.
	if b.Take(1, sim.Time(150*sim.Millisecond)) {
		t.Fatal("deficit not enforced")
	}
	if !b.Take(1, sim.Time(151*sim.Millisecond)) {
		t.Fatal("token not granted after deficit repaid")
	}
	// Fractional capacity (IOPS < 10 with the default burst = rate/10):
	// every 1-op charge exceeds burst, yet admission proceeds at the rate.
	ops := NewBucket(5, 0.5)
	if !ops.Take(1, 0) {
		t.Fatal("fractional-burst bucket stalled on first op")
	}
	if ops.Take(1, sim.Time(100*sim.Millisecond)) {
		t.Fatal("fractional-burst bucket did not pace")
	}
	if !ops.Take(1, sim.Time(300*sim.Millisecond)) {
		t.Fatal("fractional-burst bucket stalled after refill")
	}
}

// TestArbiterOversizedCommandAdmits is the end-to-end regression for the
// stall: with the default burst (BytesPerSec/10), a single command whose
// payload exceeds a tenth of a second of the rate contract must still be
// admitted eventually, at the contracted rate.
func TestArbiterOversizedCommandAdmits(t *testing.T) {
	a := NewArbiter(Config{})
	ten := a.AddTenant("t", TenantConfig{BytesPerSec: 1 << 20}) // 1 MB/s, burst 128KB
	pending := []int{256 << 10}                                 // 256KB writes
	var admitted uint64
	for i := 0; i <= 1000; i++ { // 1s of sim time, 1ms steps
		if admitOne(a, pending, sim.Time(i*int(sim.Millisecond))) == 0 {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("oversized command never admitted: tenant stalled")
	}
	// 1 MB/s over 256KB commands = 4/s; allow the initial burst on top.
	if admitted > 6 {
		t.Fatalf("oversized commands admitted %d times in 1s, want ~4 (rate not enforced)", admitted)
	}
	if ten.Admitted != admitted {
		t.Fatalf("tenant admitted counter %d, want %d", ten.Admitted, admitted)
	}
}

func TestBucketUnlimited(t *testing.T) {
	var b *Bucket // nil bucket: unlimited
	if b.Limited() || !b.Take(1e9, 0) || !b.Has(1e9, 0) || b.Level(0) != 1 {
		t.Fatal("nil bucket must behave as unlimited")
	}
}

// admitOne runs one arbiter scan over tenants with the given pending
// payload sizes (0 = no backlog) and serves the winner, mirroring the
// router's gather loop. Returns the served index or -1.
func admitOne(a *Arbiter, pending []int, now sim.Time) int {
	best := -1
	for i, t := range a.Tenants() {
		if pending[i] == 0 || !a.Eligible(t, pending[i], now) {
			continue
		}
		if best == -1 || a.Before(t, a.Tenants()[best]) {
			best = i
		}
	}
	if best >= 0 {
		a.Serve(a.Tenants()[best], pending[best], now)
	}
	return best
}

// TestWFQFairnessProperty is the model-based fairness check: with every
// tenant continuously backlogged, the service each receives over any
// window of W consecutive grants stays within epsilon of its weight
// share, for randomized weights and payload sizes (fixed seed).
func TestWFQFairnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		a := NewArbiter(Config{})
		weights := make([]float64, n)
		var wsum float64
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(8))
			wsum += weights[i]
			a.AddTenant("t", TenantConfig{Weight: weights[i]})
		}
		size := 4096 << rng.Intn(3) // uniform per trial: 4k/8k/16k
		pending := make([]int, n)
		for i := range pending {
			pending[i] = size
		}
		const grants = 4000
		const window = 500
		served := make([][]int, 0, grants)
		counts := make([]int, n)
		for g := 0; g < grants; g++ {
			i := admitOne(a, pending, 0)
			if i < 0 {
				t.Fatal("no tenant admitted while all backlogged")
			}
			counts[i]++
			row := make([]int, n)
			row[i] = 1
			served = append(served, row)
		}
		// Sliding-window service share vs weight share.
		win := make([]int, n)
		for g := 0; g < grants; g++ {
			for i := range win {
				win[i] += served[g][i]
			}
			if g >= window {
				for i := range win {
					win[i] -= served[g-window][i]
				}
			}
			if g < window-1 {
				continue
			}
			for i := range win {
				share := float64(win[i]) / window
				want := weights[i] / wsum
				// epsilon: one command granularity per tenant per window
				// plus 5% slack.
				eps := 0.05 + float64(n)/window
				if math.Abs(share-want) > eps {
					t.Fatalf("trial %d grant %d tenant %d: share %.3f, want %.3f±%.3f (weights %v)",
						trial, g, i, share, want, eps, weights)
				}
			}
		}
		for i, c := range counts {
			t.Logf("trial %d tenant %d: weight %.0f served %d", trial, i, weights[i], c)
		}
	}
}

// TestWFQLateJoiner checks a tenant joining mid-run gets its share going
// forward but no catch-up credit for its absence.
func TestWFQLateJoiner(t *testing.T) {
	a := NewArbiter(Config{})
	a.AddTenant("a", TenantConfig{Weight: 1})
	pending := []int{4096}
	for g := 0; g < 1000; g++ {
		admitOne(a, pending, 0)
	}
	b := a.AddTenant("b", TenantConfig{Weight: 1})
	pending = []int{4096, 4096}
	for g := 0; g < 1000; g++ {
		admitOne(a, pending, 0)
	}
	// b should have roughly half of the second phase, not three quarters
	// of everything.
	if b.Admitted < 400 || b.Admitted > 600 {
		t.Fatalf("late joiner served %d of 1000, want ~500", b.Admitted)
	}
}

func TestTokenBucketBackpressure(t *testing.T) {
	a := NewArbiter(Config{})
	lim := a.AddTenant("lim", TenantConfig{IOPS: 1000, BurstOps: 1})
	free := a.AddTenant("free", TenantConfig{})
	pending := []int{512, 512}
	// 10k admission rounds over 10ms of sim time: the limited tenant can
	// admit at most burst + rate*t = 1 + 10 commands; the free tenant
	// absorbs the rest.
	for i := 0; i < 10000; i++ {
		now := sim.Time(i * 1000) // 1us per round
		admitOne(a, pending, now)
	}
	if lim.Admitted > 12 {
		t.Fatalf("limited tenant admitted %d, want <= 12", lim.Admitted)
	}
	if lim.Throttled == 0 {
		t.Fatal("throttle counter never incremented")
	}
	if free.Admitted < 9000 {
		t.Fatalf("free tenant admitted %d, want the remainder", free.Admitted)
	}
}

// TestAdmissibleDoesNotCount checks the rescan variant of Eligible leaves
// the backpressure counters untouched, so a deferred command counts once
// per poll round rather than once per scan attempt.
func TestAdmissibleDoesNotCount(t *testing.T) {
	a := NewArbiter(Config{})
	lim := a.AddTenant("lim", TenantConfig{IOPS: 1, BurstOps: 1})
	if !a.Eligible(lim, 512, 0) {
		t.Fatal("fresh tenant not eligible")
	}
	a.Serve(lim, 512, 0) // drains the single-token bucket
	for i := 0; i < 7; i++ {
		if a.Admissible(lim, 512, 0) {
			t.Fatal("drained bucket reported admissible")
		}
	}
	if lim.Throttled != 0 {
		t.Fatalf("Admissible touched counters: throttled=%d", lim.Throttled)
	}
	if a.Eligible(lim, 512, 0) || lim.Throttled != 1 {
		t.Fatalf("Eligible must count exactly once: throttled=%d", lim.Throttled)
	}
}

func TestClassChargeShiftsShare(t *testing.T) {
	// Two equal-weight tenants; one's commands are tagged scavenger after
	// admission. Its effective share must drop by the class multiplier.
	a := NewArbiter(Config{})
	norm := a.AddTenant("norm", TenantConfig{Weight: 1})
	scav := a.AddTenant("scav", TenantConfig{Weight: 1})
	pending := []int{4096, 4096}
	for g := 0; g < 3000; g++ {
		i := admitOne(a, pending, 0)
		if a.Tenants()[i] == scav {
			a.ChargeClass(scav, 1, ClassScavenger)
		} else {
			a.ChargeClass(norm, 1, ClassDefault)
		}
	}
	// Scavenger multiplier is 8: expect roughly a 1:8 split.
	ratio := float64(norm.Admitted) / float64(scav.Admitted)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("norm:scav = %d:%d (ratio %.1f), want ~8", norm.Admitted, scav.Admitted, ratio)
	}
	if scav.PerClass[ClassScavenger] != scav.Admitted {
		t.Fatal("per-class counter mismatch")
	}
}

func TestAdmissionControllerShedsAndRecovers(t *testing.T) {
	cfg := Config{Window: sim.Millisecond, RecoverWindows: 2}
	a := NewArbiter(cfg)
	slo := a.AddTenant("slo", TenantConfig{SLOTargetP99: 100 * sim.Microsecond})
	be := a.AddTenant("be", TenantConfig{BestEffort: true})

	now := sim.Time(0)
	a.Tick(now) // arms windows
	// Window 1: SLO tenant misses badly.
	for i := 0; i < 100; i++ {
		a.ObserveLatency(slo, 5*sim.Millisecond)
	}
	now += sim.Time(sim.Millisecond)
	a.Tick(now)
	if !be.Shed() || !a.Overloaded() {
		t.Fatal("best-effort tenant not shed after SLO miss")
	}
	if slo.Shed() {
		t.Fatal("SLO tenant must never be shed")
	}
	// Shed tenants are ineligible and count deferrals.
	if a.Eligible(be, 512, now) {
		t.Fatal("shed tenant still eligible")
	}
	if be.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", be.Deferred)
	}
	// Two clean windows: restored.
	for w := 0; w < 2; w++ {
		for i := 0; i < 100; i++ {
			a.ObserveLatency(slo, 10*sim.Microsecond)
		}
		now += sim.Time(sim.Millisecond)
		a.Tick(now)
	}
	if be.Shed() || a.Overloaded() {
		t.Fatal("best-effort tenant not restored after clean windows")
	}
	if a.Sheds != 1 || a.Restores != 1 {
		t.Fatalf("sheds=%d restores=%d, want 1/1", a.Sheds, a.Restores)
	}
}

func TestSnapshotAndCollect(t *testing.T) {
	a := NewArbiter(Config{})
	v := a.AddTenant("v", TenantConfig{Weight: 3, IOPS: 1000, SLOTargetP99: sim.Millisecond})
	a.AddTenant("b", TenantConfig{BestEffort: true})
	a.Serve(v, 8192, 0)
	a.ChargeClass(v, 2, ClassLatency)
	a.ObserveLatency(v, 50*sim.Microsecond)

	snaps := a.Snapshot(0)
	if len(snaps) != 2 || snaps[0].Name != "v" || snaps[1].Name != "b" {
		t.Fatalf("snapshot order wrong: %+v", snaps)
	}
	s := snaps[0]
	if s.Weight != 3 || s.Admitted != 1 || s.PerClass[ClassLatency] != 1 {
		t.Fatalf("snapshot fields wrong: %+v", s)
	}
	if s.OpsLevel >= 1 {
		t.Fatalf("ops bucket should have drained: %.3f", s.OpsLevel)
	}
	if s.Attainment() != 1 {
		t.Fatalf("attainment with no windows = %.2f, want 1", s.Attainment())
	}

	cs := &metrics.CounterSet{}
	a.Collect(cs)
	if cs.Get("qos_v_admitted") != 1 || cs.Get("qos_v_class_latency") != 1 {
		t.Fatalf("collect wrong: %v", cs)
	}
	// Determinism: an identical arbiter collects an equal set.
	a2 := NewArbiter(Config{})
	v2 := a2.AddTenant("v", TenantConfig{Weight: 3, IOPS: 1000, SLOTargetP99: sim.Millisecond})
	a2.AddTenant("b", TenantConfig{BestEffort: true})
	a2.Serve(v2, 8192, 0)
	a2.ChargeClass(v2, 2, ClassLatency)
	cs2 := &metrics.CounterSet{}
	a2.Collect(cs2)
	if !cs.Equal(cs2) {
		t.Fatalf("same-sequence collects differ:\n%v\n%v", cs, cs2)
	}
}

// BenchmarkArbiterAdmit measures the uncontended hot path the router pays
// per admitted command: one Eligible check plus one Serve on a single
// unlimited tenant. The tentpole budget is ~50 ns/op.
func BenchmarkArbiterAdmit(b *testing.B) {
	a := NewArbiter(Config{})
	t := a.AddTenant("t", TenantConfig{Weight: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a.Eligible(t, 4096, sim.Time(i)) {
			a.Serve(t, 4096, sim.Time(i))
		}
	}
}

// BenchmarkArbiterScan8 measures a full arbitration round over 8
// backlogged tenants with token buckets attached.
func BenchmarkArbiterScan8(b *testing.B) {
	a := NewArbiter(Config{})
	pending := make([]int, 8)
	for i := range pending {
		a.AddTenant("t", TenantConfig{Weight: float64(1 + i), IOPS: 1e9})
		pending[i] = 4096
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		admitOne(a, pending, sim.Time(i))
	}
}
