package qos

import "nvmetro/internal/sim"

// Bucket is a token bucket with continuous refill: rate tokens per second
// accumulate up to burst, and Take consumes whole token amounts. A zero
// rate disables the bucket (Take always succeeds). Buckets gate admission
// only — a failed Take leaves the command queued in its shadowed SQ
// (backpressure), it is never dropped.
type Bucket struct {
	rate   float64 // tokens per second (0 = unlimited)
	burst  float64 // capacity
	tokens float64
	last   sim.Time
}

// NewBucket creates a bucket that starts full.
func NewBucket(rate, burst float64) *Bucket {
	if burst <= 0 {
		burst = rate // default burst: one second of rate
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Limited reports whether the bucket enforces a rate.
func (b *Bucket) Limited() bool { return b != nil && b.rate > 0 }

// refill accrues tokens for the time elapsed since the last refill.
func (b *Bucket) refill(now sim.Time) {
	if now <= b.last {
		return
	}
	b.tokens += b.rate * now.Sub(b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// need clamps a charge to the bucket's capacity for admission checks: a
// charge above burst can never accumulate, so such a command is
// admissible whenever the bucket is full. Take still debits the full
// amount, driving the balance negative; the deficit is repaid at the
// refill rate, so oversized commands are paced at the contracted rate
// instead of stalling forever (backpressure stays lossless and live).
func (b *Bucket) need(n float64) float64 {
	if n > b.burst {
		return b.burst
	}
	return n
}

// Has reports whether n tokens are available at now without consuming.
func (b *Bucket) Has(n float64, now sim.Time) bool {
	if !b.Limited() {
		return true
	}
	b.refill(now)
	return b.tokens >= b.need(n)
}

// Take consumes n tokens, reporting false (and consuming nothing) when
// fewer than the capacity-clamped charge are available. A granted
// oversized charge leaves the balance negative (see need).
func (b *Bucket) Take(n float64, now sim.Time) bool {
	if !b.Limited() {
		return true
	}
	b.refill(now)
	if b.tokens < b.need(n) {
		return false
	}
	b.tokens -= n
	return true
}

// WaitTime returns how long the caller must wait before n tokens will be
// available at the refill rate (0 when Take would already succeed). It
// lets paced background work sleep analytically instead of polling.
func (b *Bucket) WaitTime(n float64, now sim.Time) sim.Duration {
	if !b.Limited() {
		return 0
	}
	b.refill(now)
	deficit := b.need(n) - b.tokens
	if deficit <= 0 {
		return 0
	}
	// Round up: a truncated wait would let the caller retry before the
	// deficit is repaid (a Sleep(0) spin at high rates).
	d := sim.Duration(deficit / b.rate * 1e9)
	if float64(d)*b.rate < deficit*1e9 {
		d++
	}
	return d
}

// Level returns the current fill fraction in [0, 1] (1 for unlimited
// buckets — an unenforced bucket is never the bottleneck; 0 while a
// deficit from an oversized charge is being repaid).
func (b *Bucket) Level(now sim.Time) float64 {
	if !b.Limited() || b.burst <= 0 {
		return 1
	}
	b.refill(now)
	if b.tokens <= 0 {
		return 0
	}
	return b.tokens / b.burst
}
