// Package qos implements multi-tenant QoS arbitration for the NVMetro I/O
// router: a virtual-time weighted fair queueing (WFQ) arbiter deciding
// which VM's pending commands enter each hop, per-tenant token buckets
// (IOPS and bytes/s, burst-capable) whose exhaustion backpressures into
// the shadowed submission queue rather than dropping, and per-tenant SLO
// tracking (windowed latency histograms against a p99 target) feeding an
// admission controller that sheds best-effort tenants first under
// overload.
//
// The arbiter is driven synchronously from the router worker loop under
// the simulation run token, so — like the eBPF VM — it needs no internal
// locking, and all of its state evolves deterministically from the
// observation sequence. Classifiers participate through the qos_set_class
// eBPF helper: the sandboxed policy that picks a command's I/O path also
// tags its scheduling class, and the arbiter scales the command's virtual
// service cost by the class multiplier.
package qos

import (
	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
)

// Class is a per-command scheduling class, tagged by the classifier via
// the qos_set_class helper. The class scales the command's virtual
// service cost: low multipliers are scheduled sooner under contention.
type Class uint8

// Scheduling classes.
const (
	ClassDefault   Class = 0 // tenant's native weight
	ClassLatency   Class = 1 // boosted: half service cost
	ClassBulk      Class = 2 // deprioritized: double service cost
	ClassScavenger Class = 3 // strongly deprioritized background work

	NumClasses = 4
)

func (c Class) String() string {
	switch c {
	case ClassDefault:
		return "default"
	case ClassLatency:
		return "latency"
	case ClassBulk:
		return "bulk"
	case ClassScavenger:
		return "scavenger"
	}
	return "?"
}

// TenantConfig is one tenant's QoS contract.
type TenantConfig struct {
	// Weight is the WFQ share (relative to the other tenants' weights);
	// <= 0 means 1.
	Weight float64
	// IOPS and BytesPerSec are token-bucket rate limits (0 = unlimited).
	// BurstOps/BurstBytes are the bucket capacities; 0 defaults to one
	// tenth of a second of the respective rate.
	IOPS        float64
	BytesPerSec float64
	BurstOps    float64
	BurstBytes  float64
	// BestEffort marks the tenant as sheddable: the admission controller
	// defers its commands first when an SLO tenant misses its target.
	BestEffort bool
	// SLOTargetP99 is the per-window p99 latency target (0 = no SLO).
	// Only non-best-effort tenants' targets drive admission control.
	SLOTargetP99 sim.Duration
}

// Config tunes the arbiter.
type Config struct {
	// BytesPerUnit is the payload size of one virtual service unit; a
	// command costs max(1, bytes/BytesPerUnit) units before the class
	// multiplier. <= 0 means 4096.
	BytesPerUnit float64
	// ClassCost are the per-class service cost multipliers; zero entries
	// take the defaults {1, 0.5, 2, 8}.
	ClassCost [NumClasses]float64
	// Window is the SLO evaluation and rate-gauge window (<= 0: 1ms).
	Window sim.Duration
	// RecoverWindows is how many consecutive windows with every SLO met
	// must pass before shed best-effort tenants are re-admitted (<= 0: 2).
	RecoverWindows int
	// RateAlpha is the EWMA smoothing factor for the rate gauges
	// (<= 0: 0.5).
	RateAlpha float64
}

// DefaultClassCost returns the default service-cost multiplier for a
// class — the values an unset Config.ClassCost falls back to. Background
// subsystems (e.g. the scrubber) use it to charge their own token buckets
// consistently with the arbiter's view of scavenger work.
func DefaultClassCost(c Class) float64 {
	def := [NumClasses]float64{1, 0.5, 2, 8}
	if int(c) < len(def) {
		return def[c]
	}
	return 1
}

func (c Config) withDefaults() Config {
	if c.BytesPerUnit <= 0 {
		c.BytesPerUnit = 4096
	}
	for i := range c.ClassCost {
		if c.ClassCost[i] <= 0 {
			c.ClassCost[i] = DefaultClassCost(Class(i))
		}
	}
	if c.Window <= 0 {
		c.Window = sim.Millisecond
	}
	if c.RecoverWindows <= 0 {
		c.RecoverWindows = 2
	}
	if c.RateAlpha <= 0 || c.RateAlpha > 1 {
		c.RateAlpha = 0.5
	}
	return c
}

// Tenant is one VM's scheduling state inside the arbiter.
type Tenant struct {
	name   string
	cfg    TenantConfig
	weight float64

	finish float64 // virtual finish tag of the last served unit
	shed   bool    // deferred by the admission controller

	ops   *Bucket
	bytes *Bucket

	rateOps   *metrics.Rate
	rateBytes *metrics.Rate

	lat    *metrics.Histogram // cumulative
	winLat *metrics.Histogram // current SLO window
	winEnd sim.Time
	met    uint64 // windows with p99 <= target
	missed uint64 // windows with p99 > target

	// Counters (also exported via Collect for determinism fingerprints).
	Admitted  uint64 // commands granted entry by the arbiter
	Throttled uint64 // admission attempts deferred by a token bucket
	Deferred  uint64 // admission attempts deferred while shed
	PerClass  [NumClasses]uint64
}

// Name returns the tenant identifier.
func (t *Tenant) Name() string { return t.name }

// Config returns the tenant's QoS contract.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Shed reports whether the admission controller currently defers this
// tenant.
func (t *Tenant) Shed() bool { return t.shed }
