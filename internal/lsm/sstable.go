package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"nvmetro/internal/extfs"
	"nvmetro/internal/sim"
)

// SSTable file layout:
//
//	[data block 0][data block 1]...[footer]
//
// Each data block holds records `klen u16 | vlen u32 | key | value` packed
// up to BlockBytes. The block index (first key + offset + length per block)
// and the bloom filter stay in memory after a flush, as they would in
// RocksDB's table cache; the footer persists them for completeness.
type SSTable struct {
	fs     *extfs.FS
	file   *extfs.File
	name   string
	params Params

	index []indexEntry
	bloom bloomFilter
	count int
}

type indexEntry struct {
	firstKey string
	off      uint64
	length   uint32
}

// writeTable serializes sorted kvs into a new table file.
func writeTable(p *sim.Proc, fs *extfs.FS, name string, kvs []KV, params Params) (*SSTable, error) {
	t := &SSTable{fs: fs, name: name, params: params, count: len(kvs)}
	t.bloom = newBloom(len(kvs), params.BloomBits)

	var blocks [][]byte
	var cur []byte
	var firstKey string
	flushBlock := func() {
		if len(cur) == 0 {
			return
		}
		t.index = append(t.index, indexEntry{firstKey: firstKey, length: uint32(len(cur))})
		blocks = append(blocks, cur)
		cur = nil
	}
	for _, kv := range kvs {
		rec := make([]byte, 6+len(kv.Key)+len(kv.Value))
		binary.LittleEndian.PutUint16(rec[0:2], uint16(len(kv.Key)))
		binary.LittleEndian.PutUint32(rec[2:6], uint32(len(kv.Value)))
		copy(rec[6:], kv.Key)
		copy(rec[6+len(kv.Key):], kv.Value)
		if len(cur) == 0 {
			firstKey = kv.Key
		}
		cur = append(cur, rec...)
		t.bloom.add(kv.Key)
		if len(cur) >= params.BlockBytes {
			flushBlock()
		}
	}
	flushBlock()

	total := uint64(0)
	for _, b := range blocks {
		total += uint64(len(b))
	}
	f, err := fs.Create(p, name, total+uint64(len(t.bloom.bits))+4096, false)
	if err != nil {
		return nil, err
	}
	t.file = f
	off := uint64(0)
	// Write blocks in large sequential chunks (compaction-style I/O).
	var pending []byte
	for i, b := range blocks {
		t.index[i].off = off + uint64(len(pending))
		pending = append(pending, b...)
		if len(pending) >= 256<<10 {
			if err := f.WriteAt(p, off, pending); err != nil {
				return nil, err
			}
			off += uint64(len(pending))
			pending = nil
		}
	}
	if len(pending) > 0 {
		if err := f.WriteAt(p, off, pending); err != nil {
			return nil, err
		}
		off += uint64(len(pending))
	}
	// Footer: persist the bloom filter after the data.
	if err := f.WriteAt(p, off, t.bloom.bits); err != nil {
		return nil, err
	}
	if err := f.Sync(p); err != nil {
		return nil, err
	}
	return t, nil
}

// findBlock locates the index entry that may contain key.
func (t *SSTable) findBlock(key string) int {
	i := sort.Search(len(t.index), func(i int) bool { return t.index[i].firstKey > key })
	return i - 1
}

// get reads one key from the table.
func (t *SSTable) get(p *sim.Proc, key string) ([]byte, error) {
	bi := t.findBlock(key)
	if bi < 0 {
		return nil, ErrNotFound
	}
	e := t.index[bi]
	buf := make([]byte, e.length)
	if err := t.file.ReadAt(p, e.off, buf); err != nil {
		return nil, err
	}
	for off := 0; off+6 <= len(buf); {
		klen := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		vlen := int(binary.LittleEndian.Uint32(buf[off+2 : off+6]))
		if off+6+klen+vlen > len(buf) {
			return nil, fmt.Errorf("lsm: corrupt block in %s", t.name)
		}
		k := string(buf[off+6 : off+6+klen])
		if k == key {
			v := make([]byte, vlen)
			copy(v, buf[off+6+klen:off+6+klen+vlen])
			return v, nil
		}
		if k > key {
			break
		}
		off += 6 + klen + vlen
	}
	return nil, ErrNotFound
}

// scan returns up to limit pairs with key >= start.
func (t *SSTable) scan(p *sim.Proc, start string, limit int) ([]KV, error) {
	bi := t.findBlock(start)
	if bi < 0 {
		bi = 0
	}
	var out []KV
	for ; bi < len(t.index) && len(out) < limit; bi++ {
		e := t.index[bi]
		buf := make([]byte, e.length)
		if err := t.file.ReadAt(p, e.off, buf); err != nil {
			return nil, err
		}
		for off := 0; off+6 <= len(buf) && len(out) < limit; {
			klen := int(binary.LittleEndian.Uint16(buf[off : off+2]))
			vlen := int(binary.LittleEndian.Uint32(buf[off+2 : off+6]))
			if off+6+klen+vlen > len(buf) {
				return nil, fmt.Errorf("lsm: corrupt block in %s", t.name)
			}
			k := string(buf[off+6 : off+6+klen])
			if k >= start {
				v := make([]byte, vlen)
				copy(v, buf[off+6+klen:off+6+klen+vlen])
				out = append(out, KV{Key: k, Value: v})
			}
			off += 6 + klen + vlen
		}
	}
	return out, nil
}

// bloomFilter is a standard k-hash bloom filter.
type bloomFilter struct {
	bits []byte
	k    int
}

func newBloom(n, bitsPerKey int) bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := bitsPerKey * 69 / 100 // ln2 * bitsPerKey
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return bloomFilter{bits: make([]byte, (nbits+7)/8), k: k}
}

func bloomHash(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	return h1, h2
}

func (b bloomFilter) add(key string) {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b bloomFilter) mayContain(key string) bool {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
