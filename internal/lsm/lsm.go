// Package lsm is a log-structured merge-tree key-value store — the
// RocksDB stand-in for the paper's YCSB evaluations. It provides a
// write-ahead log, an in-memory memtable, immutable sorted-string tables
// with block indexes and bloom filters, size-tiered compaction, point gets,
// range scans and read-modify-write — all persisted through the guest
// filesystem (package extfs) onto the virtual disk under test.
package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"nvmetro/internal/extfs"
	"nvmetro/internal/sim"
)

// Errors.
var (
	ErrNotFound = errors.New("lsm: key not found")
	ErrClosed   = errors.New("lsm: db closed")
)

// Params tunes the engine.
type Params struct {
	MemtableBytes int          // flush threshold
	CompactAt     int          // L0 table count triggering compaction
	BlockBytes    int          // SSTable data block size
	BloomBits     int          // bloom filter bits per key
	OpCost        sim.Duration // per-operation CPU (hashing, comparisons)
	WALMaxBytes   uint64
	TableMaxBytes uint64
}

// DefaultParams returns a small-footprint configuration whose behaviour
// (memtable absorption, flush bursts, compaction I/O) mirrors RocksDB's.
func DefaultParams() Params {
	return Params{
		MemtableBytes: 512 << 10,
		CompactAt:     6,
		BlockBytes:    4096,
		BloomBits:     10,
		OpCost:        2 * sim.Microsecond,
		WALMaxBytes:   8 << 20,
		TableMaxBytes: 64 << 20,
	}
}

// DB is one database instance.
type DB struct {
	fs     *extfs.FS
	params Params
	vcpu   threadLike

	mem     map[string][]byte
	memSize int
	wal     *extfs.File
	walOff  uint64
	walGen  int

	tables []*SSTable // newest last
	nextID int
	closed bool

	// Stats
	Puts, Gets, Scans, Flushes, Compactions uint64
	BloomNegatives                          uint64
}

// threadLike decouples lsm from sim.Thread for testing.
type threadLike interface {
	Exec(p *sim.Proc, d sim.Duration)
}

// Open creates a DB over a mounted filesystem.
func Open(p *sim.Proc, fs *extfs.FS, vcpu threadLike, params Params) (*DB, error) {
	db := &DB{fs: fs, params: params, vcpu: vcpu, mem: make(map[string][]byte)}
	if err := db.rotateWAL(p); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) rotateWAL(p *sim.Proc) error {
	db.walGen++
	name := fmt.Sprintf("wal-%06d", db.walGen)
	f, err := db.fs.Create(p, name, db.params.WALMaxBytes, true)
	if err != nil {
		return err
	}
	if db.wal != nil {
		db.fs.Delete(p, db.wal.Name())
	}
	db.wal = f
	db.walOff = 0
	return nil
}

// Put inserts or updates a key.
func (db *DB) Put(p *sim.Proc, key string, value []byte) error {
	if db.closed {
		return ErrClosed
	}
	db.Puts++
	db.vcpu.Exec(p, db.params.OpCost)

	// WAL record: klen u16 | vlen u32 | key | value.
	rec := make([]byte, 6+len(key)+len(value))
	binary.LittleEndian.PutUint16(rec[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(rec[2:6], uint32(len(value)))
	copy(rec[6:], key)
	copy(rec[6+len(key):], value)
	if db.walOff+uint64(len(rec)) > db.params.WALMaxBytes {
		if err := db.rotateWAL(p); err != nil {
			return err
		}
	}
	if err := db.wal.WriteAt(p, db.walOff, rec); err != nil {
		return err
	}
	db.walOff += uint64(len(rec))

	v := make([]byte, len(value))
	copy(v, value)
	if old, ok := db.mem[key]; ok {
		db.memSize -= len(key) + len(old)
	}
	db.mem[key] = v
	db.memSize += len(key) + len(v)
	if db.memSize >= db.params.MemtableBytes {
		return db.flush(p)
	}
	return nil
}

// Get returns the value for key.
func (db *DB) Get(p *sim.Proc, key string) ([]byte, error) {
	if db.closed {
		return nil, ErrClosed
	}
	db.Gets++
	db.vcpu.Exec(p, db.params.OpCost)
	if v, ok := db.mem[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	// Newest table first.
	for i := len(db.tables) - 1; i >= 0; i-- {
		t := db.tables[i]
		if !t.bloom.mayContain(key) {
			db.BloomNegatives++
			continue
		}
		v, err := t.get(p, key)
		if err == nil {
			return v, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, err
		}
	}
	return nil, ErrNotFound
}

// Scan returns up to limit key/value pairs with key >= start, in order —
// the YCSB workload E operation.
func (db *DB) Scan(p *sim.Proc, start string, limit int) ([]KV, error) {
	if db.closed {
		return nil, ErrClosed
	}
	db.Scans++
	db.vcpu.Exec(p, db.params.OpCost*4)
	// Merge memtable + all tables (newest shadows oldest).
	seen := make(map[string]bool)
	var out []KV
	add := func(k string, v []byte) {
		if !seen[k] {
			seen[k] = true
			out = append(out, KV{Key: k, Value: v})
		}
	}
	for k, v := range db.mem {
		if k >= start {
			add(k, v)
		}
	}
	for i := len(db.tables) - 1; i >= 0; i-- {
		kvs, err := db.tables[i].scan(p, start, limit+len(out))
		if err != nil {
			return nil, err
		}
		for _, kv := range kvs {
			add(kv.Key, kv.Value)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// KV is one key/value pair.
type KV struct {
	Key   string
	Value []byte
}

// flush writes the memtable as a new SSTable.
func (db *DB) flush(p *sim.Proc) error {
	if len(db.mem) == 0 {
		return nil
	}
	db.Flushes++
	kvs := make([]KV, 0, len(db.mem))
	for k, v := range db.mem {
		kvs = append(kvs, KV{Key: k, Value: v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	db.nextID++
	t, err := writeTable(p, db.fs, fmt.Sprintf("sst-%06d", db.nextID), kvs, db.params)
	if err != nil {
		return err
	}
	db.tables = append(db.tables, t)
	db.mem = make(map[string][]byte)
	db.memSize = 0
	if err := db.rotateWAL(p); err != nil {
		return err
	}
	if len(db.tables) >= db.params.CompactAt {
		return db.compact(p)
	}
	return nil
}

// compact merges every table into one (size-tiered, single level).
func (db *DB) compact(p *sim.Proc) error {
	db.Compactions++
	merged := make(map[string][]byte)
	for _, t := range db.tables { // oldest first; newer overwrite
		kvs, err := t.scan(p, "", 1<<31)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			merged[kv.Key] = kv.Value
		}
	}
	kvs := make([]KV, 0, len(merged))
	for k, v := range merged {
		kvs = append(kvs, KV{Key: k, Value: v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	db.nextID++
	t, err := writeTable(p, db.fs, fmt.Sprintf("sst-%06d", db.nextID), kvs, db.params)
	if err != nil {
		return err
	}
	for _, old := range db.tables {
		db.fs.Delete(p, old.name)
	}
	db.tables = []*SSTable{t}
	return nil
}

// Flush forces the memtable to disk (used by loaders).
func (db *DB) Flush(p *sim.Proc) error { return db.flush(p) }

// Close flushes and marks the DB unusable.
func (db *DB) Close(p *sim.Proc) error {
	if err := db.flush(p); err != nil {
		return err
	}
	db.closed = true
	return db.fs.SyncAll(p)
}

// Tables reports the current SSTable count (for tests).
func (db *DB) Tables() int { return len(db.tables) }
