package lsm_test

import (
	"bytes"
	"fmt"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/extfs"
	"nvmetro/internal/lsm"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
	"nvmetro/internal/ycsb"
)

// guestRig: a VM with a direct (test) disk, filesystem and DB.
type guestRig struct {
	env  *sim.Env
	cpu  *sim.CPU
	v    *vm.VM
	disk vm.Disk
}

// directPort wires the guest NVMe driver straight to the device for tests.
type directPort struct {
	env *sim.Env
	dev *device.Device
	v   *vm.VM
	qps map[uint16]*nvme.QueuePair
}

func (rp *directPort) Namespace() nvme.NamespaceInfo { return rp.dev.Namespace(1).Info }
func (rp *directPort) CreateQP(depth uint32) *nvme.QueuePair {
	qp := rp.dev.CreateQueuePair(depth, rp.v.Mem)
	rp.qps[qp.SQ.ID] = qp
	return qp
}
func (rp *directPort) Ring(qid uint16) { rp.dev.Ring(qid) }
func (rp *directPort) SetIRQ(qid uint16, fn func()) {
	rp.qps[qid].CQ.OnPost = func() { rp.env.After(2*sim.Microsecond, fn) }
}

func newGuestRig(storeBytes uint64) *guestRig {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, device.NewMemStore(512))
	v := vm.New(env, 0, cpu, 0, 1, 64<<20, vm.DefaultVirtCosts())
	port := &directPort{env: env, dev: dev, v: v, qps: make(map[uint16]*nvme.QueuePair)}
	disk := vm.NewNVMeDisk(v, port, 128, vm.DefaultDriverCosts())
	return &guestRig{env: env, cpu: cpu, v: v, disk: disk}
}

func (g *guestRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	g.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; g.env.Stop() })
	g.env.RunUntil(sim.Time(600 * sim.Second))
	if !ok {
		t.Fatal("test did not finish in simulated time")
	}
	g.env.Close()
}

func mountAll(t *testing.T, g *guestRig, p *sim.Proc) (*extfs.FS, *lsm.DB) {
	t.Helper()
	fs, err := extfs.Mount(p, g.v, g.disk, g.v.VCPU(0), extfs.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	db, err := lsm.Open(p, fs, g.v.VCPU(0), lsm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return fs, db
}

func TestFSWriteReadRoundTrip(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		fs, err := extfs.Mount(p, g.v, g.disk, g.v.VCPU(0), extfs.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(p, "data", 1<<20, false)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]byte, 10000)
		for i := range src {
			src[i] = byte(i * 11)
		}
		// Unaligned offset crossing cache blocks.
		if err := f.WriteAt(p, 1234, src); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(src))
		if err := f.ReadAt(p, 1234, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(src, got) {
			t.Fatal("round trip mismatch")
		}
		// Second file does not alias the first.
		f2, err := fs.Create(p, "other", 1<<20, true)
		if err != nil {
			t.Fatal(err)
		}
		f2.WriteAt(p, 0, bytes.Repeat([]byte{0xff}, 4096))
		if err := f.ReadAt(p, 1234, got); err != nil || !bytes.Equal(src, got) {
			t.Fatal("file isolation broken")
		}
		if len(fs.Files()) != 2 {
			t.Fatal("file listing")
		}
		if err := fs.SyncAll(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFSWriteBackCachesWrites(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		fs, _ := extfs.Mount(p, g.v, g.disk, g.v.VCPU(0), extfs.DefaultParams())
		f, _ := fs.Create(p, "wal", 1<<20, true)
		before := fs.Writes
		for i := 0; i < 100; i++ {
			f.WriteAt(p, uint64(i)*100, make([]byte, 100))
		}
		buffered := fs.Writes - before
		if buffered > 20 {
			t.Fatalf("write-back file issued %d disk writes for 100 small appends", buffered)
		}
		if err := f.Sync(p); err != nil {
			t.Fatal(err)
		}
		if fs.Writes == before {
			t.Fatal("sync flushed nothing")
		}
	})
}

func TestDBPutGet(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		_, db := mountAll(t, g, p)
		val := bytes.Repeat([]byte{7}, 100)
		if err := db.Put(p, "hello", val); err != nil {
			t.Fatal(err)
		}
		got, err := db.Get(p, "hello")
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("get: %v", err)
		}
		if _, err := db.Get(p, "missing"); err != lsm.ErrNotFound {
			t.Fatalf("missing key: %v", err)
		}
	})
}

func TestDBSurvivesFlushAndCompaction(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		_, db := mountAll(t, g, p)
		const n = 8000
		val := make([]byte, 500)
		for i := 0; i < n; i++ {
			copy(val, fmt.Sprintf("value-%d", i))
			if err := db.Put(p, fmt.Sprintf("key-%06d", i), val); err != nil {
				t.Fatal(err)
			}
		}
		if db.Flushes == 0 {
			t.Fatal("no memtable flush happened")
		}
		if db.Compactions == 0 {
			t.Fatal("no compaction happened")
		}
		// All keys readable after flush+compaction, from disk.
		for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
			got, err := db.Get(p, fmt.Sprintf("key-%06d", i))
			if err != nil {
				t.Fatalf("key %d: %v", i, err)
			}
			want := fmt.Sprintf("value-%d", i)
			if string(got[:len(want)]) != want {
				t.Fatalf("key %d: wrong value", i)
			}
		}
	})
}

func TestDBOverwriteVisibility(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		_, db := mountAll(t, g, p)
		db.Put(p, "k", []byte("v1"))
		db.Flush(p)
		db.Put(p, "k", []byte("v2")) // newer, in memtable
		got, err := db.Get(p, "k")
		if err != nil || string(got) != "v2" {
			t.Fatalf("got %q %v", got, err)
		}
		db.Flush(p)
		got, err = db.Get(p, "k") // newer table shadows older
		if err != nil || string(got) != "v2" {
			t.Fatalf("after flush: %q %v", got, err)
		}
	})
}

func TestDBScan(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		_, db := mountAll(t, g, p)
		for i := 0; i < 100; i++ {
			db.Put(p, fmt.Sprintf("s%04d", i), []byte{byte(i)})
		}
		db.Flush(p)
		for i := 100; i < 120; i++ { // some in memtable
			db.Put(p, fmt.Sprintf("s%04d", i), []byte{byte(i)})
		}
		kvs, err := db.Scan(p, "s0050", 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 10 || kvs[0].Key != "s0050" || kvs[9].Key != "s0059" {
			t.Fatalf("scan: %v", kvs)
		}
		// Scan across the flush boundary.
		kvs, err = db.Scan(p, "s0095", 10)
		if err != nil || len(kvs) != 10 || kvs[9].Key != "s0104" {
			t.Fatalf("boundary scan: %v %v", kvs, err)
		}
	})
}

func TestBloomFilterCullsTableReads(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		_, db := mountAll(t, g, p)
		for i := 0; i < 2000; i++ {
			db.Put(p, fmt.Sprintf("b%06d", i), make([]byte, 400))
		}
		db.Flush(p)
		for i := 0; i < 500; i++ {
			db.Get(p, fmt.Sprintf("absent%06d", i))
		}
		if db.BloomNegatives < 400 {
			t.Fatalf("bloom negatives %d; filter ineffective", db.BloomNegatives)
		}
	})
}

func TestYCSBWorkloadsRun(t *testing.T) {
	for _, w := range ycsb.All() {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			g := newGuestRig(0)
			g.run(t, func(p *sim.Proc) {
				_, db := mountAll(t, g, p)
				cfg := ycsb.DefaultConfig()
				cfg.Records = 1000
				cfg.FieldLength = 200
				cfg.Duration = 10 * sim.Millisecond
				cfg.Warmup = 1 * sim.Millisecond
				c := ycsb.NewClient(db, cfg, 42)
				if err := c.Load(p); err != nil {
					t.Fatal(err)
				}
				from := p.Now().Add(cfg.Warmup)
				to := from.Add(cfg.Duration)
				if err := c.Run(p, w, from, to); err != nil {
					t.Fatal(err)
				}
				if c.Ops.Value() < 10 {
					t.Fatalf("only %d ops", c.Ops.Value())
				}
			})
		})
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	g := newGuestRig(0)
	g.run(t, func(p *sim.Proc) {
		_, db := mountAll(t, g, p)
		cfg := ycsb.DefaultConfig()
		cfg.Records = 100
		cfg.FieldLength = 10
		c := ycsb.NewClient(db, cfg, 1)
		_ = c
		// The zipf distribution itself is deterministic and skewed; verify
		// through the public API by checking hot keys repeat.
	})
	// Distribution check happens in the ycsb package's own unit test.
}
