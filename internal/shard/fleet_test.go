package shard_test

import (
	"bytes"
	"strings"
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/shard"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// bench is a sharded test bed: one device, a fleet of shards, VMs with
// NVMetro disks over whole per-VM namespaces (the promotable layout — a
// whole namespace keeps the default pure fast-path classifier).
type bench struct {
	env   *sim.Env
	cpu   *sim.CPU
	dev   *device.Device
	fleet *shard.Fleet
	vms   []*vm.VM
	vcs   []*core.Controller
	disks []*vm.NVMeDisk
}

func newBench(shards, vms int) *bench {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4+shards)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	store := device.NewMemStore(512)
	dev := device.New(env, p, store)
	var threads []*sim.Thread
	for i := 0; i < shards; i++ {
		threads = append(threads, cpu.ThreadOn(4+i, "shard"))
	}
	b := &bench{env: env, cpu: cpu, dev: dev,
		fleet: shard.New(env, core.DefaultRouterCosts(), threads)}
	for i := 0; i < vms; i++ {
		nsid := uint32(1)
		if i > 0 {
			nsid = dev.NextNSID()
			dev.AddNamespace(nsid, 1<<18, device.NewMemStore(512))
		}
		v := vm.New(env, i+1, cpu, i%4, 1, 32<<20, vm.DefaultVirtCosts())
		vc := b.fleet.Attach(v, device.WholeNamespace(dev, nsid))
		disk := vm.NewNVMeDisk(v, vc, 64, vm.DefaultDriverCosts())
		b.vms = append(b.vms, v)
		b.vcs = append(b.vcs, vc)
		b.disks = append(b.disks, disk)
	}
	return b
}

func (b *bench) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	b.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; b.env.Stop() })
	b.env.RunUntil(sim.Time(120 * sim.Second))
	if !ok {
		t.Fatal("test did not finish in simulated time")
	}
}

func (b *bench) io(p *sim.Proc, i int, op vm.Op, lba uint64, n int) nvme.Status {
	v := b.vms[i]
	base, pages, err := v.Mem.AllocBuffer(uint32(n))
	if err != nil {
		panic(err)
	}
	if op == vm.OpWrite {
		v.Mem.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, n), base)
	}
	r := &vm.Req{Op: op, LBA: lba, Blocks: uint32(n) / 512, Buf: base, BufPages: pages}
	return vm.SubmitAndWait(p, b.disks[i], v.VCPU(0), r)
}

// TestPlacementBalanced: least-loaded placement spreads tenants evenly.
func TestPlacementBalanced(t *testing.T) {
	b := newBench(4, 10)
	defer b.env.Close()
	min, max := 10, 0
	for _, si := range b.fleet.Info() {
		if n := len(si.VMs); n < min {
			min = n
		}
		if n := len(si.VMs); n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced placement: min=%d max=%d", min, max)
	}
	if b.fleet.Shards() != 4 {
		t.Fatalf("Shards = %d", b.fleet.Shards())
	}
}

// TestPromotionElidesClassification: with promotion on, tenants running
// the default (statically constant) classifier collapse to the direct
// SQ→HSQ mapping — promoted ops count up while classifications stay flat
// — and the same workload finishes strictly faster than when routed.
func TestPromotionElidesClassification(t *testing.T) {
	const ops = 64
	elapsed := func(promote bool) (sim.Duration, *core.Router) {
		b := newBench(2, 2)
		defer b.env.Close()
		if promote {
			b.fleet.EnablePromotion()
		}
		var dt sim.Duration
		b.run(t, func(p *sim.Proc) {
			t0 := b.env.Now()
			for i := 0; i < ops; i++ {
				if st := b.io(p, i%2, vm.OpRead, uint64(i), 4096); !st.OK() {
					t.Fatalf("read %d: %v", i, st)
				}
			}
			dt = b.env.Now().Sub(t0)
		})
		return dt, b.fleet.Router()
	}

	routedT, routed := elapsed(false)
	promotedT, promoted := elapsed(true)

	if routed.PromotedOps != 0 || routed.Promotions != 0 {
		t.Fatalf("promotion fired while disabled: %+v", routed.Promotions)
	}
	if promoted.Promotions != 2 {
		t.Fatalf("Promotions = %d, want 2 (one per tenant)", promoted.Promotions)
	}
	if promoted.PromotedOps != ops {
		t.Fatalf("PromotedOps = %d, want %d", promoted.PromotedOps, ops)
	}
	if promoted.Classifications != 0 {
		t.Fatalf("Classifications = %d under full promotion, want 0", promoted.Classifications)
	}
	if routed.Classifications != ops {
		t.Fatalf("routed Classifications = %d, want %d", routed.Classifications, ops)
	}
	if promotedT >= routedT {
		t.Fatalf("promoted run not faster: %v vs %v", promotedT, routedT)
	}
}

// TestHotSwapDemotionFence: swapping a classifier demotes the tenant
// before the new classifier can see a single command — every command
// submitted after the swap is classified, none rides the stale direct
// mapping — and restoring a provably constant classifier re-promotes.
func TestHotSwapDemotionFence(t *testing.T) {
	const pre, post = 50, 50
	b := newBench(2, 1)
	defer b.env.Close()
	b.fleet.EnablePromotion()
	r := b.fleet.Router()
	vc := b.vcs[0]

	classified := 0
	b.run(t, func(p *sim.Proc) {
		for i := 0; i < pre; i++ {
			if st := b.io(p, 0, vm.OpRead, uint64(i), 512); !st.OK() {
				t.Fatalf("pre read %d: %v", i, st)
			}
		}
		if !vc.Promoted() {
			t.Fatal("tenant not promoted after warm traffic")
		}
		opsAtSwap := r.PromotedOps

		// Hot-swap: a native classifier is opaque to static analysis, so
		// installing it must demote synchronously.
		vc.SetNativeClassifier(func(ctx []byte) uint64 {
			classified++
			return core.ActSendHQ | core.ActWillCompleteHQ
		})
		if vc.Promoted() {
			t.Fatal("still promoted after hot-swap")
		}
		if r.Demotions != 1 {
			t.Fatalf("Demotions = %d, want 1", r.Demotions)
		}
		for i := 0; i < post; i++ {
			if st := b.io(p, 0, vm.OpRead, uint64(i), 512); !st.OK() {
				t.Fatalf("post read %d: %v", i, st)
			}
		}
		if classified != post {
			t.Fatalf("new classifier saw %d commands, want %d (a command bypassed the fence)",
				classified, post)
		}
		if r.PromotedOps != opsAtSwap {
			t.Fatalf("PromotedOps advanced across the fence: %d -> %d", opsAtSwap, r.PromotedOps)
		}

		// Restore the eBPF classifier: the stored static verdict still
		// holds, so the tenant re-promotes (through the control inbox).
		vc.SetNativeClassifier(nil)
		for i := 0; i < 4; i++ {
			if st := b.io(p, 0, vm.OpRead, uint64(i), 512); !st.OK() {
				t.Fatalf("restore read %d: %v", i, st)
			}
		}
		if !vc.Promoted() || r.Promotions != 2 {
			t.Fatalf("re-promotion failed: promoted=%v promotions=%d", vc.Promoted(), r.Promotions)
		}
	})
}

// TestAttachUIFDemotes: attaching a notify consumer fences the direct
// mapping like a hot-swap; detaching restores it.
func TestAttachUIFDemotes(t *testing.T) {
	b := newBench(1, 1)
	defer b.env.Close()
	b.fleet.EnablePromotion()
	vc := b.vcs[0]
	b.run(t, func(p *sim.Proc) {
		if st := b.io(p, 0, vm.OpRead, 0, 512); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !vc.Promoted() {
			t.Fatal("not promoted")
		}
		vc.AttachUIF(64)
		if vc.Promoted() {
			t.Fatal("promoted with a UIF attached")
		}
		vc.DetachUIF()
		for i := 0; i < 4; i++ {
			if st := b.io(p, 0, vm.OpRead, 0, 512); !st.OK() {
				t.Fatalf("read: %v", st)
			}
		}
		if !vc.Promoted() {
			t.Fatal("not re-promoted after DetachUIF")
		}
	})
}

// TestQoSMergePerShard: per-shard arbiters hold disjoint tenant sets and
// the fleet-wide snapshot/counter merge covers every tenant exactly once,
// with admission counts matching the per-tenant workload.
func TestQoSMergePerShard(t *testing.T) {
	const vms, perVM = 6, 10
	b := newBench(3, vms)
	defer b.env.Close()
	b.fleet.EnableQoS(qos.Config{})
	b.run(t, func(p *sim.Proc) {
		for i := 0; i < vms; i++ {
			for j := 0; j < perVM; j++ {
				if st := b.io(p, i, vm.OpRead, uint64(j), 512); !st.OK() {
					t.Fatalf("vm%d read %d: %v", i, j, st)
				}
			}
		}
	})

	arbs := b.fleet.Router().QoSArbiters()
	if len(arbs) != 3 {
		t.Fatalf("QoSArbiters = %d, want 3", len(arbs))
	}
	perShard := 0
	for _, a := range arbs {
		perShard += len(a.Snapshot(b.env.Now()))
	}
	if perShard != vms {
		t.Fatalf("per-shard tenants sum to %d, want %d", perShard, vms)
	}

	snap := b.fleet.QoSSnapshot(b.env.Now())
	seen := map[string]bool{}
	for _, ts := range snap {
		if seen[ts.Name] {
			t.Fatalf("tenant %s appears twice in merged snapshot", ts.Name)
		}
		seen[ts.Name] = true
		if ts.Admitted != perVM {
			t.Fatalf("tenant %s admitted %d, want %d", ts.Name, ts.Admitted, perVM)
		}
	}
	if len(snap) != vms {
		t.Fatalf("merged snapshot has %d tenants, want %d", len(snap), vms)
	}

	var cs metrics.CounterSet
	b.fleet.CollectQoS(&cs)
	total := uint64(0)
	for i := 1; i <= vms; i++ {
		total += cs.Get("qos_vm" + string(rune('0'+i)) + "_admitted")
	}
	if total != vms*perVM {
		t.Fatalf("merged admitted counters sum to %d, want %d", total, vms*perVM)
	}
}

// TestDumpFormat: the control-plane dump names every shard and tenant.
func TestDumpFormat(t *testing.T) {
	b := newBench(2, 3)
	defer b.env.Close()
	b.fleet.EnablePromotion()
	b.run(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if st := b.io(p, i, vm.OpRead, 0, 512); !st.OK() {
				t.Fatalf("read: %v", st)
			}
		}
	})
	d := b.fleet.Dump()
	for _, want := range []string{"fleet: shards=2", "shard 0:", "shard 1:", "vm1", "vm2", "vm3", "promoted"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}
