// Package shard is the per-core sharded dispatch subsystem: a fleet of
// router workers, one per host core, replacing the single shared router
// loop for multi-tenant stacks.
//
// Each shard owns its tenants exclusively — their VSQ/VCQ pairs, QoS
// arbiter state and promotion decisions — and runs its own
// poll/classify/dispatch cycle on its own host thread. Shards never take
// a cross-shard lock: kernel-path completions and control-plane posts fan
// into the owning shard through lock-free MPSC rings (package
// shard/ring), and fleet-wide QoS views merge the per-shard arbiter
// snapshots (tenants are disjoint across shards, so concatenation is the
// merge).
//
// The fleet also hosts the adaptive path-promotion tier: when static
// analysis proves a tenant's classifier always returns the pure fast-path
// verdict, that tenant's hop collapses to a direct SQ→HSQ mapping and
// classifier execution is elided; a classifier hot-swap demotes the
// tenant synchronously before the new program can see a command.
package shard

import (
	"fmt"
	"strings"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/metrics"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// Fleet is a sharded router: one core.Router whose workers are treated as
// independent per-core shards, plus fleet-level placement, promotion and
// QoS-merge policy.
type Fleet struct {
	env    *sim.Env
	router *core.Router
	counts []int // tenants per shard, maintained by Attach
}

// New builds a fleet with one shard per thread. threads must be distinct
// host threads — one per core for the paper's deployment shape.
func New(env *sim.Env, costs core.RouterCosts, threads []*sim.Thread) *Fleet {
	return &Fleet{
		env:    env,
		router: core.NewRouter(env, costs, threads),
		counts: make([]int, len(threads)),
	}
}

// Router exposes the underlying router for policy tuning and stats.
func (f *Fleet) Router() *core.Router { return f.router }

// Shards returns the number of shards in the fleet.
func (f *Fleet) Shards() int { return f.router.Workers() }

// Attach places a tenant on the least-loaded shard (fewest tenants,
// lowest shard ID on ties — deterministic) and returns its controller.
func (f *Fleet) Attach(v *vm.VM, part device.Partition) *core.Controller {
	best := 0
	for i, n := range f.counts {
		if n < f.counts[best] {
			best = i
		}
	}
	f.counts[best]++
	return f.router.AttachWorker(best, v, part)
}

// EnablePromotion turns on the adaptive path-promotion tier fleet-wide.
func (f *Fleet) EnablePromotion() { f.router.EnablePromotion() }

// EnableQoS installs a per-shard WFQ arbiter on every shard.
func (f *Fleet) EnableQoS(cfg qos.Config) { f.router.EnableQoS(cfg) }

// QoSSnapshot returns the merged fleet-wide tenant snapshot.
func (f *Fleet) QoSSnapshot(now sim.Time) []qos.TenantSnapshot {
	return f.router.QoSSnapshot(now)
}

// CollectQoS folds every shard's arbiter counters into cs.
func (f *Fleet) CollectQoS(cs *metrics.CounterSet) { f.router.CollectQoS(cs) }

// Info snapshots every shard's tenant assignment, promotion state and
// inbox depths.
func (f *Fleet) Info() []core.ShardInfo { return f.router.ShardInfos() }

// Dump renders the fleet state for the control plane (nvmetroctl shard).
func (f *Fleet) Dump() string {
	var b strings.Builder
	r := f.router
	fmt.Fprintf(&b, "fleet: shards=%d promote=%v promotions=%d demotions=%d promoted-ops=%d\n",
		r.Workers(), r.PromotionEnabled(), r.Promotions, r.Demotions, r.PromotedOps)
	for _, si := range f.Info() {
		state := "awake"
		if si.Asleep {
			state = "parked"
		}
		promoted := 0
		for _, p := range si.Promoted {
			if p {
				promoted++
			}
		}
		fmt.Fprintf(&b, "shard %d: tenants=%d promoted=%d comps=%d ctrl=%d qos=%v %s\n",
			si.ID, len(si.VMs), promoted, si.CompDepth, si.CtrlDepth, si.QoS, state)
		for i, id := range si.VMs {
			tier := "routed"
			if si.Promoted[i] {
				tier = "promoted"
			}
			fmt.Fprintf(&b, "  vm%-4d %s\n", id, tier)
		}
	}
	return b.String()
}
