package shard_test

import (
	"testing"

	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// BenchmarkShardDispatch measures one 4 KiB read round trip through the
// sharded fleet, routed (classifier executes every command) against
// promoted (direct SQ→HSQ mapping, classifier elided) — the host-side cost
// the promotion tier removes.
func BenchmarkShardDispatch(b *testing.B) {
	for _, tier := range []string{"routed", "promoted"} {
		b.Run(tier, func(b *testing.B) {
			bench := newBench(2, 2)
			defer bench.env.Close()
			if tier == "promoted" {
				bench.fleet.EnablePromotion()
			}
			bases := make([]uint64, 2)
			pages := make([][]uint64, 2)
			for i := range bases {
				base, pg, err := bench.vms[i].Mem.AllocBuffer(4096)
				if err != nil {
					b.Fatal(err)
				}
				bases[i], pages[i] = base, pg
			}
			done := false
			bench.env.Go("bench", func(p *sim.Proc) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t := i % 2
					req := &vm.Req{Op: vm.OpRead, LBA: uint64(i%1024) * 8, Blocks: 8,
						Buf: bases[t], BufPages: pages[t]}
					if st := vm.SubmitAndWait(p, bench.disks[t], bench.vms[t].VCPU(0), req); !st.OK() {
						b.Fatalf("io %d failed: %v", i, st)
					}
				}
				b.StopTimer()
				done = true
				bench.env.Stop()
			})
			bench.env.RunUntil(sim.Time(1 << 62))
			if !done {
				b.Fatal("benchmark did not finish")
			}
		})
	}
}
