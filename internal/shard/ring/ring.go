// Package ring provides the lock-free multi-producer single-consumer
// queue that carries cross-shard traffic into a shard's dispatch loop.
//
// Two kinds of producers feed a shard from outside its own poll cycle:
// kernel-path completion callbacks (the blockdev stack finishing a KQ
// command on another host thread) and control-plane posts (reconcile
// fences, promotion grants). Both must reach the owning shard without a
// cross-shard lock, and both must drain at a deterministic point in the
// shard's round so the simulation stays bit-reproducible at any shard
// count.
//
// The queue is an intrusive Vyukov MPSC list: producers swap themselves
// onto the head with one atomic exchange and link the previous head;
// the single consumer walks from the tail. Push is wait-free; Pop is
// lock-free (a producer between the swap and the link leaves the chain
// momentarily broken, which Pop reports as "try again next round" —
// harmless for a poll loop that revisits its inbox every cycle, and
// impossible under the cooperative simulation scheduler, where a push
// runs to completion before the consumer resumes).
package ring

import "sync/atomic"

type node struct {
	next atomic.Pointer[node]
	fn   func()
}

// MPSC is an unbounded multi-producer single-consumer queue of thunks.
// The zero value is NOT ready; use New. All methods except Pop and Drain
// may be called concurrently; Pop/Drain must stay on one consumer.
type MPSC struct {
	head atomic.Pointer[node] // most recently pushed (producer side)
	tail *node                // consumer cursor; points at a consumed stub
	size atomic.Int64
}

// New returns an empty queue.
func New() *MPSC {
	q := &MPSC{}
	stub := &node{}
	q.head.Store(stub)
	q.tail = stub
	return q
}

// Push enqueues fn and reports whether the queue was empty beforehand —
// the producer-side signal that the consumer may be parked and needs a
// doorbell. fn must be non-nil.
func (q *MPSC) Push(fn func()) (wasEmpty bool) {
	n := &node{fn: fn}
	wasEmpty = q.size.Add(1) == 1
	prev := q.head.Swap(n)
	prev.next.Store(n)
	return wasEmpty
}

// Pop dequeues the oldest thunk. ok is false when the queue is empty or
// a producer is mid-push (retry on the next poll round).
func (q *MPSC) Pop() (fn func(), ok bool) {
	next := q.tail.next.Load()
	if next == nil {
		return nil, false
	}
	q.tail.fn = nil // release the consumed thunk
	q.tail = next
	q.size.Add(-1)
	return next.fn, true
}

// Drain pops every thunk enqueued before the call and hands each to
// visit, returning the count. Thunks pushed while draining may or may
// not be included; the loop stops at the first gap so a storm of
// producers cannot wedge the consumer in its round.
func (q *MPSC) Drain(visit func(fn func())) int {
	n := 0
	for {
		fn, ok := q.Pop()
		if !ok {
			return n
		}
		visit(fn)
		n++
	}
}

// Len is the approximate queue depth (exact when producers are quiescent,
// e.g. read from inside the owning shard's round or a diagnostics dump).
func (q *MPSC) Len() int {
	if n := q.size.Load(); n > 0 {
		return int(n)
	}
	return 0
}
