package ring

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFIFOSingleProducer checks strict order with one producer.
func TestFIFOSingleProducer(t *testing.T) {
	q := New()
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		wasEmpty := q.Push(func() { _ = i })
		if (i == 0) != wasEmpty {
			t.Fatalf("push %d: wasEmpty=%v", i, wasEmpty)
		}
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	got := 0
	q.Drain(func(fn func()) { fn(); got++ })
	if got != n {
		t.Fatalf("drained %d, want %d", got, n)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on empty queue")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestFIFOOrderValues checks that values come out oldest-first.
func TestFIFOOrderValues(t *testing.T) {
	q := New()
	var out []int
	for i := 0; i < 100; i++ {
		i := i
		q.Push(func() { out = append(out, i) })
	}
	q.Drain(func(fn func()) { fn() })
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMPSCRace hammers the queue with real concurrent producers and a
// single consumer — the configuration the race detector must bless: many
// kernel-completion contexts fanning into one shard's inbox. Asserts no
// thunk is lost or duplicated and per-producer order is preserved.
func TestMPSCRace(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	q := New()

	var produced sync.WaitGroup
	type mark struct{ producer, seq int }
	ch := make(chan mark, producers*perProducer)

	produced.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		go func() {
			defer produced.Done()
			for i := 0; i < perProducer; i++ {
				p, i := p, i
				q.Push(func() { ch <- mark{p, i} })
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		for got < producers*perProducer {
			fn, ok := q.Pop()
			if !ok {
				continue // producer mid-push or queue drained; spin
			}
			fn()
			got++
		}
	}()
	produced.Wait()
	<-done
	close(ch)

	seen := make([]int, producers)
	total := 0
	for m := range ch {
		if m.seq != seen[m.producer] {
			t.Fatalf("producer %d: got seq %d, want %d (reorder or loss)",
				m.producer, m.seq, seen[m.producer])
		}
		seen[m.producer]++
		total++
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestMPSCRaceDrain exercises Drain (the shard-round entry point) under
// concurrent producers: repeated drains must eventually account for every
// push exactly once.
func TestMPSCRaceDrain(t *testing.T) {
	const producers = 4
	const perProducer = 2000
	q := New()
	var produced sync.WaitGroup
	var pushed, popped atomic.Int64

	produced.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer produced.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(func() { popped.Add(1) })
				pushed.Add(1)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for popped.Load() < producers*perProducer {
			q.Drain(func(fn func()) { fn() })
		}
	}()
	produced.Wait()
	<-done

	if pushed.Load() != popped.Load() {
		t.Fatalf("pushed %d, popped %d", pushed.Load(), popped.Load())
	}
}

// BenchmarkMPSC measures the uncontended push+pop round trip.
func BenchmarkMPSC(b *testing.B) {
	q := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(fn)
		q.Pop()
	}
}
