package cache

import (
	"bytes"
	"testing"

	"nvmetro/internal/metrics"
)

// blk builds one block's payload: every byte is tag.
func blk(bs int, tag byte) []byte {
	return bytes.Repeat([]byte{tag}, bs)
}

// rng builds a multi-block payload where block i is filled with tag+i.
func rng(bs, blocks int, tag byte) []byte {
	out := make([]byte, 0, bs*blocks)
	for i := 0; i < blocks; i++ {
		out = append(out, blk(bs, tag+byte(i))...)
	}
	return out
}

func testCfg(capBlocks uint64) Config {
	cfg := DefaultConfig()
	cfg.BlockSize = 16
	cfg.CapacityBlocks = capBlocks
	return cfg
}

func TestFillThenHit(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	data := rng(bs, 4, 0x10)
	id := c.BeginFill(100, 4)
	if !c.CommitFill(id, data) {
		t.Fatal("uncontested fill did not install")
	}
	buf := make([]byte, 4*bs)
	if !c.Read(100, 4, buf) {
		t.Fatal("read after fill missed")
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("hit returned wrong data")
	}
	// Partial residency is a miss: one block short of the range.
	if c.Read(99, 2, make([]byte, 2*bs)) {
		t.Fatal("partial residency served as a hit")
	}
	if c.Hits() != 4 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 4/2", c.Hits(), c.Misses())
	}
}

func TestWriteThroughInstallsOnEnd(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	id := c.BeginFill(10, 2)
	c.CommitFill(id, rng(bs, 2, 1))

	w := c.BeginWrite(10, 2)
	// The range must be invalid while the write is in flight.
	if c.Read(10, 2, make([]byte, 2*bs)) {
		t.Fatal("read hit inside an open write window")
	}
	newData := rng(bs, 2, 0x40)
	c.EndWrite(w, newData)
	buf := make([]byte, 2*bs)
	if !c.Read(10, 2, buf) {
		t.Fatal("write-through install missed")
	}
	if !bytes.Equal(buf, newData) {
		t.Fatal("write-through installed stale data")
	}
}

func TestWriteAroundOnlyInvalidates(t *testing.T) {
	cfg := testCfg(64)
	cfg.WritePolicy = WriteAround
	c := New(cfg)
	bs := int(c.BlockSize())
	id := c.BeginFill(10, 2)
	c.CommitFill(id, rng(bs, 2, 1))
	w := c.BeginWrite(10, 2)
	c.EndWrite(w, rng(bs, 2, 2))
	if c.Read(10, 2, make([]byte, 2*bs)) {
		t.Fatal("write-around left data resident")
	}
}

func TestFailedWriteNeverInstalls(t *testing.T) {
	c := New(testCfg(64))
	w := c.BeginWrite(10, 2)
	c.EndWrite(w, nil) // backend write failed
	if c.Read(10, 2, make([]byte, 2*int(c.BlockSize()))) {
		t.Fatal("failed write installed data")
	}
}

// The three stale-fill interleavings: a fill whose lifetime overlaps a
// write window must never install, regardless of ordering.
func TestStaleFillInterleavings(t *testing.T) {
	bs := 16
	cases := []struct {
		name string
		run  func(c *Cache) bool // returns CommitFill's result
	}{
		{"write spans fill", func(c *Cache) bool {
			f := c.BeginFill(0, 4)
			w := c.BeginWrite(2, 4)
			c.EndWrite(w, rng(bs, 4, 9))
			return c.CommitFill(f, rng(bs, 4, 1))
		}},
		{"write still open at commit", func(c *Cache) bool {
			w := c.BeginWrite(2, 4)
			f := c.BeginFill(0, 4)
			ok := c.CommitFill(f, rng(bs, 4, 1))
			c.EndWrite(w, rng(bs, 4, 9))
			return ok
		}},
		{"write opens and closes inside fill", func(c *Cache) bool {
			f := c.BeginFill(0, 4)
			w := c.BeginWrite(2, 4)
			c.EndWrite(w, nil)
			return c.CommitFill(f, rng(bs, 4, 1))
		}},
		{"write closes between fill begin and commit", func(c *Cache) bool {
			w := c.BeginWrite(2, 4)
			f := c.BeginFill(0, 4)
			c.EndWrite(w, nil)
			return c.CommitFill(f, rng(bs, 4, 1))
		}},
	}
	for _, tc := range cases {
		c := New(testCfg(64))
		if tc.run(c) {
			t.Fatalf("%s: conflicted fill installed", tc.name)
		}
		// Blocks 0 and 1 are covered only by the fill [0,4), not the write
		// [2,6): if either is resident the dropped fill leaked data.
		if c.Peek(0) != nil || c.Peek(1) != nil {
			t.Fatalf("%s: stale fill data resident", tc.name)
		}
		var cs metrics.CounterSet
		c.Collect(&cs)
		if cs.Get("cache.conflicts") != 1 {
			t.Fatalf("%s: conflicts=%d, want 1", tc.name, cs.Get("cache.conflicts"))
		}
	}
}

func TestNonOverlappingFillSurvivesWrite(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	f := c.BeginFill(0, 2)
	w := c.BeginWrite(10, 2) // disjoint range
	c.EndWrite(w, rng(bs, 2, 9))
	if !c.CommitFill(f, rng(bs, 2, 1)) {
		t.Fatal("disjoint write cancelled an unrelated fill")
	}
}

func TestEndWriteSkipsWhenWritesOverlap(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	w1 := c.BeginWrite(0, 4)
	w2 := c.BeginWrite(2, 4)
	c.EndWrite(w1, rng(bs, 4, 1)) // w2 still open: install must be skipped
	if c.Read(0, 1, make([]byte, bs)) {
		t.Fatal("install happened under an overlapping write window")
	}
	// w2's lifetime overlapped w1's too: which payload the backend holds on
	// [2,4) depends on commit order the cache never saw, so w2 must not
	// install either.
	c.EndWrite(w2, rng(bs, 4, 2))
	for lba := uint64(0); lba < 6; lba++ {
		if c.Peek(lba) != nil {
			t.Fatalf("block %d resident after conflicting writes", lba)
		}
	}
	var cs metrics.CounterSet
	c.Collect(&cs)
	if cs.Get("cache.write_skips") != 2 {
		t.Fatalf("write_skips=%d, want 2", cs.Get("cache.write_skips"))
	}
}

// TestNestedWriteWindowNeverInstalls is the A.Begin, B.Begin, B.End, A.End
// interleaving: B's window closes entirely inside A's, and the backend
// committed B after A (EndWrite order is not commit order — in
// CachedReplicator it is set by the slow secondary leg). A closing with no
// *open* overlaps must still not install A's payload over B's.
func TestNestedWriteWindowNeverInstalls(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	a := c.BeginWrite(0, 2)
	b := c.BeginWrite(0, 2)
	// Backend: A's payload lands first, then B's — backing holds B.
	c.EndWrite(b, rng(bs, 2, 0xBB))
	c.EndWrite(a, rng(bs, 2, 0xAA)) // no open overlaps, but conflicted
	for lba := uint64(0); lba < 2; lba++ {
		if got := c.Peek(lba); got != nil {
			t.Fatalf("block %d resident (%v) after nested write windows — backing holds B's payload", lba, got[0])
		}
	}
	var cs metrics.CounterSet
	c.Collect(&cs)
	if cs.Get("cache.write_skips") != 2 {
		t.Fatalf("write_skips=%d, want 2", cs.Get("cache.write_skips"))
	}
}

// An external Invalidate (kernel-path or resync writer) racing an open
// write window makes the window's payload unreliable too.
func TestInvalidateConflictsOpenWrite(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	w := c.BeginWrite(0, 4)
	c.Invalidate(2, 1) // external writer touched [2,3) mid-window
	c.EndWrite(w, rng(bs, 4, 1))
	for lba := uint64(0); lba < 4; lba++ {
		if c.Peek(lba) != nil {
			t.Fatalf("block %d resident after external write raced the window", lba)
		}
	}
	var cs metrics.CounterSet
	c.Collect(&cs)
	if cs.Get("cache.write_skips") != 1 {
		t.Fatalf("write_skips=%d, want 1", cs.Get("cache.write_skips"))
	}
}

func TestInvalidateCancelsFills(t *testing.T) {
	c := New(testCfg(64))
	bs := int(c.BlockSize())
	f := c.BeginFill(0, 4)
	c.Invalidate(2, 1)
	if c.CommitFill(f, rng(bs, 4, 1)) {
		t.Fatal("fill survived an overlapping invalidation")
	}
}

func TestAbortFill(t *testing.T) {
	c := New(testCfg(64))
	f := c.BeginFill(0, 4)
	c.AbortFill(f)
	if c.CommitFill(f, rng(int(c.BlockSize()), 4, 1)) {
		t.Fatal("aborted fill committed")
	}
	var cs metrics.CounterSet
	c.Collect(&cs)
	if cs.Get("cache.fill_aborts") != 1 {
		t.Fatalf("fill_aborts=%d, want 1", cs.Get("cache.fill_aborts"))
	}
}

// OnEvict must run with no cache locks held: the callback re-enters the
// cache (Invalidate takes the window mutex, Peek a shard mutex), which
// deadlocks if eviction notification happens under either lock.
func TestOnEvictRunsOutsideLocks(t *testing.T) {
	cfg := testCfg(8) // tiny: every install evicts soon
	cfg.Shards = 1
	var evicted []uint64
	var c *Cache
	cfg.OnEvict = func(lba uint64) {
		evicted = append(evicted, lba)
		c.Peek(lba)
		c.Invalidate(lba, 1) // no-op (already gone), but takes the locks
	}
	c = New(cfg)
	bs := int(c.BlockSize())
	for i := uint64(0); i < 64; i++ {
		f := c.BeginFill(i, 1)
		c.CommitFill(f, blk(bs, byte(i)))
	}
	if len(evicted) == 0 {
		t.Fatal("tiny cache never evicted")
	}
	if c.Resident() > 8 {
		t.Fatalf("resident=%d exceeds capacity 8", c.Resident())
	}
}

func TestCollectDeterministicAcrossRuns(t *testing.T) {
	run := func() (*metrics.CounterSet, *metrics.Histogram) {
		c := New(testCfg(32))
		bs := int(c.BlockSize())
		for i := 0; i < 200; i++ {
			lba := uint64(i*7) % 64
			switch i % 5 {
			case 0, 1:
				f := c.BeginFill(lba, 2)
				c.CommitFill(f, rng(bs, 2, byte(i)))
			case 2:
				w := c.BeginWrite(lba, 2)
				c.EndWrite(w, rng(bs, 2, byte(i)))
			case 3:
				c.Read(lba, 2, make([]byte, 2*bs))
			default:
				c.Invalidate(lba, 1)
			}
		}
		var cs metrics.CounterSet
		c.Collect(&cs)
		return &cs, c.ReuseHistogram()
	}
	a, ha := run()
	b, hb := run()
	if !a.Equal(b) {
		t.Fatalf("same op sequence produced different counters:\n%s\n%s", a, b)
	}
	if !ha.Equal(hb) {
		t.Fatalf("same op sequence produced different reuse histograms: %v vs %v", ha, hb)
	}
}

// ARC keeps a re-read hot set resident through a one-shot scan; plain LRU
// flushes it. Both must respect capacity.
func TestARCScanResistance(t *testing.T) {
	const capBlocks = 64
	mk := func(pol func(int) ReplacementPolicy) *Cache {
		cfg := testCfg(capBlocks)
		cfg.Shards = 1
		cfg.NewPolicy = pol
		return New(cfg)
	}
	workload := func(c *Cache) int {
		bs := int(c.BlockSize())
		touch := func(lba uint64) {
			buf := make([]byte, bs)
			if !c.Read(lba, 1, buf) {
				f := c.BeginFill(lba, 1)
				c.CommitFill(f, blk(bs, byte(lba)))
			}
		}
		// Establish a hot set re-read many times...
		for round := 0; round < 8; round++ {
			for lba := uint64(0); lba < 32; lba++ {
				touch(lba)
			}
		}
		// ...then scan a large cold range once.
		for lba := uint64(1000); lba < 1000+256; lba++ {
			touch(lba)
		}
		resident := 0
		for lba := uint64(0); lba < 32; lba++ {
			if c.Peek(lba) != nil {
				resident++
			}
		}
		return resident
	}
	arcKept := workload(mk(NewARC))
	lruKept := workload(mk(NewLRU))
	if arcKept <= lruKept {
		t.Fatalf("ARC kept %d/32 hot blocks, LRU kept %d — ARC should resist the scan", arcKept, lruKept)
	}
	if arcKept < 24 {
		t.Fatalf("ARC kept only %d/32 hot blocks through a scan", arcKept)
	}
}

func TestGhostHitsObserved(t *testing.T) {
	cfg := testCfg(8)
	cfg.Shards = 1
	cfg.NewPolicy = NewLRU
	c := New(cfg)
	bs := int(c.BlockSize())
	fill := func(lba uint64) {
		f := c.BeginFill(lba, 1)
		c.CommitFill(f, blk(bs, byte(lba)))
	}
	for lba := uint64(0); lba < 12; lba++ {
		fill(lba)
	}
	// Blocks 0..3 were evicted into the ghost list; refilling one is a
	// ghost re-admission.
	fill(0)
	var cs metrics.CounterSet
	c.Collect(&cs)
	if cs.Get("cache.ghost_hits") == 0 {
		t.Fatal("ghost re-admission not observed")
	}
}
