package cache

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveBacking is the reference model: the committed contents of the backing
// store, one block per key. A cache hit may only ever return the current
// committed backing contents, and never while a write window over the range
// is open. Write windows stay in inFlt from BeginWrite to EndWrite; the
// backend commit happens at a random point in between, so overlapping
// windows can commit in a different order than they close.
type naiveBacking struct {
	bs    int
	data  map[uint64][]byte
	inFlt map[uint64]*pendingWrite // open write windows by handle
}

type pendingWrite struct {
	lba, blocks uint64
	payload     []byte
	committed   bool // backend write already landed (window may still be open)
}

func newNaiveBacking(bs int) *naiveBacking {
	return &naiveBacking{bs: bs, data: make(map[uint64][]byte), inFlt: make(map[uint64]*pendingWrite)}
}

func (m *naiveBacking) committed(lba uint64) []byte {
	if d, ok := m.data[lba]; ok {
		return d
	}
	return make([]byte, m.bs) // unwritten blocks read as zeros
}

func (m *naiveBacking) read(lba, blocks uint64) []byte {
	out := make([]byte, 0, int(blocks)*m.bs)
	for b := uint64(0); b < blocks; b++ {
		out = append(out, m.committed(lba+b)...)
	}
	return out
}

func (m *naiveBacking) commit(w *pendingWrite) {
	for b := uint64(0); b < w.blocks; b++ {
		d := make([]byte, m.bs)
		copy(d, w.payload[int(b)*m.bs:])
		m.data[w.lba+b] = d
	}
}

func (m *naiveBacking) writePending(lba, blocks uint64) bool {
	for _, w := range m.inFlt {
		if lba < w.lba+w.blocks && w.lba < lba+blocks {
			return true
		}
	}
	return false
}

type openFill struct {
	id       uint64
	lba, nbl uint64
	snapshot []byte // backing contents captured when the backend read ran
}

// TestCacheCoherenceProperty drives random interleavings of reads, fills
// (begin / backend-read-snapshot / commit), writes (begin / backend-commit /
// end — three independently scheduled steps, so overlapping write windows
// coexist and backend commit order can differ from EndWrite order) and
// invalidations against the naive backing model, and checks after every
// operation that any cache hit returns exactly the committed backing
// contents and that no hit is served while a write overlapping the range is
// in flight. This is the property the storage function relies on: a write —
// including one racing an in-flight fill or another write — is never
// followed by a stale cached read.
func TestCacheCoherenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		trials  = 50
		opsPer  = 300
		domain  = 48 // block LBA space, small to force overlap
		maxSpan = 4
	)
	for _, pol := range []struct {
		name string
		mk   func(int) ReplacementPolicy
	}{{"arc", NewARC}, {"lru", NewLRU}} {
		for _, wp := range []WritePolicy{WriteThrough, WriteAround} {
			for trial := 0; trial < trials; trial++ {
				cfg := Config{
					BlockSize:      8,
					CapacityBlocks: 32, // smaller than domain: evictions happen
					Shards:         4,
					WritePolicy:    wp,
					NewPolicy:      pol.mk,
				}
				c := New(cfg)
				model := newNaiveBacking(int(cfg.BlockSize))
				var fills []openFill
				var writeIDs []uint64
				seq := byte(1)

				span := func() (uint64, uint64) {
					return uint64(rng.Intn(domain)), uint64(1 + rng.Intn(maxSpan))
				}
				for op := 0; op < opsPer; op++ {
					switch rng.Intn(12) {
					case 0, 1, 2: // guest read: probe cache, fill on miss
						lba, nbl := span()
						buf := make([]byte, int(nbl)*model.bs)
						if c.Read(lba, nbl, buf) {
							verifyHit(t, model, lba, nbl, buf, pol.name, wp, trial, op)
						} else {
							f := c.BeginFill(lba, nbl)
							// The backend read happens at some point during
							// the window; snapshot now or later at random.
							of := openFill{id: f, lba: lba, nbl: nbl}
							if rng.Intn(2) == 0 {
								of.snapshot = model.read(lba, nbl)
							}
							fills = append(fills, of)
						}
					case 3: // commit a random open fill
						if len(fills) == 0 {
							continue
						}
						i := rng.Intn(len(fills))
						f := fills[i]
						fills = append(fills[:i], fills[i+1:]...)
						if f.snapshot == nil {
							f.snapshot = model.read(f.lba, f.nbl)
						}
						c.CommitFill(f.id, f.snapshot)
					case 4, 5: // begin a write
						lba, nbl := span()
						payload := bytes.Repeat([]byte{seq}, int(nbl)*model.bs)
						seq++
						w := c.BeginWrite(lba, nbl)
						model.inFlt[w] = &pendingWrite{lba: lba, blocks: nbl, payload: payload}
						writeIDs = append(writeIDs, w)
					case 6: // backend commit of a random open write (window stays open)
						if len(writeIDs) == 0 {
							continue
						}
						pw := model.inFlt[writeIDs[rng.Intn(len(writeIDs))]]
						if !pw.committed {
							model.commit(pw)
							pw.committed = true
						}
					case 7, 8: // close a random open write window
						if len(writeIDs) == 0 {
							continue
						}
						i := rng.Intn(len(writeIDs))
						w := writeIDs[i]
						writeIDs = append(writeIDs[:i], writeIDs[i+1:]...)
						pw := model.inFlt[w]
						delete(model.inFlt, w)
						if !pw.committed && rng.Intn(8) == 0 {
							c.EndWrite(w, nil) // backend write failed
						} else {
							if !pw.committed {
								model.commit(pw)
								pw.committed = true
							}
							c.EndWrite(w, pw.payload)
						}
					case 9: // external invalidation (e.g. kernel-path write)
						lba, nbl := span()
						payload := bytes.Repeat([]byte{seq}, int(nbl)*model.bs)
						seq++
						model.commit(&pendingWrite{lba: lba, blocks: nbl, payload: payload})
						c.Invalidate(lba, nbl)
					default: // re-read a recently written range
						lba, nbl := span()
						buf := make([]byte, int(nbl)*model.bs)
						if c.Read(lba, nbl, buf) {
							verifyHit(t, model, lba, nbl, buf, pol.name, wp, trial, op)
						}
					}
					// Global invariant sweep: every resident block matches
					// committed backing unless a write over it is in flight
					// (in which case it must not be resident at all — the
					// write window invalidated it).
					for lba := uint64(0); lba < domain; lba++ {
						got := c.Peek(lba)
						if got == nil {
							continue
						}
						if model.writePending(lba, 1) {
							t.Fatalf("%s/%v trial %d op %d: block %d resident under an open write window",
								pol.name, wp, trial, op, lba)
						}
						if !bytes.Equal(got, model.committed(lba)) {
							t.Fatalf("%s/%v trial %d op %d: block %d stale: cache %v backing %v",
								pol.name, wp, trial, op, lba, got, model.committed(lba))
						}
					}
					if r := c.Resident(); r > int(cfg.CapacityBlocks) {
						t.Fatalf("%s/%v trial %d op %d: resident %d exceeds capacity %d",
							pol.name, wp, trial, op, r, cfg.CapacityBlocks)
					}
				}
			}
		}
	}
}

func verifyHit(t *testing.T, model *naiveBacking, lba, nbl uint64, buf []byte, pol string, wp WritePolicy, trial, op int) {
	t.Helper()
	if model.writePending(lba, nbl) {
		t.Fatalf("%s/%v trial %d op %d: hit on [%d,%d) while a write is in flight",
			pol, wp, trial, op, lba, lba+nbl)
	}
	if want := model.read(lba, nbl); !bytes.Equal(buf, want) {
		t.Fatalf("%s/%v trial %d op %d: stale hit on [%d,%d): got %v want %v",
			pol, wp, trial, op, lba, lba+nbl, buf, want)
	}
}

// TestPolicyModelProperty checks both replacement policies against a naive
// reference model over random op sequences: Len never exceeds capacity,
// every reported eviction was resident, and the policy's resident set always
// equals the model's.
func TestPolicyModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, pol := range []struct {
		name string
		mk   func(int) ReplacementPolicy
	}{{"arc", NewARC}, {"lru", NewLRU}} {
		for trial := 0; trial < 50; trial++ {
			capacity := 1 + rng.Intn(16)
			p := pol.mk(capacity)
			resident := make(map[uint64]bool)
			for op := 0; op < 400; op++ {
				key := uint64(rng.Intn(3 * capacity))
				switch rng.Intn(4) {
				case 0: // hit (may be on a non-resident key: must be a no-op)
					p.Hit(key)
				case 1: // remove
					p.Remove(key)
					delete(resident, key)
				default: // admit
					for _, ev := range p.Admit(key) {
						if !resident[ev] {
							t.Fatalf("%s cap=%d trial %d op %d: evicted non-resident key %d",
								pol.name, capacity, trial, op, ev)
						}
						if ev == key {
							t.Fatalf("%s cap=%d trial %d op %d: evicted the key being admitted",
								pol.name, capacity, trial, op)
						}
						delete(resident, ev)
					}
					resident[key] = true
				}
				if p.Len() != len(resident) {
					t.Fatalf("%s cap=%d trial %d op %d: policy Len %d, model %d",
						pol.name, capacity, trial, op, p.Len(), len(resident))
				}
				if p.Len() > capacity {
					t.Fatalf("%s cap=%d trial %d op %d: Len %d exceeds capacity",
						pol.name, capacity, trial, op, p.Len())
				}
			}
		}
	}
}
