package cache

import "container/list"

// ReplacementPolicy tracks residency metadata for one shard. Policies are
// deterministic: the same call sequence always yields the same evictions.
// They are not safe for concurrent use; the owning shard serializes calls.
type ReplacementPolicy interface {
	// Hit notes an access to a resident key.
	Hit(key uint64)
	// Admit makes key resident, returning the keys evicted to make room
	// (in eviction order). The returned keys no longer hold data.
	Admit(key uint64) []uint64
	// Remove forgets key entirely (resident or ghost), e.g. after an
	// invalidation.
	Remove(key uint64)
	// Len is the resident count.
	Len() int
	// GhostHits counts admissions of recently evicted keys — the signal
	// that the resident set is too small for the reuse distance.
	GhostHits() uint64
}

// polEntry is one tracked key; home identifies the list it lives on.
type polEntry struct {
	key  uint64
	home *list.List
}

func pushMRU(l *list.List, key uint64) *list.Element {
	return l.PushFront(&polEntry{key: key, home: l})
}

// lruPolicy is LRU with a same-sized ghost list: evicted keys linger as
// ghosts so re-admissions within one cache-size worth of evictions are
// observable (GhostHits) even though plain LRU ignores the signal.
type lruPolicy struct {
	cap       int
	res       *list.List // resident, MRU at front
	ghost     *list.List // recently evicted, MRU at front
	idx       map[uint64]*list.Element
	ghostHits uint64
}

// NewLRU returns an LRU policy with the given resident capacity.
func NewLRU(capacity int) ReplacementPolicy {
	if capacity < 1 {
		capacity = 1
	}
	return &lruPolicy{cap: capacity, res: list.New(), ghost: list.New(), idx: make(map[uint64]*list.Element)}
}

func (l *lruPolicy) Len() int          { return l.res.Len() }
func (l *lruPolicy) GhostHits() uint64 { return l.ghostHits }

func (l *lruPolicy) Hit(key uint64) {
	if e, ok := l.idx[key]; ok && e.Value.(*polEntry).home == l.res {
		l.res.MoveToFront(e)
	}
}

func (l *lruPolicy) Admit(key uint64) []uint64 {
	if e, ok := l.idx[key]; ok {
		ent := e.Value.(*polEntry)
		if ent.home == l.res {
			l.res.MoveToFront(e)
			return nil
		}
		// Ghost re-admission.
		l.ghostHits++
		l.ghost.Remove(e)
		delete(l.idx, key)
	}
	l.idx[key] = pushMRU(l.res, key)
	var evicted []uint64
	for l.res.Len() > l.cap {
		lru := l.res.Back()
		k := lru.Value.(*polEntry).key
		l.res.Remove(lru)
		delete(l.idx, k)
		evicted = append(evicted, k)
		l.idx[k] = pushMRU(l.ghost, k)
		if l.ghost.Len() > l.cap {
			gb := l.ghost.Back()
			delete(l.idx, gb.Value.(*polEntry).key)
			l.ghost.Remove(gb)
		}
	}
	return evicted
}

func (l *lruPolicy) Remove(key uint64) {
	e, ok := l.idx[key]
	if !ok {
		return
	}
	e.Value.(*polEntry).home.Remove(e)
	delete(l.idx, key)
}

// arcPolicy is the ARC replacement policy: two resident lists (T1 holds
// blocks seen once, T2 blocks seen at least twice) and two ghost lists (B1,
// B2) remembering recent evictions from each. The adaptive target p shifts
// capacity between recency (T1) and frequency (T2) according to which ghost
// list is being re-hit, so a zipfian re-read mix keeps its hot set in T2
// while a scan streams through T1 without flushing it.
type arcPolicy struct {
	c              int // total resident capacity
	p              int // target size of T1
	t1, t2, b1, b2 *list.List
	idx            map[uint64]*list.Element
	ghostHits      uint64
}

// NewARC returns an ARC policy with the given resident capacity.
func NewARC(capacity int) ReplacementPolicy {
	if capacity < 1 {
		capacity = 1
	}
	return &arcPolicy{
		c:  capacity,
		t1: list.New(), t2: list.New(), b1: list.New(), b2: list.New(),
		idx: make(map[uint64]*list.Element),
	}
}

func (a *arcPolicy) Len() int          { return a.t1.Len() + a.t2.Len() }
func (a *arcPolicy) GhostHits() uint64 { return a.ghostHits }

// promote moves a tracked key to T2's MRU position.
func (a *arcPolicy) promote(e *list.Element, key uint64) {
	e.Value.(*polEntry).home.Remove(e)
	a.idx[key] = pushMRU(a.t2, key)
}

func (a *arcPolicy) Hit(key uint64) {
	e, ok := a.idx[key]
	if !ok {
		return
	}
	home := e.Value.(*polEntry).home
	if home == a.t1 || home == a.t2 {
		a.promote(e, key)
	}
}

// replace demotes one resident block to the matching ghost list and returns
// its key, implementing ARC's REPLACE subroutine.
func (a *arcPolicy) replace(hitB2 bool) []uint64 {
	var victim *list.Element
	var ghost *list.List
	if a.t1.Len() >= 1 && (a.t1.Len() > a.p || (hitB2 && a.t1.Len() == a.p)) {
		victim, ghost = a.t1.Back(), a.b1
	} else if a.t2.Len() > 0 {
		victim, ghost = a.t2.Back(), a.b2
	} else if a.t1.Len() > 0 {
		victim, ghost = a.t1.Back(), a.b1
	} else {
		return nil
	}
	k := victim.Value.(*polEntry).key
	victim.Value.(*polEntry).home.Remove(victim)
	a.idx[k] = pushMRU(ghost, k)
	return []uint64{k}
}

func (a *arcPolicy) dropLRU(l *list.List) {
	if b := l.Back(); b != nil {
		delete(a.idx, b.Value.(*polEntry).key)
		l.Remove(b)
	}
}

func (a *arcPolicy) Admit(key uint64) []uint64 {
	if e, ok := a.idx[key]; ok {
		ent := e.Value.(*polEntry)
		switch ent.home {
		case a.t1, a.t2:
			// Already resident: treat as a hit.
			a.promote(e, key)
			return nil
		case a.b1:
			// Recency ghost hit: grow the T1 target.
			a.ghostHits++
			delta := 1
			if a.b1.Len() > 0 && a.b2.Len()/a.b1.Len() > 1 {
				delta = a.b2.Len() / a.b1.Len()
			}
			a.p = min(a.c, a.p+delta)
			ev := a.replace(false)
			a.promote(e, key)
			return ev
		default: // b2
			// Frequency ghost hit: shrink the T1 target.
			a.ghostHits++
			delta := 1
			if a.b2.Len() > 0 && a.b1.Len()/a.b2.Len() > 1 {
				delta = a.b1.Len() / a.b2.Len()
			}
			a.p = max(0, a.p-delta)
			ev := a.replace(true)
			a.promote(e, key)
			return ev
		}
	}
	// Brand-new key.
	var evicted []uint64
	l1 := a.t1.Len() + a.b1.Len()
	if l1 == a.c {
		if a.t1.Len() < a.c {
			a.dropLRU(a.b1)
			evicted = a.replace(false)
		} else {
			// B1 is empty and T1 full: evict T1's LRU outright.
			lru := a.t1.Back()
			k := lru.Value.(*polEntry).key
			a.t1.Remove(lru)
			delete(a.idx, k)
			evicted = append(evicted, k)
		}
	} else if l1 < a.c {
		total := l1 + a.t2.Len() + a.b2.Len()
		if total >= a.c {
			if total == 2*a.c {
				a.dropLRU(a.b2)
			}
			evicted = a.replace(false)
		}
	}
	a.idx[key] = pushMRU(a.t1, key)
	return evicted
}

func (a *arcPolicy) Remove(key uint64) {
	e, ok := a.idx[key]
	if !ok {
		return
	}
	e.Value.(*polEntry).home.Remove(e)
	delete(a.idx, key)
}
