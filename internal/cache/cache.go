// Package cache is a sharded, block-granular host read cache for the
// NVMetro notify path: the cache classifier steers hot reads to a UIF that
// serves them from this cache and fills it on miss, while every write
// passes through an invalidation window so the cache can never return data
// older than the last completed write — including writes racing in-flight
// fills (the classic stale-fill hazard) and writes landing mid-resync.
//
// Coherence protocol. Reads probe resident blocks directly. A miss opens a
// fill window (BeginFill) before the backend read is issued and installs
// its data only at CommitFill; a write opens a write window (BeginWrite)
// that immediately invalidates the range and cancels every overlapping
// fill, and closes it at EndWrite when the backend write has completed. A
// fill is dropped — counted as a dirty-window conflict — if a write window
// overlapped any part of its lifetime: BeginWrite and EndWrite both cancel
// open overlapping fills, and CommitFill re-checks the windows still open.
// Write windows track overlap the same way: when two write windows (or a
// write window and an external Invalidate) overlap at any point in their
// lifetimes, both are marked conflicted — the backend's final contents
// depend on a commit order the cache cannot observe, even when one window
// closes entirely inside the other. Write-through installs the write's
// payload at EndWrite only if its window was never conflicted; write-around
// only invalidates.
//
// The window table is guarded by one cache-level mutex taken outside the
// per-shard mutexes (lock order: cache, then shard), and installs happen
// under it, so a commit can never slip data past a concurrent invalidation.
package cache

import (
	"fmt"
	"sync"

	"nvmetro/internal/metrics"
)

// WritePolicy selects what a completed guest write leaves in the cache.
type WritePolicy int

const (
	// WriteThrough installs the write's payload when the backend write
	// completes, so re-reads of freshly written data hit.
	WriteThrough WritePolicy = iota
	// WriteAround only invalidates the written range; the next read fills
	// from the backend. Cheapest for write-once data.
	WriteAround
)

func (w WritePolicy) String() string {
	if w == WriteAround {
		return "write-around"
	}
	return "write-through"
}

// Config sizes and parameterizes a Cache.
type Config struct {
	// BlockSize is the cached block size in bytes (the device block size).
	BlockSize uint32
	// CapacityBlocks is the total resident capacity across all shards.
	CapacityBlocks uint64
	// Shards is the shard count (rounded up to a power of two; default 8).
	Shards int
	// WritePolicy selects write-through or write-around.
	WritePolicy WritePolicy
	// NewPolicy builds one shard's replacement policy from its capacity
	// (default NewARC).
	NewPolicy func(capacityBlocks int) ReplacementPolicy
	// OnEvict, when set, observes every evicted block LBA. It runs after
	// all cache locks are released, so it may call back into the cache or
	// into classifier hint maps.
	OnEvict func(lba uint64)
}

// DefaultConfig returns a 16 MiB, 8-shard, ARC, write-through cache of
// 512-byte blocks.
func DefaultConfig() Config {
	return Config{
		BlockSize:      512,
		CapacityBlocks: 32768,
		Shards:         8,
		WritePolicy:    WriteThrough,
		NewPolicy:      NewARC,
	}
}

// entry is one resident block.
type entry struct {
	data   []byte
	lastOp uint64 // shard op-clock at the last access, for reuse distance
}

// shard is one lock domain of the cache.
type shard struct {
	mu   sync.Mutex
	data map[uint64]*entry
	pol  ReplacementPolicy

	ops uint64 // per-block access clock

	hits, misses, admissions, evictions, invalidations uint64

	reuse *metrics.Histogram // op-distance between accesses to the same block
}

// window is one in-flight fill or write over [lba, lba+blocks).
type window struct {
	lba, blocks uint64
	cancelled   bool // fills: a write overlapped the lifetime; drop at commit
	conflicted  bool // writes: another writer overlapped the lifetime; skip install
}

func (w *window) overlaps(lba, blocks uint64) bool {
	return lba < w.lba+w.blocks && w.lba < lba+blocks
}

// Cache is the sharded block cache. All methods are safe for concurrent
// use.
type Cache struct {
	cfg       Config
	shards    []*shard
	shardBits uint

	mu     sync.Mutex // guards the window tables; outer to shard locks
	fills  map[uint64]*window
	writes map[uint64]*window
	nextID uint64

	conflicts  uint64 // fills dropped because a write window overlapped
	fillAborts uint64
	installs   uint64 // write-through installs that happened
	writeSkips uint64 // write-through installs skipped (overlapping writes)
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 512
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	bits := uint(0)
	for 1<<bits < cfg.Shards {
		bits++
	}
	cfg.Shards = 1 << bits
	if cfg.CapacityBlocks < uint64(cfg.Shards) {
		cfg.CapacityBlocks = uint64(cfg.Shards)
	}
	if cfg.NewPolicy == nil {
		cfg.NewPolicy = NewARC
	}
	c := &Cache{
		cfg:       cfg,
		shardBits: bits,
		fills:     make(map[uint64]*window),
		writes:    make(map[uint64]*window),
	}
	perShard := int(cfg.CapacityBlocks) / cfg.Shards
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &shard{
			data:  make(map[uint64]*entry),
			pol:   cfg.NewPolicy(perShard),
			reuse: metrics.NewHistogram(),
		})
	}
	return c
}

// BlockSize returns the cached block size in bytes.
func (c *Cache) BlockSize() uint32 { return c.cfg.BlockSize }

// shardOf maps a block LBA to its shard by multiplicative hashing, so
// consecutive blocks spread across lock domains.
func (c *Cache) shardOf(lba uint64) *shard {
	if c.shardBits == 0 {
		return c.shards[0]
	}
	return c.shards[(lba*0x9E3779B97F4A7C15)>>(64-c.shardBits)]
}

// lockRange locks every shard covering [lba, lba+blocks) in index order
// (deadlock-free) and returns the distinct shards locked.
func (c *Cache) lockRange(lba, blocks uint64) []*shard {
	var mask uint64 // shard count is <= 64 in practice; fall back to map otherwise
	var idxs []int
	for b := uint64(0); b < blocks; b++ {
		i := 0
		if c.shardBits > 0 {
			i = int(((lba + b) * 0x9E3779B97F4A7C15) >> (64 - c.shardBits))
		}
		if len(c.shards) <= 64 {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			mask |= 1 << uint(i)
		}
		idxs = append(idxs, i)
	}
	if len(c.shards) > 64 {
		seen := make(map[int]bool, len(idxs))
		uniq := idxs[:0]
		for _, i := range idxs {
			if !seen[i] {
				seen[i] = true
				uniq = append(uniq, i)
			}
		}
		idxs = uniq
	}
	// Insertion sort: the slice is tiny.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	out := make([]*shard, len(idxs))
	for i, si := range idxs {
		out[i] = c.shards[si]
		out[i].mu.Lock()
	}
	return out
}

func unlockAll(shards []*shard) {
	for i := len(shards) - 1; i >= 0; i-- {
		shards[i].mu.Unlock()
	}
}

// Read copies [lba, lba+blocks) into buf if every block is resident,
// reporting a hit. All-or-nothing: a partial hit counts (and serves) as a
// miss, keeping the fast path's single backend read. buf must hold
// blocks*BlockSize bytes.
func (c *Cache) Read(lba uint64, blocks uint64, buf []byte) bool {
	if blocks == 0 {
		return false
	}
	bs := int(c.cfg.BlockSize)
	locked := c.lockRange(lba, blocks)
	defer unlockAll(locked)

	// Probe pass: every block must be resident.
	hit := true
	for b := uint64(0); b < blocks; b++ {
		sh := c.shardOf(lba + b)
		sh.ops++
		if _, ok := sh.data[lba+b]; !ok {
			hit = false
		}
	}
	if !hit {
		for b := uint64(0); b < blocks; b++ {
			c.shardOf(lba+b).misses++
		}
		return false
	}
	for b := uint64(0); b < blocks; b++ {
		key := lba + b
		sh := c.shardOf(key)
		e := sh.data[key]
		copy(buf[int(b)*bs:(int(b)+1)*bs], e.data)
		sh.hits++
		sh.reuse.Record(int64(sh.ops - e.lastOp))
		e.lastOp = sh.ops
		sh.pol.Hit(key)
	}
	return true
}

// Contains reports whether every block of [lba, lba+blocks) is resident,
// without touching access stats or replacement state.
func (c *Cache) Contains(lba uint64, blocks uint64) bool {
	for b := uint64(0); b < blocks; b++ {
		sh := c.shardOf(lba + b)
		sh.mu.Lock()
		_, ok := sh.data[lba+b]
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// Peek returns a copy of one resident block's data, or nil. Test/debug
// helper; does not touch access stats.
func (c *Cache) Peek(lba uint64) []byte {
	sh := c.shardOf(lba)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.data[lba]
	if !ok {
		return nil
	}
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out
}

// BeginFill opens a fill window over [lba, lba+blocks) and returns its
// handle. Call before issuing the backend read; a write window already
// open over the range cancels the fill at birth.
func (c *Cache) BeginFill(lba, blocks uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	w := &window{lba: lba, blocks: blocks}
	for _, ww := range c.writes {
		if ww.overlaps(lba, blocks) {
			w.cancelled = true
			break
		}
	}
	c.fills[c.nextID] = w
	return c.nextID
}

// CommitFill installs data for the fill window unless a write overlapped
// its lifetime, reporting whether the install happened. data must hold the
// window's blocks*BlockSize bytes read from the backend.
func (c *Cache) CommitFill(fillID uint64, data []byte) bool {
	c.mu.Lock()
	w, ok := c.fills[fillID]
	if !ok {
		c.mu.Unlock()
		return false
	}
	delete(c.fills, fillID)
	if !w.cancelled {
		for _, ww := range c.writes {
			if ww.overlaps(w.lba, w.blocks) {
				w.cancelled = true
				break
			}
		}
	}
	if w.cancelled {
		c.conflicts++
		c.mu.Unlock()
		return false
	}
	evicted := c.installLocked(w.lba, w.blocks, data)
	c.mu.Unlock()
	c.notifyEvicted(evicted)
	return true
}

// AbortFill drops a fill window whose backend read failed.
func (c *Cache) AbortFill(fillID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.fills[fillID]; ok {
		delete(c.fills, fillID)
		c.fillAborts++
	}
}

// BeginWrite opens a write window over [lba, lba+blocks): the range is
// invalidated immediately and every overlapping open fill is cancelled.
// Call before issuing the backend write; close with EndWrite when it
// completes.
func (c *Cache) BeginWrite(lba, blocks uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	w := &window{lba: lba, blocks: blocks}
	for _, ow := range c.writes {
		if ow.overlaps(lba, blocks) {
			// Overlapping write windows: neither side may install at close,
			// because the backend's final contents are decided by a commit
			// order the cache cannot observe — even if one window has
			// closed by the time the other does.
			ow.conflicted = true
			w.conflicted = true
		}
	}
	c.writes[c.nextID] = w
	for _, f := range c.fills {
		if f.overlaps(lba, blocks) {
			f.cancelled = true
		}
	}
	c.invalidateLocked(lba, blocks)
	return c.nextID
}

// EndWrite closes a write window. Pass the written payload when the
// backend write succeeded (nil on failure): under write-through it is
// installed, unless another writer — a write window or an external
// Invalidate — overlapped any part of this window's lifetime. Fills that
// overlapped the write's lifetime are cancelled.
func (c *Cache) EndWrite(writeID uint64, data []byte) {
	c.mu.Lock()
	w, ok := c.writes[writeID]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(c.writes, writeID)
	for _, f := range c.fills {
		if f.overlaps(w.lba, w.blocks) {
			f.cancelled = true
		}
	}
	var evicted []uint64
	if data != nil && c.cfg.WritePolicy == WriteThrough {
		if w.conflicted {
			// Another writer overlapped this window's lifetime (even one
			// that already closed): the final backend contents are decided
			// by a commit order we cannot observe, so leave the range
			// invalid rather than guess.
			c.writeSkips++
		} else {
			evicted = c.installLocked(w.lba, w.blocks, data)
			c.installs++
		}
	}
	c.mu.Unlock()
	c.notifyEvicted(evicted)
}

// Invalidate drops [lba, lba+blocks) and cancels overlapping fills —
// the hook for external writers (e.g. a kernel-path leg) that bypass the
// write-window protocol. Open write windows over the range are marked
// conflicted: the external writer raced them, so they must not install.
func (c *Cache) Invalidate(lba, blocks uint64) {
	c.mu.Lock()
	for _, f := range c.fills {
		if f.overlaps(lba, blocks) {
			f.cancelled = true
		}
	}
	for _, w := range c.writes {
		if w.overlaps(lba, blocks) {
			w.conflicted = true
		}
	}
	c.invalidateLocked(lba, blocks)
	c.mu.Unlock()
}

// invalidateLocked removes residents in the range. Caller holds c.mu.
func (c *Cache) invalidateLocked(lba, blocks uint64) {
	for b := uint64(0); b < blocks; b++ {
		key := lba + b
		sh := c.shardOf(key)
		sh.mu.Lock()
		if _, ok := sh.data[key]; ok {
			delete(sh.data, key)
			sh.invalidations++
		}
		// Drop ghosts too: an invalidated block's history is stale.
		sh.pol.Remove(key)
		sh.mu.Unlock()
	}
}

// installLocked admits the range's blocks, returning every evicted LBA.
// Caller holds c.mu; shard locks are taken per block.
func (c *Cache) installLocked(lba, blocks uint64, data []byte) []uint64 {
	bs := int(c.cfg.BlockSize)
	var evicted []uint64
	for b := uint64(0); b < blocks; b++ {
		key := lba + b
		src := data[int(b)*bs : (int(b)+1)*bs]
		sh := c.shardOf(key)
		sh.mu.Lock()
		if e, ok := sh.data[key]; ok {
			copy(e.data, src)
			e.lastOp = sh.ops
			sh.pol.Hit(key)
			sh.mu.Unlock()
			continue
		}
		e := &entry{data: make([]byte, bs), lastOp: sh.ops}
		copy(e.data, src)
		sh.data[key] = e
		sh.admissions++
		for _, k := range sh.pol.Admit(key) {
			delete(sh.data, k)
			sh.evictions++
			evicted = append(evicted, k)
		}
		sh.mu.Unlock()
	}
	return evicted
}

func (c *Cache) notifyEvicted(keys []uint64) {
	if c.cfg.OnEvict == nil {
		return
	}
	for _, k := range keys {
		c.cfg.OnEvict(k)
	}
}

// Resident returns the resident block count.
func (c *Cache) Resident() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.data)
		sh.mu.Unlock()
	}
	return n
}

// Hits returns total block hits.
func (c *Cache) Hits() uint64 { return c.sum(func(s *shard) uint64 { return s.hits }) }

// Misses returns total block misses.
func (c *Cache) Misses() uint64 { return c.sum(func(s *shard) uint64 { return s.misses }) }

// HitRatio returns hits / (hits + misses), or 0 when no reads happened.
func (c *Cache) HitRatio() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (c *Cache) sum(f func(*shard) uint64) uint64 {
	var n uint64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += f(sh)
		sh.mu.Unlock()
	}
	return n
}

// ReuseHistogram merges the per-shard reuse-distance histograms (accesses
// between uses of the same block, in block probes) into one.
func (c *Cache) ReuseHistogram() *metrics.Histogram {
	out := metrics.NewHistogram()
	for _, sh := range c.shards {
		sh.mu.Lock()
		out.Merge(sh.reuse)
		sh.mu.Unlock()
	}
	return out
}

// Collect folds the cache's counters into cs under the "cache." prefix, in
// a deterministic order.
func (c *Cache) Collect(cs *metrics.CounterSet) {
	cs.Add("cache.hits", c.Hits())
	cs.Add("cache.misses", c.Misses())
	cs.Add("cache.admissions", c.sum(func(s *shard) uint64 { return s.admissions }))
	cs.Add("cache.evictions", c.sum(func(s *shard) uint64 { return s.evictions }))
	cs.Add("cache.invalidations", c.sum(func(s *shard) uint64 { return s.invalidations }))
	cs.Add("cache.ghost_hits", c.sum(func(s *shard) uint64 { return s.pol.GhostHits() }))
	c.mu.Lock()
	cs.Add("cache.conflicts", c.conflicts)
	cs.Add("cache.fill_aborts", c.fillAborts)
	cs.Add("cache.installs", c.installs)
	cs.Add("cache.write_skips", c.writeSkips)
	c.mu.Unlock()
	cs.Add("cache.resident", uint64(c.Resident()))
}

// String summarizes the cache state.
func (c *Cache) String() string {
	return fmt.Sprintf("cache{%s resident=%d hits=%d misses=%d ratio=%.2f}",
		c.cfg.WritePolicy, c.Resident(), c.Hits(), c.Misses(), c.HitRatio())
}
