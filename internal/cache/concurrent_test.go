package cache

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentCoherence hammers the cache from real goroutines — writers,
// fillers and readers racing over a small LBA domain — and checks the
// coherence guarantee under -race: a hit never returns a torn block or a
// version older than one the reader already observed as committed.
//
// Each block's payload encodes a version number repeated across the block,
// so tearing (mixed versions within one block) and staleness (version below
// the committed floor at read start) are both detectable.
func TestConcurrentCoherence(t *testing.T) {
	const (
		domain  = 64
		writers = 4
		readers = 4
		fillers = 2
		iters   = 2000
	)
	cfg := Config{
		BlockSize:      32,
		CapacityBlocks: 48, // below domain: evictions race with everything
		Shards:         8,
		WritePolicy:    WriteThrough,
		NewPolicy:      NewARC,
	}
	c := New(cfg)
	bs := int(cfg.BlockSize)

	// backing[lba] holds the block's current bytes; committed[lba] the
	// version floor visible to any read that starts now. Only the backend
	// commit itself serializes per block (as the device would); write
	// windows open before and close after that critical section, so
	// overlapping windows on one block coexist and EndWrite order differs
	// from backend commit order — the schedule that catches a window
	// installing a payload the backend has already overwritten.
	var backing [domain]atomic.Pointer[[]byte]
	var committed [domain]atomic.Uint64
	var wmu [domain]sync.Mutex
	var verCtr [domain]uint64 // guarded by wmu

	encode := func(ver uint64) []byte {
		p := make([]byte, bs)
		for off := 0; off+8 <= bs; off += 8 {
			binary.LittleEndian.PutUint64(p[off:], ver)
		}
		return p
	}
	for i := range backing {
		p := encode(0)
		backing[i].Store(&p)
	}

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf(format, args...)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for i := 0; i < iters; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				lba := x % domain
				h := c.BeginWrite(lba, 1)
				wmu[lba].Lock()
				verCtr[lba]++
				ver := verCtr[lba]
				p := encode(ver)
				backing[lba].Store(&p) // "backend write completes"
				// Committed floor rises before the window closes, mirroring
				// a backend that acknowledged the write.
				committed[lba].Store(ver)
				wmu[lba].Unlock()
				c.EndWrite(h, p)
			}
		}(uint64(w)*97 + 11)
	}

	for f := 0; f < fillers; f++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for i := 0; i < iters; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				lba := x % domain
				h := c.BeginFill(lba, 1)
				snap := *backing[lba].Load() // "backend read" mid-window
				c.CommitFill(h, snap)
			}
		}(uint64(f)*131 + 7)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			buf := make([]byte, bs)
			for i := 0; i < iters; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				lba := x % domain
				floor := committed[lba].Load()
				if !c.Read(lba, 1, buf) {
					continue
				}
				ver := binary.LittleEndian.Uint64(buf)
				for off := 8; off+8 <= bs; off += 8 {
					if v := binary.LittleEndian.Uint64(buf[off:]); v != ver {
						fail("torn block %d: version %d then %d at offset %d", lba, ver, v, off)
						return
					}
				}
				if ver < floor {
					fail("stale hit on block %d: version %d below committed floor %d", lba, ver, floor)
					return
				}
			}
		}(uint64(r)*17 + 3)
	}

	wg.Wait()
	if c.Resident() > int(cfg.CapacityBlocks) {
		t.Fatalf("resident %d exceeds capacity %d", c.Resident(), cfg.CapacityBlocks)
	}
}
