package cow

import (
	"math/rand"
	"testing"
)

// benchGolden seals a golden image of the given size and returns it.
func benchGolden(blocks uint64, cacheChunks uint64) *Store {
	rng := rand.New(rand.NewSource(99))
	ix := NewIndex(Config{BlockSize: 512, CacheChunks: cacheChunks})
	g := NewStore(ix, blocks, nil)
	g.WriteBlocks(0, fill(rng, int(blocks)*512))
	g.Snapshot()
	return g
}

// BenchmarkCloneCreate measures deriving a writable clone from a sealed
// 32 MiB golden image — the boot-storm hot operation, O(layers) metadata.
func BenchmarkCloneCreate(b *testing.B) {
	g := benchGolden(65536, 0) // 32 MiB at 512 B blocks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		c.Close()
	}
}

// BenchmarkCowReadShared measures a chunk-aligned read served from the
// sealed layer chain through the shared content-addressed cache.
func BenchmarkCowReadShared(b *testing.B) {
	g := benchGolden(8192, 128)
	c := g.Clone()
	defer c.Close()
	buf := make([]byte, 64*512)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadBlocks(uint64(i%128)*64, buf)
	}
}

// BenchmarkCowWriteBreak measures the first write into a shared chunk: a
// read-modify-write CoW break. The clone is re-derived once per sweep of
// the image (amortized O(layers), negligible next to the breaks).
func BenchmarkCowWriteBreak(b *testing.B) {
	g := benchGolden(8192, 0)
	const chunks = 8192 / 64
	c := g.Clone()
	buf := make([]byte, 512)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%chunks == 0 && i > 0 {
			c.Close()
			c = g.Clone()
		}
		c.WriteBlocks(uint64(i%chunks)*64+1, buf) // sub-chunk: forces RMW
	}
	b.StopTimer()
	c.Close()
}
