// Package cow implements a layered, content-addressed copy-on-write store
// behind a device namespace. One golden image is sealed into an immutable
// layer chain; Clone derives a writable store from it in O(layers) without
// copying a byte, and the first write to a shared extent breaks exactly
// that chunk private ("CoW break"), tracked with the resync engine's
// DirtyRegions machinery. All sealed chunks live in one content-addressed
// Index shared by every clone, so identical chunks are stored once across
// tenants (dedup) and freed by refcount when the last referencing layer is
// closed. The Index can front its chunks with a cache.Cache keyed by
// content hash, which is what makes cross-tenant sharing visible to the
// host cache: two clones reading the same golden block hit the same cache
// line even though their guest LBAs live in different namespaces.
package cow

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"sort"
	"sync"

	"nvmetro/internal/cache"
	"nvmetro/internal/metrics"
	"nvmetro/internal/storfn"
)

// DefaultChunkBlocks is the CoW granule in blocks (64 blocks = 32 KiB at
// 512-byte LBAs), matching device.MemStore's allocation granule so the
// sparse-vs-materialized ContentCRC equivalence holds chunk for chunk.
const DefaultChunkBlocks = 64

// Config parameterizes a snapshot/clone domain.
type Config struct {
	// BlockSize is the logical block size in bytes (default 512).
	BlockSize uint32
	// ChunkBlocks is the CoW granule in blocks (default DefaultChunkBlocks).
	ChunkBlocks uint32
	// CacheChunks, when nonzero, fronts the chunk index with a shared
	// content-addressed cache.Cache of that many chunks.
	CacheChunks uint64
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 512
	}
	if c.ChunkBlocks == 0 {
		c.ChunkBlocks = DefaultChunkBlocks
	}
	return c
}

func (c Config) chunkBytes() int { return int(c.ChunkBlocks) * int(c.BlockSize) }

// idxEnt is one deduplicated chunk.
type idxEnt struct {
	data []byte
	refs int
}

// Index is the content-addressed chunk store shared by a golden image and
// all of its clones. Chunks are keyed by a 64-bit FNV-1a hash of their
// contents; hash collisions are resolved by deterministic linear probing
// with a byte compare, so equal contents always map to one slot and
// distinct contents never alias. Every sealed layer holds one reference
// per chunk it maps; Release drops a reference and frees the chunk when
// the count reaches zero (GC on trim/close).
type Index struct {
	mu     sync.Mutex
	cfg    Config
	chunks map[uint64]*idxEnt
	cache  *cache.Cache // optional, keyed by chunk hash, 1 "block" = 1 chunk

	stored    uint64 // chunks holding bytes right now
	dedupHits uint64 // Puts that matched an existing chunk
	released  uint64 // chunks freed by refcount GC
}

// NewIndex creates an empty chunk index. When cfg.CacheChunks is nonzero
// the index is fronted by a shared content-addressed cache.
func NewIndex(cfg Config) *Index {
	cfg = cfg.withDefaults()
	ix := &Index{cfg: cfg, chunks: make(map[uint64]*idxEnt)}
	if cfg.CacheChunks > 0 {
		ix.cache = cache.New(cache.Config{
			BlockSize:      uint32(cfg.chunkBytes()),
			CapacityBlocks: cfg.CacheChunks,
			Shards:         8,
			WritePolicy:    cache.WriteAround,
		})
	}
	return ix
}

// Cache returns the shared content-addressed cache, or nil.
func (ix *Index) Cache() *cache.Cache { return ix.cache }

// fnv64 is FNV-1a, inlined to keep hashing allocation-free.
func fnv64(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// put interns data (taking ownership of the slice) and returns its slot
// with one reference added. Equal contents dedup onto the same slot.
func (ix *Index) put(data []byte) uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	key := fnv64(data)
	for {
		e := ix.chunks[key]
		if e == nil {
			ix.chunks[key] = &idxEnt{data: data, refs: 1}
			ix.stored++
			return key
		}
		if bytes.Equal(e.data, data) {
			e.refs++
			ix.dedupHits++
			return key
		}
		key++ // deterministic linear probe on collision
	}
}

// ref adds a reference to an existing slot.
func (ix *Index) ref(key uint64) {
	ix.mu.Lock()
	ix.chunks[key].refs++
	ix.mu.Unlock()
}

// release drops a reference, garbage-collecting the chunk at zero.
func (ix *Index) release(key uint64) {
	ix.mu.Lock()
	e := ix.chunks[key]
	e.refs--
	if e.refs == 0 {
		delete(ix.chunks, key)
		ix.stored--
		ix.released++
		if ix.cache != nil {
			ix.cache.Invalidate(key, 1)
		}
	}
	ix.mu.Unlock()
}

// read copies the chunk at key into dst, going through the shared cache
// when one is configured (misses fill from the index; sealed chunks are
// immutable so there are no coherence windows to arbitrate).
func (ix *Index) read(key uint64, dst []byte) {
	if ix.cache != nil {
		if ix.cache.Read(key, 1, dst) {
			return
		}
		ix.mu.Lock()
		data := ix.chunks[key].data
		ix.mu.Unlock()
		copy(dst, data)
		ix.cache.CommitFill(ix.cache.BeginFill(key, 1), data)
		return
	}
	ix.mu.Lock()
	data := ix.chunks[key].data
	ix.mu.Unlock()
	copy(dst, data)
}

// Chunks reports the number of unique chunks resident in the index.
func (ix *Index) Chunks() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.chunks)
}

// Collect exports index counters (cow.index.*) and, when a shared cache is
// configured, its counters under cow.cache.*.
func (ix *Index) Collect(cs *metrics.CounterSet) {
	ix.mu.Lock()
	cs.Add("cow.index.chunks", uint64(len(ix.chunks)))
	cs.Add("cow.index.dedup_hits", ix.dedupHits)
	cs.Add("cow.index.released", ix.released)
	ix.mu.Unlock()
	if ix.cache != nil {
		cs.Add("cow.cache.hits", ix.cache.Hits())
		cs.Add("cow.cache.misses", ix.cache.Misses())
	}
}

// Backing is the read side of a store the layer chain sits over.
type Backing interface {
	ReadBlocks(lba uint64, buf []byte)
}

// layerEnt is one chunk mapping in a sealed layer: either a content hash
// or a whiteout (the chunk is all zeros from this layer up).
type layerEnt struct {
	hash  uint64
	white bool
}

// Layer is one immutable snapshot delta: a map from chunk number to sealed
// content. Layers are sealed by Store.Snapshot, shared by reference among
// clones, and release their chunk references when the last chain drops
// them.
type Layer struct {
	seq     uint64
	entries map[uint64]layerEnt
	crc     uint32 // metadata CRC over sorted (chunk, hash|white)
	refs    int    // referencing chains; guarded by the owning Index's mu
}

// Seq returns the layer's sequence number within its domain.
func (l *Layer) Seq() uint64 { return l.seq }

// Chunks returns the number of chunk mappings (including whiteouts).
func (l *Layer) Chunks() int { return len(l.entries) }

// Whiteouts returns the number of whiteout mappings.
func (l *Layer) Whiteouts() int {
	n := 0
	for _, e := range l.entries {
		if e.white {
			n++
		}
	}
	return n
}

// CRC returns the layer's metadata fingerprint, fixed at seal time. An
// unchanged base-layer CRC across a boot storm is the cheap proof that no
// tenant write leaked into the shared image.
func (l *Layer) CRC() uint32 { return l.crc }

func sealCRC(entries map[uint64]layerEnt) uint32 {
	cns := make([]uint64, 0, len(entries))
	for cn := range entries {
		cns = append(cns, cn)
	}
	sort.Slice(cns, func(i, j int) bool { return cns[i] < cns[j] })
	var buf [17]byte
	crc := crc32.NewIEEE()
	for _, cn := range cns {
		e := entries[cn]
		binary.LittleEndian.PutUint64(buf[0:], cn)
		binary.LittleEndian.PutUint64(buf[8:], e.hash)
		if e.white {
			buf[16] = 1
		} else {
			buf[16] = 0
		}
		crc.Write(buf[:])
	}
	return crc.Sum32()
}

// Store is a writable copy-on-write view over a layer chain, implementing
// device.Store behind a namespace. Reads resolve top-down: private dirty
// chunks, then sealed layers newest-first, then the backing store (nil
// means zeros). The first write into a shared chunk materializes it
// private — a CoW break — and records the extent in a DirtyRegions set, so
// divergence from the golden image is enumerable exactly like a degraded
// mirror's backlog.
type Store struct {
	cfg    Config
	idx    *Index
	base   Backing // fall-through below the chain; nil reads zeros
	blocks uint64

	chain    []*Layer          // bottom .. top, all sealed
	shared   int               // chain[:shared] was inherited at clone time
	mut      map[uint64][]byte // private dirty chunks
	mutWhite map[uint64]bool   // private whiteouts (trimmed chunks)
	broken   storfn.DirtyRegions

	nextSeq *uint64 // layer sequence counter, shared within the domain
	scratch []byte  // partial-chunk staging buffer (single-writer, like MemStore)

	// Counters (single writer per store: the device proc serving its
	// namespace, like MemStore).
	CowBreaks    uint64 // chunks first materialized over shared content
	ChunkCopies  uint64 // CoW breaks that needed a read-modify-write copy
	SharedReads  uint64 // chunk reads served from sealed layers
	PrivateReads uint64 // chunk reads served from private dirty chunks
	BaseReads    uint64 // chunk reads that fell through to the backing store
	ZeroReads    uint64 // chunk reads of never-written space
}

// NewStore creates an empty writable store of the given size over base
// (nil for a zero backing), rooted in idx.
func NewStore(idx *Index, blocks uint64, base Backing) *Store {
	var seq uint64
	return &Store{
		cfg:      idx.cfg,
		idx:      idx,
		base:     base,
		blocks:   blocks,
		mut:      make(map[uint64][]byte),
		mutWhite: make(map[uint64]bool),
		nextSeq:  &seq,
	}
}

// Blocks returns the store's logical size in blocks.
func (s *Store) Blocks() uint64 { return s.blocks }

// Index returns the chunk index this store is rooted in.
func (s *Store) Index() *Index { return s.idx }

// Layers returns the sealed chain, bottom to top.
func (s *Store) Layers() []*Layer { return append([]*Layer(nil), s.chain...) }

// SharedLayers returns how many bottom layers were inherited at clone time.
func (s *Store) SharedLayers() int { return s.shared }

// Dirty reports whether the store has unsealed private state.
func (s *Store) Dirty() bool { return len(s.mut) > 0 || len(s.mutWhite) > 0 }

// BrokenExtents returns the CoW-broken extents (blocks diverged from the
// inherited chain since the last snapshot), coalesced in LBA order.
func (s *Store) BrokenExtents() []storfn.Range { return s.broken.Ranges() }

// BrokenBlocks returns the total CoW-broken block count.
func (s *Store) BrokenBlocks() uint64 { return s.broken.Blocks() }

// resolveShared copies the chunk's sealed/base content into dst (one full
// chunk), returning true when any layer or the base supplied bytes and
// false when the chunk is logically zero. It never consults private state.
func (s *Store) resolveShared(cn uint64, dst []byte) bool {
	for i := len(s.chain) - 1; i >= 0; i-- {
		if e, ok := s.chain[i].entries[cn]; ok {
			if e.white {
				clear(dst)
				return false
			}
			s.idx.read(e.hash, dst)
			s.SharedReads++
			return true
		}
	}
	if s.base != nil {
		lba := cn * uint64(s.cfg.ChunkBlocks)
		// Clamp the tail chunk to the device size.
		nb := uint64(s.cfg.ChunkBlocks)
		if lba+nb > s.blocks {
			nb = s.blocks - lba
			clear(dst[nb*uint64(s.cfg.BlockSize):])
		}
		s.base.ReadBlocks(lba, dst[:nb*uint64(s.cfg.BlockSize)])
		s.BaseReads++
		return true
	}
	clear(dst)
	return false
}

// readChunk copies the chunk's current logical content into dst.
func (s *Store) readChunk(cn uint64, dst []byte) {
	if c := s.mut[cn]; c != nil {
		copy(dst, c)
		s.PrivateReads++
		return
	}
	if s.mutWhite[cn] {
		clear(dst)
		s.ZeroReads++
		return
	}
	if !s.resolveShared(cn, dst) {
		s.ZeroReads++
	}
}

// sharedHas reports whether the shared chain or the base would supply
// content for the chunk (the condition under which making it private is a
// CoW break rather than a write into fresh space).
func (s *Store) sharedHas(cn uint64) bool {
	for i := len(s.chain) - 1; i >= 0; i-- {
		if e, ok := s.chain[i].entries[cn]; ok {
			return !e.white
		}
	}
	return s.base != nil
}

// materialize returns the chunk's private buffer, breaking it off the
// shared chain on first touch. When fill is true the existing content is
// copied in (read-modify-write); a caller about to overwrite the whole
// chunk passes false and saves the copy.
func (s *Store) materialize(cn uint64, fill bool) []byte {
	if c := s.mut[cn]; c != nil {
		return c
	}
	c := make([]byte, s.cfg.chunkBytes())
	wasWhite := s.mutWhite[cn]
	if !wasWhite && s.sharedHas(cn) {
		s.CowBreaks++
		if fill {
			s.resolveShared(cn, c)
			s.ChunkCopies++
		}
	}
	delete(s.mutWhite, cn)
	s.mut[cn] = c
	s.broken.Add(cn*uint64(s.cfg.ChunkBlocks), uint64(s.cfg.ChunkBlocks))
	return c
}

// ReadBlocks implements device.Store.
func (s *Store) ReadBlocks(lba uint64, buf []byte) {
	cb := uint64(s.cfg.ChunkBlocks)
	bs := uint64(s.cfg.BlockSize)
	for len(buf) > 0 {
		cn, off := lba/cb, (lba%cb)*bs
		n := s.cfg.chunkBytes() - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		// Fast path: whole-chunk aligned reads resolve straight into buf;
		// partial reads stage through a chunk-sized scratch copy.
		if off == 0 && n == s.cfg.chunkBytes() {
			s.readChunk(cn, buf[:n])
		} else {
			if s.scratch == nil {
				s.scratch = make([]byte, s.cfg.chunkBytes())
			}
			s.readChunk(cn, s.scratch)
			copy(buf[:n], s.scratch[off:])
		}
		buf = buf[n:]
		lba += uint64(n) / bs
	}
}

// WriteBlocks implements device.Store.
func (s *Store) WriteBlocks(lba uint64, buf []byte) {
	cb := uint64(s.cfg.ChunkBlocks)
	bs := uint64(s.cfg.BlockSize)
	for len(buf) > 0 {
		cn, off := lba/cb, (lba%cb)*bs
		n := s.cfg.chunkBytes() - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		c := s.materialize(cn, off != 0 || n != s.cfg.chunkBytes())
		copy(c[off:], buf[:n])
		buf = buf[n:]
		lba += uint64(n) / bs
	}
}

// TrimBlocks implements device.Store. Wholly covered chunks become private
// whiteouts (dropping any private buffer and shadowing sealed content);
// partially covered chunks are materialized and zeroed.
func (s *Store) TrimBlocks(lba uint64, blocks uint32) {
	cb := uint64(s.cfg.ChunkBlocks)
	bs := uint64(s.cfg.BlockSize)
	end := lba + uint64(blocks)
	for lba < end {
		cn, off := lba/cb, lba%cb
		n := cb - off
		if lba+n > end {
			n = end - lba
		}
		if off == 0 && n == cb {
			if _, had := s.mut[cn]; !had && !s.mutWhite[cn] && s.sharedHas(cn) {
				s.CowBreaks++
			}
			delete(s.mut, cn)
			s.mutWhite[cn] = true
			s.broken.Add(cn*cb, cb)
		} else {
			c := s.materialize(cn, true)
			clear(c[off*bs : (off+n)*bs])
		}
		lba += n
	}
}

// Snapshot seals the private dirty state into a new immutable layer and
// appends it to the chain, returning the layer (nil when nothing was
// dirty). Cost is O(dirty chunks), independent of image size: each dirty
// chunk is interned once in the index (all-zero chunks become whiteouts,
// preserving ContentCRC's zero-skip semantics and deduplicating trimmed
// space for free) and the private maps are reset.
func (s *Store) Snapshot() *Layer {
	if !s.Dirty() {
		return nil
	}
	entries := make(map[uint64]layerEnt, len(s.mut)+len(s.mutWhite))
	for cn, c := range s.mut {
		if allZero(c) {
			entries[cn] = layerEnt{white: true}
			continue
		}
		entries[cn] = layerEnt{hash: s.idx.put(c)}
	}
	for cn := range s.mutWhite {
		entries[cn] = layerEnt{white: true}
	}
	(*s.nextSeq)++
	l := &Layer{seq: *s.nextSeq, entries: entries, crc: sealCRC(entries), refs: 1}
	s.chain = append(s.chain, l)
	s.mut = make(map[uint64][]byte)
	s.mutWhite = make(map[uint64]bool)
	s.broken = storfn.DirtyRegions{}
	return l
}

// Clone seals any dirty state and derives a new writable store over the
// same chain, index and backing store. No chunk is copied: the clone holds
// references to the sealed layers, and its first write to any shared chunk
// CoW-breaks just that chunk. Cost is O(layers) metadata.
func (s *Store) Clone() *Store {
	s.Snapshot()
	s.idx.mu.Lock()
	for _, l := range s.chain {
		l.refs++
	}
	s.idx.mu.Unlock()
	return &Store{
		cfg:      s.cfg,
		idx:      s.idx,
		base:     s.base,
		blocks:   s.blocks,
		chain:    append([]*Layer(nil), s.chain...),
		shared:   len(s.chain),
		mut:      make(map[uint64][]byte),
		mutWhite: make(map[uint64]bool),
		nextSeq:  s.nextSeq,
	}
}

// Close releases the store's layer references. A layer dropped by its last
// chain releases its chunk references in the index, which frees chunks no
// other layer maps — refcounted GC on clone deletion.
func (s *Store) Close() {
	var free []*Layer
	s.idx.mu.Lock()
	for _, l := range s.chain {
		l.refs--
		if l.refs == 0 {
			free = append(free, l)
		}
	}
	s.idx.mu.Unlock()
	for _, l := range free {
		for _, e := range l.entries {
			if !e.white {
				s.idx.release(e.hash)
			}
		}
	}
	s.chain = nil
	s.mut = make(map[uint64][]byte)
	s.mutWhite = make(map[uint64]bool)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// ContentCRC fingerprints the store's full logical contents with exactly
// device.MemStore's algorithm — nonzero chunks hashed in LBA order, zero
// chunks skipped — so a cow.Store and a MemStore holding the same bytes
// produce the same CRC regardless of which chunks are materialized where.
func (s *Store) ContentCRC() uint32 {
	cb := uint64(s.cfg.ChunkBlocks)
	total := (s.blocks + cb - 1) / cb
	tmp := make([]byte, s.cfg.chunkBytes())
	var idbuf [8]byte
	crc := crc32.NewIEEE()
	for cn := uint64(0); cn < total; cn++ {
		nb := cb
		if cn*cb+nb > s.blocks {
			nb = s.blocks - cn*cb
			clear(tmp)
		}
		s.ReadBlocks(cn*cb, tmp[:nb*uint64(s.cfg.BlockSize)])
		if allZero(tmp) {
			continue
		}
		binary.LittleEndian.PutUint64(idbuf[:], cn)
		crc.Write(idbuf[:])
		crc.Write(tmp)
	}
	return crc.Sum32()
}

// DivergenceCRC fingerprints only what this store changed since it was
// cloned: private dirty chunks plus the metadata of layers sealed above
// the inherited chain. Two clones that wrote different bytes diverge; a
// clone that never wrote reports 0. O(private state), cheap enough to
// check hundreds of tenants per run.
func (s *Store) DivergenceCRC() uint32 {
	if len(s.chain) == s.shared && !s.Dirty() {
		return 0
	}
	crc := crc32.NewIEEE()
	var buf [17]byte
	for _, l := range s.chain[s.shared:] {
		binary.LittleEndian.PutUint64(buf[0:], l.seq)
		binary.LittleEndian.PutUint32(buf[8:], l.crc)
		crc.Write(buf[:12])
	}
	cns := make([]uint64, 0, len(s.mut)+len(s.mutWhite))
	for cn := range s.mut {
		cns = append(cns, cn)
	}
	for cn := range s.mutWhite {
		cns = append(cns, cn)
	}
	sort.Slice(cns, func(i, j int) bool { return cns[i] < cns[j] })
	for _, cn := range cns {
		binary.LittleEndian.PutUint64(buf[0:], cn)
		if c := s.mut[cn]; c != nil {
			buf[16] = 0
			crc.Write(buf[:17])
			crc.Write(c)
		} else {
			buf[16] = 1
			crc.Write(buf[:17])
		}
	}
	return crc.Sum32()
}

// LayerInfo describes one sealed layer for operator tooling.
type LayerInfo struct {
	Seq       uint64
	Chunks    int
	Whiteouts int
	Refs      int
	CRC       uint32
}

// LayerInfos reports the chain bottom-to-top.
func (s *Store) LayerInfos() []LayerInfo {
	out := make([]LayerInfo, 0, len(s.chain))
	s.idx.mu.Lock()
	defer s.idx.mu.Unlock()
	for _, l := range s.chain {
		out = append(out, LayerInfo{
			Seq: l.seq, Chunks: len(l.entries), Whiteouts: l.Whiteouts(),
			Refs: l.refs, CRC: l.crc,
		})
	}
	return out
}

// Collect exports the store's counters under the given prefix (for
// example "cow.vm3.").
func (s *Store) Collect(prefix string, cs *metrics.CounterSet) {
	cs.Add(prefix+"cow_breaks", s.CowBreaks)
	cs.Add(prefix+"chunk_copies", s.ChunkCopies)
	cs.Add(prefix+"shared_reads", s.SharedReads)
	cs.Add(prefix+"private_reads", s.PrivateReads)
	cs.Add(prefix+"base_reads", s.BaseReads)
	cs.Add(prefix+"broken_blocks", s.broken.Blocks())
	cs.Add(prefix+"layers", uint64(len(s.chain)))
}
