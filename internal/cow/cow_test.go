package cow

import (
	"bytes"
	"math/rand"
	"testing"

	"nvmetro/internal/device"
)

// oracle pairs a cow.Store with a MemStore receiving the same operations;
// the cow side must stay logically identical at all times.
type oracle struct {
	cow *Store
	mem *device.MemStore
}

func newOracle(blocks uint64, cacheChunks uint64) *oracle {
	ix := NewIndex(Config{BlockSize: 512, CacheChunks: cacheChunks})
	return &oracle{cow: NewStore(ix, blocks, nil), mem: device.NewMemStore(512)}
}

func (o *oracle) write(lba uint64, buf []byte) {
	o.cow.WriteBlocks(lba, buf)
	o.mem.WriteBlocks(lba, buf)
}

func (o *oracle) trim(lba uint64, blocks uint32) {
	o.cow.TrimBlocks(lba, blocks)
	o.mem.TrimBlocks(lba, blocks)
}

func (o *oracle) check(t *testing.T, lba uint64, blocks int) {
	t.Helper()
	a := make([]byte, blocks*512)
	b := make([]byte, blocks*512)
	o.cow.ReadBlocks(lba, a)
	o.mem.ReadBlocks(lba, b)
	if !bytes.Equal(a, b) {
		t.Fatalf("read mismatch at lba %d x%d", lba, blocks)
	}
}

func fill(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// TestCowOracle drives random writes, trims, snapshots and clones against
// a MemStore oracle: every read and every ContentCRC must match, on the
// original store and across snapshot boundaries.
func TestCowOracle(t *testing.T) {
	const blocks = 4096
	rng := rand.New(rand.NewSource(42))
	o := newOracle(blocks, 0)
	for i := 0; i < 800; i++ {
		lba := uint64(rng.Intn(blocks - 130))
		n := 1 + rng.Intn(130) // spans chunk boundaries (chunk = 64 blocks)
		switch rng.Intn(10) {
		case 0:
			o.trim(lba, uint32(n))
		case 1:
			o.cow.Snapshot()
		case 2:
			// Clone-and-continue: the clone must read identically, and
			// abandoning it must not disturb the parent.
			c := o.cow.Clone()
			buf := make([]byte, 64*512)
			c.ReadBlocks(lba, buf)
			want := make([]byte, 64*512)
			o.mem.ReadBlocks(lba, want)
			if !bytes.Equal(buf, want) {
				t.Fatalf("clone read mismatch at lba %d (iter %d)", lba, i)
			}
			c.WriteBlocks(lba, fill(rng, 512)) // diverge, then drop
			c.Close()
		default:
			o.write(lba, fill(rng, n*512))
		}
		o.check(t, lba, 130)
	}
	if got, want := o.cow.ContentCRC(), o.mem.ContentCRC(); got != want {
		t.Fatalf("ContentCRC mismatch: cow %08x mem %08x", got, want)
	}
	// A snapshot must not change logical content.
	o.cow.Snapshot()
	if got, want := o.cow.ContentCRC(), o.mem.ContentCRC(); got != want {
		t.Fatalf("post-snapshot ContentCRC mismatch: cow %08x mem %08x", got, want)
	}
	o.check(t, 0, 256)
}

// TestCowOracleWithCache repeats the oracle run with the shared
// content-addressed cache in front of the index: caching must never change
// logical content.
func TestCowOracleWithCache(t *testing.T) {
	const blocks = 4096
	rng := rand.New(rand.NewSource(7))
	o := newOracle(blocks, 32)
	for i := 0; i < 400; i++ {
		lba := uint64(rng.Intn(blocks - 130))
		n := 1 + rng.Intn(130)
		switch rng.Intn(8) {
		case 0:
			o.trim(lba, uint32(n))
		case 1:
			o.cow.Snapshot()
		default:
			o.write(lba, fill(rng, n*512))
		}
		o.check(t, lba, 130)
	}
	o.cow.Snapshot()
	// Re-read everything twice so sealed chunks travel through the cache.
	o.check(t, 0, blocks)
	o.check(t, 0, blocks)
	if got, want := o.cow.ContentCRC(), o.mem.ContentCRC(); got != want {
		t.Fatalf("cached ContentCRC mismatch: cow %08x mem %08x", got, want)
	}
	if o.cow.Index().Cache().Hits() == 0 {
		t.Fatal("expected shared-cache hits on re-read of sealed chunks")
	}
}

// TestCloneIsolation checks the heart of the CoW contract: clones see the
// golden content until they write, their writes are invisible to each
// other and to the base, and the base layer's CRC never moves.
func TestCloneIsolation(t *testing.T) {
	const blocks = 2048
	rng := rand.New(rand.NewSource(1))
	ix := NewIndex(Config{BlockSize: 512})
	golden := NewStore(ix, blocks, nil)
	img := fill(rng, blocks*512)
	golden.WriteBlocks(0, img)
	base := golden.Snapshot()
	if base == nil {
		t.Fatal("snapshot of dirty store returned nil")
	}
	baseCRC := base.CRC()
	goldCRC := golden.ContentCRC()

	a, b := golden.Clone(), golden.Clone()
	buf := make([]byte, 512)
	a.ReadBlocks(100, buf)
	if !bytes.Equal(buf, img[100*512:101*512]) {
		t.Fatal("clone does not see golden content")
	}

	// Diverge a only.
	a.WriteBlocks(100, fill(rng, 4*512))
	b.ReadBlocks(100, buf)
	if !bytes.Equal(buf, img[100*512:101*512]) {
		t.Fatal("write to clone a leaked into clone b")
	}
	golden.ReadBlocks(100, buf)
	if !bytes.Equal(buf, img[100*512:101*512]) {
		t.Fatal("write to clone a leaked into the golden store")
	}
	if base.CRC() != baseCRC {
		t.Fatal("base layer CRC changed after clone write")
	}
	if golden.ContentCRC() != goldCRC {
		t.Fatal("golden ContentCRC changed after clone write")
	}
	if a.ContentCRC() == b.ContentCRC() {
		t.Fatal("diverged clones report equal ContentCRC")
	}
	if a.DivergenceCRC() == 0 {
		t.Fatal("diverged clone reports zero DivergenceCRC")
	}
	if b.DivergenceCRC() != 0 {
		t.Fatal("untouched clone reports nonzero DivergenceCRC")
	}
	if a.CowBreaks == 0 || a.ChunkCopies == 0 {
		t.Fatalf("expected CoW break + RMW copy on partial overwrite, got breaks=%d copies=%d", a.CowBreaks, a.ChunkCopies)
	}
	if got := a.BrokenBlocks(); got == 0 {
		t.Fatal("broken extents not tracked")
	}
	a.Close()
	b.Close()
	golden.Close()
}

// TestDedupAndGC checks that identical content across tenants is stored
// once, and that closing the last referencing chain garbage-collects
// chunks by refcount.
func TestDedupAndGC(t *testing.T) {
	const blocks = 1024
	rng := rand.New(rand.NewSource(9))
	ix := NewIndex(Config{BlockSize: 512})
	golden := NewStore(ix, blocks, nil)
	golden.WriteBlocks(0, fill(rng, blocks*512))
	golden.Snapshot()
	baseChunks := ix.Chunks()
	if baseChunks == 0 {
		t.Fatal("no chunks sealed")
	}

	// Two clones write the same bytes at the same place: after sealing,
	// the index must hold one copy.
	a, b := golden.Clone(), golden.Clone()
	same := fill(rng, 64*512)
	a.WriteBlocks(0, same)
	b.WriteBlocks(0, same)
	a.Snapshot()
	before := ix.Chunks()
	b.Snapshot()
	if ix.Chunks() != before {
		t.Fatalf("identical chunk not deduplicated: %d -> %d", before, ix.Chunks())
	}
	ix.mu.Lock()
	hits := ix.dedupHits
	ix.mu.Unlock()
	if hits == 0 {
		t.Fatal("dedupHits not counted")
	}

	// Divergent-only chunks die with their last owner; shared base chunks
	// survive until every chain is closed.
	a.Close()
	b.Close()
	if ix.Chunks() != baseChunks {
		t.Fatalf("clone-private chunks not GCed: %d != %d", ix.Chunks(), baseChunks)
	}
	golden.Close()
	if ix.Chunks() != 0 {
		t.Fatalf("index not empty after last close: %d chunks", ix.Chunks())
	}
	ix.mu.Lock()
	released := ix.released
	ix.mu.Unlock()
	if released == 0 {
		t.Fatal("released not counted")
	}
}

// TestTrimWhiteouts checks that trims shadow sealed content with
// whiteouts and keep ContentCRC in lockstep with a trimmed MemStore.
func TestTrimWhiteouts(t *testing.T) {
	const blocks = 1024
	rng := rand.New(rand.NewSource(3))
	o := newOracle(blocks, 0)
	o.write(0, fill(rng, blocks*512))
	o.cow.Snapshot()
	// Full-chunk, cross-chunk and sub-chunk trims.
	o.trim(0, 64)
	o.trim(100, 200)
	o.trim(500, 10)
	o.check(t, 0, blocks)
	if got, want := o.cow.ContentCRC(), o.mem.ContentCRC(); got != want {
		t.Fatalf("trimmed ContentCRC mismatch: cow %08x mem %08x", got, want)
	}
	// Seal the trims: all-zero private chunks must become whiteouts.
	l := o.cow.Snapshot()
	if l == nil || l.Whiteouts() == 0 {
		t.Fatal("trimmed chunks did not seal as whiteouts")
	}
	o.check(t, 0, blocks)
	if got, want := o.cow.ContentCRC(), o.mem.ContentCRC(); got != want {
		t.Fatalf("sealed-trim ContentCRC mismatch: cow %08x mem %08x", got, want)
	}
}

// TestCloneCostFlat pins the O(metadata) clone claim deterministically:
// cloning an 8x larger image moves zero chunks and the same per-clone
// metadata, so clone cost is flat in image size.
func TestCloneCostFlat(t *testing.T) {
	cost := func(imageBlocks uint64) (layers int, copies uint64) {
		rng := rand.New(rand.NewSource(5))
		ix := NewIndex(Config{BlockSize: 512})
		g := NewStore(ix, imageBlocks, nil)
		g.WriteBlocks(0, fill(rng, int(imageBlocks)*512))
		g.Snapshot()
		c := g.Clone()
		defer c.Close()
		defer g.Close()
		return len(c.Layers()), c.ChunkCopies
	}
	l1, c1 := cost(1024)
	l8, c8 := cost(8 * 1024)
	if c1 != 0 || c8 != 0 {
		t.Fatalf("clone copied chunks: %d / %d", c1, c8)
	}
	if l1 != l8 {
		t.Fatalf("clone metadata grew with image size: %d vs %d layers", l1, l8)
	}
}

// TestSharedCacheCrossTenant checks the sharing the content-addressed
// cache exists for: a chunk filled by one clone's read hits for another
// clone, because both map the same golden content hash.
func TestSharedCacheCrossTenant(t *testing.T) {
	const blocks = 1024
	rng := rand.New(rand.NewSource(11))
	ix := NewIndex(Config{BlockSize: 512, CacheChunks: 64})
	golden := NewStore(ix, blocks, nil)
	golden.WriteBlocks(0, fill(rng, blocks*512))
	golden.Snapshot()
	a, b := golden.Clone(), golden.Clone()
	buf := make([]byte, 64*512)
	a.ReadBlocks(0, buf) // miss + fill
	h0 := ix.Cache().Hits()
	b.ReadBlocks(0, buf) // same content hash: hit
	if ix.Cache().Hits() != h0+1 {
		t.Fatalf("cross-tenant read did not hit shared cache: hits %d -> %d", h0, ix.Cache().Hits())
	}
	a.Close()
	b.Close()
	golden.Close()
}

// TestStoreOverBase checks the fall-through read path over a backing
// store: unwritten extents come from the base, writes shadow it, and
// ContentCRC over the composite matches an equivalent MemStore.
func TestStoreOverBase(t *testing.T) {
	const blocks = 1030 // deliberately not a multiple of the 64-block chunk
	rng := rand.New(rand.NewSource(13))
	base := device.NewMemStore(512)
	img := fill(rng, blocks*512)
	base.WriteBlocks(0, img)

	ix := NewIndex(Config{BlockSize: 512})
	s := NewStore(ix, blocks, base)
	mem := device.NewMemStore(512)
	mem.WriteBlocks(0, img)

	got := make([]byte, 130*512)
	want := make([]byte, 130*512)
	s.ReadBlocks(900, got) // spans the clamped tail chunk
	mem.ReadBlocks(900, want)
	if !bytes.Equal(got, want) {
		t.Fatal("base fall-through read mismatch")
	}
	if s.BaseReads == 0 {
		t.Fatal("BaseReads not counted")
	}

	w := fill(rng, 3*512)
	s.WriteBlocks(70, w)
	mem.WriteBlocks(70, w)
	if s.ContentCRC() != mem.ContentCRC() {
		t.Fatal("composite ContentCRC mismatch after shadowing write")
	}
	if base.ContentCRC() == s.ContentCRC() {
		t.Fatal("write leaked into the backing store fingerprint")
	}
}

// TestLayerInfos sanity-checks the operator view.
func TestLayerInfos(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ix := NewIndex(Config{BlockSize: 512})
	g := NewStore(ix, 1024, nil)
	g.WriteBlocks(0, fill(rng, 128*512))
	g.Snapshot()
	c := g.Clone()
	c.WriteBlocks(0, fill(rng, 512))
	c.Snapshot()
	infos := c.LayerInfos()
	if len(infos) != 2 {
		t.Fatalf("want 2 layers, got %d", len(infos))
	}
	if infos[0].Refs != 2 { // golden chain + clone chain
		t.Fatalf("base layer refs = %d, want 2", infos[0].Refs)
	}
	if infos[1].Refs != 1 {
		t.Fatalf("private layer refs = %d, want 1", infos[1].Refs)
	}
	if infos[0].CRC == 0 && infos[0].Chunks == 0 {
		t.Fatal("empty base layer info")
	}
	if Lines()["cow-store"] == 0 {
		t.Fatal("Table I line count empty")
	}
	c.Close()
	g.Close()
}
