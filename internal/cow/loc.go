package cow

import (
	_ "embed"
	"strings"
)

// Source of the snapshot/clone layer, embedded for Table I (implementation
// size as evidence of how much machinery the layered store needs below the
// router). Table I cannot embed across packages, so the count lives here.

//go:embed cow.go
var cowGoSrc string

// Lines reports non-empty source line counts for Table I rows.
func Lines() map[string]int {
	n := 0
	for _, l := range strings.Split(cowGoSrc, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return map[string]int{"cow-store": n}
}
