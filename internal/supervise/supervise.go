// Package supervise is the UIF supervision subsystem: a watchdog that
// detects a crashed or wedged userspace I/O function without any
// cooperation from the failed process, and a per-storage-function
// recovery policy that reconciles the commands stranded on its notify
// queues, degrades routing to the fast path where that is semantically
// safe, and restarts the UIF under jittered exponential backoff.
//
// Detection uses two externally observable signals: the attachment's
// progress heartbeat (a counter the poll loop advances whenever it
// services anything) and the router-side NSQ residency age (how long the
// oldest notify-path command has been in flight). A UIF that stops
// moving while commands are outstanding is declared failed when either
// signal crosses its threshold — a wedged process cannot veto this, and
// a dead one cannot be asked.
package supervise

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/fault"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
)

// Function is a storage function's declared recovery policy — what the
// supervisor needs to know to fail it over and bring it back. storfn
// implements it per function; the contract encodes each function's
// idempotency and fallback semantics.
type Function interface {
	// Name labels the supervisor (metrics prefix, process name).
	Name() string
	// Reconcile decides the fate of one stranded in-flight command:
	// complete it (with a success status when the effect is already
	// durable elsewhere, a retryable one when no safe fallback exists)
	// or requeue the mediated command on the fast path (only when that
	// is idempotent and semantically equivalent).
	Reconcile(cmd nvme.Command) core.ReconcileDecision
	// Degrade reroutes subsequent commands around the dead UIF — install
	// the fast-path classifier, a dirty-tracking native fallback, or a
	// fail-stop classifier when no bypass is safe.
	Degrade(vc *core.Controller)
	// Rebuild constructs the restarted UIF's handler (state rebuilt from
	// scratch: a cold cache, a fresh crypto context).
	Rebuild() uif.Handler
	// Promote reroutes commands back through the restarted UIF: the
	// routed classifier returns, and any catch-up machinery (resync)
	// is kicked.
	Promote(vc *core.Controller, att *uif.Attachment)
}

// Policy tunes the watchdog and restart behaviour.
type Policy struct {
	// HeartbeatInterval is the watchdog tick period.
	HeartbeatInterval sim.Duration
	// StallThreshold declares failure when the progress heartbeat has
	// not advanced for this long while notify commands are in flight.
	StallThreshold sim.Duration
	// ResidencyDeadline declares failure when the oldest in-flight
	// notify command has been outstanding this long (0 disables). It
	// must sit above the function's worst-case service time — including
	// fabric recovery for remote-backed functions.
	ResidencyDeadline sim.Duration
	// RestartBackoff is the first restart delay; it doubles per
	// consecutive failure up to RestartBackoffCap (0 = uncapped).
	RestartBackoff    sim.Duration
	RestartBackoffCap sim.Duration
	// RestartJitter is the ± fraction of randomization on each delay,
	// in [0, 1) — decorrelates restart stampedes across supervisors.
	RestartJitter float64
	// MaxRestarts caps consecutive failovers before the supervisor gives
	// up and leaves the function degraded permanently (0 = unlimited).
	MaxRestarts int
	// HealthyReset is the routed uptime after which the consecutive-
	// failure count (and so the backoff ladder) resets.
	HealthyReset sim.Duration
	// Seed derives the supervisor's jitter stream (per-function salted).
	Seed int64
}

// DefaultPolicy returns a watchdog tuned for microsecond-scale UIF
// service times: sub-millisecond detection, restarts fast enough to
// measure reconvergence inside a simulation window.
func DefaultPolicy() Policy {
	return Policy{
		HeartbeatInterval: 100 * sim.Microsecond,
		StallThreshold:    1 * sim.Millisecond,
		ResidencyDeadline: 5 * sim.Millisecond,
		RestartBackoff:    200 * sim.Microsecond,
		RestartBackoffCap: 5 * sim.Millisecond,
		RestartJitter:     0.2,
		HealthyReset:      10 * sim.Millisecond,
	}
}

// Validate rejects policies that cannot work.
func (p Policy) Validate() error {
	if p.HeartbeatInterval <= 0 {
		return fmt.Errorf("supervise: HeartbeatInterval must be positive, got %v", p.HeartbeatInterval)
	}
	if p.StallThreshold <= 0 {
		return fmt.Errorf("supervise: StallThreshold must be positive, got %v", p.StallThreshold)
	}
	if p.ResidencyDeadline < 0 || p.RestartBackoffCap < 0 || p.HealthyReset < 0 {
		return fmt.Errorf("supervise: negative duration in policy")
	}
	if p.RestartBackoff <= 0 {
		return fmt.Errorf("supervise: RestartBackoff must be positive, got %v", p.RestartBackoff)
	}
	if p.RestartJitter < 0 || p.RestartJitter >= 1 {
		return fmt.Errorf("supervise: RestartJitter must be in [0,1), got %g", p.RestartJitter)
	}
	if p.MaxRestarts < 0 {
		return fmt.Errorf("supervise: negative MaxRestarts %d", p.MaxRestarts)
	}
	return nil
}

// State is the supervisor's view of its function.
type State int

// Supervisor states.
const (
	// StateRouted: the UIF is attached and the routed classifier is in.
	StateRouted State = iota
	// StateDegraded: failure detected; commands take the degraded path
	// while a restart is pending.
	StateDegraded
	// StateGaveUp: MaxRestarts exhausted; degraded permanently.
	StateGaveUp
)

func (s State) String() string {
	switch s {
	case StateRouted:
		return "routed"
	case StateDegraded:
		return "degraded"
	case StateGaveUp:
		return "gave-up"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Supervisor watches one storage function's attachment and drives its
// failover/restart lifecycle. Create with Launch.
type Supervisor struct {
	env   *sim.Env
	fw    *uif.Framework
	vc    *core.Controller
	ring  *blockdev.URing
	depth uint32
	fn    Function
	pol   Policy
	inj   *fault.Injector
	rng   *rand.Rand

	att          *uif.Attachment
	state        State
	lastProgress uint64
	lastChange   sim.Time
	lastFailure  sim.Time
	degradedAt   sim.Time
	consecFails  int

	// Stats
	Detections          uint64 // failovers triggered
	StallDetections     uint64 // … by the progress heartbeat
	ResidencyDetections uint64 // … by the NSQ residency deadline
	ReconciledOK        uint64 // stranded commands completed successfully
	ReconciledErr       uint64 // … completed with a (retryable) error
	Requeued            uint64 // … requeued on the fast path
	Restarts            uint64 // successful restart+promote cycles
	GaveUps             uint64 // transitions to StateGaveUp
	DegradedNanos       uint64 // accumulated wall time off the routed path
	DetectRate          *metrics.Rate
}

// Launch wires a supervisor: it performs the initial attach (notify
// queues, framework attachment, classifier promotion) through fn and
// starts the watchdog process. ring may be nil for handlers that never
// touch the backend.
func Launch(env *sim.Env, fw *uif.Framework, vc *core.Controller, ring *blockdev.URing, depth uint32, fn Function, pol Policy) (*Supervisor, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(fn.Name()))
	s := &Supervisor{
		env: env, fw: fw, vc: vc, ring: ring, depth: depth, fn: fn, pol: pol,
		rng:        rand.New(rand.NewSource(pol.Seed ^ int64(h.Sum64()))),
		DetectRate: metrics.NewRate(int64(sim.Millisecond), 0.3),
	}
	s.attach()
	s.fn.Promote(vc, s.att)
	s.lastChange = env.Now()
	env.Go("supervise-"+fn.Name(), s.run)
	return s, nil
}

// attach builds a fresh attachment generation: new notify queues (stale
// ring entries of a dead predecessor can never alias into them) and a
// handler rebuilt from scratch.
func (s *Supervisor) attach() {
	nq := s.vc.AttachUIF(s.depth)
	s.att = s.fw.Attach(nq, s.fn.Rebuild(), s.ring)
	if s.inj != nil {
		s.att.SetFaultInjector(s.inj)
	}
	s.lastProgress = s.att.Progress()
}

// Attachment returns the current attachment generation.
func (s *Supervisor) Attachment() *uif.Attachment { return s.att }

// State returns the supervisor's lifecycle state.
func (s *Supervisor) State() State { return s.state }

// ConsecutiveFailures returns the current backoff ladder position.
func (s *Supervisor) ConsecutiveFailures() int { return s.consecFails }

// SetFaultInjector arms inj on the current attachment and every restarted
// generation — the per-attachment UIFCrash/UIFWedge site.
func (s *Supervisor) SetFaultInjector(inj *fault.Injector) {
	s.inj = inj
	s.att.SetFaultInjector(inj)
}

// run is the watchdog process.
func (s *Supervisor) run(p *sim.Proc) {
	for {
		p.Sleep(s.pol.HeartbeatInterval)
		s.tick()
	}
}

// tick takes one watchdog observation.
func (s *Supervisor) tick() {
	if s.state != StateRouted {
		return // failover in progress or given up
	}
	now := s.env.Now()
	if s.consecFails > 0 && s.pol.HealthyReset > 0 && now.Sub(s.lastFailure) >= s.pol.HealthyReset {
		s.consecFails = 0 // sustained health resets the backoff ladder
	}
	if prog := s.att.Progress(); prog != s.lastProgress {
		s.lastProgress = prog
		s.lastChange = now
	}
	inflight := s.vc.NotifyInFlight()
	if inflight == 0 {
		// Idle is not stalled; a UIF that died with nothing in flight is
		// detected as soon as the next command strands.
		s.lastChange = now
		return
	}
	stalled := now.Sub(s.lastChange) >= s.pol.StallThreshold
	overdue := s.pol.ResidencyDeadline > 0 && s.vc.OldestNotifyAge(now) >= s.pol.ResidencyDeadline
	if !stalled && !overdue {
		return
	}
	if stalled {
		s.StallDetections++
	}
	if overdue {
		s.ResidencyDetections++
	}
	s.failover(now)
}

// failover kills the attachment, degrades routing, reconciles the
// stranded commands and schedules the restart.
func (s *Supervisor) failover(now sim.Time) {
	s.Detections++
	s.DetectRate.Observe(1, int64(now))
	s.consecFails++
	s.lastFailure = now
	s.degradedAt = now
	s.state = StateDegraded
	s.att.Kill()
	s.fn.Degrade(s.vc)
	s.vc.ReconcileNotify(s.decide, nil)
	if s.pol.MaxRestarts > 0 && s.consecFails > s.pol.MaxRestarts {
		s.state = StateGaveUp
		s.GaveUps++
		return
	}
	s.env.After(s.backoffDelay(), s.restart)
}

// decide counts and forwards one reconcile verdict.
func (s *Supervisor) decide(cmd nvme.Command) core.ReconcileDecision {
	d := s.fn.Reconcile(cmd)
	switch {
	case d.Action == core.ReconcileRequeue:
		s.Requeued++
	case d.Status.OK():
		s.ReconciledOK++
	default:
		s.ReconciledErr++
	}
	return d
}

// backoffDelay returns the next restart delay: exponential in the
// consecutive-failure count, capped, jittered.
func (s *Supervisor) backoffDelay() sim.Duration {
	d := s.pol.RestartBackoff
	for i := 1; i < s.consecFails; i++ {
		d *= 2
		if s.pol.RestartBackoffCap > 0 && d >= s.pol.RestartBackoffCap {
			break
		}
	}
	if s.pol.RestartBackoffCap > 0 && d > s.pol.RestartBackoffCap {
		d = s.pol.RestartBackoffCap
	}
	if j := s.pol.RestartJitter; j > 0 {
		d = sim.Duration(float64(d) * (1 + j*(2*s.rng.Float64()-1)))
	}
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}

// restart brings up the next attachment generation. The routed classifier
// is only promoted after a second reconcile sweep retires anything a
// stale backpressure retry delivered to the dead generation's queues —
// while still degraded, no *new* commands can reach the notify path, so
// the sweep can never touch a healthy in-flight command.
func (s *Supervisor) restart() {
	if s.state != StateDegraded {
		return
	}
	s.attach()
	s.vc.ReconcileNotify(s.decide, func(int) { s.promote() })
}

// promote returns the function to the routed path.
func (s *Supervisor) promote() {
	if s.state != StateDegraded {
		return
	}
	now := s.env.Now()
	s.DegradedNanos += uint64(now.Sub(s.degradedAt))
	s.fn.Promote(s.vc, s.att)
	s.state = StateRouted
	s.Restarts++
	s.lastProgress = s.att.Progress()
	s.lastChange = now
}

// DegradedTime returns accumulated time off the routed path, including
// the currently open degradation window.
func (s *Supervisor) DegradedTime() sim.Duration {
	d := sim.Duration(s.DegradedNanos)
	if s.state != StateRouted {
		d += s.env.Now().Sub(s.degradedAt)
	}
	return d
}

// Collect folds the supervisor's counters into cs under "sup.<name>.".
func (s *Supervisor) Collect(cs *metrics.CounterSet) {
	p := "sup." + s.fn.Name() + "."
	cs.Add(p+"detections", s.Detections)
	cs.Add(p+"stall_detections", s.StallDetections)
	cs.Add(p+"residency_detections", s.ResidencyDetections)
	cs.Add(p+"reconciled_ok", s.ReconciledOK)
	cs.Add(p+"reconciled_err", s.ReconciledErr)
	cs.Add(p+"requeued", s.Requeued)
	cs.Add(p+"restarts", s.Restarts)
	cs.Add(p+"gave_ups", s.GaveUps)
	cs.Add(p+"degraded_us", uint64(s.DegradedTime()/sim.Microsecond))
}

// String renders the supervisor's state for control-plane dumps.
func (s *Supervisor) String() string {
	return fmt.Sprintf("sup{%s %v fails=%d detections=%d restarts=%d degraded=%v}",
		s.fn.Name(), s.state, s.consecFails, s.Detections, s.Restarts, s.DegradedTime())
}
