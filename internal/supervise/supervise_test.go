package supervise_test

import (
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/supervise"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// The unit rig: a minimal host (device, router, framework) plus a toy
// storage function whose handler behaviour and reconcile verdict the test
// scripts directly — so each watchdog signal and lifecycle transition can
// be exercised in isolation from the real storage functions.

type rig struct {
	env    *sim.Env
	cpu    *sim.CPU
	dev    *device.Device
	router *core.Router
	fw     *uif.Framework
	v      *vm.VM
	vc     *core.Controller
	disk   *vm.NVMeDisk
}

func newRig() *rig {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 16)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, device.NullStore{})
	router := core.NewRouter(env, core.DefaultRouterCosts(), []*sim.Thread{cpu.ThreadOn(8, "router")})
	fw := uif.NewFramework(env, uif.DefaultCosts(), []*sim.Thread{cpu.ThreadOn(9, "uif")})
	v := vm.New(env, 0, cpu, 0, 1, 32<<20, vm.DefaultVirtCosts())
	vc := router.Attach(v, device.WholeNamespace(dev, 1))
	disk := vm.NewNVMeDisk(v, vc, 64, vm.DefaultDriverCosts())
	return &rig{env: env, cpu: cpu, dev: dev, router: router, fw: fw, v: v, vc: vc, disk: disk}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	r.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; r.env.Stop() })
	r.env.RunUntil(sim.Time(60 * sim.Second))
	r.env.Close()
	if !ok {
		t.Fatal("test did not finish in simulated time")
	}
}

func (r *rig) read(p *sim.Proc, lba uint64) nvme.Status {
	base, pages, err := r.v.Mem.AllocBuffer(4096)
	if err != nil {
		panic(err)
	}
	req := &vm.Req{Op: vm.OpRead, LBA: lba, Blocks: 8, Buf: base, BufPages: pages}
	return vm.SubmitAndWait(p, r.disk, r.v.VCPU(0), req)
}

// toyHandler services requests synchronously at a fixed cost, or — when
// blackhole is set — accepts them and never completes them (the most
// hostile failure: no error, no progress signal from the request itself).
type toyHandler struct {
	cost      sim.Duration
	blackhole bool
	served    int
	swallowed int
}

func (h *toyHandler) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	if h.blackhole {
		h.swallowed++
		return true, nvme.SCSuccess // async, never completed
	}
	if h.cost > 0 {
		th.Exec(p, h.cost)
	}
	h.served++
	return false, nvme.SCSuccess
}

// toyFn is a scriptable supervise.Function: route-everything-to-NQ when
// promoted, fast-path-everything when degraded, reconcile per verdict.
type toyFn struct {
	verdict  core.ReconcileDecision
	sick     int // generations (from the first) built as blackholes
	builds   int
	degrades int
	promotes int
	handlers []*toyHandler
}

func (f *toyFn) Name() string { return "toy" }

func (f *toyFn) Reconcile(nvme.Command) core.ReconcileDecision { return f.verdict }

func (f *toyFn) Degrade(vc *core.Controller) {
	f.degrades++
	prog := ebpf.NewBuilder().
		MovImm64(ebpf.R0, core.ActSendHQ|core.ActWillCompleteHQ).
		Exit().
		MustProgram("toy-fast")
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
}

func (f *toyFn) Rebuild() uif.Handler {
	h := &toyHandler{cost: 2 * sim.Microsecond, blackhole: f.builds < f.sick}
	f.builds++
	f.handlers = append(f.handlers, h)
	return h
}

func (f *toyFn) Promote(vc *core.Controller, _ *uif.Attachment) {
	f.promotes++
	prog := ebpf.NewBuilder().
		MovImm64(ebpf.R0, core.ActSendNQ|core.ActWillCompleteNQ).
		Exit().
		MustProgram("toy-nq")
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
}

func testPolicy() supervise.Policy {
	pol := supervise.DefaultPolicy()
	pol.HeartbeatInterval = 10 * sim.Microsecond
	pol.StallThreshold = 100 * sim.Microsecond
	pol.ResidencyDeadline = 0 // stall-only unless a test opts in
	pol.RestartBackoff = 50 * sim.Microsecond
	pol.RestartBackoffCap = 200 * sim.Microsecond
	pol.RestartJitter = 0
	pol.HealthyReset = 100 * sim.Millisecond
	return pol
}

// A wedged UIF (alive but not servicing) is detected by the progress
// heartbeat, its stranded commands are reconciled, and the restarted
// generation serves traffic again.
func TestWatchdogDetectsWedge(t *testing.T) {
	r := newRig()
	fn := &toyFn{verdict: core.ReconcileDecision{Action: core.ReconcileRequeue}}
	sup, err := supervise.Launch(r.env, r.fw, r.vc, nil, 64, fn, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 20; i++ { // healthy traffic through the UIF
			if st := r.read(p, uint64(8*i)); !st.OK() {
				t.Fatalf("healthy read %d: %v", i, st)
			}
		}
		sup.Attachment().Wedge(sim.Second) // wedge far beyond the stall threshold
		done := make([]bool, 4)
		for i := range done {
			i := i
			r.env.Go("victim", func(p *sim.Proc) {
				if st := r.read(p, uint64(100+8*i)); !st.OK() {
					t.Errorf("victim read %d failed: %v", i, st)
				}
				done[i] = true
			})
		}
		for p.Now() < sim.Time(10*sim.Millisecond) && sup.Detections == 0 {
			p.Sleep(100 * sim.Microsecond)
		}
		for p.Now() < sim.Time(10*sim.Millisecond) && sup.State() != supervise.StateRouted {
			p.Sleep(100 * sim.Microsecond)
		}
		p.Sleep(sim.Millisecond)
		for i, d := range done {
			if !d {
				t.Fatalf("victim read %d never completed (lost command)", i)
			}
		}
	})
	if sup.StallDetections == 0 {
		t.Fatalf("wedge not detected by the progress heartbeat: %s", sup.String())
	}
	if sup.Requeued == 0 {
		t.Fatalf("stranded commands not requeued: %s", sup.String())
	}
	if sup.Restarts == 0 || sup.State() != supervise.StateRouted {
		t.Fatalf("function not restarted: %s", sup.String())
	}
	if fn.builds < 2 || fn.degrades == 0 || fn.promotes < 2 {
		t.Fatalf("lifecycle hooks not driven: builds=%d degrades=%d promotes=%d",
			fn.builds, fn.degrades, fn.promotes)
	}
	if sup.DegradedTime() <= 0 {
		t.Fatal("no degraded time accumulated")
	}
}

// A UIF that keeps making progress but silently swallows individual
// commands is caught by the NSQ residency deadline, not the heartbeat.
func TestWatchdogDetectsResidencyOverrun(t *testing.T) {
	r := newRig()
	fn := &toyFn{verdict: core.ReconcileDecision{Action: core.ReconcileComplete, Status: nvme.SCNSNotReady}, sick: 1}
	pol := testPolicy()
	pol.StallThreshold = sim.Second // heartbeat effectively disabled
	pol.ResidencyDeadline = 200 * sim.Microsecond
	sup, err := supervise.Launch(r.env, r.fw, r.vc, nil, 64, fn, pol)
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		st := r.read(p, 0) // swallowed by the sick generation, reconciled with a retryable error
		if st.OK() {
			t.Fatalf("swallowed command completed OK, want retryable error")
		}
		if st != nvme.SCNSNotReady {
			t.Fatalf("reconciled status = %v, want SCNSNotReady", st)
		}
		for p.Now() < sim.Time(10*sim.Millisecond) && sup.State() != supervise.StateRouted {
			p.Sleep(100 * sim.Microsecond)
		}
		if st := r.read(p, 8); !st.OK() { // healthy second generation
			t.Fatalf("read after restart: %v", st)
		}
	})
	if sup.ResidencyDetections == 0 {
		t.Fatalf("residency overrun not detected: %s", sup.String())
	}
	if sup.ReconciledErr == 0 {
		t.Fatalf("swallowed command not reconciled with an error: %s", sup.String())
	}
}

// A function that keeps failing walks the exponential backoff ladder and,
// at MaxRestarts, the supervisor gives up and leaves it degraded — where
// the fast path keeps serving I/O.
func TestBackoffLadderAndGiveUp(t *testing.T) {
	r := newRig()
	fn := &toyFn{verdict: core.ReconcileDecision{Action: core.ReconcileRequeue}, sick: 1 << 30}
	pol := testPolicy()
	pol.MaxRestarts = 2
	sup, err := supervise.Launch(r.env, r.fw, r.vc, nil, 64, fn, pol)
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		i := 0
		for p.Now() < sim.Time(20*sim.Millisecond) && sup.State() != supervise.StateGaveUp {
			if st := r.read(p, uint64(8*(i%64))); !st.OK() {
				t.Fatalf("read %d: %v", i, st)
			}
			i++
		}
		if sup.State() != supervise.StateGaveUp {
			t.Fatalf("supervisor never gave up: %s", sup.String())
		}
		// Degraded-permanently still serves I/O on the fast path.
		if st := r.read(p, 0); !st.OK() {
			t.Fatalf("fast-path read while given up: %v", st)
		}
	})
	if sup.Detections != 3 || sup.GaveUps != 1 {
		t.Fatalf("want 3 detections (MaxRestarts=2) and 1 give-up, got %s", sup.String())
	}
	if sup.Restarts != 2 {
		t.Fatalf("want exactly 2 restart cycles before giving up, got %s", sup.String())
	}
	if sup.ConsecutiveFailures() != 3 {
		t.Fatalf("backoff ladder position = %d, want 3", sup.ConsecutiveFailures())
	}
}

// Sustained healthy uptime resets the consecutive-failure count, so an
// isolated later failure starts the backoff ladder from the bottom.
func TestHealthyUptimeResetsLadder(t *testing.T) {
	r := newRig()
	fn := &toyFn{verdict: core.ReconcileDecision{Action: core.ReconcileRequeue}, sick: 1}
	pol := testPolicy()
	pol.HealthyReset = sim.Millisecond
	sup, err := supervise.Launch(r.env, r.fw, r.vc, nil, 64, fn, pol)
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		r.read(p, 0) // strands on the sick generation, triggers failover
		for p.Now() < sim.Time(10*sim.Millisecond) && sup.State() != supervise.StateRouted {
			p.Sleep(100 * sim.Microsecond)
		}
		if sup.ConsecutiveFailures() == 0 {
			t.Fatal("failure count reset before HealthyReset elapsed")
		}
		p.Sleep(2 * sim.Millisecond) // routed and healthy past HealthyReset
		if sup.ConsecutiveFailures() != 0 {
			t.Fatalf("failure count not reset after healthy uptime: %s", sup.String())
		}
	})
}

// Hot-swapping the classifier while UIF requests are in flight on the
// notify queues must not lose or corrupt either stream: in-flight
// notify-path commands drain through the UIF, post-swap commands take the
// fast path, and a swap back re-diverts without a gap.
func TestClassifierHotSwapMidFlight(t *testing.T) {
	r := newRig()
	fn := &toyFn{verdict: core.ReconcileDecision{Action: core.ReconcileRequeue}}
	pol := testPolicy()
	pol.StallThreshold = sim.Second // watchdog quiet: this test is about the swap
	sup, err := supervise.Launch(r.env, r.fw, r.vc, nil, 64, fn, pol)
	if err != nil {
		t.Fatal(err)
	}
	fn.handlers[0].cost = 200 * sim.Microsecond // slow UIF: swaps land mid-service
	const inflight = 8
	r.run(t, func(p *sim.Proc) {
		done := 0
		for i := 0; i < inflight; i++ {
			i := i
			r.env.Go("nq-inflight", func(p *sim.Proc) {
				if st := r.read(p, uint64(8*i)); !st.OK() {
					t.Errorf("in-flight notify read %d: %v", i, st)
				}
				done++
			})
		}
		p.Sleep(50 * sim.Microsecond) // let them reach the notify queues
		fn.Degrade(r.vc)              // hot-swap to the fast path mid-flight
		for i := 0; i < inflight; i++ {
			if st := r.read(p, uint64(8*i)); !st.OK() {
				t.Fatalf("fast-path read %d after swap: %v", i, st)
			}
		}
		fn.Promote(r.vc, sup.Attachment()) // and back
		for i := 0; i < inflight; i++ {
			if st := r.read(p, uint64(8*i)); !st.OK() {
				t.Fatalf("notify read %d after swap back: %v", i, st)
			}
		}
		for p.Now() < sim.Time(50*sim.Millisecond) && done < inflight {
			p.Sleep(100 * sim.Microsecond)
		}
		if done != inflight {
			t.Fatalf("only %d/%d in-flight notify commands completed across the swap", done, inflight)
		}
	})
	if sup.Detections != 0 {
		t.Fatalf("hot swap tripped the watchdog: %s", sup.String())
	}
	if fn.handlers[0].served < inflight {
		t.Fatalf("UIF served %d requests, want at least the %d in-flight ones", fn.handlers[0].served, inflight)
	}
}
