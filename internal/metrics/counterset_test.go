package metrics

import "testing"

func TestCounterSetOrderAndString(t *testing.T) {
	var s CounterSet
	s.Add("b", 2)
	s.Add("a", 1)
	s.Add("b", 3)
	if got := s.String(); got != "b=5 a=1" {
		t.Fatalf("String: %q", got)
	}
	if s.Get("b") != 5 || s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Fatal("Get values wrong")
	}
	if s.Total() != 6 {
		t.Fatalf("Total: %d", s.Total())
	}
	if n := s.Names(); len(n) != 2 || n[0] != "b" || n[1] != "a" {
		t.Fatalf("Names: %v", n)
	}
}

func TestCounterSetMergeAndEqual(t *testing.T) {
	var a, b CounterSet
	a.Add("x", 1)
	a.Add("y", 2)
	b.Add("y", 3)
	b.Add("z", 4)
	a.Merge(&b)
	if got := a.String(); got != "x=1 y=5 z=4" {
		t.Fatalf("Merge: %q", got)
	}

	var c, d CounterSet
	c.Add("x", 1)
	c.Add("y", 2)
	d.Add("x", 1)
	d.Add("y", 2)
	if !c.Equal(&d) {
		t.Fatal("identical sets not Equal")
	}
	d.Add("y", 1)
	if c.Equal(&d) {
		t.Fatal("differing values Equal")
	}
	var e CounterSet
	e.Add("y", 2)
	e.Add("x", 1)
	if c.Equal(&e) {
		t.Fatal("differing order Equal")
	}
}
