package metrics

import "testing"

func TestCounterSetOrderAndString(t *testing.T) {
	var s CounterSet
	s.Add("b", 2)
	s.Add("a", 1)
	s.Add("b", 3)
	if got := s.String(); got != "b=5 a=1" {
		t.Fatalf("String: %q", got)
	}
	if s.Get("b") != 5 || s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Fatal("Get values wrong")
	}
	if s.Total() != 6 {
		t.Fatalf("Total: %d", s.Total())
	}
	if n := s.Names(); len(n) != 2 || n[0] != "b" || n[1] != "a" {
		t.Fatalf("Names: %v", n)
	}
}
