package metrics

import (
	"fmt"
	"math"
)

// Rate is a windowed EWMA rate gauge: events are accumulated into fixed
// windows of the configured width, and at every window rollover the
// finished window's rate is folded into an exponentially weighted moving
// average. Like the rest of the package it is unit-agnostic (callers
// record nanosecond timestamps and per-second rates fall out of the
// window width); updates are O(1) and allocation-free, and the value is
// fully determined by the observation sequence, so same-seed runs produce
// bit-identical gauges (see Equal).
type Rate struct {
	window int64   // window width (ns)
	alpha  float64 // EWMA smoothing factor per window

	winStart int64   // start of the current window
	winCount float64 // events accumulated in the current window
	ewma     float64 // events per window, smoothed
	windows  uint64  // completed windows folded so far
	total    float64 // lifetime event count
}

// NewRate creates a rate gauge with the given window width in nanoseconds
// and smoothing factor alpha in (0, 1]; alpha = 1 tracks only the last
// completed window.
func NewRate(windowNs int64, alpha float64) *Rate {
	if windowNs <= 0 {
		panic("metrics: rate window must be positive")
	}
	if alpha <= 0 || alpha > 1 {
		panic("metrics: rate alpha must be in (0, 1]")
	}
	return &Rate{window: windowNs, alpha: alpha}
}

// roll folds completed windows up to now into the EWMA.
func (r *Rate) roll(now int64) {
	if r.windows == 0 && r.winCount == 0 && r.ewma == 0 {
		// Never observed anything: snap the window origin forward so
		// leading idle time costs nothing and skews nothing.
		if behind := (now - r.winStart) / r.window; behind > 0 {
			r.winStart += behind * r.window
		}
		return
	}
	k := (now - r.winStart) / r.window
	if k <= 0 {
		return
	}
	// Fold the current window, then apply the decay of the remaining k-1
	// empty windows in closed form — a long idle gap must not cost one
	// loop turn per elapsed window on the caller's hot path.
	r.ewma = r.alpha*r.winCount + (1-r.alpha)*r.ewma
	if k > 1 {
		r.ewma *= math.Pow(1-r.alpha, float64(k-1))
	}
	r.winCount = 0
	r.windows += uint64(k)
	r.winStart += k * r.window
}

// Observe records n events at time now (nanoseconds, monotonic).
func (r *Rate) Observe(n float64, now int64) {
	r.roll(now)
	r.winCount += n
	r.total += n
}

// PerSec returns the smoothed rate in events per second as of now.
func (r *Rate) PerSec(now int64) float64 {
	r.roll(now)
	return r.ewma * 1e9 / float64(r.window)
}

// Total returns the lifetime event count.
func (r *Rate) Total() float64 { return r.total }

// Merge folds o into r (used when aggregating per-worker gauges): window
// counts and totals add, and the EWMA combines weighted by completed
// windows so merging a fresh gauge is a no-op. Both gauges must share the
// same geometry.
func (r *Rate) Merge(o *Rate) {
	if r.window != o.window || r.alpha != o.alpha {
		panic("metrics: merging rates with different geometry")
	}
	if o.windows > 0 {
		w := float64(o.windows) / float64(r.windows+o.windows)
		r.ewma = r.ewma*(1-w) + o.ewma*w
		r.windows += o.windows
	}
	r.winCount += o.winCount
	r.total += o.total
	if o.winStart > r.winStart {
		r.winStart = o.winStart
	}
}

// Equal reports whether both gauges hold bit-identical state — the rate
// counterpart of CounterSet.Equal for same-seed determinism checks.
func (r *Rate) Equal(o *Rate) bool {
	return r.window == o.window && r.alpha == o.alpha &&
		r.winStart == o.winStart && r.winCount == o.winCount &&
		r.ewma == o.ewma && r.windows == o.windows && r.total == o.total
}

func (r *Rate) String() string {
	return fmt.Sprintf("rate{win=%dns ewma=%.3f/win n=%.0f}", r.window, r.ewma, r.total)
}
