// Package metrics provides the measurement primitives used by the benchmark
// harness: HDR-style log-linear latency histograms, counters and simple
// summaries. Values are int64 and unit-agnostic (the harness records
// nanoseconds).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
)

// subBuckets is the number of linear sub-buckets per power-of-two bucket.
// 32 sub-buckets bound the relative quantile error to about 3%.
const subBuckets = 32

// Histogram is a log-linear histogram of non-negative int64 values, in the
// spirit of HdrHistogram: values are grouped into power-of-two magnitude
// buckets, each split into linear sub-buckets. Recording is O(1) and
// allocation-free after construction.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram covering [0, 2^62].
func NewHistogram() *Histogram {
	return &Histogram{
		// 63 magnitude groups x subBuckets is more than enough for ns values.
		counts: make([]uint64, 64*subBuckets),
		min:    math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Magnitude = position of the highest set bit above the sub-bucket range.
	mag := bits.Len64(uint64(v)) - 1 // >= 5 here
	shift := mag - 5                 // 2^5 == subBuckets
	sub := int(v>>uint(shift)) - subBuckets
	return (shift+1)*subBuckets + sub
}

// bucketMid returns a representative value for bucket index i (upper edge).
func bucketMid(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	shift := i/subBuckets - 1
	sub := i % subBuckets
	return int64(sub+subBuckets) << uint(shift)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the value at quantile q in [0,1], e.g. 0.99 for p99.
// The result is accurate to the bucket resolution (~3% relative error).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			v := bucketMid(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds all observations of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Equal reports whether h and o hold bit-identical contents (same counts in
// every bucket, same total/sum/min/max) — the histogram counterpart of
// CounterSet.Equal for same-seed determinism checks.
func (h *Histogram) Equal(o *Histogram) bool {
	if h.total != o.total || h.sum != o.sum || h.min != o.min || h.max != o.max {
		return false
	}
	if len(h.counts) != len(o.counts) {
		return false
	}
	for i, c := range h.counts {
		if o.counts[i] != c {
			return false
		}
	}
	return true
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.total, h.Mean(), h.Median(), h.P99(), h.max)
}
