package metrics

import (
	"math"
	"testing"
)

func TestRateSteadyState(t *testing.T) {
	r := NewRate(1e6, 0.5) // 1 ms windows
	// 100 events per window for 50 windows -> 100k events/s.
	for w := int64(0); w < 50; w++ {
		for i := 0; i < 100; i++ {
			r.Observe(1, w*1e6+int64(i)*1e4)
		}
	}
	got := r.PerSec(50 * 1e6)
	if math.Abs(got-1e5) > 1e3 {
		t.Fatalf("steady-state rate = %.0f, want ~100000", got)
	}
	if r.Total() != 5000 {
		t.Fatalf("total = %.0f, want 5000", r.Total())
	}
}

func TestRateDecaysWhenIdle(t *testing.T) {
	r := NewRate(1e6, 0.5)
	for i := 0; i < 1000; i++ {
		r.Observe(1, int64(i)*1e3)
	}
	busy := r.PerSec(1e6)
	idle := r.PerSec(20 * 1e6) // 19 empty windows later
	if idle >= busy/100 {
		t.Fatalf("rate did not decay: busy=%.0f idle=%.0f", busy, idle)
	}
}

func TestRateLongIdleGapClosedForm(t *testing.T) {
	r := NewRate(1e6, 0.5)
	r.Observe(100, 0)
	// One busy window then k-1 empty windows: ewma must equal the closed
	// form alpha*count*(1-alpha)^(k-1), including across an hour-long gap
	// (3.6M skipped 1ms windows) that must not iterate per window.
	r.Observe(0, 10*1e6) // roll 10 windows
	want := 0.5 * 100 * math.Pow(0.5, 9)
	if got := r.ewma; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ewma after 10 windows = %v, want %v", got, want)
	}
	if got := r.PerSec(3600 * 1e9); got != 0 {
		// 0.5^3.6M underflows to exactly 0; the call must also return
		// promptly (the old per-window loop took millions of iterations).
		t.Fatalf("rate after 1h idle = %v, want 0", got)
	}
}

func TestRateLeadingIdleDoesNotSkew(t *testing.T) {
	r := NewRate(1e6, 0.5)
	// First observation far from t=0: the empty leading windows must not
	// drag the average toward zero.
	for i := 0; i < 100; i++ {
		r.Observe(1, 500*1e6+int64(i)*1e4)
	}
	got := r.PerSec(501 * 1e6)
	if got < 4e4 {
		t.Fatalf("leading idle skewed rate: %.0f", got)
	}
}

func TestRateMergeAndEqual(t *testing.T) {
	a, b := NewRate(1e6, 0.5), NewRate(1e6, 0.5)
	c := NewRate(1e6, 0.5)
	for w := int64(0); w < 10; w++ {
		a.Observe(10, w*1e6)
		c.Observe(10, w*1e6)
	}
	if !a.Equal(c) {
		t.Fatal("identical observation sequences not Equal")
	}
	if a.Equal(b) {
		t.Fatal("fresh gauge equals populated gauge")
	}
	// Merging a fresh gauge is a no-op on the smoothed value.
	before := a.PerSec(10 * 1e6)
	a.Merge(b)
	if after := a.PerSec(10 * 1e6); after != before {
		t.Fatalf("merging fresh gauge changed rate: %v -> %v", before, after)
	}
	// Merging two equally-loaded gauges keeps the per-gauge rate and adds
	// totals.
	d := NewRate(1e6, 0.5)
	for w := int64(0); w < 10; w++ {
		d.Observe(10, w*1e6)
	}
	a.Merge(d)
	if a.Total() != c.Total()+d.Total() {
		t.Fatalf("merge total = %.0f", a.Total())
	}
	got, want := a.PerSec(10*1e6), c.PerSec(10*1e6)
	if math.Abs(got-want) > want/10 {
		t.Fatalf("merged rate %.0f, want ~%.0f", got, want)
	}
}

func TestRateGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched geometry merge did not panic")
		}
	}()
	NewRate(1e6, 0.5).Merge(NewRate(2e6, 0.5))
}
