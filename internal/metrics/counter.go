package metrics

import "fmt"

// Counter is a monotonically increasing event counter with a snapshot
// helper for windowed rate measurements.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Since returns the count accumulated since a previous snapshot value.
func (c *Counter) Since(snap uint64) uint64 { return c.n - snap }

// Summary aggregates throughput and latency results for one workload run;
// it is what every experiment row ultimately reports.
type Summary struct {
	Ops       uint64  // completed operations in the window
	Bytes     uint64  // payload bytes moved in the window
	WindowSec float64 // measurement window in seconds
	Lat       *Histogram
	CPUCores  float64 // average busy cores during the window
}

// IOPS returns operations per second.
func (s Summary) IOPS() float64 {
	if s.WindowSec <= 0 {
		return 0
	}
	return float64(s.Ops) / s.WindowSec
}

// KIOPS returns thousands of operations per second (the paper's unit).
func (s Summary) KIOPS() float64 { return s.IOPS() / 1e3 }

// MBps returns payload megabytes per second.
func (s Summary) MBps() float64 {
	if s.WindowSec <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.WindowSec / 1e6
}

func (s Summary) String() string {
	out := fmt.Sprintf("%.1f kIOPS %.1f MB/s cpu=%.2f", s.KIOPS(), s.MBps(), s.CPUCores)
	if s.Lat != nil && s.Lat.Count() > 0 {
		out += fmt.Sprintf(" p50=%.1fus p99=%.1fus",
			float64(s.Lat.Median())/1e3, float64(s.Lat.P99())/1e3)
	}
	return out
}
