package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 32; i++ {
		h.Record(i)
	}
	if h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got < 15 || got > 16 {
		t.Fatalf("median %d", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 100000)
	for i := range vals {
		// Mixture resembling latency: base + heavy tail.
		v := int64(50000 + rng.ExpFloat64()*20000)
		if rng.Intn(100) == 0 {
			v *= 5
		}
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("q=%v: got %d exact %d (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestHistogramMergeMatchesCombined(t *testing.T) {
	a, b, c := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		c.Record(v)
	}
	a.Merge(b)
	if a.Count() != c.Count() || a.Quantile(0.99) != c.Quantile(0.99) || a.Min() != c.Min() || a.Max() != c.Max() {
		t.Fatalf("merge mismatch: %v vs %v", a, c)
	}
}

func TestHistogramEqual(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	if !a.Equal(b) {
		t.Fatal("empty histograms must be equal")
	}
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1 << 24))
	}
	for _, v := range vals {
		a.Record(v)
		b.Record(v)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("same recordings not equal: %v vs %v", a, b)
	}
	b.Record(vals[0])
	if a.Equal(b) {
		t.Fatal("different totals reported equal")
	}
	// Same count and sum but different value placement must still differ.
	c, d := NewHistogram(), NewHistogram()
	c.Record(1 << 20)
	c.Record(3 << 20)
	d.Record(2 << 20)
	d.Record(2 << 20)
	if c.Equal(d) {
		t.Fatal("different distributions reported equal")
	}
}

func TestHistogramMergeEqualsInterleaved(t *testing.T) {
	// Merging per-shard histograms must be bit-identical to recording the
	// same observations into one histogram — the property the cache's
	// per-shard reuse aggregation depends on.
	a, b, c := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		v := int64(rng.Intn(1 << 30))
		if i%3 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		c.Record(v)
	}
	a.Merge(b)
	if !a.Equal(c) {
		t.Fatalf("merged %v != combined %v", a, c)
	}
	// Merging an empty histogram is a no-op.
	a.Merge(NewHistogram())
	if !a.Equal(c) {
		t.Fatal("merging an empty histogram changed contents")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset failed")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("record after reset broken")
	}
}

// Property: bucketMid(bucketIndex(v)) is within 1/32 relative error of v,
// and bucket indexing is monotonic.
func TestBucketRoundTripProperty(t *testing.T) {
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= 1 << 50
		i := bucketIndex(v)
		mid := bucketMid(i)
		if v < subBuckets {
			return mid == v
		}
		lo := v - v/subBuckets - 1
		hi := v + v/subBuckets + 1
		return mid >= lo && mid <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexMonotonicProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		a %= 1 << 50
		b %= 1 << 50
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryRates(t *testing.T) {
	s := Summary{Ops: 50000, Bytes: 50000 * 4096, WindowSec: 0.5}
	if got := s.KIOPS(); got != 100 {
		t.Fatalf("kiops %f", got)
	}
	if got := s.MBps(); got < 409 || got > 410 {
		t.Fatalf("MBps %f", got)
	}
}

func TestCounterSince(t *testing.T) {
	var c Counter
	c.Add(10)
	snap := c.Value()
	c.Inc()
	c.Add(4)
	if c.Since(snap) != 5 {
		t.Fatalf("since %d", c.Since(snap))
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i&0xfffff) + 50000)
	}
}
