package metrics

import (
	"fmt"
	"strings"
)

// CounterSet is an insertion-ordered collection of named counters. It
// aggregates error/retry/timeout counts from many layers into one record
// whose String() rendering is stable, making two runs directly comparable
// in fault-trace determinism tests.
type CounterSet struct {
	names []string
	vals  map[string]uint64
}

// Add accumulates v into the named counter, registering the name on first
// use.
func (s *CounterSet) Add(name string, v uint64) {
	if s.vals == nil {
		s.vals = make(map[string]uint64)
	}
	if _, ok := s.vals[name]; !ok {
		s.names = append(s.names, name)
	}
	s.vals[name] += v
}

// Get returns the named counter's value (0 if absent).
func (s *CounterSet) Get(name string) uint64 { return s.vals[name] }

// Total sums every counter.
func (s *CounterSet) Total() uint64 {
	var n uint64
	for _, v := range s.vals {
		n += v
	}
	return n
}

// Names returns the counter names in insertion order.
func (s *CounterSet) Names() []string { return append([]string(nil), s.names...) }

// Merge accumulates every counter of other into s, preserving other's
// insertion order for names new to s — aggregating per-run records into
// a campaign total keeps the rendering stable.
func (s *CounterSet) Merge(other *CounterSet) {
	for _, n := range other.names {
		s.Add(n, other.vals[n])
	}
}

// Equal reports whether both sets hold the same counters with the same
// values in the same order — the determinism check for same-seed runs.
func (s *CounterSet) Equal(other *CounterSet) bool {
	if len(s.names) != len(other.names) {
		return false
	}
	for i, n := range s.names {
		if other.names[i] != n || s.vals[n] != other.vals[n] {
			return false
		}
	}
	return true
}

// String renders "name=value" pairs in insertion order — a deterministic
// fault-trace fingerprint.
func (s *CounterSet) String() string {
	parts := make([]string, 0, len(s.names))
	for _, n := range s.names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, s.vals[n]))
	}
	return strings.Join(parts, " ")
}
