package stack

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/qos"
	"nvmetro/internal/sgx"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/supervise"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// NVMetro is the paper's system as a provisionable solution. The basic
// configuration runs the "dummy" fast-path classifier (or the partition
// classifier when the VM is confined to a partition); the WithEncryption
// and WithReplication options wire the complete storage functions.
type NVMetro struct {
	h *Host
	// SharedWorkers > 0 runs one router with that many worker threads
	// shared by all VMs (the Fig. 5 scalability setup); otherwise each VM
	// gets its own router worker (the main evaluation setup).
	SharedWorkers int

	shared     *core.Router
	fw         *uif.Framework
	setup      func(vc *core.Controller)
	name       string
	byVM       map[*vm.VM]*core.Controller
	byCacher   map[*core.Controller]*storfn.Cacher
	byCacheSup map[*core.Controller]*storfn.CacherSupervision
	bySup      map[*core.Controller]*supervise.Supervisor
	qosCfg     *qos.Config
	supPol     *supervise.Policy
}

// NewNVMetro creates the basic configuration.
func NewNVMetro(h *Host) *NVMetro {
	return &NVMetro{h: h, name: "NVMetro", byVM: make(map[*vm.VM]*core.Controller)}
}

// NewNVMetroShared creates the shared-worker configuration.
func NewNVMetroShared(h *Host, workers int) *NVMetro {
	return &NVMetro{h: h, SharedWorkers: workers, name: "NVMetro", byVM: make(map[*vm.VM]*core.Controller)}
}

// Name implements Solution.
func (s *NVMetro) Name() string { return s.name }

func (s *NVMetro) router() *core.Router {
	if s.SharedWorkers > 0 {
		if s.shared == nil {
			var threads []*sim.Thread
			for i := 0; i < s.SharedWorkers; i++ {
				threads = append(threads, s.h.HostThread("router"))
			}
			s.shared = core.NewRouter(s.h.Env, s.h.Params.Router, threads)
			if s.qosCfg != nil {
				s.shared.EnableQoS(*s.qosCfg)
			}
		}
		return s.shared
	}
	r := core.NewRouter(s.h.Env, s.h.Params.Router, []*sim.Thread{s.h.HostThread("router")})
	if s.qosCfg != nil {
		r.EnableQoS(*s.qosCfg)
	}
	return r
}

// WithQoS enables the WFQ arbiter on the router(s) this solution creates.
// VMs register as tenants with a default contract at Provision time; SetQoS
// installs per-VM contracts afterwards. Cross-tenant arbitration only takes
// effect in the shared-worker configuration, where one router sees every
// VM; in the router-per-VM setup only the per-tenant rate limits and SLO
// tracking apply. Calling WithQoS after VMs are provisioned enables the
// arbiter on the already-created routers too (their attached VMs register
// as tenants immediately); EnableQoS keeps the first config if one was
// already installed.
func (s *NVMetro) WithQoS(cfg qos.Config) *NVMetro {
	s.qosCfg = &cfg
	if s.shared != nil {
		s.shared.EnableQoS(cfg)
	}
	for _, vc := range s.byVM {
		vc.Router().EnableQoS(cfg)
	}
	return s
}

// SetQoS replaces the QoS contract of an already-provisioned VM.
func (s *NVMetro) SetQoS(v *vm.VM, tc qos.TenantConfig) {
	vc := s.byVM[v]
	if vc == nil {
		panic("stack: SetQoS before Provision")
	}
	vc.SetQoS(tc)
}

// QoSArbiter returns the shared router's arbiter for inspection (nil
// unless WithQoS was configured and a shared router exists).
func (s *NVMetro) QoSArbiter() *qos.Arbiter {
	if s.shared == nil {
		return nil
	}
	return s.shared.QoS()
}

// framework lazily creates the (single-process, multi-VM) UIF framework.
func (s *NVMetro) framework(threads int) *uif.Framework {
	if s.fw == nil {
		var ths []*sim.Thread
		for i := 0; i < threads; i++ {
			ths = append(ths, s.h.HostThread("uif"))
		}
		s.fw = uif.NewFramework(s.h.Env, s.h.Params.UIF, ths)
	}
	return s.fw
}

// ControllerFor returns the virtual controller provisioned for v (the
// control-plane handle used to swap classifiers or attach UIFs live).
func (s *NVMetro) ControllerFor(v *vm.VM) *core.Controller { return s.byVM[v] }

// WithSupervision runs every storage-function UIF this solution attaches
// under a supervisor with the given watchdog/restart policy. Applies to
// VMs provisioned after the call; the SGX encryptor variant is excluded
// (enclave relaunch is out of scope).
func (s *NVMetro) WithSupervision(pol supervise.Policy) *NVMetro {
	if err := pol.Validate(); err != nil {
		panic(err)
	}
	s.supPol = &pol
	if s.bySup == nil {
		s.bySup = make(map[*core.Controller]*supervise.Supervisor)
	}
	return s
}

// SupervisorFor returns the supervisor attached to v's storage function,
// or nil when WithSupervision is not configured.
func (s *NVMetro) SupervisorFor(v *vm.VM) *supervise.Supervisor {
	return s.bySup[s.byVM[v]]
}

// launchSupervised starts fn's UIF under the configured supervision policy.
func (s *NVMetro) launchSupervised(vc *core.Controller, fw *uif.Framework, ring *blockdev.URing, fn supervise.Function) *supervise.Supervisor {
	sup, err := supervise.Launch(s.h.Env, fw, vc, ring, 512, fn, *s.supPol)
	if err != nil {
		panic(err)
	}
	s.bySup[vc] = sup
	return sup
}

// Provision implements Solution.
func (s *NVMetro) Provision(v *vm.VM, part device.Partition) vm.Disk {
	vc := s.router().Attach(v, part)
	s.byVM[v] = vc
	if s.setup != nil {
		s.setup(vc)
	} else if part.Start != 0 || part.Blocks != part.Dev.Namespace(part.NSID).Info.Size {
		prog, _ := storfn.PartitionClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
	}
	return vm.NewNVMeDisk(v, vc, 128, s.h.Params.Driver)
}

// WithEncryption configures the transparent-encryption storage function:
// the encryptor classifier plus a plain or SGX XTS-AES UIF. The paper uses
// 2 UIF threads for the plain variant and 1 worker + 1 SGX switchless
// thread for the enclave variant.
func (s *NVMetro) WithEncryption(key []byte, useSGX bool) *NVMetro {
	s.name = "NVMetro Encr."
	if useSGX {
		s.name = "NVMetro SGX"
	}
	s.setup = func(vc *core.Controller) {
		part := vc.Partition()
		bdev := blockdev.NewNVMeBlockDev(s.h.Env, device.WholeNamespace(part.Dev, part.NSID), s.h.CPU, s.h.guestCores, s.h.Params.Block)
		ring := blockdev.NewURing(s.h.Env, bdev, s.h.Params.URing)
		if s.supPol != nil && !useSGX {
			s.launchSupervised(vc, s.framework(2), ring,
				storfn.NewEncryptorSupervision(part, key, s.h.Params.Enc))
			return
		}
		prog, _ := storfn.EncryptorClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
		var handler uif.Handler
		nthreads := 2
		if useSGX {
			enclave, err := sgx.Launch(s.h.Env, s.h.CPU, key, sgx.DefaultCosts())
			if err != nil {
				panic(err)
			}
			handler = storfn.NewSGXEncryptor(enclave, s.h.Params.Enc)
			nthreads = 1 // 1 UIF worker + the enclave's switchless thread
		} else {
			enc, err := storfn.NewEncryptor(key, s.h.Params.Enc)
			if err != nil {
				panic(err)
			}
			handler = enc
		}
		s.framework(nthreads).Attach(vc.AttachUIF(512), handler, ring)
	}
	return s
}

// WithReplication configures live disk replication: the replicator
// classifier multicasts writes to the local fast path and to a UIF that
// forwards them to the remote secondary over NVMe-oF. secondary returns
// the remote block device backing a given local partition.
func (s *NVMetro) WithReplication(secondary func(part device.Partition) blockdev.BlockDevice) *NVMetro {
	s.name = "NVMetro Repl."
	s.setup = func(vc *core.Controller) {
		part := vc.Partition()
		ring := blockdev.NewURing(s.h.Env, secondary(part), s.h.Params.URing)
		if s.supPol != nil {
			s.launchSupervised(vc, s.framework(1), ring,
				storfn.NewReplicatorSupervision(part, storfn.NewReplicator()))
			return
		}
		prog, _ := storfn.ReplicatorClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
		s.framework(1).Attach(vc.AttachUIF(512), storfn.NewReplicator(), ring)
	}
	return s
}

// WithCache configures the classifier-steered host block cache: the cache
// classifier tracks per-bucket read heat and diverts hot reads to a Cacher
// UIF serving them from host memory; all writes pass through the UIF's
// invalidation window so cached data can never go stale.
func (s *NVMetro) WithCache(cp storfn.CacheParams) *NVMetro {
	s.name = "NVMetro Cache"
	if s.byCacher == nil {
		s.byCacher = make(map[*core.Controller]*storfn.Cacher)
	}
	s.setup = func(vc *core.Controller) {
		part := vc.Partition()
		p := cp
		p.Cache.BlockSize = uint32(1) << part.Dev.Params().LBAShift
		bdev := blockdev.NewNVMeBlockDev(s.h.Env, device.WholeNamespace(part.Dev, part.NSID), s.h.CPU, s.h.guestCores, s.h.Params.Block)
		ring := blockdev.NewURing(s.h.Env, bdev, s.h.Params.URing)
		if s.supPol != nil {
			cs := storfn.NewCacherSupervision(s.h.Env, part, p)
			s.launchSupervised(vc, s.framework(2), ring, cs)
			if s.byCacheSup == nil {
				s.byCacheSup = make(map[*core.Controller]*storfn.CacherSupervision)
			}
			s.byCacheSup[vc] = cs
			return
		}
		nq := vc.AttachUIF(512)
		cacher := storfn.NewCacher(s.h.Env, p)
		s.byCacher[vc] = cacher
		prog, _ := storfn.CacheClassifier(part, cacher.Hints(), p.HotThreshold)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
		s.framework(2).Attach(nq, cacher, ring)
	}
	return s
}

// CacherFor returns the cache UIF provisioned for v's controller (stats,
// cache and heat-map access), or nil when WithCache is not configured.
// Under supervision this is the current generation — a restart replaces it.
func (s *NVMetro) CacherFor(v *vm.VM) *storfn.Cacher {
	vc := s.byVM[v]
	if cs := s.byCacheSup[vc]; cs != nil {
		return cs.Cacher()
	}
	return s.byCacher[vc]
}

// RemoteHost is a second machine holding the replication secondary.
type RemoteHost struct {
	Env  *sim.Env
	CPU  *sim.CPU
	Dev  *device.Device
	Link *nvmeof.Link
	tgt  *nvmeof.Target
}

// NewRemoteHost builds the remote side of the replication experiments.
func NewRemoteHost(env *sim.Env, cores int, p device.Params, backing device.Store) *RemoteHost {
	r := &RemoteHost{Env: env, CPU: sim.NewCPU(env, cores), Link: nvmeof.DefaultLink(env)}
	r.Dev = device.New(env, p, backing)
	bdev := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(r.Dev, 1), r.CPU, 0, blockdev.DefaultCosts())
	r.tgt = nvmeof.NewTarget(env, bdev, r.CPU)
	return r
}

// Secondary returns a factory exposing the remote device over the fabric.
func (r *RemoteHost) Secondary() func(part device.Partition) blockdev.BlockDevice {
	return func(part device.Partition) blockdev.BlockDevice {
		return nvmeof.NewInitiator(r.Env, r.Link, r.tgt)
	}
}
