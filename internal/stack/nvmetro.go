package stack

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/integrity"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/qos"
	"nvmetro/internal/sgx"
	"nvmetro/internal/shard"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/supervise"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// NVMetro is the paper's system as a provisionable solution. The basic
// configuration runs the "dummy" fast-path classifier (or the partition
// classifier when the VM is confined to a partition); the WithEncryption
// and WithReplication options wire the complete storage functions.
type NVMetro struct {
	h *Host
	// SharedWorkers > 0 runs one router with that many worker threads
	// shared by all VMs (the Fig. 5 scalability setup); otherwise each VM
	// gets its own router worker (the main evaluation setup).
	SharedWorkers int
	// Shards > 0 runs the per-core sharded dispatch subsystem instead:
	// a shard.Fleet with that many shards, least-loaded tenant placement
	// and the adaptive path-promotion tier enabled (the scale sweep
	// configuration). Mutually exclusive with SharedWorkers.
	Shards int

	shared     *core.Router
	fl         *shard.Fleet
	fw         *uif.Framework
	setup      func(vc *core.Controller)
	name       string
	byVM       map[*vm.VM]*core.Controller
	byCacher   map[*core.Controller]*storfn.Cacher
	byCacheSup map[*core.Controller]*storfn.CacherSupervision
	bySup      map[*core.Controller]*supervise.Supervisor
	byRepl     map[*core.Controller]*replParts
	byInteg    map[*core.Controller]*integWiring
	qosCfg     *qos.Config
	supPol     *supervise.Policy
	integCfg   *integrity.ScrubConfig
	golden     *GoldenImage
	xform      bool // the UIF transforms data (encryption): device bytes != guest bytes
}

// replParts records the replication plumbing of one controller so the
// integrity layer can guard the fan-out and scrub the mirror.
type replParts struct {
	rep *storfn.Replicator
	att *uif.Attachment
	sec blockdev.BlockDevice
	fn  *storfn.ReplicatorSupervision // nil unless supervised
}

// integWiring is one controller's end-to-end integrity state.
type integWiring struct {
	dom *integrity.Domain
	scr *integrity.Scrubber
	rs  *storfn.Resyncer
}

// NewNVMetro creates the basic configuration.
func NewNVMetro(h *Host) *NVMetro {
	return &NVMetro{h: h, name: "NVMetro", byVM: make(map[*vm.VM]*core.Controller)}
}

// NewNVMetroShared creates the shared-worker configuration.
func NewNVMetroShared(h *Host, workers int) *NVMetro {
	return &NVMetro{h: h, SharedWorkers: workers, name: "NVMetro", byVM: make(map[*vm.VM]*core.Controller)}
}

// NewNVMetroSharded creates the per-core sharded configuration: tenants
// spread over a fleet of per-core dispatch shards with adaptive path
// promotion enabled (package shard).
func NewNVMetroSharded(h *Host, shards int) *NVMetro {
	return &NVMetro{h: h, Shards: shards, name: "NVMetro Sharded", byVM: make(map[*vm.VM]*core.Controller)}
}

// Fleet returns the shard fleet (nil outside the sharded configuration or
// before the first Provision).
func (s *NVMetro) Fleet() *shard.Fleet { return s.fl }

// fleet lazily builds the shard fleet, one host thread per shard.
func (s *NVMetro) fleet() *shard.Fleet {
	if s.fl == nil {
		var threads []*sim.Thread
		for i := 0; i < s.Shards; i++ {
			threads = append(threads, s.h.HostThread("shard"))
		}
		s.fl = shard.New(s.h.Env, s.h.Params.Router, threads)
		s.fl.EnablePromotion()
		if s.qosCfg != nil {
			s.fl.EnableQoS(*s.qosCfg)
		}
	}
	return s.fl
}

// Name implements Solution.
func (s *NVMetro) Name() string { return s.name }

func (s *NVMetro) router() *core.Router {
	if s.SharedWorkers > 0 {
		if s.shared == nil {
			var threads []*sim.Thread
			for i := 0; i < s.SharedWorkers; i++ {
				threads = append(threads, s.h.HostThread("router"))
			}
			s.shared = core.NewRouter(s.h.Env, s.h.Params.Router, threads)
			if s.qosCfg != nil {
				s.shared.EnableQoS(*s.qosCfg)
			}
		}
		return s.shared
	}
	r := core.NewRouter(s.h.Env, s.h.Params.Router, []*sim.Thread{s.h.HostThread("router")})
	if s.qosCfg != nil {
		r.EnableQoS(*s.qosCfg)
	}
	return r
}

// WithQoS enables the WFQ arbiter on the router(s) this solution creates.
// VMs register as tenants with a default contract at Provision time; SetQoS
// installs per-VM contracts afterwards. Cross-tenant arbitration only takes
// effect in the shared-worker configuration, where one router sees every
// VM; in the router-per-VM setup only the per-tenant rate limits and SLO
// tracking apply. Calling WithQoS after VMs are provisioned enables the
// arbiter on the already-created routers too (their attached VMs register
// as tenants immediately); EnableQoS keeps the first config if one was
// already installed.
func (s *NVMetro) WithQoS(cfg qos.Config) *NVMetro {
	s.qosCfg = &cfg
	if s.shared != nil {
		s.shared.EnableQoS(cfg)
	}
	if s.fl != nil {
		s.fl.EnableQoS(cfg)
	}
	for _, vc := range s.byVM {
		vc.Router().EnableQoS(cfg)
	}
	return s
}

// SetQoS replaces the QoS contract of an already-provisioned VM.
func (s *NVMetro) SetQoS(v *vm.VM, tc qos.TenantConfig) {
	vc := s.byVM[v]
	if vc == nil {
		panic("stack: SetQoS before Provision")
	}
	vc.SetQoS(tc)
}

// QoSArbiter returns the shared router's arbiter for inspection (nil
// unless WithQoS was configured and a shared router exists).
func (s *NVMetro) QoSArbiter() *qos.Arbiter {
	if s.shared == nil {
		return nil
	}
	return s.shared.QoS()
}

// framework lazily creates the (single-process, multi-VM) UIF framework.
func (s *NVMetro) framework(threads int) *uif.Framework {
	if s.fw == nil {
		var ths []*sim.Thread
		for i := 0; i < threads; i++ {
			ths = append(ths, s.h.HostThread("uif"))
		}
		s.fw = uif.NewFramework(s.h.Env, s.h.Params.UIF, ths)
	}
	return s.fw
}

// ControllerFor returns the virtual controller provisioned for v (the
// control-plane handle used to swap classifiers or attach UIFs live).
func (s *NVMetro) ControllerFor(v *vm.VM) *core.Controller { return s.byVM[v] }

// WithSupervision runs every storage-function UIF this solution attaches
// under a supervisor with the given watchdog/restart policy. Applies to
// VMs provisioned after the call; the SGX encryptor variant is excluded
// (enclave relaunch is out of scope).
func (s *NVMetro) WithSupervision(pol supervise.Policy) *NVMetro {
	if err := pol.Validate(); err != nil {
		panic(err)
	}
	s.supPol = &pol
	if s.bySup == nil {
		s.bySup = make(map[*core.Controller]*supervise.Supervisor)
	}
	return s
}

// SupervisorFor returns the supervisor attached to v's storage function,
// or nil when WithSupervision is not configured.
func (s *NVMetro) SupervisorFor(v *vm.VM) *supervise.Supervisor {
	return s.bySup[s.byVM[v]]
}

// launchSupervised starts fn's UIF under the configured supervision policy.
func (s *NVMetro) launchSupervised(vc *core.Controller, fw *uif.Framework, ring *blockdev.URing, fn supervise.Function) *supervise.Supervisor {
	sup, err := supervise.Launch(s.h.Env, fw, vc, ring, 512, fn, *s.supPol)
	if err != nil {
		panic(err)
	}
	s.bySup[vc] = sup
	return sup
}

// Provision implements Solution.
func (s *NVMetro) Provision(v *vm.VM, part device.Partition) vm.Disk {
	var vc *core.Controller
	if s.Shards > 0 {
		vc = s.fleet().Attach(v, part)
	} else {
		vc = s.router().Attach(v, part)
	}
	s.byVM[v] = vc
	if s.setup != nil {
		s.setup(vc)
	} else if part.Start != 0 || part.Blocks != part.Dev.Namespace(part.NSID).Info.Size {
		prog, _ := storfn.PartitionClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
	}
	if s.integCfg != nil {
		s.wireIntegrity(vc)
	}
	return vm.NewNVMeDisk(v, vc, 128, s.h.Params.Driver)
}

// WithIntegrity enables end-to-end data integrity on every VM provisioned
// afterwards: a per-controller PI domain stamped at the mediation point and
// verified at the guest completion boundary, the blockdev and fabric read
// completions, the cache serve/fill path and the replica fan-out, plus a
// background scrubber with the given policy. Composes with the base,
// replication and cache configurations; under encryption only the guest
// boundary is guarded (device bytes are ciphertext, so below-UIF boundaries
// have no plaintext expectation to check and scrubbing is skipped).
func (s *NVMetro) WithIntegrity(cfg integrity.ScrubConfig) *NVMetro {
	s.integCfg = &cfg
	if s.byInteg == nil {
		s.byInteg = make(map[*core.Controller]*integWiring)
	}
	return s
}

// wireIntegrity builds one controller's PI domain, attaches a guard to
// every boundary the active configuration exposes, and starts its scrubber.
func (s *NVMetro) wireIntegrity(vc *core.Controller) {
	part := vc.Partition()
	dom, err := integrity.NewDomain(part.Dev.Params().BlockSize())
	if err != nil {
		panic(err)
	}
	w := &integWiring{dom: dom}
	s.byInteg[vc] = w
	vc.SetGuard(dom.Guard("guest"))
	if s.xform {
		return // ciphertext below the UIF: no device-side expectation
	}
	shift := part.Dev.Params().LBAShift

	// The scrub leg: a dedicated host queue pair onto the same device,
	// verifying read completions like any kernel-path consumer would.
	bdev := blockdev.NewNVMeBlockDev(s.h.Env, device.WholeNamespace(part.Dev, part.NSID), s.h.CPU, s.h.guestCores, s.h.Params.Block)
	bdev.SetVerifier(&integrity.SectorGuard{G: dom.Guard("blockdev"), Size: blockdev.SectorSize})
	scr, err := integrity.NewScrubber(s.h.Env, dom, bdev, s.h.HostThread("scrub"), shift, *s.integCfg)
	if err != nil {
		panic(err)
	}
	w.scr = scr

	if c := s.cacherOf(vc); c != nil {
		c.Guard = dom.Guard("cache")
		scr.SetCache(c.Cache())
	}
	if rp := s.byRepl[vc]; rp != nil {
		rp.rep.Guard = dom.Guard("replica")
		if ini, ok := rp.sec.(*nvmeof.Initiator); ok {
			ini.SetVerifier(&integrity.SectorGuard{G: dom.Guard("fabric"), Size: blockdev.SectorSize})
		}
		rs, err := storfn.NewResyncer(s.h.Env, rp.rep, bdev, rp.att, s.h.HostThread("resync"), shift, storfn.DefaultResyncConfig())
		if err != nil {
			panic(err)
		}
		w.rs = rs
		if rp.fn != nil {
			rp.fn.SetResyncer(rs)
		}
		scr.SetReplica(rp.rep, rs, rp.att)
	}
}

// cacherOf returns the current cache UIF generation for vc, if any.
func (s *NVMetro) cacherOf(vc *core.Controller) *storfn.Cacher {
	if cs := s.byCacheSup[vc]; cs != nil {
		return cs.Cacher()
	}
	return s.byCacher[vc]
}

// IntegrityDomainFor returns the PI domain wired for v's controller, or
// nil when WithIntegrity is not configured.
func (s *NVMetro) IntegrityDomainFor(v *vm.VM) *integrity.Domain {
	if w := s.byInteg[s.byVM[v]]; w != nil {
		return w.dom
	}
	return nil
}

// ScrubberFor returns the background scrubber wired for v's controller, or
// nil when WithIntegrity is not configured (or the configuration has no
// device-side expectation to scrub).
func (s *NVMetro) ScrubberFor(v *vm.VM) *integrity.Scrubber {
	if w := s.byInteg[s.byVM[v]]; w != nil {
		return w.scr
	}
	return nil
}

// ResyncerFor returns the mirror-consistency engine created for v's
// replicated, integrity-wired controller (nil otherwise).
func (s *NVMetro) ResyncerFor(v *vm.VM) *storfn.Resyncer {
	if w := s.byInteg[s.byVM[v]]; w != nil {
		return w.rs
	}
	return nil
}

// ReplicatorFor returns the replication state for v's controller, or nil
// when WithReplication is not configured.
func (s *NVMetro) ReplicatorFor(v *vm.VM) *storfn.Replicator {
	if rp := s.byRepl[s.byVM[v]]; rp != nil {
		return rp.rep
	}
	return nil
}

// WithEncryption configures the transparent-encryption storage function:
// the encryptor classifier plus a plain or SGX XTS-AES UIF. The paper uses
// 2 UIF threads for the plain variant and 1 worker + 1 SGX switchless
// thread for the enclave variant.
func (s *NVMetro) WithEncryption(key []byte, useSGX bool) *NVMetro {
	s.name = "NVMetro Encr."
	if useSGX {
		s.name = "NVMetro SGX"
	}
	s.xform = true
	s.setup = func(vc *core.Controller) {
		part := vc.Partition()
		bdev := blockdev.NewNVMeBlockDev(s.h.Env, device.WholeNamespace(part.Dev, part.NSID), s.h.CPU, s.h.guestCores, s.h.Params.Block)
		ring := blockdev.NewURing(s.h.Env, bdev, s.h.Params.URing)
		if s.supPol != nil && !useSGX {
			s.launchSupervised(vc, s.framework(2), ring,
				storfn.NewEncryptorSupervision(part, key, s.h.Params.Enc))
			return
		}
		prog, _ := storfn.EncryptorClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
		var handler uif.Handler
		nthreads := 2
		if useSGX {
			enclave, err := sgx.Launch(s.h.Env, s.h.CPU, key, sgx.DefaultCosts())
			if err != nil {
				panic(err)
			}
			handler = storfn.NewSGXEncryptor(enclave, s.h.Params.Enc)
			nthreads = 1 // 1 UIF worker + the enclave's switchless thread
		} else {
			enc, err := storfn.NewEncryptor(key, s.h.Params.Enc)
			if err != nil {
				panic(err)
			}
			handler = enc
		}
		s.framework(nthreads).Attach(vc.AttachUIF(512), handler, ring)
	}
	return s
}

// WithReplication configures live disk replication: the replicator
// classifier multicasts writes to the local fast path and to a UIF that
// forwards them to the remote secondary over NVMe-oF. secondary returns
// the remote block device backing a given local partition.
func (s *NVMetro) WithReplication(secondary func(part device.Partition) blockdev.BlockDevice) *NVMetro {
	s.name = "NVMetro Repl."
	if s.byRepl == nil {
		s.byRepl = make(map[*core.Controller]*replParts)
	}
	s.setup = func(vc *core.Controller) {
		part := vc.Partition()
		sec := secondary(part)
		ring := blockdev.NewURing(s.h.Env, sec, s.h.Params.URing)
		rep := storfn.NewReplicator()
		if s.supPol != nil {
			fn := storfn.NewReplicatorSupervision(part, rep)
			sup := s.launchSupervised(vc, s.framework(1), ring, fn)
			s.byRepl[vc] = &replParts{rep: rep, att: sup.Attachment(), sec: sec, fn: fn}
			return
		}
		prog, _ := storfn.ReplicatorClassifier(part)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
		att := s.framework(1).Attach(vc.AttachUIF(512), rep, ring)
		s.byRepl[vc] = &replParts{rep: rep, att: att, sec: sec}
	}
	return s
}

// WithCache configures the classifier-steered host block cache: the cache
// classifier tracks per-bucket read heat and diverts hot reads to a Cacher
// UIF serving them from host memory; all writes pass through the UIF's
// invalidation window so cached data can never go stale.
func (s *NVMetro) WithCache(cp storfn.CacheParams) *NVMetro {
	s.name = "NVMetro Cache"
	if s.byCacher == nil {
		s.byCacher = make(map[*core.Controller]*storfn.Cacher)
	}
	s.setup = func(vc *core.Controller) {
		part := vc.Partition()
		p := cp
		p.Cache.BlockSize = uint32(1) << part.Dev.Params().LBAShift
		bdev := blockdev.NewNVMeBlockDev(s.h.Env, device.WholeNamespace(part.Dev, part.NSID), s.h.CPU, s.h.guestCores, s.h.Params.Block)
		ring := blockdev.NewURing(s.h.Env, bdev, s.h.Params.URing)
		if s.supPol != nil {
			cs := storfn.NewCacherSupervision(s.h.Env, part, p)
			s.launchSupervised(vc, s.framework(2), ring, cs)
			if s.byCacheSup == nil {
				s.byCacheSup = make(map[*core.Controller]*storfn.CacherSupervision)
			}
			s.byCacheSup[vc] = cs
			return
		}
		nq := vc.AttachUIF(512)
		cacher := storfn.NewCacher(s.h.Env, p)
		s.byCacher[vc] = cacher
		prog, _ := storfn.CacheClassifier(part, cacher.Hints(), p.HotThreshold)
		if err := vc.LoadClassifier(prog); err != nil {
			panic(err)
		}
		s.framework(2).Attach(nq, cacher, ring)
	}
	return s
}

// CacherFor returns the cache UIF provisioned for v's controller (stats,
// cache and heat-map access), or nil when WithCache is not configured.
// Under supervision this is the current generation — a restart replaces it.
func (s *NVMetro) CacherFor(v *vm.VM) *storfn.Cacher {
	vc := s.byVM[v]
	if cs := s.byCacheSup[vc]; cs != nil {
		return cs.Cacher()
	}
	return s.byCacher[vc]
}

// RemoteHost is a second machine holding the replication secondary.
type RemoteHost struct {
	Env  *sim.Env
	CPU  *sim.CPU
	Dev  *device.Device
	Link *nvmeof.Link
	tgt  *nvmeof.Target
}

// NewRemoteHost builds the remote side of the replication experiments.
func NewRemoteHost(env *sim.Env, cores int, p device.Params, backing device.Store) *RemoteHost {
	r := &RemoteHost{Env: env, CPU: sim.NewCPU(env, cores), Link: nvmeof.DefaultLink(env)}
	r.Dev = device.New(env, p, backing)
	bdev := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(r.Dev, 1), r.CPU, 0, blockdev.DefaultCosts())
	r.tgt = nvmeof.NewTarget(env, bdev, r.CPU)
	return r
}

// Secondary returns a factory exposing the remote device over the fabric.
func (r *RemoteHost) Secondary() func(part device.Partition) blockdev.BlockDevice {
	return func(part device.Partition) blockdev.BlockDevice {
		return nvmeof.NewInitiator(r.Env, r.Link, r.tgt)
	}
}
