package stack

import (
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// Passthrough assigns device queues directly to the guest (VFIO-style PCIe
// passthrough). No host software touches the data path; the only
// virtualization cost is forwarding the device's completion interrupts into
// the guest, which is why the paper measures it with the lowest CPU but a
// higher median latency than the polling solutions.
type Passthrough struct {
	h *Host
}

// NewPassthrough creates the solution.
func NewPassthrough(h *Host) *Passthrough { return &Passthrough{h: h} }

// Name implements Solution.
func (s *Passthrough) Name() string { return "Passthrough" }

// Provision implements Solution. Passthrough exposes the namespace as-is
// (no mediation layer exists to translate partitions), so part must start
// at LBA 0.
func (s *Passthrough) Provision(v *vm.VM, part device.Partition) vm.Disk {
	if part.Start != 0 {
		panic("stack: passthrough cannot expose a partition (no mediation layer)")
	}
	port := &ptPort{h: s.h, v: v, part: part, qps: make(map[uint16]*nvme.QueuePair)}
	return vm.NewNVMeDisk(v, port, 128, s.h.Params.Driver)
}

type ptPort struct {
	h    *Host
	v    *vm.VM
	part device.Partition
	qps  map[uint16]*nvme.QueuePair
}

func (p *ptPort) Namespace() nvme.NamespaceInfo { return p.part.Info() }

func (p *ptPort) CreateQP(depth uint32) *nvme.QueuePair {
	qp := p.part.Dev.CreateQueuePair(depth, p.v.Mem)
	p.qps[qp.SQ.ID] = qp
	return qp
}

// Ring is a posted MMIO write straight to device hardware: free.
func (p *ptPort) Ring(qid uint16) { p.part.Dev.Ring(qid) }

// SetIRQ installs the physical-interrupt forwarding path: device MSI-X ->
// host IRQ handler -> KVM injection -> guest, costing host CPU and latency.
func (p *ptPort) SetIRQ(qid uint16, fn func()) {
	qp := p.qps[qid]
	cond := sim.NewCond(p.h.Env)
	qp.CQ.OnPost = func() { cond.Signal(nil) }
	th := p.h.HostThread("kernel/irq")
	fwd := p.v.Costs.HWIRQForward
	hostCost := p.h.Params.PTHostIRQ
	p.h.Env.Go(fmt.Sprintf("pt-irq-vm%d-q%d", p.v.ID, qid), func(pr *sim.Proc) {
		for {
			cond.Wait()
			th.Exec(pr, hostCost)
			pr.Sleep(fwd)
			fn()
		}
	})
}
