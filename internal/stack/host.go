// Package stack assembles the six storage-virtualization solutions the
// paper evaluates — NVMetro, MDev-NVMe, device passthrough, QEMU
// virtio-blk (io_uring), in-kernel vhost-scsi and SPDK vhost-user — behind
// one Solution interface, plus the encrypted (dm-crypt) and mirrored
// (dm-mirror) compositions used in Sections V-C/V-D. All calibration
// constants live in params.go.
package stack

import (
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// Host is the simulated testbed machine: cores, one NVMe drive, and a core
// allocation policy (guest cores low, host service threads high), mirroring
// the paper's pinned setup.
type Host struct {
	Env        *sim.Env
	CPU        *sim.CPU
	Dev        *device.Device
	Params     Params
	guestCores int
	nextGuest  int
	nextHost   int
	vmSeq      int
}

// NewHost builds a testbed. guestCores are reserved at the bottom of the
// core range for vCPUs; everything else serves host threads.
func NewHost(env *sim.Env, totalCores, guestCores int, p Params, backing device.Store) *Host {
	return &Host{
		Env:        env,
		CPU:        sim.NewCPU(env, totalCores),
		Dev:        device.New(env, p.Device, backing),
		Params:     p,
		guestCores: guestCores,
		nextHost:   guestCores,
	}
}

// NewVM creates a VM with the given vCPU count on the next guest cores.
func (h *Host) NewVM(vcpus int, memBytes uint64) *vm.VM {
	if h.nextGuest+vcpus > h.guestCores {
		panic(fmt.Sprintf("stack: out of guest cores (%d+%d > %d)", h.nextGuest, vcpus, h.guestCores))
	}
	v := vm.New(h.Env, h.vmSeq, h.CPU, h.nextGuest, vcpus, memBytes, h.Params.Virt)
	h.vmSeq++
	h.nextGuest += vcpus
	return v
}

// HostThread allocates a host service thread round-robin over host cores.
func (h *Host) HostThread(tag string) *sim.Thread {
	core := h.nextHost
	h.nextHost++
	if h.nextHost >= h.CPU.NumCores() {
		h.nextHost = h.guestCores
	}
	return h.CPU.ThreadOn(core, tag)
}

// Solution provisions virtual disks for VMs over partitions of the host
// device.
type Solution interface {
	Name() string
	Provision(v *vm.VM, part device.Partition) vm.Disk
}

// wakeWait parks the process on c and charges the thread-wake latency once
// resumed — the cost event-driven (non-polling) host threads pay that
// polling solutions avoid.
func wakeWait(p *sim.Proc, c *sim.Cond, lat sim.Duration) {
	c.Wait()
	if lat > 0 {
		p.Sleep(lat)
	}
}
