package stack

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/dm"
	"nvmetro/internal/nvme"
	"nvmetro/internal/scsi"
	"nvmetro/internal/sim"
	"nvmetro/internal/virtio"
	"nvmetro/internal/vm"
)

// VhostSCSI is the in-kernel paravirtual baseline: a virtio-scsi guest
// driver served by a kernel vhost worker thread that decodes CDBs and
// submits bios to the host block layer. Backend may be the raw device or a
// device-mapper stack (dm-crypt, dm-mirror), giving the paper's encrypted
// and mirrored baselines.
type VhostSCSI struct {
	h *Host
	// Backend builds the block device a VM's LUN maps to; nil = raw device
	// partition.
	Backend func(part device.Partition) blockdev.BlockDevice
	name    string
}

// NewVhostSCSI creates the plain configuration.
func NewVhostSCSI(h *Host) *VhostSCSI { return &VhostSCSI{h: h, name: "Vhost"} }

// NewVhostDMCrypt stacks dm-crypt under vhost-scsi (the paper's encryption
// baseline).
func NewVhostDMCrypt(h *Host, key []byte) *VhostSCSI {
	return &VhostSCSI{h: h, name: "dm-crypt", Backend: func(part device.Partition) blockdev.BlockDevice {
		lower := blockdev.NewNVMeBlockDev(h.Env, part, h.CPU, h.guestCores, h.Params.Block)
		crypt, err := dm.NewCrypt(h.Env, lower, key, h.Params.Crypt, h.CPU)
		if err != nil {
			panic(err)
		}
		return crypt
	}}
}

// NewVhostDMMirror stacks dm-mirror under vhost-scsi (the replication
// baseline); secondary provides the remote leg.
func NewVhostDMMirror(h *Host, secondary func(part device.Partition) blockdev.BlockDevice) *VhostSCSI {
	return &VhostSCSI{h: h, name: "dm-mirror", Backend: func(part device.Partition) blockdev.BlockDevice {
		lower := blockdev.NewNVMeBlockDev(h.Env, part, h.CPU, h.guestCores, h.Params.Block)
		return &dm.Mirror{Primary: lower, Secondary: secondary(part)}
	}}
}

// Name implements Solution.
func (s *VhostSCSI) Name() string { return s.name }

// Provision implements Solution.
func (s *VhostSCSI) Provision(v *vm.VM, part device.Partition) vm.Disk {
	var bdev blockdev.BlockDevice
	if s.Backend != nil {
		bdev = s.Backend(part)
	} else {
		bdev = blockdev.NewNVMeBlockDev(s.h.Env, part, s.h.CPU, s.h.guestCores, s.h.Params.Block)
	}
	w := &vhostVM{
		h: s.h, v: v, bdev: bdev,
		wake: sim.NewCond(s.h.Env),
		irqs: make(map[*virtio.Queue]func()),
	}
	disk := virtio.NewSCSIDisk(v, w, part.Info(), 256, s.h.Params.Driver)
	w.queues = disk.Queues()
	for i := 0; i < s.h.Params.VhostWorkers; i++ {
		th := s.h.HostThread("vhost")
		s.h.Env.Go(fmt.Sprintf("vhost-%d-vm%d", i, v.ID), func(p *sim.Proc) { w.worker(p, th) })
	}
	return disk
}

type vhostVM struct {
	h      *Host
	v      *vm.VM
	bdev   blockdev.BlockDevice
	queues []*virtio.Queue
	wake   *sim.Cond
	irqs   map[*virtio.Queue]func()
	asleep int
	busy   int

	completions []vhostDone
	inflight    int
}

type vhostDone struct {
	req    virtio.DeviceReq
	vq     *virtio.Queue
	status byte
	read   bool
	buf    []byte
}

// Kick implements virtio.Transport: an ioeventfd exit, cheaper than a full
// trap-and-emulate but still a guest-mode exit.
func (w *vhostVM) Kick(p *sim.Proc, vcpu *sim.Thread, vq *virtio.Queue) {
	vcpu.Exec(p, w.h.Params.VhostKick)
	if w.asleep > 0 {
		w.wake.Signal(nil)
	}
}

// SetIRQ implements virtio.Transport.
func (w *vhostVM) SetIRQ(vq *virtio.Queue, fn func()) { w.irqs[vq] = fn }

func (w *vhostVM) hint() {
	if w.asleep > 0 {
		w.wake.Signal(nil)
	}
}

func (w *vhostVM) worker(p *sim.Proc, th *sim.Thread) {
	par := w.h.Params
	for {
		did := false

		// Deliver finished commands back to the guest.
		for len(w.completions) > 0 {
			d := w.completions[0]
			w.completions = w.completions[1:]
			th.Exec(p, par.VhostComplete)
			if d.read && d.status == scsi.StatusGood {
				d.req.WriteData(d.vq, d.buf)
			}
			d.req.Complete(d.vq, d.status)
			th.Exec(p, par.VhostInject)
			if fn := w.irqs[d.vq]; fn != nil {
				fn()
			}
			w.inflight--
			did = true
		}

		// Service new requests.
		for _, vq := range w.queues {
			for {
				head, ok := vq.Ring.PopAvail()
				if !ok {
					break
				}
				did = true
				r, err := virtio.ParseChain(vq, head)
				if err != nil {
					panic(err)
				}
				th.Exec(p, par.VhostParse)
				cmd, err := virtio.ParseSCSICDB(vq.Mem, r.HdrAddr)
				if err != nil {
					w.finish(vhostDone{req: r, vq: vq, status: scsi.StatusCheckCondition})
					continue
				}
				w.inflight++
				w.dispatch(p, th, vq, r, cmd)
			}
		}

		if !did {
			if w.inflight == 0 && len(w.completions) == 0 {
				w.asleep++
				wakeWait(p, w.wake, par.WakeLat)
				w.asleep--
			} else {
				// Block until bio completions arrive (finish() hints),
				// paying the full scheduler wake-up like a real kthread.
				w.asleep++
				wakeWait(p, w.wake, par.WakeLat)
				w.asleep--
			}
		}
	}
}

func (w *vhostVM) finish(d vhostDone) {
	w.completions = append(w.completions, d)
	w.hint()
}

func (w *vhostVM) dispatch(p *sim.Proc, th *sim.Thread, vq *virtio.Queue, r virtio.DeviceReq, cmd scsi.Cmd) {
	toStatus := func(st nvme.Status) byte {
		if st.OK() {
			return scsi.StatusGood
		}
		return scsi.StatusCheckCondition
	}
	switch {
	case cmd.IsRead():
		buf := make([]byte, r.DataLen())
		bio := &blockdev.Bio{Op: blockdev.BioRead, Sector: cmd.LBA, Data: buf}
		bio.OnDone = func(st nvme.Status) {
			w.finish(vhostDone{req: r, vq: vq, status: toStatus(st), read: true, buf: buf})
		}
		w.bdev.SubmitBio(p, th, bio)
	case cmd.IsWrite():
		buf := make([]byte, r.DataLen())
		r.ReadData(vq, buf)
		bio := &blockdev.Bio{Op: blockdev.BioWrite, Sector: cmd.LBA, Data: buf}
		bio.OnDone = func(st nvme.Status) {
			w.finish(vhostDone{req: r, vq: vq, status: toStatus(st)})
		}
		w.bdev.SubmitBio(p, th, bio)
	case cmd.Op == scsi.OpSyncCache10:
		bio := &blockdev.Bio{Op: blockdev.BioFlush}
		bio.OnDone = func(st nvme.Status) {
			w.finish(vhostDone{req: r, vq: vq, status: toStatus(st)})
		}
		w.bdev.SubmitBio(p, th, bio)
	case cmd.Op == scsi.OpUnmap:
		bio := &blockdev.Bio{Op: blockdev.BioDiscard, Sector: cmd.LBA, NSect: cmd.Blocks}
		bio.OnDone = func(st nvme.Status) {
			w.finish(vhostDone{req: r, vq: vq, status: toStatus(st)})
		}
		w.bdev.SubmitBio(p, th, bio)
	default:
		w.finish(vhostDone{req: r, vq: vq, status: scsi.StatusGood})
	}
}
