package stack

import (
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/guestmem"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/virtio"
	"nvmetro/internal/vm"
)

// SPDK is the kernel-bypass baseline: a vhost-user target process whose
// reactor threads spin on the VMs' virtqueues and drive the NVMe device
// with an exclusive userspace polled-mode driver. Latency matches the other
// polling solutions; CPU is the highest of all because reactors never
// sleep, as the paper measures in Fig. 11.
type SPDK struct {
	h        *Host
	sessions []*spdkSession
	started  bool
	spin     sim.Duration
}

// NewSPDK creates the solution.
func NewSPDK(h *Host) *SPDK { return &SPDK{h: h, spin: 500 * sim.Nanosecond} }

// Name implements Solution.
func (s *SPDK) Name() string { return "SPDK" }

type spdkSession struct {
	v      *vm.VM
	part   device.Partition
	queues []*virtio.Queue
	irqs   map[*virtio.Queue]func()
	// Per-queue exclusive userspace NVMe queue pair + tag tracking.
	qps       []*nvme.QueuePair
	mem       *mappedMem
	inflight  []map[uint16]spdkTag
	freeCID   [][]uint16
	listPages [][]uint64 // one preallocated PRP list page per (queue, CID)
}

type spdkTag struct {
	req  virtio.DeviceReq
	vq   *virtio.Queue
	read bool
}

// Kick is never taken: reactors poll, so the driver's kicks are suppressed.
func (s *SPDK) Kick(p *sim.Proc, vcpu *sim.Thread, vq *virtio.Queue) {}

// SetIRQ implements virtio.Transport. Queues register during driver
// construction, which always belongs to the most recent session.
func (s *SPDK) SetIRQ(vq *virtio.Queue, fn func()) {
	sess := s.sessions[len(s.sessions)-1]
	sess.irqs[vq] = fn
}

// Provision implements Solution.
func (s *SPDK) Provision(v *vm.VM, part device.Partition) vm.Disk {
	sess := &spdkSession{v: v, part: part, irqs: make(map[*virtio.Queue]func())}
	// vhost-user maps the guest's memory into the SPDK process; PRP list
	// pages live in SPDK's own hugepage arena above the mapping.
	sess.mem = newMappedMem(v.Mem, 64<<20)
	s.sessions = append(s.sessions, sess)
	disk := virtio.NewBlkDisk(v, s, part.Info(), 256, s.h.Params.Driver)
	sess.queues = disk.Queues()
	for _, q := range sess.queues {
		q.Ring.SuppressKick = true
		qp := part.Dev.CreateQueuePair(256, sess.mem)
		sess.qps = append(sess.qps, qp)
		sess.inflight = append(sess.inflight, make(map[uint16]spdkTag))
		free := make([]uint16, 0, 255)
		lists := make([]uint64, 255)
		for i := uint16(0); i < 255; i++ {
			free = append(free, i)
			lists[i] = sess.mem.allocListPage()
		}
		sess.freeCID = append(sess.freeCID, free)
		sess.listPages = append(sess.listPages, lists)
	}
	if !s.started {
		s.started = true
		for i := 0; i < s.h.Params.SPDKReactors; i++ {
			th := s.h.HostThread("spdk")
			idx := i
			s.h.Env.Go(fmt.Sprintf("spdk-reactor%d", i), func(p *sim.Proc) { s.reactor(p, th, idx) })
		}
	}
	return disk
}

// reactor is a permanently-spinning SPDK event loop serving the sessions
// assigned to it round-robin.
func (s *SPDK) reactor(p *sim.Proc, th *sim.Thread, idx int) {
	par := s.h.Params
	for {
		did := false
		flat := 0
		for _, sess := range s.sessions {
			for qi, vq := range sess.queues {
				flat++
				if (flat-1)%par.SPDKReactors != idx {
					continue
				}
				// Completions from the polled userspace NVMe driver.
				var e nvme.Completion
				for sess.qps[qi].CQ.Pop(&e) {
					tag, ok := sess.inflight[qi][e.CID()]
					if !ok {
						continue
					}
					delete(sess.inflight[qi], e.CID())
					sess.freeCID[qi] = append(sess.freeCID[qi], e.CID())
					th.Exec(p, par.SPDKParse)
					status := byte(0)
					if !e.Status().OK() {
						status = 1
					}
					tag.req.Complete(tag.vq, status)
					th.Exec(p, par.SPDKInject)
					if fn := sess.irqs[tag.vq]; fn != nil {
						fn()
					}
					did = true
				}
				// New guest submissions.
				for len(sess.freeCID[qi]) > 0 {
					head, ok := vq.Ring.PopAvail()
					if !ok {
						break
					}
					did = true
					r, err := virtio.ParseChain(vq, head)
					if err != nil {
						panic(err)
					}
					th.Exec(p, par.SPDKParse+par.SPDKNVMe)
					s.submit(sess, qi, vq, r)
				}
			}
		}
		if !did {
			// Reactors never sleep: this is SPDK's defining CPU cost.
			th.Exec(p, s.spin)
		}
	}
}

// submit translates a virtio-blk request into an NVMe command on the
// exclusive userspace queue, zero-copy: the PRP entries point straight at
// the guest's data pages through the vhost-user mapping.
func (s *SPDK) submit(sess *spdkSession, qi int, vq *virtio.Queue, r virtio.DeviceReq) {
	t, sector := r.BlkHeader(vq)
	cid := sess.freeCID[qi][len(sess.freeCID[qi])-1]
	sess.freeCID[qi] = sess.freeCID[qi][:len(sess.freeCID[qi])-1]

	shift := sess.part.Dev.Params().LBAShift
	var cmd nvme.Command
	switch t {
	case virtio.BlkTFlush:
		cmd = nvme.NewFlush(cid, sess.part.NSID)
	case virtio.BlkTDiscard:
		dsec, dnum := r.DiscardSegment(vq)
		cmd.SetOpcode(nvme.OpDSM)
		cmd.SetCID(cid)
		cmd.SetNSID(sess.part.NSID)
		cmd.SetSLBA(sess.part.Start + dsec*512>>shift)
		cmd.SetNLB(uint16(uint64(dnum)*512>>shift - 1))
	case virtio.BlkTIn, virtio.BlkTOut:
		op := nvme.OpRead
		if t == virtio.BlkTOut {
			op = nvme.OpWrite
		}
		pages := make([]uint64, 0, len(r.Data))
		for _, d := range r.Data {
			pages = append(pages, d.Addr)
		}
		listPage := sess.listPages[qi][cid]
		prp1, prp2, err := nvme.BuildPRP(sess.mem, pages, func() uint64 { return listPage })
		if err != nil {
			panic(err)
		}
		lba := sess.part.Start + sector*512>>shift
		blocks := uint32(r.DataLen()) >> shift
		cmd = nvme.NewRW(op, cid, sess.part.NSID, lba, blocks, prp1, prp2)
	}
	sess.inflight[qi][cid] = spdkTag{req: r, vq: vq, read: t == virtio.BlkTIn}
	if !sess.qps[qi].SQ.Push(&cmd) {
		panic("stack: spdk SQ full with free CIDs available")
	}
	sess.part.Dev.Ring(sess.qps[qi].SQ.ID)
}

// mappedMem is the SPDK process's address space: the VM's memory mapped at
// offset 0 (vhost-user), with SPDK's own arena above it for PRP lists.
type mappedMem struct {
	guest *guestmem.Memory
	local *guestmem.Memory
	split uint64
	lists []uint64
}

func newMappedMem(guest *guestmem.Memory, localSize uint64) *mappedMem {
	return &mappedMem{guest: guest, local: guestmem.New(localSize), split: guest.Size()}
}

// ReadAt implements nvme.Memory.
func (m *mappedMem) ReadAt(p []byte, addr uint64) error {
	if addr >= m.split {
		return m.local.ReadAt(p, addr-m.split)
	}
	return m.guest.ReadAt(p, addr)
}

// WriteAt implements nvme.Memory.
func (m *mappedMem) WriteAt(p []byte, addr uint64) error {
	if addr >= m.split {
		return m.local.WriteAt(p, addr-m.split)
	}
	return m.guest.WriteAt(p, addr)
}

// allocListPage returns a recycled or fresh PRP list page in local space.
func (m *mappedMem) allocListPage() uint64 {
	if n := len(m.lists); n > 0 {
		pg := m.lists[n-1]
		m.lists = m.lists[:n-1]
		return pg
	}
	return m.local.MustAllocPages(1) + m.split
}
