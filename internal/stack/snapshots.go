package stack

import (
	"nvmetro/internal/cow"
	"nvmetro/internal/device"
	"nvmetro/internal/metrics"
	"nvmetro/internal/vm"
)

// GoldenImage is a sealed master image plus the content-addressed chunk
// index shared by every clone derived from it. The master store is written
// once (provisioning the image), sealed, and then cloned onto fresh device
// namespaces — one per tenant — in O(layers) per clone.
type GoldenImage struct {
	h      *Host
	idx    *cow.Index
	master *cow.Store
	clones map[*vm.VM]*cow.Store
}

// NewGoldenImage creates an empty golden image of the given size on the
// host's device block size. cacheChunks > 0 fronts the shared chunk index
// with a content-addressed cache of that many chunks — the piece that lets
// one tenant's read warm the cache for every other tenant of the image.
func NewGoldenImage(h *Host, blocks uint64, cacheChunks uint64) *GoldenImage {
	idx := cow.NewIndex(cow.Config{
		BlockSize:   h.Dev.Params().BlockSize(),
		CacheChunks: cacheChunks,
	})
	return &GoldenImage{
		h:      h,
		idx:    idx,
		master: cow.NewStore(idx, blocks, nil),
		clones: make(map[*vm.VM]*cow.Store),
	}
}

// Master returns the writable master store — load the image through it,
// then Seal.
func (g *GoldenImage) Master() *cow.Store { return g.master }

// Index returns the shared chunk index.
func (g *GoldenImage) Index() *cow.Index { return g.idx }

// Seal freezes the master's dirty state into an immutable layer (no-op
// when clean). Clone seals implicitly; an explicit Seal pins the boundary
// where the golden content ends.
func (g *GoldenImage) Seal() *cow.Layer { return g.master.Snapshot() }

// BaseCRC returns the metadata CRC of the bottom layer (0 before any
// seal). It must never move once clones exist: tenant writes CoW-break
// into private chunks, they do not touch sealed layers.
func (g *GoldenImage) BaseCRC() uint32 {
	ls := g.master.Layers()
	if len(ls) == 0 {
		return 0
	}
	return ls[0].CRC()
}

// ContentCRC fingerprints the master's full logical content.
func (g *GoldenImage) ContentCRC() uint32 { return g.master.ContentCRC() }

// CloneStore derives one writable CoW store from the image (sealing first
// if needed) without attaching it to anything.
func (g *GoldenImage) CloneStore() *cow.Store { return g.master.Clone() }

// Collect exports the shared index (and cache) counters.
func (g *GoldenImage) Collect(cs *metrics.CounterSet) { g.idx.Collect(cs) }

// WithSnapshots arms the solution with a golden image: VMs provisioned
// via CloneFrom get a freshly cloned namespace instead of a partition of
// the device's flat namespace 1.
func (s *NVMetro) WithSnapshots(g *GoldenImage) *NVMetro {
	s.golden = g
	return s
}

// Golden returns the armed golden image (nil without WithSnapshots).
func (s *NVMetro) Golden() *GoldenImage { return s.golden }

// CloneFrom clones the golden image onto a fresh namespace of the host
// device and provisions v over the whole of it, composing with whatever
// else the solution wires (cache, QoS, integrity, supervision). The clone
// itself copies no data; the namespace is ready as soon as the metadata
// references are taken.
func (s *NVMetro) CloneFrom(v *vm.VM) vm.Disk {
	if s.golden == nil {
		panic("stack: CloneFrom without WithSnapshots")
	}
	c := s.golden.CloneStore()
	dev := s.h.Dev
	nsid := dev.NextNSID()
	dev.AddNamespace(nsid, c.Blocks(), c)
	s.golden.clones[v] = c
	return s.Provision(v, device.WholeNamespace(dev, nsid))
}

// CloneStoreFor returns the CoW store backing v's cloned namespace (nil
// when v was not provisioned via CloneFrom).
func (s *NVMetro) CloneStoreFor(v *vm.VM) *cow.Store {
	if s.golden == nil {
		return nil
	}
	return s.golden.clones[v]
}
