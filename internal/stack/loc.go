package stack

import (
	_ "embed"
	"strings"
)

// Source of the golden-image/clone wiring, embedded for Table I (the
// snapshot feature's footprint above the cow layer). Cross-package embeds
// are impossible, so the count lives next to the source.

//go:embed snapshots.go
var snapshotsGoSrc string

// SnapshotWiringLines reports the non-empty source line count of the
// solution-level snapshot/clone wiring for Table I.
func SnapshotWiringLines() int {
	n := 0
	for _, l := range strings.Split(snapshotsGoSrc, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}
