package stack

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/virtio"
	"nvmetro/internal/vm"
)

// QEMU is the userspace virtio-blk baseline: guest kicks trap to the VMM,
// iothreads run QEMU's coroutine block layer and submit to the host kernel
// via io_uring. Per-request userspace costs are high, but several iothreads
// share the work and the block layer merges adjacent sequential requests —
// which is how QEMU regains throughput at high queue depths in Fig. 3 while
// remaining the worst performer at low QD and in latency (Fig. 4).
type QEMU struct {
	h      *Host
	lastVM *qemuVM // test observability
}

// NewQEMU creates the solution.
func NewQEMU(h *Host) *QEMU { return &QEMU{h: h} }

// Name implements Solution.
func (s *QEMU) Name() string { return "QEMU" }

// Provision implements Solution.
func (s *QEMU) Provision(v *vm.VM, part device.Partition) vm.Disk {
	q := &qemuVM{
		h:         s.h,
		v:         v,
		bdev:      blockdev.NewNVMeBlockDev(s.h.Env, part, s.h.CPU, s.h.guestCores, s.h.Params.Block),
		irqs:      make(map[*virtio.Queue]func()),
		plugSince: make(map[*virtio.Queue]sim.Time),
	}
	disk := virtio.NewBlkDisk(v, q, part.Info(), 256, s.h.Params.Driver)
	q.queues = disk.Queues()
	for i := 0; i < s.h.Params.QEMUIOThreads; i++ {
		it := &qemuIOThread{
			th:   s.h.HostThread("qemu"),
			ring: blockdev.NewURing(s.h.Env, q.bdev, s.h.Params.URing),
			wake: sim.NewCond(s.h.Env),
		}
		// io_uring completions wake the iothread that owns the ring.
		it.ring.OnComp = func() {
			if it.asleep {
				it.asleep = false
				it.wake.Signal(nil)
			}
		}
		q.threads = append(q.threads, it)
		s.h.Env.Go(fmt.Sprintf("qemu-iothread%d-vm%d", i, v.ID), func(p *sim.Proc) {
			q.iothread(p, it)
		})
	}
	s.lastVM = q
	return disk
}

// qemuVM is one QEMU process: iothreads work-steal across all virtqueues.
type qemuVM struct {
	h         *Host
	v         *vm.VM
	bdev      *blockdev.NVMeBlockDev
	queues    []*virtio.Queue
	threads   []*qemuIOThread
	irqs      map[*virtio.Queue]func()
	plugSince map[*virtio.Queue]sim.Time
	busy      int // iothreads currently processing (kick suppression)
	inflightN int // merged submissions in flight across all iothreads

	// Stats
	Requests, Merged uint64
	Sleeps, Turns    uint64
}

// qemuIOThread is one event-loop thread with its own io_uring.
type qemuIOThread struct {
	th     *sim.Thread
	ring   *blockdev.URing
	wake   *sim.Cond
	asleep bool
}

// Kick implements virtio.Transport: an ioeventfd MMIO write traps the vCPU
// out of guest mode. Notification is suppressed (EVENT_IDX) while an
// iothread is already busy.
func (q *qemuVM) Kick(p *sim.Proc, vcpu *sim.Thread, vq *virtio.Queue) {
	if q.busy > 0 {
		return
	}
	vcpu.Exec(p, q.v.Costs.VMExit)
	q.hintAny()
}

// SetIRQ implements virtio.Transport.
func (q *qemuVM) SetIRQ(vq *virtio.Queue, fn func()) { q.irqs[vq] = fn }

// hintAny wakes one sleeping iothread to pick up new vring work.
func (q *qemuVM) hintAny() {
	for _, it := range q.threads {
		if it.asleep {
			it.asleep = false
			it.wake.Signal(nil)
			return
		}
	}
}

// inflight tracks one merged submission.
type qemuInflight struct {
	reqs []virtio.DeviceReq
	vq   *virtio.Queue
	read bool
	buf  []byte
}

func (q *qemuVM) iothread(p *sim.Proc, it *qemuIOThread) {
	th, ring := it.th, it.ring
	par := q.h.Params
	inflight := make(map[uint64]*qemuInflight)
	var nextID uint64
	var idleSpin sim.Duration
	turnDue := true
	var lastWork sim.Time
	pollWorthwhile := false

	// The event-loop turn (ppoll return, fd dispatch, bottom halves) is
	// paid when a sleeping thread wakes to process work; a thread in the
	// adaptive-polling window picks work up without it.
	payTurn := func() {
		if turnDue {
			turnDue = false
			q.Turns++
			th.Exec(p, par.QEMUBatch)
		}
	}

	for {
		did := false
		plugged := false
		q.busy++

		// Reap io_uring completions: copy read data into guest pages,
		// complete chains, inject the interrupt.
		reaped := ring.Reap(p, th, 32)
		if len(reaped) > 0 {
			payTurn()
		}
		for _, cqe := range reaped {
			fl := inflight[cqe.UserData]
			delete(inflight, cqe.UserData)
			q.inflightN--
			// One completion dispatch per (merged) request, plus a small
			// per-element cost to unmap and return each chain.
			th.Exec(p, par.QEMUComplete+sim.Microsecond*sim.Duration(len(fl.reqs)))
			status := byte(0)
			if !cqe.Status.OK() {
				status = 1
			}
			off := 0
			for i := range fl.reqs {
				r := &fl.reqs[i]
				if fl.read && status == 0 {
					r.WriteData(fl.vq, fl.buf[off:off+r.DataLen()])
				}
				off += r.DataLen()
				r.Complete(fl.vq, status)
			}
			th.Exec(p, par.QEMUInject) // KVM interrupt injection ioctl
			if fn := q.irqs[fl.vq]; fn != nil {
				fn()
			}
			did = true
		}

		// Pop available chains, merging sequential neighbours. Under load
		// (a deep device pipeline) plug briefly so sequential requests
		// accumulate and merge, as QEMU's blk_io_plug does.
		for _, vq := range q.queues {
			avail := int(vq.Ring.AvailCount())
			if avail == 0 {
				continue
			}
			if par.QEMUMerge && q.inflightN >= 1 && avail < 6 {
				since, seen := q.plugSince[vq]
				if !seen {
					q.plugSince[vq] = p.Now()
					plugged = true
					continue
				}
				if p.Now().Sub(since) < 10*sim.Microsecond {
					plugged = true
					continue
				}
			}
			delete(q.plugSince, vq)
			var batch []virtio.DeviceReq
			var sectors []uint64
			var types []uint32
			for len(batch) < 32 {
				head, ok := vq.Ring.PopAvail()
				if !ok {
					break
				}
				r, err := virtio.ParseChain(vq, head)
				if err != nil {
					panic(err)
				}
				t, sector := r.BlkHeader(vq)
				batch = append(batch, r)
				sectors = append(sectors, sector)
				types = append(types, t)
			}
			if len(batch) == 0 {
				continue
			}
			did = true
			q.Requests += uint64(len(batch))
			payTurn()
			th.Exec(p, par.QEMUElem*sim.Duration(len(batch)))

			for i := 0; i < len(batch); {
				r := batch[i]
				t := types[i]
				switch t {
				case virtio.BlkTFlush:
					fr := r
					fvq := vq
					bio := &blockdev.Bio{Op: blockdev.BioFlush, OnDone: func(st nvme.Status) {
						status := byte(0)
						if !st.OK() {
							status = 1
						}
						fr.Complete(fvq, status)
						if fn := q.irqs[fvq]; fn != nil {
							fn()
						}
					}}
					q.bdev.SubmitBio(p, th, bio)
					i++
					continue
				case virtio.BlkTDiscard:
					sector, nsect := r.DiscardSegment(vq)
					fr := r
					fvq := vq
					bio := &blockdev.Bio{Op: blockdev.BioDiscard, Sector: sector, NSect: nsect, OnDone: func(st nvme.Status) {
						fr.Complete(fvq, 0)
						if fn := q.irqs[fvq]; fn != nil {
							fn()
						}
					}}
					q.bdev.SubmitBio(p, th, bio)
					i++
					continue
				}
				// Merge run of adjacent same-type requests.
				j := i + 1
				total := r.DataLen()
				if par.QEMUMerge {
					for j < len(batch) && types[j] == t &&
						sectors[j] == sectors[j-1]+uint64(batch[j-1].DataLen())/512 &&
						total+batch[j].DataLen() <= par.QEMUMergeMax {
						total += batch[j].DataLen()
						j++
					}
				}
				fl := &qemuInflight{reqs: batch[i:j], vq: vq, read: t == virtio.BlkTIn, buf: make([]byte, total)}
				if t == virtio.BlkTOut {
					off := 0
					for k := i; k < j; k++ {
						batch[k].ReadData(vq, fl.buf[off:off+batch[k].DataLen()])
						off += batch[k].DataLen()
					}
				}
				if j > i+1 {
					q.Merged += uint64(j - i - 1)
				}
				nextID++
				inflight[nextID] = fl
				q.inflightN++
				th.Exec(p, par.QEMUSubmit) // block layer, per merged request
				op := blockdev.BioRead
				if t == virtio.BlkTOut {
					op = blockdev.BioWrite
				}
				ring.Submit(p, th, op, sectors[i], fl.buf, nextID)
				i = j
			}
		}

		q.busy--
		if !did {
			// Adaptive polling (iothread poll-max-ns): spin only while
			// recent event spacing suggests polling will succeed;
			// otherwise block in ppoll and pay the wake-up plus a fresh
			// event-loop turn — the QD1 regime.
			if plugged || (pollWorthwhile && idleSpin < par.QEMUPollNS) {
				// Keep polling: either a plug timer is running or event
				// spacing suggests more work is imminent.
				th.Exec(p, sim.Microsecond)
				if !plugged {
					idleSpin += sim.Microsecond
				}
				continue
			}
			pollWorthwhile = false
			it.asleep = true
			q.Sleeps++
			wakeWait(p, it.wake, par.WakeLat)
			it.asleep = false
			turnDue = true
			idleSpin = 0
		} else {
			if gap := p.Now().Sub(lastWork); gap < par.QEMUPollNS {
				pollWorthwhile = true
			}
			lastWork = p.Now()
			idleSpin = 0
		}
	}
}

func (q *qemuVM) anyAvail() bool {
	for _, vq := range q.queues {
		if vq.Ring.AvailPending() {
			return true
		}
	}
	return false
}
