package stack

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/dm"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// Params collects every calibration constant of the testbed model in one
// place. Rationale for the values:
//
//   - Device: Samsung 970 EVO Plus class (see device.Default970EvoPlus).
//   - Virt costs: KVM trap/IRQ microbenchmark orders on Ivy Bridge Xeons.
//   - WakeLat: scheduler wake-up plus C-state exit for an idle host thread;
//     this is the dominant tax on the event-driven baselines (vhost, QEMU)
//     at low load and the reason the paper's polling solutions (NVMetro,
//     MDev, SPDK) share the low-latency cluster in Fig. 4.
//   - QEMU per-request costs are large (coroutine-based block layer,
//     request plug/unplug, userspace dispatch); they reproduce the ~2.7x
//     QD1 gap of Fig. 3 and the high QEMU latencies of Fig. 4.
//   - QEMUMerge: QEMU's block layer coalesces adjacent sequential requests,
//     which is how it overtakes single-worker NVMetro at 16K/QD128/1 job.
type Params struct {
	Device device.Params
	Virt   vm.VirtCosts
	Router core.RouterCosts
	Driver vm.DriverCosts
	Block  blockdev.Costs
	URing  blockdev.URingCosts
	UIF    uif.Costs
	Crypt  dm.CryptParams
	Enc    storfn.EncryptorCosts

	// WakeLat is the wake-up latency of a sleeping host service thread.
	WakeLat sim.Duration
	// GuestWakeLat is the cost of waking a halted vCPU via virtual IRQ.
	GuestWakeLat sim.Duration

	// MDev mediation cost per command (in-module LBA translation).
	MDevMediate sim.Duration

	// QEMU virtio-blk model.
	QEMUIOThreads int          // worker threads per VM
	QEMUPollNS    sim.Duration // iothread adaptive poll window (poll-max-ns)
	QEMUBatch     sim.Duration // event-loop turn: plug/unplug, BH dispatch
	QEMUElem      sim.Duration // virtqueue element pop + guest page map/unmap
	QEMUSubmit    sim.Duration // coroutine + block layer, per (merged) request
	QEMUComplete  sim.Duration // completion dispatch, per request
	QEMUInject    sim.Duration // interrupt injection via KVM ioctl
	QEMUMerge     bool         // coalesce adjacent sequential requests
	QEMUMergeMax  int          // max merged size in bytes

	// vhost-scsi model.
	VhostKick     sim.Duration // ioeventfd vmexit on the vCPU
	VhostParse    sim.Duration // CDB decode + LIO target dispatch per request
	VhostComplete sim.Duration // response build + used-ring update
	VhostInject   sim.Duration // irqfd injection
	VhostWorkers  int          // kernel worker threads per VM

	// SPDK vhost-user model.
	SPDKReactors  int          // dedicated polling cores for the SPDK process
	SPDKParse     sim.Duration // vring pop + bdev dispatch per request
	SPDKNVMe      sim.Duration // userspace NVMe driver submit per command
	SPDKInject    sim.Duration // interrupt injection via irqfd
	SPDKQueueSize uint32

	// Passthrough model.
	PTHostIRQ sim.Duration // host-side cost of forwarding a device IRQ
}

// DefaultParams returns the calibrated testbed (PowerEdge R420-class).
func DefaultParams() Params {
	return Params{
		Device: device.Default970EvoPlus(),
		Virt:   vm.DefaultVirtCosts(),
		Router: core.DefaultRouterCosts(),
		Driver: vm.DefaultDriverCosts(),
		Block:  blockdev.DefaultCosts(),
		URing:  blockdev.DefaultURingCosts(),
		UIF:    uif.DefaultCosts(),
		Crypt:  dm.DefaultCryptParams(),
		Enc:    storfn.DefaultEncryptorCosts(),

		WakeLat:      15 * sim.Microsecond,
		GuestWakeLat: 5 * sim.Microsecond,
		MDevMediate:  150 * sim.Nanosecond,

		QEMUIOThreads: 4,
		QEMUPollNS:    32 * sim.Microsecond,
		QEMUBatch:     30 * sim.Microsecond,
		QEMUElem:      2 * sim.Microsecond,
		QEMUSubmit:    8 * sim.Microsecond,
		QEMUComplete:  4 * sim.Microsecond,
		QEMUInject:    8 * sim.Microsecond,
		QEMUMerge:     true,
		QEMUMergeMax:  128 << 10,

		VhostKick:     3 * sim.Microsecond,
		VhostParse:    12 * sim.Microsecond,
		VhostComplete: 3 * sim.Microsecond,
		VhostInject:   1500 * sim.Nanosecond,
		VhostWorkers:  1,

		SPDKReactors:  2,
		SPDKParse:     800 * sim.Nanosecond,
		SPDKNVMe:      800 * sim.Nanosecond,
		SPDKInject:    1000 * sim.Nanosecond,
		SPDKQueueSize: 256,

		PTHostIRQ: 1200 * sim.Nanosecond,
	}
}
