package stack_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/vm"
)

// TestCloneRoundTrip provisions two VMs on clones of one golden image
// (namespaces 2 and 3 of the device) and checks, through the full router
// fast path: golden content is visible to both, a write by one tenant is
// guest-durable for it, invisible to the other, and absent from the golden
// image.
func TestCloneRoundTrip(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	p := stack.DefaultParams()
	p.Device.JitterPct, p.Device.TailProb = 0, 0
	h := stack.NewHost(env, 12, 4, p, device.NewMemStore(512))

	const blocks = 4096
	img := stack.NewGoldenImage(h, blocks, 64)
	payload := make([]byte, blocks*512)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	img.Master().WriteBlocks(0, payload)
	img.Seal()
	goldCRC := img.ContentCRC()
	baseCRC := img.BaseCRC()

	v1 := h.NewVM(1, 16<<20)
	v2 := h.NewVM(1, 16<<20)
	s1 := stack.NewNVMetro(h).WithSnapshots(img)
	s2 := stack.NewNVMetro(h).WithSnapshots(img)
	d1 := s1.CloneFrom(v1)
	d2 := s2.CloneFrom(v2)
	if s1.ControllerFor(v1).Partition().NSID < 2 || s2.ControllerFor(v2).Partition().NSID < 2 {
		t.Fatal("clones not on fresh namespaces")
	}

	finished := false
	env.Go("test", func(pr *sim.Proc) {
		defer env.Stop()
		readBack := func(v *vm.VM, d vm.Disk, lba uint64) []byte {
			base, pages, _ := v.Mem.AllocBuffer(4096)
			r := &vm.Req{Op: vm.OpRead, LBA: lba, Blocks: 8, Buf: base, BufPages: pages}
			if st := vm.SubmitAndWait(pr, d, v.VCPU(0), r); !st.OK() {
				t.Errorf("read: %v", st)
			}
			got := make([]byte, 4096)
			v.Mem.ReadAt(got, base)
			return got
		}
		// Both tenants see the golden bytes.
		if !bytes.Equal(readBack(v1, d1, 256), payload[256*512:256*512+4096]) {
			t.Error("tenant 1 does not see golden content")
		}
		if !bytes.Equal(readBack(v2, d2, 256), payload[256*512:256*512+4096]) {
			t.Error("tenant 2 does not see golden content")
		}
		// Tenant 1 writes; only tenant 1 sees it.
		mine := make([]byte, 4096)
		for i := range mine {
			mine[i] = 0xAB
		}
		base, pages, _ := v1.Mem.AllocBuffer(4096)
		v1.Mem.WriteAt(mine, base)
		w := &vm.Req{Op: vm.OpWrite, LBA: 256, Blocks: 8, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(pr, d1, v1.VCPU(0), w); !st.OK() {
			t.Errorf("write: %v", st)
		}
		if !bytes.Equal(readBack(v1, d1, 256), mine) {
			t.Error("tenant 1 write not durable")
		}
		if !bytes.Equal(readBack(v2, d2, 256), payload[256*512:256*512+4096]) {
			t.Error("tenant 1 write leaked into tenant 2")
		}
		finished = true
	})
	env.RunUntil(sim.Time(30 * sim.Second))
	if !finished {
		t.Fatal("did not finish")
	}

	// CoW accounting and isolation invariants.
	c1, c2 := s1.CloneStoreFor(v1), s2.CloneStoreFor(v2)
	if c1.CowBreaks == 0 {
		t.Error("tenant write did not CoW-break")
	}
	if c2.CowBreaks != 0 {
		t.Error("idle tenant CoW-broke")
	}
	if c1.DivergenceCRC() == 0 || c2.DivergenceCRC() != 0 {
		t.Errorf("divergence CRCs wrong: %08x / %08x", c1.DivergenceCRC(), c2.DivergenceCRC())
	}
	if img.BaseCRC() != baseCRC || img.ContentCRC() != goldCRC {
		t.Error("golden image changed under tenant writes")
	}
	// Cross-tenant sharing visible to the shared cache.
	if img.Index().Cache().Hits() == 0 {
		t.Error("no shared-cache hits across tenants")
	}
}
