package stack

import (
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// MDev is the MDev-NVMe baseline (Peng et al., ATC'18 / Levitsky's VFIO
// mediated device): virtual queue shadowing with an actively-polling host
// kernel thread that performs LBA translation inside the module. NVMetro is
// built on this mechanism; the delta between the two is exactly the
// classifier/router layer.
type MDev struct {
	h *Host
}

// NewMDev creates the solution (one polling thread per VM, as in the
// paper's main evaluations).
func NewMDev(h *Host) *MDev { return &MDev{h: h} }

// Name implements Solution.
func (s *MDev) Name() string { return "MDev" }

// Provision implements Solution.
func (s *MDev) Provision(v *vm.VM, part device.Partition) vm.Disk {
	port := &mdevPort{
		h: s.h, v: v, part: part,
		wake: sim.NewCond(s.h.Env),
		th:   s.h.HostThread("mdev"),
	}
	s.h.Env.Go(fmt.Sprintf("mdev-poll-vm%d", v.ID), port.poll)
	return vm.NewNVMeDisk(v, port, 128, s.h.Params.Driver)
}

type mdevVQ struct {
	qid       uint16
	vsq       *nvme.SQ
	vcq       *nvme.CQ
	hqp       *nvme.QueuePair
	irq       func()
	freeTags  []uint16
	guestCIDs []uint16
}

type mdevPort struct {
	h           *Host
	v           *vm.VM
	part        device.Partition
	vqs         []*mdevVQ
	th          *sim.Thread
	nextQID     uint16
	wake        *sim.Cond
	asleep      bool
	outstanding int
	badQIDs     uint64 // guest SetIRQ calls naming an unknown queue
}

func (p *mdevPort) Namespace() nvme.NamespaceInfo { return p.part.Info() }

func (p *mdevPort) CreateQP(depth uint32) *nvme.QueuePair {
	p.nextQID++
	vq := &mdevVQ{
		qid:       p.nextQID,
		vsq:       nvme.NewSQ(p.nextQID, depth),
		vcq:       nvme.NewCQ(p.nextQID, depth),
		hqp:       p.part.Dev.CreateQueuePair(depth, p.v.Mem),
		guestCIDs: make([]uint16, depth),
	}
	for i := uint16(0); i < uint16(depth); i++ {
		vq.freeTags = append(vq.freeTags, i)
	}
	p.vqs = append(p.vqs, vq)
	return &nvme.QueuePair{SQ: vq.vsq, CQ: vq.vcq}
}

func (p *mdevPort) Ring(qid uint16) {
	if p.asleep {
		p.asleep = false
		p.wake.Signal(nil)
	}
}

func (p *mdevPort) SetIRQ(qid uint16, fn func()) {
	for _, vq := range p.vqs {
		if vq.qid == qid {
			vq.irq = fn
			return
		}
	}
	// Guest configuration error: count and ignore rather than panic.
	p.badQIDs++
}

// poll is the MDev polling loop: shadow VSQs into host queues with
// in-module mediation, shadow HCQs back into VCQs.
func (p *mdevPort) poll(pr *sim.Proc) {
	c := p.h.Params
	for {
		var work sim.Duration
		type eff func()
		var effects []eff
		for _, vq := range p.vqs {
			vq := vq
			work += c.Router.PollVQ
			var cmd nvme.Command
			for !vq.vsq.Empty() && len(vq.freeTags) > 0 && !vq.hqp.SQ.Full() {
				vq.vsq.Pop(&cmd)
				p.outstanding++
				work += c.MDevMediate
				gcid := cmd.CID()
				// In-module mediation: bounds check + LBA translation.
				bad := false
				if cmd.IsIO() || cmd.Opcode() == nvme.OpDSM {
					dlba, ok := p.part.Translate(cmd.SLBA(), cmd.Blocks())
					if !ok {
						bad = true
					} else {
						cmd.SetSLBA(dlba)
					}
				}
				if bad {
					effects = append(effects, func() {
						vq.vcq.Post(gcid, vq.qid, vq.vsq.Head(), nvme.SCLBAOutOfRange, 0)
						p.outstanding--
					})
					continue
				}
				htag := vq.freeTags[len(vq.freeTags)-1]
				vq.freeTags = vq.freeTags[:len(vq.freeTags)-1]
				vq.guestCIDs[htag] = gcid
				cmd.SetCID(htag)
				hc := cmd
				effects = append(effects, func() {
					vq.hqp.SQ.Push(&hc)
					p.part.Dev.Ring(vq.hqp.SQ.ID)
				})
			}
			var e nvme.Completion
			newDone := 0
			for vq.hqp.CQ.Pop(&e) {
				htag := e.CID()
				gcid := vq.guestCIDs[htag]
				vq.freeTags = append(vq.freeTags, htag)
				st := e.Status()
				work += c.Router.CompleteVCQ
				effects = append(effects, func() {
					vq.vcq.Post(gcid, vq.qid, vq.vsq.Head(), st, 0)
					p.outstanding--
				})
				newDone++
			}
			if newDone > 0 {
				work += c.Router.IRQInject
				effects = append(effects, func() {
					if vq.irq != nil {
						vq.irq()
					}
				})
			}
		}
		if len(effects) == 0 {
			if p.outstanding == 0 {
				p.asleep = true
				p.wake.Wait()
				continue
			}
			p.th.Exec(pr, work)
			continue
		}
		p.th.Exec(pr, work)
		for _, fn := range effects {
			fn()
		}
	}
}
