package stack_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/fio"
	"nvmetro/internal/nvme"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/vm"
)

// build creates a testbed with one 4-vCPU VM provisioned by the given
// solution constructor.
func build(mk func(h *stack.Host) stack.Solution, backing device.Store) (*sim.Env, *stack.Host, *vm.VM, vm.Disk) {
	env := sim.New(1)
	p := stack.DefaultParams()
	p.Device.JitterPct, p.Device.TailProb = 0, 0
	h := stack.NewHost(env, 12, 4, p, backing)
	v := h.NewVM(4, 64<<20)
	sol := mk(h)
	disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))
	return env, h, v, disk
}

var allSolutions = map[string]func(h *stack.Host) stack.Solution{
	"NVMetro":     func(h *stack.Host) stack.Solution { return stack.NewNVMetro(h) },
	"MDev":        func(h *stack.Host) stack.Solution { return stack.NewMDev(h) },
	"Passthrough": func(h *stack.Host) stack.Solution { return stack.NewPassthrough(h) },
	"QEMU":        func(h *stack.Host) stack.Solution { return stack.NewQEMU(h) },
	"Vhost":       func(h *stack.Host) stack.Solution { return stack.NewVhostSCSI(h) },
	"SPDK":        func(h *stack.Host) stack.Solution { return stack.NewSPDK(h) },
}

// TestAllSolutionsDataIntegrity writes and reads back through every stack.
func TestAllSolutionsDataIntegrity(t *testing.T) {
	for name, mk := range allSolutions {
		t.Run(name, func(t *testing.T) {
			env, _, v, disk := build(mk, device.NewMemStore(512))
			defer env.Close()
			finished := false
			env.Go("test", func(p *sim.Proc) {
				defer env.Stop()
				data := make([]byte, 8192)
				for i := range data {
					data[i] = byte(i * 3)
				}
				base, pages, _ := v.Mem.AllocBuffer(8192)
				v.Mem.WriteAt(data, base)
				w := &vm.Req{Op: vm.OpWrite, LBA: 128, Blocks: 16, Buf: base, BufPages: pages}
				if st := vm.SubmitAndWait(p, disk, v.VCPU(0), w); !st.OK() {
					t.Errorf("write: %v", st)
					return
				}
				v.Mem.WriteAt(make([]byte, 8192), base)
				r := &vm.Req{Op: vm.OpRead, LBA: 128, Blocks: 16, Buf: base, BufPages: pages}
				if st := vm.SubmitAndWait(p, disk, v.VCPU(0), r); !st.OK() {
					t.Errorf("read: %v", st)
					return
				}
				got := make([]byte, 8192)
				v.Mem.ReadAt(got, base)
				if !bytes.Equal(got, data) {
					t.Error("round trip mismatch")
				}
				// Flush must be supported everywhere.
				f := &vm.Req{Op: vm.OpFlush}
				if st := vm.SubmitAndWait(p, disk, v.VCPU(0), f); !st.OK() {
					t.Errorf("flush: %v", st)
				}
				finished = true
			})
			env.RunUntil(sim.Time(30 * sim.Second))
			if !finished {
				t.Fatal("did not finish")
			}
		})
	}
}

// runFio runs a short fio config against one solution.
func runFio(t *testing.T, mk func(h *stack.Host) stack.Solution, cfg fio.Config, jobs int) fio.Result {
	t.Helper()
	env, h, v, disk := build(mk, device.NullStore{})
	defer env.Close()
	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i)})
	}
	return fioRun(env, h, targets, cfg)
}

func fioRun(env *sim.Env, h *stack.Host, targets []fio.Target, cfg fio.Config) fio.Result {
	return fio.Run(env, h.CPU, targets, cfg)
}

func TestFioThroughputOrderingQD1(t *testing.T) {
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1,
		Warmup: 2 * sim.Millisecond, Duration: 20 * sim.Millisecond}
	iops := map[string]float64{}
	for name, mk := range allSolutions {
		r := runFio(t, mk, cfg, 1)
		if r.Errors > 0 {
			t.Fatalf("%s: %d errors", name, r.Errors)
		}
		if r.Ops < 20 {
			t.Fatalf("%s: only %d ops completed", name, r.Ops)
		}
		iops[name] = r.IOPS()
		t.Logf("%-12s %8.1f kIOPS p50=%5.1fus p99=%5.1fus cpu=%.2f",
			name, r.KIOPS(), float64(r.Lat.Median())/1e3, float64(r.Lat.P99())/1e3, r.CPUCores)
	}
	// Paper Fig. 3 @512B RR QD1: NVMetro ~ MDev ~ SPDK ~ Passthrough;
	// QEMU much slower (NVMetro ~2.7x QEMU); vhost in between.
	if iops["NVMetro"] < iops["QEMU"]*2.0 {
		t.Errorf("NVMetro (%.0f) should be >=2x QEMU (%.0f) at QD1", iops["NVMetro"], iops["QEMU"])
	}
	if iops["NVMetro"] < iops["MDev"]*0.93 {
		t.Errorf("NVMetro (%.0f) should be within 7%% of MDev (%.0f)", iops["NVMetro"], iops["MDev"])
	}
	if iops["Vhost"] > iops["NVMetro"] {
		t.Errorf("vhost (%.0f) should not beat NVMetro (%.0f)", iops["Vhost"], iops["NVMetro"])
	}
}

func TestFioLatencyOrderingAtFixedRate(t *testing.T) {
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1, RateIOPS: 10000,
		Warmup: 2 * sim.Millisecond, Duration: 20 * sim.Millisecond}
	med := map[string]int64{}
	for name, mk := range allSolutions {
		r := runFio(t, mk, cfg, 1)
		med[name] = r.Lat.Median()
		t.Logf("%-12s p50=%6.1fus p99=%6.1fus", name, float64(r.Lat.Median())/1e3, float64(r.Lat.P99())/1e3)
	}
	// Fig. 4: polling cluster (NVMetro/MDev/SPDK) < passthrough < vhost < QEMU.
	if med["Passthrough"] <= med["NVMetro"] {
		t.Errorf("passthrough median (%d) should exceed NVMetro (%d)", med["Passthrough"], med["NVMetro"])
	}
	if med["Vhost"] <= med["NVMetro"] {
		t.Errorf("vhost median (%d) should exceed NVMetro (%d)", med["Vhost"], med["NVMetro"])
	}
	if med["QEMU"] <= med["Vhost"] {
		t.Errorf("QEMU median (%d) should exceed vhost (%d)", med["QEMU"], med["Vhost"])
	}
}

func TestFioHighQDThroughput(t *testing.T) {
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 128,
		Warmup: 2 * sim.Millisecond, Duration: 20 * sim.Millisecond}
	for _, name := range []string{"NVMetro", "SPDK", "Passthrough"} {
		r := runFio(t, allSolutions[name], cfg, 4)
		if r.Errors > 0 {
			t.Fatalf("%s errors: %d", name, r.Errors)
		}
		// Device saturates around 615k IOPS; polling stacks should get
		// most of it with 4 jobs at QD128.
		if r.IOPS() < 350e3 {
			t.Errorf("%s: %.0f IOPS at QD128/4jobs, expected near device saturation", name, r.IOPS())
		}
		t.Logf("%-12s %8.1f kIOPS cpu=%.2f", name, r.KIOPS(), r.CPUCores)
	}
}

func TestSPDKBurnsMostCPU(t *testing.T) {
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1,
		Warmup: 2 * sim.Millisecond, Duration: 20 * sim.Millisecond}
	spdk := runFio(t, allSolutions["SPDK"], cfg, 1)
	pt := runFio(t, allSolutions["Passthrough"], cfg, 1)
	if spdk.CPUCores <= pt.CPUCores {
		t.Errorf("SPDK cpu (%.2f) should exceed passthrough (%.2f)", spdk.CPUCores, pt.CPUCores)
	}
	// SPDK reactors never sleep: at least SPDKReactors cores busy.
	if spdk.CPUCores < 1.9 {
		t.Errorf("SPDK cpu %.2f, want ~2 spinning reactors", spdk.CPUCores)
	}
}

func TestQEMUMergingHelpsSequential(t *testing.T) {
	cfg := fio.Config{Mode: fio.SeqRead, BlockSize: 16384, QD: 128,
		Warmup: 2 * sim.Millisecond, Duration: 20 * sim.Millisecond}
	qemu := runFio(t, allSolutions["QEMU"], cfg, 1)
	nvmetro := runFio(t, allSolutions["NVMetro"], cfg, 1)
	t.Logf("QEMU %.1f kIOPS vs NVMetro %.1f kIOPS", qemu.KIOPS(), nvmetro.KIOPS())
	// Fig. 3: QEMU overtakes NVMetro at 16K/QD128/1 job (19-32%).
	if qemu.IOPS() < nvmetro.IOPS()*1.05 {
		t.Errorf("QEMU (%.0f) should beat NVMetro (%.0f) at 16K/QD128/1job", qemu.IOPS(), nvmetro.IOPS())
	}
}

func TestNVMetroScalabilityWithSharedWorker(t *testing.T) {
	// Fig. 5 setup: small VMs, shared NVMetro worker, partitioned namespace.
	run := func(nvms int) float64 {
		env := sim.New(1)
		p := stack.DefaultParams()
		p.Device.JitterPct, p.Device.TailProb = 0, 0
		h := stack.NewHost(env, 12, 8, p, device.NullStore{})
		defer env.Close()
		sol := stack.NewNVMetroShared(h, 1)
		parts := device.Carve(h.Dev, 1, nvms)
		var targets []fio.Target
		for i := 0; i < nvms; i++ {
			v := h.NewVM(1, 16<<20)
			disk := sol.Provision(v, parts[i])
			targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(0)})
		}
		r := fio.Run(env, h.CPU, targets, fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 32,
			Warmup: 2 * sim.Millisecond, Duration: 15 * sim.Millisecond})
		if r.Errors > 0 {
			t.Fatalf("errors with %d VMs: %d", nvms, r.Errors)
		}
		return r.IOPS()
	}
	one := run(1)
	four := run(4)
	t.Logf("1 VM: %.0f IOPS, 4 VMs: %.0f IOPS", one, four)
	if four < one*1.5 {
		t.Errorf("throughput must scale with VM count (1 VM %.0f, 4 VMs %.0f)", one, four)
	}
}

// TestWithQoSAfterProvision is the regression for WithQoS called after a
// router already exists: the arbiter must be enabled on the live router —
// not silently dropped — with already-provisioned VMs registered as
// tenants, so a later SetQoS works in either configuration.
func TestWithQoSAfterProvision(t *testing.T) {
	p := stack.DefaultParams()
	p.Device.JitterPct, p.Device.TailProb = 0, 0

	// Shared-worker configuration.
	env := sim.New(1)
	defer env.Close()
	h := stack.NewHost(env, 12, 4, p, device.NullStore{})
	sol := stack.NewNVMetroShared(h, 1)
	parts := device.Carve(h.Dev, 1, 2)
	v1 := h.NewVM(1, 16<<20)
	sol.Provision(v1, parts[0])
	sol.WithQoS(qos.Config{})
	if sol.QoSArbiter() == nil {
		t.Fatal("WithQoS after Provision left the shared router without an arbiter")
	}
	if n := len(sol.QoSArbiter().Tenants()); n != 1 {
		t.Fatalf("tenants = %d, want 1 (already-provisioned VM must register)", n)
	}
	sol.SetQoS(v1, qos.TenantConfig{Weight: 2}) // must not panic
	v2 := h.NewVM(1, 16<<20)
	sol.Provision(v2, parts[1])
	if n := len(sol.QoSArbiter().Tenants()); n != 2 {
		t.Fatalf("tenants = %d, want 2 after provisioning another VM", n)
	}

	// Router-per-VM configuration: the late WithQoS reaches the routers
	// already created for provisioned VMs through their controllers.
	env2 := sim.New(1)
	defer env2.Close()
	h2 := stack.NewHost(env2, 12, 4, p, device.NullStore{})
	solo := stack.NewNVMetro(h2)
	v3 := h2.NewVM(1, 16<<20)
	solo.Provision(v3, device.WholeNamespace(h2.Dev, 1))
	solo.WithQoS(qos.Config{})
	if solo.ControllerFor(v3).Tenant() == nil {
		t.Fatal("per-VM router tenant not registered by late WithQoS")
	}
	solo.SetQoS(v3, qos.TenantConfig{IOPS: 1000}) // must not panic
}

// TestEncryptedStacksAgree writes with NVMetro encryption and reads back
// with dm-crypt through vhost — they share the on-disk format.
func TestEncryptedStacksAgree(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 64)
	store := device.NewMemStore(512)

	// Write through NVMetro encryption.
	env1, _, v1, d1 := build(func(h *stack.Host) stack.Solution {
		return stack.NewNVMetro(h).WithEncryption(key, false)
	}, store)
	data := bytes.Repeat([]byte{0xaa, 0x11}, 1024)
	ok := false
	env1.Go("w", func(p *sim.Proc) {
		defer env1.Stop()
		base, pages, _ := v1.Mem.AllocBuffer(2048)
		v1.Mem.WriteAt(data, base)
		w := &vm.Req{Op: vm.OpWrite, LBA: 64, Blocks: 4, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, d1, v1.VCPU(0), w); !st.OK() {
			t.Errorf("nvmetro write: %v", st)
			return
		}
		ok = true
	})
	env1.RunUntil(sim.Time(10 * sim.Second))
	env1.Close()
	if !ok {
		t.Fatal("write did not finish")
	}

	// Read back through dm-crypt+vhost-scsi over the same store.
	env2 := sim.New(2)
	p2 := stack.DefaultParams()
	p2.Device.JitterPct, p2.Device.TailProb = 0, 0
	h2 := stack.NewHost(env2, 12, 4, p2, store)
	v2 := h2.NewVM(1, 32<<20)
	d2 := stack.NewVhostDMCrypt(h2, key).Provision(v2, device.WholeNamespace(h2.Dev, 1))
	ok = false
	env2.Go("r", func(p *sim.Proc) {
		defer env2.Stop()
		base, pages, _ := v2.Mem.AllocBuffer(2048)
		r := &vm.Req{Op: vm.OpRead, LBA: 64, Blocks: 4, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, d2, v2.VCPU(0), r); !st.OK() {
			t.Errorf("dm-crypt read: %v", st)
			return
		}
		got := make([]byte, 2048)
		v2.Mem.ReadAt(got, base)
		if !bytes.Equal(got, data) {
			t.Error("dm-crypt could not read NVMetro-encrypted data")
			return
		}
		ok = true
	})
	env2.RunUntil(sim.Time(10 * sim.Second))
	env2.Close()
	if !ok {
		t.Fatal("read did not finish")
	}
	if nvme.SCSuccess != 0 {
		t.Fatal("sanity")
	}
}
