package device

import "nvmetro/internal/nvme"

// Partition is a fixed LBA window of a namespace, the unit a virtual
// controller is attached to ("virtual controllers can be attached to an
// entire NVMe namespace on the drive, or a fixed partition of that
// namespace"). LBA translation from partition-relative to device addresses
// is done by the I/O classifier (NVMetro) or the mediation layer (MDev).
type Partition struct {
	Dev    *Device
	NSID   uint32
	Start  uint64 // first device LBA
	Blocks uint64 // size in blocks
}

// WholeNamespace returns a partition covering all of namespace nsid.
func WholeNamespace(d *Device, nsid uint32) Partition {
	ns := d.Namespace(nsid)
	return Partition{Dev: d, NSID: nsid, Start: 0, Blocks: ns.Info.Size}
}

// Carve splits namespace nsid of the device into n equal partitions.
func Carve(d *Device, nsid uint32, n int) []Partition {
	ns := d.Namespace(nsid)
	per := ns.Info.Size / uint64(n)
	parts := make([]Partition, n)
	for i := range parts {
		parts[i] = Partition{Dev: d, NSID: nsid, Start: uint64(i) * per, Blocks: per}
	}
	return parts
}

// BlockSize returns the partition's logical block size.
func (p Partition) BlockSize() uint32 { return p.Dev.Params().BlockSize() }

// Bytes returns the partition size in bytes.
func (p Partition) Bytes() uint64 { return p.Blocks << p.Dev.Params().LBAShift }

// Info returns the namespace info a guest should see for this partition.
func (p Partition) Info() nvme.NamespaceInfo {
	return nvme.NamespaceInfo{Size: p.Blocks, Capacity: p.Blocks, LBAShift: p.Dev.Params().LBAShift}
}

// Translate converts a partition-relative LBA range to device LBAs,
// reporting false when the range exceeds the partition.
func (p Partition) Translate(lba uint64, blocks uint32) (uint64, bool) {
	if lba+uint64(blocks) > p.Blocks {
		return 0, false
	}
	return p.Start + lba, true
}
