// Package device simulates a physical NVMe SSD: hardware queue pairs fed by
// doorbells, a service-time model calibrated to a modern TLC drive with an
// SLC write cache (the paper's Samsung 970 EVO Plus), namespaces, partitions
// and pluggable backing stores. Data movement is real — reads return what
// was written — while service time is virtual.
package device

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Store is the persistence layer behind a namespace, addressed in logical
// blocks.
type Store interface {
	// ReadBlocks fills buf (a whole number of blocks) starting at lba.
	ReadBlocks(lba uint64, buf []byte)
	// WriteBlocks stores buf starting at lba.
	WriteBlocks(lba uint64, buf []byte)
	// TrimBlocks deallocates a block range.
	TrimBlocks(lba uint64, blocks uint32)
}

// chunkBlocks is the allocation granule of MemStore (64 blocks = 32 KiB at
// 512-byte LBAs), balancing map overhead against sparse-write waste.
const chunkBlocks = 64

// MemStore keeps full data contents in sparse chunks; reads of never-written
// blocks return zeros. Used by correctness tests and the KV-store workloads.
type MemStore struct {
	blockSize uint32
	chunks    map[uint64][]byte
}

// NewMemStore creates a memory-backed store with the given block size.
func NewMemStore(blockSize uint32) *MemStore {
	return &MemStore{blockSize: blockSize, chunks: make(map[uint64][]byte)}
}

func (s *MemStore) chunk(lba uint64, create bool) ([]byte, uint64) {
	cn, off := lba/chunkBlocks, lba%chunkBlocks
	c := s.chunks[cn]
	if c == nil && create {
		c = make([]byte, chunkBlocks*int(s.blockSize))
		s.chunks[cn] = c
	}
	return c, off * uint64(s.blockSize)
}

// ReadBlocks implements Store.
func (s *MemStore) ReadBlocks(lba uint64, buf []byte) {
	for len(buf) > 0 {
		c, off := s.chunk(lba, false)
		n := chunkBlocks*int(s.blockSize) - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		if c != nil {
			copy(buf[:n], c[off:])
		} else {
			clear(buf[:n])
		}
		buf = buf[n:]
		lba += uint64(n) / uint64(s.blockSize)
	}
}

// WriteBlocks implements Store.
func (s *MemStore) WriteBlocks(lba uint64, buf []byte) {
	for len(buf) > 0 {
		c, off := s.chunk(lba, true)
		n := chunkBlocks*int(s.blockSize) - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		copy(c[off:], buf[:n])
		buf = buf[n:]
		lba += uint64(n) / uint64(s.blockSize)
	}
}

// TrimBlocks implements Store. Whole covered chunks are dropped; partial
// chunks are zeroed.
func (s *MemStore) TrimBlocks(lba uint64, blocks uint32) {
	end := lba + uint64(blocks)
	for lba < end {
		cn, off := lba/chunkBlocks, lba%chunkBlocks
		n := uint64(chunkBlocks) - off
		if lba+n > end {
			n = end - lba
		}
		if off == 0 && n == chunkBlocks {
			delete(s.chunks, cn)
		} else if c := s.chunks[cn]; c != nil {
			clear(c[off*uint64(s.blockSize) : (off+n)*uint64(s.blockSize)])
		}
		lba += n
	}
}

// Resident reports the number of materialized chunks (for memory tests).
func (s *MemStore) Resident() int { return len(s.chunks) }

// ContentCRC fingerprints the store's logical contents: chunks are hashed
// in LBA order and all-zero chunks are skipped, so two stores holding the
// same bytes produce the same CRC even if one materialized a chunk the
// other never touched. Mirror-consistency tests compare primary and
// secondary with it.
func (s *MemStore) ContentCRC() uint32 {
	ids := make([]uint64, 0, len(s.chunks))
	for cn := range s.chunks {
		ids = append(ids, cn)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var idbuf [8]byte
	crc := crc32.NewIEEE()
	for _, cn := range ids {
		c := s.chunks[cn]
		allZero := true
		for _, b := range c {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			continue
		}
		binary.LittleEndian.PutUint64(idbuf[:], cn)
		crc.Write(idbuf[:])
		crc.Write(c)
	}
	return crc.Sum32()
}

// CRCStore records a CRC32 per written block but discards contents, bounding
// host memory during throughput benchmarks. Reads return zeros; Verify lets
// tests check that the bytes that *would* have been persisted match.
type CRCStore struct {
	blockSize uint32
	sums      map[uint64]uint32
}

// NewCRCStore creates a checksum-only store.
func NewCRCStore(blockSize uint32) *CRCStore {
	return &CRCStore{blockSize: blockSize, sums: make(map[uint64]uint32)}
}

// ReadBlocks implements Store; contents are not retained, so zeros return.
func (s *CRCStore) ReadBlocks(lba uint64, buf []byte) { clear(buf) }

// WriteBlocks implements Store.
func (s *CRCStore) WriteBlocks(lba uint64, buf []byte) {
	bs := int(s.blockSize)
	for i := 0; i+bs <= len(buf); i += bs {
		s.sums[lba] = crc32.ChecksumIEEE(buf[i : i+bs])
		lba++
	}
}

// TrimBlocks implements Store.
func (s *CRCStore) TrimBlocks(lba uint64, blocks uint32) {
	for i := uint32(0); i < blocks; i++ {
		delete(s.sums, lba+uint64(i))
	}
}

// Verify reports whether block lba was last written with contents equal to
// want (length = one block).
func (s *CRCStore) Verify(lba uint64, want []byte) bool {
	sum, ok := s.sums[lba]
	return ok && sum == crc32.ChecksumIEEE(want)
}

// NullStore discards writes and reads zeros: the cheapest backing for pure
// throughput benchmarks.
type NullStore struct{}

// ReadBlocks implements Store.
func (NullStore) ReadBlocks(lba uint64, buf []byte) { clear(buf) }

// WriteBlocks implements Store.
func (NullStore) WriteBlocks(lba uint64, buf []byte) {}

// TrimBlocks implements Store.
func (NullStore) TrimBlocks(lba uint64, blocks uint32) {}

// BackingMode selects a Store implementation.
type BackingMode int

// Backing modes.
const (
	BackingMem BackingMode = iota
	BackingCRC
	BackingNull
)

// NewStore builds a store of the given mode.
func NewStore(mode BackingMode, blockSize uint32) Store {
	switch mode {
	case BackingMem:
		return NewMemStore(blockSize)
	case BackingCRC:
		return NewCRCStore(blockSize)
	case BackingNull:
		return NullStore{}
	}
	panic(fmt.Sprintf("device: unknown backing mode %d", mode))
}
