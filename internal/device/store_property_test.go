package device

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveStore is a flat byte-array reference model for MemStore: no chunk
// structure at all, so any chunk-boundary bug in MemStore diverges from it.
type naiveStore struct {
	data []byte
	bs   int
}

func newNaive(blocks uint64, bs int) *naiveStore {
	return &naiveStore{data: make([]byte, blocks*uint64(bs)), bs: bs}
}

func (n *naiveStore) write(lba uint64, buf []byte) { copy(n.data[lba*uint64(n.bs):], buf) }

func (n *naiveStore) trim(lba uint64, blocks uint32) {
	clear(n.data[lba*uint64(n.bs) : (lba+uint64(blocks))*uint64(n.bs)])
}

func (n *naiveStore) read(lba uint64, buf []byte) { copy(buf, n.data[lba*uint64(n.bs):]) }

// TestMemStoreTrimProperty drives random writes and trims — biased toward
// the 64-block chunk boundary cases the CoW layer's dedup and GC lean on
// (exact-chunk trims that drop chunks, partial trims that zero in place,
// trims spanning chunk seams, trims of never-written space) — against the
// flat reference model.
func TestMemStoreTrimProperty(t *testing.T) {
	const blocks = 4096
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ms := NewMemStore(512)
		ns := newNaive(blocks, 512)
		for i := 0; i < 600; i++ {
			var lba uint64
			var n int
			if rng.Intn(2) == 0 {
				// Chunk-aligned span: starts on a 64-block boundary, whole
				// chunks long.
				lba = uint64(rng.Intn(blocks/chunkBlocks-2)) * chunkBlocks
				n = (1 + rng.Intn(2)) * chunkBlocks
			} else {
				// Arbitrary span, often straddling a seam.
				lba = uint64(rng.Intn(blocks - 200))
				n = 1 + rng.Intn(200)
			}
			switch rng.Intn(3) {
			case 0:
				buf := make([]byte, n*512)
				rng.Read(buf)
				ms.WriteBlocks(lba, buf)
				ns.write(lba, buf)
			default:
				ms.TrimBlocks(lba, uint32(n))
				ns.trim(lba, uint32(n))
			}
			got := make([]byte, 200*512)
			want := make([]byte, 200*512)
			ms.ReadBlocks(lba, got)
			ns.read(lba, want)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d iter %d: read mismatch after op at lba %d x%d", seed, i, lba, n)
			}
		}
		// Full-image sweep.
		got := make([]byte, blocks*512)
		ms.ReadBlocks(0, got)
		if !bytes.Equal(got, ns.data) {
			t.Fatalf("seed %d: final image mismatch", seed)
		}
	}
}

// TestContentCRCSparseEquivalence checks the fingerprint invariant the CoW
// layer's divergence checks rely on: two MemStores holding the same
// logical bytes report the same ContentCRC even when one materialized
// chunks (via write-then-trim or explicit zero writes) that the other
// never touched.
func TestContentCRCSparseEquivalence(t *testing.T) {
	const blocks = 2048
	rng := rand.New(rand.NewSource(21))

	sparse := NewMemStore(512)
	dense := NewMemStore(512)

	// Identical payload writes to both, confined to the lower half so the
	// upper half stays sparse.
	for i := 0; i < 50; i++ {
		lba := uint64(rng.Intn(900))
		buf := make([]byte, (1+rng.Intn(100))*512)
		rng.Read(buf)
		sparse.WriteBlocks(lba, buf)
		dense.WriteBlocks(lba, buf)
	}

	// Materialize extra chunks in dense only, with content that is logically
	// zero: explicit zero writes, and write-then-partial-trim back to zero.
	zeros := make([]byte, chunkBlocks*512)
	dense.WriteBlocks(1500, zeros) // chunk-straddling zero write
	junk := make([]byte, 32*512)
	rng.Read(junk)
	dense.WriteBlocks(1800, junk)
	dense.TrimBlocks(1800, 32) // sub-chunk trim: zeroed in place, chunk stays resident

	if sparse.Resident() == dense.Resident() {
		t.Fatal("test vacuous: dense did not materialize extra chunks")
	}
	if got, want := dense.ContentCRC(), sparse.ContentCRC(); got != want {
		t.Fatalf("sparse-vs-materialized ContentCRC mismatch: %08x vs %08x", got, want)
	}

	// Whole-chunk trims drop residency but must not change the fingerprint
	// when the content was already zero.
	dense.TrimBlocks(1792, chunkBlocks)
	if got, want := dense.ContentCRC(), sparse.ContentCRC(); got != want {
		t.Fatalf("post-trim ContentCRC mismatch: %08x vs %08x", got, want)
	}
}

// TestNextNSID pins the clone-attach ID allocator.
func TestNextNSID(t *testing.T) {
	d := newRig(t, Default970EvoPlus(), NewMemStore(512)).dev
	if got := d.NextNSID(); got != 2 {
		t.Fatalf("fresh device NextNSID = %d, want 2", got)
	}
	d.AddNamespace(2, 128, NewMemStore(512))
	d.AddNamespace(3, 128, NewMemStore(512))
	if got := d.NextNSID(); got != 4 {
		t.Fatalf("NextNSID = %d, want 4", got)
	}
}
