package device

import (
	"bytes"
	"testing"

	"nvmetro/internal/guestmem"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// testRig wires a device, a queue pair and guest memory for direct access.
type testRig struct {
	env  *sim.Env
	dev  *Device
	mem  *guestmem.Memory
	qp   *nvme.QueuePair
	cid  uint16
	done map[uint16]*sim.Cond
	stat map[uint16]nvme.Status
}

func newRig(t testing.TB, p Params, store Store) *testRig {
	env := sim.New(1)
	dev := New(env, p, store)
	mem := guestmem.New(64 << 20)
	r := &testRig{
		env: env, dev: dev, mem: mem,
		qp:   dev.CreateQueuePair(256, mem),
		done: make(map[uint16]*sim.Cond),
		stat: make(map[uint16]nvme.Status),
	}
	// Completion poller.
	env.Go("poller", func(pr *sim.Proc) {
		var e nvme.Completion
		for {
			for r.qp.CQ.Pop(&e) {
				r.stat[e.CID()] = e.Status()
				if c := r.done[e.CID()]; c != nil {
					c.Signal(nil)
				}
			}
			pr.Sleep(500 * sim.Nanosecond)
		}
	})
	return r
}

// run executes fn as a simulated process and drives the sim to completion
// of fn (bounded by a deadline).
func (r *testRig) run(t testing.TB, fn func(p *sim.Proc)) {
	t.Helper()
	finished := false
	r.env.Go("test", func(p *sim.Proc) {
		fn(p)
		finished = true
		r.env.Stop()
	})
	r.env.RunUntil(r.env.Now().Add(20 * sim.Second))
	if !finished {
		t.Fatal("test process did not finish within simulated deadline")
	}
}

// submit pushes cmd, rings the doorbell and waits for its completion.
func (r *testRig) submit(p *sim.Proc, cmd nvme.Command) nvme.Status {
	r.cid++
	cmd.SetCID(r.cid)
	cond := sim.NewCond(r.env)
	r.done[cmd.CID()] = cond
	if !r.qp.SQ.Push(&cmd) {
		panic("sq full")
	}
	r.dev.Ring(r.qp.SQ.ID)
	cond.Wait()
	delete(r.done, cmd.CID())
	return r.stat[cmd.CID()]
}

func (r *testRig) rw(p *sim.Proc, op uint8, lba uint64, data []byte) nvme.Status {
	blocks := uint32(len(data)) / r.dev.Params().BlockSize()
	base, pages, err := r.mem.AllocBuffer(uint32(len(data)))
	if err != nil {
		panic(err)
	}
	if op == nvme.OpWrite {
		r.mem.WriteAt(data, base)
	}
	prp1, prp2, err := nvme.BuildPRP(r.mem, pages, func() uint64 { return r.mem.MustAllocPages(1) })
	if err != nil {
		panic(err)
	}
	st := r.submit(p, nvme.NewRW(op, 0, 1, lba, blocks, prp1, prp2))
	if op == nvme.OpRead && st.OK() {
		r.mem.ReadAt(data, base)
	}
	return st
}

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	r := newRig(t, Default970EvoPlus(), NewMemStore(512))
	r.run(t, func(p *sim.Proc) {
		src := make([]byte, 8192)
		for i := range src {
			src[i] = byte(i * 13)
		}
		if st := r.rw(p, nvme.OpWrite, 100, src); !st.OK() {
			t.Errorf("write: %v", st)
		}
		got := make([]byte, 8192)
		if st := r.rw(p, nvme.OpRead, 100, got); !st.OK() {
			t.Errorf("read: %v", st)
		}
		if !bytes.Equal(src, got) {
			t.Error("data mismatch after round trip")
		}
		// Unwritten area reads zeros.
		zr := make([]byte, 512)
		if st := r.rw(p, nvme.OpRead, 99, zr); !st.OK() {
			t.Errorf("read: %v", st)
		}
		if !bytes.Equal(zr[:512], make([]byte, 512)) {
			t.Error("unwritten read not zero")
		}
	})
}

func TestDeviceQD1ReadLatency(t *testing.T) {
	p := Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	r := newRig(t, p, NullStore{})
	r.run(t, func(pr *sim.Proc) {
		buf := make([]byte, 512)
		start := pr.Now()
		const n = 100
		for i := 0; i < n; i++ {
			if st := r.rw(pr, nvme.OpRead, uint64(i), buf); !st.OK() {
				t.Fatalf("read %d: %v", i, st)
			}
		}
		avg := sim.Duration(int64(pr.Now().Sub(start)) / n)
		// Expect ctrl (1.5us) + base (78us) + transfer (~0.16us) + poll slack.
		if avg < 78*sim.Microsecond || avg > 85*sim.Microsecond {
			t.Errorf("QD1 512B read latency %v, want ~80us", avg)
		}
	})
}

func TestDeviceReadIOPSSaturation(t *testing.T) {
	p := Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	env := sim.New(1)
	dev := New(env, p, NullStore{})
	mem := guestmem.New(64 << 20)
	qp := dev.CreateQueuePair(512, mem)
	buf := mem.MustAllocPages(1)

	var completed metrics.Counter
	// Keep QD ~256 outstanding; closed loop.
	inflight := 0
	var cid uint16
	submitMore := func() {
		for inflight < 256 {
			cid++
			cmd := nvme.NewRW(nvme.OpRead, cid, 1, uint64(cid)%1000, 1, buf, 0)
			if !qp.SQ.Push(&cmd) {
				break
			}
			inflight++
		}
		dev.Ring(qp.SQ.ID)
	}
	env.Go("driver", func(pr *sim.Proc) {
		submitMore()
		var e nvme.Completion
		for {
			for qp.CQ.Pop(&e) {
				inflight--
				completed.Inc()
			}
			submitMore()
			pr.Sleep(time1us)
		}
	})
	env.RunUntil(sim.Time(50 * sim.Millisecond))
	iops := float64(completed.Value()) / 0.05
	// Model: min(48/78us, 1/1.5us) = ~615k IOPS.
	if iops < 520e3 || iops > 700e3 {
		t.Errorf("read saturation %.0f IOPS, want ~615k", iops)
	}
	env.Close()
}

const time1us = sim.Microsecond

func TestDeviceSequentialBandwidthCap(t *testing.T) {
	p := Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	env := sim.New(1)
	dev := New(env, p, NullStore{})
	mem := guestmem.New(256 << 20)
	qp := dev.CreateQueuePair(256, mem)

	// Pre-build one 128K PRP set and reuse it.
	var pages []uint64
	for i := 0; i < 32; i++ {
		pages = append(pages, mem.MustAllocPages(1))
	}
	prp1, prp2, err := nvme.BuildPRP(mem, pages, func() uint64 { return mem.MustAllocPages(1) })
	if err != nil {
		t.Fatal(err)
	}
	var done metrics.Counter
	inflight := 0
	var cid uint16
	var lba uint64
	env.Go("driver", func(pr *sim.Proc) {
		var e nvme.Completion
		for {
			for inflight < 64 {
				cid++
				cmd := nvme.NewRW(nvme.OpRead, cid, 1, lba, 256, prp1, prp2)
				lba += 256
				if !qp.SQ.Push(&cmd) {
					break
				}
				inflight++
			}
			dev.Ring(qp.SQ.ID)
			for qp.CQ.Pop(&e) {
				inflight--
				done.Inc()
			}
			pr.Sleep(time1us)
		}
	})
	env.RunUntil(sim.Time(50 * sim.Millisecond))
	bw := float64(done.Value()) * 128 * 1024 / 0.05
	if bw < 2.9e9 || bw > 3.5e9 {
		t.Errorf("128K read bandwidth %.2f GB/s, want ~3.3", bw/1e9)
	}
	env.Close()
}

func TestDeviceErrors(t *testing.T) {
	p := Default970EvoPlus()
	p.Blocks = 1000
	r := newRig(t, p, NewMemStore(512))
	r.run(t, func(pr *sim.Proc) {
		buf := r.mem.MustAllocPages(1)
		if st := r.submit(pr, nvme.NewRW(nvme.OpRead, 0, 1, 999, 2, buf, 0)); st != nvme.SCLBAOutOfRange {
			t.Errorf("out of range: %v", st)
		}
		if st := r.submit(pr, nvme.NewRW(nvme.OpRead, 0, 9, 0, 1, buf, 0)); st != nvme.SCInvalidNS {
			t.Errorf("bad nsid: %v", st)
		}
		var c nvme.Command
		c.SetOpcode(0x55)
		c.SetNSID(1)
		if st := r.submit(pr, c); st != nvme.SCInvalidOpcode {
			t.Errorf("bad opcode: %v", st)
		}
	})
}

func TestDeviceCompareAndVendor(t *testing.T) {
	r := newRig(t, Default970EvoPlus(), NewMemStore(512))
	r.run(t, func(pr *sim.Proc) {
		data := bytes.Repeat([]byte{0xab}, 512)
		if st := r.rw(pr, nvme.OpWrite, 5, data); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// Compare equal data: success.
		base, pages, _ := r.mem.AllocBuffer(512)
		r.mem.WriteAt(data, base)
		prp1, _, _ := nvme.BuildPRP(r.mem, pages, nil)
		if st := r.submit(pr, nvme.NewRW(nvme.OpCompare, 0, 1, 5, 1, prp1, 0)); !st.OK() {
			t.Errorf("compare equal: %v", st)
		}
		// Compare different data: failure.
		r.mem.WriteAt(bytes.Repeat([]byte{0xcd}, 512), base)
		if st := r.submit(pr, nvme.NewRW(nvme.OpCompare, 0, 1, 5, 1, prp1, 0)); st != nvme.SCCompareFailure {
			t.Errorf("compare unequal: %v", st)
		}
		// Vendor opcode passes through.
		var vc nvme.Command
		vc.SetOpcode(nvme.OpVendorStart + 1)
		vc.SetNSID(1)
		if st := r.submit(pr, vc); !st.OK() {
			t.Errorf("vendor: %v", st)
		}
	})
}

func TestDeviceFlushAndTrim(t *testing.T) {
	store := NewMemStore(512)
	r := newRig(t, Default970EvoPlus(), store)
	r.run(t, func(pr *sim.Proc) {
		data := bytes.Repeat([]byte{1}, 512*chunkBlocks)
		if st := r.rw(pr, nvme.OpWrite, 0, data); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		if st := r.submit(pr, nvme.NewFlush(0, 1)); !st.OK() {
			t.Errorf("flush: %v", st)
		}
		var c nvme.Command
		c.SetOpcode(nvme.OpDSM)
		c.SetNSID(1)
		c.SetSLBA(0)
		c.SetNLB(chunkBlocks - 1)
		if st := r.submit(pr, c); !st.OK() {
			t.Errorf("trim: %v", st)
		}
		got := make([]byte, 512)
		if st := r.rw(pr, nvme.OpRead, 0, got); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(got, make([]byte, 512)) {
			t.Error("trimmed block not zero")
		}
	})
}

func TestWriteZeroes(t *testing.T) {
	r := newRig(t, Default970EvoPlus(), NewMemStore(512))
	r.run(t, func(pr *sim.Proc) {
		if st := r.rw(pr, nvme.OpWrite, 7, bytes.Repeat([]byte{9}, 512)); !st.OK() {
			t.Fatal(st)
		}
		var c nvme.Command
		c.SetOpcode(nvme.OpWriteZeroes)
		c.SetNSID(1)
		c.SetSLBA(7)
		c.SetNLB(0)
		if st := r.submit(pr, c); !st.OK() {
			t.Fatalf("write zeroes: %v", st)
		}
		got := make([]byte, 512)
		r.rw(pr, nvme.OpRead, 7, got)
		if !bytes.Equal(got, make([]byte, 512)) {
			t.Error("write zeroes did not zero")
		}
	})
}

func TestPartitionTranslate(t *testing.T) {
	env := sim.New(1)
	dev := New(env, Default970EvoPlus(), NullStore{})
	parts := Carve(dev, 1, 4)
	if len(parts) != 4 {
		t.Fatal("carve")
	}
	per := dev.Namespace(1).Info.Size / 4
	if parts[2].Start != 2*per {
		t.Fatalf("start %d", parts[2].Start)
	}
	if got, ok := parts[1].Translate(10, 5); !ok || got != per+10 {
		t.Fatalf("translate %d %v", got, ok)
	}
	if _, ok := parts[1].Translate(per-1, 2); ok {
		t.Fatal("overflow must fail")
	}
	if parts[0].BlockSize() != 512 {
		t.Fatal("block size")
	}
}

func TestStoreImplementations(t *testing.T) {
	data := bytes.Repeat([]byte{0x5a}, 1024)
	t.Run("mem", func(t *testing.T) {
		s := NewMemStore(512)
		s.WriteBlocks(10, data)
		got := make([]byte, 1024)
		s.ReadBlocks(10, got)
		if !bytes.Equal(data, got) {
			t.Fatal("mem round trip")
		}
		s.TrimBlocks(10, 2)
		s.ReadBlocks(10, got)
		if !bytes.Equal(got, make([]byte, 1024)) {
			t.Fatal("trim")
		}
	})
	t.Run("crc", func(t *testing.T) {
		s := NewCRCStore(512)
		s.WriteBlocks(10, data)
		if !s.Verify(10, data[:512]) || !s.Verify(11, data[512:]) {
			t.Fatal("verify")
		}
		if s.Verify(10, make([]byte, 512)) {
			t.Fatal("verify should fail for different data")
		}
		got := make([]byte, 512)
		s.ReadBlocks(10, got)
		if !bytes.Equal(got, make([]byte, 512)) {
			t.Fatal("crc reads zeros")
		}
	})
	t.Run("null", func(t *testing.T) {
		var s NullStore
		s.WriteBlocks(0, data)
		got := make([]byte, 512)
		s.ReadBlocks(0, got)
		if !bytes.Equal(got, make([]byte, 512)) {
			t.Fatal("null reads zeros")
		}
	})
}

func TestMemStoreCrossChunk(t *testing.T) {
	s := NewMemStore(512)
	data := make([]byte, 512*(chunkBlocks+3))
	for i := range data {
		data[i] = byte(i)
	}
	s.WriteBlocks(chunkBlocks-2, data)
	got := make([]byte, len(data))
	s.ReadBlocks(chunkBlocks-2, got)
	if !bytes.Equal(data, got) {
		t.Fatal("cross chunk round trip")
	}
}
