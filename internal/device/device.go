package device

import (
	"fmt"

	"nvmetro/internal/fault"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Params is the device service-time model. The defaults approximate the
// paper's Samsung 970 EVO Plus 1TB: ~13 kIOPS random read at QD1 (≈78 µs
// device latency), ~600 kIOPS read saturation, SLC-cached writes around
// 25 µs, and ~3.3/3.2 GB/s sequential read/write bandwidth.
type Params struct {
	LBAShift uint8  // log2 block size
	Blocks   uint64 // namespace size in blocks

	ReadBase  sim.Duration // media read latency per command
	WriteBase sim.Duration // SLC-cache write latency per command
	FlushLat  sim.Duration // flush latency
	CtrlOver  sim.Duration // controller frontend per-command cost (caps IOPS)
	Parallel  int          // internal units (channels x dies)
	ReadBW    float64      // bytes/sec sequential read
	WriteBW   float64      // bytes/sec sequential write
	BusOver   sim.Duration // per-command bus/DMA setup overhead

	JitterPct int // +/- uniform jitter applied to base latency, in percent
	TailProb  int // 1-in-N commands take TailMult x base latency (0=never)
	TailMult  int
}

// Default970EvoPlus returns the calibrated parameter set used by the
// evaluation harness.
func Default970EvoPlus() Params {
	return Params{
		LBAShift:  9,
		Blocks:    1 << 31, // 1 TB at 512B LBAs
		ReadBase:  78 * sim.Microsecond,
		WriteBase: 24 * sim.Microsecond,
		FlushLat:  150 * sim.Microsecond,
		CtrlOver:  1500 * sim.Nanosecond,
		Parallel:  48,
		ReadBW:    3.3e9,
		WriteBW:   3.2e9,
		BusOver:   1500 * sim.Nanosecond,
		JitterPct: 8,
		TailProb:  200,
		TailMult:  4,
	}
}

// BlockSize returns the logical block size in bytes.
func (p Params) BlockSize() uint32 { return 1 << p.LBAShift }

// Namespace is one NVM namespace on the device.
type Namespace struct {
	ID    uint32
	Info  nvme.NamespaceInfo
	Store Store
}

// queueState tracks one hardware queue pair.
type queueState struct {
	qp   *nvme.QueuePair
	mem  nvme.Memory // DMA context for commands on this queue
	cond *sim.Cond   // doorbell signal

	// Command hand-off to dev-cmd handler processes. Handlers start in
	// spawn order (their start events share a timestamp and dispatch in
	// seq order), so a FIFO pairs the i-th spawned handler with the i-th
	// popped command — one cached closure serves every command, instead
	// of a fresh capturing closure per spawn.
	run      func(*sim.Proc)
	pending  []nvme.Command
	pendHead int
}

// Device is the simulated NVMe SSD.
type Device struct {
	env    *sim.Env
	p      Params
	ctrl   *sim.Resource // command frontend (serialized fetch/decode/DMA setup)
	units  *sim.Resource // internal parallel units
	rbus   *sim.Resource // read DMA engine (bandwidth)
	wbus   *sim.Resource // write DMA engine
	ns     map[uint32]*Namespace
	queues map[uint16]*queueState
	nextQ  uint16
	inj    *fault.Injector

	// Reusable data-path buffers. Only valid across park-free windows:
	// every Store.ReadBlocks fully overwrites its buffer, and the windows
	// using these touch no simulation primitive, so no other command can
	// interleave.
	scratch, scratch2 []byte

	// Stats
	Reads, Writes, Others uint64
	BytesRead, BytesWrit  uint64
	MediaErrors           uint64 // injected media-error completions
	DroppedComps          uint64 // completions suppressed by fault injection
	StuckComps            uint64 // completions delayed by fault injection
}

// New creates a device with one namespace (NSID 1) over the given store.
func New(env *sim.Env, p Params, store Store) *Device {
	d := &Device{
		env:    env,
		p:      p,
		ctrl:   sim.NewResource(env, 1),
		units:  sim.NewResource(env, p.Parallel),
		rbus:   sim.NewResource(env, 1),
		wbus:   sim.NewResource(env, 1),
		ns:     make(map[uint32]*Namespace),
		queues: make(map[uint16]*queueState),
	}
	d.AddNamespace(1, p.Blocks, store)
	return d
}

// Params returns the device model parameters.
func (d *Device) Params() Params { return d.p }

// InjectFaults attaches a fault injector to the device's command path (nil
// detaches). Decisions are drawn once per handled command, in arrival
// order, so a fixed seed yields a fixed fault trace.
func (d *Device) InjectFaults(inj *fault.Injector) { d.inj = inj }

// FaultInjector returns the attached injector, or nil.
func (d *Device) FaultInjector() *fault.Injector { return d.inj }

// classOf maps an opcode to the injector's command class.
func classOf(op uint8) fault.Class {
	switch op {
	case nvme.OpRead, nvme.OpCompare:
		return fault.ClassRead
	case nvme.OpWrite, nvme.OpWriteZeroes:
		return fault.ClassWrite
	}
	return fault.ClassOther
}

// AddNamespace attaches an additional namespace.
func (d *Device) AddNamespace(id uint32, blocks uint64, store Store) *Namespace {
	n := &Namespace{
		ID:    id,
		Info:  nvme.NamespaceInfo{Size: blocks, Capacity: blocks, LBAShift: d.p.LBAShift},
		Store: store,
	}
	d.ns[id] = n
	return n
}

// Namespace returns namespace id, or nil.
func (d *Device) Namespace(id uint32) *Namespace { return d.ns[id] }

// NextNSID returns the lowest unused namespace ID — where the snapshot
// layer attaches the next clone.
func (d *Device) NextNSID() uint32 {
	id := uint32(1)
	for d.ns[id] != nil {
		id++
	}
	return id
}

// Identify returns the controller identify page contents.
func (d *Device) Identify() nvme.ControllerInfo {
	return nvme.ControllerInfo{
		VID: 0x144d, Serial: "S4EVNF0M970EVO+", Model: "Samsung SSD 970 EVO Plus 1TB (simulated)",
		Firmware: "2B2QEXM7", NN: uint32(len(d.ns)), MaxXfer: 5, SQES: 6, CQES: 4,
	}
}

// CreateQueuePair allocates a hardware I/O queue pair of the given depth,
// with DMA performed against mem. It returns the pair; the caller rings the
// doorbell via Ring after pushing to the SQ. This mirrors the host driver's
// Create I/O SQ/CQ admin commands.
func (d *Device) CreateQueuePair(depth uint32, mem nvme.Memory) *nvme.QueuePair {
	d.nextQ++
	id := d.nextQ
	qp := nvme.NewQueuePair(id, depth)
	st := &queueState{qp: qp, mem: mem, cond: sim.NewCond(d.env)}
	st.run = func(hp *sim.Proc) { d.handle(hp, st) }
	d.queues[id] = st
	d.env.Go(fmt.Sprintf("dev-sq%d", id), func(p *sim.Proc) { d.serveQueue(p, st) })
	return qp
}

// Ring notifies the device that new commands were pushed to the queue's SQ
// (the submission doorbell write). It is asynchronous and free for the
// caller: MMIO posted writes cost nothing on the CPU side.
func (d *Device) Ring(qid uint16) {
	if st := d.queues[qid]; st != nil {
		st.cond.Signal(nil)
	}
}

func (d *Device) serveQueue(p *sim.Proc, st *queueState) {
	var cmd nvme.Command
	for {
		for st.qp.SQ.Pop(&cmd) {
			st.pending = append(st.pending, cmd)
			d.env.Go("dev-cmd", st.run)
		}
		st.cond.Wait()
	}
}

// jittered applies deterministic pseudo-random latency variation.
func (d *Device) jittered(base sim.Duration) sim.Duration {
	if d.p.JitterPct > 0 {
		span := int64(base) * int64(d.p.JitterPct) / 100
		base += sim.Duration(d.env.Rand().Int63n(2*span+1) - span)
	}
	if d.p.TailProb > 0 && d.env.Rand().Intn(d.p.TailProb) == 0 {
		base *= sim.Duration(d.p.TailMult)
	}
	return base
}

func (d *Device) handle(p *sim.Proc, st *queueState) {
	cmd := st.pending[st.pendHead]
	st.pendHead++
	if st.pendHead == len(st.pending) {
		st.pending = st.pending[:0]
		st.pendHead = 0
	}
	status := nvme.SCSuccess
	// DW0 is command-specific in real NVMe; this controller echoes the
	// reserved CDW3 so drivers can stamp a submission generation there
	// and detect late completions for reclaimed tags (blockdev quarantine).
	result := cmd.CDW(3)

	// Controller frontend: command fetch, decode, DMA descriptor setup.
	d.ctrl.Use(p, d.p.CtrlOver)

	switch cmd.Opcode() {
	case nvme.OpRead:
		status = d.doRead(p, st, &cmd)
	case nvme.OpWrite:
		status = d.doWrite(p, st, &cmd, false)
	case nvme.OpWriteZeroes:
		status = d.doWrite(p, st, &cmd, true)
	case nvme.OpCompare:
		status = d.doCompare(p, st, &cmd)
	case nvme.OpFlush:
		d.Others++
		p.Sleep(d.jittered(d.p.FlushLat))
	case nvme.OpDSM:
		d.Others++
		// Deallocate: model as near-free metadata update.
		p.Sleep(d.jittered(5 * sim.Microsecond))
		if ns := d.ns[cmd.NSID()]; ns != nil {
			ns.Store.TrimBlocks(cmd.SLBA(), cmd.Blocks())
		}
	default:
		if cmd.Opcode() >= nvme.OpVendorStart {
			// Vendor commands complete quickly with success; NVMetro's
			// compatibility claim is that these pass through untouched.
			d.Others++
			p.Sleep(d.jittered(10 * sim.Microsecond))
		} else {
			status = nvme.SCInvalidOpcode
		}
	}

	// Fault injection: a media error overrides a successful status; a drop
	// suppresses the completion; a stuck completion is held before posting.
	if fd := d.inj.Decide(classOf(cmd.Opcode())); fd.Faulty() {
		if !fd.Status.OK() && status.OK() {
			status = fd.Status
			d.MediaErrors++
		}
		if fd.Drop {
			d.DroppedComps++
			return
		}
		if fd.Delay > 0 {
			d.StuckComps++
			p.Sleep(fd.Delay)
		}
	}

	// Post the completion; retry if the consumer has not drained the CQ.
	for !st.qp.CQ.Post(cmd.CID(), st.qp.SQ.ID, st.qp.SQ.Head(), status, result) {
		p.Sleep(5 * sim.Microsecond)
	}
}

// scratchBuf returns *sp resized to n bytes, reallocating only on growth.
// Callers must fully overwrite the buffer (stale contents survive reuse).
func scratchBuf(sp *[]byte, n uint32) []byte {
	if cap(*sp) < int(n) {
		*sp = make([]byte, n)
	}
	return (*sp)[:n]
}

func (d *Device) checkRange(cmd *nvme.Command) (*Namespace, nvme.Status) {
	ns := d.ns[cmd.NSID()]
	if ns == nil {
		return nil, nvme.SCInvalidNS
	}
	if cmd.SLBA()+uint64(cmd.Blocks()) > ns.Info.Size {
		return nil, nvme.SCLBAOutOfRange
	}
	return ns, nvme.SCSuccess
}

func (d *Device) transfer(p *sim.Proc, bus *sim.Resource, nbytes uint32, bw float64) {
	t := d.p.BusOver + sim.Duration(float64(nbytes)/bw*1e9)
	bus.Use(p, t)
}

func (d *Device) doRead(p *sim.Proc, st *queueState, cmd *nvme.Command) nvme.Status {
	ns, status := d.checkRange(cmd)
	if !status.OK() {
		return status
	}
	nbytes := cmd.Blocks() << d.p.LBAShift
	segs, err := nvme.WalkPRP(st.mem, cmd.PRP1(), cmd.PRP2(), nbytes)
	if err != nil {
		return nvme.SCDataXferError
	}
	d.units.Acquire()
	p.Sleep(d.jittered(d.p.ReadBase))
	d.units.Release()
	d.transfer(p, d.rbus, nbytes, d.p.ReadBW)

	buf := scratchBuf(&d.scratch, nbytes)
	ns.Store.ReadBlocks(cmd.SLBA(), buf)
	if err := nvme.WriteSegments(st.mem, segs, buf); err != nil {
		return nvme.SCDataXferError
	}
	d.Reads++
	d.BytesRead += uint64(nbytes)
	return nvme.SCSuccess
}

func (d *Device) doWrite(p *sim.Proc, st *queueState, cmd *nvme.Command, zeroes bool) nvme.Status {
	ns, status := d.checkRange(cmd)
	if !status.OK() {
		return status
	}
	nbytes := cmd.Blocks() << d.p.LBAShift
	buf := make([]byte, nbytes)
	if !zeroes {
		segs, err := nvme.WalkPRP(st.mem, cmd.PRP1(), cmd.PRP2(), nbytes)
		if err != nil {
			return nvme.SCDataXferError
		}
		if err := nvme.ReadSegments(st.mem, segs, buf); err != nil {
			return nvme.SCDataXferError
		}
		d.transfer(p, d.wbus, nbytes, d.p.WriteBW)
	}
	d.units.Acquire()
	p.Sleep(d.jittered(d.p.WriteBase))
	d.units.Release()

	ns.Store.WriteBlocks(cmd.SLBA(), buf)
	d.Writes++
	d.BytesWrit += uint64(nbytes)
	return nvme.SCSuccess
}

func (d *Device) doCompare(p *sim.Proc, st *queueState, cmd *nvme.Command) nvme.Status {
	ns, status := d.checkRange(cmd)
	if !status.OK() {
		return status
	}
	nbytes := cmd.Blocks() << d.p.LBAShift
	segs, err := nvme.WalkPRP(st.mem, cmd.PRP1(), cmd.PRP2(), nbytes)
	if err != nil {
		return nvme.SCDataXferError
	}
	d.units.Acquire()
	p.Sleep(d.jittered(d.p.ReadBase))
	d.units.Release()
	d.transfer(p, d.rbus, nbytes, d.p.ReadBW)

	want := scratchBuf(&d.scratch, nbytes)
	if err := nvme.ReadSegments(st.mem, segs, want); err != nil {
		return nvme.SCDataXferError
	}
	have := scratchBuf(&d.scratch2, nbytes)
	ns.Store.ReadBlocks(cmd.SLBA(), have)
	for i := range want {
		if want[i] != have[i] {
			return nvme.SCCompareFailure
		}
	}
	d.Others++
	return nvme.SCSuccess
}
