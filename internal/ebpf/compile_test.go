package ebpf

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// --- differential test: randomized verifier-accepted programs ------------

const diffCtxSize = 64

// diffMaps is one tier's map instances: geometry fixed, contents cloned so
// both tiers mutate independent state.
type diffMaps struct {
	arr  *ArrayMap // valueSize 16, 8 entries
	hash *HashMap  // key 4, value 8, 4 entries (small: exercises map-full)
}

func newDiffMaps() diffMaps {
	return diffMaps{arr: NewArrayMap(16, 8), hash: NewHashMap(4, 8, 4)}
}

func (dm diffMaps) clone() diffMaps {
	c := newDiffMaps()
	copy(c.arr.data, dm.arr.data)
	for k, v := range dm.hash.data {
		nv := make([]byte, len(v))
		copy(nv, v)
		c.hash.data[k] = nv
	}
	return c
}

func (dm diffMaps) equal(o diffMaps) error {
	if !bytes.Equal(dm.arr.data, o.arr.data) {
		return fmt.Errorf("array map contents differ:\n%x\n%x", dm.arr.data, o.arr.data)
	}
	if len(dm.hash.data) != len(o.hash.data) {
		return fmt.Errorf("hash map sizes differ: %d vs %d", len(dm.hash.data), len(o.hash.data))
	}
	for k, v := range dm.hash.data {
		ov, ok := o.hash.data[k]
		if !ok || !bytes.Equal(v, ov) {
			return fmt.Errorf("hash map key %x differs: %x vs %x", k, v, ov)
		}
	}
	return nil
}

// genProgram builds a random program that is verifier-accepted by
// construction. Register roles: r6 = ctx pointer, r7-r9 = long-lived
// scalars, r0-r5 = per-snippet temporaries. Stack slots [-8], [-16] hold
// initialized u64s; [-4] holds the map key; [-24..-9) holds map values.
func genProgram(rng *rand.Rand, dm diffMaps) *Program {
	b := NewBuilder()
	label := 0
	next := func() string { label++; return fmt.Sprintf("L%d", label) }

	aluOps := []uint8{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUMod, ALUOr, ALUAnd, ALUXor, ALULsh, ALURsh, ALUArsh}
	jmpOps := []uint8{JmpEq, JmpNe, JmpGt, JmpGe, JmpLt, JmpLe, JmpSGt, JmpSGe, JmpSLt, JmpSLe, JmpSet}
	regs := []uint8{R7, R8, R9}
	reg := func() uint8 { return regs[rng.Intn(len(regs))] }
	sizes := []uint8{SizeB, SizeH, SizeW, SizeDW}
	sizeBytes := map[uint8]int16{SizeB: 1, SizeH: 2, SizeW: 4, SizeDW: 8}

	// Prologue: pin roles and initialize the stack slots snippets rely on.
	b.MovReg(R6, R1)
	b.MovImm64(R7, rng.Uint64())
	b.MovImm64(R8, rng.Uint64())
	b.MovImm(R9, int32(rng.Uint32()))
	b.Store(SizeDW, R10, -8, R7)
	b.Store(SizeDW, R10, -16, R8)
	b.StoreImm(SizeW, R10, -4, int32(rng.Uint32()))
	b.Store(SizeDW, R10, -24, R9)

	emitSnippet := func() {
		switch rng.Intn(13) {
		case 0: // 64-bit ALU, register source
			b.ALU(aluOps[rng.Intn(len(aluOps))], reg(), reg())
		case 1: // 64-bit ALU, immediate (including 0: div/mod-by-zero)
			imm := int32(rng.Uint32())
			if rng.Intn(4) == 0 {
				imm = 0
			}
			b.ALUImm(aluOps[rng.Intn(len(aluOps))], reg(), imm)
		case 2: // 32-bit ALU, immediate (arsh32's &31 masking lives here)
			imm := int32(rng.Uint32())
			if rng.Intn(4) == 0 {
				imm = 0
			}
			b.ALU32Imm(aluOps[rng.Intn(len(aluOps))], reg(), imm)
		case 3: // 32-bit ALU, register source
			op := aluOps[rng.Intn(len(aluOps))]
			b.emit(Insn{Op: ClassALU | op | SrcX, Dst: reg(), Src: reg()})
		case 4: // neg, both widths
			if rng.Intn(2) == 0 {
				b.emit(Insn{Op: ClassALU64 | ALUNeg, Dst: reg()})
			} else {
				b.emit(Insn{Op: ClassALU | ALUNeg, Dst: reg()})
			}
		case 5: // load from ctx, fold into a live register
			sz := sizes[rng.Intn(len(sizes))]
			off := int16(rng.Intn(diffCtxSize - int(sizeBytes[sz])))
			b.Load(sz, R0, R6, off)
			b.ALU(ALUXor, reg(), R0)
		case 6: // store to ctx (register or immediate source)
			sz := sizes[rng.Intn(len(sizes))]
			off := int16(rng.Intn(diffCtxSize - int(sizeBytes[sz])))
			if rng.Intn(2) == 0 {
				b.Store(sz, R6, off, reg())
			} else {
				b.StoreImm(sz, R6, off, int32(rng.Uint32()))
			}
		case 7: // reload an initialized stack slot
			off := int16(-8)
			if rng.Intn(2) == 0 {
				off = -16
			}
			b.Load(SizeDW, R0, R10, off)
			b.ALU(ALUAdd, reg(), R0)
		case 8: // array map lookup + null-checked value access
			b.StoreImm(SizeW, R10, -4, int32(rng.Intn(12))) // sometimes out of range -> null
			b.LoadMap(R1, dm.arr)
			b.MovReg(R2, R10)
			b.AddImm(R2, -4)
			b.Call(HelperMapLookup)
			miss := next()
			b.JumpImm(JmpEq, R0, 0, miss)
			b.Load(SizeDW, R3, R0, 0)
			b.ALU(ALUXor, reg(), R3)
			b.Store(SizeDW, R0, 8, reg())
			b.Label(miss)
		case 9: // hash map update (may hit map-full) then lookup
			b.StoreImm(SizeW, R10, -4, int32(rng.Intn(6)))
			b.Store(SizeDW, R10, -24, reg())
			b.LoadMap(R1, dm.hash)
			b.MovReg(R2, R10)
			b.AddImm(R2, -4)
			b.MovReg(R3, R10)
			b.AddImm(R3, -24)
			b.MovImm(R4, 0)
			b.Call(HelperMapUpdate)
			b.ALU(ALUAdd, reg(), R0)
			b.LoadMap(R1, dm.hash)
			b.MovReg(R2, R10)
			b.AddImm(R2, -4)
			b.Call(HelperMapLookup)
			miss := next()
			b.JumpImm(JmpEq, R0, 0, miss)
			b.Load(SizeDW, R3, R0, 0)
			b.ALU(ALUXor, reg(), R3)
			b.Label(miss)
		case 10: // hash map delete
			b.StoreImm(SizeW, R10, -4, int32(rng.Intn(6)))
			b.LoadMap(R1, dm.hash)
			b.MovReg(R2, R10)
			b.AddImm(R2, -4)
			b.Call(HelperMapDelete)
			b.ALU(ALUAdd, reg(), R0)
		case 11: // qos class tag (sometimes out of range -> -1, tag untouched)
			b.MovImm(R1, int32(rng.Intn(6)))
			b.Call(HelperQoSSetClass)
			b.ALU(ALUAdd, reg(), R0)
		default: // prandom
			b.Call(HelperGetPrandom)
			b.ALU(ALUAdd, reg(), R0)
		}
	}

	for n := 4 + rng.Intn(12); n > 0; n-- {
		if rng.Intn(4) == 0 {
			// Conditional skip over the next few snippets (forward only, so
			// the verifier's no-back-edge rule holds on every path).
			skip := next()
			if rng.Intn(2) == 0 {
				b.JumpImm(jmpOps[rng.Intn(len(jmpOps))], reg(), int32(rng.Uint32()), skip)
			} else {
				b.JumpReg(jmpOps[rng.Intn(len(jmpOps))], reg(), reg(), skip)
			}
			for k := 1 + rng.Intn(3); k > 0; k-- {
				emitSnippet()
			}
			b.Label(skip)
		} else {
			emitSnippet()
		}
	}

	// Epilogue: fold the long-lived scalars into r0.
	b.MovReg(R0, R7)
	b.ALU(ALUXor, R0, R8)
	b.ALU(ALUAdd, R0, R9)
	b.Exit()

	p, err := b.Program("diff")
	if err != nil {
		panic(err)
	}
	return p
}

// errClass folds an execution error into a comparable class.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrFuel):
		return "fuel"
	case errors.Is(err, ErrFault):
		return "fault"
	default:
		return "other"
	}
}

// TestDifferentialCompiledVsInterpreter generates random verifier-accepted
// programs and checks that the compiled tier and the interpreter agree on
// r0, fault class, ctx bytes and final map contents across invocations.
func TestDifferentialCompiledVsInterpreter(t *testing.T) {
	const programs = 300
	const invocations = 4
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mapsI := newDiffMaps()
		// Pre-populate so lookups hit immediately on some keys.
		for i := 0; i < 4; i++ {
			mapsI.arr.SetU64(i, 0, rng.Uint64())
		}
		mapsC := mapsI.clone()

		progI := genProgram(rng, mapsI)
		// The compiled tier's program references its own map instances at
		// the same indices (genProgram registers maps in a fixed order).
		progC := &Program{Insns: progI.Insns, Name: progI.Name}
		for _, m := range progI.Maps {
			switch m {
			case Map(mapsI.arr):
				progC.Maps = append(progC.Maps, mapsC.arr)
			case Map(mapsI.hash):
				progC.Maps = append(progC.Maps, mapsC.hash)
			default:
				t.Fatalf("seed %d: unexpected map", seed)
			}
		}

		v := &Verifier{CtxSize: diffCtxSize}
		if err := v.Verify(progI); err != nil {
			t.Fatalf("seed %d: generator produced rejected program: %v\n%s", seed, err, Disassemble(progI))
		}
		cp, err := Compile(progC, &Verifier{CtxSize: diffCtxSize})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}

		vmI, vmC := NewVM(nil), NewVM(nil)
		for inv := 0; inv < invocations; inv++ {
			ctxI := make([]byte, diffCtxSize)
			rng.Read(ctxI)
			ctxC := append([]byte(nil), ctxI...)

			retI, errI := vmI.Run(progI, ctxI)
			retC, errC := vmC.RunCompiled(cp, ctxC)
			if errClass(errI) != errClass(errC) {
				t.Fatalf("seed %d inv %d: error class %q vs %q (%v / %v)\n%s",
					seed, inv, errClass(errI), errClass(errC), errI, errC, Disassemble(progI))
			}
			if errI == nil && retI != retC {
				t.Fatalf("seed %d inv %d: r0 %#x (interp) != %#x (compiled)\n%s",
					seed, inv, retI, retC, Disassemble(progI))
			}
			if !bytes.Equal(ctxI, ctxC) {
				t.Fatalf("seed %d inv %d: ctx diverged\ninterp:   %x\ncompiled: %x\n%s",
					seed, inv, ctxI, ctxC, Disassemble(progI))
			}
			if vmI.QoSClass != vmC.QoSClass {
				t.Fatalf("seed %d inv %d: QoS class %d (interp) != %d (compiled)\n%s",
					seed, inv, vmI.QoSClass, vmC.QoSClass, Disassemble(progI))
			}
		}
		if err := mapsI.equal(mapsC); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, Disassemble(progI))
		}
	}
}

// --- edge-case parity ----------------------------------------------------

// runBoth executes p on both tiers with fresh VMs and identical ctx copies,
// requiring identical outcomes, and returns the shared result.
func runBoth(t *testing.T, p *Program, ctx []byte, ctxSize int) (uint64, error) {
	t.Helper()
	cp, err := Compile(p, &Verifier{CtxSize: ctxSize})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var ctxI, ctxC []byte
	if ctx != nil {
		ctxI = append([]byte(nil), ctx...)
		ctxC = append([]byte(nil), ctx...)
	}
	retI, errI := NewVM(nil).Run(p, ctxI)
	retC, errC := NewVM(nil).RunCompiled(cp, ctxC)
	if errClass(errI) != errClass(errC) || (errI == nil && retI != retC) || !bytes.Equal(ctxI, ctxC) {
		t.Fatalf("tiers diverge: interp (%#x, %v) compiled (%#x, %v)", retI, errI, retC, errC)
	}
	return retC, errC
}

func TestParityArsh32(t *testing.T) {
	// 32-bit arsh masks the shift with &31 (the other shifts use &63);
	// check both the immediate and register forms at the boundary.
	for _, shift := range []int32{0, 1, 31, 32, 33, 63} {
		p := NewBuilder().
			MovImm(R7, -8). // 0xfffffff8 after 32-bit truncation
			ALU32Imm(ALUArsh, R7, shift).
			MovReg(R0, R7).
			Exit().
			MustProgram("arsh32imm")
		got, _ := runBoth(t, p, nil, 0)
		want := uint64(uint32(int32(-8) >> (uint32(shift) & 31)))
		if got != want {
			t.Errorf("arsh32 imm shift %d: got %#x want %#x", shift, got, want)
		}

		b := NewBuilder().MovImm(R7, -8).MovImm(R8, shift)
		b.emit(Insn{Op: ClassALU | ALUArsh | SrcX, Dst: R7, Src: R8})
		p = b.MovReg(R0, R7).Exit().MustProgram("arsh32reg")
		got, _ = runBoth(t, p, nil, 0)
		if got != want {
			t.Errorf("arsh32 reg shift %d: got %#x want %#x", shift, got, want)
		}
	}
}

func TestParityDivModByZero(t *testing.T) {
	cases := []struct {
		name string
		op   uint8
		is64 bool
		want uint64 // for dividend 7, divisor 0
	}{
		{"div64", ALUDiv, true, 0},
		{"mod64", ALUMod, true, 7},
		{"div32", ALUDiv, false, 0},
		{"mod32", ALUMod, false, 7},
	}
	for _, tc := range cases {
		for _, regForm := range []bool{false, true} {
			b := NewBuilder().MovImm(R7, 7)
			cls := uint8(ClassALU)
			if tc.is64 {
				cls = ClassALU64
			}
			if regForm {
				b.MovImm(R8, 0)
				b.emit(Insn{Op: cls | tc.op | SrcX, Dst: R7, Src: R8})
			} else {
				b.emit(Insn{Op: cls | tc.op | SrcK, Dst: R7, Imm: 0})
			}
			p := b.MovReg(R0, R7).Exit().MustProgram(tc.name)
			got, _ := runBoth(t, p, nil, 0)
			if got != tc.want {
				t.Errorf("%s (reg=%v): got %d want %d", tc.name, regForm, got, tc.want)
			}
		}
	}
}

func TestParityNullCheckBranch(t *testing.T) {
	arr := NewArrayMap(8, 2)
	arr.SetU64(1, 0, 0xabcd)
	// Key 1 hits (value 0xabcd), key 5 misses (null): the null-check branch
	// must behave identically on both tiers, including the synthetic
	// non-zero address a live pointer compares as.
	for _, tc := range []struct{ key, want uint64 }{{1, 0xabcd}, {5, ^uint64(0)}} {
		p := NewBuilder().
			StoreImm(SizeW, R10, -4, int32(tc.key)).
			LoadMap(R1, arr).
			MovReg(R2, R10).
			AddImm(R2, -4).
			Call(HelperMapLookup).
			JumpImm(JmpEq, R0, 0, "miss").
			Load(SizeDW, R0, R0, 0).
			Exit().
			Label("miss").
			MovImm(R0, -1).
			Exit().
			MustProgram("nullcheck")
		got, _ := runBoth(t, p, nil, 0)
		if got != tc.want {
			t.Errorf("key %d: got %#x want %#x", tc.key, got, tc.want)
		}
	}
}

func TestParityLdImm64AtEnd(t *testing.T) {
	// A fused ld_imm64 as the last op before exit must survive the pc
	// remapping (its continuation slot is the second-to-last insn).
	p := NewBuilder().
		MovImm64(R0, 0xdead_beef_cafe_f00d).
		Exit().
		MustProgram("lddw-end")
	got, _ := runBoth(t, p, nil, 0)
	if got != 0xdead_beef_cafe_f00d {
		t.Errorf("got %#x", got)
	}

	// A ld_imm64 whose continuation IS the program end cannot compile:
	// control flow would fall off. (The verifier rejects it too.)
	trunc := &Program{Insns: []Insn{
		{Op: OpLdImm64, Dst: R0, Imm: 1},
		{Imm: 0},
	}}
	if _, err := compile(trunc, nil); err == nil {
		t.Fatal("compile accepted program falling off the end")
	}
	truncHard := &Program{Insns: []Insn{{Op: OpLdImm64, Dst: R0, Imm: 1}}}
	if _, err := compile(truncHard, nil); err == nil {
		t.Fatal("compile accepted truncated ld_imm64")
	}
}

func TestCompiledFuelLimit(t *testing.T) {
	// The compiled tier keeps the fuel limit as defense in depth. The
	// verifier rejects loops, so build the loop unverified via compile().
	loop := &Program{Insns: []Insn{
		{Op: ClassALU64 | ALUMov | SrcK, Dst: R0, Imm: 0}, // 0: r0 = 0
		{Op: ClassJMP | JmpA, Off: -2},                    // 1: goto 0
	}, Name: "loop"}
	cp, err := compile(loop, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := NewVM(nil).RunCompiled(cp, nil); !errors.Is(err, ErrFuel) {
		t.Fatalf("want ErrFuel, got %v", err)
	}
}

func TestCompiledBoundsDefenseInDepth(t *testing.T) {
	// Unverified programs still cannot escape their memory windows.
	oob := &Program{Insns: []Insn{
		{Op: ClassLDX | SizeDW | ModeMEM, Dst: R0, Src: R10, Off: 8}, // past stack top
		{Op: ClassJMP | JmpExit},
	}, Name: "oob"}
	cp, err := compile(oob, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := NewVM(nil).RunCompiled(cp, nil); !errors.Is(err, ErrFault) {
		t.Fatalf("want ErrFault, got %v", err)
	}
}

// --- zero-allocation and stack-watermark behaviour -----------------------

func TestCompiledRunZeroAlloc(t *testing.T) {
	arr := NewArrayMap(16, 4)
	arr.SetU64(0, 0, 1024)
	p := NewBuilder().
		StoreImm(SizeW, R10, -4, 0).
		LoadMap(R1, arr).
		MovReg(R2, R10).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		Load(SizeDW, R0, R0, 0).
		Exit().
		Label("miss").
		MovImm(R0, -1).
		Exit().
		MustProgram("alloc-probe")
	cp, err := Compile(p, &Verifier{CtxSize: 16})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vm := NewVM(nil)
	ctx := make([]byte, 16)
	if _, err := vm.RunCompiled(cp, ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := vm.RunCompiled(cp, ctx); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled run allocated %.1f times per invocation", allocs)
	}
}

func TestStackClearedBetweenInvocations(t *testing.T) {
	// The high-water-mark optimization must be invisible: a slot dirtied by
	// one invocation reads back zero in the next. The program reads before
	// writing, so it cannot pass the verifier; execute unverified on both
	// tiers (the watermark must hold even without verifier guarantees).
	p := &Program{Insns: []Insn{
		{Op: ClassLDX | SizeDW | ModeMEM, Dst: R0, Src: R10, Off: -256}, // r0 = old slot
		{Op: ClassALU64 | ALUMov | SrcK, Dst: R7, Imm: -1},
		{Op: ClassSTX | SizeDW | ModeMEM, Dst: R10, Src: R7, Off: -256}, // dirty it
		{Op: ClassJMP | JmpExit},
	}, Name: "hwm"}
	vm := NewVM(nil)
	for i := 0; i < 3; i++ {
		ret, err := vm.Run(p, nil)
		if err != nil {
			t.Fatalf("interp run %d: %v", i, err)
		}
		if ret != 0 {
			t.Fatalf("interp run %d: stale stack data %#x", i, ret)
		}
	}
	cp, err := compile(p, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for i := 0; i < 3; i++ {
		ret, err := vm.RunCompiled(cp, nil)
		if err != nil {
			t.Fatalf("compiled run %d: %v", i, err)
		}
		if ret != 0 {
			t.Fatalf("compiled run %d: stale stack data %#x", i, ret)
		}
	}
}

func TestHashMapUpdateReusesStorage(t *testing.T) {
	m := NewHashMap(4, 8, 4)
	key := []byte{1, 0, 0, 0}
	if err := m.Update(key, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	before := m.Lookup(key)
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.Update(key, []byte{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("existing-key update allocated %.1f times", allocs)
	}
	after := m.Lookup(key)
	if &before[0] != &after[0] {
		t.Fatal("update did not reuse value storage")
	}
	if !bytes.Equal(after, []byte{9, 9, 9, 9, 9, 9, 9, 9}) {
		t.Fatalf("value not updated: %x", after)
	}
}

func TestCompiledDump(t *testing.T) {
	arr := NewArrayMap(16, 4)
	p := NewBuilder().
		LoadMap(R1, arr).
		MovImm(R0, 0).
		Exit().
		MustProgram("dump")
	cp, err := Compile(p, &Verifier{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out := cp.Dump()
	for _, want := range []string{"ld_map", "mov_imm", "exit"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if cp.NumOps() != 3 {
		t.Errorf("NumOps = %d, want 3 (ld_imm64 fused)", cp.NumOps())
	}
}

// TestParityQoSSetClass checks the qos_set_class helper on both tiers:
// valid classes tag the VM and return 0, out-of-range classes return -1
// and leave the tag untouched, and every invocation starts untagged.
func TestParityQoSSetClass(t *testing.T) {
	for _, tc := range []struct {
		class   int32
		wantRet uint64
		wantTag uint8
	}{
		{0, 0, 0}, {1, 0, 1}, {3, 0, 3}, {4, ^uint64(0), 0}, {255, ^uint64(0), 0},
	} {
		p := NewBuilder().
			MovImm(R1, tc.class).
			Call(HelperQoSSetClass).
			Exit().
			MustProgram("qostag")
		cp, err := Compile(p, &Verifier{})
		if err != nil {
			t.Fatalf("class %d: compile: %v", tc.class, err)
		}
		vmI, vmC := NewVM(nil), NewVM(nil)
		retI, errI := vmI.Run(p, nil)
		retC, errC := vmC.RunCompiled(cp, nil)
		if errI != nil || errC != nil {
			t.Fatalf("class %d: errors %v / %v", tc.class, errI, errC)
		}
		if retI != tc.wantRet || retC != tc.wantRet {
			t.Errorf("class %d: r0 interp %#x compiled %#x, want %#x", tc.class, retI, retC, tc.wantRet)
		}
		if vmI.QoSClass != tc.wantTag || vmC.QoSClass != tc.wantTag {
			t.Errorf("class %d: tag interp %d compiled %d, want %d", tc.class, vmI.QoSClass, vmC.QoSClass, tc.wantTag)
		}
		// A following invocation that does not tag must reset the class.
		clear := NewBuilder().MovImm(R0, 0).Exit().MustProgram("noop")
		if _, err := vmI.Run(clear, nil); err != nil {
			t.Fatal(err)
		}
		ccp, _ := Compile(clear, &Verifier{})
		if _, err := vmC.RunCompiled(ccp, nil); err != nil {
			t.Fatal(err)
		}
		if vmI.QoSClass != 0 || vmC.QoSClass != 0 {
			t.Errorf("class %d: tag survived into next invocation", tc.class)
		}
	}
	// The assembler resolves the helper by name.
	p, err := Assemble("mov r1, 2\ncall qos_set_class\nexit\n", "asmqos", nil, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm := NewVM(nil)
	if _, err := vm.Run(p, nil); err != nil || vm.QoSClass != 2 {
		t.Fatalf("asm call: class %d err %v", vm.QoSClass, err)
	}
}
