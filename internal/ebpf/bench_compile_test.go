package ebpf

import "testing"

// BenchmarkVMRun compares the interpreter (reference tier) with the
// compiled tier on the two canonical classifier shapes: a branchy
// straight-line program and a map-lookup program. Before/after numbers are
// committed under results/microbench.txt.

func benchSimpleProgram() *Program {
	return NewBuilder().
		Load(SizeB, R2, R1, 0).
		JumpImm(JmpEq, R2, 1, "write").
		Return(0x11).
		Label("write").
		Return(0x22).MustProgram("bench")
}

func benchMapProgram(m *ArrayMap) *Program {
	return NewBuilder().
		MovImm(R2, 0).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		Load(SizeDW, R0, R0, 0).
		Exit().
		Label("miss").Return(0).MustProgram("benchmap")
}

func BenchmarkVMRun(b *testing.B) {
	simple := benchSimpleProgram()
	arr := NewArrayMap(8, 4)
	maplookup := benchMapProgram(arr)
	ctx := []byte{1}

	b.Run("interpreter/simple", func(b *testing.B) {
		vm := NewVM(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vm.Run(simple, ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled/simple", func(b *testing.B) {
		cp, err := Compile(simple, &Verifier{CtxSize: 1})
		if err != nil {
			b.Fatal(err)
		}
		vm := NewVM(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vm.RunCompiled(cp, ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpreter/maplookup", func(b *testing.B) {
		vm := NewVM(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vm.Run(maplookup, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled/maplookup", func(b *testing.B) {
		cp, err := Compile(maplookup, &Verifier{})
		if err != nil {
			b.Fatal(err)
		}
		vm := NewVM(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vm.RunCompiled(cp, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures the one-time load cost of the compile pass
// (excluding verification), for comparison with BenchmarkVerifier.
func BenchmarkCompile(b *testing.B) {
	arr := NewArrayMap(8, 4)
	p := benchMapProgram(arr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compile(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}
