package ebpf

import (
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func verifyAndRun(t *testing.T, p *Program, ctx []byte, ctxSize int) uint64 {
	t.Helper()
	v := &Verifier{CtxSize: ctxSize}
	if err := v.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	vm := NewVM(nil)
	r, err := vm.Run(p, ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r
}

func TestReturnConstant(t *testing.T) {
	p := NewBuilder().Return(42).MustProgram("ret42")
	if got := verifyAndRun(t, p, nil, 0); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestALUArithmetic(t *testing.T) {
	// r0 = ((7+5)*3 - 4) / 2 % 7 ^ 1 | 8 & 0xf = (((32/2)=16 %7=2) ^1=3 |8=11) &0xf=11
	p := NewBuilder().
		MovImm(R0, 7).AddImm(R0, 5).
		ALUImm(ALUMul, R0, 3).
		ALUImm(ALUSub, R0, 4).
		ALUImm(ALUDiv, R0, 2).
		ALUImm(ALUMod, R0, 7).
		ALUImm(ALUXor, R0, 1).
		ALUImm(ALUOr, R0, 8).
		ALUImm(ALUAnd, R0, 0xf).
		Exit().MustProgram("alu")
	if got := verifyAndRun(t, p, nil, 0); got != 11 {
		t.Fatalf("got %d", got)
	}
}

func TestDivModByZero(t *testing.T) {
	p := NewBuilder().
		MovImm(R0, 100).MovImm(R2, 0).
		ALU(ALUDiv, R0, R2). // eBPF semantics: x/0 = 0
		Exit().MustProgram("div0")
	if got := verifyAndRun(t, p, nil, 0); got != 0 {
		t.Fatalf("div by zero: got %d", got)
	}
	p2 := NewBuilder().
		MovImm(R0, 100).MovImm(R2, 0).
		ALU(ALUMod, R0, R2). // x%0 = x
		Exit().MustProgram("mod0")
	if got := verifyAndRun(t, p2, nil, 0); got != 100 {
		t.Fatalf("mod by zero: got %d", got)
	}
}

func TestShifts(t *testing.T) {
	p := NewBuilder().
		MovImm(R0, -16).
		ALUImm(ALUArsh, R0, 2). // -4
		Exit().MustProgram("arsh")
	if got := verifyAndRun(t, p, nil, 0); got != uint64(0xfffffffffffffffc) {
		t.Fatalf("arsh: got %#x", got)
	}
}

func TestMovImm64(t *testing.T) {
	p := NewBuilder().
		MovImm64(R0, 0xdeadbeefcafebabe).
		Exit().MustProgram("imm64")
	if got := verifyAndRun(t, p, nil, 0); got != 0xdeadbeefcafebabe {
		t.Fatalf("got %#x", got)
	}
}

func TestCtxReadWrite(t *testing.T) {
	// Read u32 at ctx[4], add 1, write to ctx[8], return old value.
	p := NewBuilder().
		Load(SizeW, R0, R1, 4).
		MovReg(R2, R0).
		AddImm(R2, 1).
		Store(SizeW, R1, 8, R2).
		Exit().MustProgram("ctxrw")
	ctx := make([]byte, 16)
	binary.LittleEndian.PutUint32(ctx[4:], 77)
	if got := verifyAndRun(t, p, ctx, 16); got != 77 {
		t.Fatalf("got %d", got)
	}
	if binary.LittleEndian.Uint32(ctx[8:]) != 78 {
		t.Fatal("ctx write (direct mediation) failed")
	}
}

func TestStackSpill(t *testing.T) {
	p := NewBuilder().
		MovImm(R2, 1234).
		Store(SizeDW, R10, -8, R2).
		Load(SizeDW, R0, R10, -8).
		Exit().MustProgram("stack")
	if got := verifyAndRun(t, p, nil, 0); got != 1234 {
		t.Fatalf("got %d", got)
	}
}

func TestBranches(t *testing.T) {
	// if ctx[0] > 10 return 1 else return 2
	p := NewBuilder().
		Load(SizeB, R2, R1, 0).
		JumpImm(JmpGt, R2, 10, "big").
		Return(2).
		Label("big").
		Return(1).MustProgram("branch")
	if got := verifyAndRun(t, p, []byte{50}, 1); got != 1 {
		t.Fatalf("taken: %d", got)
	}
	vm := NewVM(nil)
	if got, _ := vm.Run(p, []byte{5}); got != 2 {
		t.Fatalf("not taken: %d", got)
	}
}

func TestSignedBranch(t *testing.T) {
	p := NewBuilder().
		MovImm(R2, -5).
		JumpImm(JmpSLt, R2, 0, "neg").
		Return(0).
		Label("neg").
		Return(1).MustProgram("signed")
	if got := verifyAndRun(t, p, nil, 0); got != 1 {
		t.Fatal("signed compare failed")
	}
}

func TestMapLookupUpdate(t *testing.T) {
	m := NewArrayMap(8, 4)
	m.SetU64(2, 0, 9999)
	// key = 2 on stack; v = lookup(map, &key); if !v return -1; return *v
	p := NewBuilder().
		MovImm(R2, 2).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpNe, R0, 0, "found").
		Return(-1).
		Label("found").
		Load(SizeDW, R0, R0, 0).
		Exit().MustProgram("maplookup")
	if got := verifyAndRun(t, p, nil, 0); got != 9999 {
		t.Fatalf("got %d", got)
	}
}

func TestMapValueWriteThrough(t *testing.T) {
	m := NewArrayMap(8, 1)
	p := NewBuilder().
		MovImm(R2, 0).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		// *v += 1 (persistent state across invocations)
		Load(SizeDW, R3, R0, 0).
		AddImm(R3, 1).
		Store(SizeDW, R0, 0, R3).
		MovReg(R0, R3).
		Exit().
		Label("miss").
		Return(0).MustProgram("mapwrite")
	v := &Verifier{CtxSize: 0}
	if err := v.Verify(p); err != nil {
		t.Fatal(err)
	}
	vm := NewVM(nil)
	for i := uint64(1); i <= 5; i++ {
		got, err := vm.Run(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != i {
			t.Fatalf("invocation %d: got %d", i, got)
		}
	}
	if m.U64(0, 0) != 5 {
		t.Fatal("map state not persistent")
	}
}

func TestHashMapHelpers(t *testing.T) {
	m := NewHashMap(4, 8, 16)
	// update(map, key=7, value=55); return lookup(map, 7)->val
	p := NewBuilder().
		MovImm(R2, 7).
		Store(SizeW, R10, -4, R2).
		MovImm(R3, 55).
		Store(SizeDW, R10, -16, R3).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		MovReg(R3, R10).AddImm(R3, -16).
		MovImm(R4, 0).
		Call(HelperMapUpdate).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		Load(SizeDW, R0, R0, 0).
		Exit().
		Label("miss").Return(-1).MustProgram("hash")
	if got := verifyAndRun(t, p, nil, 0); got != 55 {
		t.Fatalf("got %d", got)
	}
	if m.Len() != 1 {
		t.Fatal("map should have 1 entry")
	}
}

// --- Verifier rejection tests ---

func wantReject(t *testing.T, p *Program, ctxSize int, frag string) {
	t.Helper()
	v := &Verifier{CtxSize: ctxSize}
	err := v.Verify(p)
	if err == nil {
		t.Fatalf("verifier accepted unsafe program (want %q)", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestVerifierRejectsUninitRead(t *testing.T) {
	p := NewBuilder().MovReg(R0, R3).Exit().MustProgram("uninit")
	wantReject(t, p, 0, "uninitialized")
}

func TestVerifierRejectsOOBCtx(t *testing.T) {
	p := NewBuilder().Load(SizeW, R0, R1, 13).Exit().MustProgram("oob")
	wantReject(t, p, 16, "ctx access")
	p2 := NewBuilder().Load(SizeW, R0, R1, -4).Exit().MustProgram("oob2")
	wantReject(t, p2, 16, "ctx access")
}

func TestVerifierRejectsOOBStack(t *testing.T) {
	p := NewBuilder().MovImm(R2, 0).Store(SizeDW, R10, 8, R2).Return(0).MustProgram("oobstack")
	wantReject(t, p, 0, "stack access")
	p2 := NewBuilder().MovImm(R2, 0).Store(SizeDW, R10, -520, R2).Return(0).MustProgram("oobstack2")
	wantReject(t, p2, 0, "stack access")
}

func TestVerifierRejectsUninitStackRead(t *testing.T) {
	p := NewBuilder().Load(SizeDW, R0, R10, -8).Exit().MustProgram("stackread")
	wantReject(t, p, 0, "uninitialized stack")
}

func TestVerifierRejectsLoop(t *testing.T) {
	p := NewBuilder().
		Label("top").
		MovImm(R0, 0).
		Jump("top").MustProgram("loop")
	wantReject(t, p, 0, "back-edge")
}

func TestVerifierRejectsCondLoop(t *testing.T) {
	p := NewBuilder().
		MovImm(R2, 10).
		Label("top").
		ALUImm(ALUSub, R2, 1).
		JumpImm(JmpNe, R2, 0, "top").
		Return(0).MustProgram("condloop")
	wantReject(t, p, 0, "back-edge")
}

func TestVerifierRejectsMissingNullCheck(t *testing.T) {
	m := NewArrayMap(8, 1)
	p := NewBuilder().
		MovImm(R2, 0).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		Call(HelperMapLookup).
		Load(SizeDW, R0, R0, 0). // deref without null check
		Exit().MustProgram("nonull")
	wantReject(t, p, 0, "null check")
}

func TestVerifierRejectsMapValueOOB(t *testing.T) {
	m := NewArrayMap(8, 1)
	p := NewBuilder().
		MovImm(R2, 0).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		Load(SizeDW, R2, R0, 8). // value is only 8 bytes: [8,16) OOB
		Label("miss").
		Return(0).MustProgram("mapoob")
	wantReject(t, p, 0, "map value access")
}

func TestVerifierRejectsFallOffEnd(t *testing.T) {
	p := &Program{Insns: []Insn{{Op: ClassALU64 | ALUMov | SrcK, Dst: R0, Imm: 1}}}
	wantReject(t, p, 0, "falls off")
}

func TestVerifierRejectsPointerStore(t *testing.T) {
	p := NewBuilder().
		MovReg(R2, R10).
		Store(SizeDW, R10, -8, R2).
		Return(0).MustProgram("ptrstore")
	wantReject(t, p, 0, "storing")
}

func TestVerifierRejectsPointerExit(t *testing.T) {
	p := NewBuilder().MovReg(R0, R1).Exit().MustProgram("ptrexit")
	wantReject(t, p, 8, "exit with r0")
}

func TestVerifierRejectsWriteToR10(t *testing.T) {
	p := NewBuilder().MovImm(R10, 0).Return(0).MustProgram("wr10")
	wantReject(t, p, 0, "read-only")
}

func TestVerifierRejectsUnboundedPtrArith(t *testing.T) {
	b := NewBuilder()
	b.Load(SizeW, R2, R1, 0) // unknown scalar from ctx
	b.ALU(ALUAdd, R1, R2)    // r1 (ctx ptr) += unknown
	b.Load(SizeW, R0, R1, 0)
	b.Exit()
	wantReject(t, b.MustProgram("ptrarith"), 8, "unbounded")
}

func TestVerifierRejectsTooLong(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < MaxInsns+1; i++ {
		b.MovImm(R0, 0)
	}
	b.Exit()
	wantReject(t, b.MustProgram("long"), 0, "too long")
}

func TestVerifierRejectsJumpIntoLdImm64(t *testing.T) {
	p := &Program{Insns: []Insn{
		{Op: ClassALU64 | ALUMov | SrcK, Dst: R2, Imm: 0},
		{Op: ClassJMP | JmpEq | SrcK, Dst: R2, Off: 1, Imm: 1}, // to continuation slot
		{Op: OpLdImm64, Dst: R0, Imm: 1},
		{},
		{Op: ClassJMP | JmpExit},
	}}
	wantReject(t, p, 0, "middle of ld_imm64")
}

func TestRuntimeFuelLimit(t *testing.T) {
	// Unverified program with an infinite loop must hit the fuel limit.
	p := &Program{Insns: []Insn{
		{Op: ClassALU64 | ALUMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassJMP | JmpA, Off: -2},
	}}
	vm := NewVM(nil)
	if _, err := vm.Run(p, nil); err != ErrFuel {
		t.Fatalf("want fuel error, got %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op, dst, src uint8, off int16, imm int32) bool {
		in := Insn{Op: op, Dst: dst & 0xf, Src: src & 0xf, Off: off, Imm: imm}
		b := in.Encode()
		return DecodeInsn(b[:]) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramEncodeDecode(t *testing.T) {
	p := NewBuilder().
		MovImm64(R2, 0x1234567890ab).
		MovReg(R0, R2).
		Exit().MustProgram("codec")
	code := p.Encode()
	p2, err := Decode(code, "codec")
	if err != nil {
		t.Fatal(err)
	}
	if got := verifyAndRun(t, p2, nil, 0); got != 0x1234567890ab {
		t.Fatalf("got %#x", got)
	}
}

func TestAssembler(t *testing.T) {
	m := NewArrayMap(8, 4)
	m.SetU64(1, 0, 4242)
	src := `
; classify: return config[1] + ctx[0]
	mov   r6, 0
	ldxb  r6, [r1+0]
	mov   r2, 1
	stxw  [r10-4], r2
	ldmap r1, config
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, miss
	ldxdw r0, [r0+0]
	add   r0, r6
	exit
miss:
	mov r0, -1
	exit
`
	p, err := Assemble(src, "asmtest", map[string]Map{"config": m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := []byte{5}
	if got := verifyAndRun(t, p, ctx, 1); got != 4247 {
		t.Fatalf("got %d", got)
	}
}

func TestAssemblerErrors(t *testing.T) {
	for _, src := range []string{
		"bogus r0, 1",
		"mov r99, 1",
		"ldxw r0, r1",
		"jeq r0, 0, nowhere\nexit",
		"ldmap r1, nosuchmap",
		"call nosuchhelper",
	} {
		if _, err := Assemble(src, "bad", nil, nil); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestDisassembleReassemble(t *testing.T) {
	p := NewBuilder().
		Load(SizeB, R2, R1, 0).
		JumpImm(JmpGt, R2, 10, "big").
		Return(2).
		Label("big").
		MovImm(R3, 7).
		Store(SizeW, R10, -4, R3).
		Load(SizeW, R0, R10, -4).
		Exit().MustProgram("roundtrip")
	text := Disassemble(p)
	p2, err := Assemble(text, "roundtrip2", nil, nil)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	for _, ctx := range [][]byte{{5}, {50}} {
		vm := NewVM(nil)
		a, err1 := vm.Run(p, append([]byte{}, ctx...))
		b, err2 := vm.Run(p2, append([]byte{}, ctx...))
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("ctx %v: %d/%v vs %d/%v", ctx, a, err1, b, err2)
		}
	}
}

// Property: for random scalar inputs, verified ALU programs never fault.
func TestVerifiedProgramsNeverFault(t *testing.T) {
	m := NewArrayMap(16, 8)
	p := NewBuilder().
		Load(SizeDW, R6, R1, 0).
		Load(SizeDW, R7, R1, 8).
		MovReg(R0, R6).
		ALU(ALUDiv, R0, R7).
		ALU(ALUXor, R0, R6).
		ALUImm(ALUMod, R0, 97).
		ALU(ALULsh, R0, R7).
		Exit().MustProgram("fuzzalu")
	v := &Verifier{CtxSize: 16}
	if err := v.Verify(p); err != nil {
		t.Fatal(err)
	}
	_ = m
	vm := NewVM(nil)
	f := func(a, b uint64) bool {
		ctx := make([]byte, 16)
		binary.LittleEndian.PutUint64(ctx, a)
		binary.LittleEndian.PutUint64(ctx[8:], b)
		_, err := vm.Run(p, ctx)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterpreterSimpleClassifier(b *testing.B) {
	p := NewBuilder().
		Load(SizeB, R2, R1, 0).
		JumpImm(JmpEq, R2, 1, "write").
		Return(0x11).
		Label("write").
		Return(0x22).MustProgram("bench")
	vm := NewVM(nil)
	ctx := []byte{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(p, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterMapLookup(b *testing.B) {
	m := NewArrayMap(8, 4)
	p := NewBuilder().
		MovImm(R2, 0).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		Load(SizeDW, R0, R0, 0).
		Exit().
		Label("miss").Return(0).MustProgram("benchmap")
	vm := NewVM(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifier(b *testing.B) {
	m := NewArrayMap(8, 4)
	p := NewBuilder().
		MovImm(R2, 0).
		Store(SizeW, R10, -4, R2).
		LoadMap(R1, m).
		MovReg(R2, R10).AddImm(R2, -4).
		Call(HelperMapLookup).
		JumpImm(JmpEq, R0, 0, "miss").
		Load(SizeDW, R0, R0, 0).
		Exit().
		Label("miss").Return(0).MustProgram("benchver")
	for i := 0; i < b.N; i++ {
		v := &Verifier{CtxSize: 64}
		if err := v.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
}
