package ebpf

import (
	"fmt"
)

// Helper IDs (matching the kernel's numbering where applicable; the NVMetro
// extensions live above the kernel range).
const (
	HelperMapLookup   = 1
	HelperMapUpdate   = 2
	HelperMapDelete   = 3
	HelperGetPrandom  = 7
	HelperQoSSetClass = 64
)

// Helper argument types, used by the verifier to type-check calls.
type ArgType uint8

// Argument kinds.
const (
	ArgNone ArgType = iota
	ArgMapPtr
	ArgPtrToMapKey   // stack pointer to an initialized map key
	ArgPtrToMapValue // stack pointer to an initialized map value
	ArgScalar
)

// RetType describes a helper's return value for the verifier.
type RetType uint8

// Return kinds.
const (
	RetScalar RetType = iota
	RetMapValueOrNull
)

// helperImpl couples a runtime implementation with its verifier signature.
// builtin marks the standard helpers, which are known not to write to the
// VM stack (custom helpers force a conservative full-stack clear on the
// next invocation — see VM.stackLow).
type helperImpl struct {
	name    string
	args    []ArgType
	ret     RetType
	fn      func(vm *VM, r []val) (val, error)
	builtin bool
}

// HelperRegistry maps helper IDs to implementations. The paper notes that
// extending the kernel helper set requires recompiling the verifier; here
// the registry makes the analogous extension point explicit.
type HelperRegistry struct {
	impls map[int32]*helperImpl
}

func (hr *HelperRegistry) get(id int32) *helperImpl { return hr.impls[id] }

// signature returns the verifier view of helper id.
func (hr *HelperRegistry) signature(id int32) (args []ArgType, ret RetType, name string, ok bool) {
	h := hr.impls[id]
	if h == nil {
		return nil, 0, "", false
	}
	return h.args, h.ret, h.name, true
}

// Register installs a custom helper.
func (hr *HelperRegistry) Register(id int32, name string, args []ArgType, ret RetType, fn func(vm *VM, r []val) (val, error)) {
	if hr.impls == nil {
		hr.impls = make(map[int32]*helperImpl)
	}
	hr.impls[id] = &helperImpl{name: name, args: args, ret: ret, fn: fn}
}

// register installs a standard helper (exempt from the conservative
// stack-dirtying custom helpers get).
func (hr *HelperRegistry) register(id int32, name string, args []ArgType, ret RetType, fn func(vm *VM, r []val) (val, error)) {
	hr.Register(id, name, args, ret, fn)
	hr.impls[id].builtin = true
}

func stackBytes(v val, n int) ([]byte, error) {
	if v.kind != kPtr {
		return nil, fmt.Errorf("%w: helper expects pointer argument", ErrFault)
	}
	start := int64(v.n)
	if start < 0 || start+int64(n) > int64(len(v.mem.data)) {
		return nil, fmt.Errorf("%w: helper argument out of bounds", ErrFault)
	}
	return v.mem.data[start : start+int64(n)], nil
}

// DefaultHelpers returns the standard helper set.
func DefaultHelpers() *HelperRegistry {
	hr := &HelperRegistry{}
	hr.register(HelperMapLookup, "map_lookup_elem",
		[]ArgType{ArgMapPtr, ArgPtrToMapKey}, RetMapValueOrNull,
		func(vm *VM, r []val) (val, error) {
			m := r[R1].m
			key, err := stackBytes(r[R2], m.KeySize())
			if err != nil {
				return val{}, err
			}
			v := m.Lookup(key)
			if v == nil {
				return scalar(0), nil
			}
			return val{kind: kPtr, mem: &memRegion{data: v, writable: true}}, nil
		})
	hr.register(HelperMapUpdate, "map_update_elem",
		[]ArgType{ArgMapPtr, ArgPtrToMapKey, ArgPtrToMapValue, ArgScalar}, RetScalar,
		func(vm *VM, r []val) (val, error) {
			m := r[R1].m
			key, err := stackBytes(r[R2], m.KeySize())
			if err != nil {
				return val{}, err
			}
			value, err := stackBytes(r[R3], m.ValueSize())
			if err != nil {
				return val{}, err
			}
			if err := m.Update(key, value); err != nil {
				return scalar(^uint64(0)), nil // -1
			}
			return scalar(0), nil
		})
	hr.register(HelperMapDelete, "map_delete_elem",
		[]ArgType{ArgMapPtr, ArgPtrToMapKey}, RetScalar,
		func(vm *VM, r []val) (val, error) {
			m := r[R1].m
			key, err := stackBytes(r[R2], m.KeySize())
			if err != nil {
				return val{}, err
			}
			if !m.Delete(key) {
				return scalar(^uint64(0)), nil
			}
			return scalar(0), nil
		})
	hr.register(HelperGetPrandom, "get_prandom_u32",
		nil, RetScalar,
		func(vm *VM, r []val) (val, error) {
			// xorshift seeded from invocation count: deterministic across
			// simulation runs, unlike the kernel's true PRNG. Shared with
			// the compiled tier (crun.go) so both tiers agree.
			return scalar(prandomU32(vm.Invocations)), nil
		})
	hr.register(HelperQoSSetClass, "qos_set_class",
		[]ArgType{ArgScalar}, RetScalar,
		func(vm *VM, r []val) (val, error) {
			// Tags the in-flight command's QoS scheduling class; the router
			// reads it back after the classifier returns. Out-of-range
			// classes are rejected (-1) and leave the tag untouched, so a
			// buggy program degrades to class-default scheduling.
			c := r[R1].n
			if c >= qosNumClasses {
				return scalar(^uint64(0)), nil
			}
			vm.QoSClass = uint8(c)
			return scalar(0), nil
		})
	return hr
}

// qosNumClasses mirrors qos.NumClasses, kept local so the generic VM layer
// stays decoupled from the scheduler; the core wiring tests assert the two
// stay equal.
const qosNumClasses = 4
