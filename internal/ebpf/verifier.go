package ebpf

import (
	"errors"
	"fmt"
)

// ErrVerify wraps all verifier rejections.
var ErrVerify = errors.New("ebpf: verification failed")

// verifyBudget bounds the total instructions simulated across all explored
// paths, the analogue of the kernel's complexity limit.
const verifyBudget = 1 << 20

// rt is the abstract type of a register during verification.
type rt uint8

const (
	rtUninit rt = iota
	rtScalar
	rtCtx
	rtStack
	rtMapValue
	rtMapValueOrNull
	rtMapPtr
)

func (t rt) String() string {
	switch t {
	case rtUninit:
		return "uninit"
	case rtScalar:
		return "scalar"
	case rtCtx:
		return "ctx"
	case rtStack:
		return "stack"
	case rtMapValue:
		return "map_value"
	case rtMapValueOrNull:
		return "map_value_or_null"
	case rtMapPtr:
		return "map_ptr"
	}
	return "?"
}

// vreg is the verifier's model of one register.
type vreg struct {
	t     rt
	off   int64 // constant offset for pointer types
	known bool  // constant tracking for scalars
	val   uint64
	m     Map // for map-derived types
}

func (r vreg) pointer() bool {
	return r.t == rtCtx || r.t == rtStack || r.t == rtMapValue
}

// vstate is the abstract machine state along one path.
type vstate struct {
	regs      [NumRegs]vreg
	stackInit [StackSize]bool
}

func (s *vstate) clone() *vstate {
	c := *s
	return &c
}

// Verifier statically checks programs before they may be attached to a
// router. ctxSize is the size of the context window passed in r1.
type Verifier struct {
	CtxSize int
	Helpers *HelperRegistry
}

// Verify checks the program, returning nil if it is safe to run.
func (v *Verifier) Verify(p *Program) error {
	if v.Helpers == nil {
		v.Helpers = DefaultHelpers()
	}
	n := len(p.Insns)
	if n == 0 {
		return fmt.Errorf("%w: empty program", ErrVerify)
	}
	if n > MaxInsns {
		return fmt.Errorf("%w: program too long (%d > %d)", ErrVerify, n, MaxInsns)
	}
	// Mark ld_imm64 continuation slots; jumping into them is invalid.
	isCont := make([]bool, n)
	for pc := 0; pc < n; pc++ {
		if p.Insns[pc].Op == OpLdImm64 {
			if pc+1 >= n {
				return fmt.Errorf("%w: truncated ld_imm64 at %d", ErrVerify, pc)
			}
			if p.Insns[pc+1].Op != 0 {
				return fmt.Errorf("%w: ld_imm64 at %d not followed by zero slot", ErrVerify, pc)
			}
			isCont[pc+1] = true
			pc++
		}
	}

	init := &vstate{}
	init.regs[R1] = vreg{t: rtCtx}
	init.regs[R10] = vreg{t: rtStack, off: StackSize}

	type frame struct {
		pc int
		st *vstate
	}
	work := []frame{{0, init}}
	budget := verifyBudget

	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		pc, st := f.pc, f.st
		for {
			if budget--; budget < 0 {
				return fmt.Errorf("%w: program too complex", ErrVerify)
			}
			if pc < 0 || pc >= n {
				return fmt.Errorf("%w: control flow falls off the program at %d", ErrVerify, pc)
			}
			if isCont[pc] {
				return fmt.Errorf("%w: jump into the middle of ld_imm64 at %d", ErrVerify, pc)
			}
			in := p.Insns[pc]
			switch in.Class() {
			case ClassALU64, ClassALU:
				if err := v.checkALU(st, in, pc); err != nil {
					return err
				}
				pc++
			case ClassLD:
				if in.Op != OpLdImm64 {
					return fmt.Errorf("%w: unsupported LD opcode %#x at %d", ErrVerify, in.Op, pc)
				}
				if err := checkWritable(in.Dst, pc); err != nil {
					return err
				}
				if in.Src == PseudoMapFD {
					idx := int(in.Imm)
					if idx < 0 || idx >= len(p.Maps) {
						return fmt.Errorf("%w: map index %d out of range at %d", ErrVerify, idx, pc)
					}
					st.regs[in.Dst] = vreg{t: rtMapPtr, m: p.Maps[idx]}
				} else {
					imm := uint64(uint32(in.Imm)) | uint64(uint32(p.Insns[pc+1].Imm))<<32
					st.regs[in.Dst] = vreg{t: rtScalar, known: true, val: imm}
				}
				pc += 2
			case ClassLDX:
				if err := v.checkMem(st, st.regs[in.Src], int64(in.Off), sizeOf(in.Op), false, pc); err != nil {
					return err
				}
				if err := checkWritable(in.Dst, pc); err != nil {
					return err
				}
				st.regs[in.Dst] = vreg{t: rtScalar}
				pc++
			case ClassST, ClassSTX:
				if in.Class() == ClassSTX {
					src := st.regs[in.Src]
					if src.t == rtUninit {
						return fmt.Errorf("%w: store of uninitialized r%d at %d", ErrVerify, in.Src, pc)
					}
					if src.t != rtScalar {
						return fmt.Errorf("%w: storing %v to memory unsupported at %d", ErrVerify, src.t, pc)
					}
				}
				if err := v.checkMem(st, st.regs[in.Dst], int64(in.Off), sizeOf(in.Op), true, pc); err != nil {
					return err
				}
				pc++
			case ClassJMP:
				op := in.Op & 0xf0
				switch op {
				case JmpExit:
					if st.regs[R0].t != rtScalar {
						return fmt.Errorf("%w: exit with r0 %v at %d", ErrVerify, st.regs[R0].t, pc)
					}
					goto nextPath
				case JmpCall:
					if err := v.checkCall(st, in, pc); err != nil {
						return err
					}
					pc++
				case JmpA:
					if in.Off < 0 {
						return fmt.Errorf("%w: back-edge at %d (loops are not allowed)", ErrVerify, pc)
					}
					pc += int(in.Off) + 1
				default:
					if in.Off < 0 {
						return fmt.Errorf("%w: back-edge at %d (loops are not allowed)", ErrVerify, pc)
					}
					taken, fall, err := v.checkBranch(st, in, pc)
					if err != nil {
						return err
					}
					work = append(work, frame{pc + int(in.Off) + 1, taken})
					st = fall
					pc++
				}
			default:
				return fmt.Errorf("%w: unknown instruction class %#x at %d", ErrVerify, in.Class(), pc)
			}
		}
	nextPath:
	}
	return nil
}

func checkWritable(reg uint8, pc int) error {
	if reg >= R10 {
		return fmt.Errorf("%w: write to read-only r%d at %d", ErrVerify, reg, pc)
	}
	return nil
}

func (v *Verifier) checkALU(st *vstate, in Insn, pc int) error {
	op := in.Op & 0xf0
	if err := checkWritable(in.Dst, pc); err != nil {
		return err
	}
	var src vreg
	if in.Op&SrcX != 0 {
		src = st.regs[in.Src]
		if src.t == rtUninit {
			return fmt.Errorf("%w: use of uninitialized r%d at %d", ErrVerify, in.Src, pc)
		}
	} else {
		src = vreg{t: rtScalar, known: true, val: uint64(int64(in.Imm))}
	}

	if op == ALUMov {
		if in.Class() == ClassALU && src.t != rtScalar {
			return fmt.Errorf("%w: 32-bit mov of %v at %d", ErrVerify, src.t, pc)
		}
		dst := src
		if in.Class() == ClassALU {
			dst.val = uint64(uint32(dst.val))
		}
		st.regs[in.Dst] = dst
		return nil
	}

	dst := st.regs[in.Dst]
	if op != ALUNeg && dst.t == rtUninit {
		return fmt.Errorf("%w: use of uninitialized r%d at %d", ErrVerify, in.Dst, pc)
	}
	if dst.pointer() {
		if in.Class() != ClassALU64 || (op != ALUAdd && op != ALUSub) {
			return fmt.Errorf("%w: invalid arithmetic on %v at %d", ErrVerify, dst.t, pc)
		}
		if src.t != rtScalar || !src.known {
			return fmt.Errorf("%w: pointer arithmetic with unbounded scalar at %d", ErrVerify, pc)
		}
		if op == ALUAdd {
			dst.off += int64(src.val)
		} else {
			dst.off -= int64(src.val)
		}
		st.regs[in.Dst] = dst
		return nil
	}
	if dst.t != rtScalar && op != ALUNeg {
		return fmt.Errorf("%w: arithmetic on %v at %d", ErrVerify, dst.t, pc)
	}
	if src.t != rtScalar {
		return fmt.Errorf("%w: arithmetic with %v source at %d", ErrVerify, src.t, pc)
	}

	out := vreg{t: rtScalar}
	if dst.known && src.known {
		is64 := in.Class() == ClassALU64
		a, b := dst.val, src.val
		if !is64 {
			a, b = uint64(uint32(a)), uint64(uint32(b))
		}
		out.known = true
		switch op {
		case ALUAdd:
			out.val = a + b
		case ALUSub:
			out.val = a - b
		case ALUMul:
			out.val = a * b
		case ALUDiv:
			if b != 0 {
				out.val = a / b
			}
		case ALUMod:
			if b == 0 {
				out.val = a
			} else {
				out.val = a % b
			}
		case ALUOr:
			out.val = a | b
		case ALUAnd:
			out.val = a & b
		case ALUXor:
			out.val = a ^ b
		case ALULsh:
			out.val = a << (b & 63)
		case ALURsh:
			out.val = a >> (b & 63)
		case ALUArsh:
			out.val = uint64(int64(a) >> (b & 63))
		case ALUNeg:
			out.val = -a
		default:
			return fmt.Errorf("%w: unknown ALU op %#x at %d", ErrVerify, op, pc)
		}
		if !is64 {
			out.val = uint64(uint32(out.val))
		}
	} else {
		switch op {
		case ALUAdd, ALUSub, ALUMul, ALUDiv, ALUMod, ALUOr, ALUAnd, ALUXor, ALULsh, ALURsh, ALUArsh, ALUNeg:
		default:
			return fmt.Errorf("%w: unknown ALU op %#x at %d", ErrVerify, op, pc)
		}
	}
	st.regs[in.Dst] = out
	return nil
}

// checkMem validates a sized access through reg at reg.off+off.
func (v *Verifier) checkMem(st *vstate, reg vreg, off int64, size int, write bool, pc int) error {
	start := reg.off + off
	switch reg.t {
	case rtCtx:
		if start < 0 || start+int64(size) > int64(v.CtxSize) {
			return fmt.Errorf("%w: ctx access [%d,+%d) outside %d bytes at %d", ErrVerify, start, size, v.CtxSize, pc)
		}
	case rtStack:
		if start < 0 || start+int64(size) > StackSize {
			return fmt.Errorf("%w: stack access [%d,+%d) out of bounds at %d", ErrVerify, start, size, pc)
		}
		if write {
			for i := int64(0); i < int64(size); i++ {
				st.stackInit[start+i] = true
			}
		} else {
			for i := int64(0); i < int64(size); i++ {
				if !st.stackInit[start+i] {
					return fmt.Errorf("%w: read of uninitialized stack byte %d at %d", ErrVerify, start+i, pc)
				}
			}
		}
	case rtMapValue:
		if start < 0 || start+int64(size) > int64(reg.m.ValueSize()) {
			return fmt.Errorf("%w: map value access [%d,+%d) outside %d bytes at %d", ErrVerify, start, size, reg.m.ValueSize(), pc)
		}
	case rtMapValueOrNull:
		return fmt.Errorf("%w: possibly-NULL map value dereference at %d (missing null check)", ErrVerify, pc)
	case rtUninit:
		return fmt.Errorf("%w: memory access through uninitialized register at %d", ErrVerify, pc)
	default:
		return fmt.Errorf("%w: memory access through %v at %d", ErrVerify, reg.t, pc)
	}
	return nil
}

func (v *Verifier) checkCall(st *vstate, in Insn, pc int) error {
	args, ret, name, ok := v.Helpers.signature(in.Imm)
	if !ok {
		return fmt.Errorf("%w: call to unknown helper %d at %d", ErrVerify, in.Imm, pc)
	}
	var m Map
	for i, at := range args {
		reg := st.regs[R1+i]
		switch at {
		case ArgMapPtr:
			if reg.t != rtMapPtr {
				return fmt.Errorf("%w: %s arg%d: want map pointer, have %v at %d", ErrVerify, name, i+1, reg.t, pc)
			}
			m = reg.m
		case ArgPtrToMapKey, ArgPtrToMapValue:
			if m == nil {
				return fmt.Errorf("%w: %s arg%d: no map in r1 at %d", ErrVerify, name, i+1, pc)
			}
			want := m.KeySize()
			if at == ArgPtrToMapValue {
				want = m.ValueSize()
			}
			if err := v.checkMem(st, reg, 0, want, false, pc); err != nil {
				return fmt.Errorf("%s arg%d: %w", name, i+1, err)
			}
		case ArgScalar:
			if reg.t != rtScalar {
				return fmt.Errorf("%w: %s arg%d: want scalar, have %v at %d", ErrVerify, name, i+1, reg.t, pc)
			}
		}
	}
	for i := R1; i <= R5; i++ {
		st.regs[i] = vreg{}
	}
	switch ret {
	case RetMapValueOrNull:
		st.regs[R0] = vreg{t: rtMapValueOrNull, m: m}
	default:
		st.regs[R0] = vreg{t: rtScalar}
	}
	return nil
}

// checkBranch validates a conditional jump and returns the refined states
// for the taken and fall-through paths.
func (v *Verifier) checkBranch(st *vstate, in Insn, pc int) (taken, fall *vstate, err error) {
	op := in.Op & 0xf0
	dst := st.regs[in.Dst]
	if dst.t == rtUninit {
		return nil, nil, fmt.Errorf("%w: branch on uninitialized r%d at %d", ErrVerify, in.Dst, pc)
	}
	var srcScalarZero bool
	if in.Op&SrcX != 0 {
		src := st.regs[in.Src]
		if src.t == rtUninit {
			return nil, nil, fmt.Errorf("%w: branch on uninitialized r%d at %d", ErrVerify, in.Src, pc)
		}
		if dst.pointer() || src.pointer() || dst.t == rtMapPtr || src.t == rtMapPtr {
			return nil, nil, fmt.Errorf("%w: pointer comparison at %d", ErrVerify, pc)
		}
		srcScalarZero = src.known && src.val == 0
	} else {
		srcScalarZero = in.Imm == 0
	}

	taken, fall = st.clone(), st
	// NULL-check refinement: `if (r == 0)` / `if (r != 0)` on a maybe-null
	// map value narrows the type on each side.
	if dst.t == rtMapValueOrNull {
		if (op != JmpEq && op != JmpNe) || !srcScalarZero {
			return nil, nil, fmt.Errorf("%w: %v used in non-null-check comparison at %d", ErrVerify, dst.t, pc)
		}
		null := vreg{t: rtScalar, known: true, val: 0}
		valid := vreg{t: rtMapValue, m: dst.m, off: dst.off}
		if op == JmpEq {
			taken.regs[in.Dst] = null
			fall.regs[in.Dst] = valid
		} else {
			taken.regs[in.Dst] = valid
			fall.regs[in.Dst] = null
		}
		return taken, fall, nil
	}
	if dst.t != rtScalar {
		return nil, nil, fmt.Errorf("%w: comparison on %v at %d", ErrVerify, dst.t, pc)
	}
	return taken, fall, nil
}
