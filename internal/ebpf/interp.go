package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MaxRuntimeInsns is the interpreter fuel limit: a defense-in-depth bound in
// case an unverified program is executed directly.
const MaxRuntimeInsns = 1 << 16

// ErrFault is returned for runtime memory violations.
var ErrFault = errors.New("ebpf: runtime fault")

// ErrFuel is returned when a program exceeds the instruction budget.
var ErrFuel = errors.New("ebpf: instruction budget exceeded")

type vkind uint8

const (
	kScalar vkind = iota
	kPtr
	kMap
)

// memRegion is a runtime memory window a pointer value may reference.
type memRegion struct {
	data     []byte
	writable bool
}

// val is a tagged runtime register value.
type val struct {
	kind vkind
	n    uint64 // scalar value, or offset within mem
	mem  *memRegion
	m    Map
}

func scalar(n uint64) val { return val{kind: kScalar, n: n} }

// VM executes verified programs. A VM is reusable across invocations and
// amortizes the stack allocation; it is not safe for concurrent use (in the
// simulation every classifier invocation happens under the single run token,
// matching per-CPU execution in the kernel).
type VM struct {
	stack [StackSize]byte
	regs  [NumRegs]val
	cregs [NumRegs]creg
	// Both memory regions live in the VM so Run performs no per-invocation
	// heap allocation; the ctx window is re-pointed on every call.
	stackRegion memRegion
	ctxRegion   memRegion
	// stackLow is the low-water mark of stack writes since the last clear
	// (the stack grows down): the next invocation only clears [stackLow:).
	stackLow int
	helpers  *HelperRegistry
	// QoSClass is the scheduling class tagged by the last invocation's
	// qos_set_class helper call (0 when the program did not tag one).
	// Cleared at the start of every Run/RunCompiled.
	QoSClass uint8
	// Stats
	Invocations uint64
	InsnCount   uint64
}

// NewVM creates a VM with the given helper registry (nil for DefaultHelpers).
func NewVM(helpers *HelperRegistry) *VM {
	if helpers == nil {
		helpers = DefaultHelpers()
	}
	vm := &VM{helpers: helpers, stackLow: StackSize}
	vm.stackRegion = memRegion{data: vm.stack[:], writable: true}
	return vm
}

// Run executes the program with ctx mapped read-write at r1.
// It returns the program's r0 exit value.
func (vm *VM) Run(p *Program, ctx []byte) (uint64, error) {
	vm.Invocations++
	vm.QoSClass = 0
	if vm.stackLow < StackSize {
		clear(vm.stack[vm.stackLow:])
		vm.stackLow = StackSize
	}
	vm.ctxRegion = memRegion{data: ctx, writable: true}
	for i := range vm.regs {
		vm.regs[i] = scalar(0)
	}
	vm.regs[R1] = val{kind: kPtr, mem: &vm.ctxRegion, n: 0}
	vm.regs[R10] = val{kind: kPtr, mem: &vm.stackRegion, n: StackSize}

	r := vm.regs[:]
	pc := 0
	for fuel := 0; ; fuel++ {
		if fuel >= MaxRuntimeInsns {
			return 0, ErrFuel
		}
		if pc < 0 || pc >= len(p.Insns) {
			return 0, fmt.Errorf("%w: pc %d out of program", ErrFault, pc)
		}
		in := p.Insns[pc]
		vm.InsnCount++
		switch in.Class() {
		case ClassALU64, ClassALU:
			if err := vm.alu(r, in); err != nil {
				return 0, err
			}
		case ClassLD:
			if in.Op != OpLdImm64 {
				return 0, fmt.Errorf("%w: unsupported LD op %#x", ErrFault, in.Op)
			}
			if pc+1 >= len(p.Insns) {
				return 0, fmt.Errorf("%w: truncated ld_imm64", ErrFault)
			}
			next := p.Insns[pc+1]
			if in.Src == PseudoMapFD {
				idx := int(in.Imm)
				if idx < 0 || idx >= len(p.Maps) {
					return 0, fmt.Errorf("%w: bad map index %d", ErrFault, idx)
				}
				r[in.Dst] = val{kind: kMap, m: p.Maps[idx]}
			} else {
				r[in.Dst] = scalar(uint64(uint32(in.Imm)) | uint64(uint32(next.Imm))<<32)
			}
			pc++
		case ClassLDX:
			v, err := vm.load(r[in.Src], int64(in.Off), sizeOf(in.Op))
			if err != nil {
				return 0, err
			}
			r[in.Dst] = scalar(v)
		case ClassST:
			if err := vm.store(r[in.Dst], int64(in.Off), sizeOf(in.Op), uint64(uint32(in.Imm))); err != nil {
				return 0, err
			}
		case ClassSTX:
			if r[in.Src].kind != kScalar {
				return 0, fmt.Errorf("%w: storing non-scalar", ErrFault)
			}
			if err := vm.store(r[in.Dst], int64(in.Off), sizeOf(in.Op), r[in.Src].n); err != nil {
				return 0, err
			}
		case ClassJMP:
			op := in.Op & 0xf0
			switch op {
			case JmpExit:
				if r[R0].kind != kScalar {
					return 0, fmt.Errorf("%w: exit with pointer in r0", ErrFault)
				}
				return r[R0].n, nil
			case JmpCall:
				if err := vm.call(r, in.Imm); err != nil {
					return 0, err
				}
			case JmpA:
				pc += int(in.Off)
			default:
				taken, err := vm.branch(r, in)
				if err != nil {
					return 0, err
				}
				if taken {
					pc += int(in.Off)
				}
			}
		default:
			return 0, fmt.Errorf("%w: unknown class %#x", ErrFault, in.Class())
		}
		pc++
	}
}

func sizeOf(op uint8) int {
	switch op & 0x18 {
	case SizeB:
		return 1
	case SizeH:
		return 2
	case SizeW:
		return 4
	default:
		return 8
	}
}

func (vm *VM) window(v val, off int64, size int, write bool) ([]byte, error) {
	if v.kind != kPtr {
		return nil, fmt.Errorf("%w: memory access through non-pointer", ErrFault)
	}
	start := int64(v.n) + off
	if start < 0 || start+int64(size) > int64(len(v.mem.data)) {
		return nil, fmt.Errorf("%w: access [%d,+%d) outside region of %d bytes", ErrFault, start, size, len(v.mem.data))
	}
	if write && !v.mem.writable {
		return nil, fmt.Errorf("%w: write to read-only region", ErrFault)
	}
	return v.mem.data[start : start+int64(size)], nil
}

func (vm *VM) load(src val, off int64, size int) (uint64, error) {
	w, err := vm.window(src, off, size, false)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(w[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(w)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(w)), nil
	default:
		return binary.LittleEndian.Uint64(w), nil
	}
}

func (vm *VM) store(dst val, off int64, size int, v uint64) error {
	w, err := vm.window(dst, off, size, true)
	if err != nil {
		return err
	}
	if dst.mem == &vm.stackRegion {
		if start := int(int64(dst.n) + off); start < vm.stackLow {
			vm.stackLow = start
		}
	}
	switch size {
	case 1:
		w[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(w, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(w, uint32(v))
	default:
		binary.LittleEndian.PutUint64(w, v)
	}
	return nil
}

func (vm *VM) alu(r []val, in Insn) error {
	is64 := in.Class() == ClassALU64
	op := in.Op & 0xf0
	var src uint64
	if in.Op&SrcX != 0 {
		if r[in.Src].kind != kScalar && !(op == ALUMov) {
			return fmt.Errorf("%w: ALU on pointer source", ErrFault)
		}
		src = r[in.Src].n
	} else {
		src = uint64(int64(in.Imm)) // sign-extended immediate
	}

	// MOV copies the whole tagged value when the source is a register.
	if op == ALUMov {
		if in.Op&SrcX != 0 {
			r[in.Dst] = r[in.Src]
			if !is64 {
				if r[in.Dst].kind != kScalar {
					return fmt.Errorf("%w: 32-bit mov of pointer", ErrFault)
				}
				r[in.Dst].n = uint64(uint32(r[in.Dst].n))
			}
		} else {
			v := src
			if !is64 {
				v = uint64(uint32(v))
			}
			r[in.Dst] = scalar(v)
		}
		return nil
	}

	dst := r[in.Dst]
	// Pointer arithmetic: ptr +/- scalar keeps the region.
	if dst.kind == kPtr {
		if !is64 || (op != ALUAdd && op != ALUSub) {
			return fmt.Errorf("%w: invalid pointer arithmetic", ErrFault)
		}
		if op == ALUAdd {
			dst.n += src
		} else {
			dst.n -= src
		}
		r[in.Dst] = dst
		return nil
	}
	if dst.kind != kScalar {
		return fmt.Errorf("%w: ALU on map reference", ErrFault)
	}

	a, b := dst.n, src
	if !is64 {
		a, b = uint64(uint32(a)), uint64(uint32(b))
	}
	var out uint64
	switch op {
	case ALUAdd:
		out = a + b
	case ALUSub:
		out = a - b
	case ALUMul:
		out = a * b
	case ALUDiv:
		if b == 0 {
			out = 0
		} else {
			out = a / b
		}
	case ALUMod:
		if b == 0 {
			out = a
		} else {
			out = a % b
		}
	case ALUOr:
		out = a | b
	case ALUAnd:
		out = a & b
	case ALUXor:
		out = a ^ b
	case ALULsh:
		out = a << (b & 63)
	case ALURsh:
		out = a >> (b & 63)
	case ALUArsh:
		if is64 {
			out = uint64(int64(a) >> (b & 63))
		} else {
			out = uint64(int32(uint32(a)) >> (b & 31))
		}
	case ALUNeg:
		out = -a
	default:
		return fmt.Errorf("%w: unknown ALU op %#x", ErrFault, op)
	}
	if !is64 {
		out = uint64(uint32(out))
	}
	r[in.Dst] = scalar(out)
	return nil
}

func (vm *VM) branch(r []val, in Insn) (bool, error) {
	op := in.Op & 0xf0
	var a, b uint64
	dst := r[in.Dst]
	if in.Op&SrcX != 0 {
		srcv := r[in.Src]
		// Pointer comparisons are only meaningful scalar-vs-scalar or
		// same-region; the verifier restricts to null checks and scalars.
		a, b = dst.n, srcv.n
		if dst.kind == kPtr {
			a = regionAddr(dst)
		}
		if srcv.kind == kPtr {
			b = regionAddr(srcv)
		}
	} else {
		a = dst.n
		if dst.kind == kPtr {
			a = regionAddr(dst)
		}
		b = uint64(int64(in.Imm))
	}
	switch op {
	case JmpEq:
		return a == b, nil
	case JmpNe:
		return a != b, nil
	case JmpGt:
		return a > b, nil
	case JmpGe:
		return a >= b, nil
	case JmpLt:
		return a < b, nil
	case JmpLe:
		return a <= b, nil
	case JmpSGt:
		return int64(a) > int64(b), nil
	case JmpSGe:
		return int64(a) >= int64(b), nil
	case JmpSLt:
		return int64(a) < int64(b), nil
	case JmpSLe:
		return int64(a) <= int64(b), nil
	case JmpSet:
		return a&b != 0, nil
	}
	return false, fmt.Errorf("%w: unknown jump op %#x", ErrFault, op)
}

// regionAddr gives pointers a non-zero comparable representation so that
// null checks (ptr == 0) behave: a live pointer never compares equal to 0.
func regionAddr(v val) uint64 { return 0x5a5a_0000_0000_0000 + v.n }

func (vm *VM) call(r []val, id int32) error {
	h := vm.helpers.get(id)
	if h == nil {
		return fmt.Errorf("%w: unknown helper %d", ErrFault, id)
	}
	ret, err := h.fn(vm, r)
	if err != nil {
		return err
	}
	if !h.builtin {
		// A custom helper may write through any pointer it was handed
		// without going through vm.store; assume the whole stack is dirty.
		vm.stackLow = 0
	}
	r[R0] = ret
	// r1-r5 are caller-saved and become unspecified; zero them for
	// determinism (the verifier already forbids reading them).
	for i := R1; i <= R5; i++ {
		r[i] = scalar(0)
	}
	return nil
}
