package ebpf

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a textual assembler and disassembler for classifier
// programs, used by cmd/nvmetro-asm and the examples. Syntax, one
// instruction per line ("; comment" to end of line):
//
//	start:                  ; label
//	mov   r0, 0             ; or mov r0, r3
//	lddw  r1, 0x1122334455  ; 64-bit immediate (two slots)
//	ldmap r1, config        ; load a map reference by name
//	add   r2, -8            ; alu: add sub mul div mod or and xor lsh rsh arsh neg
//	ldxw  r3, [r1+8]        ; loads: ldxb ldxh ldxw ldxdw
//	stxdw [r10-8], r3       ; stores: stxb stxh stxw stxdw
//	stw   [r1+0], 7         ; immediate stores: stb sth stw stdw
//	jeq   r3, 1, start      ; jumps: ja jeq jne jgt jge jlt jle jsgt jsge jslt jsle jset
//	call  map_lookup_elem   ; helper by name or number
//	exit

var aluOps = map[string]uint8{
	"add": ALUAdd, "sub": ALUSub, "mul": ALUMul, "div": ALUDiv, "mod": ALUMod,
	"or": ALUOr, "and": ALUAnd, "xor": ALUXor, "lsh": ALULsh, "rsh": ALURsh,
	"arsh": ALUArsh, "mov": ALUMov,
}

var jmpOps = map[string]uint8{
	"jeq": JmpEq, "jne": JmpNe, "jgt": JmpGt, "jge": JmpGe, "jlt": JmpLt,
	"jle": JmpLe, "jsgt": JmpSGt, "jsge": JmpSGe, "jslt": JmpSLt, "jsle": JmpSLe,
	"jset": JmpSet,
}

var sizeSuffix = map[string]uint8{"b": SizeB, "h": SizeH, "w": SizeW, "dw": SizeDW}

// Assemble parses source into a program. maps resolves `ldmap` names;
// helpers resolves `call` names (nil for DefaultHelpers).
func Assemble(src, name string, maps map[string]Map, helpers *HelperRegistry) (*Program, error) {
	if helpers == nil {
		helpers = DefaultHelpers()
	}
	helperByName := make(map[string]int32)
	for id, h := range helpers.impls {
		helperByName[h.name] = id
	}
	b := NewBuilder()
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			b.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		if err := asmLine(b, line, maps, helperByName); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return b.Program(name)
}

// MustAssemble panics on assembly failure (static program definitions).
func MustAssemble(src, name string, maps map[string]Map, helpers *HelperRegistry) *Program {
	p, err := Assemble(src, name, maps, helpers)
	if err != nil {
		panic(err)
	}
	return p
}

func asmLine(b *Builder, line string, maps map[string]Map, helperByName map[string]int32) error {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	op := strings.ToLower(fields[0])
	args := fields[1:]

	reg := func(s string) (uint8, error) {
		if !strings.HasPrefix(s, "r") {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			// Allow big unsigned hex constants.
			u, uerr := strconv.ParseUint(s, 0, 64)
			if uerr != nil {
				return 0, fmt.Errorf("bad immediate %q", s)
			}
			return int64(u), nil
		}
		return v, nil
	}
	// memRef parses "[rX+off]" or "[rX-off]" or "[rX]".
	memRef := func(s string) (uint8, int16, error) {
		if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
			return 0, 0, fmt.Errorf("expected memory operand, got %q", s)
		}
		inner := s[1 : len(s)-1]
		sep := strings.IndexAny(inner[1:], "+-")
		if sep < 0 {
			r, err := reg(inner)
			return r, 0, err
		}
		sep++
		r, err := reg(inner[:sep])
		if err != nil {
			return 0, 0, err
		}
		off, err := strconv.ParseInt(inner[sep:], 0, 16)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		return r, int16(off), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch {
	case op == "exit":
		if err := need(0); err != nil {
			return err
		}
		b.Exit()
	case op == "call":
		if err := need(1); err != nil {
			return err
		}
		if id, ok := helperByName[args[0]]; ok {
			b.Call(id)
		} else if v, err := imm(args[0]); err == nil {
			b.Call(int32(v))
		} else {
			return fmt.Errorf("unknown helper %q", args[0])
		}
	case op == "ja":
		if err := need(1); err != nil {
			return err
		}
		b.Jump(args[0])
	case op == "lddw":
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := imm(args[1])
		if err != nil {
			return err
		}
		b.MovImm64(d, uint64(v))
	case op == "ldmap":
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		m, ok := maps[args[1]]
		if !ok {
			return fmt.Errorf("unknown map %q", args[1])
		}
		b.LoadMap(d, m)
	case op == "neg":
		if err := need(1); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		b.emit(Insn{Op: ClassALU64 | ALUNeg, Dst: d})
	case aluOps[op] != 0 || op == "add":
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		code := aluOps[op]
		if s, err := reg(args[1]); err == nil {
			b.emit(Insn{Op: ClassALU64 | code | SrcX, Dst: d, Src: s})
		} else if v, err := imm(args[1]); err == nil {
			b.emit(Insn{Op: ClassALU64 | code | SrcK, Dst: d, Imm: int32(v)})
		} else {
			return err
		}
	case strings.HasPrefix(op, "ldx"):
		if err := need(2); err != nil {
			return err
		}
		size, ok := sizeSuffix[op[3:]]
		if !ok {
			return fmt.Errorf("bad load %q", op)
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		s, off, err := memRef(args[1])
		if err != nil {
			return err
		}
		b.Load(size, d, s, off)
	case strings.HasPrefix(op, "stx"):
		if err := need(2); err != nil {
			return err
		}
		size, ok := sizeSuffix[op[3:]]
		if !ok {
			return fmt.Errorf("bad store %q", op)
		}
		d, off, err := memRef(args[0])
		if err != nil {
			return err
		}
		s, err := reg(args[1])
		if err != nil {
			return err
		}
		b.Store(size, d, off, s)
	case strings.HasPrefix(op, "st"):
		if err := need(2); err != nil {
			return err
		}
		size, ok := sizeSuffix[op[2:]]
		if !ok {
			return fmt.Errorf("bad store %q", op)
		}
		d, off, err := memRef(args[0])
		if err != nil {
			return err
		}
		v, err := imm(args[1])
		if err != nil {
			return err
		}
		b.StoreImm(size, d, off, int32(v))
	case jmpOps[op] != 0:
		if err := need(3); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		if s, err := reg(args[1]); err == nil {
			b.JumpReg(jmpOps[op], d, s, args[2])
		} else if v, err := imm(args[1]); err == nil {
			b.JumpImm(jmpOps[op], d, int32(v), args[2])
		} else {
			return err
		}
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return b.err
}

// Disassemble renders a program as assembler text (labels synthesized as
// Lnn for jump targets).
func Disassemble(p *Program) string {
	labels := make(map[int]string)
	for pc, in := range p.Insns {
		if in.Class() == ClassJMP {
			op := in.Op & 0xf0
			if op != JmpExit && op != JmpCall {
				t := pc + int(in.Off) + 1
				if _, ok := labels[t]; !ok {
					labels[t] = fmt.Sprintf("L%d", len(labels))
				}
			}
		}
	}
	var sb strings.Builder
	for pc := 0; pc < len(p.Insns); pc++ {
		if l, ok := labels[pc]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		in := p.Insns[pc]
		if in.Op == OpLdImm64 {
			next := p.Insns[pc+1]
			if in.Src == PseudoMapFD {
				fmt.Fprintf(&sb, "\tldmap r%d, map%d\n", in.Dst, in.Imm)
			} else {
				v := uint64(uint32(in.Imm)) | uint64(uint32(next.Imm))<<32
				fmt.Fprintf(&sb, "\tlddw r%d, %#x\n", in.Dst, v)
			}
			pc++
			continue
		}
		s, err := disasmOne(in, Insn{})
		if err != nil {
			s = fmt.Sprintf(".raw %#02x %d %d %d %d", in.Op, in.Dst, in.Src, in.Off, in.Imm)
		}
		if in.Class() == ClassJMP {
			op := in.Op & 0xf0
			if op != JmpExit && op != JmpCall {
				s += " " + labels[pc+int(in.Off)+1]
			}
		}
		fmt.Fprintf(&sb, "\t%s\n", s)
	}
	return sb.String()
}

func nameOf(m map[string]uint8, code uint8) string {
	for n, c := range m {
		if c == code {
			return n
		}
	}
	return ""
}

func sizeName(op uint8) string {
	switch op & 0x18 {
	case SizeB:
		return "b"
	case SizeH:
		return "h"
	case SizeW:
		return "w"
	}
	return "dw"
}

func disasmOne(in Insn, _ Insn) (string, error) {
	switch in.Class() {
	case ClassALU64, ClassALU:
		op := in.Op & 0xf0
		name := nameOf(aluOps, op)
		if op == ALUAdd {
			name = "add"
		}
		if op == ALUNeg {
			return fmt.Sprintf("neg r%d", in.Dst), nil
		}
		if name == "" {
			return "", fmt.Errorf("bad alu %#x", in.Op)
		}
		if in.Op&SrcX != 0 {
			return fmt.Sprintf("%s r%d, r%d", name, in.Dst, in.Src), nil
		}
		return fmt.Sprintf("%s r%d, %d", name, in.Dst, in.Imm), nil
	case ClassLDX:
		return fmt.Sprintf("ldx%s r%d, [r%d%+d]", sizeName(in.Op), in.Dst, in.Src, in.Off), nil
	case ClassSTX:
		return fmt.Sprintf("stx%s [r%d%+d], r%d", sizeName(in.Op), in.Dst, in.Off, in.Src), nil
	case ClassST:
		return fmt.Sprintf("st%s [r%d%+d], %d", sizeName(in.Op), in.Dst, in.Off, in.Imm), nil
	case ClassJMP:
		op := in.Op & 0xf0
		switch op {
		case JmpExit:
			return "exit", nil
		case JmpCall:
			return fmt.Sprintf("call %d", in.Imm), nil
		case JmpA:
			return "ja", nil
		}
		name := nameOf(jmpOps, op)
		if name == "" {
			return "", fmt.Errorf("bad jmp %#x", in.Op)
		}
		if in.Op&SrcX != 0 {
			return fmt.Sprintf("%s r%d, r%d,", name, in.Dst, in.Src), nil
		}
		return fmt.Sprintf("%s r%d, %d,", name, in.Dst, in.Imm), nil
	}
	return "", fmt.Errorf("bad class %#x", in.Op)
}
