// Package ebpf implements the sandboxed classifier runtime at the heart of
// NVMetro's I/O router: a faithful subset of the Linux eBPF instruction set
// with an in-process static verifier, interpreter, maps and helper calls.
//
// Classifiers are 64-bit register programs (r0–r10, 512-byte stack) that
// receive a pointer to the classification context in r1 and return a routing
// decision in r0. The context window is writable, which is how classifiers
// perform "direct mediation" (e.g. translating a request's LBA) exactly as
// described in the paper. The verifier enforces the same contract as the
// kernel's: no unbounded loops, no out-of-bounds or uninitialized access,
// null-checked map value pointers, bounded program size.
package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Register names r0..r10.
const (
	R0 = iota // return value / scratch
	R1        // first argument (context pointer on entry)
	R2
	R3
	R4
	R5
	R6 // callee-saved
	R7
	R8
	R9
	R10 // frame pointer (read-only)
	NumRegs
)

// StackSize is the per-program stack size in bytes.
const StackSize = 512

// MaxInsns is the maximum program length the verifier accepts.
const MaxInsns = 4096

// Instruction classes (low 3 bits of the opcode).
const (
	ClassLD    = 0x00
	ClassLDX   = 0x01
	ClassST    = 0x02
	ClassSTX   = 0x03
	ClassALU   = 0x04
	ClassJMP   = 0x05
	ClassALU64 = 0x07
)

// Size field for load/store opcodes.
const (
	SizeW  = 0x00 // 4 bytes
	SizeH  = 0x08 // 2 bytes
	SizeB  = 0x10 // 1 byte
	SizeDW = 0x18 // 8 bytes
)

// Mode field for load/store opcodes.
const (
	ModeIMM = 0x00
	ModeMEM = 0x60
)

// Source bit for ALU/JMP opcodes.
const (
	SrcK = 0x00 // immediate
	SrcX = 0x08 // register
)

// ALU operations (high 4 bits).
const (
	ALUAdd  = 0x00
	ALUSub  = 0x10
	ALUMul  = 0x20
	ALUDiv  = 0x30
	ALUOr   = 0x40
	ALUAnd  = 0x50
	ALULsh  = 0x60
	ALURsh  = 0x70
	ALUNeg  = 0x80
	ALUMod  = 0x90
	ALUXor  = 0xa0
	ALUMov  = 0xb0
	ALUArsh = 0xc0
)

// Jump operations (high 4 bits).
const (
	JmpA    = 0x00
	JmpEq   = 0x10
	JmpGt   = 0x20
	JmpGe   = 0x30
	JmpSet  = 0x40
	JmpNe   = 0x50
	JmpSGt  = 0x60
	JmpSGe  = 0x70
	JmpCall = 0x80
	JmpExit = 0x90
	JmpLt   = 0xa0
	JmpLe   = 0xb0
	JmpSLt  = 0xc0
	JmpSLe  = 0xd0
)

// OpLdImm64 is the two-slot 64-bit immediate load (class LD, size DW).
const OpLdImm64 = ClassLD | SizeDW | ModeIMM

// PseudoMapFD in the src register of an OpLdImm64 marks the immediate as a
// map reference rather than a plain constant (mirrors BPF_PSEUDO_MAP_FD).
const PseudoMapFD = 1

// Insn is one 8-byte eBPF instruction (OpLdImm64 uses two).
type Insn struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
}

// Class returns the instruction class.
func (i Insn) Class() uint8 { return i.Op & 0x07 }

// InsnSize is the encoded instruction size in bytes.
const InsnSize = 8

// Encode serializes the instruction in the kernel's wire layout:
// op:8 dst:4 src:4 off:16 imm:32, little-endian.
func (i Insn) Encode() [InsnSize]byte {
	var b [InsnSize]byte
	b[0] = i.Op
	b[1] = i.Dst&0xf | i.Src<<4
	binary.LittleEndian.PutUint16(b[2:4], uint16(i.Off))
	binary.LittleEndian.PutUint32(b[4:8], uint32(i.Imm))
	return b
}

// DecodeInsn parses one encoded instruction.
func DecodeInsn(b []byte) Insn {
	return Insn{
		Op:  b[0],
		Dst: b[1] & 0xf,
		Src: b[1] >> 4,
		Off: int16(binary.LittleEndian.Uint16(b[2:4])),
		Imm: int32(binary.LittleEndian.Uint32(b[4:8])),
	}
}

// Program is a verified-or-not sequence of instructions plus the maps it
// references (indexed by the imm of PseudoMapFD loads).
type Program struct {
	Insns []Insn
	Maps  []Map
	Name  string
}

// Encode serializes all instructions.
func (p *Program) Encode() []byte {
	out := make([]byte, 0, len(p.Insns)*InsnSize)
	for _, in := range p.Insns {
		b := in.Encode()
		out = append(out, b[:]...)
	}
	return out
}

// Decode parses an encoded program. Maps must be attached separately.
func Decode(code []byte, name string) (*Program, error) {
	if len(code)%InsnSize != 0 {
		return nil, fmt.Errorf("ebpf: code size %d not a multiple of %d", len(code), InsnSize)
	}
	p := &Program{Name: name}
	for off := 0; off < len(code); off += InsnSize {
		p.Insns = append(p.Insns, DecodeInsn(code[off:]))
	}
	return p, nil
}

func (i Insn) String() string {
	if s, err := disasmOne(i, Insn{}); err == nil {
		return s
	}
	return fmt.Sprintf("insn{op=%#02x dst=r%d src=r%d off=%d imm=%d}", i.Op, i.Dst, i.Src, i.Off, i.Imm)
}
