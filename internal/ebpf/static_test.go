package ebpf

import "testing"

// staticCtxSize mirrors the router's classifier ctx window.
const staticCtxSize = 96

func mustCompile(t *testing.T, b *Builder, name string) *CompiledProgram {
	t.Helper()
	p := b.MustProgram(name)
	cp, err := Compile(p, &Verifier{CtxSize: staticCtxSize})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return cp
}

// TestStaticVerdictConstant proves the canonical fast-path classifier: a
// single constant return.
func TestStaticVerdictConstant(t *testing.T) {
	b := NewBuilder()
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "const")
	v, ok := cp.StaticVerdict()
	if !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}
	// Cross-check against actual execution.
	vm := NewVM(nil)
	got, err := vm.RunCompiled(cp, make([]byte, staticCtxSize))
	if err != nil || got != v {
		t.Fatalf("RunCompiled = %#x, %v; want %#x", got, err, v)
	}
}

// TestStaticVerdictDeadBranch: a branch whose condition folds to a constant
// leaves the divergent verdict unreachable, so the proof still holds.
func TestStaticVerdictDeadBranch(t *testing.T) {
	b := NewBuilder()
	b.MovImm(R6, 5)
	b.JumpImm(JmpEq, R6, 5, "fast")
	b.MovImm64(R0, 0x999).Exit() // statically dead
	b.Label("fast")
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "deadbranch")
	v, ok := cp.StaticVerdict()
	if !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}
}

// TestStaticVerdictDataBranchSameConst: a runtime-dependent branch whose
// arms agree still proves constant.
func TestStaticVerdictDataBranchSameConst(t *testing.T) {
	b := NewBuilder()
	b.Load(SizeW, R2, R1, 0)
	b.JumpImm(JmpEq, R2, 0, "a")
	b.MovImm64(R0, 0x410000).Exit()
	b.Label("a")
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "same-const")
	v, ok := cp.StaticVerdict()
	if !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}
}

// TestStaticVerdictDataBranchDiffers: arms that disagree based on a loaded
// value must not prove.
func TestStaticVerdictDataBranchDiffers(t *testing.T) {
	b := NewBuilder()
	b.Load(SizeW, R2, R1, 0)
	b.JumpImm(JmpEq, R2, 0, "a")
	b.MovImm64(R0, 0x410000).Exit()
	b.Label("a")
	b.MovImm64(R0, 0x20000).Exit()
	cp := mustCompile(t, b, "diff-const")
	if _, ok := cp.StaticVerdict(); ok {
		t.Fatal("StaticVerdict proved a data-dependent verdict")
	}
}

// TestStaticVerdictCtxStoreImpure: writing the command back through ctx is
// an observable effect.
func TestStaticVerdictCtxStoreImpure(t *testing.T) {
	b := NewBuilder()
	b.StoreImm(SizeW, R1, 0, 7)
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "ctx-store")
	if _, ok := cp.StaticVerdict(); ok {
		t.Fatal("StaticVerdict proved a ctx-writing program")
	}
}

// TestStaticVerdictStackStorePure: scratch writes die with the invocation
// and must not veto the proof.
func TestStaticVerdictStackStorePure(t *testing.T) {
	b := NewBuilder()
	b.StoreImm(SizeDW, R10, -8, 42)
	b.Load(SizeDW, R3, R10, -8)
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "stack-store")
	v, ok := cp.StaticVerdict()
	if !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}
}

// TestStaticVerdictLookupPure: an unused map lookup is side-effect free.
func TestStaticVerdictLookupPure(t *testing.T) {
	m := NewArrayMap(8, 4)
	b := NewBuilder()
	b.StoreImm(SizeW, R10, -4, 0)
	b.LoadMap(R1, m)
	b.MovReg(R2, R10)
	b.AddImm(R2, -4)
	b.Call(HelperMapLookup)
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "lookup")
	v, ok := cp.StaticVerdict()
	if !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}
}

// TestStaticVerdictLookupBranchImpure: the partition-classifier shape —
// verdict depends on a null check of the lookup — must not prove.
func TestStaticVerdictLookupBranchImpure(t *testing.T) {
	m := NewArrayMap(8, 4)
	b := NewBuilder()
	b.StoreImm(SizeW, R10, -4, 0)
	b.LoadMap(R1, m)
	b.MovReg(R2, R10)
	b.AddImm(R2, -4)
	b.Call(HelperMapLookup)
	b.JumpImm(JmpEq, R0, 0, "miss")
	b.MovImm64(R0, 0x410000).Exit()
	b.Label("miss")
	b.MovImm64(R0, 0x20000).Exit()
	cp := mustCompile(t, b, "lookup-branch")
	if _, ok := cp.StaticVerdict(); ok {
		t.Fatal("StaticVerdict proved a lookup-dependent verdict")
	}
}

// TestStaticVerdictQoSImpure: qos_set_class overrides the per-command QoS
// class — observable by the arbiter even with a constant return.
func TestStaticVerdictQoSImpure(t *testing.T) {
	b := NewBuilder()
	b.MovImm(R1, 1)
	b.Call(HelperQoSSetClass)
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "qos")
	if _, ok := cp.StaticVerdict(); ok {
		t.Fatal("StaticVerdict proved a qos_set_class program")
	}
}

// TestStaticVerdictUpdateImpure: map mutation vetoes the proof.
func TestStaticVerdictUpdateImpure(t *testing.T) {
	m := NewArrayMap(8, 4)
	b := NewBuilder()
	b.StoreImm(SizeW, R10, -4, 0)
	b.StoreImm(SizeDW, R10, -16, 1)
	b.LoadMap(R1, m)
	b.MovReg(R2, R10)
	b.AddImm(R2, -4)
	b.MovReg(R3, R10)
	b.AddImm(R3, -16)
	b.MovImm(R4, 0)
	b.Call(HelperMapUpdate)
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "update")
	if _, ok := cp.StaticVerdict(); ok {
		t.Fatal("StaticVerdict proved a map-updating program")
	}
}

// TestStaticVerdictFoldedALU: the verdict may be computed, not just loaded,
// as long as every operand folds.
func TestStaticVerdictFoldedALU(t *testing.T) {
	b := NewBuilder()
	b.MovImm(R0, 0x41)
	b.ALUImm(ALULsh, R0, 16)
	cp := mustCompile(t, b.Exit(), "alu")
	v, ok := cp.StaticVerdict()
	if !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}
	vm := NewVM(nil)
	got, err := vm.RunCompiled(cp, make([]byte, staticCtxSize))
	if err != nil || got != v {
		t.Fatalf("RunCompiled = %#x, %v; want %#x", got, err, v)
	}
}

// TestStaticVerdictPrandomPure: prandom is pure (no state advanced) but its
// result is unknown — using it as the verdict must not prove, ignoring it
// must.
func TestStaticVerdictPrandomPure(t *testing.T) {
	b := NewBuilder()
	b.Call(HelperGetPrandom)
	b.MovImm64(R0, 0x410000).Exit()
	cp := mustCompile(t, b, "prandom-ignored")
	if v, ok := cp.StaticVerdict(); !ok || v != 0x410000 {
		t.Fatalf("StaticVerdict = %#x, %v; want 0x410000, true", v, ok)
	}

	b2 := NewBuilder()
	b2.Call(HelperGetPrandom)
	b2.Exit() // r0 = random
	cp2 := mustCompile(t, b2, "prandom-verdict")
	if _, ok := cp2.StaticVerdict(); ok {
		t.Fatal("StaticVerdict proved a random verdict")
	}
}
