package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Compiled-tier execution engine. RunCompiled executes the pre-decoded op
// stream produced by Compile with zero heap allocations on the hot path:
// registers are untagged creg values whose pointer-ness is encoded by a
// non-nil byte window, map values are referenced as plain slices (ArrayMap
// and HashMap lookups both return views of storage the map already owns),
// and fault errors are only constructed after a fault has actually occurred.

// creg is a compiled-tier register. data == nil means scalar n; otherwise
// the register is a pointer to offset n within data. mapIdx is the 1-based
// program map index for map references (0 = not a map reference).
type creg struct {
	n      uint64
	data   []byte
	mapIdx int32
}

// cfault classifies a runtime fault in the compiled tier; the error itself
// is built cold in cfail.
type cfaultKind uint8

const (
	cfMem cfaultKind = iota + 1
	cfMap
	cfHelperArg
	cfUnknownHelper
)

// emptyCtx substitutes for a nil ctx so that r1 still carries a (zero-length)
// window rather than looking like a scalar.
var emptyCtx = make([]byte, 0)

// prandomU32 is the deterministic PRNG shared by both tiers (see the
// get_prandom_u32 helper): xorshift seeded from the invocation count.
func prandomU32(invocations uint64) uint64 {
	x := invocations*2654435761 + 12345
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return uint64(uint32(x))
}

// cfail builds the fault error; kept out of RunCompiled so the hot loop has
// no fmt machinery on the success path.
func (vm *VM) cfail(cp *CompiledProgram, pc int, k cfaultKind) (uint64, error) {
	insn := -1
	if pc >= 0 && pc < len(cp.insnOf) {
		insn = int(cp.insnOf[pc])
	}
	switch k {
	case cfMap:
		return 0, fmt.Errorf("%w: bad map reference at insn %d", ErrFault, insn)
	case cfHelperArg:
		return 0, fmt.Errorf("%w: helper argument out of bounds at insn %d", ErrFault, insn)
	case cfUnknownHelper:
		return 0, fmt.Errorf("%w: unknown helper at insn %d", ErrFault, insn)
	default:
		return 0, fmt.Errorf("%w: memory access out of bounds at insn %d", ErrFault, insn)
	}
}

// RunCompiled executes a compiled program with ctx mapped read-write at r1,
// returning the program's r0 exit value. Semantics are identical to Run on
// the same program (the randomized differential test enforces this); the
// tagged-value checks are elided because the verifier proved them, while
// memory bounds and the fuel limit remain as defense in depth.
func (vm *VM) RunCompiled(cp *CompiledProgram, ctx []byte) (uint64, error) {
	vm.Invocations++
	vm.QoSClass = 0
	if vm.stackLow < StackSize {
		clear(vm.stack[vm.stackLow:])
		vm.stackLow = StackSize
	}
	if ctx == nil {
		ctx = emptyCtx
	}
	r := &vm.cregs
	// The verifier forbids reading uninitialized registers, so only r1 and
	// r10 need setting; stale windows in other slots are unreachable.
	r[R0] = creg{}
	r[R1] = creg{data: ctx}
	r[R10] = creg{n: StackSize, data: vm.stack[:]}

	ops := cp.ops
	startInsns := vm.InsnCount
	pc := 0
	for {
		if vm.InsnCount-startInsns >= MaxRuntimeInsns {
			return 0, ErrFuel
		}
		vm.InsnCount++
		o := &ops[pc]
		at := pc
		pc++
		switch o.code {
		case cExit:
			return r[R0].n, nil

		case cMovImm:
			r[o.dst] = creg{n: o.imm}
		case cLdMap:
			r[o.dst] = creg{mapIdx: o.off + 1}
		case cMovReg:
			r[o.dst] = r[o.src]
		case cMovReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.src].n))}

		// 64-bit ALU. Pointer add/sub works through the same path: the
		// window travels with the register and only n moves.
		case cAddReg:
			r[o.dst].n += r[o.src].n
		case cSubReg:
			r[o.dst].n -= r[o.src].n
		case cMulReg:
			r[o.dst].n *= r[o.src].n
		case cDivReg:
			if b := r[o.src].n; b == 0 {
				r[o.dst].n = 0
			} else {
				r[o.dst].n /= b
			}
		case cModReg:
			if b := r[o.src].n; b != 0 {
				r[o.dst].n %= b
			}
		case cOrReg:
			r[o.dst].n |= r[o.src].n
		case cAndReg:
			r[o.dst].n &= r[o.src].n
		case cXorReg:
			r[o.dst].n ^= r[o.src].n
		case cLshReg:
			r[o.dst].n <<= r[o.src].n & 63
		case cRshReg:
			r[o.dst].n >>= r[o.src].n & 63
		case cArshReg:
			r[o.dst].n = uint64(int64(r[o.dst].n) >> (r[o.src].n & 63))
		case cAddImm:
			r[o.dst].n += o.imm
		case cSubImm:
			r[o.dst].n -= o.imm
		case cMulImm:
			r[o.dst].n *= o.imm
		case cDivImm:
			if o.imm == 0 {
				r[o.dst].n = 0
			} else {
				r[o.dst].n /= o.imm
			}
		case cModImm:
			if o.imm != 0 {
				r[o.dst].n %= o.imm
			}
		case cOrImm:
			r[o.dst].n |= o.imm
		case cAndImm:
			r[o.dst].n &= o.imm
		case cXorImm:
			r[o.dst].n ^= o.imm
		case cLshImm: // shift imm pre-masked at compile time
			r[o.dst].n <<= o.imm
		case cRshImm:
			r[o.dst].n >>= o.imm
		case cArshImm:
			r[o.dst].n = uint64(int64(r[o.dst].n) >> o.imm)
		case cNeg:
			r[o.dst].n = -r[o.dst].n

		// 32-bit ALU: operands truncated to u32 first, result truncated
		// again — bit-for-bit the interpreter's widen/narrow sequence.
		case cAddReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) + uint32(r[o.src].n))}
		case cSubReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) - uint32(r[o.src].n))}
		case cMulReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) * uint32(r[o.src].n))}
		case cDivReg32:
			a, b := uint32(r[o.dst].n), uint32(r[o.src].n)
			if b == 0 {
				r[o.dst] = creg{}
			} else {
				r[o.dst] = creg{n: uint64(a / b)}
			}
		case cModReg32:
			a, b := uint32(r[o.dst].n), uint32(r[o.src].n)
			if b != 0 {
				a = a % b
			}
			r[o.dst] = creg{n: uint64(a)}
		case cOrReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) | uint32(r[o.src].n))}
		case cAndReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) & uint32(r[o.src].n))}
		case cXorReg32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) ^ uint32(r[o.src].n))}
		case cLshReg32: // interpreter shifts the widened u32 by b&63, then narrows
			r[o.dst] = creg{n: uint64(uint32(uint64(uint32(r[o.dst].n)) << (uint64(uint32(r[o.src].n)) & 63)))}
		case cRshReg32:
			r[o.dst] = creg{n: uint64(uint32(uint64(uint32(r[o.dst].n)) >> (uint64(uint32(r[o.src].n)) & 63)))}
		case cArshReg32: // 32-bit arsh masks with &31, unlike the other shifts
			r[o.dst] = creg{n: uint64(uint32(int32(uint32(r[o.dst].n)) >> (uint64(uint32(r[o.src].n)) & 31)))}
		case cAddImm32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) + uint32(o.imm))}
		case cSubImm32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) - uint32(o.imm))}
		case cMulImm32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) * uint32(o.imm))}
		case cDivImm32:
			if uint32(o.imm) == 0 {
				r[o.dst] = creg{}
			} else {
				r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) / uint32(o.imm))}
			}
		case cModImm32:
			a := uint32(r[o.dst].n)
			if b := uint32(o.imm); b != 0 {
				a = a % b
			}
			r[o.dst] = creg{n: uint64(a)}
		case cOrImm32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) | uint32(o.imm))}
		case cAndImm32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) & uint32(o.imm))}
		case cXorImm32:
			r[o.dst] = creg{n: uint64(uint32(r[o.dst].n) ^ uint32(o.imm))}
		case cLshImm32: // shift imm pre-masked at compile time
			r[o.dst] = creg{n: uint64(uint32(uint64(uint32(r[o.dst].n)) << o.imm))}
		case cRshImm32:
			r[o.dst] = creg{n: uint64(uint32(uint64(uint32(r[o.dst].n)) >> o.imm))}
		case cArshImm32:
			r[o.dst] = creg{n: uint64(uint32(int32(uint32(r[o.dst].n)) >> o.imm))}
		case cNeg32:
			r[o.dst] = creg{n: uint64(uint32(-uint32(r[o.dst].n)))}

		case cLd8:
			s := &r[o.src]
			pos := int64(s.n) + int64(o.off)
			if pos < 0 || pos+1 > int64(len(s.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			r[o.dst] = creg{n: uint64(s.data[pos])}
		case cLd16:
			s := &r[o.src]
			pos := int64(s.n) + int64(o.off)
			if pos < 0 || pos+2 > int64(len(s.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			r[o.dst] = creg{n: uint64(binary.LittleEndian.Uint16(s.data[pos:]))}
		case cLd32:
			s := &r[o.src]
			pos := int64(s.n) + int64(o.off)
			if pos < 0 || pos+4 > int64(len(s.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			r[o.dst] = creg{n: uint64(binary.LittleEndian.Uint32(s.data[pos:]))}
		case cLd64:
			s := &r[o.src]
			pos := int64(s.n) + int64(o.off)
			if pos < 0 || pos+8 > int64(len(s.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			r[o.dst] = creg{n: binary.LittleEndian.Uint64(s.data[pos:])}

		case cSt8, cStImm8:
			d := &r[o.dst]
			pos := int64(d.n) + int64(o.off)
			if pos < 0 || pos+1 > int64(len(d.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			v := o.imm
			if o.code == cSt8 {
				v = r[o.src].n
			}
			d.data[pos] = byte(v)
			vm.markStackWrite(d.data, pos)
		case cSt16, cStImm16:
			d := &r[o.dst]
			pos := int64(d.n) + int64(o.off)
			if pos < 0 || pos+2 > int64(len(d.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			v := o.imm
			if o.code == cSt16 {
				v = r[o.src].n
			}
			binary.LittleEndian.PutUint16(d.data[pos:], uint16(v))
			vm.markStackWrite(d.data, pos)
		case cSt32, cStImm32:
			d := &r[o.dst]
			pos := int64(d.n) + int64(o.off)
			if pos < 0 || pos+4 > int64(len(d.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			v := o.imm
			if o.code == cSt32 {
				v = r[o.src].n
			}
			binary.LittleEndian.PutUint32(d.data[pos:], uint32(v))
			vm.markStackWrite(d.data, pos)
		case cSt64, cStImm64:
			d := &r[o.dst]
			pos := int64(d.n) + int64(o.off)
			if pos < 0 || pos+8 > int64(len(d.data)) {
				return vm.cfail(cp, at, cfMem)
			}
			v := o.imm
			if o.code == cSt64 {
				v = r[o.src].n
			}
			binary.LittleEndian.PutUint64(d.data[pos:], v)
			vm.markStackWrite(d.data, pos)

		case cJa:
			pc = int(o.off)
		case cJEqImm:
			if cmpBase(&r[o.dst]) == o.imm {
				pc = int(o.off)
			}
		case cJNeImm:
			if cmpBase(&r[o.dst]) != o.imm {
				pc = int(o.off)
			}
		case cJGtImm:
			if cmpBase(&r[o.dst]) > o.imm {
				pc = int(o.off)
			}
		case cJGeImm:
			if cmpBase(&r[o.dst]) >= o.imm {
				pc = int(o.off)
			}
		case cJLtImm:
			if cmpBase(&r[o.dst]) < o.imm {
				pc = int(o.off)
			}
		case cJLeImm:
			if cmpBase(&r[o.dst]) <= o.imm {
				pc = int(o.off)
			}
		case cJSGtImm:
			if int64(cmpBase(&r[o.dst])) > int64(o.imm) {
				pc = int(o.off)
			}
		case cJSGeImm:
			if int64(cmpBase(&r[o.dst])) >= int64(o.imm) {
				pc = int(o.off)
			}
		case cJSLtImm:
			if int64(cmpBase(&r[o.dst])) < int64(o.imm) {
				pc = int(o.off)
			}
		case cJSLeImm:
			if int64(cmpBase(&r[o.dst])) <= int64(o.imm) {
				pc = int(o.off)
			}
		case cJSetImm:
			if cmpBase(&r[o.dst])&o.imm != 0 {
				pc = int(o.off)
			}
		case cJEqReg:
			if cmpBase(&r[o.dst]) == cmpBase(&r[o.src]) {
				pc = int(o.off)
			}
		case cJNeReg:
			if cmpBase(&r[o.dst]) != cmpBase(&r[o.src]) {
				pc = int(o.off)
			}
		case cJGtReg:
			if cmpBase(&r[o.dst]) > cmpBase(&r[o.src]) {
				pc = int(o.off)
			}
		case cJGeReg:
			if cmpBase(&r[o.dst]) >= cmpBase(&r[o.src]) {
				pc = int(o.off)
			}
		case cJLtReg:
			if cmpBase(&r[o.dst]) < cmpBase(&r[o.src]) {
				pc = int(o.off)
			}
		case cJLeReg:
			if cmpBase(&r[o.dst]) <= cmpBase(&r[o.src]) {
				pc = int(o.off)
			}
		case cJSGtReg:
			if int64(cmpBase(&r[o.dst])) > int64(cmpBase(&r[o.src])) {
				pc = int(o.off)
			}
		case cJSGeReg:
			if int64(cmpBase(&r[o.dst])) >= int64(cmpBase(&r[o.src])) {
				pc = int(o.off)
			}
		case cJSLtReg:
			if int64(cmpBase(&r[o.dst])) < int64(cmpBase(&r[o.src])) {
				pc = int(o.off)
			}
		case cJSLeReg:
			if int64(cmpBase(&r[o.dst])) <= int64(cmpBase(&r[o.src])) {
				pc = int(o.off)
			}
		case cJSetReg:
			if cmpBase(&r[o.dst])&cmpBase(&r[o.src]) != 0 {
				pc = int(o.off)
			}

		case cCallLookup:
			m, key, ok := vm.ccallMapKey(cp, r)
			if !ok {
				return vm.cfail(cp, at, cfHelperArg)
			}
			var out creg
			if am := cp.arrs[r[R1].mapIdx-1]; am != nil {
				// Inline ArrayMap fast path: index math instead of the
				// interface call (key length 4 is guaranteed by KeySize).
				if i := int(binary.LittleEndian.Uint32(key)); i < am.maxEntries {
					out = creg{data: am.data[i*am.valueSize : (i+1)*am.valueSize]}
				}
			} else if v := m.Lookup(key); v != nil {
				out = creg{data: v}
			}
			r[R0] = out
			r[R1], r[R2], r[R3], r[R4], r[R5] = creg{}, creg{}, creg{}, creg{}, creg{}
		case cCallUpdate:
			m, key, ok := vm.ccallMapKey(cp, r)
			if !ok {
				return vm.cfail(cp, at, cfHelperArg)
			}
			value, ok := cwindow(&r[R3], m.ValueSize())
			if !ok {
				return vm.cfail(cp, at, cfHelperArg)
			}
			if m.Update(key, value) != nil {
				r[R0] = creg{n: ^uint64(0)} // -1
			} else {
				r[R0] = creg{}
			}
			r[R1], r[R2], r[R3], r[R4], r[R5] = creg{}, creg{}, creg{}, creg{}, creg{}
		case cCallDelete:
			m, key, ok := vm.ccallMapKey(cp, r)
			if !ok {
				return vm.cfail(cp, at, cfHelperArg)
			}
			if !m.Delete(key) {
				r[R0] = creg{n: ^uint64(0)}
			} else {
				r[R0] = creg{}
			}
			r[R1], r[R2], r[R3], r[R4], r[R5] = creg{}, creg{}, creg{}, creg{}, creg{}
		case cCallPrandom:
			r[R0] = creg{n: prandomU32(vm.Invocations)}
			r[R1], r[R2], r[R3], r[R4], r[R5] = creg{}, creg{}, creg{}, creg{}, creg{}
		case cCallQoS:
			if c := r[R1].n; c < qosNumClasses {
				vm.QoSClass = uint8(c)
				r[R0] = creg{}
			} else {
				r[R0] = creg{n: ^uint64(0)}
			}
			r[R1], r[R2], r[R3], r[R4], r[R5] = creg{}, creg{}, creg{}, creg{}, creg{}
		case cCallGeneric:
			if err := vm.ccallGeneric(cp, r, int32(uint32(o.imm))); err != nil {
				return 0, err
			}

		default:
			return vm.cfail(cp, at, cfMem)
		}
	}
}

// cmpBase gives branch operands the interpreter's comparison base: scalars
// compare by value, pointers by their synthetic region address so null
// checks behave (a live pointer never equals 0).
func cmpBase(r *creg) uint64 {
	if r.data != nil {
		return 0x5a5a_0000_0000_0000 + r.n
	}
	return r.n
}

// markStackWrite maintains the stack low-water mark so the next invocation
// clears only the dirtied suffix.
func (vm *VM) markStackWrite(w []byte, pos int64) {
	if &w[0] == &vm.stack[0] && int(pos) < vm.stackLow {
		vm.stackLow = int(pos)
	}
}

// ccallMapKey resolves r1 (map reference) and r2 (key window) for the
// compiled map helpers.
func (vm *VM) ccallMapKey(cp *CompiledProgram, r *[NumRegs]creg) (Map, []byte, bool) {
	mi := r[R1].mapIdx
	if mi <= 0 || int(mi) > len(cp.maps) {
		return nil, nil, false
	}
	m := cp.maps[mi-1]
	key, ok := cwindow(&r[R2], m.KeySize())
	if !ok {
		return nil, nil, false
	}
	return m, key, true
}

// cwindow bounds-checks an n-byte window at a pointer register.
func cwindow(r *creg, n int) ([]byte, bool) {
	pos := int64(r.n)
	if r.data == nil || pos < 0 || pos+int64(n) > int64(len(r.data)) {
		return nil, false
	}
	return r.data[pos : pos+int64(n)], true
}

// ccallGeneric bridges a non-specialized helper through the interpreter's
// registry, converting between compiled and tagged register forms. This
// path may allocate; no shipped classifier uses custom helpers.
func (vm *VM) ccallGeneric(cp *CompiledProgram, r *[NumRegs]creg, id int32) error {
	h := vm.helpers.get(id)
	if h == nil {
		_, err := vm.cfail(cp, -1, cfUnknownHelper)
		return err
	}
	var tagged [NumRegs]val
	for i := range r {
		c := &r[i]
		switch {
		case c.mapIdx > 0 && int(c.mapIdx) <= len(cp.maps):
			tagged[i] = val{kind: kMap, m: cp.maps[c.mapIdx-1]}
		case c.data != nil:
			tagged[i] = val{kind: kPtr, n: c.n, mem: &memRegion{data: c.data, writable: true}}
		default:
			tagged[i] = scalar(c.n)
		}
	}
	ret, err := h.fn(vm, tagged[:])
	if err != nil {
		return err
	}
	switch ret.kind {
	case kPtr:
		r[R0] = creg{n: ret.n, data: ret.mem.data}
	case kMap:
		r[R0] = creg{} // helpers never return map refs in this subset
	default:
		r[R0] = creg{n: ret.n}
	}
	r[R1], r[R2], r[R3], r[R4], r[R5] = creg{}, creg{}, creg{}, creg{}, creg{}
	// A custom helper may have written anywhere in the stack window it was
	// handed; be conservative about the next invocation's clear.
	vm.stackLow = 0
	return nil
}
