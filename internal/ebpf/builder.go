package ebpf

import "fmt"

// Builder assembles programs from Go with symbolic labels, the equivalent of
// writing a classifier in restricted C and compiling it. Jump offsets are
// resolved at Program() time.
type Builder struct {
	insns  []Insn
	labels map[string]int // label -> insn index
	fixups map[int]string // insn index -> target label
	maps   []Map
	mapIdx map[Map]int
	err    error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int), fixups: make(map[int]string), mapIdx: make(map[Map]int)}
}

func (b *Builder) emit(in Insn) *Builder {
	b.insns = append(b.insns, in)
	return b
}

// Label defines a jump target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
	}
	b.labels[name] = len(b.insns)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("ebpf builder: "+format, args...)
	}
}

// MovImm sets dst to a 32-bit immediate (sign-extended).
func (b *Builder) MovImm(dst uint8, imm int32) *Builder {
	return b.emit(Insn{Op: ClassALU64 | ALUMov | SrcK, Dst: dst, Imm: imm})
}

// MovImm64 loads a full 64-bit constant (two slots).
func (b *Builder) MovImm64(dst uint8, imm uint64) *Builder {
	b.emit(Insn{Op: OpLdImm64, Dst: dst, Imm: int32(uint32(imm))})
	return b.emit(Insn{Imm: int32(uint32(imm >> 32))})
}

// MovReg copies src into dst.
func (b *Builder) MovReg(dst, src uint8) *Builder {
	return b.emit(Insn{Op: ClassALU64 | ALUMov | SrcX, Dst: dst, Src: src})
}

// LoadMap loads a reference to m into dst, registering the map with the
// program.
func (b *Builder) LoadMap(dst uint8, m Map) *Builder {
	idx, ok := b.mapIdx[m]
	if !ok {
		idx = len(b.maps)
		b.maps = append(b.maps, m)
		b.mapIdx[m] = idx
	}
	b.emit(Insn{Op: OpLdImm64, Dst: dst, Src: PseudoMapFD, Imm: int32(idx)})
	return b.emit(Insn{})
}

// ALU emits a 64-bit ALU op with register source (e.g. ALUAdd).
func (b *Builder) ALU(op uint8, dst, src uint8) *Builder {
	return b.emit(Insn{Op: ClassALU64 | op | SrcX, Dst: dst, Src: src})
}

// ALUImm emits a 64-bit ALU op with an immediate source.
func (b *Builder) ALUImm(op uint8, dst uint8, imm int32) *Builder {
	return b.emit(Insn{Op: ClassALU64 | op | SrcK, Dst: dst, Imm: imm})
}

// ALU32Imm emits a 32-bit ALU op with an immediate source.
func (b *Builder) ALU32Imm(op uint8, dst uint8, imm int32) *Builder {
	return b.emit(Insn{Op: ClassALU | op | SrcK, Dst: dst, Imm: imm})
}

// AddImm is shorthand for ALUImm(ALUAdd, ...).
func (b *Builder) AddImm(dst uint8, imm int32) *Builder { return b.ALUImm(ALUAdd, dst, imm) }

// OrImm is shorthand for ALUImm(ALUOr, ...).
func (b *Builder) OrImm(dst uint8, imm int32) *Builder { return b.ALUImm(ALUOr, dst, imm) }

// Load emits dst = *(size*)(src+off).
func (b *Builder) Load(size uint8, dst, src uint8, off int16) *Builder {
	return b.emit(Insn{Op: ClassLDX | size | ModeMEM, Dst: dst, Src: src, Off: off})
}

// Store emits *(size*)(dst+off) = src.
func (b *Builder) Store(size uint8, dst uint8, off int16, src uint8) *Builder {
	return b.emit(Insn{Op: ClassSTX | size | ModeMEM, Dst: dst, Src: src, Off: off})
}

// StoreImm emits *(size*)(dst+off) = imm.
func (b *Builder) StoreImm(size uint8, dst uint8, off int16, imm int32) *Builder {
	return b.emit(Insn{Op: ClassST | size | ModeMEM, Dst: dst, Off: off, Imm: imm})
}

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Insn{Op: ClassJMP | JmpA})
}

// JumpImm emits `if dst <op> imm goto label`.
func (b *Builder) JumpImm(op uint8, dst uint8, imm int32, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Insn{Op: ClassJMP | op | SrcK, Dst: dst, Imm: imm})
}

// JumpReg emits `if dst <op> src goto label`.
func (b *Builder) JumpReg(op uint8, dst, src uint8, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Insn{Op: ClassJMP | op | SrcX, Dst: dst, Src: src})
}

// Call emits a helper call.
func (b *Builder) Call(helper int32) *Builder {
	return b.emit(Insn{Op: ClassJMP | JmpCall, Imm: helper})
}

// Exit emits the program exit.
func (b *Builder) Exit() *Builder {
	return b.emit(Insn{Op: ClassJMP | JmpExit})
}

// Return emits `r0 = imm; exit`.
func (b *Builder) Return(imm int32) *Builder {
	return b.MovImm(R0, imm).Exit()
}

// Program resolves labels and returns the assembled program.
func (b *Builder) Program(name string) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	insns := make([]Insn, len(b.insns))
	copy(insns, b.insns)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("ebpf builder: undefined label %q", label)
		}
		insns[idx].Off = int16(target - idx - 1)
	}
	return &Program{Insns: insns, Maps: b.maps, Name: name}, nil
}

// MustProgram is Program that panics on error (for static classifiers).
func (b *Builder) MustProgram(name string) *Program {
	p, err := b.Program(name)
	if err != nil {
		panic(err)
	}
	return p
}
