package ebpf

// Static-verdict analysis: the compile-tier pass behind adaptive path
// promotion. StaticVerdict proves, over the pre-decoded op stream, that a
// verifier-accepted program (a) returns the same constant r0 on every
// reachable exit and (b) has no effect observable outside one invocation —
// no ctx or map-value stores, no map mutation, no QoS class override, no
// custom helpers. A router holding such a proof may skip executing the
// classifier entirely and hard-wire its constant verdict, because running
// the program could neither return anything else nor change any state the
// dispatch path reads.
//
// The analysis is a forward abstract interpretation over the same lattice
// family the verifier uses, but tracking concrete constants: each register
// is Const(v), a pointer of known provenance (ctx, stack, or a helper
// window), a map reference, or Unknown. ALU ops fold constants with
// bit-for-bit RunCompiled semantics; conditional jumps with Const operands
// follow only the taken edge (so verdicts that differ only on statically
// dead branches still prove constant); everything else joins both edges.
// Stack stores are invisible outside the invocation (the VM clears the
// frame per run) and are allowed; any other store, and any helper beyond
// the pure lookup/prandom pair, vetoes the proof.
//
// Soundness leans on the verifier having already accepted the program:
// accepted programs cannot fault (memory bounds and register init are
// proven) and cannot loop (the CFG is a DAG), so "every reachable exit
// returns C" is equivalent to "every invocation returns C".

// Abstract register kinds. Non-const kinds keep n == 0 so aval values
// compare with ==.
const (
	avUnknown uint8 = iota // any scalar or pointer
	avConst                // scalar with known value n
	avCtx                  // pointer into the ctx window
	avStack                // pointer into the VM stack frame
	avPtr                  // pointer with other provenance (map value)
	avMap                  // map reference
)

// aval is one register's abstract value.
type aval struct {
	k uint8
	n uint64
}

// astate is the abstract machine state at one op boundary.
type astate [NumRegs]aval

func (v aval) isPtr() bool { return v.k == avCtx || v.k == avStack || v.k == avPtr }

// joinVal merges two abstract values at a control-flow join.
func joinVal(a, b aval) aval {
	if a == b {
		return a
	}
	if a.k == b.k && a.k != avConst {
		return aval{k: a.k}
	}
	return aval{k: avUnknown}
}

// staticBudget bounds the worklist in abstract steps per op; the lattice
// converges far earlier, this is a defensive cap only.
const staticBudget = 256

// StaticVerdict reports whether the program provably returns the same
// constant on every reachable path with no externally observable effect,
// and if so, that constant.
func (cp *CompiledProgram) StaticVerdict() (verdict uint64, ok bool) {
	n := len(cp.ops)
	if n == 0 {
		return 0, false
	}
	states := make([]astate, n)
	queued := make([]bool, n)
	seen := make([]bool, n)

	var entry astate
	entry[R1] = aval{k: avCtx}
	entry[R10] = aval{k: avStack}
	states[0] = entry
	seen[0] = true
	work := []int{0}
	queued[0] = true

	// flow propagates state s into op t, requeueing t on change.
	flow := func(t int, s *astate) {
		if t < 0 || t >= n {
			return
		}
		if !seen[t] {
			seen[t] = true
			states[t] = *s
		} else {
			merged := states[t]
			changed := false
			for i := range merged {
				j := joinVal(merged[i], s[i])
				if j != merged[i] {
					merged[i] = j
					changed = true
				}
			}
			if !changed {
				return
			}
			states[t] = merged
		}
		if !queued[t] {
			queued[t] = true
			work = append(work, t)
		}
	}

	var (
		haveVerdict bool
		steps       int
	)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pc] = false
		steps++
		if steps > n*staticBudget {
			return 0, false // defensive: analysis did not converge
		}
		s := states[pc]
		o := &cp.ops[pc]
		switch o.code {
		case cExit:
			r0 := s[R0]
			if r0.k != avConst {
				return 0, false
			}
			if haveVerdict && r0.n != verdict {
				return 0, false
			}
			verdict, haveVerdict = r0.n, true
			continue

		case cMovImm:
			s[o.dst] = aval{k: avConst, n: o.imm}
		case cLdMap:
			s[o.dst] = aval{k: avMap}
		case cMovReg:
			s[o.dst] = s[o.src]
		case cMovReg32:
			if v := s[o.src]; v.k == avConst {
				s[o.dst] = aval{k: avConst, n: uint64(uint32(v.n))}
			} else {
				s[o.dst] = aval{k: avUnknown}
			}

		case cAddReg, cSubReg:
			d, r := s[o.dst], s[o.src]
			switch {
			case d.isPtr() && r.k == avConst || d.isPtr() && r.k == avUnknown:
				// Pointer arithmetic moves the offset; provenance survives.
				s[o.dst] = aval{k: d.k}
			case d.k == avConst && r.k == avConst:
				if o.code == cAddReg {
					s[o.dst] = aval{k: avConst, n: d.n + r.n}
				} else {
					s[o.dst] = aval{k: avConst, n: d.n - r.n}
				}
			default:
				s[o.dst] = aval{k: avUnknown}
			}
		case cAddImm, cSubImm:
			d := s[o.dst]
			switch {
			case d.isPtr():
				s[o.dst] = aval{k: d.k}
			case d.k == avConst:
				if o.code == cAddImm {
					s[o.dst] = aval{k: avConst, n: d.n + o.imm}
				} else {
					s[o.dst] = aval{k: avConst, n: d.n - o.imm}
				}
			default:
				s[o.dst] = aval{k: avUnknown}
			}

		case cMulReg, cDivReg, cModReg, cOrReg, cAndReg, cXorReg,
			cLshReg, cRshReg, cArshReg,
			cAddReg32, cSubReg32, cMulReg32, cDivReg32, cModReg32,
			cOrReg32, cAndReg32, cXorReg32, cLshReg32, cRshReg32, cArshReg32:
			d, r := s[o.dst], s[o.src]
			if d.k == avConst && r.k == avConst {
				s[o.dst] = aval{k: avConst, n: foldALU(o.code, d.n, r.n)}
			} else {
				s[o.dst] = aval{k: avUnknown}
			}
		case cMulImm, cDivImm, cModImm, cOrImm, cAndImm, cXorImm,
			cLshImm, cRshImm, cArshImm,
			cAddImm32, cSubImm32, cMulImm32, cDivImm32, cModImm32,
			cOrImm32, cAndImm32, cXorImm32, cLshImm32, cRshImm32, cArshImm32:
			if d := s[o.dst]; d.k == avConst {
				s[o.dst] = aval{k: avConst, n: foldALU(o.code, d.n, o.imm)}
			} else {
				s[o.dst] = aval{k: avUnknown}
			}
		case cNeg:
			if d := s[o.dst]; d.k == avConst {
				s[o.dst] = aval{k: avConst, n: -d.n}
			} else {
				s[o.dst] = aval{k: avUnknown}
			}
		case cNeg32:
			if d := s[o.dst]; d.k == avConst {
				s[o.dst] = aval{k: avConst, n: uint64(uint32(-uint32(d.n)))}
			} else {
				s[o.dst] = aval{k: avUnknown}
			}

		case cLd8, cLd16, cLd32, cLd64:
			// Loads are pure; the loaded value is runtime-dependent.
			s[o.dst] = aval{k: avUnknown}

		case cSt8, cSt16, cSt32, cSt64, cStImm8, cStImm16, cStImm32, cStImm64:
			// Stack stores die with the invocation (the VM clears the
			// dirtied frame before the next run); any other destination —
			// ctx, a map value window, or unknown provenance — is an
			// observable effect and vetoes the proof.
			if s[o.dst].k != avStack {
				return 0, false
			}

		case cJa:
			flow(int(o.off), &s)
			continue
		case cJEqImm, cJNeImm, cJGtImm, cJGeImm, cJLtImm, cJLeImm,
			cJSGtImm, cJSGeImm, cJSLtImm, cJSLeImm, cJSetImm:
			if d := s[o.dst]; d.k == avConst {
				if evalCond(o.code, d.n, o.imm) {
					flow(int(o.off), &s)
				} else {
					flow(pc+1, &s)
				}
				continue
			}
			flow(int(o.off), &s)
			flow(pc+1, &s)
			continue
		case cJEqReg, cJNeReg, cJGtReg, cJGeReg, cJLtReg, cJLeReg,
			cJSGtReg, cJSGeReg, cJSLtReg, cJSLeReg, cJSetReg:
			d, r := s[o.dst], s[o.src]
			if d.k == avConst && r.k == avConst {
				if evalCond(o.code-(cJEqReg-cJEqImm), d.n, r.n) {
					flow(int(o.off), &s)
				} else {
					flow(pc+1, &s)
				}
				continue
			}
			flow(int(o.off), &s)
			flow(pc+1, &s)
			continue

		case cCallLookup, cCallPrandom:
			// Pure: lookup returns a map-value pointer or null and mutates
			// nothing; prandom derives from the invocation counter without
			// advancing state. Result and caller-saved registers become
			// unknown, exactly as RunCompiled clobbers them.
			for _, reg := range [...]uint8{R0, R1, R2, R3, R4, R5} {
				s[reg] = aval{k: avUnknown}
			}

		case cCallUpdate, cCallDelete, cCallQoS, cCallGeneric:
			// Map mutation, per-command QoS class override, or an arbitrary
			// registered helper: externally observable.
			return 0, false

		default:
			return 0, false
		}
		flow(pc+1, &s)
	}
	if !haveVerdict {
		return 0, false
	}
	return verdict, true
}

// foldALU replicates RunCompiled's ALU semantics on two known scalars.
// Register and immediate forms share semantics (immediates were pre-widened
// and shift immediates pre-masked at compile time, matching the masking
// applied to register operands here).
func foldALU(code copCode, a, b uint64) uint64 {
	switch code {
	case cMulReg, cMulImm:
		return a * b
	case cDivReg, cDivImm:
		if b == 0 {
			return 0
		}
		return a / b
	case cModReg, cModImm:
		if b == 0 {
			return a
		}
		return a % b
	case cOrReg, cOrImm:
		return a | b
	case cAndReg, cAndImm:
		return a & b
	case cXorReg, cXorImm:
		return a ^ b
	case cLshReg:
		return a << (b & 63)
	case cLshImm:
		return a << b
	case cRshReg:
		return a >> (b & 63)
	case cRshImm:
		return a >> b
	case cArshReg:
		return uint64(int64(a) >> (b & 63))
	case cArshImm:
		return uint64(int64(a) >> b)

	case cAddReg32, cAddImm32:
		return uint64(uint32(a) + uint32(b))
	case cSubReg32, cSubImm32:
		return uint64(uint32(a) - uint32(b))
	case cMulReg32, cMulImm32:
		return uint64(uint32(a) * uint32(b))
	case cDivReg32, cDivImm32:
		if uint32(b) == 0 {
			return 0
		}
		return uint64(uint32(a) / uint32(b))
	case cModReg32, cModImm32:
		if uint32(b) == 0 {
			return uint64(uint32(a))
		}
		return uint64(uint32(a) % uint32(b))
	case cOrReg32, cOrImm32:
		return uint64(uint32(a) | uint32(b))
	case cAndReg32, cAndImm32:
		return uint64(uint32(a) & uint32(b))
	case cXorReg32, cXorImm32:
		return uint64(uint32(a) ^ uint32(b))
	case cLshReg32:
		return uint64(uint32(uint64(uint32(a)) << (uint64(uint32(b)) & 63)))
	case cLshImm32:
		return uint64(uint32(uint64(uint32(a)) << b))
	case cRshReg32:
		return uint64(uint32(uint64(uint32(a)) >> (uint64(uint32(b)) & 63)))
	case cRshImm32:
		return uint64(uint32(uint64(uint32(a)) >> b))
	case cArshReg32:
		return uint64(uint32(int32(uint32(a)) >> (uint64(uint32(b)) & 31)))
	case cArshImm32:
		return uint64(uint32(int32(uint32(a)) >> b))
	}
	return 0
}

// evalCond replicates the immediate-form branch predicates on two known
// scalars (register forms are normalized to the immediate opcode by the
// caller). cmpBase is the identity on scalars, so Const operands compare
// exactly as at runtime.
func evalCond(code copCode, a, b uint64) bool {
	switch code {
	case cJEqImm:
		return a == b
	case cJNeImm:
		return a != b
	case cJGtImm:
		return a > b
	case cJGeImm:
		return a >= b
	case cJLtImm:
		return a < b
	case cJLeImm:
		return a <= b
	case cJSGtImm:
		return int64(a) > int64(b)
	case cJSGeImm:
		return int64(a) >= int64(b)
	case cJSLtImm:
		return int64(a) < int64(b)
	case cJSLeImm:
		return int64(a) <= int64(b)
	case cJSetImm:
		return a&b != 0
	}
	return false
}
