package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Map is the classifier-visible key/value storage, mirroring kernel BPF
// maps. Classifiers use maps for configuration (partition offsets, policy
// tables) and cross-invocation state; the control plane updates them live,
// which is how storage functions are reconfigured without VM reboots.
type Map interface {
	// Lookup returns a mutable view of the value for key, or nil.
	Lookup(key []byte) []byte
	// Update inserts or replaces the value for key.
	Update(key, value []byte) error
	// Delete removes key, reporting whether it existed.
	Delete(key []byte) bool
	// KeySize and ValueSize in bytes.
	KeySize() int
	ValueSize() int
}

// ArrayMap is a fixed-size array of values indexed by a uint32 key.
type ArrayMap struct {
	valueSize  int
	maxEntries int
	data       []byte
}

// NewArrayMap creates an array map.
func NewArrayMap(valueSize, maxEntries int) *ArrayMap {
	if valueSize <= 0 || maxEntries <= 0 {
		panic("ebpf: bad array map geometry")
	}
	return &ArrayMap{valueSize: valueSize, maxEntries: maxEntries, data: make([]byte, valueSize*maxEntries)}
}

// KeySize implements Map (uint32 index).
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *ArrayMap) ValueSize() int { return m.valueSize }

func (m *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	i := int(binary.LittleEndian.Uint32(key))
	return i, i < m.maxEntries
}

// Lookup implements Map. Array map lookups never fail for in-range keys.
func (m *ArrayMap) Lookup(key []byte) []byte {
	i, ok := m.index(key)
	if !ok {
		return nil
	}
	return m.data[i*m.valueSize : (i+1)*m.valueSize]
}

// Update implements Map.
func (m *ArrayMap) Update(key, value []byte) error {
	i, ok := m.index(key)
	if !ok {
		return fmt.Errorf("ebpf: array index out of range")
	}
	if len(value) != m.valueSize {
		return fmt.Errorf("ebpf: value size %d != %d", len(value), m.valueSize)
	}
	copy(m.data[i*m.valueSize:], value)
	return nil
}

// Delete implements Map; array entries are zeroed rather than removed.
func (m *ArrayMap) Delete(key []byte) bool {
	i, ok := m.index(key)
	if !ok {
		return false
	}
	clear(m.data[i*m.valueSize : (i+1)*m.valueSize])
	return true
}

// SetU64 stores a little-endian uint64 at offset off of entry idx
// (control-plane convenience).
func (m *ArrayMap) SetU64(idx int, off int, v uint64) {
	binary.LittleEndian.PutUint64(m.data[idx*m.valueSize+off:], v)
}

// U64 reads a little-endian uint64 at offset off of entry idx.
func (m *ArrayMap) U64(idx int, off int) uint64 {
	return binary.LittleEndian.Uint64(m.data[idx*m.valueSize+off:])
}

// HashMap is a bounded hash map with fixed-size keys and values.
type HashMap struct {
	keySize    int
	valueSize  int
	maxEntries int
	data       map[string][]byte
}

// NewHashMap creates a hash map.
func NewHashMap(keySize, valueSize, maxEntries int) *HashMap {
	if keySize <= 0 || valueSize <= 0 || maxEntries <= 0 {
		panic("ebpf: bad hash map geometry")
	}
	return &HashMap{keySize: keySize, valueSize: valueSize, maxEntries: maxEntries, data: make(map[string][]byte)}
}

// KeySize implements Map.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *HashMap) ValueSize() int { return m.valueSize }

// Lookup implements Map.
func (m *HashMap) Lookup(key []byte) []byte {
	if len(key) != m.keySize {
		return nil
	}
	return m.data[string(key)]
}

// Update implements Map. Updating an existing key reuses its value storage
// (copy-in-place) so steady-state updates allocate nothing.
func (m *HashMap) Update(key, value []byte) error {
	if len(key) != m.keySize || len(value) != m.valueSize {
		return fmt.Errorf("ebpf: bad key/value size")
	}
	if old, ok := m.data[string(key)]; ok {
		copy(old, value)
		return nil
	}
	if len(m.data) >= m.maxEntries {
		return fmt.Errorf("ebpf: map full (%d entries)", m.maxEntries)
	}
	v := make([]byte, m.valueSize)
	copy(v, value)
	m.data[string(key)] = v
	return nil
}

// Delete implements Map.
func (m *HashMap) Delete(key []byte) bool {
	if _, ok := m.data[string(key)]; !ok {
		return false
	}
	delete(m.data, string(key))
	return true
}

// Len returns the number of entries.
func (m *HashMap) Len() int { return len(m.data) }
