package ebpf

import (
	"fmt"
	"strings"
)

// This file implements the load-time compilation tier: the analogue of the
// kernel's eBPF JIT. Compile translates a verifier-accepted program into a
// pre-decoded op stream the VM can execute without per-instruction decode,
// map resolution or tagged-value checks:
//
//   - ld_imm64 pairs are fused into one op; pseudo map loads resolve the
//     map index at compile time,
//   - jump offsets become absolute, pre-validated op indices (so the run
//     loop needs no pc bounds check),
//   - ALU, load and store instructions are specialized per width and per
//     immediate/register form, with immediates pre-widened (sign-extended
//     or masked) so the run loop does no per-op conversion,
//   - helper calls to the standard map helpers compile to direct
//     implementations — ArrayMap lookups additionally inline the index
//     computation and skip the helper dispatch entirely,
//   - the runtime kind checks of the interpreter (pointer-ness of memory
//     operands, scalar-ness of ALU operands and stored values, r0 at exit)
//     are elided: the verifier's type lattice has already proven them.
//     Memory bounds checks and the fuel limit stay as defense in depth.
//
// The interpreter (interp.go) remains the reference implementation; the
// randomized differential test in compile_test.go holds the two tiers to
// identical r0/fault/map-state behaviour.

// copCode is the dense opcode of one pre-decoded operation.
type copCode uint8

// Pre-decoded opcodes. ALU ops are specialized per width (64/32) and per
// source form (register/immediate); loads and stores per access size.
const (
	cBad copCode = iota
	cExit
	cMovImm   // r[dst] = imm (covers mov-imm of both widths and fused ld_imm64)
	cLdMap    // r[dst] = reference to map #off
	cMovReg   // r[dst] = r[src]
	cMovReg32 // r[dst] = u32(r[src])

	// 64-bit ALU, register source.
	cAddReg
	cSubReg
	cMulReg
	cDivReg
	cModReg
	cOrReg
	cAndReg
	cXorReg
	cLshReg
	cRshReg
	cArshReg
	// 64-bit ALU, immediate source (imm pre-sign-extended; shifts pre-masked).
	cAddImm
	cSubImm
	cMulImm
	cDivImm
	cModImm
	cOrImm
	cAndImm
	cXorImm
	cLshImm
	cRshImm
	cArshImm
	cNeg

	// 32-bit ALU, register source.
	cAddReg32
	cSubReg32
	cMulReg32
	cDivReg32
	cModReg32
	cOrReg32
	cAndReg32
	cXorReg32
	cLshReg32
	cRshReg32
	cArshReg32
	// 32-bit ALU, immediate source (imm pre-truncated; shifts pre-masked).
	cAddImm32
	cSubImm32
	cMulImm32
	cDivImm32
	cModImm32
	cOrImm32
	cAndImm32
	cXorImm32
	cLshImm32
	cRshImm32
	cArshImm32
	cNeg32

	// Loads (register destination is always a fresh scalar).
	cLd8
	cLd16
	cLd32
	cLd64
	// Stores, register source.
	cSt8
	cSt16
	cSt32
	cSt64
	// Stores, immediate source (imm pre-truncated to u32, zero-extended).
	cStImm8
	cStImm16
	cStImm32
	cStImm64

	// Jumps; off is the absolute target op index.
	cJa
	cJEqImm
	cJNeImm
	cJGtImm
	cJGeImm
	cJLtImm
	cJLeImm
	cJSGtImm
	cJSGeImm
	cJSLtImm
	cJSLeImm
	cJSetImm
	cJEqReg
	cJNeReg
	cJGtReg
	cJGeReg
	cJLtReg
	cJLeReg
	cJSGtReg
	cJSGeReg
	cJSLtReg
	cJSLeReg
	cJSetReg

	// Helper calls. The standard map helpers compile to direct
	// implementations; anything else goes through the registry bridge.
	cCallLookup
	cCallUpdate
	cCallDelete
	cCallPrandom
	cCallQoS
	cCallGeneric // imm = helper id
)

var copNames = map[copCode]string{
	cBad: "bad", cExit: "exit", cMovImm: "mov_imm", cLdMap: "ld_map",
	cMovReg: "mov_reg", cMovReg32: "mov_reg32",
	cAddReg: "add_reg", cSubReg: "sub_reg", cMulReg: "mul_reg", cDivReg: "div_reg",
	cModReg: "mod_reg", cOrReg: "or_reg", cAndReg: "and_reg", cXorReg: "xor_reg",
	cLshReg: "lsh_reg", cRshReg: "rsh_reg", cArshReg: "arsh_reg",
	cAddImm: "add_imm", cSubImm: "sub_imm", cMulImm: "mul_imm", cDivImm: "div_imm",
	cModImm: "mod_imm", cOrImm: "or_imm", cAndImm: "and_imm", cXorImm: "xor_imm",
	cLshImm: "lsh_imm", cRshImm: "rsh_imm", cArshImm: "arsh_imm", cNeg: "neg",
	cAddReg32: "add_reg32", cSubReg32: "sub_reg32", cMulReg32: "mul_reg32",
	cDivReg32: "div_reg32", cModReg32: "mod_reg32", cOrReg32: "or_reg32",
	cAndReg32: "and_reg32", cXorReg32: "xor_reg32", cLshReg32: "lsh_reg32",
	cRshReg32: "rsh_reg32", cArshReg32: "arsh_reg32",
	cAddImm32: "add_imm32", cSubImm32: "sub_imm32", cMulImm32: "mul_imm32",
	cDivImm32: "div_imm32", cModImm32: "mod_imm32", cOrImm32: "or_imm32",
	cAndImm32: "and_imm32", cXorImm32: "xor_imm32", cLshImm32: "lsh_imm32",
	cRshImm32: "rsh_imm32", cArshImm32: "arsh_imm32", cNeg32: "neg32",
	cLd8: "ld8", cLd16: "ld16", cLd32: "ld32", cLd64: "ld64",
	cSt8: "st8", cSt16: "st16", cSt32: "st32", cSt64: "st64",
	cStImm8: "st8_imm", cStImm16: "st16_imm", cStImm32: "st32_imm", cStImm64: "st64_imm",
	cJa: "ja", cJEqImm: "jeq_imm", cJNeImm: "jne_imm", cJGtImm: "jgt_imm",
	cJGeImm: "jge_imm", cJLtImm: "jlt_imm", cJLeImm: "jle_imm",
	cJSGtImm: "jsgt_imm", cJSGeImm: "jsge_imm", cJSLtImm: "jslt_imm",
	cJSLeImm: "jsle_imm", cJSetImm: "jset_imm",
	cJEqReg: "jeq_reg", cJNeReg: "jne_reg", cJGtReg: "jgt_reg", cJGeReg: "jge_reg",
	cJLtReg: "jlt_reg", cJLeReg: "jle_reg", cJSGtReg: "jsgt_reg", cJSGeReg: "jsge_reg",
	cJSLtReg: "jslt_reg", cJSLeReg: "jsle_reg", cJSetReg: "jset_reg",
	cCallLookup: "call_map_lookup", cCallUpdate: "call_map_update",
	cCallDelete: "call_map_delete", cCallPrandom: "call_prandom",
	cCallQoS: "call_qos_set_class", cCallGeneric: "call_generic",
}

// cop is one pre-decoded operation. off carries the memory displacement for
// loads/stores, the absolute target op index for jumps, and the map index
// for cLdMap; imm carries the pre-widened immediate (or helper id).
type cop struct {
	code     copCode
	dst, src uint8
	off      int32
	imm      uint64
}

// CompiledProgram is the pre-decoded form of a verifier-accepted program,
// executed by VM.RunCompiled.
type CompiledProgram struct {
	name   string
	ops    []cop
	maps   []Map
	arrs   []*ArrayMap // maps[i] when it is an *ArrayMap (inline lookups), else nil
	insnOf []int32     // op index -> original instruction pc, for diagnostics
	src    *Program
}

// Name returns the program name.
func (cp *CompiledProgram) Name() string { return cp.name }

// NumOps returns the length of the pre-decoded op stream.
func (cp *CompiledProgram) NumOps() int { return len(cp.ops) }

// Source returns the program this was compiled from.
func (cp *CompiledProgram) Source() *Program { return cp.src }

// Compile verifies p with v (nil for a default Verifier) and translates it
// into its pre-decoded form. Only verifier-accepted programs compile: the
// execution engine trusts the verifier's type lattice and elides the
// interpreter's tagged-value checks.
func Compile(p *Program, v *Verifier) (*CompiledProgram, error) {
	if v == nil {
		v = &Verifier{}
	}
	if err := v.Verify(p); err != nil {
		return nil, err
	}
	if v.Helpers == nil {
		v.Helpers = DefaultHelpers()
	}
	return compile(p, v.Helpers)
}

// compile translates without verifying. Internal callers (tests of the
// defense-in-depth bounds and fuel checks) may compile structurally valid
// but unverified programs; everything else must go through Compile.
func compile(p *Program, helpers *HelperRegistry) (*CompiledProgram, error) {
	if helpers == nil {
		helpers = DefaultHelpers()
	}
	n := len(p.Insns)
	if n == 0 {
		return nil, fmt.Errorf("ebpf compile: empty program")
	}
	// Pass 1: mark ld_imm64 continuation slots and build the pc -> op index
	// mapping (continuations are fused away).
	isCont := make([]bool, n)
	opIdx := make([]int32, n)
	nops := int32(0)
	for pc := 0; pc < n; pc++ {
		opIdx[pc] = nops
		nops++
		if p.Insns[pc].Op == OpLdImm64 {
			if pc+1 >= n {
				return nil, fmt.Errorf("ebpf compile: truncated ld_imm64 at %d", pc)
			}
			isCont[pc+1] = true
			opIdx[pc+1] = -1
			pc++
		}
	}

	cp := &CompiledProgram{
		name:   p.Name,
		ops:    make([]cop, 0, nops),
		maps:   p.Maps,
		arrs:   make([]*ArrayMap, len(p.Maps)),
		insnOf: make([]int32, 0, nops),
		src:    p,
	}
	for i, m := range p.Maps {
		if am, ok := m.(*ArrayMap); ok {
			cp.arrs[i] = am
		}
	}

	target := func(pc int, off int16) (int32, error) {
		t := pc + int(off) + 1
		if t < 0 || t >= n {
			return 0, fmt.Errorf("ebpf compile: jump from %d to %d outside program", pc, t)
		}
		if isCont[t] {
			return 0, fmt.Errorf("ebpf compile: jump from %d into ld_imm64 continuation %d", pc, t)
		}
		return opIdx[t], nil
	}

	for pc := 0; pc < n; pc++ {
		if isCont[pc] {
			continue
		}
		in := p.Insns[pc]
		o := cop{dst: in.Dst, src: in.Src}
		switch in.Class() {
		case ClassALU64, ClassALU:
			var err error
			o, err = compileALU(in)
			if err != nil {
				return nil, fmt.Errorf("%w at %d", err, pc)
			}
		case ClassLD:
			if in.Op != OpLdImm64 {
				return nil, fmt.Errorf("ebpf compile: unsupported LD op %#x at %d", in.Op, pc)
			}
			next := p.Insns[pc+1]
			if in.Src == PseudoMapFD {
				idx := int(in.Imm)
				if idx < 0 || idx >= len(p.Maps) {
					return nil, fmt.Errorf("ebpf compile: bad map index %d at %d", idx, pc)
				}
				o.code, o.off = cLdMap, int32(idx)
			} else {
				o.code = cMovImm
				o.imm = uint64(uint32(in.Imm)) | uint64(uint32(next.Imm))<<32
			}
		case ClassLDX:
			switch sizeOf(in.Op) {
			case 1:
				o.code = cLd8
			case 2:
				o.code = cLd16
			case 4:
				o.code = cLd32
			default:
				o.code = cLd64
			}
			o.off = int32(in.Off)
		case ClassSTX:
			switch sizeOf(in.Op) {
			case 1:
				o.code = cSt8
			case 2:
				o.code = cSt16
			case 4:
				o.code = cSt32
			default:
				o.code = cSt64
			}
			o.off = int32(in.Off)
		case ClassST:
			switch sizeOf(in.Op) {
			case 1:
				o.code = cStImm8
			case 2:
				o.code = cStImm16
			case 4:
				o.code = cStImm32
			default:
				o.code = cStImm64
			}
			o.off = int32(in.Off)
			o.imm = uint64(uint32(in.Imm)) // the interpreter zero-extends ST immediates
		case ClassJMP:
			op := in.Op & 0xf0
			switch op {
			case JmpExit:
				o.code = cExit
			case JmpCall:
				o = compileCall(in.Imm, helpers)
			case JmpA:
				t, err := target(pc, in.Off)
				if err != nil {
					return nil, err
				}
				o.code, o.off = cJa, t
			default:
				base, ok := condBase[op]
				if !ok {
					return nil, fmt.Errorf("ebpf compile: unknown jump op %#x at %d", in.Op, pc)
				}
				t, err := target(pc, in.Off)
				if err != nil {
					return nil, err
				}
				o.code, o.off = base, t
				if in.Op&SrcX != 0 {
					o.code += cJEqReg - cJEqImm
				} else {
					o.imm = uint64(int64(in.Imm))
				}
			}
		default:
			return nil, fmt.Errorf("ebpf compile: unknown class %#x at %d", in.Class(), pc)
		}
		cp.ops = append(cp.ops, o)
		cp.insnOf = append(cp.insnOf, int32(pc))
	}

	// Sequential fall-through past the last op would leave the (unchecked)
	// pc range; the verifier guarantees this never happens, but enforce it
	// structurally for unverified internal callers too.
	last := cp.ops[len(cp.ops)-1].code
	if last != cExit && last != cJa {
		return nil, fmt.Errorf("ebpf compile: control flow may fall off the program end")
	}
	return cp, nil
}

// condBase maps a conditional-jump nibble to its immediate-form opcode (the
// register form is at a fixed distance).
var condBase = map[uint8]copCode{
	JmpEq: cJEqImm, JmpNe: cJNeImm, JmpGt: cJGtImm, JmpGe: cJGeImm,
	JmpLt: cJLtImm, JmpLe: cJLeImm, JmpSGt: cJSGtImm, JmpSGe: cJSGeImm,
	JmpSLt: cJSLtImm, JmpSLe: cJSLeImm, JmpSet: cJSetImm,
}

// alu64Base / alu32Base map an ALU nibble to its register-form opcode; the
// immediate form is at a fixed distance (cAddImm - cAddReg).
var alu64Base = map[uint8]copCode{
	ALUAdd: cAddReg, ALUSub: cSubReg, ALUMul: cMulReg, ALUDiv: cDivReg,
	ALUMod: cModReg, ALUOr: cOrReg, ALUAnd: cAndReg, ALUXor: cXorReg,
	ALULsh: cLshReg, ALURsh: cRshReg, ALUArsh: cArshReg,
}
var alu32Base = map[uint8]copCode{
	ALUAdd: cAddReg32, ALUSub: cSubReg32, ALUMul: cMulReg32, ALUDiv: cDivReg32,
	ALUMod: cModReg32, ALUOr: cOrReg32, ALUAnd: cAndReg32, ALUXor: cXorReg32,
	ALULsh: cLshReg32, ALURsh: cRshReg32, ALUArsh: cArshReg32,
}

func compileALU(in Insn) (cop, error) {
	is64 := in.Class() == ClassALU64
	op := in.Op & 0xf0
	o := cop{dst: in.Dst, src: in.Src}
	switch op {
	case ALUMov:
		if in.Op&SrcX != 0 {
			if is64 {
				o.code = cMovReg
			} else {
				o.code = cMovReg32
			}
		} else {
			o.code = cMovImm
			if is64 {
				o.imm = uint64(int64(in.Imm))
			} else {
				o.imm = uint64(uint32(in.Imm))
			}
		}
		return o, nil
	case ALUNeg:
		if is64 {
			o.code = cNeg
		} else {
			o.code = cNeg32
		}
		return o, nil
	}
	base := alu64Base[op]
	if !is64 {
		base = alu32Base[op]
	}
	if base == cBad {
		return o, fmt.Errorf("ebpf compile: unknown ALU op %#x", op)
	}
	o.code = base
	if in.Op&SrcX == 0 { // immediate form
		o.code += cAddImm - cAddReg
		// Pre-widen exactly as the interpreter would at runtime: the
		// immediate is sign-extended, then truncated for 32-bit ops; shift
		// amounts are pre-masked (&63, except 32-bit arsh's &31).
		b := uint64(int64(in.Imm))
		if !is64 {
			b = uint64(uint32(b))
		}
		switch {
		case op == ALUArsh && !is64:
			b &= 31
		case op == ALULsh || op == ALURsh || op == ALUArsh:
			b &= 63
		}
		o.imm = b
	}
	return o, nil
}

// compileCall specializes calls to the standard helpers (identified by both
// id and registered name, so a registry that rebinds an id falls back to the
// generic bridge).
func compileCall(id int32, helpers *HelperRegistry) cop {
	o := cop{imm: uint64(uint32(id))}
	_, _, name, ok := helpers.signature(id)
	if !ok {
		o.code = cCallGeneric // unknown helper: faults at runtime, like the interpreter
		return o
	}
	switch {
	case id == HelperMapLookup && name == "map_lookup_elem":
		o.code = cCallLookup
	case id == HelperMapUpdate && name == "map_update_elem":
		o.code = cCallUpdate
	case id == HelperMapDelete && name == "map_delete_elem":
		o.code = cCallDelete
	case id == HelperGetPrandom && name == "get_prandom_u32":
		o.code = cCallPrandom
	case id == HelperQoSSetClass && name == "qos_set_class":
		o.code = cCallQoS
	default:
		o.code = cCallGeneric
	}
	return o
}

// Dump renders the pre-decoded op stream for debugging classifier
// compilation (cmd/nvmetro-asm -compile).
func (cp *CompiledProgram) Dump() string {
	var sb strings.Builder
	for i, o := range cp.ops {
		name := copNames[o.code]
		if name == "" {
			name = fmt.Sprintf("op%d", o.code)
		}
		fmt.Fprintf(&sb, "%4d: %-16s dst=r%-2d src=r%-2d off=%-6d imm=%#x", i, name, o.dst, o.src, o.off, o.imm)
		pc := int(cp.insnOf[i])
		src := cp.src.Insns[pc]
		if s, err := disasmOne(src, Insn{}); err == nil {
			fmt.Fprintf(&sb, "\t; insn %d: %s", pc, s)
		} else if src.Op == OpLdImm64 {
			fmt.Fprintf(&sb, "\t; insn %d: lddw/ldmap", pc)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
