// Package guestmem models a VM's guest-physical memory: a page-granular
// address space that devices, the I/O router and userspace I/O functions
// access via DMA-style reads and writes. Pages are allocated lazily so large
// sparse address spaces stay cheap, and a simple bump allocator hands out
// DMA buffers and PRP list pages to the guest driver.
package guestmem

import (
	"errors"
	"fmt"
)

// PageSize is the guest page size (matches the NVMe PRP page size).
const PageSize = 4096

// ErrOutOfRange reports an access beyond the configured memory size.
var ErrOutOfRange = errors.New("guestmem: access out of range")

// ErrOutOfMemory reports allocator exhaustion.
var ErrOutOfMemory = errors.New("guestmem: out of memory")

// Memory is a sparse guest-physical address space.
type Memory struct {
	size  uint64
	pages map[uint64][]byte // page number -> page data
	next  uint64            // bump allocator cursor (page-aligned)
}

// New creates a guest memory of the given size in bytes (rounded up to a
// page). Allocation starts above the first page to keep address 0 invalid.
func New(size uint64) *Memory {
	size = (size + PageSize - 1) &^ uint64(PageSize-1)
	return &Memory{size: size, pages: make(map[uint64][]byte), next: PageSize}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

func (m *Memory) page(pn uint64, create bool) []byte {
	p := m.pages[pn]
	if p == nil && create {
		p = make([]byte, PageSize)
		m.pages[pn] = p
	}
	return p
}

// ReadAt copies len(p) bytes from guest physical address addr.
// Reads of never-written pages return zeros.
func (m *Memory) ReadAt(p []byte, addr uint64) error {
	if addr+uint64(len(p)) > m.size {
		return fmt.Errorf("%w: read [%#x,+%d)", ErrOutOfRange, addr, len(p))
	}
	for len(p) > 0 {
		pn, off := addr/PageSize, addr%PageSize
		n := PageSize - off
		if uint64(len(p)) < n {
			n = uint64(len(p))
		}
		if pg := m.page(pn, false); pg != nil {
			copy(p[:n], pg[off:])
		} else {
			clear(p[:n])
		}
		p = p[n:]
		addr += n
	}
	return nil
}

// WriteAt copies p into guest physical memory at addr.
func (m *Memory) WriteAt(p []byte, addr uint64) error {
	if addr+uint64(len(p)) > m.size {
		return fmt.Errorf("%w: write [%#x,+%d)", ErrOutOfRange, addr, len(p))
	}
	for len(p) > 0 {
		pn, off := addr/PageSize, addr%PageSize
		n := PageSize - off
		if uint64(len(p)) < n {
			n = uint64(len(p))
		}
		copy(m.page(pn, true)[off:], p[:n])
		p = p[n:]
		addr += n
	}
	return nil
}

// AllocPages allocates n contiguous pages and returns the base address.
func (m *Memory) AllocPages(n int) (uint64, error) {
	need := uint64(n) * PageSize
	if m.next+need > m.size {
		return 0, ErrOutOfMemory
	}
	base := m.next
	m.next += need
	return base, nil
}

// MustAllocPages is AllocPages that panics on exhaustion (guest driver
// setup paths where failure is a programming error).
func (m *Memory) MustAllocPages(n int) uint64 {
	a, err := m.AllocPages(n)
	if err != nil {
		panic(err)
	}
	return a
}

// AllocBuffer allocates a page-aligned buffer of at least size bytes and
// returns its base address and the list of page addresses covering it.
func (m *Memory) AllocBuffer(size uint32) (base uint64, pages []uint64, err error) {
	n := int((size + PageSize - 1) / PageSize)
	if n == 0 {
		n = 1
	}
	base, err = m.AllocPages(n)
	if err != nil {
		return 0, nil, err
	}
	for i := 0; i < n; i++ {
		pages = append(pages, base+uint64(i)*PageSize)
	}
	return base, pages, nil
}

// Allocated reports how many bytes the bump allocator has handed out.
func (m *Memory) Allocated() uint64 { return m.next - PageSize }

// Resident reports how many pages are materialized.
func (m *Memory) Resident() int { return len(m.pages) }
