package guestmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	m := New(1 << 20)
	buf := []byte{1, 2, 3, 4}
	if err := m.ReadAt(buf, 0x8000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Fatalf("got %v", buf)
	}
	if m.Resident() != 0 {
		t.Fatal("read materialized a page")
	}
}

func TestWriteReadCrossPage(t *testing.T) {
	m := New(1 << 20)
	src := make([]byte, 3*PageSize+123)
	for i := range src {
		src[i] = byte(i)
	}
	addr := uint64(PageSize - 77)
	if err := m.WriteAt(src, addr); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := m.ReadAt(dst, addr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestOutOfRange(t *testing.T) {
	m := New(PageSize)
	if err := m.WriteAt(make([]byte, 8), PageSize-4); err == nil {
		t.Fatal("want out of range write error")
	}
	if err := m.ReadAt(make([]byte, 1), PageSize); err == nil {
		t.Fatal("want out of range read error")
	}
}

func TestAllocPagesSequentialAligned(t *testing.T) {
	m := New(1 << 20)
	a := m.MustAllocPages(2)
	b := m.MustAllocPages(1)
	if a%PageSize != 0 || b != a+2*PageSize {
		t.Fatalf("a=%#x b=%#x", a, b)
	}
	if a == 0 {
		t.Fatal("address 0 must stay invalid")
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(4 * PageSize)
	m.MustAllocPages(3) // page 0 reserved, 3 allocatable
	if _, err := m.AllocPages(1); err == nil {
		t.Fatal("want exhaustion")
	}
}

func TestAllocBuffer(t *testing.T) {
	m := New(1 << 20)
	base, pages, err := m.AllocBuffer(PageSize*2 + 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 || pages[0] != base || pages[2] != base+2*PageSize {
		t.Fatalf("pages %v base %#x", pages, base)
	}
}

// Property: any write followed by a read of the same range returns the data.
func TestWriteReadProperty(t *testing.T) {
	m := New(1 << 22)
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		a := uint64(addr) % (m.Size() - uint64(len(data)))
		if err := m.WriteAt(data, a); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.ReadAt(got, a); err != nil {
			return false
		}
		return bytes.Equal(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
