// Package uif is the userspace I/O function framework (the paper's ~1100
// LoC C++ library, Section III-D): it owns the notify-queue mappings and
// io_uring rings, runs adaptive polling threads (busy-poll while active,
// epoll-style sleep when idle), parses incoming NVMe commands, gives
// handlers zero-copy access to VM data pages, and exposes each request as
// an event to the storage-function handler.
//
// One framework instance (one "process") can serve several VMs at once:
// each Attach adds an attachment that all polling threads service,
// lowering the CPU cost of busy polling as the paper describes.
package uif

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Costs models framework overheads.
type Costs struct {
	Poll        sim.Duration // one empty poll sweep
	Parse       sim.Duration // command parse + event dispatch
	Complete    sim.Duration // NCQ post
	WakeLatency sim.Duration // epoll wake-up delay after idle sleep
	IdlePark    sim.Duration // spin budget before sleeping
}

// DefaultCosts returns the calibrated framework cost model.
func DefaultCosts() Costs {
	return Costs{
		Poll:        300 * sim.Nanosecond,
		Parse:       400 * sim.Nanosecond,
		Complete:    250 * sim.Nanosecond,
		WakeLatency: 4 * sim.Microsecond,
		IdlePark:    50 * sim.Microsecond,
	}
}

// Handler is a storage function's request logic (the paper's uif::work).
// Return async=false to complete immediately with status; return async=true
// and finish later via req.CompleteAsync (e.g. after an io_uring write).
type Handler interface {
	Work(p *sim.Proc, th *sim.Thread, req *Request) (async bool, status nvme.Status)
}

// Request is one exported command plus accessors for its data pages in the
// VM's memory.
type Request struct {
	Cmd nvme.Command
	Tag uint16
	att *Attachment

	segs []nvme.Segment
}

// Attachment binds one VM's notify queues to a handler, with an optional
// io_uring for backend I/O.
type Attachment struct {
	f       *Framework
	nq      *core.NotifyQueues
	handler Handler
	ring    *blockdev.URing
	shift   uint8

	pendingRing map[uint64]ringWait
	nextRingID  uint64
	deferred    []func(p *sim.Proc, th *sim.Thread)

	// Stats
	Events, AsyncDone uint64
}

type ringWait struct {
	tag     uint16
	andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)
}

// Framework runs the polling threads.
type Framework struct {
	env    *sim.Env
	costs  Costs
	atts   []*Attachment
	wake   *sim.Cond
	asleep int

	// Stats
	Polls, Wakes uint64
}

// NewFramework creates a framework with the given polling threads.
func NewFramework(env *sim.Env, costs Costs, threads []*sim.Thread) *Framework {
	f := &Framework{env: env, costs: costs, wake: sim.NewCond(env)}
	for i, th := range threads {
		th := th
		env.Go(fmt.Sprintf("uif-poll%d", i), func(p *sim.Proc) { f.pollLoop(p, th) })
	}
	return f
}

// Attach registers a VM's notify queues with a handler. ring may be nil for
// handlers that never touch the backend directly.
func (f *Framework) Attach(nq *core.NotifyQueues, handler Handler, ring *blockdev.URing) *Attachment {
	att := &Attachment{f: f, nq: nq, handler: handler, ring: ring, shift: nq.BlockShift(), pendingRing: make(map[uint64]ringWait)}
	nq.OnNotify = f.hint
	if ring != nil {
		ring.OnComp = f.hint
	}
	f.atts = append(f.atts, att)
	return att
}

// hint wakes a sleeping polling thread (edge-triggered eventfd semantics).
func (f *Framework) hint() {
	if f.asleep > 0 {
		f.wake.Signal(nil)
	}
}

func (f *Framework) pollLoop(p *sim.Proc, th *sim.Thread) {
	var idle sim.Duration
	for {
		did := false
		for _, att := range f.atts {
			if f.sweep(p, th, att) {
				did = true
			}
		}
		f.Polls++
		if did {
			idle = 0
			continue
		}
		// The park decision must come directly after an empty sweep, with
		// no intervening virtual time: work arriving during a spin Exec
		// fires the hint while we are not yet asleep, so the next sweep —
		// not the sleep — has to pick it up (lost-wakeup avoidance).
		if idle >= f.costs.IdlePark {
			// Adaptive polling: fall back to OS-assisted waiting.
			f.asleep++
			f.wake.Wait()
			f.asleep--
			f.Wakes++
			p.Sleep(f.costs.WakeLatency)
			idle = 0
			continue
		}
		th.Exec(p, f.costs.Poll)
		idle += f.costs.Poll
	}
}

// sweep services one attachment once, reporting whether any work was found.
func (f *Framework) sweep(p *sim.Proc, th *sim.Thread, att *Attachment) bool {
	did := false

	// Deferred work queued from non-thread contexts (e.g. enclave jobs).
	for len(att.deferred) > 0 {
		fn := att.deferred[0]
		att.deferred = att.deferred[1:]
		fn(p, th)
		did = true
	}

	// Backend io_uring completions.
	if att.ring != nil {
		for _, cqe := range att.ring.Reap(p, th, 32) {
			w, ok := att.pendingRing[cqe.UserData]
			if !ok {
				continue
			}
			delete(att.pendingRing, cqe.UserData)
			if w.andThen != nil {
				w.andThen(p, th, cqe.Status)
			} else {
				att.complete(p, th, w.tag, cqe.Status)
			}
			att.AsyncDone++
			did = true
		}
	}

	// New requests from the router.
	var cmd nvme.Command
	for i := 0; i < 32; i++ {
		tag, ok := att.nq.Pop(&cmd)
		if !ok {
			break
		}
		th.Exec(p, f.costs.Parse)
		att.Events++
		req := &Request{Cmd: cmd, Tag: tag, att: att}
		async, st := att.handler.Work(p, th, req)
		if !async {
			att.complete(p, th, tag, st)
		}
		did = true
	}
	return did
}

func (att *Attachment) complete(p *sim.Proc, th *sim.Thread, tag uint16, st nvme.Status) {
	th.Exec(p, att.f.costs.Complete)
	if !att.nq.Complete(tag, st) {
		panic("uif: NCQ full")
	}
}

// VMID identifies the VM this attachment serves.
func (att *Attachment) VMID() int { return att.nq.VMID() }

// Defer queues fn to run on a polling thread; safe from callback contexts.
func (att *Attachment) Defer(fn func(p *sim.Proc, th *sim.Thread)) {
	att.deferred = append(att.deferred, fn)
	att.f.hint()
}

// submitRing installs w in the ring-completion table and submits the I/O.
func (att *Attachment) submitRing(p *sim.Proc, th *sim.Thread, op blockdev.BioOp, sector uint64, data []byte, w ringWait) {
	att.nextRingID++
	id := att.nextRingID
	att.pendingRing[id] = w
	att.ring.Submit(p, th, op, sector, data, id)
}

// SubmitBackendIO queues an arbitrary backend ring I/O that is not tied
// to a guest request — the resync engine uses it to read the secondary
// and replay dirty chunks through the same ring (and ordering domain) as
// the foreground mirror writes. Safe from any simulation context; andThen
// runs on a polling thread when the I/O completes.
func (att *Attachment) SubmitBackendIO(op blockdev.BioOp, sector uint64, data []byte, andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)) {
	att.Defer(func(p *sim.Proc, th *sim.Thread) {
		att.submitRing(p, th, op, sector, data, ringWait{andThen: andThen})
	})
}

// --- Request accessors ----------------------------------------------------

// Attachment returns the owning attachment, for queueing deferred work from
// callback contexts.
func (r *Request) Attachment() *Attachment { return r.att }

// BlockShift returns log2 of the device block size.
func (r *Request) BlockShift() uint8 { return r.att.shift }

// NBytes returns the request's transfer size.
func (r *Request) NBytes() uint32 { return r.Cmd.Blocks() << r.att.shift }

// LBA returns the (mediated, device-absolute) starting LBA.
func (r *Request) LBA() uint64 { return r.Cmd.SLBA() }

// Sector returns the starting 512-byte sector for backend io_uring I/O.
func (r *Request) Sector() uint64 { return r.Cmd.SLBA() << r.att.shift / blockdev.SectorSize }

// segments resolves (and caches) the command's PRP chain.
func (r *Request) segments() ([]nvme.Segment, error) {
	if r.segs == nil {
		segs, err := nvme.WalkPRP(r.att.nq.Mem(), r.Cmd.PRP1(), r.Cmd.PRP2(), r.NBytes())
		if err != nil {
			return nil, err
		}
		r.segs = segs
	}
	return r.segs, nil
}

// ReadData copies the request's data pages out of the VM into buf.
func (r *Request) ReadData(buf []byte) error {
	segs, err := r.segments()
	if err != nil {
		return err
	}
	return nvme.ReadSegments(r.att.nq.Mem(), segs, buf)
}

// WriteData copies buf into the request's data pages in the VM (used after
// in-place decryption).
func (r *Request) WriteData(buf []byte) error {
	segs, err := r.segments()
	if err != nil {
		return err
	}
	return nvme.WriteSegments(r.att.nq.Mem(), segs, buf)
}

// CompleteAsync finishes an async request from any simulation context.
func (r *Request) CompleteAsync(st nvme.Status) {
	r.att.Defer(func(p *sim.Proc, th *sim.Thread) {
		r.att.complete(p, th, r.Tag, st)
	})
}

// SubmitBackendWrite writes data to the backend at the request's location
// via io_uring and completes the request with the write's status — the
// paper's queue_writev path.
func (r *Request) SubmitBackendWrite(p *sim.Proc, th *sim.Thread, data []byte) {
	r.att.submitRing(p, th, blockdev.BioWrite, r.Sector(), data, ringWait{tag: r.Tag})
}

// SubmitBackendWriteThen is SubmitBackendWrite with a custom continuation.
func (r *Request) SubmitBackendWriteThen(p *sim.Proc, th *sim.Thread, data []byte, andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)) {
	r.att.submitRing(p, th, blockdev.BioWrite, r.Sector(), data, ringWait{tag: r.Tag, andThen: andThen})
}

// SubmitBackendReadThen reads the request's range from the backend into buf
// via io_uring and runs andThen when the read completes — the cache storage
// function's miss path, which must see the data before completing the guest
// request so it can install the block into the host cache.
func (r *Request) SubmitBackendReadThen(p *sim.Proc, th *sim.Thread, buf []byte, andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)) {
	r.att.submitRing(p, th, blockdev.BioRead, r.Sector(), buf, ringWait{tag: r.Tag, andThen: andThen})
}
