// Package uif is the userspace I/O function framework (the paper's ~1100
// LoC C++ library, Section III-D): it owns the notify-queue mappings and
// io_uring rings, runs adaptive polling threads (busy-poll while active,
// epoll-style sleep when idle), parses incoming NVMe commands, gives
// handlers zero-copy access to VM data pages, and exposes each request as
// an event to the storage-function handler.
//
// One framework instance (one "process") can serve several VMs at once:
// each Attach adds an attachment that all polling threads service,
// lowering the CPU cost of busy polling as the paper describes.
package uif

import (
	"fmt"
	"sort"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/fault"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Costs models framework overheads.
type Costs struct {
	Poll        sim.Duration // one empty poll sweep
	Parse       sim.Duration // command parse + event dispatch
	Complete    sim.Duration // NCQ post
	WakeLatency sim.Duration // epoll wake-up delay after idle sleep
	IdlePark    sim.Duration // spin budget before sleeping
}

// DefaultCosts returns the calibrated framework cost model.
func DefaultCosts() Costs {
	return Costs{
		Poll:        300 * sim.Nanosecond,
		Parse:       400 * sim.Nanosecond,
		Complete:    250 * sim.Nanosecond,
		WakeLatency: 4 * sim.Microsecond,
		IdlePark:    50 * sim.Microsecond,
	}
}

// Handler is a storage function's request logic (the paper's uif::work).
// Return async=false to complete immediately with status; return async=true
// and finish later via req.CompleteAsync (e.g. after an io_uring write).
type Handler interface {
	Work(p *sim.Proc, th *sim.Thread, req *Request) (async bool, status nvme.Status)
}

// Request is one exported command plus accessors for its data pages in the
// VM's memory.
type Request struct {
	Cmd nvme.Command
	Tag uint16
	att *Attachment

	segs []nvme.Segment
}

// AttState is the liveness state of one attachment's servicing.
type AttState int

// Attachment liveness states.
const (
	// AttHealthy: the poll loop services this attachment normally.
	AttHealthy AttState = iota
	// AttWedged: the poll loop is stalled — alive but making no progress.
	AttWedged
	// AttDead: the poll loop died; all in-process state is lost and the
	// attachment never services anything again. Terminal.
	AttDead
)

func (s AttState) String() string {
	switch s {
	case AttHealthy:
		return "healthy"
	case AttWedged:
		return "wedged"
	case AttDead:
		return "dead"
	}
	return fmt.Sprintf("AttState(%d)", int(s))
}

// Attachment binds one VM's notify queues to a handler, with an optional
// io_uring for backend I/O.
type Attachment struct {
	f       *Framework
	nq      *core.NotifyQueues
	handler Handler
	ring    *blockdev.URing
	shift   uint8

	pendingRing map[uint64]ringWait
	deferred    []func(p *sim.Proc, th *sim.Thread)
	backlog     []backendIO

	inj          *fault.Injector
	state        AttState
	wedgeUntil   sim.Time
	wedgeForever bool

	// Stats
	Events, AsyncDone uint64
	progress          uint64
	CrashFaults       uint64 // injected poll-loop crashes
	WedgeFaults       uint64 // injected poll-loop stalls
}

type ringWait struct {
	tag     uint16
	andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)
	// failable marks host-side backend waits (SubmitBackendIO): their
	// andThen tolerates running with nil p/th, so Kill can fail them
	// instead of stranding the caller. Guest-request waits are dropped on
	// Kill — the router's reconciliation owns those commands.
	failable bool
}

// backendIO is one queued SubmitBackendIO not yet submitted to the ring.
type backendIO struct {
	op      blockdev.BioOp
	sector  uint64
	data    []byte
	andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)
}

// Framework runs the polling threads.
type Framework struct {
	env    *sim.Env
	costs  Costs
	atts   []*Attachment
	wake   *sim.Cond
	asleep int

	// nextRingID is framework-global so ring UserData values stay unique
	// across attachment generations: a restarted attachment sharing its
	// predecessor's ring must never reap a stale CQE into a fresh wait.
	nextRingID uint64

	// Stats
	Polls, Wakes   uint64
	StaleRingComps uint64 // CQEs reaped with no matching wait (dead owner)
}

// NewFramework creates a framework with the given polling threads.
func NewFramework(env *sim.Env, costs Costs, threads []*sim.Thread) *Framework {
	f := &Framework{env: env, costs: costs, wake: sim.NewCond(env)}
	for i, th := range threads {
		th := th
		env.Go(fmt.Sprintf("uif-poll%d", i), func(p *sim.Proc) { f.pollLoop(p, th) })
	}
	return f
}

// Attach registers a VM's notify queues with a handler. ring may be nil for
// handlers that never touch the backend directly.
func (f *Framework) Attach(nq *core.NotifyQueues, handler Handler, ring *blockdev.URing) *Attachment {
	att := &Attachment{f: f, nq: nq, handler: handler, ring: ring, shift: nq.BlockShift(), pendingRing: make(map[uint64]ringWait)}
	nq.OnNotify = f.hint
	if ring != nil {
		ring.OnComp = f.hint
	}
	f.atts = append(f.atts, att)
	return att
}

// hint wakes a sleeping polling thread (edge-triggered eventfd semantics).
func (f *Framework) hint() {
	if f.asleep > 0 {
		f.wake.Signal(nil)
	}
}

func (f *Framework) pollLoop(p *sim.Proc, th *sim.Thread) {
	var idle sim.Duration
	for {
		did := false
		for _, att := range f.atts {
			if f.sweep(p, th, att) {
				did = true
			}
		}
		f.Polls++
		if did {
			idle = 0
			continue
		}
		// The park decision must come directly after an empty sweep, with
		// no intervening virtual time: work arriving during a spin Exec
		// fires the hint while we are not yet asleep, so the next sweep —
		// not the sleep — has to pick it up (lost-wakeup avoidance).
		if idle >= f.costs.IdlePark {
			// Adaptive polling: fall back to OS-assisted waiting.
			f.asleep++
			f.wake.Wait()
			f.asleep--
			f.Wakes++
			p.Sleep(f.costs.WakeLatency)
			idle = 0
			continue
		}
		th.Exec(p, f.costs.Poll)
		idle += f.costs.Poll
	}
}

// sweep services one attachment once, reporting whether any work was found.
func (f *Framework) sweep(p *sim.Proc, th *sim.Thread, att *Attachment) bool {
	switch att.state {
	case AttDead:
		return false
	case AttWedged:
		if att.wedgeForever || f.env.Now() < att.wedgeUntil {
			return false
		}
		att.state = AttHealthy
	}
	did := false

	// Deferred work queued from non-thread contexts (e.g. enclave jobs).
	for len(att.deferred) > 0 {
		fn := att.deferred[0]
		att.deferred = att.deferred[1:]
		fn(p, th)
		att.progress++
		did = true
	}

	// Host-side backend I/O queued out-of-band (resync legs).
	for len(att.backlog) > 0 {
		b := att.backlog[0]
		att.backlog = att.backlog[1:]
		att.submitRing(p, th, b.op, b.sector, b.data, ringWait{andThen: b.andThen, failable: true})
		att.progress++
		did = true
	}

	// Backend io_uring completions.
	if att.ring != nil {
		for _, cqe := range att.ring.Reap(p, th, 32) {
			w, ok := att.pendingRing[cqe.UserData]
			if !ok {
				// A CQE whose owner died: the wait table was cleared by
				// Kill, or the I/O belonged to a previous attachment
				// generation sharing this ring.
				f.StaleRingComps++
				continue
			}
			delete(att.pendingRing, cqe.UserData)
			if w.andThen != nil {
				w.andThen(p, th, cqe.Status)
			} else {
				att.complete(p, th, w.tag, cqe.Status)
			}
			att.AsyncDone++
			att.progress++
			did = true
		}
	}

	// New requests from the router.
	var cmd nvme.Command
	for i := 0; i < 32; i++ {
		if att.inj != nil && att.nq.Pending() > 0 {
			// One liveness draw per command about to be serviced; a crash
			// or wedge strands the command (and everything behind it) in
			// the NSQ — exactly what the watchdog must detect.
			d := att.inj.Decide(fault.ClassOther)
			if d.Crash {
				att.CrashFaults++
				att.Kill()
				return did
			}
			if d.Wedge {
				att.WedgeFaults++
				att.Wedge(d.WedgeFor)
				return did
			}
		}
		tag, ok := att.nq.Pop(&cmd)
		if !ok {
			break
		}
		th.Exec(p, f.costs.Parse)
		att.Events++
		att.progress++
		req := &Request{Cmd: cmd, Tag: tag, att: att}
		async, st := att.handler.Work(p, th, req)
		if !async {
			att.complete(p, th, tag, st)
		}
		did = true
	}
	return did
}

func (att *Attachment) complete(p *sim.Proc, th *sim.Thread, tag uint16, st nvme.Status) {
	if att.state == AttDead {
		// A dead process posts nothing; the router's reconciliation owns
		// the command.
		return
	}
	th.Exec(p, att.f.costs.Complete)
	if !att.nq.Complete(tag, st) {
		panic("uif: NCQ full")
	}
}

// State returns the attachment's liveness state.
func (att *Attachment) State() AttState { return att.state }

// Progress returns a counter that advances whenever the poll loop services
// anything for this attachment — the watchdog's heartbeat signal. It is
// observed externally; a dead or wedged loop cannot fake it.
func (att *Attachment) Progress() uint64 { return att.progress }

// SetFaultInjector arms inj as this attachment's per-command liveness
// fault site (UIFCrash/UIFWedge rules). nil disarms.
func (att *Attachment) SetFaultInjector(inj *fault.Injector) { att.inj = inj }

// FaultInjector returns the armed injector (nil when disarmed).
func (att *Attachment) FaultInjector() *fault.Injector { return att.inj }

// Kill terminates the attachment's servicing as a process death would:
// state is lost, queued work is abandoned, and nothing is ever serviced
// or completed again. Host-side backend waits (SubmitBackendIO) fail with
// SCPathError so synchronous callers (the resync engine) unblock;
// guest-request waits are dropped — the router's reconciliation decides
// their fate. Safe from any simulation context; idempotent.
func (att *Attachment) Kill() {
	if att.state == AttDead {
		return
	}
	att.state = AttDead
	var fail []func(p *sim.Proc, th *sim.Thread, st nvme.Status)
	for _, b := range att.backlog {
		if b.andThen != nil {
			fail = append(fail, b.andThen)
		}
	}
	att.backlog = nil
	ids := make([]uint64, 0, len(att.pendingRing))
	for id := range att.pendingRing {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if w := att.pendingRing[id]; w.failable && w.andThen != nil {
			fail = append(fail, w.andThen)
		}
	}
	att.pendingRing = make(map[uint64]ringWait)
	att.deferred = nil
	for _, fn := range fail {
		fn := fn
		// Failable callbacks tolerate nil p/th by contract; deliver from
		// scheduler context so Kill itself never blocks.
		att.f.env.After(0, func() { fn(nil, nil, nvme.SCPathError) })
	}
}

// Wedge stalls the attachment's servicing for d (0 = until killed). The
// process is alive — in-flight state is kept — but nothing moves until
// the stall expires. No-op on a dead attachment.
func (att *Attachment) Wedge(d sim.Duration) {
	if att.state == AttDead {
		return
	}
	att.state = AttWedged
	if d > 0 {
		att.wedgeUntil = att.f.env.Now().Add(d)
		att.wedgeForever = false
		att.f.env.After(d, att.f.hint)
	} else {
		att.wedgeForever = true
	}
}

// VMID identifies the VM this attachment serves.
func (att *Attachment) VMID() int { return att.nq.VMID() }

// Defer queues fn to run on a polling thread; safe from callback contexts.
// Work deferred to a dead attachment is silently dropped — the process it
// would have run in no longer exists.
func (att *Attachment) Defer(fn func(p *sim.Proc, th *sim.Thread)) {
	if att.state == AttDead {
		return
	}
	att.deferred = append(att.deferred, fn)
	att.f.hint()
}

// submitRing installs w in the ring-completion table and submits the I/O.
func (att *Attachment) submitRing(p *sim.Proc, th *sim.Thread, op blockdev.BioOp, sector uint64, data []byte, w ringWait) {
	att.f.nextRingID++
	id := att.f.nextRingID
	att.pendingRing[id] = w
	att.ring.Submit(p, th, op, sector, data, id)
}

// SubmitBackendIO queues an arbitrary backend ring I/O that is not tied
// to a guest request — the resync engine uses it to read the secondary
// and replay dirty chunks through the same ring (and ordering domain) as
// the foreground mirror writes. Safe from any simulation context; andThen
// runs on a polling thread when the I/O completes — except when the
// attachment dies (Kill) before the I/O finishes, in which case andThen
// runs from scheduler context with nil p/th and SCPathError. Callers must
// therefore not touch p/th on a non-OK status.
func (att *Attachment) SubmitBackendIO(op blockdev.BioOp, sector uint64, data []byte, andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)) {
	if att.state == AttDead {
		if andThen != nil {
			att.f.env.After(0, func() { andThen(nil, nil, nvme.SCPathError) })
		}
		return
	}
	att.backlog = append(att.backlog, backendIO{op: op, sector: sector, data: data, andThen: andThen})
	att.f.hint()
}

// --- Request accessors ----------------------------------------------------

// Attachment returns the owning attachment, for queueing deferred work from
// callback contexts.
func (r *Request) Attachment() *Attachment { return r.att }

// BlockShift returns log2 of the device block size.
func (r *Request) BlockShift() uint8 { return r.att.shift }

// NBytes returns the request's transfer size.
func (r *Request) NBytes() uint32 { return r.Cmd.Blocks() << r.att.shift }

// LBA returns the (mediated, device-absolute) starting LBA.
func (r *Request) LBA() uint64 { return r.Cmd.SLBA() }

// Sector returns the starting 512-byte sector for backend io_uring I/O.
func (r *Request) Sector() uint64 { return r.Cmd.SLBA() << r.att.shift / blockdev.SectorSize }

// segments resolves (and caches) the command's PRP chain.
func (r *Request) segments() ([]nvme.Segment, error) {
	if r.segs == nil {
		segs, err := nvme.WalkPRP(r.att.nq.Mem(), r.Cmd.PRP1(), r.Cmd.PRP2(), r.NBytes())
		if err != nil {
			return nil, err
		}
		r.segs = segs
	}
	return r.segs, nil
}

// ReadData copies the request's data pages out of the VM into buf.
func (r *Request) ReadData(buf []byte) error {
	segs, err := r.segments()
	if err != nil {
		return err
	}
	return nvme.ReadSegments(r.att.nq.Mem(), segs, buf)
}

// WriteData copies buf into the request's data pages in the VM (used after
// in-place decryption).
func (r *Request) WriteData(buf []byte) error {
	segs, err := r.segments()
	if err != nil {
		return err
	}
	return nvme.WriteSegments(r.att.nq.Mem(), segs, buf)
}

// CompleteAsync finishes an async request from any simulation context.
func (r *Request) CompleteAsync(st nvme.Status) {
	r.att.Defer(func(p *sim.Proc, th *sim.Thread) {
		r.att.complete(p, th, r.Tag, st)
	})
}

// SubmitBackendWrite writes data to the backend at the request's location
// via io_uring and completes the request with the write's status — the
// paper's queue_writev path.
func (r *Request) SubmitBackendWrite(p *sim.Proc, th *sim.Thread, data []byte) {
	r.att.submitRing(p, th, blockdev.BioWrite, r.Sector(), data, ringWait{tag: r.Tag})
}

// SubmitBackendWriteThen is SubmitBackendWrite with a custom continuation.
func (r *Request) SubmitBackendWriteThen(p *sim.Proc, th *sim.Thread, data []byte, andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)) {
	r.att.submitRing(p, th, blockdev.BioWrite, r.Sector(), data, ringWait{tag: r.Tag, andThen: andThen})
}

// SubmitBackendReadThen reads the request's range from the backend into buf
// via io_uring and runs andThen when the read completes — the cache storage
// function's miss path, which must see the data before completing the guest
// request so it can install the block into the host cache.
func (r *Request) SubmitBackendReadThen(p *sim.Proc, th *sim.Thread, buf []byte, andThen func(p *sim.Proc, th *sim.Thread, st nvme.Status)) {
	r.att.submitRing(p, th, blockdev.BioRead, r.Sector(), buf, ringWait{tag: r.Tag, andThen: andThen})
}
