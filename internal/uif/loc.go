package uif

import (
	_ "embed"
	"strings"
)

//go:embed framework.go
var frameworkSrc string

// FrameworkLines reports the UIF framework's size for Table I (the paper's
// C++ framework spans ~1100 lines; the routing, parsing, polling and
// io_uring plumbing live here).
func FrameworkLines() int {
	n := 0
	for _, l := range strings.Split(frameworkSrc, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}
