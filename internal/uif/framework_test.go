package uif_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// uifRig wires a router+controller+framework without a full guest driver:
// tests push commands straight into the virtual submission queue.
type uifRig struct {
	env  *sim.Env
	cpu  *sim.CPU
	dev  *device.Device
	vc   *core.Controller
	qp   *nvme.QueuePair
	v    *vm.VM
	fw   *uif.Framework
	ring *blockdev.URing
}

func newUIFRig(t *testing.T, threads int, handler uif.Handler) *uifRig {
	t.Helper()
	env := sim.New(1)
	cpu := sim.NewCPU(env, 16)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, device.NewMemStore(512))
	router := core.NewRouter(env, core.DefaultRouterCosts(), []*sim.Thread{cpu.ThreadOn(8, "router")})
	v := vm.New(env, 0, cpu, 0, 1, 32<<20, vm.DefaultVirtCosts())
	vc := router.Attach(v, device.WholeNamespace(dev, 1))
	prog, _ := storfn.EncryptorClassifier(vc.Partition())
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	var ths []*sim.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, cpu.ThreadOn(9+i, "uif"))
	}
	fw := uif.NewFramework(env, uif.DefaultCosts(), ths)
	bdev := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(dev, 1), cpu, 14, blockdev.DefaultCosts())
	ring := blockdev.NewURing(env, bdev, blockdev.DefaultURingCosts())
	fw.Attach(vc.AttachUIF(64), handler, ring)
	return &uifRig{env: env, cpu: cpu, dev: dev, vc: vc, v: v, fw: fw, ring: ring, qp: vc.CreateQP(64)}
}

func (r *uifRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	r.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; r.env.Stop() })
	r.env.RunUntil(sim.Time(30 * sim.Second))
	if !ok {
		t.Fatal("did not finish")
	}
	r.env.Close()
}

// submit pushes a raw NVMe command into the VSQ and waits for the VCQ.
func (r *uifRig) submit(p *sim.Proc, cmd nvme.Command) nvme.Status {
	if !r.qp.SQ.Push(&cmd) {
		panic("vsq full")
	}
	r.vc.Ring(r.qp.SQ.ID)
	var e nvme.Completion
	for {
		if r.qp.CQ.Pop(&e) {
			return e.Status()
		}
		p.Sleep(2 * sim.Microsecond)
	}
}

func TestFrameworkEncryptorWriteReadViaRawQueues(t *testing.T) {
	enc, err := storfn.NewEncryptor(bytes.Repeat([]byte{1}, 64), storfn.DefaultEncryptorCosts())
	if err != nil {
		t.Fatal(err)
	}
	r := newUIFRig(t, 2, enc)
	r.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0xdd}, 512)
		base, _, _ := r.v.Mem.AllocBuffer(512)
		r.v.Mem.WriteAt(data, base)
		w := nvme.NewRW(nvme.OpWrite, 1, 1, 9, 1, base, 0)
		if st := r.submit(p, w); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// Read back through the device+UIF decrypt path.
		r.v.Mem.WriteAt(make([]byte, 512), base)
		rd := nvme.NewRW(nvme.OpRead, 2, 1, 9, 1, base, 0)
		if st := r.submit(p, rd); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		got := make([]byte, 512)
		r.v.Mem.ReadAt(got, base)
		if !bytes.Equal(got, data) {
			t.Fatal("round trip through framework failed")
		}
	})
	if enc.Reads != 1 || enc.Writes != 1 {
		t.Fatalf("handler stats %d/%d", enc.Reads, enc.Writes)
	}
}

func TestFrameworkAdaptivePollingParks(t *testing.T) {
	enc, _ := storfn.NewEncryptor(make([]byte, 32), storfn.DefaultEncryptorCosts())
	r := newUIFRig(t, 1, enc)
	var busyActive, busyIdle sim.Duration
	r.run(t, func(p *sim.Proc) {
		base, _, _ := r.v.Mem.AllocBuffer(512)
		snap := r.cpu.Snapshot()
		for i := 0; i < 10; i++ {
			w := nvme.NewRW(nvme.OpWrite, uint16(i), 1, uint64(i), 1, base, 0)
			r.submit(p, w)
		}
		busyActive = r.cpu.Since(snap).ByTag["uif"]
		// Idle for a long stretch: the poller must park after IdlePark.
		snap = r.cpu.Snapshot()
		p.Sleep(50 * sim.Millisecond)
		busyIdle = r.cpu.Since(snap).ByTag["uif"]
	})
	if busyActive == 0 {
		t.Fatal("UIF did no work")
	}
	// While idle the poller spins only IdlePark (50us) before sleeping.
	if busyIdle > 200*sim.Microsecond {
		t.Fatalf("UIF burned %v while idle; adaptive polling broken", busyIdle)
	}
}

// multiHandler records which VM each event came from.
type multiHandler struct{ events map[int]int }

func (m *multiHandler) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	m.events[req.Attachment().VMID()]++
	return false, nvme.SCSuccess
}

// VMID passthrough requires the attachment; check the single-process
// multi-VM claim: one framework, several attachments, all served.
func TestFrameworkServesMultipleVMs(t *testing.T) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 16)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, device.NullStore{})
	router := core.NewRouter(env, core.DefaultRouterCosts(), []*sim.Thread{cpu.ThreadOn(8, "router")})
	fw := uif.NewFramework(env, uif.DefaultCosts(), []*sim.Thread{cpu.ThreadOn(9, "uif")})
	h := &multiHandler{events: map[int]int{}}

	type ep struct {
		vc *core.Controller
		qp *nvme.QueuePair
	}
	var eps []ep
	parts := device.Carve(dev, 1, 3)
	for i := 0; i < 3; i++ {
		v := vm.New(env, i, cpu, i, 1, 16<<20, vm.DefaultVirtCosts())
		vc := router.Attach(v, parts[i])
		// Send everything to the notify path.
		prog, _ := storfn.EncryptorClassifier(parts[i])
		if err := vc.LoadClassifier(prog); err != nil {
			t.Fatal(err)
		}
		fw.Attach(vc.AttachUIF(32), h, nil)
		eps = append(eps, ep{vc: vc, qp: vc.CreateQP(32)})
	}
	ok := false
	env.Go("test", func(pr *sim.Proc) {
		defer env.Stop()
		for i, e := range eps {
			// Writes go to the UIF; it completes them via handler.
			base := uint64(0x4000)
			cmd := nvme.NewRW(nvme.OpWrite, uint16(i), 1, 0, 1, base, 0)
			if !e.qp.SQ.Push(&cmd) {
				t.Error("push failed")
				return
			}
			e.vc.Ring(e.qp.SQ.ID)
		}
		var e nvme.Completion
		got := 0
		for got < 3 {
			for _, ept := range eps {
				if ept.qp.CQ.Pop(&e) {
					got++
				}
			}
			pr.Sleep(5 * sim.Microsecond)
		}
		ok = true
	})
	env.RunUntil(sim.Time(10 * sim.Second))
	env.Close()
	if !ok {
		t.Fatal("did not finish")
	}
	if len(h.events) != 3 {
		t.Fatalf("handler saw VMs %v, want 3 distinct", h.events)
	}
}

func TestFrameworkLoC(t *testing.T) {
	n := uif.FrameworkLines()
	// The paper's framework is ~1100 lines of C++; ours should be of the
	// same order (a few hundred Go lines).
	if n < 150 || n > 2000 {
		t.Fatalf("framework line count %d implausible", n)
	}
}
