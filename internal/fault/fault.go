// Package fault is the deterministic fault-injection subsystem: it decides,
// per simulated command, whether a layer should experience a media error, a
// dropped completion, a stuck (delayed) completion, or — for the fabric — a
// scheduled link outage. Every decision comes from a seeded PRNG stream
// derived per injection site, so identical seeds and plans yield identical
// fault traces and every failure is reproducible in tests.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Kind enumerates the injectable fault kinds.
type Kind int

// Fault kinds.
const (
	// MediaReadError fails a read command with SCUnrecoveredRead.
	MediaReadError Kind = iota
	// MediaWriteError fails a write command with SCWriteFault.
	MediaWriteError
	// DropCompletion executes the command but never posts its completion
	// (a lost interrupt / lost CQE).
	DropCompletion
	// StuckCompletion delays the completion by the rule's Delay.
	StuckCompletion
	// UIFCrash kills the userspace I/O function's poll loop: the
	// attachment stops servicing its notify queues and all in-process
	// state is lost, as if the UIF process died.
	UIFCrash
	// UIFWedge stalls the poll loop for the rule's Delay (0 = forever):
	// the process is alive but makes no progress — a livelock, an
	// allocator stall, a runaway GC pause.
	UIFWedge
	// BitRot flips bits in stored data after a successful write: a later
	// read returns silently corrupted payload with an OK status.
	BitRot
	// TornWrite persists only a prefix of the write's payload (the power
	// failed mid-sector); the command still completes OK.
	TornWrite
	// MisdirectedWrite lands the payload at the wrong LBA, leaving the
	// addressed blocks stale and clobbering an unrelated range.
	MisdirectedWrite
	// LostWrite acknowledges the write without persisting anything.
	LostWrite
	numKinds
)

func (k Kind) String() string {
	switch k {
	case MediaReadError:
		return "media-read"
	case MediaWriteError:
		return "media-write"
	case DropCompletion:
		return "drop-completion"
	case StuckCompletion:
		return "stuck-completion"
	case UIFCrash:
		return "uif-crash"
	case UIFWedge:
		return "uif-wedge"
	case BitRot:
		return "bit-rot"
	case TornWrite:
		return "torn-write"
	case MisdirectedWrite:
		return "misdirected-write"
	case LostWrite:
		return "lost-write"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns every injectable fault kind, in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Class is the command class an injector is asked about.
type Class int

// Command classes.
const (
	ClassRead Class = iota
	ClassWrite
	ClassOther
)

// Rule is one probabilistic injection rule. Rules are evaluated in plan
// order on every eligible command; Limit caps how many times the rule fires
// at one injection site (0 = unlimited).
type Rule struct {
	Kind  Kind
	Rate  float64      // probability per eligible command, in [0,1]
	Limit int          // max firings per site (0 = unlimited)
	Delay sim.Duration // StuckCompletion hold time
}

func (r Rule) eligible(c Class) bool {
	switch r.Kind {
	case MediaReadError, BitRot:
		return c == ClassRead
	case MediaWriteError, TornWrite, MisdirectedWrite, LostWrite:
		return c == ClassWrite
	default:
		return c == ClassRead || c == ClassWrite || c == ClassOther
	}
}

// Outage is one scheduled fabric outage window.
type Outage struct {
	At  sim.Time
	Dur sim.Duration
}

// Plan is a reusable fault plan: a rule set plus scheduled link outages.
// A Plan is a template — per-site state (rule fire counts, PRNG streams)
// lives in the Injectors it hands out.
type Plan struct {
	Seed    int64
	rules   []Rule
	outages []Outage
}

// NewPlan creates an empty plan with the given seed.
func NewPlan(seed int64) *Plan { return &Plan{Seed: seed} }

// WithRule appends a rule and returns the plan for chaining. Invalid rules
// (Rate outside [0,1], negative Delay or Limit) panic here, at plan build
// time, instead of silently misbehaving at injection time.
func (p *Plan) WithRule(r Rule) *Plan {
	if err := r.Validate(); err != nil {
		panic("fault: " + err.Error())
	}
	p.rules = append(p.rules, r)
	return p
}

// Validate checks the rule's parameters for sanity.
func (r Rule) Validate() error {
	switch {
	case r.Rate < 0 || r.Rate > 1:
		return fmt.Errorf("rule %v: rate %v outside [0,1]", r.Kind, r.Rate)
	case r.Delay < 0:
		return fmt.Errorf("rule %v: negative delay %v", r.Kind, r.Delay)
	case r.Limit < 0:
		return fmt.Errorf("rule %v: negative limit %d", r.Kind, r.Limit)
	}
	return nil
}

// WithMediaErrors adds read and write media-error rules at the given rate.
func (p *Plan) WithMediaErrors(rate float64) *Plan {
	return p.WithRule(Rule{Kind: MediaReadError, Rate: rate}).
		WithRule(Rule{Kind: MediaWriteError, Rate: rate})
}

// WithDrops adds a dropped-completion rule.
func (p *Plan) WithDrops(rate float64, limit int) *Plan {
	return p.WithRule(Rule{Kind: DropCompletion, Rate: rate, Limit: limit})
}

// WithStuck adds a stuck-completion rule holding completions for delay.
func (p *Plan) WithStuck(rate float64, limit int, delay sim.Duration) *Plan {
	return p.WithRule(Rule{Kind: StuckCompletion, Rate: rate, Limit: limit, Delay: delay})
}

// WithUIFCrash adds a UIF poll-loop crash rule.
func (p *Plan) WithUIFCrash(rate float64, limit int) *Plan {
	return p.WithRule(Rule{Kind: UIFCrash, Rate: rate, Limit: limit})
}

// WithUIFWedge adds a UIF poll-loop stall rule holding the loop for delay
// (0 = wedged until killed).
func (p *Plan) WithUIFWedge(rate float64, limit int, delay sim.Duration) *Plan {
	return p.WithRule(Rule{Kind: UIFWedge, Rate: rate, Limit: limit, Delay: delay})
}

// WithBitRot adds a silent stored-data corruption rule on reads.
func (p *Plan) WithBitRot(rate float64, limit int) *Plan {
	return p.WithRule(Rule{Kind: BitRot, Rate: rate, Limit: limit})
}

// WithTornWrites adds a torn-write rule: only a prefix of the payload
// persists while the command completes OK.
func (p *Plan) WithTornWrites(rate float64, limit int) *Plan {
	return p.WithRule(Rule{Kind: TornWrite, Rate: rate, Limit: limit})
}

// WithMisdirectedWrites adds a misdirected-write rule: the payload lands at
// the wrong LBA and the addressed blocks stay stale.
func (p *Plan) WithMisdirectedWrites(rate float64, limit int) *Plan {
	return p.WithRule(Rule{Kind: MisdirectedWrite, Rate: rate, Limit: limit})
}

// WithLostWrites adds a lost-write rule: the write is acknowledged but
// nothing persists.
func (p *Plan) WithLostWrites(rate float64, limit int) *Plan {
	return p.WithRule(Rule{Kind: LostWrite, Rate: rate, Limit: limit})
}

// WithOutage schedules a link outage window.
func (p *Plan) WithOutage(at sim.Time, dur sim.Duration) *Plan {
	p.outages = append(p.outages, Outage{At: at, Dur: dur})
	return p
}

// Outages returns the scheduled outage windows.
func (p *Plan) Outages() []Outage { return p.outages }

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || (len(p.rules) == 0 && len(p.outages) == 0) }

// Injector derives the per-site injector for the named site. The PRNG
// stream depends only on (plan seed, site name), so the decision sequence
// at one site is independent of activity at every other site.
func (p *Plan) Injector(site string) *Injector {
	h := fnv.New64a()
	h.Write([]byte(site))
	seed := p.Seed ^ int64(h.Sum64())
	inj := &Injector{site: site, rng: rand.New(rand.NewSource(seed))}
	inj.rules = make([]ruleState, len(p.rules))
	for i, r := range p.rules {
		inj.rules[i] = ruleState{Rule: r}
	}
	return inj
}

type ruleState struct {
	Rule
	fired int
}

// Decision is the outcome of one injection query. The zero value means
// "no fault".
type Decision struct {
	Status     nvme.Status  // non-OK fails the command with this status
	Drop       bool         // suppress the completion entirely
	Delay      sim.Duration // hold the completion this long before posting
	Crash      bool         // kill the UIF poll loop (state lost)
	Wedge      bool         // stall the UIF poll loop
	WedgeFor   sim.Duration // stall duration (0 = until killed)
	Corrupt    Kind         // silent-corruption kind (valid when HasCorrupt)
	HasCorrupt bool         // a silent-corruption rule fired
}

// Faulty reports whether any fault was injected.
func (d Decision) Faulty() bool {
	return !d.Status.OK() || d.Drop || d.Delay > 0 || d.Crash || d.Wedge || d.HasCorrupt
}

// Injector is per-site fault state: rule fire counts, the site PRNG stream
// and injection counters. Methods on a nil Injector are no-ops, so layers
// can hold one unconditionally.
type Injector struct {
	site  string
	rng   *rand.Rand
	rules []ruleState

	// Stats
	Commands uint64           // decisions taken
	Injected [numKinds]uint64 // faults injected, by kind
}

// Site returns the injection-site name.
func (inj *Injector) Site() string {
	if inj == nil {
		return ""
	}
	return inj.site
}

// Decide evaluates the plan's rules for one command of class c. Every rule
// draws from the site stream in plan order (even after its limit is
// exhausted), keeping the stream alignment independent of firing history.
func (inj *Injector) Decide(c Class) Decision {
	var d Decision
	if inj == nil {
		return d
	}
	inj.Commands++
	for i := range inj.rules {
		r := &inj.rules[i]
		if !r.eligible(c) || r.Rate <= 0 {
			continue
		}
		hit := inj.rng.Float64() < r.Rate
		if !hit || (r.Limit > 0 && r.fired >= r.Limit) {
			continue
		}
		r.fired++
		inj.Injected[r.Kind]++
		switch r.Kind {
		case MediaReadError:
			if d.Status.OK() {
				d.Status = nvme.SCUnrecoveredRead
			}
		case MediaWriteError:
			if d.Status.OK() {
				d.Status = nvme.SCWriteFault
			}
		case DropCompletion:
			d.Drop = true
		case StuckCompletion:
			if r.Delay > d.Delay {
				d.Delay = r.Delay
			}
		case UIFCrash:
			d.Crash = true
		case UIFWedge:
			d.Wedge = true
			if r.Delay > d.WedgeFor {
				d.WedgeFor = r.Delay
			}
		case BitRot, TornWrite, MisdirectedWrite, LostWrite:
			// first corruption kind to fire wins; later draws still
			// advance the stream via the hit check above
			if !d.HasCorrupt {
				d.Corrupt = r.Kind
				d.HasCorrupt = true
			}
		}
	}
	return d
}

// InjectedTotal returns the total number of injected faults.
func (inj *Injector) InjectedTotal() uint64 {
	if inj == nil {
		return 0
	}
	var n uint64
	for _, v := range inj.Injected {
		n += v
	}
	return n
}

// Counters renders the injector's counts as a stable, sorted string — the
// comparison unit for fault-trace determinism tests.
func (inj *Injector) Counters() string {
	if inj == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("site=%s commands=%d", inj.site, inj.Commands)}
	var kinds []string
	for k := Kind(0); k < numKinds; k++ {
		if inj.Injected[k] > 0 {
			kinds = append(kinds, fmt.Sprintf("%v=%d", k, inj.Injected[k]))
		}
	}
	sort.Strings(kinds)
	return strings.Join(append(parts, kinds...), " ")
}

// Collect exports the per-kind fire counts as counters under the
// "fault.<site>." prefix — the machine-readable sibling of Counters().
// Every kind is emitted (zeros included) so the schema, and therefore
// CounterSet ordering, is identical across runs and plans.
func (inj *Injector) Collect(cs *metrics.CounterSet) {
	if inj == nil {
		return
	}
	cs.Add("fault."+inj.site+".commands", inj.Commands)
	for k := Kind(0); k < numKinds; k++ {
		cs.Add(fmt.Sprintf("fault.%s.%v", inj.site, k), inj.Injected[k])
	}
}
