package fault_test

import (
	"strings"
	"testing"

	"nvmetro/internal/fault"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Two injectors derived from the same plan at the same site must produce
// the identical decision sequence — the subsystem's core guarantee.
func TestSameSiteSameDecisions(t *testing.T) {
	mk := func() *fault.Injector {
		return fault.NewPlan(42).
			WithMediaErrors(0.1).
			WithDrops(0.05, 3).
			WithStuck(0.05, 0, sim.Millisecond).
			Injector("device")
	}
	a, b := mk(), mk()
	classes := []fault.Class{fault.ClassRead, fault.ClassWrite, fault.ClassOther}
	for i := 0; i < 10000; i++ {
		c := classes[i%len(classes)]
		da, db := a.Decide(c), b.Decide(c)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("counters diverged:\n%s\n%s", a.Counters(), b.Counters())
	}
	if a.InjectedTotal() == 0 {
		t.Fatal("expected some injections at 10% over 10k commands")
	}
}

// Streams at different sites must be independent (different sequences).
func TestSitesIndependent(t *testing.T) {
	p := fault.NewPlan(7).WithMediaErrors(0.5)
	a, b := p.Injector("device"), p.Injector("remote-device")
	same := true
	for i := 0; i < 200; i++ {
		if a.Decide(fault.ClassRead) != b.Decide(fault.ClassRead) {
			same = false
		}
	}
	if same {
		t.Fatal("two sites produced identical 200-decision sequences")
	}
}

func TestRateZeroAndOne(t *testing.T) {
	inj := fault.NewPlan(1).WithMediaErrors(0).Injector("d")
	for i := 0; i < 100; i++ {
		if inj.Decide(fault.ClassRead).Faulty() {
			t.Fatal("rate 0 injected a fault")
		}
	}
	inj = fault.NewPlan(1).WithMediaErrors(1).Injector("d")
	if d := inj.Decide(fault.ClassRead); d.Status != nvme.SCUnrecoveredRead {
		t.Fatalf("read at rate 1: %+v", d)
	}
	if d := inj.Decide(fault.ClassWrite); d.Status != nvme.SCWriteFault {
		t.Fatalf("write at rate 1: %+v", d)
	}
	if d := inj.Decide(fault.ClassOther); d.Faulty() {
		t.Fatalf("media rules must not hit ClassOther: %+v", d)
	}
}

func TestRuleLimit(t *testing.T) {
	inj := fault.NewPlan(1).WithDrops(1, 2).Injector("d")
	drops := 0
	for i := 0; i < 50; i++ {
		if inj.Decide(fault.ClassWrite).Drop {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("limit 2, got %d drops", drops)
	}
}

// Exhausted rules must keep drawing from the stream so later rules see the
// same draws regardless of firing history: two plans differing only in an
// earlier rule's limit agree on the later rule's decisions.
func TestStreamAlignmentAcrossLimits(t *testing.T) {
	seq := func(limit int) []bool {
		inj := fault.NewPlan(3).
			WithDrops(0.5, limit).
			WithStuck(0.3, 0, sim.Millisecond).
			Injector("d")
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, inj.Decide(fault.ClassWrite).Delay > 0)
		}
		return out
	}
	a, b := seq(1), seq(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stuck decisions diverged at %d when drop limit changed", i)
		}
	}
}

func TestStuckDelayAndOutages(t *testing.T) {
	p := fault.NewPlan(1).
		WithStuck(1, 0, 5*sim.Millisecond).
		WithOutage(sim.Time(10*sim.Millisecond), 2*sim.Millisecond)
	if d := p.Injector("d").Decide(fault.ClassRead); d.Delay != 5*sim.Millisecond {
		t.Fatalf("delay: %+v", d)
	}
	if n := len(p.Outages()); n != 1 {
		t.Fatalf("outages: %d", n)
	}
	if p.Empty() {
		t.Fatal("plan with rules reported empty")
	}
}

// Every kind must have a distinct human-readable name: a future numKinds
// bump can't ship an unnamed kind, because the fallback formatting is
// "Kind(N)" and that fails this round trip.
func TestKindStringRoundTrip(t *testing.T) {
	seen := map[string]fault.Kind{}
	for _, k := range fault.Kinds() {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name: %q", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	// The set must cover the kinds this PR ships with; growing is fine,
	// shrinking means a kind was deleted without updating this test.
	if len(fault.Kinds()) < 10 {
		t.Fatalf("expected >= 10 kinds, got %d", len(fault.Kinds()))
	}
	if !strings.HasPrefix(fault.Kind(len(fault.Kinds())).String(), "Kind(") {
		t.Error("out-of-range kind should format as Kind(N)")
	}
}

// WithRule must reject malformed rules at plan-build time.
func TestWithRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule fault.Rule
		ok   bool
	}{
		{"valid", fault.Rule{Kind: fault.DropCompletion, Rate: 0.5}, true},
		{"rate zero", fault.Rule{Kind: fault.BitRot, Rate: 0}, true},
		{"rate one", fault.Rule{Kind: fault.LostWrite, Rate: 1}, true},
		{"rate negative", fault.Rule{Kind: fault.BitRot, Rate: -0.1}, false},
		{"rate above one", fault.Rule{Kind: fault.TornWrite, Rate: 1.1}, false},
		{"negative delay", fault.Rule{Kind: fault.StuckCompletion, Rate: 0.5, Delay: -sim.Millisecond}, false},
		{"negative limit", fault.Rule{Kind: fault.DropCompletion, Rate: 0.5, Limit: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if gotErr := tc.rule.Validate() != nil; gotErr == tc.ok {
				t.Fatalf("Validate() error=%v, want ok=%v", gotErr, tc.ok)
			}
			defer func() {
				if r := recover(); (r == nil) != tc.ok {
					t.Fatalf("WithRule panic=%v, want ok=%v", r, tc.ok)
				}
			}()
			fault.NewPlan(1).WithRule(tc.rule)
		})
	}
}

// Corruption kinds are class-gated: BitRot on reads, the write corruptions
// on writes, and the decision carries the kind for the store layer.
func TestCorruptionKinds(t *testing.T) {
	for _, k := range []fault.Kind{fault.TornWrite, fault.MisdirectedWrite, fault.LostWrite} {
		inj := fault.NewPlan(1).WithRule(fault.Rule{Kind: k, Rate: 1}).Injector("d")
		if d := inj.Decide(fault.ClassWrite); !d.HasCorrupt || d.Corrupt != k {
			t.Fatalf("%v on write: %+v", k, d)
		}
		if d := inj.Decide(fault.ClassRead); d.Faulty() {
			t.Fatalf("%v must not hit reads: %+v", k, d)
		}
	}
	inj := fault.NewPlan(1).WithBitRot(1, 0).Injector("d")
	if d := inj.Decide(fault.ClassRead); !d.HasCorrupt || d.Corrupt != fault.BitRot {
		t.Fatalf("bit-rot on read: %+v", d)
	}
	if d := inj.Decide(fault.ClassWrite); d.Faulty() {
		t.Fatalf("bit-rot must not hit writes: %+v", d)
	}
}

// A nil injector must be a total no-op.
func TestNilInjector(t *testing.T) {
	var inj *fault.Injector
	if inj.Decide(fault.ClassRead).Faulty() || inj.InjectedTotal() != 0 || inj.Counters() != "" || inj.Site() != "" {
		t.Fatal("nil injector not inert")
	}
}
