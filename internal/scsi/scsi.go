// Package scsi implements the subset of the SCSI command set used by the
// virtio-scsi/vhost-scsi baseline: CDB encoding and decoding for READ/WRITE
// (10/16), SYNCHRONIZE CACHE, UNMAP, INQUIRY and READ CAPACITY, plus sense
// status values. The point of modeling SCSI at all is fidelity to the
// paper's observation that the vhost-scsi stack pays a protocol translation
// tax on every request.
package scsi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Opcodes.
const (
	OpTestUnitReady  uint8 = 0x00
	OpInquiry        uint8 = 0x12
	OpReadCapacity10 uint8 = 0x25
	OpRead10         uint8 = 0x28
	OpWrite10        uint8 = 0x2a
	OpSyncCache10    uint8 = 0x35
	OpUnmap          uint8 = 0x42
	OpRead16         uint8 = 0x88
	OpWrite16        uint8 = 0x8a
	OpReadCapacity16 uint8 = 0x9e
)

// Status codes.
const (
	StatusGood           uint8 = 0x00
	StatusCheckCondition uint8 = 0x02
	StatusBusy           uint8 = 0x08
)

// CDB is a SCSI command descriptor block (6, 10 or 16 bytes).
type CDB []byte

// ErrBadCDB reports a malformed CDB.
var ErrBadCDB = errors.New("scsi: malformed CDB")

// Read16 builds a READ(16) CDB.
func Read16(lba uint64, blocks uint32) CDB {
	cdb := make(CDB, 16)
	cdb[0] = OpRead16
	binary.BigEndian.PutUint64(cdb[2:10], lba)
	binary.BigEndian.PutUint32(cdb[10:14], blocks)
	return cdb
}

// Write16 builds a WRITE(16) CDB.
func Write16(lba uint64, blocks uint32) CDB {
	cdb := make(CDB, 16)
	cdb[0] = OpWrite16
	binary.BigEndian.PutUint64(cdb[2:10], lba)
	binary.BigEndian.PutUint32(cdb[10:14], blocks)
	return cdb
}

// SyncCache builds a SYNCHRONIZE CACHE(10) CDB.
func SyncCache() CDB {
	cdb := make(CDB, 10)
	cdb[0] = OpSyncCache10
	return cdb
}

// Unmap builds an UNMAP CDB (the block range travels in the data-out
// buffer; this model carries it in the CDB's param fields for brevity).
func Unmap(lba uint64, blocks uint32) CDB {
	cdb := make(CDB, 16)
	cdb[0] = OpUnmap
	binary.BigEndian.PutUint64(cdb[2:10], lba)
	binary.BigEndian.PutUint32(cdb[10:14], blocks)
	return cdb
}

// Cmd is a decoded SCSI command.
type Cmd struct {
	Op     uint8
	LBA    uint64
	Blocks uint32
}

// IsRead reports whether the command reads data.
func (c Cmd) IsRead() bool { return c.Op == OpRead10 || c.Op == OpRead16 }

// IsWrite reports whether the command writes data.
func (c Cmd) IsWrite() bool { return c.Op == OpWrite10 || c.Op == OpWrite16 }

func (c Cmd) String() string {
	return fmt.Sprintf("scsi{op=%#02x lba=%d blocks=%d}", c.Op, c.LBA, c.Blocks)
}

// Decode parses a CDB.
func Decode(cdb CDB) (Cmd, error) {
	if len(cdb) == 0 {
		return Cmd{}, ErrBadCDB
	}
	switch cdb[0] {
	case OpRead10, OpWrite10:
		if len(cdb) < 10 {
			return Cmd{}, ErrBadCDB
		}
		return Cmd{
			Op:     cdb[0],
			LBA:    uint64(binary.BigEndian.Uint32(cdb[2:6])),
			Blocks: uint32(binary.BigEndian.Uint16(cdb[7:9])),
		}, nil
	case OpRead16, OpWrite16, OpUnmap:
		if len(cdb) < 16 {
			return Cmd{}, ErrBadCDB
		}
		return Cmd{
			Op:     cdb[0],
			LBA:    binary.BigEndian.Uint64(cdb[2:10]),
			Blocks: binary.BigEndian.Uint32(cdb[10:14]),
		}, nil
	case OpSyncCache10, OpTestUnitReady, OpInquiry, OpReadCapacity10, OpReadCapacity16:
		return Cmd{Op: cdb[0]}, nil
	}
	return Cmd{}, fmt.Errorf("%w: opcode %#02x", ErrBadCDB, cdb[0])
}
