package scsi

import (
	"testing"
	"testing/quick"
)

func TestRead16RoundTrip(t *testing.T) {
	cdb := Read16(0x123456789ab, 77)
	cmd, err := Decode(cdb)
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.IsRead() || cmd.IsWrite() || cmd.LBA != 0x123456789ab || cmd.Blocks != 77 {
		t.Fatalf("%+v", cmd)
	}
}

func TestWrite16RoundTrip(t *testing.T) {
	cmd, err := Decode(Write16(42, 8))
	if err != nil || !cmd.IsWrite() || cmd.LBA != 42 || cmd.Blocks != 8 {
		t.Fatalf("%+v %v", cmd, err)
	}
}

func TestServiceCommands(t *testing.T) {
	if cmd, err := Decode(SyncCache()); err != nil || cmd.Op != OpSyncCache10 {
		t.Fatalf("sync: %+v %v", cmd, err)
	}
	if cmd, err := Decode(Unmap(100, 50)); err != nil || cmd.Op != OpUnmap || cmd.LBA != 100 || cmd.Blocks != 50 {
		t.Fatalf("unmap: %+v %v", cmd, err)
	}
}

func TestDecodeRead10(t *testing.T) {
	cdb := make(CDB, 10)
	cdb[0] = OpRead10
	cdb[2], cdb[3], cdb[4], cdb[5] = 0, 0, 0x10, 0x00 // LBA 4096
	cdb[7], cdb[8] = 0, 16
	cmd, err := Decode(cdb)
	if err != nil || cmd.LBA != 4096 || cmd.Blocks != 16 || !cmd.IsRead() {
		t.Fatalf("%+v %v", cmd, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil CDB accepted")
	}
	if _, err := Decode(CDB{0xff}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if _, err := Decode(CDB{OpRead16, 0, 0}); err == nil {
		t.Fatal("truncated CDB accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(lba uint64, blocks uint32, write bool) bool {
		var cdb CDB
		if write {
			cdb = Write16(lba, blocks)
		} else {
			cdb = Read16(lba, blocks)
		}
		cmd, err := Decode(cdb)
		return err == nil && cmd.LBA == lba && cmd.Blocks == blocks && cmd.IsWrite() == write
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
