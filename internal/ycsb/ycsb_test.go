package ycsb

import (
	"math/rand"
	"testing"
)

func TestZipfSkewAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := newZipf(rng, 1000)
	counts := make(map[int]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.next()
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Zipf(0.99): the hottest key should take a few percent of all draws,
	// far above uniform (0.1%).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/draws < 0.01 {
		t.Fatalf("hottest key only %.4f of draws; not zipfian", float64(max)/draws)
	}
	// But the tail must still be covered.
	if len(counts) < 400 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := newZipf(rand.New(rand.NewSource(5)), 100)
	b := newZipf(rand.New(rand.NewSource(5)), 100)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("zipf not deterministic for equal seeds")
		}
	}
}

func TestKeyFormat(t *testing.T) {
	if key(0) != "user000000000000" || key(123456) != "user000000123456" {
		t.Fatalf("key format %q %q", key(0), key(123456))
	}
	// Keys sort in insertion order (needed by workload D's "latest").
	if !(key(1) < key(2) && key(99) < key(100)) {
		t.Fatal("keys must sort numerically")
	}
}

func TestWorkloadList(t *testing.T) {
	ws := All()
	if len(ws) != 6 || ws[0] != WorkloadA || ws[5] != WorkloadF {
		t.Fatalf("workloads %v", ws)
	}
	if WorkloadC.String() != "C" {
		t.Fatal("stringer")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Records <= 0 || cfg.FieldLength <= 0 || cfg.MaxScanLen <= 0 {
		t.Fatalf("%+v", cfg)
	}
}
