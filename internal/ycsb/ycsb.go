// Package ycsb reproduces the YCSB benchmark suite's six core workloads
// (Cooper et al., SoCC'10) against the LSM store: zipfian and latest
// request distributions, read/update/insert/scan/read-modify-write mixes,
// and a load phase, with per-operation throughput accounting over a
// measurement window.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"

	"nvmetro/internal/lsm"
	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
)

// Workload identifies one of the six core workloads.
type Workload byte

// The YCSB core workloads.
const (
	WorkloadA Workload = 'A' // 50% read / 50% update, zipfian
	WorkloadB Workload = 'B' // 95% read / 5% update, zipfian
	WorkloadC Workload = 'C' // 100% read, zipfian
	WorkloadD Workload = 'D' // 95% read latest / 5% insert
	WorkloadE Workload = 'E' // 95% scan / 5% insert
	WorkloadF Workload = 'F' // 50% read / 50% read-modify-write, zipfian
)

func (w Workload) String() string { return string(w) }

// All lists the workloads in evaluation order.
func All() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}
}

// Config scales the benchmark.
type Config struct {
	Records     int // loaded dataset size per DB instance
	FieldLength int // value bytes per record
	MaxScanLen  int
	Warmup      sim.Duration
	Duration    sim.Duration
	Seed        int64
}

// DefaultConfig returns the scaled-down dataset used by the harness
// (the paper uses 3M records and 1M operations on real hardware; the
// simulated runs keep the same access distributions at reduced scale).
func DefaultConfig() Config {
	return Config{
		Records:     8000,
		FieldLength: 1000,
		MaxScanLen:  50,
		Warmup:      5 * sim.Millisecond,
		Duration:    60 * sim.Millisecond,
	}
}

// key formats record i as a YCSB-style key.
func key(i int) string { return fmt.Sprintf("user%012d", i) }

// zipf is the standard YCSB scrambled-zipfian generator over [0, n).
type zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func newZipf(rng *rand.Rand, n int) *zipf {
	const theta = 0.99
	z := &zipf{n: n, theta: theta, rng: rng}
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zetaStatic(2, theta)/z.zetan)
	return z
}

func zetaStatic(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipf) next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	// Scramble so hot keys spread over the keyspace (YCSB's hash).
	return int(uint64(idx)*2654435761) % z.n
}

// Client runs one YCSB job against one DB instance.
type Client struct {
	db   *lsm.DB
	cfg  Config
	rng  *rand.Rand
	zip  *zipf
	next int // insert cursor (workloads D/E)

	Ops    metrics.Counter
	Failed metrics.Counter
}

// NewClient wraps a DB.
func NewClient(db *lsm.DB, cfg Config, seed int64) *Client {
	rng := rand.New(rand.NewSource(seed))
	return &Client{db: db, cfg: cfg, rng: rng, zip: newZipf(rng, cfg.Records), next: cfg.Records}
}

// Load populates the dataset (the YCSB load phase).
func (c *Client) Load(p *sim.Proc) error {
	val := make([]byte, c.cfg.FieldLength)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < c.cfg.Records; i++ {
		if err := c.db.Put(p, key(i), val); err != nil {
			return fmt.Errorf("load %d: %w", i, err)
		}
	}
	return c.db.Flush(p)
}

func (c *Client) value() []byte {
	val := make([]byte, c.cfg.FieldLength)
	c.rng.Read(val)
	return val
}

// RunOne executes a single operation of workload w.
func (c *Client) RunOne(p *sim.Proc, w Workload) error {
	pick := c.rng.Intn(100)
	switch w {
	case WorkloadA:
		if pick < 50 {
			return c.read(p)
		}
		return c.update(p)
	case WorkloadB:
		if pick < 95 {
			return c.read(p)
		}
		return c.update(p)
	case WorkloadC:
		return c.read(p)
	case WorkloadD:
		if pick < 95 {
			return c.readLatest(p)
		}
		return c.insert(p)
	case WorkloadE:
		if pick < 95 {
			return c.scan(p)
		}
		return c.insert(p)
	default: // F
		if pick < 50 {
			return c.read(p)
		}
		return c.rmw(p)
	}
}

func (c *Client) read(p *sim.Proc) error {
	_, err := c.db.Get(p, key(c.zip.next()))
	if err == lsm.ErrNotFound {
		return nil // uninserted scrambled key: counted as an op, like YCSB
	}
	return err
}

func (c *Client) readLatest(p *sim.Proc) error {
	// Skew toward the most recent inserts.
	back := c.zip.next() % c.cfg.Records
	idx := c.next - 1 - back
	if idx < 0 {
		idx = 0
	}
	_, err := c.db.Get(p, key(idx))
	if err == lsm.ErrNotFound {
		return nil
	}
	return err
}

func (c *Client) update(p *sim.Proc) error {
	return c.db.Put(p, key(c.zip.next()), c.value())
}

func (c *Client) insert(p *sim.Proc) error {
	k := key(c.next)
	c.next++
	return c.db.Put(p, k, c.value())
}

func (c *Client) scan(p *sim.Proc) error {
	n := 1 + c.rng.Intn(c.cfg.MaxScanLen)
	_, err := c.db.Scan(p, key(c.zip.next()), n)
	return err
}

func (c *Client) rmw(p *sim.Proc) error {
	k := key(c.zip.next())
	if _, err := c.db.Get(p, k); err != nil && err != lsm.ErrNotFound {
		return err
	}
	return c.db.Put(p, k, c.value())
}

// Run executes workload w until the deadline, counting ops completed inside
// the measurement window.
func (c *Client) Run(p *sim.Proc, w Workload, measFrom, measTo sim.Time) error {
	for p.Now() < measTo {
		if err := c.RunOne(p, w); err != nil {
			c.Failed.Inc()
			return err
		}
		if t := p.Now(); t > measFrom && t <= measTo {
			c.Ops.Inc()
		}
	}
	return nil
}
