package storfn

import (
	_ "embed"
	"strings"
)

// Source code of the storage functions, embedded for Table I (the paper
// reports implementation sizes as evidence of the framework's ease of use).

//go:embed encryptor.go
var encryptorGoSrc string

//go:embed replicator.go
var replicatorGoSrc string

//go:embed cachefn.go
var cachefnGoSrc string

// countLines counts non-empty source lines.
func countLines(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// LineCounts reports implementation sizes for Table I. Classifier sizes are
// assembly lines; UIF sizes are Go lines of the respective files. The SGX
// UIF shares encryptor.go; its SGX-specific portion is the SGXEncryptor
// half of the file plus the enclave runtime.
func LineCounts() map[string]int {
	srcs := ClassifierSources()
	plain, sgx := splitEncryptorSource()
	return map[string]int{
		"encryptor-classifier":  countLines(srcs["encryptor"]),
		"replicator-classifier": countLines(srcs["replicator"]),
		"partition-classifier":  countLines(srcs["partition"]),
		"cache-classifier":      countLines(srcs["cache"]),
		"encryptor-uif":         plain,
		"sgx-uif":               sgx,
		"replicator-uif":        countLines(replicatorGoSrc),
		"cache-uif":             cacherUIFSource(),
	}
}

// cacherUIFSource counts cachefn.go's UIF portion (the Go code past the
// embedded classifier assembly and its parameter plumbing).
func cacherUIFSource() int {
	idx := strings.Index(cachefnGoSrc, "// Cacher is the host-cache UIF")
	if idx < 0 {
		return countLines(cachefnGoSrc)
	}
	return countLines(cachefnGoSrc[idx:])
}

// splitEncryptorSource splits encryptor.go at the SGX variant boundary.
func splitEncryptorSource() (plain, sgx int) {
	idx := strings.Index(encryptorGoSrc, "// SGXEncryptor")
	if idx < 0 {
		return countLines(encryptorGoSrc), 0
	}
	return countLines(encryptorGoSrc[:idx]), countLines(encryptorGoSrc[idx:])
}
