package storfn

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/cache"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
)

// cacheSrc is the host-cache classifier: every read bumps its LBA bucket's
// access count in the heat map, and once a bucket crosses the hot threshold
// its reads are steered to the notify path where the cache UIF serves hits
// from host memory and fills on miss. Cold reads stay on the fast path —
// the device is already the cheapest way to serve data nobody re-reads.
// Writes always go to the UIF so they pass through the cache's invalidation
// window; without that, a fast-path write could race an in-flight fill and
// leave stale data resident.
const cacheSrc = `
; cache classifier: hot reads and all writes to the cache UIF
	mov   r9, r1            ; r9 = ctx
	mov   r2, 0
	stxw  [r10-4], r2       ; key = 0
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]        ; partition start
	ldxdw r7, [r0+8]        ; partition blocks
	ldxb  r3, [r9+32]       ; opcode
	jeq   r3, 0, passthru   ; flush: no LBA
	ldxdw r4, [r9+72]       ; slba
	ldxw  r5, [r9+80]
	and   r5, 0xffff
	add   r5, 1
	add   r5, r4
	jgt   r5, r7, oob
	add   r4, r6
	stxdw [r9+72], r4       ; direct mediation: rewrite the LBA
	jeq   r3, 1, to_uif     ; writes: invalidation window lives in the UIF
	jne   r3, 2, passthru   ; admin etc.: fast path
; --- read: heat accounting on the translated LBA ---
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, cache
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r5, [r0+0]        ; bucket shift
	ldxdw r6, [r0+8]        ; hot threshold (r6 survives helper calls)
	ldxdw r4, [r9+72]       ; translated slba (r4 was clobbered by the call)
	rsh   r4, r5            ; bucket number
	stxdw [r10-16], r4      ; heat key
	ldmap r1, heat
	mov   r2, r10
	add   r2, -16
	call  map_lookup_elem
	jeq   r0, 0, cold_first
	ldxdw r3, [r0+0]
	add   r3, 1
	stxdw [r0+0], r3        ; bump the bucket in place
	jlt   r3, r6, passthru  ; still cold
to_uif:
	mov   r0, 0x820000      ; SEND_NQ | WILL_COMPLETE_NQ
	exit
cold_first:
	mov   r3, 1
	stxdw [r10-24], r3
	ldmap r1, heat
	mov   r2, r10
	add   r2, -16
	mov   r3, r10
	add   r3, -24
	mov   r4, 0
	call  map_update_elem   ; full map: bucket stays untracked (cold)
passthru:
	mov   r0, 0x410000      ; SEND_HQ | WILL_COMPLETE_HQ
	exit
oob:
	mov   r0, 0x2000080     ; COMPLETE | LBAOutOfRange
	exit
internal:
	mov   r0, 0x2000006     ; COMPLETE | InternalError
	exit
`

// CacheParams configures the cache storage function.
type CacheParams struct {
	// CopyRate models guest-memory copies on the UIF (bytes/sec).
	CopyRate float64
	// HotThreshold is the bucket access count at which reads divert to the
	// cache UIF; the first HotThreshold-1 reads of a bucket stay fast-path.
	HotThreshold uint64
	// MaxBuckets bounds the classifier heat map.
	MaxBuckets int
	// BucketShift is log2 blocks per heat bucket.
	BucketShift uint8
	// Cache sizes the host cache itself; BlockSize is overridden with the
	// device block size at attach time.
	Cache cache.Config
}

// DefaultCacheParams returns the calibrated cache function: 8-block heat
// buckets going hot on the second access, and a 16 MiB ARC write-through
// cache.
func DefaultCacheParams() CacheParams {
	return CacheParams{
		CopyRate:     10e9,
		HotThreshold: 2,
		MaxBuckets:   1 << 16,
		BucketShift:  3,
		Cache:        cache.DefaultConfig(),
	}
}

// CacheClassifier returns the host-cache classifier for the partition with
// its heat map taken from hints. The partition config map is returned for
// live updates, as with the other classifiers.
func CacheClassifier(part device.Partition, hints *core.HotHints, hotThreshold uint64) (*ebpf.Program, *ebpf.ArrayMap) {
	cfg := core.NewPartitionConfigMap(part)
	ccfg := ebpf.NewArrayMap(16, 1)
	ccfg.SetU64(0, 0, uint64(hints.BucketShift()))
	ccfg.SetU64(0, 8, hotThreshold)
	prog := ebpf.MustAssemble(cacheSrc, "cache",
		map[string]ebpf.Map{"cfg": cfg, "cache": ccfg, "heat": hints.Map()}, nil)
	return prog, cfg
}

// Cacher is the host-cache UIF: hot reads hit host memory and complete
// without touching the device; misses open a fill window, read the backend
// through io_uring and install the data; writes open a write window around
// the backend write so an in-flight fill can never resurrect stale data.
type Cacher struct {
	env   *sim.Env
	cache *cache.Cache
	hints *core.HotHints

	// CopyRate models guest-memory copies (bytes/sec).
	CopyRate float64

	// Guard, when set, verifies protection info at the cache's two trust
	// boundaries: a hit is never served from a cached copy that fails
	// verification (it is invalidated and refilled), and a fill is never
	// committed from backing data that fails verification.
	Guard BlockVerifier

	// Per-path UIF service latency (request arrival at the UIF to guest
	// completion, ns): hits, miss fills and writes.
	HitLat, FillLat, WriteLat *metrics.Histogram

	// Stats (request granularity; the cache's own counters are per block).
	ReqHits, ReqFills, ReqWrites, FillErrors uint64
	GuardErrors                              uint64 // failed verifications at either boundary
}

// NewCacher builds the UIF around a cache sized by p. Evictions feed back
// into the classifier heat map: once nothing from a heat bucket is resident
// anymore, the bucket is forgotten so the cooled region's reads re-qualify
// for the fast path instead of missing through the UIF forever.
func NewCacher(env *sim.Env, p CacheParams) *Cacher {
	c := &Cacher{
		env:      env,
		hints:    core.NewHotHints(p.BucketShift, p.MaxBuckets),
		CopyRate: p.CopyRate,
		HitLat:   metrics.NewHistogram(),
		FillLat:  metrics.NewHistogram(),
		WriteLat: metrics.NewHistogram(),
	}
	userEvict := p.Cache.OnEvict
	p.Cache.OnEvict = func(lba uint64) {
		c.forgetEvicted(lba)
		if userEvict != nil {
			userEvict(lba)
		}
	}
	c.cache = cache.New(p.Cache)
	return c
}

// forgetEvicted drops an evicted block's heat bucket once no block of the
// bucket is resident, ending the bucket's notify-path diversion. Runs from
// the cache's OnEvict hook, outside all cache locks.
func (c *Cacher) forgetEvicted(lba uint64) {
	shift := c.hints.BucketShift()
	base := c.hints.Bucket(lba) << shift
	for b := uint64(0); b < uint64(1)<<shift; b++ {
		if c.cache.Contains(base+b, 1) {
			return
		}
	}
	c.hints.Forget(lba)
}

// Cache exposes the underlying host cache (stats, invalidation hooks).
func (c *Cacher) Cache() *cache.Cache { return c.cache }

// Hints exposes the classifier heat map wrapper.
func (c *Cacher) Hints() *core.HotHints { return c.hints }

func (c *Cacher) copyCost(n int) sim.Duration {
	return sim.Duration(float64(n) / c.CopyRate * 1e9)
}

// Work implements uif.Handler.
func (c *Cacher) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	lba, blocks := req.Cmd.SLBA(), uint64(req.Cmd.Blocks())
	n := int(req.NBytes())
	start := c.env.Now()
	switch req.Cmd.Opcode() {
	case nvme.OpRead:
		buf := make([]byte, n)
		if c.cache.Read(lba, blocks, buf) {
			if c.Guard == nil || c.Guard.Verify(lba, buf) {
				th.Exec(p, c.copyCost(n))
				if err := req.WriteData(buf); err != nil {
					return false, nvme.SCDataXferError
				}
				c.ReqHits++
				c.HitLat.Record(int64(c.env.Now() - start))
				return false, nvme.SCSuccess
			}
			// The cached copy fails verification: drop it and refill
			// from the backing store instead of serving it.
			c.GuardErrors++
			c.cache.Invalidate(lba, blocks)
		}
		fill := c.cache.BeginFill(lba, blocks)
		req.SubmitBackendReadThen(p, th, buf, func(p *sim.Proc, th *sim.Thread, st nvme.Status) {
			if !st.OK() {
				c.cache.AbortFill(fill)
				c.FillErrors++
				req.CompleteAsync(st)
				return
			}
			if c.Guard != nil && !c.Guard.Verify(lba, buf) {
				c.GuardErrors++
				c.cache.AbortFill(fill)
				req.CompleteAsync(nvme.SCGuardCheck)
				return
			}
			th.Exec(p, c.copyCost(n))
			if err := req.WriteData(buf); err != nil {
				c.cache.AbortFill(fill)
				req.CompleteAsync(nvme.SCDataXferError)
				return
			}
			c.cache.CommitFill(fill, buf)
			c.ReqFills++
			c.FillLat.Record(int64(c.env.Now() - start))
			req.CompleteAsync(nvme.SCSuccess)
		})
		return true, 0
	case nvme.OpWrite:
		buf := make([]byte, n)
		if err := req.ReadData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		if c.Guard != nil && !c.Guard.Verify(lba, buf) {
			c.GuardErrors++
			return false, nvme.SCGuardCheck
		}
		th.Exec(p, c.copyCost(n))
		w := c.cache.BeginWrite(lba, blocks)
		req.SubmitBackendWriteThen(p, th, buf, func(p *sim.Proc, th *sim.Thread, st nvme.Status) {
			if st.OK() {
				c.cache.EndWrite(w, buf)
			} else {
				c.cache.EndWrite(w, nil)
			}
			c.ReqWrites++
			c.WriteLat.Record(int64(c.env.Now() - start))
			req.CompleteAsync(st)
		})
		return true, 0
	default:
		return false, nvme.SCInvalidOpcode
	}
}

// Collect folds the UIF's and the cache's counters into cs.
func (c *Cacher) Collect(cs *metrics.CounterSet) {
	cs.Add("cacher.req_hits", c.ReqHits)
	cs.Add("cacher.req_fills", c.ReqFills)
	cs.Add("cacher.req_writes", c.ReqWrites)
	cs.Add("cacher.fill_errors", c.FillErrors)
	c.cache.Collect(cs)
}

// CachedReplicator combines the host cache with live disk replication: hot
// reads are served from the cache (filled from the local primary), writes
// run both mirror legs from the UIF — the primary through the host block
// layer, the secondary through the attachment's NVMe-oF ring — inside one
// cache write window. The guest sees the primary's status; a failing
// secondary degrades the mirror exactly as in the plain Replicator. Resync
// traffic only ever writes the secondary, so it cannot touch cached (=
// primary) contents: a resync copy can never resurrect stale cached data.
type CachedReplicator struct {
	*Replicator
	Primary blockdev.BlockDevice
	Cache   *cache.Cache

	// Stats
	ReqHits, ReqFills uint64
	PrimaryErrors     uint64 // failed primary-leg writes (guest sees them)
}

// NewCachedReplicator builds the combined UIF. primary is the local mirror
// leg; the secondary is reached through the uif attachment's ring.
func NewCachedReplicator(primary blockdev.BlockDevice, c cache.Config) *CachedReplicator {
	return &CachedReplicator{
		Replicator: NewReplicator(),
		Primary:    primary,
		Cache:      cache.New(c),
	}
}

func (c *CachedReplicator) copyCost(n int) sim.Duration {
	return sim.Duration(float64(n) / c.CopyRate * 1e9)
}

// Work implements uif.Handler.
func (c *CachedReplicator) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	lba, blocks := req.Cmd.SLBA(), uint64(req.Cmd.Blocks())
	n := int(req.NBytes())
	switch req.Cmd.Opcode() {
	case nvme.OpRead:
		buf := make([]byte, n)
		if c.Cache.Read(lba, blocks, buf) {
			if c.Guard == nil || c.Guard.Verify(lba, buf) {
				th.Exec(p, c.copyCost(n))
				if err := req.WriteData(buf); err != nil {
					return false, nvme.SCDataXferError
				}
				c.ReqHits++
				return false, nvme.SCSuccess
			}
			c.GuardErrors++
			c.Cache.Invalidate(lba, blocks)
		}
		fill := c.Cache.BeginFill(lba, blocks)
		c.Primary.SubmitBio(p, th, &blockdev.Bio{
			Op: blockdev.BioRead, Sector: req.Sector(), Data: buf,
			OnDone: func(st nvme.Status) {
				req.Attachment().Defer(func(p *sim.Proc, th *sim.Thread) {
					if !st.OK() {
						c.Cache.AbortFill(fill)
						req.CompleteAsync(st)
						return
					}
					if c.Guard != nil && !c.Guard.Verify(lba, buf) {
						c.GuardErrors++
						c.Cache.AbortFill(fill)
						req.CompleteAsync(nvme.SCGuardCheck)
						return
					}
					th.Exec(p, c.copyCost(n))
					if err := req.WriteData(buf); err != nil {
						c.Cache.AbortFill(fill)
						req.CompleteAsync(nvme.SCDataXferError)
						return
					}
					c.Cache.CommitFill(fill, buf)
					c.ReqFills++
					req.CompleteAsync(nvme.SCSuccess)
				})
			},
		})
		return true, 0
	case nvme.OpWrite:
		buf := make([]byte, n)
		if err := req.ReadData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		if c.Guard != nil && !c.Guard.Verify(lba, buf) {
			c.GuardErrors++
			return false, nvme.SCGuardCheck
		}
		th.Exec(p, c.copyCost(n))
		c.Forwarded++
		w := c.Cache.BeginWrite(lba, blocks)
		// Both mirror legs run inside the write window; the join decides
		// the guest status and what the window leaves in the cache.
		pending := 2
		var pst, sst nvme.Status
		join := func() {
			pending--
			if pending > 0 {
				return
			}
			if pst.OK() {
				c.Cache.EndWrite(w, buf)
			} else {
				c.Cache.EndWrite(w, nil)
				c.PrimaryErrors++
				// The secondary may now hold data the primary lost.
				c.Dirty.Add(lba, blocks)
			}
			st := pst
			if !sst.OK() {
				c.SecondaryErrors++
				if pst.OK() {
					// Degraded mode: the primary carries the data.
					c.Degraded++
					c.Dirty.Add(lba, blocks)
					if c.resync != nil {
						c.resync.noteSecondaryFailure(lba, blocks)
					}
					st = nvme.SCSuccess
				}
			} else if pst.OK() && c.resync != nil {
				c.resync.noteGuestWrite(lba, blocks)
			}
			req.CompleteAsync(st)
		}
		c.Primary.SubmitBio(p, th, &blockdev.Bio{
			Op: blockdev.BioWrite, Sector: req.Sector(), Data: buf,
			OnDone: func(st nvme.Status) { pst = st; join() },
		})
		req.SubmitBackendWriteThen(p, th, buf, func(p *sim.Proc, th *sim.Thread, st nvme.Status) {
			sst = st
			join()
		})
		return true, 0
	default:
		return false, nvme.SCInvalidOpcode
	}
}

func init() {
	// Expose the source through the inventory used by Table I / the asm tool.
	classifierExtra["cache"] = cacheSrc
}
