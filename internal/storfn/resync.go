package storfn

import (
	"fmt"
	"hash/crc32"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
)

// MirrorState is the Replicator's mirror-consistency state.
type MirrorState int

// Mirror states. The legal transitions are
// InSync → Degraded (secondary-leg write failure),
// Degraded → Resyncing (link-up or explicit trigger),
// Resyncing → Degraded (resync-leg error or renewed outage) and
// Resyncing → InSync (dirty set drained and verification clean).
const (
	StateInSync MirrorState = iota
	StateDegraded
	StateResyncing
)

func (s MirrorState) String() string {
	switch s {
	case StateInSync:
		return "InSync"
	case StateDegraded:
		return "Degraded"
	case StateResyncing:
		return "Resyncing"
	}
	return fmt.Sprintf("MirrorState(%d)", int(s))
}

// ResyncConfig tunes the background resync worker.
type ResyncConfig struct {
	// Rate is the token-bucket refill rate in bytes/second of resync copy
	// traffic; it bounds how hard resync competes with foreground guest
	// I/O for the fabric. Must be positive.
	Rate float64
	// Burst is the bucket depth in bytes: how much idle credit may
	// accumulate. Defaults to two chunks.
	Burst uint64
	// ChunkBlocks is the copy granule in device blocks. Defaults to 256
	// (128 KiB at 512-byte blocks).
	ChunkBlocks uint64
	// Verify enables the CRC comparison pass over everything copied
	// before the mirror is declared InSync.
	Verify bool
}

// DefaultResyncConfig returns a moderate policy: 200 MB/s copy rate,
// 128 KiB chunks, verification on.
func DefaultResyncConfig() ResyncConfig {
	return ResyncConfig{Rate: 200e6, ChunkBlocks: 256, Verify: true}
}

// withDefaults fills zero fields and validates the config. A zero or
// negative rate is rejected at install time: it would silently stall the
// drain loop forever while the state machine claims to be resyncing.
func (c ResyncConfig) withDefaults(shift uint8) (ResyncConfig, error) {
	if c.Rate <= 0 {
		return c, fmt.Errorf("storfn: resync rate limit must be positive, got %g B/s", c.Rate)
	}
	if c.ChunkBlocks == 0 {
		c.ChunkBlocks = 256
	}
	if c.Burst == 0 {
		c.Burst = 2 * (c.ChunkBlocks << shift)
	}
	return c, nil
}

// Resyncer drains a degraded Replicator's dirty regions back to a
// consistent mirror. A background worker copies each dirty chunk from the
// primary block device and replays it to the secondary through the
// Replicator's own uif backend ring, rate-limited by a token bucket.
//
// Concurrency contract (the write-ordering argument, see DESIGN.md §6):
// a chunk is removed from the dirty set *before* it is read, and the
// worker keeps an in-flight window over it until the secondary write
// completes. Any guest write whose secondary-leg completion lands inside
// that window re-dirties the overlap — the guest's data may just have
// been clobbered on the secondary by the stale resync read, so the chunk
// is copied again on a later iteration. Since every pass shrinks the
// dirty set unless new guest writes land, the loop converges as soon as
// foreground write traffic pauses or slows below the resync rate.
//
// Any resync-leg error (media error on either side, a renewed outage
// exhausting the initiator's retries) re-dirties the whole in-flight
// chunk and drops the state machine back to Degraded: no range is ever
// lost, and the next trigger resumes where the failed pass stopped.
type Resyncer struct {
	env     *sim.Env
	rep     *Replicator
	primary blockdev.BlockDevice
	att     *uif.Attachment
	th      *sim.Thread
	cfg     ResyncConfig
	shift   uint8

	state  MirrorState
	kick   *sim.Cond // wakes the worker on a trigger
	ioDone *sim.Cond // wakes the worker on chunk I/O completion

	// retrigger records a Trigger that arrived while a pass was still
	// running (about to abort — e.g. the supervisor promoted a restarted
	// UIF before the old pass observed its dead attachment): the worker
	// re-enters Resyncing right after the abort instead of parking
	// Degraded with nobody left to kick it.
	retrigger bool

	// In-flight resync window: [winLBA, winEnd) is being copied or
	// verified right now. winDirtied records a guest write landing in it.
	winOpen        bool
	winLBA, winEnd uint64
	winDirtied     bool

	// Token bucket.
	tokens   float64
	lastFill sim.Time

	// copied accumulates the ranges copied in the current pass, pending
	// verification.
	copied DirtyRegions

	// Stats
	ToDegraded       uint64 // InSync/Resyncing → Degraded transitions
	ToResyncing      uint64 // Degraded → Resyncing transitions
	ToInSync         uint64 // Resyncing → InSync transitions
	Triggers         uint64 // accepted resync triggers (link-up or explicit)
	ResyncedBlocks   uint64 // blocks copied primary → secondary
	RedirtiedBlocks  uint64 // blocks re-dirtied by guest writes mid-copy
	VerifiedBlocks   uint64 // blocks CRC-compared across both legs
	VerifyMismatches uint64 // CRC mismatches found (re-dirtied and recopied)
	Errors           uint64 // resync-leg I/O failures
	Passes           uint64 // passes that reached InSync
	Aborts           uint64 // passes that fell back to Degraded
}

// NewResyncer attaches a resync engine to rep. primary is the local
// mirror leg (read for copy and verify, charged to th); the secondary leg
// is reached through att — the same uif attachment/ring that carries the
// Replicator's foreground mirror writes, so resync traffic shares its
// ordering domain. blockShift is log2 of the device block size.
func NewResyncer(env *sim.Env, rep *Replicator, primary blockdev.BlockDevice, att *uif.Attachment, th *sim.Thread, blockShift uint8, cfg ResyncConfig) (*Resyncer, error) {
	cfg, err := cfg.withDefaults(blockShift)
	if err != nil {
		return nil, err
	}
	rs := &Resyncer{
		env: env, rep: rep, primary: primary, att: att, th: th,
		cfg: cfg, shift: blockShift,
		kick: sim.NewCond(env), ioDone: sim.NewCond(env),
		tokens: float64(cfg.Burst), lastFill: env.Now(),
	}
	if rep.Dirty.Blocks() > 0 {
		// Attaching to an already-degraded mirror.
		rs.state = StateDegraded
		rs.ToDegraded++
	}
	rep.resync = rs
	env.Go("storfn-resync", rs.run)
	return rs, nil
}

// State returns the mirror-consistency state.
func (rs *Resyncer) State() MirrorState { return rs.state }

// Config returns the active resync policy.
func (rs *Resyncer) Config() ResyncConfig { return rs.cfg }

// setState applies a transition and counts it.
func (rs *Resyncer) setState(s MirrorState) {
	if rs.state == s {
		return
	}
	rs.state = s
	switch s {
	case StateDegraded:
		rs.ToDegraded++
	case StateResyncing:
		rs.ToResyncing++
	case StateInSync:
		rs.ToInSync++
	}
}

// SetAttachment repoints the secondary leg at a new uif attachment
// generation — the supervisor calls this when it promotes a restarted
// UIF; the dead generation's ring is never touched again.
func (rs *Resyncer) SetAttachment(att *uif.Attachment) { rs.att = att }

// Trigger starts a resync pass if the mirror is degraded; it is a no-op
// when already in sync. A trigger landing while a pass is running is
// remembered and replayed if that pass aborts. Safe from both process
// and callback context.
func (rs *Resyncer) Trigger() {
	if rs.state == StateResyncing {
		rs.retrigger = true
		return
	}
	if rs.state != StateDegraded {
		return
	}
	rs.Triggers++
	rs.setState(StateResyncing)
	rs.kick.Signal(nil)
}

// NoteDivergence records externally detected secondary divergence (the
// integrity scrubber's cross-check): the range is re-dirtied and a mirror
// that believed itself in sync drops to Degraded so a following Trigger
// can drain the repair. During an active pass the normal re-dirty rules
// apply — the range is simply picked up before the pass completes.
func (rs *Resyncer) NoteDivergence(lba, blocks uint64) {
	rs.rep.Dirty.Add(lba, blocks)
	if rs.state == StateInSync {
		rs.setState(StateDegraded)
	}
}

// OnLinkUp is the fabric-recovery hook: register it with the NVMe-oF
// initiator (Initiator.OnReconnect) so a closing outage window starts the
// drain as soon as the initiator has requeued its own in-flight commands.
func (rs *Resyncer) OnLinkUp() { rs.Trigger() }

// noteSecondaryFailure records a degraded guest write: the Replicator has
// already added the range to the dirty set; here the state machine reacts.
// During a resync pass a failing guest mirror write also poisons the
// in-flight window — the chunk being copied shares the failing leg.
func (rs *Resyncer) noteSecondaryFailure(lba, blocks uint64) {
	switch rs.state {
	case StateInSync:
		rs.setState(StateDegraded)
	case StateResyncing:
		if rs.winOpen && lba < rs.winEnd && lba+blocks > rs.winLBA {
			rs.winDirtied = true
		}
	}
}

// noteGuestWrite handles a *successful* mirrored guest write during a
// resync pass: if it overlaps the in-flight window, the resync copy in
// flight was read before this write and may overwrite it on the
// secondary, so the overlap is re-dirtied and copied again later.
func (rs *Resyncer) noteGuestWrite(lba, blocks uint64) {
	if rs.state != StateResyncing || !rs.winOpen {
		return
	}
	lo, hi := lba, lba+blocks
	if lo < rs.winLBA {
		lo = rs.winLBA
	}
	if hi > rs.winEnd {
		hi = rs.winEnd
	}
	if lo >= hi {
		return
	}
	rs.rep.Dirty.Add(lo, hi-lo)
	rs.RedirtiedBlocks += hi - lo
	rs.winDirtied = true
}

// run is the background worker: park until triggered, then drain.
func (rs *Resyncer) run(p *sim.Proc) {
	for {
		for rs.state != StateResyncing {
			rs.kick.Wait()
		}
		rs.pass(p)
		if rs.retrigger {
			rs.retrigger = false
			rs.Trigger()
		}
	}
}

// pass drains the dirty set, then verifies; it returns with the state
// machine at InSync (success) or Degraded (resync-leg error).
func (rs *Resyncer) pass(p *sim.Proc) {
	rs.copied = DirtyRegions{}
	for {
		ranges := rs.rep.Dirty.Ranges()
		if len(ranges) == 0 {
			if rs.cfg.Verify && rs.copied.Blocks() > 0 {
				if !rs.verify(p) {
					rs.Aborts++
					rs.setState(StateDegraded)
					return
				}
				if rs.rep.Dirty.Blocks() > 0 {
					continue // mismatches were re-dirtied: drain again
				}
			}
			rs.Passes++
			rs.setState(StateInSync)
			return
		}
		r := ranges[0]
		n := r.Blocks
		if n > rs.cfg.ChunkBlocks {
			n = rs.cfg.ChunkBlocks
		}
		if !rs.copyChunk(p, r.LBA, n) {
			rs.Aborts++
			rs.setState(StateDegraded)
			return
		}
	}
}

// copyChunk copies [lba, lba+blocks) primary → secondary under the
// in-flight window. On failure the chunk is re-dirtied in full.
func (rs *Resyncer) copyChunk(p *sim.Proc, lba, blocks uint64) bool {
	nbytes := blocks << rs.shift
	rs.throttle(p, nbytes)
	rs.rep.Dirty.Remove(lba, blocks)
	rs.openWindow(lba, blocks)
	buf := make([]byte, nbytes)
	st := rs.primaryIO(p, blockdev.BioRead, lba, buf)
	if st.OK() {
		st = rs.secondaryIO(p, blockdev.BioWrite, lba, buf)
	}
	rs.closeWindow()
	if !st.OK() {
		rs.Errors++
		rs.rep.Dirty.Add(lba, blocks) // nothing lost: the chunk stays dirty
		return false
	}
	rs.ResyncedBlocks += blocks
	rs.copied.Add(lba, blocks)
	return true
}

// verify CRC-compares both legs over everything the pass copied. A clean
// mismatch is re-dirtied (the caller drains again); a compare poisoned by
// a concurrent guest write is skipped — the hook already re-dirtied the
// overlap. Returns false on a resync-leg I/O error.
func (rs *Resyncer) verify(p *sim.Proc) bool {
	ranges := rs.copied.Ranges()
	rs.copied = DirtyRegions{}
	for _, r := range ranges {
		for off := uint64(0); off < r.Blocks; {
			n := r.Blocks - off
			if n > rs.cfg.ChunkBlocks {
				n = rs.cfg.ChunkBlocks
			}
			lba := r.LBA + off
			off += n
			nbytes := n << rs.shift
			rs.throttle(p, 2*nbytes) // both legs are read
			rs.openWindow(lba, n)
			pbuf := make([]byte, nbytes)
			sbuf := make([]byte, nbytes)
			st := rs.primaryIO(p, blockdev.BioRead, lba, pbuf)
			if st.OK() {
				st = rs.secondaryIO(p, blockdev.BioRead, lba, sbuf)
			}
			dirtied := rs.winDirtied
			rs.closeWindow()
			if !st.OK() {
				rs.Errors++
				rs.rep.Dirty.Add(lba, n)
				return false
			}
			rs.VerifiedBlocks += n
			if dirtied {
				continue // racing guest write; overlap already re-dirtied
			}
			if crc32.ChecksumIEEE(pbuf) != crc32.ChecksumIEEE(sbuf) {
				rs.VerifyMismatches++
				rs.rep.Dirty.Add(lba, n)
			}
		}
	}
	return true
}

func (rs *Resyncer) openWindow(lba, blocks uint64) {
	rs.winOpen, rs.winLBA, rs.winEnd, rs.winDirtied = true, lba, lba+blocks, false
}

func (rs *Resyncer) closeWindow() { rs.winOpen = false }

// throttle blocks until the token bucket covers nbytes of resync traffic.
func (rs *Resyncer) throttle(p *sim.Proc, nbytes uint64) {
	now := p.Now()
	rs.tokens += rs.cfg.Rate * now.Sub(rs.lastFill).Seconds()
	if rs.tokens > float64(rs.cfg.Burst) {
		rs.tokens = float64(rs.cfg.Burst)
	}
	rs.lastFill = now
	if deficit := float64(nbytes) - rs.tokens; deficit > 0 {
		d := sim.Duration(deficit / rs.cfg.Rate * 1e9)
		p.Sleep(d)
		rs.tokens += rs.cfg.Rate * d.Seconds()
		rs.lastFill = p.Now()
	}
	rs.tokens -= float64(nbytes)
}

// sector converts a device LBA to a 512-byte sector.
func (rs *Resyncer) sector(lba uint64) uint64 {
	return lba << rs.shift / blockdev.SectorSize
}

// primaryIO performs one synchronous bio against the primary leg.
func (rs *Resyncer) primaryIO(p *sim.Proc, op blockdev.BioOp, lba uint64, buf []byte) nvme.Status {
	var st nvme.Status
	done := false
	bio := &blockdev.Bio{Op: op, Sector: rs.sector(lba), Data: buf}
	bio.OnDone = func(s nvme.Status) {
		st, done = s, true
		rs.ioDone.Signal(nil)
	}
	rs.primary.SubmitBio(p, rs.th, bio)
	for !done {
		rs.ioDone.Wait()
	}
	return st
}

// secondaryIO performs one synchronous I/O against the secondary leg
// through the Replicator's uif backend ring.
func (rs *Resyncer) secondaryIO(p *sim.Proc, op blockdev.BioOp, lba uint64, buf []byte) nvme.Status {
	var st nvme.Status
	done := false
	rs.att.SubmitBackendIO(op, rs.sector(lba), buf, func(_ *sim.Proc, _ *sim.Thread, s nvme.Status) {
		st, done = s, true
		rs.ioDone.Signal(nil)
	})
	for !done {
		rs.ioDone.Wait()
	}
	return st
}

// Collect folds the resync counters into cs under the "rs." prefix.
func (rs *Resyncer) Collect(cs *metrics.CounterSet) {
	cs.Add("rs.to_degraded", rs.ToDegraded)
	cs.Add("rs.to_resyncing", rs.ToResyncing)
	cs.Add("rs.to_insync", rs.ToInSync)
	cs.Add("rs.triggers", rs.Triggers)
	cs.Add("rs.resynced_blocks", rs.ResyncedBlocks)
	cs.Add("rs.redirtied_blocks", rs.RedirtiedBlocks)
	cs.Add("rs.verified_blocks", rs.VerifiedBlocks)
	cs.Add("rs.verify_mismatches", rs.VerifyMismatches)
	cs.Add("rs.errors", rs.Errors)
	cs.Add("rs.passes", rs.Passes)
	cs.Add("rs.aborts", rs.Aborts)
}
