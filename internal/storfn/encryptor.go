package storfn

import (
	"nvmetro/internal/nvme"
	"nvmetro/internal/sgx"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
	"nvmetro/internal/xts"
)

// EncryptorCosts models the UIF-side data-path costs.
type EncryptorCosts struct {
	CryptRate float64 // bytes/sec of XTS-AES per thread (AES-NI class)
	CopyRate  float64 // bytes/sec of guest-memory copies
}

// DefaultEncryptorCosts returns the calibrated encryptor model.
func DefaultEncryptorCosts() EncryptorCosts {
	return EncryptorCosts{CryptRate: 2.4e9, CopyRate: 10e9}
}

// Encryptor is the transparent-encryption UIF (paper Listing 2): reads are
// decrypted in place after the device fills the guest buffer with
// ciphertext; writes are encrypted into a temporary buffer and persisted
// by the UIF itself through io_uring. The XTS format matches dm-crypt with
// plain64 sector tweaks.
type Encryptor struct {
	cipher *xts.Cipher
	costs  EncryptorCosts

	// Stats
	Reads, Writes uint64
}

// NewEncryptor creates the UIF with a 256- or 512-bit XTS key.
func NewEncryptor(key []byte, costs EncryptorCosts) (*Encryptor, error) {
	c, err := xts.New(key)
	if err != nil {
		return nil, err
	}
	return &Encryptor{cipher: c, costs: costs}, nil
}

func (e *Encryptor) cryptCost(n int) sim.Duration {
	return sim.Duration(float64(n) / e.costs.CryptRate * 1e9)
}

func (e *Encryptor) copyCost(n int) sim.Duration {
	return sim.Duration(float64(n) / e.costs.CopyRate * 1e9)
}

// Work implements uif.Handler.
func (e *Encryptor) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	switch req.Cmd.Opcode() {
	case nvme.OpRead:
		// do_read: iterate the data blocks and decrypt in place.
		n := int(req.NBytes())
		buf := make([]byte, n)
		if err := req.ReadData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		th.Exec(p, e.cryptCost(n)+e.copyCost(2*n))
		if err := e.cipher.DecryptBlocks(buf, buf, req.Sector(), 512); err != nil {
			return false, nvme.SCInternal
		}
		if err := req.WriteData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		e.Reads++
		return false, nvme.SCSuccess
	case nvme.OpWrite:
		// do_write_async: encrypt into a temporary buffer, then write the
		// ciphertext to disk with io_uring; respond when the write lands.
		n := int(req.NBytes())
		buf := make([]byte, n)
		if err := req.ReadData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		th.Exec(p, e.cryptCost(n)+e.copyCost(n))
		ct := make([]byte, n)
		if err := e.cipher.EncryptBlocks(ct, buf, req.Sector(), 512); err != nil {
			return false, nvme.SCInternal
		}
		e.Writes++
		req.SubmitBackendWrite(p, th, ct)
		return true, 0
	default:
		// The classifier only routes reads and writes here.
		return false, nvme.SCInvalidOpcode
	}
}

// SGXEncryptor is the enclave variant: identical request flow, but all
// cipher operations run inside a simulated SGX enclave via switchless
// calls, so the key never exists in UIF memory. It shares the plain
// encryptor's structure — the paper notes ~80% shared code and ~120 lines
// of SGX-specific logic.
type SGXEncryptor struct {
	enclave *sgx.Enclave
	costs   EncryptorCosts

	Reads, Writes uint64
}

// NewSGXEncryptor wraps a launched enclave.
func NewSGXEncryptor(enclave *sgx.Enclave, costs EncryptorCosts) *SGXEncryptor {
	return &SGXEncryptor{enclave: enclave, costs: costs}
}

func (e *SGXEncryptor) copyCost(n int) sim.Duration {
	return sim.Duration(float64(n) / e.costs.CopyRate * 1e9)
}

// Work implements uif.Handler.
func (e *SGXEncryptor) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	switch req.Cmd.Opcode() {
	case nvme.OpRead:
		n := int(req.NBytes())
		buf := make([]byte, n)
		if err := req.ReadData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		th.Exec(p, e.copyCost(2*n))
		e.enclave.SubmitSwitchless(p, th, &sgx.Job{
			Op: sgx.OpDecrypt, Dst: buf, Src: buf, Sector: req.Sector(), SectorSize: 512,
			Done: func(err error) {
				st := nvme.SCSuccess
				if err != nil {
					st = nvme.SCInternal
				} else if werr := req.WriteData(buf); werr != nil {
					st = nvme.SCDataXferError
				}
				e.Reads++
				req.CompleteAsync(st)
			},
		})
		return true, 0
	case nvme.OpWrite:
		n := int(req.NBytes())
		buf := make([]byte, n)
		if err := req.ReadData(buf); err != nil {
			return false, nvme.SCDataXferError
		}
		th.Exec(p, e.copyCost(n))
		ct := make([]byte, n)
		e.enclave.SubmitSwitchless(p, th, &sgx.Job{
			Op: sgx.OpEncrypt, Dst: ct, Src: buf, Sector: req.Sector(), SectorSize: 512,
			Done: func(err error) {
				if err != nil {
					req.CompleteAsync(nvme.SCInternal)
					return
				}
				e.Writes++
				// Hop back onto a UIF polling thread for the io_uring write.
				req.Attachment().Defer(func(p *sim.Proc, th *sim.Thread) {
					req.SubmitBackendWrite(p, th, ct)
				})
			},
		})
		return true, 0
	default:
		return false, nvme.SCInvalidOpcode
	}
}
