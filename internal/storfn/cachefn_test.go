package storfn_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/cache"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

// setupCache wires the cache storage function for a VM: classifier with the
// Cacher's heat map, the Cacher UIF, and a host block device + ring for the
// backend legs.
func setupCache(t *testing.T, h *host, vc *core.Controller, cp storfn.CacheParams) *storfn.Cacher {
	t.Helper()
	cacher := storfn.NewCacher(h.env, cp)
	prog, _ := storfn.CacheClassifier(vc.Partition(), cacher.Hints(), cp.HotThreshold)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	bdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(h.dev, 1), h.cpu, 11, blockdev.DefaultCosts())
	ring := blockdev.NewURing(h.env, bdev, blockdev.DefaultURingCosts())
	h.fw.Attach(vc.AttachUIF(256), cacher, ring)
	return cacher
}

func TestCacheClassifierVerifies(t *testing.T) {
	env := sim.New(1)
	dev := device.New(env, device.Default970EvoPlus(), device.NullStore{})
	part := device.Partition{Dev: dev, NSID: 1, Start: 4096, Blocks: 8192}
	hints := core.NewHotHints(3, 1<<10)
	prog, _ := storfn.CacheClassifier(part, hints, 2)
	if err := core.NewVerifier().Verify(prog); err != nil {
		t.Fatalf("cache classifier rejected: %v", err)
	}
	if _, ok := storfn.ClassifierSources()["cache"]; !ok {
		t.Fatal("cache classifier missing from the source inventory")
	}
}

// TestCacheEndToEnd drives the full heat lifecycle: a first-touch read
// stays on the fast path, the second (now hot) read misses and fills, the
// third hits host memory; a later write invalidates-and-updates so the next
// hit returns the new data.
func TestCacheEndToEnd(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	cp := storfn.DefaultCacheParams()
	cacher := setupCache(t, h, vc, cp)

	dataA := bytes.Repeat([]byte{0xa1, 7}, 2048) // 8 blocks, one heat bucket
	dataB := bytes.Repeat([]byte{0xb2, 9}, 2048)
	h.run(t, func(p *sim.Proc) {
		// All writes go through the UIF's write window (write-through).
		if st := doIO(p, v, disk, vm.OpWrite, 200, dataA); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		if cacher.ReqWrites != 1 {
			t.Fatalf("write bypassed the cache UIF (ReqWrites=%d)", cacher.ReqWrites)
		}
		// Drop the write-through install so the fill path is exercised.
		cacher.Cache().Invalidate(200, 8)

		got := make([]byte, len(dataA))
		// Read 1: bucket heat 1 < threshold 2 — fast path, UIF untouched.
		if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, dataA) {
			t.Fatalf("cold read: %v", st)
		}
		if cacher.ReqHits+cacher.ReqFills != 0 {
			t.Fatal("cold read reached the cache UIF")
		}
		// Read 2: hot — notify path, cache miss, fill from the backend.
		if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, dataA) {
			t.Fatalf("fill read: %v", st)
		}
		if cacher.ReqFills != 1 {
			t.Fatalf("hot miss did not fill (ReqFills=%d)", cacher.ReqFills)
		}
		// Read 3: hot and resident — served from host memory.
		if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, dataA) {
			t.Fatalf("hit read: %v", st)
		}
		if cacher.ReqHits != 1 {
			t.Fatalf("resident hot read missed (ReqHits=%d)", cacher.ReqHits)
		}
		// Overwrite: the write window invalidates and (write-through)
		// installs the new data — the next hit must never return dataA.
		if st := doIO(p, v, disk, vm.OpWrite, 200, dataB); !st.OK() {
			t.Fatalf("overwrite: %v", st)
		}
		if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() {
			t.Fatalf("read after write: %v", st)
		}
		if bytes.Equal(got, dataA) {
			t.Fatal("stale cached read after a completed write")
		}
		if !bytes.Equal(got, dataB) {
			t.Fatal("read after write returned garbage")
		}
		if cacher.ReqHits != 2 {
			t.Fatalf("read-after-write should hit the write-through install (ReqHits=%d)", cacher.ReqHits)
		}
	})
	if cacher.Cache().Hits() == 0 || cacher.HitLat.Count() == 0 {
		t.Fatal("cache block stats not recorded")
	}
}

// TestCacheWriteAround: under write-around the write only invalidates, so a
// hot read after a write refills from the backend instead of hitting.
func TestCacheWriteAround(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	cp := storfn.DefaultCacheParams()
	cp.Cache.WritePolicy = cache.WriteAround
	cacher := setupCache(t, h, vc, cp)

	data := bytes.Repeat([]byte{0x44, 3}, 2048)
	h.run(t, func(p *sim.Proc) {
		got := make([]byte, len(data))
		// Heat the bucket and fill it.
		doIO(p, v, disk, vm.OpRead, 64, got)
		doIO(p, v, disk, vm.OpRead, 64, got)
		if cacher.ReqFills != 1 {
			t.Fatalf("ReqFills=%d", cacher.ReqFills)
		}
		if st := doIO(p, v, disk, vm.OpWrite, 64, data); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		if st := doIO(p, v, disk, vm.OpRead, 64, got); !st.OK() || !bytes.Equal(got, data) {
			t.Fatalf("read after write-around: %v", st)
		}
		if cacher.ReqFills != 2 {
			t.Fatalf("write-around read should refill, not hit (ReqFills=%d ReqHits=%d)",
				cacher.ReqFills, cacher.ReqHits)
		}
	})
}

// cachedReplBed is the replication wiring with the cache storage function
// stacked on top: CachedReplicator UIF, fabric secondary, resync engine.
type cachedReplBed struct {
	h      *host
	v      *vm.VM
	disk   *vm.NVMeDisk
	crep   *storfn.CachedReplicator
	rs     *storfn.Resyncer
	link   *nvmeof.Link
	rstore *device.MemStore
}

func newCachedReplBed(t *testing.T, rcfg storfn.ResyncConfig) *cachedReplBed {
	t.Helper()
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	hints := core.NewHotHints(3, 1<<16)
	prog, _ := storfn.CacheClassifier(vc.Partition(), hints, 2)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	remoteCPU := sim.NewCPU(h.env, 4)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rstore := device.NewMemStore(512)
	rdev := device.New(h.env, rp, rstore)
	rbdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(rdev, 1), remoteCPU, 3, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(h.env)
	tgt := nvmeof.NewTarget(h.env, rbdev, remoteCPU)
	ini := nvmeof.NewInitiator(h.env, link, tgt)
	if err := ini.SetRecovery(tightOfRecovery); err != nil {
		t.Fatal(err)
	}

	primary := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(h.dev, 1), h.cpu, 12, blockdev.DefaultCosts())
	crep := storfn.NewCachedReplicator(primary, cache.DefaultConfig())
	ring := blockdev.NewURing(h.env, ini, blockdev.DefaultURingCosts())
	att := h.fw.Attach(vc.AttachUIF(256), crep, ring)

	rs, err := storfn.NewResyncer(h.env, crep.Replicator, primary, att, h.cpu.ThreadOn(13, "resync"), h.dev.Params().LBAShift, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ini.OnReconnect(rs.OnLinkUp)
	return &cachedReplBed{h: h, v: v, disk: disk, crep: crep, rs: rs, link: link, rstore: rstore}
}

// TestCachedReplicatorCoherentMidResync: a degraded write populates the
// cache, a write landing mid-resync must invalidate/update it, and hot
// reads must never observe pre-write data at any point — before, during or
// after the drain. Both mirror legs converge bit-identical.
func TestCachedReplicatorCoherentMidResync(t *testing.T) {
	rcfg := storfn.DefaultResyncConfig()
	rcfg.Rate = 5e6 // slow drain so the overwrite lands mid-resync
	rcfg.ChunkBlocks = 8
	b := newCachedReplBed(t, rcfg)
	// The outage covers all degraded writes (~0.55 ms each) and the heat-up
	// reads; the resync drain starts when it lifts.
	b.link.ScheduleOutage(0, 50*sim.Millisecond)

	dataA := bytes.Repeat([]byte{0x11, 5}, 2048)
	dataB := bytes.Repeat([]byte{0x22, 6}, 2048)
	b.h.run(t, func(p *sim.Proc) {
		// Degraded writes dirty [0, 256) on the secondary.
		for i := 0; i < 32; i++ {
			if st := doIO(p, b.v, b.disk, vm.OpWrite, uint64(i*8), dataA); !st.OK() {
				t.Fatalf("degraded write %d: %v", i, st)
			}
		}
		if b.rs.State() != storfn.StateDegraded {
			t.Fatalf("state=%v, want Degraded", b.rs.State())
		}
		got := make([]byte, len(dataA))
		// Heat LBA 200's bucket: first read cold (fast path = primary),
		// second hot (cache fill or write-through hit).
		for r := 0; r < 2; r++ {
			if st := doIO(p, b.v, b.disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, dataA) {
				t.Fatalf("degraded read %d: %v", r, st)
			}
		}
		if b.crep.ReqHits == 0 {
			t.Fatal("hot read did not hit the cache")
		}

		// Wait until the drain is actually running, then overwrite a
		// cached, dirty range mid-resync.
		for b.rs.State() != storfn.StateResyncing {
			p.Sleep(100 * sim.Microsecond)
		}
		if st := doIO(p, b.v, b.disk, vm.OpWrite, 200, dataB); !st.OK() {
			t.Fatalf("mid-resync write: %v", st)
		}
		// The very next hot read must see dataB — a stale cached dataA
		// here is exactly the bug the write/fill windows exist to prevent.
		if st := doIO(p, b.v, b.disk, vm.OpRead, 200, got); !st.OK() {
			t.Fatalf("mid-resync read: %v", st)
		}
		if bytes.Equal(got, dataA) {
			t.Fatal("stale cached read after a mid-resync write")
		}
		if !bytes.Equal(got, dataB) {
			t.Fatal("mid-resync read returned garbage")
		}

		b.waitInSync(t, p, 500*sim.Millisecond)

		// After the drain, reads still serve the latest data.
		if st := doIO(p, b.v, b.disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, dataB) {
			t.Fatal("post-resync read lost the mid-resync write")
		}
	})
	if pc, sc := b.h.store.ContentCRC(), b.rstore.ContentCRC(); pc != sc {
		t.Fatalf("mirror contents diverge: primary=%08x secondary=%08x", pc, sc)
	}
	if b.crep.Dirty.Blocks() != 0 {
		t.Fatalf("leaked dirty blocks: %v", b.crep.Dirty.Ranges())
	}
}

// waitInSync mirrors replBed.waitInSync for the cached bed.
func (b *cachedReplBed) waitInSync(t *testing.T, p *sim.Proc, bound sim.Duration) {
	t.Helper()
	deadline := p.Now().Add(bound)
	for b.rs.State() != storfn.StateInSync && p.Now() < deadline {
		p.Sleep(sim.Millisecond)
	}
	if b.rs.State() != storfn.StateInSync {
		t.Fatalf("mirror did not converge: state=%v dirty=%d", b.rs.State(), b.crep.Dirty.Blocks())
	}
}
