package storfn

import "testing"

func TestDirtyRegionsMergeAndCount(t *testing.T) {
	var d DirtyRegions
	if d.Regions() != 0 || d.Blocks() != 0 {
		t.Fatal("zero value not empty")
	}
	d.Add(100, 8)
	d.Add(200, 8)
	if d.Regions() != 2 || d.Blocks() != 16 {
		t.Fatalf("regions=%d blocks=%d, want 2/16", d.Regions(), d.Blocks())
	}
	// Adjacent ranges coalesce.
	d.Add(108, 8)
	if d.Regions() != 2 || d.Blocks() != 24 {
		t.Fatalf("adjacent merge: regions=%d blocks=%d, want 2/24", d.Regions(), d.Blocks())
	}
	// Overlap does not double-count.
	d.Add(104, 8)
	if d.Regions() != 2 || d.Blocks() != 24 {
		t.Fatalf("overlap: regions=%d blocks=%d, want 2/24", d.Regions(), d.Blocks())
	}
	// A range spanning the gap merges everything into one region.
	d.Add(110, 95)
	if d.Regions() != 1 || d.Blocks() != 108 {
		t.Fatalf("span: regions=%d blocks=%d, want 1/108", d.Regions(), d.Blocks())
	}
	if !d.Contains(100) || !d.Contains(207) || d.Contains(208) || d.Contains(99) {
		t.Fatal("Contains bounds wrong")
	}
	d.Add(300, 0)
	if d.Regions() != 1 {
		t.Fatal("zero-length add changed state")
	}
}

func TestDirtyRegionsInsertBefore(t *testing.T) {
	var d DirtyRegions
	d.Add(500, 10)
	d.Add(10, 10)
	d.Add(250, 10)
	if d.Regions() != 3 || d.Blocks() != 30 {
		t.Fatalf("regions=%d blocks=%d, want 3/30", d.Regions(), d.Blocks())
	}
	if !d.Contains(15) || !d.Contains(255) || !d.Contains(505) {
		t.Fatal("lost a region on out-of-order insert")
	}
}
