package storfn

import (
	"math/rand"
	"testing"
)

// dirtyInvariants checks the structural invariants: sorted, non-empty,
// pairwise disjoint and coalesced (no two regions touch).
func dirtyInvariants(t *testing.T, d *DirtyRegions) {
	t.Helper()
	for i, r := range d.regions {
		if r.lba >= r.end {
			t.Fatalf("region %d empty or inverted: [%d,%d)", i, r.lba, r.end)
		}
		if i > 0 && d.regions[i-1].end >= r.lba {
			t.Fatalf("regions %d and %d overlap or touch: [%d,%d) [%d,%d)",
				i-1, i, d.regions[i-1].lba, d.regions[i-1].end, r.lba, r.end)
		}
	}
}

// TestDirtyRegionsPropertyVsBitmap drives random Add/Remove sequences
// against a naive per-block bitmap model and checks that membership,
// totals and the Ranges() snapshot agree after every operation.
func TestDirtyRegionsPropertyVsBitmap(t *testing.T) {
	const domain = 300
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var d DirtyRegions
		model := make([]bool, domain)
		for op := 0; op < 200; op++ {
			lba := uint64(rng.Intn(domain - 1))
			blocks := uint64(rng.Intn(40))
			if lba+blocks > domain {
				blocks = domain - lba
			}
			if rng.Intn(3) == 0 {
				d.Remove(lba, blocks)
				for b := lba; b < lba+blocks; b++ {
					model[b] = false
				}
			} else {
				d.Add(lba, blocks)
				for b := lba; b < lba+blocks; b++ {
					model[b] = true
				}
			}
			dirtyInvariants(t, &d)

			var want uint64
			for b := 0; b < domain; b++ {
				if model[b] {
					want++
				}
				if d.Contains(uint64(b)) != model[b] {
					t.Fatalf("trial %d op %d: Contains(%d)=%v, model=%v",
						trial, op, b, d.Contains(uint64(b)), model[b])
				}
			}
			if got := d.Blocks(); got != want {
				t.Fatalf("trial %d op %d: Blocks()=%d, model=%d", trial, op, got, want)
			}
			var fromRanges uint64
			for _, r := range d.Ranges() {
				fromRanges += r.Blocks
				for b := r.LBA; b < r.LBA+r.Blocks; b++ {
					if !model[b] {
						t.Fatalf("trial %d op %d: Ranges() reports clean block %d dirty", trial, op, b)
					}
				}
			}
			if fromRanges != want {
				t.Fatalf("trial %d op %d: Ranges() covers %d blocks, model has %d", trial, op, fromRanges, want)
			}
		}
	}
}

// TestDirtyRegionsRemoveSplits checks the three clipping shapes directly:
// removing the middle splits, removing an edge trims, removing across
// regions deletes whole ones.
func TestDirtyRegionsRemoveSplits(t *testing.T) {
	var d DirtyRegions
	d.Add(10, 20) // [10,30)
	d.Remove(15, 5)
	if d.Regions() != 2 || d.Blocks() != 15 {
		t.Fatalf("mid-hole: regions=%d blocks=%d, want 2/15", d.Regions(), d.Blocks())
	}
	d.Remove(10, 3) // trim left edge of [10,15)
	if d.Contains(10) || d.Contains(12) || !d.Contains(13) {
		t.Fatalf("left trim wrong: %v", d.Ranges())
	}
	d.Add(100, 10)
	d.Remove(0, 200) // wipe everything
	if d.Regions() != 0 || d.Blocks() != 0 {
		t.Fatalf("full wipe left %v", d.Ranges())
	}
	d.Remove(0, 10) // removing from empty set is a no-op
	if d.Regions() != 0 {
		t.Fatalf("remove on empty set grew regions")
	}
}
