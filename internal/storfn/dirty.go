package storfn

import "sort"

// DirtyRegions tracks guest LBA ranges whose secondary copy is stale —
// writes that were acknowledged from the primary alone while the mirror
// leg was failing. The resync engine replays exactly these regions.
// Ranges are kept sorted, pairwise disjoint and coalesced (no two regions
// touch), so membership and insertion use binary search.
type DirtyRegions struct {
	regions []dirtyRegion
}

type dirtyRegion struct {
	lba, end uint64 // [lba, end)
}

// Range is one dirty extent, exported for resync drainers.
type Range struct {
	LBA    uint64
	Blocks uint64
}

// Add marks [lba, lba+blocks) dirty, merging with adjacent or overlapping
// regions. The insertion point is found by binary search; only regions
// that actually touch the new range are merged.
func (d *DirtyRegions) Add(lba uint64, blocks uint64) {
	if blocks == 0 {
		return
	}
	nr := dirtyRegion{lba: lba, end: lba + blocks}
	// First region that touches or follows nr: adjacency (end == lba)
	// merges, so the predicate is end >= lba.
	lo := sort.Search(len(d.regions), func(i int) bool { return d.regions[i].end >= nr.lba })
	hi := lo
	for hi < len(d.regions) && d.regions[hi].lba <= nr.end {
		if d.regions[hi].lba < nr.lba {
			nr.lba = d.regions[hi].lba
		}
		if d.regions[hi].end > nr.end {
			nr.end = d.regions[hi].end
		}
		hi++
	}
	if lo == hi { // no overlap: insert at lo
		d.regions = append(d.regions, dirtyRegion{})
		copy(d.regions[lo+1:], d.regions[lo:])
		d.regions[lo] = nr
		return
	}
	d.regions[lo] = nr
	d.regions = append(d.regions[:lo+1], d.regions[hi:]...)
}

// Remove clears [lba, lba+blocks), splitting any region it punches a hole
// into. The resync drainer removes a chunk before copying it, so a guest
// write racing the copy re-dirties exactly the overlap.
func (d *DirtyRegions) Remove(lba uint64, blocks uint64) {
	if blocks == 0 {
		return
	}
	end := lba + blocks
	// First region with any overlap (strict: adjacency is untouched).
	lo := sort.Search(len(d.regions), func(i int) bool { return d.regions[i].end > lba })
	hi := lo
	var frags []dirtyRegion // surviving fragments of clipped regions (≤ 2)
	for hi < len(d.regions) && d.regions[hi].lba < end {
		r := d.regions[hi]
		if r.lba < lba {
			frags = append(frags, dirtyRegion{lba: r.lba, end: lba})
		}
		if r.end > end {
			frags = append(frags, dirtyRegion{lba: end, end: r.end})
		}
		hi++
	}
	if lo == hi {
		return
	}
	d.regions = append(d.regions[:lo], append(frags, d.regions[hi:]...)...)
}

// Regions returns the number of coalesced dirty regions.
func (d *DirtyRegions) Regions() int { return len(d.regions) }

// Blocks returns the total number of dirty blocks.
func (d *DirtyRegions) Blocks() uint64 {
	var n uint64
	for _, r := range d.regions {
		n += r.end - r.lba
	}
	return n
}

// Contains reports whether block lba is dirty.
func (d *DirtyRegions) Contains(lba uint64) bool {
	i := sort.Search(len(d.regions), func(i int) bool { return d.regions[i].end > lba })
	return i < len(d.regions) && d.regions[i].lba <= lba
}

// Ranges returns a snapshot of the dirty extents in LBA order.
func (d *DirtyRegions) Ranges() []Range {
	out := make([]Range, len(d.regions))
	for i, r := range d.regions {
		out[i] = Range{LBA: r.lba, Blocks: r.end - r.lba}
	}
	return out
}
