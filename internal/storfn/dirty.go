package storfn

// DirtyRegions tracks guest LBA ranges whose secondary copy is stale —
// writes that were acknowledged from the primary alone while the mirror
// leg was failing. A resync pass would replay exactly these regions.
// Ranges are kept sorted and coalesced.
type DirtyRegions struct {
	regions []dirtyRegion
}

type dirtyRegion struct {
	lba, end uint64 // [lba, end)
}

// Add marks [lba, lba+blocks) dirty, merging with adjacent or overlapping
// regions.
func (d *DirtyRegions) Add(lba uint64, blocks uint64) {
	if blocks == 0 {
		return
	}
	nr := dirtyRegion{lba: lba, end: lba + blocks}
	out := make([]dirtyRegion, 0, len(d.regions)+1)
	for _, r := range d.regions {
		switch {
		case r.end < nr.lba: // strictly before, not touching
			out = append(out, r)
		case nr.end < r.lba: // strictly after, not touching
			if nr.lba != nr.end {
				out = append(out, nr)
				nr = dirtyRegion{lba: nr.end, end: nr.end} // emitted
			}
			out = append(out, r)
		default: // overlapping or adjacent: merge into nr
			if r.lba < nr.lba {
				nr.lba = r.lba
			}
			if r.end > nr.end {
				nr.end = r.end
			}
		}
	}
	if nr.lba != nr.end {
		out = append(out, nr)
	}
	d.regions = out
}

// Regions returns the number of coalesced dirty regions.
func (d *DirtyRegions) Regions() int { return len(d.regions) }

// Blocks returns the total number of dirty blocks.
func (d *DirtyRegions) Blocks() uint64 {
	var n uint64
	for _, r := range d.regions {
		n += r.end - r.lba
	}
	return n
}

// Contains reports whether block lba is dirty.
func (d *DirtyRegions) Contains(lba uint64) bool {
	for _, r := range d.regions {
		if lba >= r.lba && lba < r.end {
			return true
		}
	}
	return false
}
