package storfn_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

// replBed is the full replication wiring plus a resync engine: local host
// with the Replicator UIF, remote host over a fabric link, and a Resyncer
// reading the primary through its own host block device.
type replBed struct {
	h      *host
	v      *vm.VM
	disk   *vm.NVMeDisk
	rep    *storfn.Replicator
	rs     *storfn.Resyncer
	ini    *nvmeof.Initiator
	link   *nvmeof.Link
	rstore *device.MemStore
}

// tightOfRecovery makes secondary-leg failures resolve fast enough for
// millisecond-scale outage tests: one 500 µs attempt (still 5x the
// worst-case healthy read RTT), no retries.
var tightOfRecovery = nvmeof.InitiatorRecovery{
	Timeout:    500 * sim.Microsecond,
	MaxRetries: 0,
	Backoff:    50 * sim.Microsecond,
}

func newReplBed(t *testing.T, rcfg storfn.ResyncConfig) *replBed {
	t.Helper()
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()
	prog, _ := storfn.ReplicatorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	remoteCPU := sim.NewCPU(h.env, 4)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rstore := device.NewMemStore(512)
	rdev := device.New(h.env, rp, rstore)
	rbdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(rdev, 1), remoteCPU, 3, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(h.env)
	tgt := nvmeof.NewTarget(h.env, rbdev, remoteCPU)
	ini := nvmeof.NewInitiator(h.env, link, tgt)
	if err := ini.SetRecovery(tightOfRecovery); err != nil {
		t.Fatal(err)
	}

	rep := storfn.NewReplicator()
	ring := blockdev.NewURing(h.env, ini, blockdev.DefaultURingCosts())
	att := h.fw.Attach(vc.AttachUIF(256), rep, ring)

	primary := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(h.dev, 1), h.cpu, 12, blockdev.DefaultCosts())
	rs, err := storfn.NewResyncer(h.env, rep, primary, att, h.cpu.ThreadOn(13, "resync"), h.dev.Params().LBAShift, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ini.OnReconnect(rs.OnLinkUp)
	return &replBed{h: h, v: v, disk: disk, rep: rep, rs: rs, ini: ini, link: link, rstore: rstore}
}

// waitInSync sleeps in 1 ms steps until the mirror reaches InSync.
func (b *replBed) waitInSync(t *testing.T, p *sim.Proc, bound sim.Duration) {
	t.Helper()
	deadline := p.Now().Add(bound)
	for b.rs.State() != storfn.StateInSync && p.Now() < deadline {
		p.Sleep(sim.Millisecond)
	}
	if b.rs.State() != storfn.StateInSync {
		t.Fatalf("mirror did not converge: state=%v dirty=%d", b.rs.State(), b.rep.Dirty.Blocks())
	}
}

// TestResyncAfterOutageConverges: writes landing during a fabric outage
// degrade the mirror; the link-up callback triggers a resync that copies
// the dirty region back, passes verification and returns to InSync with a
// bit-identical secondary.
func TestResyncAfterOutageConverges(t *testing.T) {
	b := newReplBed(t, storfn.DefaultResyncConfig())
	b.link.ScheduleOutage(0, 2*sim.Millisecond)

	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	b.h.run(t, func(p *sim.Proc) {
		if st := doIO(p, b.v, b.disk, vm.OpWrite, 200, data); !st.OK() {
			t.Fatalf("degraded write failed the guest: %v", st)
		}
		if b.rs.State() != storfn.StateDegraded {
			t.Fatalf("after outage write: state=%v (want Degraded)", b.rs.State())
		}
		if b.rep.Dirty.Blocks() != 16 {
			t.Fatalf("dirty blocks %d, want 16", b.rep.Dirty.Blocks())
		}
		b.waitInSync(t, p, 50*sim.Millisecond)

		got := make([]byte, len(data))
		b.rstore.ReadBlocks(200, got)
		if !bytes.Equal(got, data) {
			t.Fatal("secondary content differs after resync")
		}
	})
	if b.rep.Dirty.Blocks() != 0 {
		t.Fatalf("leaked dirty blocks: %v", b.rep.Dirty.Ranges())
	}
	if b.rs.ResyncedBlocks != 16 || b.rs.Passes != 1 || b.rs.VerifiedBlocks != 16 {
		t.Fatalf("resynced=%d passes=%d verified=%d", b.rs.ResyncedBlocks, b.rs.Passes, b.rs.VerifiedBlocks)
	}
	if b.rs.VerifyMismatches != 0 {
		t.Fatalf("verify mismatches on quiesced traffic: %d", b.rs.VerifyMismatches)
	}
	if b.rs.Triggers == 0 || b.rs.ToInSync != 1 {
		t.Fatalf("triggers=%d to_insync=%d", b.rs.Triggers, b.rs.ToInSync)
	}
}

// TestResyncOutageMidResync: a second outage lands while the (slow,
// tightly rate-limited) resync is draining. The failing chunk must be
// re-dirtied, the state machine must fall back to Degraded, and the next
// link-up must resume and converge without losing any range.
func TestResyncOutageMidResync(t *testing.T) {
	cfg := storfn.DefaultResyncConfig()
	cfg.Rate = 10e6 // 10 MB/s: 256 KiB of dirty data takes ~25 ms to copy
	cfg.ChunkBlocks = 16
	b := newReplBed(t, cfg)
	// First outage covers all 64 degraded writes (~0.55 ms each); the
	// second lands 2 ms into the ~25 ms drain that the first triggers.
	b.link.ScheduleOutage(0, 50*sim.Millisecond)
	b.link.ScheduleOutage(sim.Time(0).Add(52*sim.Millisecond), 2*sim.Millisecond)

	const writes = 64
	data := make([]byte, 4096)
	b.h.run(t, func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			for j := range data {
				data[j] = byte(j*5 + i + 1)
			}
			if st := doIO(p, b.v, b.disk, vm.OpWrite, uint64(i*8), data); !st.OK() {
				t.Fatalf("write %d failed the guest: %v", i, st)
			}
		}
		if b.rep.Dirty.Blocks() != writes*8 {
			t.Fatalf("dirty blocks %d, want %d", b.rep.Dirty.Blocks(), writes*8)
		}
		b.waitInSync(t, p, 500*sim.Millisecond)
	})
	if b.rs.Aborts == 0 || b.rs.Errors == 0 {
		t.Fatalf("second outage did not abort the resync: aborts=%d errors=%d", b.rs.Aborts, b.rs.Errors)
	}
	if b.rs.ToResyncing < 2 {
		t.Fatalf("resync not retriggered after mid-resync outage: to_resyncing=%d", b.rs.ToResyncing)
	}
	if b.rep.Dirty.Blocks() != 0 {
		t.Fatalf("leaked dirty blocks: %v", b.rep.Dirty.Ranges())
	}
	// Convergence must be bit-identical: every block the guest wrote is
	// on both legs with the same contents.
	if pc, sc := b.h.store.ContentCRC(), b.rstore.ContentCRC(); pc != sc {
		t.Fatalf("mirror contents diverge after resync: primary=%08x secondary=%08x", pc, sc)
	}
	if b.rs.ResyncedBlocks < writes*8 {
		t.Fatalf("resynced %d blocks, want >= %d", b.rs.ResyncedBlocks, writes*8)
	}
}

// TestResyncRedirtiesConcurrentWrite: guest writes keep flowing while the
// resync drains. Writes landing in the in-flight window are re-dirtied
// and recopied; the mirror still converges once traffic stops, and both
// stores end bit-identical.
func TestResyncRedirtiesConcurrentWrite(t *testing.T) {
	cfg := storfn.DefaultResyncConfig()
	cfg.Rate = 5e6 // slow drain so foreground writes overlap it
	cfg.ChunkBlocks = 8
	b := newReplBed(t, cfg)
	b.link.ScheduleOutage(0, 5*sim.Millisecond)

	data := make([]byte, 4096)
	b.h.run(t, func(p *sim.Proc) {
		// Dirty [0, 256) during the outage.
		for i := 0; i < 32; i++ {
			for j := range data {
				data[j] = byte(j + i)
			}
			if st := doIO(p, b.v, b.disk, vm.OpWrite, uint64(i*8), data); !st.OK() {
				t.Fatalf("write %d: %v", i, st)
			}
		}
		// Keep writing the same region while the resync drains it.
		for i := 0; i < 32; i++ {
			for j := range data {
				data[j] = byte(j ^ (i * 3))
			}
			if st := doIO(p, b.v, b.disk, vm.OpWrite, uint64((i%32)*8), data); !st.OK() {
				t.Fatalf("overwrite %d: %v", i, st)
			}
			p.Sleep(200 * sim.Microsecond)
		}
		b.waitInSync(t, p, 500*sim.Millisecond)
	})
	if pc, sc := b.h.store.ContentCRC(), b.rstore.ContentCRC(); pc != sc {
		t.Fatalf("mirror contents diverge: primary=%08x secondary=%08x", pc, sc)
	}
	if b.rep.Dirty.Blocks() != 0 {
		t.Fatalf("leaked dirty blocks: %v", b.rep.Dirty.Ranges())
	}
}
