package storfn

import (
	"testing"

	"nvmetro/internal/sim"
)

// TestResyncWindowRedirty exercises the write-ordering machinery in
// isolation: guest writes overlapping the in-flight copy window must be
// re-dirtied, writes outside it must not, and a secondary-leg failure
// mid-resync must poison the window.
func TestResyncWindowRedirty(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	rep := NewReplicator()
	rs, err := NewResyncer(env, rep, nil, nil, nil, 9, DefaultResyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs.State() != StateInSync {
		t.Fatalf("fresh mirror state %v", rs.State())
	}

	// A failing guest mirror write degrades the mirror.
	rep.Dirty.Add(100, 8)
	rs.noteSecondaryFailure(100, 8)
	if rs.State() != StateDegraded || rs.ToDegraded != 1 {
		t.Fatalf("after failure: state=%v to_degraded=%d", rs.State(), rs.ToDegraded)
	}

	// Simulate the worker mid-copy: window open over [100,116).
	rs.setState(StateResyncing)
	rep.Dirty.Remove(100, 8)
	rs.openWindow(100, 16)

	// Successful guest write overlapping the window: overlap re-dirtied.
	rs.noteGuestWrite(90, 20) // overlap = [100,110)
	if !rs.winDirtied || rs.RedirtiedBlocks != 10 || !rep.Dirty.Contains(100) || !rep.Dirty.Contains(109) {
		t.Fatalf("overlap not re-dirtied: dirtied=%v redirtied=%d dirty=%v",
			rs.winDirtied, rs.RedirtiedBlocks, rep.Dirty.Ranges())
	}
	if rep.Dirty.Contains(110) || rep.Dirty.Contains(99) {
		t.Fatalf("re-dirtied beyond the overlap: %v", rep.Dirty.Ranges())
	}

	// A write clear of the window changes nothing.
	before := rep.Dirty.Blocks()
	rs.noteGuestWrite(500, 8)
	if rep.Dirty.Blocks() != before {
		t.Fatal("write outside the window re-dirtied blocks")
	}

	// Window closed: subsequent writes are not in any copy's shadow.
	rs.closeWindow()
	rs.noteGuestWrite(100, 8)
	if rep.Dirty.Blocks() != before {
		t.Fatal("write after window close re-dirtied blocks")
	}

	// A failing guest mirror write during resync poisons the open window
	// (same failing leg as the copy in flight) but does not change state —
	// the worker handles its own error when the copy completes.
	rs.openWindow(0, 8)
	rs.noteSecondaryFailure(4, 2)
	if !rs.winDirtied || rs.State() != StateResyncing {
		t.Fatalf("mid-resync failure: dirtied=%v state=%v", rs.winDirtied, rs.State())
	}
}

// TestResyncConfigValidation checks install-time policy validation.
func TestResyncConfigValidation(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	if _, err := NewResyncer(env, NewReplicator(), nil, nil, nil, 9, ResyncConfig{Rate: 0}); err == nil {
		t.Fatal("zero rate limit accepted")
	}
	if _, err := NewResyncer(env, NewReplicator(), nil, nil, nil, 9, ResyncConfig{Rate: -5}); err == nil {
		t.Fatal("negative rate limit accepted")
	}
	cfg, err := ResyncConfig{Rate: 1e6}.withDefaults(9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ChunkBlocks == 0 || cfg.Burst == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

// TestResyncAttachDegraded checks that attaching a resyncer to a mirror
// that already has dirty regions starts it in Degraded, not InSync.
func TestResyncAttachDegraded(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	rep := NewReplicator()
	rep.Dirty.Add(0, 64)
	rs, err := NewResyncer(env, rep, nil, nil, nil, 9, DefaultResyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs.State() != StateDegraded {
		t.Fatalf("attach over dirty mirror: state %v", rs.State())
	}
}
