package storfn

import (
	"encoding/binary"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
)

// This file declares each storage function's recovery policy for the
// supervision subsystem (package supervise): how its stranded in-flight
// commands reconcile, what fast-path degradation is semantically safe
// while the UIF is down, and how a restarted instance rebuilds its state.
// The types implement supervise.Function structurally; see DESIGN.md's
// failure-model matrix for the per-function argument.

// FailStopClassifier returns a classifier that completes every command
// immediately with st — the degraded policy for functions with no safe
// fast-path bypass (encryption: routing guest writes around the encryptor
// would persist plaintext). st should be retryable (SCNSNotReady) so
// guests back off and retry instead of failing I/O permanently.
func FailStopClassifier(st nvme.Status) *ebpf.Program {
	return ebpf.NewBuilder().
		MovImm64(ebpf.R0, core.ActComplete|uint64(st)).
		Exit().
		MustProgram("fail-stop")
}

// CacherSupervision is the host cache's recovery policy. The cache is
// write-through and purely an accelerator: every command it handles is
// idempotent against the backing device, so stranded commands requeue on
// the fast path, degradation is the plain partition classifier, and a
// restart begins from a cold cache with a fresh heat map — which is also
// what makes recovery coherent: no fill or write window of the dead
// instance can leak stale data into the new one, and fast-path writes
// issued while degraded cannot invalidate state that no longer exists.
type CacherSupervision struct {
	env    *sim.Env
	part   device.Partition
	params CacheParams
	cacher *Cacher
}

// NewCacherSupervision builds the policy. params must carry the final
// cache geometry (Cache.BlockSize already resolved to the device block
// size) — every rebuilt generation reuses it.
func NewCacherSupervision(env *sim.Env, part device.Partition, params CacheParams) *CacherSupervision {
	return &CacherSupervision{env: env, part: part, params: params}
}

// Cacher returns the current cache UIF generation.
func (s *CacherSupervision) Cacher() *Cacher { return s.cacher }

// Name implements supervise.Function.
func (s *CacherSupervision) Name() string { return "cacher" }

// Reconcile requeues every stranded command on the fast path: reads are
// served by the device, writes are write-through anyway.
func (s *CacherSupervision) Reconcile(nvme.Command) core.ReconcileDecision {
	return core.ReconcileDecision{Action: core.ReconcileRequeue}
}

// Degrade bypasses the cache entirely: the partition classifier keeps the
// mediation (bounds check + LBA translation) and sends everything to the
// fast path.
func (s *CacherSupervision) Degrade(vc *core.Controller) {
	prog, _ := PartitionClassifier(s.part)
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
}

// Rebuild starts the next generation from a cold cache.
func (s *CacherSupervision) Rebuild() uif.Handler {
	s.cacher = NewCacher(s.env, s.params)
	return s.cacher
}

// Promote re-installs the cache classifier wired to the new generation's
// (empty) heat map.
func (s *CacherSupervision) Promote(vc *core.Controller, _ *uif.Attachment) {
	prog, _ := CacheClassifier(s.part, s.cacher.Hints(), s.params.HotThreshold)
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
}

// ReplicatorSupervision is the mirroring function's recovery policy. A
// stranded or newly arriving write is never lost and never blocks the
// guest: the primary (fast-path) leg carries the data, the secondary is
// marked stale in the replicator's dirty log — exactly the degraded-mode
// semantics the replicator already uses for a failing secondary leg — and
// the resync engine drains the divergence after the restarted UIF is
// promoted. The dirty log is modeled as host-durable (it lives in the
// router/host, not in the UIF process), so the same Replicator state
// survives across UIF generations.
type ReplicatorSupervision struct {
	part device.Partition
	rep  *Replicator
	rs   *Resyncer

	// DegradedWrites counts guest writes routed primary-only while the
	// mirror UIF was down.
	DegradedWrites uint64
}

// NewReplicatorSupervision builds the policy around the (generation-
// surviving) replicator state.
func NewReplicatorSupervision(part device.Partition, rep *Replicator) *ReplicatorSupervision {
	return &ReplicatorSupervision{part: part, rep: rep}
}

// SetResyncer wires the mirror-consistency state machine; call once the
// resyncer exists (it needs the first attachment generation to be built).
func (s *ReplicatorSupervision) SetResyncer(rs *Resyncer) { s.rs = rs }

// Replicator returns the mirroring state shared by all generations.
func (s *ReplicatorSupervision) Replicator() *Replicator { return s.rep }

// Name implements supervise.Function.
func (s *ReplicatorSupervision) Name() string { return "replicator" }

// Reconcile completes stranded secondary-leg writes as degraded: the
// primary hop carries the data to the guest, the range goes in the dirty
// log for resync. Anything else (nothing else should be notify-routed)
// requeues on the fast path.
func (s *ReplicatorSupervision) Reconcile(cmd nvme.Command) core.ReconcileDecision {
	if cmd.Opcode() != nvme.OpWrite {
		return core.ReconcileDecision{Action: core.ReconcileRequeue}
	}
	lba, blocks := cmd.SLBA(), uint64(cmd.Blocks())
	s.rep.Dirty.Add(lba, blocks)
	s.rep.Degraded++
	s.DegradedWrites++
	if s.rs != nil {
		s.rs.noteSecondaryFailure(lba, blocks)
	}
	return core.ReconcileDecision{Action: core.ReconcileComplete, Status: nvme.SCSuccess}
}

// Degrade installs a native classifier that keeps the partition mediation
// but routes writes primary-only, recording each in the dirty log — the
// same degraded-mirror mode a secondary outage produces, entered from the
// router instead of the UIF.
func (s *ReplicatorSupervision) Degrade(vc *core.Controller) {
	part := s.part
	vc.SetNativeClassifier(func(ctx []byte) uint64 {
		const fast = uint64(core.ActSendHQ | core.ActWillCompleteHQ)
		op := ctx[core.CtxOffCmd]
		if op == nvme.OpFlush {
			return fast
		}
		slba := binary.LittleEndian.Uint64(ctx[core.CtxOffCmd+40:])
		nlb := uint64(binary.LittleEndian.Uint32(ctx[core.CtxOffCmd+48:])&0xffff) + 1
		if slba+nlb > part.Blocks {
			return core.ActComplete | uint64(nvme.SCLBAOutOfRange)
		}
		abs := slba + part.Start
		binary.LittleEndian.PutUint64(ctx[core.CtxOffCmd+40:], abs)
		if op == nvme.OpWrite {
			s.rep.Dirty.Add(abs, nlb)
			s.rep.Degraded++
			s.DegradedWrites++
			if s.rs != nil {
				s.rs.noteSecondaryFailure(abs, nlb)
			}
		}
		return fast
	})
}

// Rebuild reuses the replicator: its state (dirty log, counters) is host
// state, not UIF state.
func (s *ReplicatorSupervision) Rebuild() uif.Handler { return s.rep }

// Promote swaps the routed classifier back in, points the resyncer at the
// new attachment generation and kicks the drain.
func (s *ReplicatorSupervision) Promote(vc *core.Controller, att *uif.Attachment) {
	vc.SetNativeClassifier(nil)
	prog, _ := ReplicatorClassifier(s.part)
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
	if s.rs != nil {
		s.rs.SetAttachment(att)
		s.rs.Trigger()
	}
}

// EncryptorSupervision is the transparent-encryption function's recovery
// policy: fail-stop. There is no safe bypass — completing a stranded
// write from the fast path, or routing new writes there, would persist
// plaintext — so stranded commands complete with a retryable status and
// degraded mode completes everything with the same status until the
// restarted UIF (fresh crypto context, same key) is promoted.
type EncryptorSupervision struct {
	part  device.Partition
	key   []byte
	costs EncryptorCosts
	enc   *Encryptor
}

// NewEncryptorSupervision builds the policy; key is retained for rebuilds.
func NewEncryptorSupervision(part device.Partition, key []byte, costs EncryptorCosts) *EncryptorSupervision {
	return &EncryptorSupervision{part: part, key: append([]byte(nil), key...), costs: costs}
}

// Encryptor returns the current encryptor generation.
func (s *EncryptorSupervision) Encryptor() *Encryptor { return s.enc }

// Name implements supervise.Function.
func (s *EncryptorSupervision) Name() string { return "encryptor" }

// Reconcile fail-stops every stranded command: SCNSNotReady is retryable,
// and the guest's data never touches the device unencrypted.
func (s *EncryptorSupervision) Reconcile(nvme.Command) core.ReconcileDecision {
	return core.ReconcileDecision{Action: core.ReconcileComplete, Status: nvme.SCNSNotReady}
}

// Degrade installs the fail-stop classifier.
func (s *EncryptorSupervision) Degrade(vc *core.Controller) {
	if err := vc.LoadClassifier(FailStopClassifier(nvme.SCNSNotReady)); err != nil {
		panic(err)
	}
}

// Rebuild creates a fresh crypto context with the retained key.
func (s *EncryptorSupervision) Rebuild() uif.Handler {
	enc, err := NewEncryptor(s.key, s.costs)
	if err != nil {
		panic(err)
	}
	s.enc = enc
	return enc
}

// Promote re-installs the encryptor classifier.
func (s *EncryptorSupervision) Promote(vc *core.Controller, _ *uif.Attachment) {
	prog, _ := EncryptorClassifier(s.part)
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
}
