// Package storfn implements the paper's storage functions on top of
// NVMetro: the transparent-encryption function (eBPF classifier + XTS-AES
// UIF, with an optional SGX-enclave variant) and the live disk-replication
// function (classifier + mirroring UIF over NVMe-oF), plus a partition
// classifier used as the baseline policy.
//
// The classifiers are written in eBPF assembly (see internal/ebpf's
// assembler) and correspond to Listing 1 of the paper, extended with the
// LBA translation and bounds check that confine a VM to its partition —
// the "direct mediation" step.
package storfn

import (
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
)

// Classifier context field offsets used by the assembly below (see
// core.CtxOff*): hook at 0, error at 4, command at 32; within the command,
// opcode at +0 (ctx 32), SLBA at +40 (ctx 72), CDW12 at +48 (ctx 80).

// partitionSrc is the baseline classifier: confine the VM to its partition
// (bounds check + LBA translation) and send everything to the fast path.
const partitionSrc = `
; partition classifier: translate guest LBAs to device LBAs, fast path only
	mov   r9, r1            ; r9 = ctx
	mov   r2, 0
	stxw  [r10-4], r2       ; key = 0
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]        ; partition start LBA
	ldxdw r7, [r0+8]        ; partition size in blocks
	ldxb  r3, [r9+32]       ; opcode
	jeq   r3, 0, passthru   ; flush: no LBA
	ldxdw r4, [r9+72]       ; slba
	ldxw  r5, [r9+80]       ; cdw12
	and   r5, 0xffff        ; nlb (0-based)
	add   r5, 1
	add   r5, r4            ; end LBA
	jgt   r5, r7, oob
	add   r4, r6            ; direct mediation: rewrite the LBA
	stxdw [r9+72], r4
passthru:
	mov   r0, 0x410000      ; SEND_HQ | WILL_COMPLETE_HQ
	exit
oob:
	mov   r0, 0x2000080     ; COMPLETE | LBAOutOfRange
	exit
internal:
	mov   r0, 0x2000006     ; COMPLETE | InternalError
	exit
`

// encryptorSrc is the data-encryption classifier (paper Listing 1):
// reads go to the device first, then to the UIF for decryption; writes go
// to the UIF, which encrypts and persists them itself.
const encryptorSrc = `
; encryptor classifier (Listing 1 + partition mediation)
	mov   r9, r1            ; r9 = ctx
	ldxw  r2, [r9+0]        ; current hook
	jeq   r2, 1, hcq_hook   ; HOOK_HCQ: device read finished
; --- HOOK_VSQ: new request ---
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]        ; partition start
	ldxdw r7, [r0+8]        ; partition blocks
	ldxb  r3, [r9+32]       ; opcode
	jeq   r3, 0, passthru   ; flush
	ldxdw r4, [r9+72]       ; slba
	ldxw  r5, [r9+80]
	and   r5, 0xffff
	add   r5, 1
	add   r5, r4
	jgt   r5, r7, oob
	add   r4, r6
	stxdw [r9+72], r4       ; translate LBA
	jeq   r3, 2, is_read
	jeq   r3, 1, is_write
passthru:
	mov   r0, 0x410000      ; SEND_HQ | WILL_COMPLETE_HQ
	exit
is_read:
	mov   r0, 0x4090000     ; SEND_HQ | HOOK_HCQ | WAIT_FOR_HOOK
	exit
is_write:
	mov   r0, 0x820000      ; SEND_NQ | WILL_COMPLETE_NQ (UIF encrypts+writes)
	exit
hcq_hook:
	ldxw  r0, [r9+4]        ; device read status
	jne   r0, 0, dev_err
	mov   r0, 0x820000      ; ciphertext in guest buffer: UIF decrypts
	exit
dev_err:
	or    r0, 0x2000000     ; forward the error | COMPLETE
	exit
oob:
	mov   r0, 0x2000080     ; COMPLETE | LBAOutOfRange
	exit
internal:
	mov   r0, 0x2000006     ; COMPLETE | InternalError
	exit
`

// replicatorSrc is the disk-mirroring classifier: reads are served by the
// local (primary) disk only; writes go synchronously to both the primary
// disk and the UIF, which forwards them to the remote secondary.
const replicatorSrc = `
; replicator classifier: read local, write both
	mov   r9, r1
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]
	ldxdw r7, [r0+8]
	ldxb  r3, [r9+32]
	jeq   r3, 0, passthru
	ldxdw r4, [r9+72]
	ldxw  r5, [r9+80]
	and   r5, 0xffff
	add   r5, 1
	add   r5, r4
	jgt   r5, r7, oob
	add   r4, r6
	stxdw [r9+72], r4
	jeq   r3, 1, is_write
passthru:
	mov   r0, 0x410000      ; reads and admin: local fast path only
	exit
is_write:
	mov   r0, 0xc30000      ; SEND_HQ|SEND_NQ|WILL_COMPLETE_HQ|WILL_COMPLETE_NQ
	exit
oob:
	mov   r0, 0x2000080
	exit
internal:
	mov   r0, 0x2000006
	exit
`

// buildWithConfig assembles src with the partition config map attached.
func buildWithConfig(src, name string, cfg *ebpf.ArrayMap) *ebpf.Program {
	return ebpf.MustAssemble(src, name, map[string]ebpf.Map{"cfg": cfg}, nil)
}

// PartitionClassifier returns the baseline (fast-path-only) classifier for
// the given partition, plus its live-updatable config map.
func PartitionClassifier(part device.Partition) (*ebpf.Program, *ebpf.ArrayMap) {
	cfg := core.NewPartitionConfigMap(part)
	return buildWithConfig(partitionSrc, "partition", cfg), cfg
}

// EncryptorClassifier returns the transparent-encryption classifier.
func EncryptorClassifier(part device.Partition) (*ebpf.Program, *ebpf.ArrayMap) {
	cfg := core.NewPartitionConfigMap(part)
	return buildWithConfig(encryptorSrc, "encryptor", cfg), cfg
}

// ReplicatorClassifier returns the disk-replication classifier.
func ReplicatorClassifier(part device.Partition) (*ebpf.Program, *ebpf.ArrayMap) {
	cfg := core.NewPartitionConfigMap(part)
	return buildWithConfig(replicatorSrc, "replicator", cfg), cfg
}

// ClassifierSources exposes the assembly sources for Table I (source code
// size accounting) and for the nvmetro-asm tool's examples.
func ClassifierSources() map[string]string {
	out := map[string]string{
		"partition":  partitionSrc,
		"encryptor":  encryptorSrc,
		"replicator": replicatorSrc,
	}
	for name, src := range classifierExtra {
		out[name] = src
	}
	return out
}
